// Quickstart: run one action+object query over a streaming video with
// SVAQD and evaluate the result against ground truth.
//
//   $ ./quickstart
//
// Walks through the full online path of the paper: build an evaluation
// scenario (a synthetic video with annotated object/action intervals),
// deploy simulated Mask R-CNN + I3D models, stream the video clip by clip
// through SVAQD, and print the matching sequences.
#include <cstdio>

#include "vaq/vaq.h"

int main() {
  using namespace vaq;

  // 1. A video: Table 1's q2 — "blowing leaves" with a car and a plant in
  //    the scene. The scenario bundles the generated ground truth, the
  //    label vocabulary, the clip/shot layout and the default query.
  const synth::Scenario scenario = synth::Scenario::YouTube(2);
  std::printf("video: %s — %lld frames, %lld clips (%d frames/shot, %d "
              "shots/clip)\n",
              scenario.name().c_str(),
              static_cast<long long>(scenario.layout().num_frames()),
              static_cast<long long>(scenario.layout().NumClips()),
              scenario.layout().frames_per_shot(),
              scenario.layout().shots_per_clip());
  std::printf("query: %s\n",
              scenario.query().ToString(scenario.vocab()).c_str());

  // 2. The perception models: simulated Mask R-CNN (objects), I3D
  //    (actions) and CenterTrack (tracking), with realistic noise.
  detect::ModelBundle models =
      detect::ModelBundle::MaskRcnnI3d(scenario.truth(), /*seed=*/42);

  // 3. SVAQD: the adaptive streaming engine. No background probability
  //    needs tuning — it is estimated on the fly (§3.3 of the paper).
  online::Svaqd engine(scenario.query(), scenario.layout(),
                       online::SvaqdOptions{});
  const online::OnlineResult result =
      engine.Run(models.detector.get(), models.recognizer.get());

  // 4. Results: maximal runs of clips satisfying every query predicate.
  std::printf("\nfound %zu matching sequences:\n", result.sequences.size());
  const double fps = scenario.spec().fps;
  const double spc = scenario.layout().frames_per_clip() / fps;
  for (const Interval& seq : result.sequences.intervals()) {
    std::printf("  clips [%4lld, %4lld]  =  %6.1fs .. %6.1fs\n",
                static_cast<long long>(seq.lo),
                static_cast<long long>(seq.hi),
                static_cast<double>(seq.lo) * spc,
                static_cast<double>(seq.hi + 1) * spc);
  }

  // 5. How good is it? Compare against the annotated ground truth.
  const eval::F1Result f1 =
      eval::SequenceF1(result.sequences, scenario.TruthClips(), /*eta=*/0.5);
  std::printf("\nsequence F1 @ IoU 0.5: %.3f (precision %.3f, recall %.3f)\n",
              f1.f1, f1.precision, f1.recall);
  std::printf("model inference: %lld frames + %lld shots "
              "(simulated %.1f GPU-seconds)\n",
              static_cast<long long>(result.detector_stats.inferences),
              static_cast<long long>(result.recognizer_stats.inferences),
              models.TotalSimulatedMs() / 1000.0);
  return 0;
}
