// SQL shell: the paper's declarative front end end to end.
//
//   $ ./sql_shell                 # run the two demo statements
//   $ ./sql_shell "SELECT ..."    # run your own statement
//
// Registers one streaming video ("inputVideo", processed online with
// SVAQD) and one ingested repository video ("movieRepo", answered with
// RVAQ), then executes statements in the paper's SQL-like dialect.
#include <cstdio>
#include <string>
#include <vector>

#include "vaq/vaq.h"

namespace {

void RunStatement(vaq::query::Session& session, const std::string& sql) {
  using namespace vaq;
  std::printf("\nvaq> %s\n", sql.c_str());
  auto parsed = query::Parse(sql);
  if (!parsed.ok()) {
    std::printf("  syntax error: %s\n", parsed.status().message().c_str());
    return;
  }
  std::printf("  plan: %s (%s)\n", parsed->ToString().c_str(),
              parsed->ranked || parsed->limit >= 0 ? "offline / RVAQ"
                                                   : "online / SVAQD");
  auto result = session.Execute(*parsed);
  if (!result.ok()) {
    std::printf("  error: %s\n", result.status().ToString().c_str());
    return;
  }
  if (result->online) {
    std::printf("  %zu sequences: %s\n", result->sequences.size(),
                result->sequences.ToString().c_str());
    std::printf("  inference: %lld frames, %lld shots\n",
                static_cast<long long>(result->detector_stats.inferences),
                static_cast<long long>(result->recognizer_stats.inferences));
  } else {
    for (size_t i = 0; i < result->ranked.size(); ++i) {
      std::printf("  #%zu  clips [%lld, %lld]  score %.1f\n", i + 1,
                  static_cast<long long>(result->ranked[i].clips.lo),
                  static_cast<long long>(result->ranked[i].clips.hi),
                  result->ranked[i].exact_score);
    }
    std::printf("  accesses: %s\n", result->accesses.ToString().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vaq;
  query::Session session;

  // Streaming source: q4's video ("drinking beer", bottle + chair).
  const synth::Scenario stream = synth::Scenario::YouTube(4);
  session.RegisterStream("inputVideo", stream, /*model_seed=*/7);
  std::printf("registered stream 'inputVideo' (%s)\n", stream.name().c_str());

  // Repository source: an ingested movie.
  const synth::Scenario movie =
      synth::Scenario::Movie(synth::MovieId::kIronMan);
  {
    detect::ModelBundle models =
        detect::ModelBundle::MaskRcnnI3d(movie.truth(), 7);
    offline::PaperScoring scoring;
    offline::Ingestor ingestor(&movie.vocab(), &scoring,
                               offline::IngestOptions{});
    session.RegisterRepository(
        "movieRepo",
        std::move(ingestor.Ingest(movie.truth(), models)).value());
  }
  std::printf("registered repository 'movieRepo' (%s, ingested)\n",
              movie.name().c_str());

  if (argc > 1) {
    for (int i = 1; i < argc; ++i) RunStatement(session, argv[i]);
    return 0;
  }

  // The two statement forms from §2 of the paper.
  RunStatement(session,
               "SELECT MERGE(clipID) AS Sequence "
               "FROM (PROCESS inputVideo PRODUCE clipID, obj USING "
               "ObjectDetector, act USING ActionRecognizer) "
               "WHERE act='drinking beer' AND obj.include('bottle', 'chair')");
  RunStatement(session,
               "SELECT MERGE(clipID) AS Sequence, RANK(act, obj) "
               "FROM (PROCESS movieRepo PRODUCE clipID, obj USING "
               "ObjectTracker, act USING ActionRecognizer) "
               "WHERE act='robot dancing' AND obj.include('car', 'airplane') "
               "ORDER BY RANK(act, obj) LIMIT 5");
  return 0;
}
