// Offline repository search: ingest a movie once, persist the metadata,
// then answer ranked top-K action queries with RVAQ (§4 of the paper).
//
//   $ ./movie_search [catalog_dir]
//
// Demonstrates the full offline lifecycle: ingestion (the only
// inference-heavy step), catalog persistence, query-time binding, the
// RVAQ top-K run with its access accounting, and a baseline comparison.
#include <cstdio>
#include <filesystem>

#include "vaq/vaq.h"

int main(int argc, char** argv) {
  using namespace vaq;
  const std::string catalog_dir =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "vaq_demo_catalog")
                     .string();

  // --- Ingestion phase (once per video) --------------------------------
  const synth::Scenario movie =
      synth::Scenario::Movie(synth::MovieId::kCoffeeAndCigarettes);
  std::printf("movie: %s (%lld clips)\n", movie.name().c_str(),
              static_cast<long long>(movie.layout().NumClips()));

  const storage::Catalog catalog(catalog_dir);
  offline::PaperScoring scoring;
  if (!catalog.Contains("coffee")) {
    std::printf("ingesting (object tracking + action recognition over the "
                "whole movie)...\n");
    detect::ModelBundle models =
        detect::ModelBundle::MaskRcnnI3d(movie.truth(), 7);
    offline::Ingestor ingestor(&movie.vocab(), &scoring,
                               offline::IngestOptions{});
    const storage::VideoIndex index =
        std::move(ingestor.Ingest(movie.truth(), models)).value();
    VAQ_CHECK_OK(catalog.Save("coffee", index));
    std::printf("ingested %zu object types + %zu action types into %s\n",
                index.objects.size(), index.actions.size(),
                catalog_dir.c_str());
  } else {
    std::printf("reusing ingested metadata from %s\n", catalog_dir.c_str());
  }

  // --- Query phase (no model inference at all) --------------------------
  auto index = catalog.Load("coffee");
  VAQ_CHECK(index.ok()) << index.status().ToString();
  auto tables =
      offline::QueryTables::Bind(*index, movie.query(), movie.vocab());
  VAQ_CHECK(tables.ok()) << tables.status().ToString();

  std::printf("\nquery: %s, top-5 by RANK(act, obj)\n",
              movie.query().ToString(movie.vocab()).c_str());
  offline::RvaqOptions options;
  options.k = 5;
  const offline::TopKResult result =
      offline::Rvaq(&tables.value(), &scoring, options).Run();

  const double spc =
      movie.layout().frames_per_clip() / movie.spec().fps / 60.0;
  std::printf("\nrank  clips            minutes          score\n");
  for (size_t i = 0; i < result.top.size(); ++i) {
    const offline::RankedSequence& seq = result.top[i];
    std::printf("%4zu  [%4lld, %4lld]    %5.1f .. %5.1f    %.1f\n", i + 1,
                static_cast<long long>(seq.clips.lo),
                static_cast<long long>(seq.clips.hi),
                static_cast<double>(seq.clips.lo) * spc,
                static_cast<double>(seq.clips.hi + 1) * spc,
                seq.exact_score);
  }
  std::printf("\nRVAQ: %lld candidate sequences, %lld TBClip iterations, "
              "accesses %s\n",
              static_cast<long long>(result.pq.size()),
              static_cast<long long>(result.iterations),
              result.accesses.ToString().c_str());

  // Baseline comparison: the brute-force traversal touches every clip of
  // every candidate sequence.
  const offline::TopKResult traverse =
      offline::PqTraverse(tables.value(), scoring, 5);
  std::printf("Pq-Traverse accesses %s\n",
              traverse.accesses.ToString().c_str());
  std::printf("same top-1: %s\n",
              !result.top.empty() && !traverse.top.empty() &&
                      result.top[0].clips == traverse.top[0].clips
                  ? "yes"
                  : "no");
  return 0;
}
