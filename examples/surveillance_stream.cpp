// Surveillance stream with concept drift: the paper's §3.3 motivating
// example. A crossroad camera sees car traffic whose background rate
// changes sharply during rush hour; a fixed background probability (SVAQ)
// mis-calibrates in one of the regimes, while SVAQD's kernel estimator
// follows the rate and keeps the critical values honest.
//
//   $ ./surveillance_stream
#include <cstdio>

#include "vaq/vaq.h"

int main() {
  using namespace vaq;

  // An 8-hour stream at 10 fps: quiet night, rush hour, quiet evening.
  // The queried event is a person loitering while a truck is present.
  synth::ScenarioSpec spec;
  spec.name = "crossroad-cam";
  spec.minutes = 8 * 60;
  spec.fps = 10;
  spec.seed = 2024;

  synth::ActionTrackSpec loitering;
  loitering.name = "loitering";
  loitering.duty = 0.06;
  loitering.mean_len_frames = 1200;  // ~2 minute episodes.
  spec.actions.push_back(loitering);

  synth::ObjectTrackSpec truck;
  truck.name = "truck";
  truck.background_duty = 0.05;
  truck.mean_len_frames = 900;
  truck.coupled_action = "loitering";
  truck.cover_action_prob = 0.9;
  // Rush hour: trucks appear 6x more often in the middle half of the
  // stream — the sudden background change SVAQD must absorb.
  truck.drift.multipliers = {1.0, 6.0, 6.0, 1.0};
  spec.objects.push_back(truck);

  const synth::Scenario scenario =
      synth::Scenario::FromSpec(spec, "loitering", {"truck"});
  std::printf("stream: %lld frames (%.0f hours at %.0f fps), drift: truck "
              "rate x6 during rush hour\n",
              static_cast<long long>(scenario.layout().num_frames()),
              spec.minutes / 60.0, spec.fps);
  std::printf("query: %s\n\n",
              scenario.query().ToString(scenario.vocab()).c_str());

  const IntervalSet truth = scenario.TruthClips();

  // SVAQ with a background probability calibrated for the quiet regime.
  {
    detect::ModelBundle models =
        detect::ModelBundle::MaskRcnnI3d(scenario.truth(), 11);
    online::SvaqOptions options;
    options.p0_object = 1e-2;
    options.p0_action = 1e-2;
    online::Svaq engine(scenario.query(), scenario.layout(), options);
    const online::OnlineResult result =
        engine.Run(models.detector.get(), models.recognizer.get());
    const eval::F1Result f1 = eval::SequenceF1(result.sequences, truth);
    std::printf("SVAQ  (fixed p0=1e-2):  %3zu sequences, F1 %.3f "
                "(k_crit stays at obj=%lld act=%lld)\n",
                result.sequences.size(), f1.f1,
                static_cast<long long>(result.kcrit_objects[0]),
                static_cast<long long>(result.kcrit_action));
  }

  // SVAQD adapts its estimates as the stream evolves.
  {
    detect::ModelBundle models =
        detect::ModelBundle::MaskRcnnI3d(scenario.truth(), 11);
    online::Svaqd engine(scenario.query(), scenario.layout(),
                         online::SvaqdOptions{});
    const online::OnlineResult result =
        engine.Run(models.detector.get(), models.recognizer.get());
    const eval::F1Result f1 = eval::SequenceF1(result.sequences, truth);
    std::printf("SVAQD (adaptive):       %3zu sequences, F1 %.3f "
                "(final k_crit obj=%lld act=%lld)\n",
                result.sequences.size(), f1.f1,
                static_cast<long long>(result.kcrit_objects[0]),
                static_cast<long long>(result.kcrit_action));

    std::printf("\nalerts (clip ranges):\n");
    int shown = 0;
    for (const Interval& seq : result.sequences.intervals()) {
      if (++shown > 8) {
        std::printf("  ... and %zu more\n", result.sequences.size() - 8);
        break;
      }
      const double t0 = static_cast<double>(seq.lo) *
                        scenario.layout().frames_per_clip() / spec.fps / 60.0;
      std::printf("  alert at %6.1f min, clips [%lld, %lld]\n", t0,
                  static_cast<long long>(seq.lo),
                  static_cast<long long>(seq.hi));
    }
  }
  return 0;
}
