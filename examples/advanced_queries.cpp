// Advanced queries: the paper's footnote features working together.
//
//   $ ./advanced_queries
//
// Shows (1) disjunctive CNF predicates and multiple actions through the
// SQL dialect, (2) a spatial relationship predicate fed through the same
// scan-statistic machinery, and (3) the push-based streaming engine
// raising alerts as sequences open and close.
#include <cstdio>

#include "vaq/vaq.h"

int main() {
  using namespace vaq;

  // A street scene: two actions, three object types with motion tracks.
  synth::ScenarioSpec spec;
  spec.name = "street-cam";
  spec.minutes = 10;
  spec.fps = 30;
  spec.seed = 77;
  for (const char* name : {"crossing", "cycling"}) {
    synth::ActionTrackSpec action;
    action.name = name;
    action.duty = 0.2;
    action.mean_len_frames = 900;
    spec.actions.push_back(action);
  }
  int i = 0;
  for (const char* name : {"car", "bus", "person"}) {
    synth::ObjectTrackSpec obj;
    obj.name = name;
    obj.background_duty = 0.10;
    obj.mean_len_frames = 700;
    obj.coupled_action = (i++ % 2 == 0) ? "crossing" : "cycling";
    obj.cover_action_prob = 0.85;
    spec.objects.push_back(obj);
  }
  const synth::Scenario scenario =
      synth::Scenario::FromSpec(spec, "crossing", {"car"});

  // --- 1. CNF through SQL: someone crossing while any vehicle is there.
  {
    query::Session session;
    session.RegisterStream("cam", scenario, 7);
    auto result = session.Execute(
        "SELECT MERGE(clipID) FROM cam "
        "WHERE (obj='car' OR obj='bus') AND act='crossing'");
    VAQ_CHECK(result.ok()) << result.status().ToString();
    std::printf("CNF query  (car OR bus) AND crossing: %zu sequences\n",
                result->sequences.size());
    auto both = session.Execute(
        "SELECT MERGE(clipID) FROM cam "
        "WHERE act='crossing' AND act='cycling'");
    VAQ_CHECK(both.ok()) << both.status().ToString();
    std::printf("multi-action crossing AND cycling:    %zu sequences\n",
                both->sequences.size());
  }

  // --- 2. A relationship predicate: person left of a car, processed with
  // the identical per-clip scan-statistic pipeline (footnote 2).
  {
    detect::RelationshipDetector rel_detector(
        &scenario.truth(), detect::ModelProfile::MaskRcnn(), 7);
    detect::RelationshipSpec left_of{
        detect::RelationshipKind::kLeftOf,
        scenario.vocab().FindObjectType("person"),
        scenario.vocab().FindObjectType("car"), 0.05};
    const std::vector<int64_t> counts =
        rel_detector.ClipCounts(left_of, scenario.layout());
    scanstat::ScanConfig config;
    config.window = scenario.layout().frames_per_clip();
    config.horizon = scenario.layout().num_frames();
    config.alpha = 0.01;
    const int64_t kcrit = scanstat::CriticalValue(
        rel_detector.profile().fpr, config);
    std::vector<bool> indicator;
    for (int64_t count : counts) indicator.push_back(count >= kcrit);
    const IntervalSet sequences = IntervalSet::FromIndicators(indicator);
    std::printf("relationship '%s' (k_crit=%lld): %zu sequences\n",
                left_of.ToString(scenario.vocab()).c_str(),
                static_cast<long long>(kcrit), sequences.size());
  }

  // --- 3. Streaming alerts with open/close events.
  {
    detect::ModelBundle models =
        detect::ModelBundle::MaskRcnnI3d(scenario.truth(), 7);
    int opened = 0;
    int closed = 0;
    online::StreamingSvaqd stream(
        scenario.query(), scenario.layout(), online::SvaqdOptions{},
        [&](const online::SequenceEvent& event) {
          using Kind = online::SequenceEvent::Kind;
          if (event.kind == Kind::kOpened) {
            ++opened;
            std::printf("  [clip %4lld] ALERT opened\n",
                        static_cast<long long>(event.clip));
          } else if (event.kind == Kind::kClosed) {
            ++closed;
            std::printf("  [clip %4lld] alert closed: clips [%lld, %lld]\n",
                        static_cast<long long>(event.clip),
                        static_cast<long long>(event.sequence.lo),
                        static_cast<long long>(event.sequence.hi));
          }
        });
    std::printf("streaming 'crossing AND car' alerts:\n");
    for (ClipIndex c = 0; c < scenario.layout().NumClips(); ++c) {
      stream.PushClip(models.detector.get(), models.recognizer.get());
    }
    stream.Finish();
    std::printf("total: %d alerts opened, %d closed\n", opened, closed);
  }
  return 0;
}
