# Empty compiler generated dependencies file for scanstat_markov_test.
# This may be replaced when dependencies are built.
