file(REMOVE_RECURSE
  "CMakeFiles/scanstat_markov_test.dir/scanstat_markov_test.cc.o"
  "CMakeFiles/scanstat_markov_test.dir/scanstat_markov_test.cc.o.d"
  "scanstat_markov_test"
  "scanstat_markov_test.pdb"
  "scanstat_markov_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanstat_markov_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
