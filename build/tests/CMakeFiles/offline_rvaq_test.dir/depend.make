# Empty dependencies file for offline_rvaq_test.
# This may be replaced when dependencies are built.
