file(REMOVE_RECURSE
  "CMakeFiles/offline_rvaq_test.dir/offline_rvaq_test.cc.o"
  "CMakeFiles/offline_rvaq_test.dir/offline_rvaq_test.cc.o.d"
  "offline_rvaq_test"
  "offline_rvaq_test.pdb"
  "offline_rvaq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_rvaq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
