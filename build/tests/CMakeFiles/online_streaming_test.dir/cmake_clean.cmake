file(REMOVE_RECURSE
  "CMakeFiles/online_streaming_test.dir/online_streaming_test.cc.o"
  "CMakeFiles/online_streaming_test.dir/online_streaming_test.cc.o.d"
  "online_streaming_test"
  "online_streaming_test.pdb"
  "online_streaming_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_streaming_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
