# Empty dependencies file for video_sequence_ops_test.
# This may be replaced when dependencies are built.
