file(REMOVE_RECURSE
  "CMakeFiles/video_sequence_ops_test.dir/video_sequence_ops_test.cc.o"
  "CMakeFiles/video_sequence_ops_test.dir/video_sequence_ops_test.cc.o.d"
  "video_sequence_ops_test"
  "video_sequence_ops_test.pdb"
  "video_sequence_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_sequence_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
