file(REMOVE_RECURSE
  "CMakeFiles/online_svaq_test.dir/online_svaq_test.cc.o"
  "CMakeFiles/online_svaq_test.dir/online_svaq_test.cc.o.d"
  "online_svaq_test"
  "online_svaq_test.pdb"
  "online_svaq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_svaq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
