# Empty compiler generated dependencies file for online_svaq_test.
# This may be replaced when dependencies are built.
