# Empty compiler generated dependencies file for scanstat_naus_test.
# This may be replaced when dependencies are built.
