file(REMOVE_RECURSE
  "CMakeFiles/scanstat_naus_test.dir/scanstat_naus_test.cc.o"
  "CMakeFiles/scanstat_naus_test.dir/scanstat_naus_test.cc.o.d"
  "scanstat_naus_test"
  "scanstat_naus_test.pdb"
  "scanstat_naus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanstat_naus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
