# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for scanstat_naus_test.
