file(REMOVE_RECURSE
  "CMakeFiles/scanstat_kernel_test.dir/scanstat_kernel_test.cc.o"
  "CMakeFiles/scanstat_kernel_test.dir/scanstat_kernel_test.cc.o.d"
  "scanstat_kernel_test"
  "scanstat_kernel_test.pdb"
  "scanstat_kernel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanstat_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
