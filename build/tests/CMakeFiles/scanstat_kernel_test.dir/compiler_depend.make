# Empty compiler generated dependencies file for scanstat_kernel_test.
# This may be replaced when dependencies are built.
