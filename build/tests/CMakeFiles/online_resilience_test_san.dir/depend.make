# Empty dependencies file for online_resilience_test_san.
# This may be replaced when dependencies are built.
