
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/interval.cc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/common/interval.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/common/interval.cc.o.d"
  "/root/repo/src/common/rng.cc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/common/rng.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/common/status.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/common/status.cc.o.d"
  "/root/repo/src/detect/model_profile.cc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/detect/model_profile.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/detect/model_profile.cc.o.d"
  "/root/repo/src/detect/models.cc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/detect/models.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/detect/models.cc.o.d"
  "/root/repo/src/detect/relationship.cc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/detect/relationship.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/detect/relationship.cc.o.d"
  "/root/repo/src/detect/resilient.cc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/detect/resilient.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/detect/resilient.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/eval/metrics.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/eval/metrics.cc.o.d"
  "/root/repo/src/fault/fault_plan.cc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/fault/fault_plan.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/fault/fault_plan.cc.o.d"
  "/root/repo/src/online/clip_evaluator.cc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/online/clip_evaluator.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/online/clip_evaluator.cc.o.d"
  "/root/repo/src/online/cnf_engine.cc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/online/cnf_engine.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/online/cnf_engine.cc.o.d"
  "/root/repo/src/online/streaming.cc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/online/streaming.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/online/streaming.cc.o.d"
  "/root/repo/src/online/svaq.cc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/online/svaq.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/online/svaq.cc.o.d"
  "/root/repo/src/online/svaqd.cc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/online/svaqd.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/online/svaqd.cc.o.d"
  "/root/repo/src/scanstat/binomial.cc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/scanstat/binomial.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/scanstat/binomial.cc.o.d"
  "/root/repo/src/scanstat/critical_value.cc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/scanstat/critical_value.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/scanstat/critical_value.cc.o.d"
  "/root/repo/src/scanstat/kernel_estimator.cc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/scanstat/kernel_estimator.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/scanstat/kernel_estimator.cc.o.d"
  "/root/repo/src/scanstat/markov.cc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/scanstat/markov.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/scanstat/markov.cc.o.d"
  "/root/repo/src/scanstat/naus.cc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/scanstat/naus.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/scanstat/naus.cc.o.d"
  "/root/repo/src/synth/generator.cc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/synth/generator.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/synth/generator.cc.o.d"
  "/root/repo/src/synth/ground_truth.cc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/synth/ground_truth.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/synth/ground_truth.cc.o.d"
  "/root/repo/src/synth/scenario.cc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/synth/scenario.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/synth/scenario.cc.o.d"
  "/root/repo/src/synth/spec_file.cc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/synth/spec_file.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/synth/spec_file.cc.o.d"
  "/root/repo/src/video/cnf_query.cc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/video/cnf_query.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/video/cnf_query.cc.o.d"
  "/root/repo/src/video/layout.cc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/video/layout.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/video/layout.cc.o.d"
  "/root/repo/src/video/query_spec.cc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/video/query_spec.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/video/query_spec.cc.o.d"
  "/root/repo/src/video/sequence_ops.cc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/video/sequence_ops.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/video/sequence_ops.cc.o.d"
  "/root/repo/src/video/vocabulary.cc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/video/vocabulary.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/__/src/video/vocabulary.cc.o.d"
  "/root/repo/tests/online_resilience_test.cc" "tests/CMakeFiles/online_resilience_test_san.dir/online_resilience_test.cc.o" "gcc" "tests/CMakeFiles/online_resilience_test_san.dir/online_resilience_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
