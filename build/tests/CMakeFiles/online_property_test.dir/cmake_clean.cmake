file(REMOVE_RECURSE
  "CMakeFiles/online_property_test.dir/online_property_test.cc.o"
  "CMakeFiles/online_property_test.dir/online_property_test.cc.o.d"
  "online_property_test"
  "online_property_test.pdb"
  "online_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
