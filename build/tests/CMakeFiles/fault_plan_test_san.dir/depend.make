# Empty dependencies file for fault_plan_test_san.
# This may be replaced when dependencies are built.
