file(REMOVE_RECURSE
  "CMakeFiles/detect_models_test.dir/detect_models_test.cc.o"
  "CMakeFiles/detect_models_test.dir/detect_models_test.cc.o.d"
  "detect_models_test"
  "detect_models_test.pdb"
  "detect_models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detect_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
