# Empty dependencies file for detect_models_test.
# This may be replaced when dependencies are built.
