file(REMOVE_RECURSE
  "CMakeFiles/offline_property_test.dir/offline_property_test.cc.o"
  "CMakeFiles/offline_property_test.dir/offline_property_test.cc.o.d"
  "offline_property_test"
  "offline_property_test.pdb"
  "offline_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
