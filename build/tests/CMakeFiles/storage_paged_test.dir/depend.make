# Empty dependencies file for storage_paged_test.
# This may be replaced when dependencies are built.
