file(REMOVE_RECURSE
  "CMakeFiles/online_burst_test.dir/online_burst_test.cc.o"
  "CMakeFiles/online_burst_test.dir/online_burst_test.cc.o.d"
  "online_burst_test"
  "online_burst_test.pdb"
  "online_burst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_burst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
