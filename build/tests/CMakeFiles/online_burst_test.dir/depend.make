# Empty dependencies file for online_burst_test.
# This may be replaced when dependencies are built.
