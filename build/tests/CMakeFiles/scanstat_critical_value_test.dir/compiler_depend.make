# Empty compiler generated dependencies file for scanstat_critical_value_test.
# This may be replaced when dependencies are built.
