# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for scanstat_critical_value_test.
