file(REMOVE_RECURSE
  "CMakeFiles/scanstat_critical_value_test.dir/scanstat_critical_value_test.cc.o"
  "CMakeFiles/scanstat_critical_value_test.dir/scanstat_critical_value_test.cc.o.d"
  "scanstat_critical_value_test"
  "scanstat_critical_value_test.pdb"
  "scanstat_critical_value_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanstat_critical_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
