
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/query_parser_test.cc" "tests/CMakeFiles/query_parser_test.dir/query_parser_test.cc.o" "gcc" "tests/CMakeFiles/query_parser_test.dir/query_parser_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/vaq_query.dir/DependInfo.cmake"
  "/root/repo/build/src/offline/CMakeFiles/vaq_offline.dir/DependInfo.cmake"
  "/root/repo/build/src/online/CMakeFiles/vaq_online.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/vaq_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/scanstat/CMakeFiles/vaq_scanstat.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/vaq_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/vaq_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/vaq_video.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/vaq_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vaq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
