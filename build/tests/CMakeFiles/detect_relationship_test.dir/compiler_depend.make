# Empty compiler generated dependencies file for detect_relationship_test.
# This may be replaced when dependencies are built.
