file(REMOVE_RECURSE
  "CMakeFiles/detect_relationship_test.dir/detect_relationship_test.cc.o"
  "CMakeFiles/detect_relationship_test.dir/detect_relationship_test.cc.o.d"
  "detect_relationship_test"
  "detect_relationship_test.pdb"
  "detect_relationship_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detect_relationship_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
