file(REMOVE_RECURSE
  "CMakeFiles/query_session_test.dir/query_session_test.cc.o"
  "CMakeFiles/query_session_test.dir/query_session_test.cc.o.d"
  "query_session_test"
  "query_session_test.pdb"
  "query_session_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
