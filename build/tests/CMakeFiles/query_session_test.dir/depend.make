# Empty dependencies file for query_session_test.
# This may be replaced when dependencies are built.
