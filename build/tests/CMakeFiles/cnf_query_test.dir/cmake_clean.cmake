file(REMOVE_RECURSE
  "CMakeFiles/cnf_query_test.dir/cnf_query_test.cc.o"
  "CMakeFiles/cnf_query_test.dir/cnf_query_test.cc.o.d"
  "cnf_query_test"
  "cnf_query_test.pdb"
  "cnf_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnf_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
