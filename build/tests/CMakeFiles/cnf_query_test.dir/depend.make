# Empty dependencies file for cnf_query_test.
# This may be replaced when dependencies are built.
