file(REMOVE_RECURSE
  "CMakeFiles/offline_repository_test.dir/offline_repository_test.cc.o"
  "CMakeFiles/offline_repository_test.dir/offline_repository_test.cc.o.d"
  "offline_repository_test"
  "offline_repository_test.pdb"
  "offline_repository_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_repository_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
