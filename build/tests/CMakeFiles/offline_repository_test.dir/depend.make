# Empty dependencies file for offline_repository_test.
# This may be replaced when dependencies are built.
