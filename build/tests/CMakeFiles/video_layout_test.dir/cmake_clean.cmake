file(REMOVE_RECURSE
  "CMakeFiles/video_layout_test.dir/video_layout_test.cc.o"
  "CMakeFiles/video_layout_test.dir/video_layout_test.cc.o.d"
  "video_layout_test"
  "video_layout_test.pdb"
  "video_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
