file(REMOVE_RECURSE
  "CMakeFiles/offline_ingest_test.dir/offline_ingest_test.cc.o"
  "CMakeFiles/offline_ingest_test.dir/offline_ingest_test.cc.o.d"
  "offline_ingest_test"
  "offline_ingest_test.pdb"
  "offline_ingest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_ingest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
