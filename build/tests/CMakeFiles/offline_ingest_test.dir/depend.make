# Empty dependencies file for offline_ingest_test.
# This may be replaced when dependencies are built.
