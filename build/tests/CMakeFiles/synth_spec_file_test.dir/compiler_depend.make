# Empty compiler generated dependencies file for synth_spec_file_test.
# This may be replaced when dependencies are built.
