file(REMOVE_RECURSE
  "CMakeFiles/synth_spec_file_test.dir/synth_spec_file_test.cc.o"
  "CMakeFiles/synth_spec_file_test.dir/synth_spec_file_test.cc.o.d"
  "synth_spec_file_test"
  "synth_spec_file_test.pdb"
  "synth_spec_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_spec_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
