file(REMOVE_RECURSE
  "CMakeFiles/online_resilience_test.dir/online_resilience_test.cc.o"
  "CMakeFiles/online_resilience_test.dir/online_resilience_test.cc.o.d"
  "online_resilience_test"
  "online_resilience_test.pdb"
  "online_resilience_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_resilience_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
