# Empty dependencies file for online_resilience_test.
# This may be replaced when dependencies are built.
