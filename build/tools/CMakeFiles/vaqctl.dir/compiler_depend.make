# Empty compiler generated dependencies file for vaqctl.
# This may be replaced when dependencies are built.
