file(REMOVE_RECURSE
  "CMakeFiles/vaqctl.dir/vaqctl.cc.o"
  "CMakeFiles/vaqctl.dir/vaqctl.cc.o.d"
  "vaqctl"
  "vaqctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaqctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
