# CMake generated Testfile for 
# Source directory: /root/repo/src/scanstat
# Build directory: /root/repo/build/src/scanstat
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
