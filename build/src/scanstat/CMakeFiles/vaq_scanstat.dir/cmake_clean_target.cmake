file(REMOVE_RECURSE
  "libvaq_scanstat.a"
)
