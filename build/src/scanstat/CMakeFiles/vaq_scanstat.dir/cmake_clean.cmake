file(REMOVE_RECURSE
  "CMakeFiles/vaq_scanstat.dir/binomial.cc.o"
  "CMakeFiles/vaq_scanstat.dir/binomial.cc.o.d"
  "CMakeFiles/vaq_scanstat.dir/critical_value.cc.o"
  "CMakeFiles/vaq_scanstat.dir/critical_value.cc.o.d"
  "CMakeFiles/vaq_scanstat.dir/kernel_estimator.cc.o"
  "CMakeFiles/vaq_scanstat.dir/kernel_estimator.cc.o.d"
  "CMakeFiles/vaq_scanstat.dir/markov.cc.o"
  "CMakeFiles/vaq_scanstat.dir/markov.cc.o.d"
  "CMakeFiles/vaq_scanstat.dir/naus.cc.o"
  "CMakeFiles/vaq_scanstat.dir/naus.cc.o.d"
  "libvaq_scanstat.a"
  "libvaq_scanstat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaq_scanstat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
