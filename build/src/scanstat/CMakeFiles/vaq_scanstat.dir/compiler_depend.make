# Empty compiler generated dependencies file for vaq_scanstat.
# This may be replaced when dependencies are built.
