
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scanstat/binomial.cc" "src/scanstat/CMakeFiles/vaq_scanstat.dir/binomial.cc.o" "gcc" "src/scanstat/CMakeFiles/vaq_scanstat.dir/binomial.cc.o.d"
  "/root/repo/src/scanstat/critical_value.cc" "src/scanstat/CMakeFiles/vaq_scanstat.dir/critical_value.cc.o" "gcc" "src/scanstat/CMakeFiles/vaq_scanstat.dir/critical_value.cc.o.d"
  "/root/repo/src/scanstat/kernel_estimator.cc" "src/scanstat/CMakeFiles/vaq_scanstat.dir/kernel_estimator.cc.o" "gcc" "src/scanstat/CMakeFiles/vaq_scanstat.dir/kernel_estimator.cc.o.d"
  "/root/repo/src/scanstat/markov.cc" "src/scanstat/CMakeFiles/vaq_scanstat.dir/markov.cc.o" "gcc" "src/scanstat/CMakeFiles/vaq_scanstat.dir/markov.cc.o.d"
  "/root/repo/src/scanstat/naus.cc" "src/scanstat/CMakeFiles/vaq_scanstat.dir/naus.cc.o" "gcc" "src/scanstat/CMakeFiles/vaq_scanstat.dir/naus.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vaq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
