# Empty compiler generated dependencies file for vaq_offline.
# This may be replaced when dependencies are built.
