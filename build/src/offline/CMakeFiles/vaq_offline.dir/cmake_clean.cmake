file(REMOVE_RECURSE
  "CMakeFiles/vaq_offline.dir/baselines.cc.o"
  "CMakeFiles/vaq_offline.dir/baselines.cc.o.d"
  "CMakeFiles/vaq_offline.dir/ingest.cc.o"
  "CMakeFiles/vaq_offline.dir/ingest.cc.o.d"
  "CMakeFiles/vaq_offline.dir/query_view.cc.o"
  "CMakeFiles/vaq_offline.dir/query_view.cc.o.d"
  "CMakeFiles/vaq_offline.dir/repository.cc.o"
  "CMakeFiles/vaq_offline.dir/repository.cc.o.d"
  "CMakeFiles/vaq_offline.dir/rvaq.cc.o"
  "CMakeFiles/vaq_offline.dir/rvaq.cc.o.d"
  "CMakeFiles/vaq_offline.dir/scoring.cc.o"
  "CMakeFiles/vaq_offline.dir/scoring.cc.o.d"
  "CMakeFiles/vaq_offline.dir/tbclip.cc.o"
  "CMakeFiles/vaq_offline.dir/tbclip.cc.o.d"
  "libvaq_offline.a"
  "libvaq_offline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaq_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
