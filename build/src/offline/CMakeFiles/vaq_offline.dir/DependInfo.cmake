
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/offline/baselines.cc" "src/offline/CMakeFiles/vaq_offline.dir/baselines.cc.o" "gcc" "src/offline/CMakeFiles/vaq_offline.dir/baselines.cc.o.d"
  "/root/repo/src/offline/ingest.cc" "src/offline/CMakeFiles/vaq_offline.dir/ingest.cc.o" "gcc" "src/offline/CMakeFiles/vaq_offline.dir/ingest.cc.o.d"
  "/root/repo/src/offline/query_view.cc" "src/offline/CMakeFiles/vaq_offline.dir/query_view.cc.o" "gcc" "src/offline/CMakeFiles/vaq_offline.dir/query_view.cc.o.d"
  "/root/repo/src/offline/repository.cc" "src/offline/CMakeFiles/vaq_offline.dir/repository.cc.o" "gcc" "src/offline/CMakeFiles/vaq_offline.dir/repository.cc.o.d"
  "/root/repo/src/offline/rvaq.cc" "src/offline/CMakeFiles/vaq_offline.dir/rvaq.cc.o" "gcc" "src/offline/CMakeFiles/vaq_offline.dir/rvaq.cc.o.d"
  "/root/repo/src/offline/scoring.cc" "src/offline/CMakeFiles/vaq_offline.dir/scoring.cc.o" "gcc" "src/offline/CMakeFiles/vaq_offline.dir/scoring.cc.o.d"
  "/root/repo/src/offline/tbclip.cc" "src/offline/CMakeFiles/vaq_offline.dir/tbclip.cc.o" "gcc" "src/offline/CMakeFiles/vaq_offline.dir/tbclip.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/online/CMakeFiles/vaq_online.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/vaq_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/vaq_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/vaq_video.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vaq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/vaq_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/scanstat/CMakeFiles/vaq_scanstat.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/vaq_fault.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
