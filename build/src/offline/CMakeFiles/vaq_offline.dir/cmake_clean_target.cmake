file(REMOVE_RECURSE
  "libvaq_offline.a"
)
