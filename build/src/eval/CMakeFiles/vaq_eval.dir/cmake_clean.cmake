file(REMOVE_RECURSE
  "CMakeFiles/vaq_eval.dir/metrics.cc.o"
  "CMakeFiles/vaq_eval.dir/metrics.cc.o.d"
  "libvaq_eval.a"
  "libvaq_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaq_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
