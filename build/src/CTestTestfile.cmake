# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("fault")
subdirs("video")
subdirs("scanstat")
subdirs("synth")
subdirs("detect")
subdirs("storage")
subdirs("online")
subdirs("offline")
subdirs("query")
subdirs("eval")
