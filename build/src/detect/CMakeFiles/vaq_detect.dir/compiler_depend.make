# Empty compiler generated dependencies file for vaq_detect.
# This may be replaced when dependencies are built.
