file(REMOVE_RECURSE
  "libvaq_detect.a"
)
