file(REMOVE_RECURSE
  "CMakeFiles/vaq_detect.dir/model_profile.cc.o"
  "CMakeFiles/vaq_detect.dir/model_profile.cc.o.d"
  "CMakeFiles/vaq_detect.dir/models.cc.o"
  "CMakeFiles/vaq_detect.dir/models.cc.o.d"
  "CMakeFiles/vaq_detect.dir/relationship.cc.o"
  "CMakeFiles/vaq_detect.dir/relationship.cc.o.d"
  "CMakeFiles/vaq_detect.dir/resilient.cc.o"
  "CMakeFiles/vaq_detect.dir/resilient.cc.o.d"
  "libvaq_detect.a"
  "libvaq_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaq_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
