file(REMOVE_RECURSE
  "CMakeFiles/vaq_fault.dir/fault_plan.cc.o"
  "CMakeFiles/vaq_fault.dir/fault_plan.cc.o.d"
  "libvaq_fault.a"
  "libvaq_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaq_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
