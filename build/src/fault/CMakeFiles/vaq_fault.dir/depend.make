# Empty dependencies file for vaq_fault.
# This may be replaced when dependencies are built.
