file(REMOVE_RECURSE
  "libvaq_fault.a"
)
