file(REMOVE_RECURSE
  "CMakeFiles/vaq_synth.dir/generator.cc.o"
  "CMakeFiles/vaq_synth.dir/generator.cc.o.d"
  "CMakeFiles/vaq_synth.dir/ground_truth.cc.o"
  "CMakeFiles/vaq_synth.dir/ground_truth.cc.o.d"
  "CMakeFiles/vaq_synth.dir/scenario.cc.o"
  "CMakeFiles/vaq_synth.dir/scenario.cc.o.d"
  "CMakeFiles/vaq_synth.dir/spec_file.cc.o"
  "CMakeFiles/vaq_synth.dir/spec_file.cc.o.d"
  "libvaq_synth.a"
  "libvaq_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaq_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
