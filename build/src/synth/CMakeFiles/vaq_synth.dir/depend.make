# Empty dependencies file for vaq_synth.
# This may be replaced when dependencies are built.
