
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/generator.cc" "src/synth/CMakeFiles/vaq_synth.dir/generator.cc.o" "gcc" "src/synth/CMakeFiles/vaq_synth.dir/generator.cc.o.d"
  "/root/repo/src/synth/ground_truth.cc" "src/synth/CMakeFiles/vaq_synth.dir/ground_truth.cc.o" "gcc" "src/synth/CMakeFiles/vaq_synth.dir/ground_truth.cc.o.d"
  "/root/repo/src/synth/scenario.cc" "src/synth/CMakeFiles/vaq_synth.dir/scenario.cc.o" "gcc" "src/synth/CMakeFiles/vaq_synth.dir/scenario.cc.o.d"
  "/root/repo/src/synth/spec_file.cc" "src/synth/CMakeFiles/vaq_synth.dir/spec_file.cc.o" "gcc" "src/synth/CMakeFiles/vaq_synth.dir/spec_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/video/CMakeFiles/vaq_video.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vaq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
