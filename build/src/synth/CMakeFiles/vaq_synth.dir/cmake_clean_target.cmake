file(REMOVE_RECURSE
  "libvaq_synth.a"
)
