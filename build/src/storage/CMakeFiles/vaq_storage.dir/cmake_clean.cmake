file(REMOVE_RECURSE
  "CMakeFiles/vaq_storage.dir/catalog.cc.o"
  "CMakeFiles/vaq_storage.dir/catalog.cc.o.d"
  "CMakeFiles/vaq_storage.dir/paged_table.cc.o"
  "CMakeFiles/vaq_storage.dir/paged_table.cc.o.d"
  "CMakeFiles/vaq_storage.dir/score_table.cc.o"
  "CMakeFiles/vaq_storage.dir/score_table.cc.o.d"
  "libvaq_storage.a"
  "libvaq_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaq_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
