file(REMOVE_RECURSE
  "libvaq_storage.a"
)
