# Empty compiler generated dependencies file for vaq_storage.
# This may be replaced when dependencies are built.
