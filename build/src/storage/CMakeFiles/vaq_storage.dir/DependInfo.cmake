
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/catalog.cc" "src/storage/CMakeFiles/vaq_storage.dir/catalog.cc.o" "gcc" "src/storage/CMakeFiles/vaq_storage.dir/catalog.cc.o.d"
  "/root/repo/src/storage/paged_table.cc" "src/storage/CMakeFiles/vaq_storage.dir/paged_table.cc.o" "gcc" "src/storage/CMakeFiles/vaq_storage.dir/paged_table.cc.o.d"
  "/root/repo/src/storage/score_table.cc" "src/storage/CMakeFiles/vaq_storage.dir/score_table.cc.o" "gcc" "src/storage/CMakeFiles/vaq_storage.dir/score_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/video/CMakeFiles/vaq_video.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/vaq_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vaq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
