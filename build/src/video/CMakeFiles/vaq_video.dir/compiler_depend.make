# Empty compiler generated dependencies file for vaq_video.
# This may be replaced when dependencies are built.
