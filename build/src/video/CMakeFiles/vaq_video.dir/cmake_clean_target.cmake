file(REMOVE_RECURSE
  "libvaq_video.a"
)
