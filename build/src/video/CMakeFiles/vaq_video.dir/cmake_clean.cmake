file(REMOVE_RECURSE
  "CMakeFiles/vaq_video.dir/cnf_query.cc.o"
  "CMakeFiles/vaq_video.dir/cnf_query.cc.o.d"
  "CMakeFiles/vaq_video.dir/layout.cc.o"
  "CMakeFiles/vaq_video.dir/layout.cc.o.d"
  "CMakeFiles/vaq_video.dir/query_spec.cc.o"
  "CMakeFiles/vaq_video.dir/query_spec.cc.o.d"
  "CMakeFiles/vaq_video.dir/sequence_ops.cc.o"
  "CMakeFiles/vaq_video.dir/sequence_ops.cc.o.d"
  "CMakeFiles/vaq_video.dir/vocabulary.cc.o"
  "CMakeFiles/vaq_video.dir/vocabulary.cc.o.d"
  "libvaq_video.a"
  "libvaq_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaq_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
