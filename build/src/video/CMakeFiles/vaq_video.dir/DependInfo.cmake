
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/video/cnf_query.cc" "src/video/CMakeFiles/vaq_video.dir/cnf_query.cc.o" "gcc" "src/video/CMakeFiles/vaq_video.dir/cnf_query.cc.o.d"
  "/root/repo/src/video/layout.cc" "src/video/CMakeFiles/vaq_video.dir/layout.cc.o" "gcc" "src/video/CMakeFiles/vaq_video.dir/layout.cc.o.d"
  "/root/repo/src/video/query_spec.cc" "src/video/CMakeFiles/vaq_video.dir/query_spec.cc.o" "gcc" "src/video/CMakeFiles/vaq_video.dir/query_spec.cc.o.d"
  "/root/repo/src/video/sequence_ops.cc" "src/video/CMakeFiles/vaq_video.dir/sequence_ops.cc.o" "gcc" "src/video/CMakeFiles/vaq_video.dir/sequence_ops.cc.o.d"
  "/root/repo/src/video/vocabulary.cc" "src/video/CMakeFiles/vaq_video.dir/vocabulary.cc.o" "gcc" "src/video/CMakeFiles/vaq_video.dir/vocabulary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vaq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
