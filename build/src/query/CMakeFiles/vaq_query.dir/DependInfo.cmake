
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/ast.cc" "src/query/CMakeFiles/vaq_query.dir/ast.cc.o" "gcc" "src/query/CMakeFiles/vaq_query.dir/ast.cc.o.d"
  "/root/repo/src/query/lexer.cc" "src/query/CMakeFiles/vaq_query.dir/lexer.cc.o" "gcc" "src/query/CMakeFiles/vaq_query.dir/lexer.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/query/CMakeFiles/vaq_query.dir/parser.cc.o" "gcc" "src/query/CMakeFiles/vaq_query.dir/parser.cc.o.d"
  "/root/repo/src/query/session.cc" "src/query/CMakeFiles/vaq_query.dir/session.cc.o" "gcc" "src/query/CMakeFiles/vaq_query.dir/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/offline/CMakeFiles/vaq_offline.dir/DependInfo.cmake"
  "/root/repo/build/src/online/CMakeFiles/vaq_online.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/vaq_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/vaq_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vaq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/scanstat/CMakeFiles/vaq_scanstat.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/vaq_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/vaq_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/vaq_video.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
