file(REMOVE_RECURSE
  "CMakeFiles/vaq_query.dir/ast.cc.o"
  "CMakeFiles/vaq_query.dir/ast.cc.o.d"
  "CMakeFiles/vaq_query.dir/lexer.cc.o"
  "CMakeFiles/vaq_query.dir/lexer.cc.o.d"
  "CMakeFiles/vaq_query.dir/parser.cc.o"
  "CMakeFiles/vaq_query.dir/parser.cc.o.d"
  "CMakeFiles/vaq_query.dir/session.cc.o"
  "CMakeFiles/vaq_query.dir/session.cc.o.d"
  "libvaq_query.a"
  "libvaq_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaq_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
