file(REMOVE_RECURSE
  "libvaq_query.a"
)
