# Empty dependencies file for vaq_query.
# This may be replaced when dependencies are built.
