file(REMOVE_RECURSE
  "CMakeFiles/vaq_online.dir/clip_evaluator.cc.o"
  "CMakeFiles/vaq_online.dir/clip_evaluator.cc.o.d"
  "CMakeFiles/vaq_online.dir/cnf_engine.cc.o"
  "CMakeFiles/vaq_online.dir/cnf_engine.cc.o.d"
  "CMakeFiles/vaq_online.dir/streaming.cc.o"
  "CMakeFiles/vaq_online.dir/streaming.cc.o.d"
  "CMakeFiles/vaq_online.dir/svaq.cc.o"
  "CMakeFiles/vaq_online.dir/svaq.cc.o.d"
  "CMakeFiles/vaq_online.dir/svaqd.cc.o"
  "CMakeFiles/vaq_online.dir/svaqd.cc.o.d"
  "libvaq_online.a"
  "libvaq_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vaq_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
