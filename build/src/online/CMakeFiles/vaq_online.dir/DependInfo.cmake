
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/online/clip_evaluator.cc" "src/online/CMakeFiles/vaq_online.dir/clip_evaluator.cc.o" "gcc" "src/online/CMakeFiles/vaq_online.dir/clip_evaluator.cc.o.d"
  "/root/repo/src/online/cnf_engine.cc" "src/online/CMakeFiles/vaq_online.dir/cnf_engine.cc.o" "gcc" "src/online/CMakeFiles/vaq_online.dir/cnf_engine.cc.o.d"
  "/root/repo/src/online/streaming.cc" "src/online/CMakeFiles/vaq_online.dir/streaming.cc.o" "gcc" "src/online/CMakeFiles/vaq_online.dir/streaming.cc.o.d"
  "/root/repo/src/online/svaq.cc" "src/online/CMakeFiles/vaq_online.dir/svaq.cc.o" "gcc" "src/online/CMakeFiles/vaq_online.dir/svaq.cc.o.d"
  "/root/repo/src/online/svaqd.cc" "src/online/CMakeFiles/vaq_online.dir/svaqd.cc.o" "gcc" "src/online/CMakeFiles/vaq_online.dir/svaqd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/detect/CMakeFiles/vaq_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/scanstat/CMakeFiles/vaq_scanstat.dir/DependInfo.cmake"
  "/root/repo/build/src/video/CMakeFiles/vaq_video.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vaq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/vaq_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/vaq_fault.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
