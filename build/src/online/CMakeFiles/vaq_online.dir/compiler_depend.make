# Empty compiler generated dependencies file for vaq_online.
# This may be replaced when dependencies are built.
