file(REMOVE_RECURSE
  "libvaq_online.a"
)
