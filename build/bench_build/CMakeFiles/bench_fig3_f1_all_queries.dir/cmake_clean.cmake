file(REMOVE_RECURSE
  "../bench/bench_fig3_f1_all_queries"
  "../bench/bench_fig3_f1_all_queries.pdb"
  "CMakeFiles/bench_fig3_f1_all_queries.dir/bench_fig3_f1_all_queries.cc.o"
  "CMakeFiles/bench_fig3_f1_all_queries.dir/bench_fig3_f1_all_queries.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_f1_all_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
