# Empty compiler generated dependencies file for bench_fig3_f1_all_queries.
# This may be replaced when dependencies are built.
