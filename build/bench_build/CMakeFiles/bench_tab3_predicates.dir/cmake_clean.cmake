file(REMOVE_RECURSE
  "../bench/bench_tab3_predicates"
  "../bench/bench_tab3_predicates.pdb"
  "CMakeFiles/bench_tab3_predicates.dir/bench_tab3_predicates.cc.o"
  "CMakeFiles/bench_tab3_predicates.dir/bench_tab3_predicates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab3_predicates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
