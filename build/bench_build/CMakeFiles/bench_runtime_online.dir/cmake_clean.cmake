file(REMOVE_RECURSE
  "../bench/bench_runtime_online"
  "../bench/bench_runtime_online.pdb"
  "CMakeFiles/bench_runtime_online.dir/bench_runtime_online.cc.o"
  "CMakeFiles/bench_runtime_online.dir/bench_runtime_online.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_runtime_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
