# Empty compiler generated dependencies file for bench_runtime_online.
# This may be replaced when dependencies are built.
