file(REMOVE_RECURSE
  "../bench/bench_resilience"
  "../bench/bench_resilience.pdb"
  "CMakeFiles/bench_resilience.dir/bench_resilience.cc.o"
  "CMakeFiles/bench_resilience.dir/bench_resilience.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
