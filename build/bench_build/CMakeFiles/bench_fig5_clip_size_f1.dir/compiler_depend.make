# Empty compiler generated dependencies file for bench_fig5_clip_size_f1.
# This may be replaced when dependencies are built.
