# Empty compiler generated dependencies file for bench_tab6_coffee.
# This may be replaced when dependencies are built.
