file(REMOVE_RECURSE
  "../bench/bench_tab6_coffee"
  "../bench/bench_tab6_coffee.pdb"
  "CMakeFiles/bench_tab6_coffee.dir/bench_tab6_coffee.cc.o"
  "CMakeFiles/bench_tab6_coffee.dir/bench_tab6_coffee.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab6_coffee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
