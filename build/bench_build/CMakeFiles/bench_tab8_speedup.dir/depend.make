# Empty dependencies file for bench_tab8_speedup.
# This may be replaced when dependencies are built.
