file(REMOVE_RECURSE
  "../bench/bench_tab8_speedup"
  "../bench/bench_tab8_speedup.pdb"
  "CMakeFiles/bench_tab8_speedup.dir/bench_tab8_speedup.cc.o"
  "CMakeFiles/bench_tab8_speedup.dir/bench_tab8_speedup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab8_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
