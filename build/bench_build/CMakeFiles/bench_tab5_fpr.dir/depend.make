# Empty dependencies file for bench_tab5_fpr.
# This may be replaced when dependencies are built.
