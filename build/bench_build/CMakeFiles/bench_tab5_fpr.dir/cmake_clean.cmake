file(REMOVE_RECURSE
  "../bench/bench_tab5_fpr"
  "../bench/bench_tab5_fpr.pdb"
  "CMakeFiles/bench_tab5_fpr.dir/bench_tab5_fpr.cc.o"
  "CMakeFiles/bench_tab5_fpr.dir/bench_tab5_fpr.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab5_fpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
