# Empty compiler generated dependencies file for bench_tab7_youtube_offline.
# This may be replaced when dependencies are built.
