file(REMOVE_RECURSE
  "../bench/bench_tab7_youtube_offline"
  "../bench/bench_tab7_youtube_offline.pdb"
  "CMakeFiles/bench_tab7_youtube_offline.dir/bench_tab7_youtube_offline.cc.o"
  "CMakeFiles/bench_tab7_youtube_offline.dir/bench_tab7_youtube_offline.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab7_youtube_offline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
