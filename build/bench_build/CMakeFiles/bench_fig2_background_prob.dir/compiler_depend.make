# Empty compiler generated dependencies file for bench_fig2_background_prob.
# This may be replaced when dependencies are built.
