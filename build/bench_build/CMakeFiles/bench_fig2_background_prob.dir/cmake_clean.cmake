file(REMOVE_RECURSE
  "../bench/bench_fig2_background_prob"
  "../bench/bench_fig2_background_prob.pdb"
  "CMakeFiles/bench_fig2_background_prob.dir/bench_fig2_background_prob.cc.o"
  "CMakeFiles/bench_fig2_background_prob.dir/bench_fig2_background_prob.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_background_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
