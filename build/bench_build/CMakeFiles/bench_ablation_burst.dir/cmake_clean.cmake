file(REMOVE_RECURSE
  "../bench/bench_ablation_burst"
  "../bench/bench_ablation_burst.pdb"
  "CMakeFiles/bench_ablation_burst.dir/bench_ablation_burst.cc.o"
  "CMakeFiles/bench_ablation_burst.dir/bench_ablation_burst.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_burst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
