file(REMOVE_RECURSE
  "../bench/bench_ablation_rvaq"
  "../bench/bench_ablation_rvaq.pdb"
  "CMakeFiles/bench_ablation_rvaq.dir/bench_ablation_rvaq.cc.o"
  "CMakeFiles/bench_ablation_rvaq.dir/bench_ablation_rvaq.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rvaq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
