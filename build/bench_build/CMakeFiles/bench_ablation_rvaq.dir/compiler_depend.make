# Empty compiler generated dependencies file for bench_ablation_rvaq.
# This may be replaced when dependencies are built.
