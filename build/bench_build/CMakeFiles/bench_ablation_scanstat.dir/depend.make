# Empty dependencies file for bench_ablation_scanstat.
# This may be replaced when dependencies are built.
