file(REMOVE_RECURSE
  "../bench/bench_ablation_scanstat"
  "../bench/bench_ablation_scanstat.pdb"
  "CMakeFiles/bench_ablation_scanstat.dir/bench_ablation_scanstat.cc.o"
  "CMakeFiles/bench_ablation_scanstat.dir/bench_ablation_scanstat.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_scanstat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
