file(REMOVE_RECURSE
  "../bench/bench_tab4_models"
  "../bench/bench_tab4_models.pdb"
  "CMakeFiles/bench_tab4_models.dir/bench_tab4_models.cc.o"
  "CMakeFiles/bench_tab4_models.dir/bench_tab4_models.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab4_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
