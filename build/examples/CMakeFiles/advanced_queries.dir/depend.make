# Empty dependencies file for advanced_queries.
# This may be replaced when dependencies are built.
