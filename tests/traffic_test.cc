// The million-user front door: open-loop workload generation, DRR
// weighted-fair admission, per-tenant quota shedding, and the serve-path
// tenant isolation contract. Everything here is a pure function of the
// seeds — the determinism assertions are byte-level.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "tools/pipeline_setup.h"
#include "traffic/front_door.h"
#include "traffic/workload.h"

namespace vaq {
namespace traffic {
namespace {

WorkloadSpec SmallSpec() {
  WorkloadSpec spec;
  spec.num_tenants = 4;
  spec.duration_ms = 20'000.0;
  spec.seed = 77;
  spec.base_qps = 5.0;
  return spec;
}

// --- Workload generation ------------------------------------------------

TEST(TrafficWorkload, PureFunctionOfTheSpec) {
  const std::vector<Arrival> a = GenerateArrivals(SmallSpec());
  const std::vector<Arrival> b = GenerateArrivals(SmallSpec());
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at_ms, b[i].at_ms) << i;
    EXPECT_EQ(a[i].tenant, b[i].tenant) << i;
    EXPECT_EQ(a[i].preset, b[i].preset) << i;
  }
}

TEST(TrafficWorkload, TimelineIsSortedAndInWindow) {
  const WorkloadSpec spec = SmallSpec();
  const std::vector<Arrival> arrivals = GenerateArrivals(spec);
  for (size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_GE(arrivals[i].at_ms, 0.0);
    EXPECT_LT(arrivals[i].at_ms, spec.duration_ms);
    EXPECT_GE(arrivals[i].preset, 0);
    EXPECT_LT(arrivals[i].preset, spec.num_presets);
    if (i > 0) {
      EXPECT_LE(arrivals[i - 1].at_ms, arrivals[i].at_ms) << i;
    }
  }
}

TEST(TrafficWorkload, TenantsDrawIndependentStreams) {
  // Turning one tenant abusive must not move a single arrival of any
  // other tenant — this independence is what makes the isolation
  // experiments an exact paired comparison.
  WorkloadSpec abusive = SmallSpec();
  abusive.abusive_tenant = 1;
  const std::vector<Arrival> clean = GenerateArrivals(SmallSpec());
  const std::vector<Arrival> abused = GenerateArrivals(abusive);
  EXPECT_GT(abused.size(), clean.size());
  for (int tenant = 0; tenant < 4; ++tenant) {
    if (tenant == 1) continue;
    std::vector<double> before;
    std::vector<double> after;
    for (const Arrival& a : clean) {
      if (a.tenant == tenant) before.push_back(a.at_ms);
    }
    for (const Arrival& a : abused) {
      if (a.tenant == tenant) after.push_back(a.at_ms);
    }
    EXPECT_EQ(before, after) << "tenant " << tenant;
  }
}

TEST(TrafficWorkload, HotspotAndAbusiveTenantsOfferMore) {
  WorkloadSpec spec = SmallSpec();
  spec.hotspot_every = 3;  // Tenants 0 and 3 run hot.
  spec.abusive_tenant = 1;
  const std::vector<TenantSpec> tenants = MakeTenants(spec);
  ASSERT_EQ(tenants.size(), 4u);
  EXPECT_TRUE(tenants[0].hotspot);
  EXPECT_FALSE(tenants[1].hotspot);
  EXPECT_TRUE(tenants[1].abusive);
  EXPECT_TRUE(tenants[3].hotspot);
  std::vector<int64_t> count(4, 0);
  for (const Arrival& a : GenerateArrivals(spec)) {
    ++count[static_cast<size_t>(a.tenant)];
  }
  EXPECT_GT(count[0], count[2]);           // Hotspot ~2x a plain tenant.
  EXPECT_GT(count[1], 4 * count[2]);       // Abusive ~10x.
}

TEST(TrafficWorkload, ArrivalCapTruncatesLoudly) {
  WorkloadSpec spec = SmallSpec();
  spec.max_arrivals = 10;
  bool truncated = false;
  const std::vector<Arrival> arrivals = GenerateArrivals(spec, &truncated);
  EXPECT_TRUE(truncated);
  EXPECT_EQ(arrivals.size(), 10u);
}

// --- Front door ---------------------------------------------------------

// A hand-built saturated burst: every tenant offers `each` queries at
// t=0 against one worker, so DRR alone decides the service order.
std::vector<Arrival> BurstAt0(int tenants, int each) {
  std::vector<Arrival> arrivals;
  for (int q = 0; q < each; ++q) {
    for (int t = 0; t < tenants; ++t) {
      arrivals.push_back(Arrival{0.0, t, 0});
    }
  }
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const Arrival& a, const Arrival& b) {
                     return a.tenant < b.tenant;
                   });
  return arrivals;
}

TEST(TrafficFrontDoor, DrrSharesServiceByWeight) {
  // Two tenants, identical backlogs, one worker: the weight-2 tenant's
  // queries leave measurably earlier than the weight-1 tenant's.
  std::vector<TenantSpec> tenants(2);
  tenants[0].name = "heavy";
  tenants[0].weight = 2;
  tenants[0].queue_quota = 1000;
  tenants[1].name = "light";
  tenants[1].weight = 1;
  tenants[1].queue_quota = 1000;
  FrontDoorOptions options;
  options.num_workers = 1;
  options.record_metrics = false;
  const std::vector<double> cost = {10.0};
  const TrafficReport report =
      RunFrontDoor(tenants, BurstAt0(2, 60), cost, options);
  EXPECT_EQ(report.completed, 120);
  EXPECT_EQ(report.shed, 0);
  // Both drain fully; the weighted share shows up in waiting time.
  EXPECT_LT(report.tenants[0].p50_ms, report.tenants[1].p50_ms);
  EXPECT_LT(report.tenants[0].p99_ms, report.tenants[1].p99_ms);
}

TEST(TrafficFrontDoor, QuotaShedsTheFloodNotTheNeighbours) {
  std::vector<TenantSpec> tenants(2);
  tenants[0].name = "flood";
  tenants[0].queue_quota = 4;
  tenants[1].name = "steady";
  tenants[1].queue_quota = 4;
  FrontDoorOptions options;
  options.num_workers = 1;
  options.record_metrics = false;
  const std::vector<double> cost = {10.0};
  // The flood offers 50 queries at t=0; the steady tenant offers one
  // every 100ms (far slower than service, so its queue never builds).
  std::vector<Arrival> arrivals;
  for (int q = 0; q < 50; ++q) arrivals.push_back(Arrival{0.0, 0, 0});
  for (int q = 0; q < 10; ++q) {
    arrivals.push_back(Arrival{100.0 * (q + 1), 1, 0});
  }
  std::sort(arrivals.begin(), arrivals.end(),
            [](const Arrival& a, const Arrival& b) {
              return a.at_ms < b.at_ms;
            });
  const TrafficReport report = RunFrontDoor(tenants, arrivals, cost, options);
  EXPECT_GT(report.tenants[0].shed, 0);
  EXPECT_EQ(report.tenants[0].admitted,
            report.tenants[0].offered - report.tenants[0].shed);
  EXPECT_EQ(report.tenants[1].shed, 0);
  EXPECT_EQ(report.tenants[1].completed, 10);
}

TEST(TrafficFrontDoor, ReplayIsByteIdentical) {
  const WorkloadSpec spec = SmallSpec();
  const std::vector<TenantSpec> tenants = MakeTenants(spec);
  const std::vector<Arrival> arrivals = GenerateArrivals(spec);
  std::vector<double> cost(static_cast<size_t>(spec.num_presets), 8.0);
  FrontDoorOptions options;
  options.record_metrics = false;
  const TrafficReport a = RunFrontDoor(tenants, arrivals, cost, options);
  const TrafficReport b = RunFrontDoor(tenants, arrivals, cost, options);
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_GT(a.completed, 0);
}

// --- Serve path: tenant quotas and accounting ---------------------------

TEST(TrafficServe, TenantQuotaShedsWithResourceExhausted) {
  serve::ServeOptions so;
  so.threads = 0;  // Inline: pending counts are deterministic.
  so.tenant_quotas["t0"] = 2;
  serve::Server quota_server(so);
  ASSERT_TRUE(
      tools::RegisterDemoSources(&quota_server, /*num_streams=*/0,
                                 /*with_repository=*/true, /*seed=*/7)
          .ok());
  const std::vector<std::string> presets = tools::TrafficPresets(4);
  int64_t shed = 0;
  for (int i = 0; i < 4; ++i) {
    const StatusOr<int64_t> id =
        quota_server.Submit(presets[static_cast<size_t>(i)], "t0");
    if (!id.ok()) {
      EXPECT_EQ(id.status().code(), StatusCode::kResourceExhausted);
      ++shed;
    }
  }
  // threads=0 leaves every admitted query pending until Drain: exactly
  // quota admissions succeed.
  EXPECT_EQ(shed, 2);
  // An unlisted tenant sees only the global bound.
  EXPECT_TRUE(quota_server.Submit(presets[0], "t1").ok());
  const std::vector<serve::ServedQuery> drained = quota_server.Drain();
  EXPECT_EQ(drained.size(), 3u);
  EXPECT_EQ(quota_server.stats().rejected_tenant_quota, 2);
}

TEST(TrafficServe, TenantResultsAreThreadCountInvariant) {
  // The acceptance bar from the front-door design: per-tenant results
  // and the logical vaq_* families (vaq_tenant_* included) are
  // byte-identical at any worker count.
  const auto run = [](int threads) {
    obs::MetricRegistry::Global().Reset();
    serve::ServeOptions so;
    so.threads = threads;
    so.queue_capacity = 16;
    so.share_detection_cache = true;
    for (int t = 0; t < 3; ++t) {
      so.tenant_quotas["t" + std::to_string(t)] = 16;  // Sized to fit.
    }
    serve::Server server(so);
    EXPECT_TRUE(tools::RegisterDemoSources(&server, 0, true, 7).ok());
    const std::vector<std::string> presets = tools::TrafficPresets(6);
    for (size_t i = 0; i < presets.size(); ++i) {
      EXPECT_TRUE(
          server.Submit(presets[i], "t" + std::to_string(i % 3)).ok());
    }
    std::string described;
    for (const serve::ServedQuery& q : server.Drain()) {
      described += serve::DescribeServedQuery(q);
      described += "\n";
    }
    const std::string metrics = obs::ExportPrometheus(
        obs::FilterSnapshot(obs::MetricRegistry::Global().TakeSnapshot(),
                            serve::LogicalMetricPrefixes()));
    return std::make_pair(described, metrics);
  };
  const auto ref = run(0);
  EXPECT_NE(ref.first.find("tenant=t0"), std::string::npos);
  for (const int threads : {1, 2, 4}) {
    const auto got = run(threads);
    EXPECT_EQ(got.first, ref.first) << "threads=" << threads;
    EXPECT_EQ(got.second, ref.second) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace traffic
}  // namespace vaq
