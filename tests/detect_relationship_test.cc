#include "detect/relationship.h"

#include <gtest/gtest.h>

#include "scanstat/critical_value.h"
#include "eval/metrics.h"
#include "synth/generator.h"

namespace vaq {
namespace detect {
namespace {

// Hand-built ground truth: a "car" parked on the left half and a "human"
// walking right-to-left across it.
struct HandFixture {
  Vocabulary vocab;
  ObjectTypeId car;
  ObjectTypeId human;
  synth::GroundTruth truth{1, VideoLayout(1000, 10, 10)};

  HandFixture() {
    car = vocab.AddObjectType("car");
    human = vocab.AddObjectType("human");
    synth::ObjectTruth car_truth;
    car_truth.type = car;
    synth::TruthInstance parked;
    parked.instance_id = 0;
    parked.frames = Interval(0, 999);
    parked.x0 = 0.3;
    parked.vx = 0.0;
    car_truth.instances.push_back(parked);
    car_truth.frames = IntervalSet::FromIntervals({parked.frames});
    truth.AddObjectTruth(std::move(car_truth));

    synth::ObjectTruth human_truth;
    human_truth.type = human;
    synth::TruthInstance walking;
    walking.instance_id = 0;
    walking.frames = Interval(0, 999);
    walking.x0 = 0.9;           // Starts right of the car...
    walking.vx = -0.8 / 999.0;  // ...ends at x = 0.1, left of it.
    human_truth.instances.push_back(walking);
    human_truth.frames = IntervalSet::FromIntervals({walking.frames});
    truth.AddObjectTruth(std::move(human_truth));
  }
};

TEST(RelationshipTruthTest, GeometryOfLeftRightNear) {
  const HandFixture f;
  const RelationshipDetector detector(&f.truth, ModelProfile::IdealObject(),
                                      1);
  RelationshipSpec car_left_of_human{RelationshipKind::kLeftOf, f.car,
                                     f.human, 0.05};
  RelationshipSpec car_right_of_human{RelationshipKind::kRightOf, f.car,
                                      f.human, 0.05};
  RelationshipSpec near{RelationshipKind::kNear, f.car, f.human, 0.05};

  // Early frames: human at ~0.9, car at 0.3 -> car left of human.
  EXPECT_TRUE(detector.TruthHolds(car_left_of_human, 0));
  EXPECT_FALSE(detector.TruthHolds(car_right_of_human, 0));
  EXPECT_FALSE(detector.TruthHolds(near, 0));
  // Late frames: human at ~0.1 -> car right of human.
  EXPECT_FALSE(detector.TruthHolds(car_left_of_human, 999));
  EXPECT_TRUE(detector.TruthHolds(car_right_of_human, 999));
  // Crossing point: human passes x = 0.3 near frame
  // (0.9 - 0.3) / (0.8 / 999) ~= 749; "near" holds around it.
  EXPECT_TRUE(detector.TruthHolds(near, 749));
  // XAt clamps to the screen.
  synth::TruthInstance runaway;
  runaway.frames = Interval(0, 10);
  runaway.x0 = 0.95;
  runaway.vx = 0.1;
  EXPECT_DOUBLE_EQ(runaway.XAt(10), 1.0);
}

TEST(RelationshipTruthTest, SelfRelationshipNeedsTwoInstances) {
  const HandFixture f;
  const RelationshipDetector detector(&f.truth, ModelProfile::IdealObject(),
                                      1);
  // Only one car instance: "car left of car" never holds.
  RelationshipSpec self{RelationshipKind::kLeftOf, f.car, f.car, 0.01};
  EXPECT_FALSE(detector.TruthHolds(self, 500));
}

TEST(RelationshipTruthTest, AbsentTypeNeverHolds) {
  const HandFixture f;
  const RelationshipDetector detector(&f.truth, ModelProfile::IdealObject(),
                                      1);
  // Restrict to frames where the human is absent.
  HandFixture limited;
  limited.truth = synth::GroundTruth(2, VideoLayout(1000, 10, 10));
  RelationshipSpec spec{RelationshipKind::kLeftOf, f.car, f.human, 0.05};
  const RelationshipDetector empty_detector(&limited.truth,
                                            ModelProfile::IdealObject(), 1);
  EXPECT_FALSE(empty_detector.TruthHolds(spec, 0));
}

TEST(RelationshipDetectorTest, IdealProfileMatchesTruth) {
  const HandFixture f;
  const RelationshipDetector detector(&f.truth, ModelProfile::IdealObject(),
                                      1);
  RelationshipSpec spec{RelationshipKind::kLeftOf, f.car, f.human, 0.05};
  for (FrameIndex frame = 0; frame < 1000; frame += 7) {
    EXPECT_EQ(detector.IsPositive(spec, frame),
              detector.TruthHolds(spec, frame))
        << frame;
  }
}

TEST(RelationshipDetectorTest, NoisyRatesComposeDetectorProfile) {
  const HandFixture f;
  ModelProfile profile = ModelProfile::MaskRcnn();
  profile.fn_block = 1;
  profile.fp_block = 1;
  const RelationshipDetector detector(&f.truth, profile, 3);
  RelationshipSpec spec{RelationshipKind::kLeftOf, f.car, f.human, 0.05};
  int64_t tp = 0;
  int64_t pos = 0;
  int64_t fp = 0;
  int64_t neg = 0;
  for (FrameIndex frame = 0; frame < 1000; ++frame) {
    const bool truth_holds = detector.TruthHolds(spec, frame);
    const bool fired = detector.IsPositive(spec, frame);
    if (truth_holds) {
      ++pos;
      tp += fired;
    } else {
      ++neg;
      fp += fired;
    }
  }
  ASSERT_GT(pos, 200);
  ASSERT_GT(neg, 200);
  // Effective TPR ~ tpr^2 (two detections must both succeed).
  EXPECT_NEAR(static_cast<double>(tp) / pos, profile.tpr * profile.tpr,
              0.06);
  EXPECT_NEAR(static_cast<double>(fp) / neg, profile.fpr, 0.02);
}

TEST(RelationshipDetectorTest, FootnoteTwoPipeline) {
  // The footnote-2 architecture end to end: the relationship's per-frame
  // binary outputs feed the identical scan-statistic machinery as object
  // predicates — per-clip counts, a critical value from Eq. 5, merged
  // indicator sequences — and recover the relationship's truth segments.
  const HandFixture f;
  const VideoLayout& layout = f.truth.layout();
  ModelProfile profile = ModelProfile::MaskRcnn();
  profile.fn_block = 1;
  profile.fp_block = 1;
  const RelationshipDetector detector(&f.truth, profile, 9);
  RelationshipSpec spec{RelationshipKind::kLeftOf, f.car, f.human, 0.05};

  const std::vector<int64_t> counts = detector.ClipCounts(spec, layout);
  scanstat::ScanConfig config;
  config.window = layout.frames_per_clip();
  config.horizon = layout.num_frames();
  config.alpha = 0.01;
  const int64_t kcrit = scanstat::CriticalValue(profile.fpr, config);
  std::vector<bool> indicator;
  for (const int64_t count : counts) indicator.push_back(count >= kcrit);
  const IntervalSet result = IntervalSet::FromIndicators(indicator);

  // Truth at clip granularity.
  std::vector<bool> truth_indicator;
  for (ClipIndex c = 0; c < layout.NumClips(); ++c) {
    const Interval frames = layout.ClipFrameRange(c);
    int64_t holds = 0;
    for (FrameIndex v = frames.lo; v <= frames.hi; ++v) {
      holds += detector.TruthHolds(spec, v) ? 1 : 0;
    }
    truth_indicator.push_back(2 * holds >= frames.length());
  }
  const IntervalSet truth_clips =
      IntervalSet::FromIndicators(truth_indicator);
  const eval::F1Result f1 = eval::FrameLevelF1(result, truth_clips, layout);
  EXPECT_GT(f1.f1, 0.9) << f1.ToString();
}

TEST(RelationshipSpecTest, ToStringNamesEverything) {
  const HandFixture f;
  RelationshipSpec spec{RelationshipKind::kNear, f.human, f.car, 0.1};
  EXPECT_EQ(spec.ToString(f.vocab), "human near car");
  EXPECT_STREQ(RelationshipKindName(RelationshipKind::kLeftOf), "left_of");
  EXPECT_STREQ(RelationshipKindName(RelationshipKind::kRightOf), "right_of");
}

TEST(RelationshipDetectorTest, GeneratedScenarioPositionsAreUsable) {
  // The generator populates position tracks; relationships over generated
  // videos are well-defined and occasionally true.
  synth::ScenarioSpec spec;
  spec.minutes = 2;
  spec.seed = 8;
  synth::ActionTrackSpec action;
  action.name = "走";
  spec.actions.push_back(action);
  for (const char* name : {"a", "b"}) {
    synth::ObjectTrackSpec obj;
    obj.name = name;
    obj.background_duty = 0.5;
    obj.mean_len_frames = 600;
    spec.objects.push_back(obj);
  }
  Vocabulary vocab;
  const synth::GroundTruth truth = synth::Generate(spec, vocab);
  const RelationshipDetector detector(&truth, ModelProfile::IdealObject(),
                                      1);
  const ObjectTypeId a = vocab.FindObjectType("a");
  const ObjectTypeId b = vocab.FindObjectType("b");
  RelationshipSpec left{RelationshipKind::kLeftOf, a, b, 0.05};
  RelationshipSpec right{RelationshipKind::kRightOf, a, b, 0.05};
  RelationshipSpec near{RelationshipKind::kNear, a, b, 0.05};
  int64_t both_visible = 0;
  for (FrameIndex frame = 0; frame < truth.layout().num_frames();
       frame += 3) {
    if (truth.InstancesAt(a, frame).empty() ||
        truth.InstancesAt(b, frame).empty()) {
      continue;
    }
    ++both_visible;
    // left / right / near partition the co-visible frames (the margins
    // overlap at the boundary, so at least one always holds).
    EXPECT_TRUE(detector.TruthHolds(left, frame) ||
                detector.TruthHolds(right, frame) ||
                detector.TruthHolds(near, frame))
        << frame;
  }
  EXPECT_GT(both_visible, 50);
}

}  // namespace
}  // namespace detect
}  // namespace vaq
