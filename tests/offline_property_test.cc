// Property sweeps over the offline stack: RVAQ's correctness and cost
// invariants across a wide randomized grid, plus structural properties of
// TBClip.
#include <algorithm>
#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "offline/baselines.h"
#include "offline/rvaq.h"
#include "offline/tbclip.h"
#include "storage/score_table.h"

namespace vaq {
namespace offline {
namespace {

// Random instance with a configurable number of object tables.
struct Instance {
  std::vector<storage::ScoreTable> tables;
  IntervalSet pq;
  QueryTables query;

  Instance() = default;
  Instance(const Instance&) = delete;
};

std::unique_ptr<Instance> RandomInstance(uint64_t seed, int64_t num_clips,
                                         int num_objects) {
  Rng rng(seed);
  auto inst = std::make_unique<Instance>();
  const int num_tables = num_objects + 1;
  for (int t = 0; t < num_tables; ++t) {
    std::vector<storage::ScoreTable::Row> rows;
    for (int64_t c = 0; c < num_clips; ++c) {
      rows.push_back({c, rng.UniformDouble(0, 100)});
    }
    inst->tables.push_back(
        std::move(storage::ScoreTable::Build(std::move(rows))).value());
  }
  int64_t cursor = 0;
  while (cursor < num_clips - 4) {
    const int64_t lo = cursor + 1 + static_cast<int64_t>(rng.UniformInt(5ul));
    const int64_t hi = lo + 1 + static_cast<int64_t>(rng.UniformInt(7ul));
    if (hi >= num_clips) break;
    inst->pq.Add(Interval(lo, hi));
    cursor = hi + 1;
  }
  inst->query.num_clips = num_clips;
  for (int t = 0; t < num_tables; ++t) {
    inst->query.tables.push_back(&inst->tables[static_cast<size_t>(t)]);
    inst->query.sequences.push_back(&inst->pq);
    inst->query.schema.clauses.push_back({t});
  }
  inst->query.schema.num_objects = num_objects;
  inst->query.schema.has_action = true;
  return inst;
}

std::vector<double> SortedScores(const TopKResult& result) {
  std::vector<double> out;
  for (const RankedSequence& seq : result.top) out.push_back(seq.exact_score);
  std::sort(out.begin(), out.end());
  return out;
}

class OfflineGrid
    : public ::testing::TestWithParam<std::tuple<int, int64_t>> {};

TEST_P(OfflineGrid, RvaqEqualsBruteForceUnderAllOptionCombos) {
  const auto [num_objects, num_clips] = GetParam();
  PaperScoring scoring;
  for (uint64_t seed = 0; seed < 6; ++seed) {
    auto inst = RandomInstance(seed * 31 + 7, num_clips, num_objects);
    if (inst->pq.size() < 3) continue;
    const int64_t max_k = static_cast<int64_t>(inst->pq.size());
    for (int64_t k : {int64_t{1}, max_k / 2, max_k}) {
      if (k < 1) continue;
      const TopKResult expected = PqTraverse(inst->query, scoring, k);
      for (const bool use_skip : {true, false}) {
        for (const bool two_sided : {true, false}) {
          RvaqOptions options;
          options.k = k;
          options.use_skip = use_skip;
          options.two_sided_bounds = two_sided;
          const TopKResult actual =
              Rvaq(&inst->query, &scoring, options).Run();
          if (two_sided) {
            EXPECT_EQ(SortedScores(actual), SortedScores(expected))
                << "seed=" << seed << " k=" << k << " skip=" << use_skip;
          } else {
            // The literal one-sided bookkeeping is NOT exact (DESIGN.md
            // §5, item 10): assert only soundness — k sequences from P_q
            // with scores bounded by the true optimum.
            ASSERT_EQ(actual.top.size(), expected.top.size());
            for (const RankedSequence& seq : actual.top) {
              EXPECT_LE(seq.exact_score,
                        expected.top[0].exact_score + 1e-9);
            }
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OfflineGrid,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values<int64_t>(40, 120)));

TEST(OfflinePropertyTest, SkipNeverIncreasesSeeks) {
  PaperScoring scoring;
  for (uint64_t seed = 100; seed < 112; ++seed) {
    auto inst = RandomInstance(seed, 80, 2);
    if (inst->pq.size() < 4) continue;
    RvaqOptions options;
    options.k = 2;
    const int64_t with_skip =
        Rvaq(&inst->query, &scoring, options).Run().accesses.seeks();
    options.use_skip = false;
    const int64_t without_skip =
        Rvaq(&inst->query, &scoring, options).Run().accesses.seeks();
    EXPECT_LE(with_skip, without_skip) << "seed=" << seed;
  }
}

TEST(OfflinePropertyTest, RvaqNeverSeeksMoreThanFa) {
  PaperScoring scoring;
  for (uint64_t seed = 200; seed < 212; ++seed) {
    auto inst = RandomInstance(seed, 80, 2);
    if (inst->pq.size() < 4) continue;
    RvaqOptions options;
    options.k = 2;
    const int64_t rvaq =
        Rvaq(&inst->query, &scoring, options).Run().accesses.seeks();
    const int64_t fa =
        FaTopK(inst->query, scoring, 2).accesses.random_accesses;
    EXPECT_LE(rvaq, fa + 8) << "seed=" << seed;
  }
}

TEST(OfflinePropertyTest, TopKScoresAreMonotoneInK) {
  // The i-th best score for K = a equals the i-th best for K = b >= a.
  PaperScoring scoring;
  auto inst = RandomInstance(42, 100, 2);
  ASSERT_GE(inst->pq.size(), 5u);
  RvaqOptions small;
  small.k = 2;
  RvaqOptions large;
  large.k = 5;
  const TopKResult first = Rvaq(&inst->query, &scoring, small).Run();
  const TopKResult second = Rvaq(&inst->query, &scoring, large).Run();
  ASSERT_EQ(first.top.size(), 2u);
  ASSERT_EQ(second.top.size(), 5u);
  for (size_t i = 0; i < first.top.size(); ++i) {
    EXPECT_DOUBLE_EQ(first.top[i].exact_score, second.top[i].exact_score);
  }
  for (size_t i = 1; i < second.top.size(); ++i) {
    EXPECT_GE(second.top[i - 1].exact_score, second.top[i].exact_score);
  }
}

TEST(TbClipPropertyTest, DeliversEveryPqClipExactlyOnceInOrder) {
  PaperScoring scoring;
  for (uint64_t seed = 300; seed < 306; ++seed) {
    auto inst = RandomInstance(seed, 60, 2);
    std::vector<bool> skip(60, true);
    for (const Interval& iv : inst->pq.intervals()) {
      for (ClipIndex c = iv.lo; c <= iv.hi; ++c) {
        skip[static_cast<size_t>(c)] = false;
      }
    }
    ClipScoreSource source(&inst->query, &scoring);
    TbClipIterator iterator(&inst->query, &source, &skip);
    TbClipIterator::Entry top;
    TbClipIterator::Entry bottom;
    std::vector<ClipIndex> seen;
    double last_top = std::numeric_limits<double>::infinity();
    double last_bottom = -std::numeric_limits<double>::infinity();
    while (iterator.Next(&top, &bottom)) {
      if (top.valid()) {
        seen.push_back(top.clip);
        EXPECT_LE(top.score, last_top + 1e-9);  // Tops non-increasing.
        last_top = top.score;
      }
      if (bottom.valid() && (!top.valid() || bottom.clip != top.clip)) {
        seen.push_back(bottom.clip);
        EXPECT_GE(bottom.score, last_bottom - 1e-9);
        last_bottom = bottom.score;
      }
    }
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
    EXPECT_EQ(static_cast<int64_t>(seen.size()), inst->pq.TotalLength())
        << "seed=" << seed;
  }
}

TEST(TbClipPropertyTest, TopIsAlwaysTheTrueMaximumOfRemaining) {
  PaperScoring scoring;
  auto inst = RandomInstance(77, 50, 2);
  std::vector<bool> skip(50, true);
  std::vector<ClipIndex> remaining;
  for (const Interval& iv : inst->pq.intervals()) {
    for (ClipIndex c = iv.lo; c <= iv.hi; ++c) {
      skip[static_cast<size_t>(c)] = false;
      remaining.push_back(c);
    }
  }
  // Reference scores straight from the tables.
  auto exact = [&](ClipIndex c) {
    std::vector<double> values;
    for (const auto* table : inst->query.AllTables()) {
      values.push_back(
          static_cast<const storage::ScoreTable*>(table)->PeekScore(c));
    }
    return scoring.ClipScore(values, inst->query.schema);
  };
  ClipScoreSource source(&inst->query, &scoring);
  TbClipIterator iterator(&inst->query, &source, &skip);
  TbClipIterator::Entry top;
  TbClipIterator::Entry bottom;
  while (iterator.Next(&top, &bottom)) {
    if (top.valid()) {
      double best = -1;
      for (ClipIndex c : remaining) best = std::max(best, exact(c));
      EXPECT_DOUBLE_EQ(top.score, best);
      std::erase(remaining, top.clip);
    }
    if (bottom.valid() && bottom.clip != top.clip) {
      std::erase(remaining, bottom.clip);
    }
  }
  EXPECT_TRUE(remaining.empty());
}

}  // namespace
}  // namespace offline
}  // namespace vaq
