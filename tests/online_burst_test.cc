#include <gtest/gtest.h>

#include "detect/models.h"
#include "eval/metrics.h"
#include "online/svaqd.h"
#include "synth/scenario.h"

namespace vaq {
namespace online {
namespace {

// Object-only scenario with a configurable false-positive burst length.
struct BurstRun {
  eval::F1Result f1;
  int64_t kcrit = 0;
};

BurstRun RunBurst(int32_t fp_block, bool burst_aware) {
  auto scenario_or = synth::Scenario::YouTube(2).WithQuery("", {"car"});
  const synth::Scenario& scenario = scenario_or.value();
  detect::ModelProfile object_profile = detect::ModelProfile::MaskRcnn();
  object_profile.fpr = 0.04;
  object_profile.fp_block = fp_block;
  object_profile.fn_block = 2;
  detect::ModelBundle models = detect::ModelBundle::Make(
      scenario.truth(), object_profile, detect::ModelProfile::I3d(),
      detect::ModelProfile::CenterTrack(), 7);
  SvaqdOptions options;
  options.burst_aware = burst_aware;
  Svaqd engine(scenario.query(), scenario.layout(), options);
  const OnlineResult result =
      engine.Run(models.detector.get(), models.recognizer.get());
  BurstRun run;
  run.f1 = eval::SequenceF1(result.sequences, scenario.TruthClips());
  run.kcrit = result.kcrit_objects[0];
  return run;
}

TEST(BurstAwareTest, IidCalibrationCollapsesUnderBursts) {
  const BurstRun iid = RunBurst(/*fp_block=*/8, /*burst_aware=*/false);
  EXPECT_LT(iid.f1.precision, 0.5);  // Bursts overwhelm iid k_crit.
}

TEST(BurstAwareTest, MarkovCalibrationRecoversPrecision) {
  const BurstRun iid = RunBurst(/*fp_block=*/8, /*burst_aware=*/false);
  const BurstRun aware = RunBurst(/*fp_block=*/8, /*burst_aware=*/true);
  EXPECT_GT(aware.f1.precision, iid.f1.precision + 0.3);
  EXPECT_GT(aware.f1.f1, iid.f1.f1 + 0.3);
  // The burst-aware critical value is strictly larger.
  EXPECT_GT(aware.kcrit, iid.kcrit);
}

TEST(BurstAwareTest, HarmlessUnderIidNoise) {
  const BurstRun iid = RunBurst(/*fp_block=*/1, /*burst_aware=*/false);
  const BurstRun aware = RunBurst(/*fp_block=*/1, /*burst_aware=*/true);
  // With truly iid noise the estimated rho stays near 0 and both modes
  // perform equivalently.
  EXPECT_NEAR(aware.f1.f1, iid.f1.f1, 0.05);
}

}  // namespace
}  // namespace online
}  // namespace vaq
