// Graceful degradation of the online engines under injected faults: the
// resilient path must stay bit-compatible with the raw path when the plan
// injects nothing, batch and streaming must agree fault for fault, and
// every missing-observation policy must keep event streams well-formed.
#include <gtest/gtest.h>

#include <vector>

#include "detect/resilient.h"
#include "eval/metrics.h"
#include "fault/fault_plan.h"
#include "online/streaming.h"
#include "online/svaqd.h"
#include "synth/scenario.h"

namespace vaq {
namespace online {
namespace {

const synth::Scenario& FaultScenario() {
  static const synth::Scenario* scenario = [] {
    synth::ScenarioSpec spec;
    spec.name = "resilience_test";
    spec.minutes = 6;
    spec.fps = 30;
    spec.seed = 808;
    synth::ActionTrackSpec action;
    action.name = "running";
    action.duty = 0.3;
    action.mean_len_frames = 1000;
    spec.actions.push_back(action);
    synth::ObjectTrackSpec dog;
    dog.name = "dog";
    dog.background_duty = 0.06;
    dog.mean_len_frames = 700;
    dog.coupled_action = "running";
    dog.cover_action_prob = 0.9;
    spec.objects.push_back(dog);
    return new synth::Scenario(
        synth::Scenario::FromSpec(spec, "running", {"dog"}));
  }();
  return *scenario;
}

fault::FaultSpec OutageSpec() {
  fault::FaultSpec spec;
  spec.crash_rate = 0.1;
  spec.crash_len_units = 600;
  spec.timeout_rate = 0.02;
  spec.nan_score_rate = 0.01;
  spec.drop_clip_rate = 0.02;
  return spec;
}

TEST(ResilienceTest, ZeroRatePlanMatchesRawPathBitForBit) {
  const synth::Scenario& sc = FaultScenario();
  detect::ModelBundle m1 = detect::ModelBundle::MaskRcnnI3d(sc.truth(), 5);
  const OnlineResult raw = Svaqd(sc.query(), sc.layout(), SvaqdOptions{})
                               .Run(m1.detector.get(), m1.recognizer.get());

  const fault::FaultPlan inert(fault::FaultSpec{}, 123);
  SvaqdOptions options;
  options.fault_plan = &inert;
  detect::ModelBundle m2 = detect::ModelBundle::MaskRcnnI3d(sc.truth(), 5);
  const OnlineResult wrapped = Svaqd(sc.query(), sc.layout(), options)
                                   .Run(m2.detector.get(), m2.recognizer.get());

  EXPECT_EQ(wrapped.clip_indicator, raw.clip_indicator);
  EXPECT_EQ(wrapped.sequences, raw.sequences);
  EXPECT_EQ(wrapped.kcrit_objects, raw.kcrit_objects);
  EXPECT_EQ(wrapped.kcrit_action, raw.kcrit_action);
  EXPECT_EQ(wrapped.detector_stats.inferences, raw.detector_stats.inferences);
  EXPECT_EQ(wrapped.degraded_clips, 0);
  EXPECT_EQ(wrapped.detector_stats.faults_injected, 0);
  EXPECT_EQ(wrapped.detector_stats.fallbacks, 0);
}

TEST(ResilienceTest, StreamingMatchesBatchUnderFaults) {
  const synth::Scenario& sc = FaultScenario();
  const fault::FaultPlan plan(OutageSpec(), 21);
  SvaqdOptions options;
  options.fault_plan = &plan;

  detect::ModelBundle m1 = detect::ModelBundle::MaskRcnnI3d(sc.truth(), 5);
  const OnlineResult batch = Svaqd(sc.query(), sc.layout(), options)
                                 .Run(m1.detector.get(), m1.recognizer.get());

  detect::ModelBundle m2 = detect::ModelBundle::MaskRcnnI3d(sc.truth(), 5);
  StreamingSvaqd stream(sc.query(), sc.layout(), options, nullptr);
  std::vector<bool> indicators;
  for (ClipIndex c = 0; c < sc.layout().NumClips(); ++c) {
    indicators.push_back(
        *stream.PushClip(m2.detector.get(), m2.recognizer.get()));
  }
  stream.Finish();

  EXPECT_EQ(indicators, batch.clip_indicator);
  EXPECT_EQ(stream.sequences(), batch.sequences);
  EXPECT_EQ(stream.degraded_clips(), batch.degraded_clips);
  EXPECT_EQ(stream.dropped_clips(), batch.dropped_clips);
  EXPECT_GT(batch.degraded_clips, 0);  // The spec really injected faults.
}

TEST(ResilienceTest, FaultCountersSurfaceInModelStats) {
  const synth::Scenario& sc = FaultScenario();
  fault::FaultSpec spec = OutageSpec();
  spec.timeout_rate = 0.1;   // Enough per-attempt faults to force retries.
  spec.drop_clip_rate = 0.1;  // The stream is short (~108 clips); make
                              // drops likely enough to observe.
  const fault::FaultPlan plan(spec, 77);
  SvaqdOptions options;
  options.fault_plan = &plan;
  options.missing_policy = MissingObsPolicy::kBackgroundPrior;

  detect::ModelBundle models = detect::ModelBundle::MaskRcnnI3d(sc.truth(), 5);
  const OnlineResult result =
      Svaqd(sc.query(), sc.layout(), options)
          .Run(models.detector.get(), models.recognizer.get());

  EXPECT_GT(result.detector_stats.faults_injected, 0);
  EXPECT_GT(result.detector_stats.retries, 0);
  EXPECT_GT(result.detector_stats.failures, 0);
  EXPECT_GT(result.detector_stats.fallbacks, 0);
  // Sustained outage windows (600 frames at breaker threshold 4) must
  // trip the breaker at least once.
  EXPECT_GT(result.detector_stats.breaker_trips, 0);
  EXPECT_GT(result.degraded_clips, 0);
  EXPECT_GT(result.dropped_clips, 0);
}

// Satellite: every missing-observation policy keeps the event stream
// well-formed — (gap* opened (gap|extended)* closed)* with every opened
// sequence eventually closed and no overlaps between closed sequences.
TEST(ResilienceTest, EventStreamsStayWellFormedUnderEveryPolicy) {
  const synth::Scenario& sc = FaultScenario();
  for (const MissingObsPolicy policy :
       {MissingObsPolicy::kAssumeNegative, MissingObsPolicy::kCarryLast,
        MissingObsPolicy::kBackgroundPrior}) {
    for (const uint64_t seed : {3u, 11u}) {
      const fault::FaultPlan plan(OutageSpec(), seed);
      SvaqdOptions options;
      options.fault_plan = &plan;
      options.missing_policy = policy;

      detect::ModelBundle models =
          detect::ModelBundle::MaskRcnnI3d(sc.truth(), 5);
      std::vector<SequenceEvent> events;
      StreamingSvaqd stream(
          sc.query(), sc.layout(), options,
          [&](const SequenceEvent& event) { events.push_back(event); });
      for (ClipIndex c = 0; c < sc.layout().NumClips(); ++c) {
        ASSERT_TRUE(
            stream.PushClip(models.detector.get(), models.recognizer.get())
                .ok());
      }
      stream.Finish();

      bool open = false;
      Interval current;
      int64_t gap_events = 0;
      ClipIndex last_closed_hi = -1;
      for (const SequenceEvent& event : events) {
        switch (event.kind) {
          case SequenceEvent::Kind::kOpened:
            ASSERT_FALSE(open);
            open = true;
            current = event.sequence;
            EXPECT_GT(event.sequence.lo, last_closed_hi);  // No overlap.
            break;
          case SequenceEvent::Kind::kExtended:
            ASSERT_TRUE(open);
            EXPECT_EQ(event.sequence.lo, current.lo);
            EXPECT_EQ(event.sequence.hi, current.hi + 1);
            current = event.sequence;
            break;
          case SequenceEvent::Kind::kClosed:
            ASSERT_TRUE(open);
            open = false;
            EXPECT_EQ(event.sequence.lo, current.lo);
            EXPECT_EQ(event.sequence.hi, current.hi);
            last_closed_hi = event.sequence.hi;
            break;
          case SequenceEvent::Kind::kGap:
            ++gap_events;
            EXPECT_GE(event.clip, 0);
            EXPECT_LT(event.clip, sc.layout().NumClips());
            break;
        }
      }
      EXPECT_FALSE(open);  // Every kOpened eventually kClosed.
      EXPECT_EQ(gap_events, stream.degraded_clips());
    }
  }
}

TEST(ResilienceTest, AssumeNegativeIsMostConservativePolicy) {
  // Under a heavy outage, assume-negative can only lose positives
  // relative to background-prior; its result sequences cover no more
  // clips. (Coupled fault schedules make this deterministic.)
  const synth::Scenario& sc = FaultScenario();
  fault::FaultSpec spec;
  spec.crash_rate = 0.25;
  spec.crash_len_units = 900;
  const fault::FaultPlan plan(spec, 4);

  auto run = [&](MissingObsPolicy policy) {
    SvaqdOptions options;
    options.fault_plan = &plan;
    options.missing_policy = policy;
    detect::ModelBundle models =
        detect::ModelBundle::MaskRcnnI3d(sc.truth(), 5);
    return Svaqd(sc.query(), sc.layout(), options)
        .Run(models.detector.get(), models.recognizer.get());
  };
  const OnlineResult negative = run(MissingObsPolicy::kAssumeNegative);
  const OnlineResult prior = run(MissingObsPolicy::kBackgroundPrior);
  EXPECT_LE(negative.sequences.TotalLength(), prior.sequences.TotalLength());
}

}  // namespace
}  // namespace online
}  // namespace vaq
