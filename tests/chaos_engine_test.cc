// Acceptance suite for the chaos harness itself (src/chaos/): replay
// specs round-trip through JSON exactly, ddmin shrinks to 1-minimal
// schedules, a small seeded sweep holds every oracle, and — the
// harness's own canary — an injected double-apply bug is caught, shrunk
// to a single event and reproduced byte-identically from the emitted
// JSON document.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/engine.h"
#include "chaos/scenario.h"
#include "chaos/schedule.h"
#include "chaos/shrink.h"
#include "chaos/trial.h"

namespace vaq {
namespace chaos {
namespace {

TEST(ChaosReplayJson, RoundTripsExactly) {
  ReplaySpec spec;
  spec.seed = 0xdeadbeefcafef00dULL;  // Above 2^53: breaks if parsed
  spec.trial = 1234567890123LL;       // through a double.
  spec.canary = true;
  ChaosEvent crash;
  crash.kind = EventKind::kTornAdvance;
  crash.at_advance = 9;
  spec.events.push_back(crash);
  ChaosEvent kill;
  kill.kind = EventKind::kNodeKill;
  kill.host = 3;
  kill.from_ms = 12.25;
  kill.to_ms = 97.625;
  spec.events.push_back(kill);
  ChaosEvent part;
  part.kind = EventKind::kNetPartition;
  part.from_ms = 0.1;  // Not exactly representable: %.17g must survive.
  part.to_ms = 33.3;
  spec.events.push_back(part);

  const std::string json = ReplayToJson(spec);
  const auto parsed = ReplayFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->seed, spec.seed);
  EXPECT_EQ(parsed->trial, spec.trial);
  EXPECT_EQ(parsed->canary, spec.canary);
  ASSERT_EQ(parsed->events.size(), spec.events.size());
  for (size_t i = 0; i < spec.events.size(); ++i) {
    EXPECT_TRUE(parsed->events[i] == spec.events[i]) << "event " << i;
  }
  // Emission is canonical: a second round trip is byte-identical.
  EXPECT_EQ(ReplayToJson(*parsed), json);
}

TEST(ChaosReplayJson, RejectsMalformedDocuments) {
  EXPECT_FALSE(ReplayFromJson("").ok());
  EXPECT_FALSE(ReplayFromJson("{}").ok());  // No version key.
  EXPECT_FALSE(ReplayFromJson("{\"chaos_replay\": 2}").ok());
  EXPECT_FALSE(
      ReplayFromJson("{\"chaos_replay\": 1, \"bogus\": 3}").ok());
  EXPECT_FALSE(ReplayFromJson("{\"chaos_replay\": 1} trailing").ok());
  EXPECT_FALSE(ReplayFromJson("{\"chaos_replay\": 1, \"events\": "
                              "[{\"kind\": \"no_such_kind\"}]}")
                   .ok());
  EXPECT_TRUE(ReplayFromJson("{\"chaos_replay\": 1}").ok());
}

TEST(ChaosScenarioGen, PureFunctionOfSeedAndTrial) {
  for (int64_t trial = 0; trial < 20; ++trial) {
    const TrialScenario a = MakeTrialScenario(99, trial);
    const TrialScenario b = MakeTrialScenario(99, trial);
    EXPECT_EQ(a.phase, b.phase) << trial;
    EXPECT_EQ(a.num_streams, b.num_streams) << trial;
    EXPECT_EQ(a.advances, b.advances) << trial;
    EXPECT_EQ(a.env_seed, b.env_seed) << trial;
    const Schedule sa = GenerateSchedule(a, 99);
    const Schedule sb = GenerateSchedule(b, 99);
    EXPECT_EQ(sa, sb) << trial;
  }
}

TEST(ChaosScenarioGen, SweepCoversEveryPhase) {
  int counts[3] = {0, 0, 0};
  for (int64_t trial = 0; trial < 60; ++trial) {
    counts[static_cast<int>(MakeTrialScenario(1, trial).phase)]++;
  }
  EXPECT_GT(counts[0], 0);
  EXPECT_GT(counts[1], 0);
  EXPECT_GT(counts[2], 0);
}

// Ddmin over a synthetic predicate: failure iff the schedule contains
// BOTH marker events (a dependent pair buried in noise).
TEST(ChaosShrink, FindsMinimalDependentPair) {
  Schedule noisy;
  for (int i = 0; i < 12; ++i) {
    ChaosEvent e;
    e.kind = EventKind::kForceCheckpoint;
    e.at_advance = i;
    noisy.push_back(e);
  }
  ChaosEvent a;
  a.kind = EventKind::kCrashRestart;
  a.at_advance = 100;
  ChaosEvent b;
  b.kind = EventKind::kTornAdvance;
  b.at_advance = 200;
  noisy.insert(noisy.begin() + 3, a);
  noisy.insert(noisy.begin() + 9, b);

  int64_t calls = 0;
  const ScheduleFails fails = [&](const Schedule& s) -> StatusOr<bool> {
    ++calls;
    bool has_a = false;
    bool has_b = false;
    for (const ChaosEvent& e : s) {
      if (e == a) has_a = true;
      if (e == b) has_b = true;
    }
    return has_a && has_b;
  };
  const auto result = DdminSchedule(noisy, fails);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->minimal.size(), 2u);
  EXPECT_TRUE(result->minimal[0] == a);
  EXPECT_TRUE(result->minimal[1] == b);
  EXPECT_EQ(result->runs, calls);
}

TEST(ChaosShrink, SingleEventScheduleIsAlreadyMinimal) {
  Schedule one;
  ChaosEvent e;
  e.kind = EventKind::kCrashRestart;
  e.at_advance = 5;
  one.push_back(e);
  const ScheduleFails fails = [](const Schedule&) -> StatusOr<bool> {
    ADD_FAILURE() << "predicate must not run for a single-event schedule";
    return true;
  };
  const auto result = DdminSchedule(one, fails);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->minimal.size(), 1u);
  EXPECT_EQ(result->runs, 0);
}

TEST(ChaosSweep, SmallSweepHoldsEveryOracle) {
#ifdef VAQ_UNDER_SANITIZER
  constexpr int64_t kTrials = 3;
#else
  constexpr int64_t kTrials = 10;
#endif
  ChaosOptions options;
  options.trials = kTrials;
  options.seed = 1;
  const auto report = RunChaos(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->failed())
      << "first violation: " << report->failure.front();
  EXPECT_EQ(report->trials_run, kTrials);
}

TEST(ChaosSweep, CanaryIsCaughtShrunkAndReplayable) {
  // The harness's own acceptance test: arm the injected double-apply
  // bug, sweep until a standing trial with a crash event trips it,
  // and require the full pipeline — detection, 1-minimal shrink (the
  // canary fires on ANY single crash/torn event, so minimal size is
  // exactly 1, well under the <= 3 budget), and a byte-identical replay
  // from the emitted JSON document.
#ifdef VAQ_UNDER_SANITIZER
  GTEST_SKIP() << "canary sweep runs in the plain config only";
#else
  ChaosOptions options;
  options.trials = 30;
  options.seed = 1;
  options.canary = true;
  const auto report = RunChaos(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->failed()) << "canary bug was not detected";
  EXPECT_EQ(report->failed_phase, Phase::kStanding);
  EXPECT_LE(report->reproducer.events.size(), 3u);
  EXPECT_TRUE(report->replay_confirmed);

  // The reproducer document alone — parsed back like a user would —
  // reproduces the identical violations.
  const auto spec = ReplayFromJson(report->replay_json);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const auto replay = RunReplay(*spec, options);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->failure, report->failure);

  // The same trial with the canary disarmed passes: the failure is the
  // injected bug, not the schedule.
  ReplaySpec clean = *spec;
  clean.canary = false;
  const auto healthy = RunReplay(clean, options);
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_FALSE(healthy->failed())
      << "violation without canary: " << healthy->failure.front();
#endif
}

}  // namespace
}  // namespace chaos
}  // namespace vaq
