# Tier-1 check for `vaqctl metrics`: the seeded demo run must succeed
# (its built-in JSON selfcheck passes), emit the key metric families, and
# be byte-identical across two runs with the same seed.
#
# Invoked as:
#   cmake -DVAQCTL=<path-to-vaqctl> -P vaqctl_metrics_check.cmake

if(NOT DEFINED VAQCTL)
  message(FATAL_ERROR "pass -DVAQCTL=<path to vaqctl>")
endif()

execute_process(
  COMMAND ${VAQCTL} metrics --seed 7
  OUTPUT_VARIABLE run1
  ERROR_VARIABLE err1
  RESULT_VARIABLE rc1)
if(NOT rc1 EQUAL 0)
  message(FATAL_ERROR "vaqctl metrics failed (rc=${rc1}): ${err1}")
endif()

execute_process(
  COMMAND ${VAQCTL} metrics --seed 7
  OUTPUT_VARIABLE run2
  ERROR_VARIABLE err2
  RESULT_VARIABLE rc2)
if(NOT rc2 EQUAL 0)
  message(FATAL_ERROR "vaqctl metrics rerun failed (rc=${rc2}): ${err2}")
endif()

if(NOT run1 STREQUAL run2)
  message(FATAL_ERROR
    "vaqctl metrics is not deterministic: two --seed 7 runs differ")
endif()

foreach(family
    vaq_detector_inferences_total
    vaq_recognizer_inferences_total
    vaq_model_calls_total
    vaq_model_retries_total
    vaq_breaker_transitions_total
    vaq_clip_eval_simulated_ms
    vaq_gap_policy_activations_total
    vaq_storage_accesses_total
    vaq_span_total)
  string(FIND "${run1}" "${family}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR
      "vaqctl metrics output is missing family '${family}'")
  endif()
endforeach()

message(STATUS "vaqctl metrics: deterministic, selfchecked, all families present")
