#include "common/rng.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

namespace vaq {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 4);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 4);
  }
  // All 8 values should appear.
  bool seen[8] = {};
  for (int i = 0; i < 10000; ++i) seen[rng.UniformInt(-3, 4) + 3] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(RngTest, BernoulliMatchesRate) {
  Rng rng(11);
  for (double p : {0.0, 0.01, 0.3, 1.0}) {
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) hits += rng.Bernoulli(p) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.02) << "p=" << p;
  }
}

// Moment checks for the continuous distributions (parameterized sweep).
class RngMomentsTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RngMomentsTest, GammaMeanAndVariance) {
  const auto [shape, scale] = GetParam();
  Rng rng(13);
  const int n = 40000;
  double sum = 0;
  double sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gamma(shape, scale);
    ASSERT_GE(x, 0.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, shape * scale, 0.08 * shape * scale + 0.02);
  EXPECT_NEAR(var, shape * scale * scale,
              0.20 * shape * scale * scale + 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RngMomentsTest,
    ::testing::Combine(::testing::Values(0.5, 1.0, 2.5, 8.0),
                       ::testing::Values(0.5, 2.0)));

TEST(RngTest, BetaMeanMatches) {
  Rng rng(17);
  for (auto [a, b] : {std::pair{2.0, 5.0}, {5.0, 2.0}, {1.0, 1.0}}) {
    double sum = 0;
    const int n = 30000;
    for (int i = 0; i < n; ++i) {
      const double x = rng.Beta(a, b);
      ASSERT_GE(x, 0.0);
      ASSERT_LE(x, 1.0);
      sum += x;
    }
    EXPECT_NEAR(sum / n, a / (a + b), 0.01) << a << "," << b;
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(19);
  double sum = 0;
  double sum2 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(sum2 / n - mean * mean, 4.0, 0.15);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  double sum = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(0.25);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(RngTest, GeometricMean) {
  Rng rng(29);
  double sum = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const int64_t x = rng.Geometric(0.2);
    ASSERT_GE(x, 0);
    sum += static_cast<double>(x);
  }
  EXPECT_NEAR(sum / n, 4.0, 0.2);  // (1-p)/p = 4.
}

TEST(RngTest, MixSeedSeparatesStreams) {
  Rng a(MixSeed(42, 1));
  Rng b(MixSeed(42, 2));
  EXPECT_NE(a.Next(), b.Next());
}

}  // namespace
}  // namespace vaq
