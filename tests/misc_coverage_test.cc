// Edge-path coverage across modules: page-straddling reads, odd layouts,
// CNF engine corner configurations, catalog overwrite semantics.
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "detect/models.h"
#include "online/cnf_engine.h"
#include "storage/catalog.h"
#include "storage/paged_table.h"
#include "synth/generator.h"

namespace vaq {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const char* name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

TEST(PagedTableEdgeTest, UnalignedPageSizeForcesStraddlingReads) {
  // A 100-byte page never aligns with the 16-byte rows or the 4096-byte
  // header, so every access path must stitch values across page
  // boundaries.
  const std::string dir = TempDir("vaq_misc_straddle");
  Rng rng(1);
  std::vector<storage::ScoreTable::Row> rows;
  for (int64_t c = 0; c < 300; ++c) rows.push_back({c, rng.UniformDouble(0, 9)});
  const storage::ScoreTable memory =
      std::move(storage::ScoreTable::Build(std::move(rows))).value();
  const std::string path = dir + "/t.pgd";
  ASSERT_TRUE(storage::WritePagedTable(memory, path).ok());

  storage::PageCache cache(16, /*page_size=*/100);
  auto paged = std::move(storage::PagedScoreTable::Open(path, &cache)).value();
  for (int64_t rank = 0; rank < 300; rank += 7) {
    const storage::ScoreRow a = memory.SortedRow(rank);
    const storage::ScoreRow b = paged->SortedRow(rank);
    ASSERT_EQ(a.clip, b.clip) << rank;
    ASSERT_DOUBLE_EQ(a.score, b.score) << rank;
  }
  for (ClipIndex cid = 0; cid < 300; cid += 11) {
    ASSERT_DOUBLE_EQ(paged->RandomScore(cid), memory.PeekScore(cid));
  }
  std::vector<double> a;
  std::vector<double> b;
  memory.RangeScores(37, 222, &a);
  paged->RangeScores(37, 222, &b);
  EXPECT_EQ(a, b);
}

TEST(CatalogEdgeTest, SaveOverwritesExistingVideo) {
  const storage::Catalog catalog(TempDir("vaq_misc_overwrite"));
  storage::VideoIndex first;
  first.video_id = 1;
  first.num_clips = 4;
  storage::TypeIndex t;
  t.type_id = 0;
  t.type_name = "car";
  t.table = std::move(storage::ScoreTable::Build(
                          {{0, 1.0}, {1, 2.0}, {2, 3.0}, {3, 4.0}}))
                .value();
  first.objects.push_back(std::move(t));
  ASSERT_TRUE(catalog.Save("v", first).ok());

  storage::VideoIndex second = std::move(first);
  second.video_id = 99;
  ASSERT_TRUE(catalog.Save("v", second).ok());
  auto loaded = catalog.Load("v");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->video_id, 99);
}

TEST(VideoLayoutEdgeTest, SingleClipVideo) {
  const VideoLayout layout(7, 10, 10);  // Shorter than one shot.
  EXPECT_EQ(layout.NumShots(), 1);
  EXPECT_EQ(layout.NumClips(), 1);
  EXPECT_EQ(layout.ShotFrameRange(0), Interval(0, 6));
  EXPECT_EQ(layout.ClipFrameRange(0), Interval(0, 6));
}

TEST(CnfEngineEdgeTest, SingleLiteralActionOnlyQuery) {
  synth::ScenarioSpec spec;
  spec.minutes = 3;
  spec.seed = 12;
  synth::ActionTrackSpec action;
  action.name = "spin";
  action.duty = 0.3;
  action.mean_len_frames = 800;
  spec.actions.push_back(action);
  Vocabulary vocab;
  const synth::GroundTruth truth = synth::Generate(spec, vocab);
  detect::ModelBundle models = detect::ModelBundle::Ideal(truth, 1);
  auto cnf = CnfQuery::FromNames(vocab, {{"act:spin"}});
  ASSERT_TRUE(cnf.ok());
  online::CnfEngineOptions options;
  options.svaqd.probe_period = 0;  // No probing needed: single literal.
  online::CnfEngine engine(*cnf, truth.layout(), options);
  const online::CnfResult result =
      engine.Run(/*detector=*/nullptr, models.recognizer.get());
  EXPECT_GT(result.sequences.TotalLength(), 0);
  EXPECT_EQ(result.literals.size(), 1u);
}

TEST(CnfEngineEdgeTest, RepeatedLiteralAcrossClausesEvaluatedOnce) {
  synth::ScenarioSpec spec;
  spec.minutes = 3;
  spec.seed = 13;
  synth::ActionTrackSpec action;
  action.name = "spin";
  spec.actions.push_back(action);
  synth::ObjectTrackSpec obj;
  obj.name = "car";
  obj.background_duty = 0.3;
  obj.mean_len_frames = 600;
  spec.objects.push_back(obj);
  Vocabulary vocab;
  const synth::GroundTruth truth = synth::Generate(spec, vocab);
  detect::ModelBundle models = detect::ModelBundle::MaskRcnnI3d(truth, 1);
  // "car" appears in both clauses; type_queries must not double per clip.
  auto cnf = CnfQuery::FromNames(
      vocab, {{"obj:car"}, {"obj:car", "act:spin"}});
  ASSERT_TRUE(cnf.ok());
  online::CnfEngineOptions options;
  options.svaqd.base.short_circuit = false;
  online::CnfEngine engine(*cnf, truth.layout(), options);
  const online::CnfResult result =
      engine.Run(models.detector.get(), models.recognizer.get());
  // Every frame is queried for "car" exactly once (plus action shots for
  // the second clause when reached).
  EXPECT_LE(models.detector->stats().type_queries,
            truth.layout().num_frames());
  EXPECT_EQ(result.clips_processed, truth.layout().NumClips());
}

TEST(VocabularyEdgeTest, ObjectAndActionNamespacesAreSeparate) {
  Vocabulary vocab;
  const ObjectTypeId obj = vocab.AddObjectType("running");
  const ActionTypeId act = vocab.AddActionType("running");
  EXPECT_EQ(obj, 0);
  EXPECT_EQ(act, 0);  // Same dense id in a different space: no clash.
  EXPECT_EQ(vocab.ObjectTypeName(obj), vocab.ActionTypeName(act));
}

TEST(PageCacheEdgeTest, EvictionKeepsCapacityBound) {
  const std::string dir = TempDir("vaq_misc_evict");
  Rng rng(2);
  std::vector<storage::ScoreTable::Row> rows;
  for (int64_t c = 0; c < 2000; ++c) rows.push_back({c, rng.UniformDouble()});
  const storage::ScoreTable memory =
      std::move(storage::ScoreTable::Build(std::move(rows))).value();
  const std::string path = dir + "/t.pgd";
  ASSERT_TRUE(storage::WritePagedTable(memory, path).ok());
  storage::PageCache cache(2, 512);
  auto paged = std::move(storage::PagedScoreTable::Open(path, &cache)).value();
  // Ping-pong between two far-apart regions plus a third: constant
  // eviction, correct values throughout.
  for (int round = 0; round < 50; ++round) {
    ASSERT_DOUBLE_EQ(paged->RandomScore(1), memory.PeekScore(1));
    ASSERT_DOUBLE_EQ(paged->RandomScore(1000), memory.PeekScore(1000));
    ASSERT_DOUBLE_EQ(paged->RandomScore(1999), memory.PeekScore(1999));
  }
  EXPECT_GT(cache.fetches(), 100);  // Thrashing, as designed.
}

}  // namespace
}  // namespace vaq
