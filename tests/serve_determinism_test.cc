// Determinism of the serving runtime: for a fixed seed and workload the
// merged results and the logical metric families must be byte-identical
// no matter how many worker threads execute the queries. This is the
// load-bearing property of the per-stream sharding design (see
// src/serve/server.h and DESIGN.md §9), and the test that the VAQ_TSAN
// configuration replays under ThreadSanitizer.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "tools/pipeline_setup.h"

namespace vaq {
namespace serve {
namespace {

constexpr int kStreams = 3;
constexpr int kQueries = 18;
constexpr uint64_t kSeed = 7;

struct RunOutput {
  std::vector<std::string> described;
  std::string logical_metrics;
  std::string detector_stats;
  std::string recognizer_stats;
  std::string accesses;
  int64_t completed = 0;
  int64_t failed = 0;
  int64_t cache_bundles_created = 0;
  int64_t cache_bundle_reuses = 0;
};

// One full serving run: fleet + repository, fault injection on, mixed
// conjunctive / CNF / ranked workload, shared detection cache.
RunOutput RunWorkload(int threads) {
  obs::MetricRegistry::Global().Reset();
  obs::Tracer::Global().SetClock([] { return 0.0; });
  const fault::FaultPlan plan(tools::DemoFaultSpec(), kSeed);
  ServeOptions options;
  options.threads = threads;
  options.queue_capacity = kQueries;
  options.share_detection_cache = true;
  options.fault_plan = &plan;
  Server server(options);
  EXPECT_TRUE(tools::RegisterDemoSources(&server, kStreams,
                                         /*with_repository=*/true, kSeed)
                  .ok());
  for (const std::string& sql :
       tools::DemoWorkload(kStreams, kQueries, /*with_repository=*/true)) {
    EXPECT_TRUE(server.Submit(sql).ok()) << sql;
  }
  const std::vector<ServedQuery> results = server.Drain();
  RunOutput out;
  for (const ServedQuery& q : results) {
    out.described.push_back(DescribeServedQuery(q));
  }
  out.logical_metrics = obs::ExportPrometheus(
      obs::FilterSnapshot(obs::MetricRegistry::Global().TakeSnapshot(),
                          LogicalMetricPrefixes()));
  const ServeStats stats = server.stats();
  out.detector_stats = stats.detector_stats.ToString();
  out.recognizer_stats = stats.recognizer_stats.ToString();
  out.accesses = stats.accesses.ToString();
  out.completed = stats.completed;
  out.failed = stats.failed;
  out.cache_bundles_created = stats.cache_bundles_created;
  out.cache_bundle_reuses = stats.cache_bundle_reuses;
  obs::Tracer::Global().SetClock(nullptr);
  return out;
}

void ExpectIdentical(const RunOutput& a, const RunOutput& b) {
  ASSERT_EQ(a.described.size(), b.described.size());
  for (size_t i = 0; i < a.described.size(); ++i) {
    EXPECT_EQ(a.described[i], b.described[i]) << "query " << i;
  }
  EXPECT_EQ(a.logical_metrics, b.logical_metrics);
  EXPECT_EQ(a.detector_stats, b.detector_stats);
  EXPECT_EQ(a.recognizer_stats, b.recognizer_stats);
  EXPECT_EQ(a.accesses, b.accesses);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.cache_bundles_created, b.cache_bundles_created);
  EXPECT_EQ(a.cache_bundle_reuses, b.cache_bundle_reuses);
}

TEST(ServeDeterminismTest, OneThreadAndEightThreadsAgreeByteForByte) {
  const RunOutput one = RunWorkload(1);
  const RunOutput eight = RunWorkload(8);
  ASSERT_EQ(one.described.size(), static_cast<size_t>(kQueries));
  EXPECT_EQ(one.completed, kQueries);
  EXPECT_EQ(one.failed, 0);
  ExpectIdentical(one, eight);
}

TEST(ServeDeterminismTest, InlineDrainMatchesWorkerPool) {
  const RunOutput inline_run = RunWorkload(0);
  const RunOutput pooled = RunWorkload(4);
  ExpectIdentical(inline_run, pooled);
}

TEST(ServeDeterminismTest, RepeatedRunsAreIdentical) {
  const RunOutput first = RunWorkload(8);
  const RunOutput second = RunWorkload(8);
  ExpectIdentical(first, second);
}

TEST(ServeDeterminismTest, LogicalMetricsArePopulated) {
  const RunOutput run = RunWorkload(4);
  EXPECT_NE(run.logical_metrics.find("vaq_serve_queries_total"),
            std::string::npos);
  EXPECT_NE(run.logical_metrics.find("vaq_serve_cache_hits_total"),
            std::string::npos);
  EXPECT_NE(run.logical_metrics.find("vaq_serve_query_simulated_ms"),
            std::string::npos);
  // Timing-dependent families must be filtered out.
  EXPECT_EQ(run.logical_metrics.find("vaq_serve_queue_depth"),
            std::string::npos);
}

}  // namespace
}  // namespace serve
}  // namespace vaq
