#include "video/cnf_query.h"

#include <gtest/gtest.h>

#include "detect/models.h"
#include "eval/metrics.h"
#include "offline/baselines.h"
#include "offline/ingest.h"
#include "offline/rvaq.h"
#include "online/cnf_engine.h"
#include "online/svaqd.h"
#include "query/session.h"
#include "synth/scenario.h"

namespace vaq {
namespace {

// A scenario with two actions and several objects so disjunctions have
// something to range over.
const synth::Scenario& CnfScenario() {
  static const synth::Scenario* scenario = [] {
    synth::ScenarioSpec spec;
    spec.name = "cnf_test";
    spec.minutes = 8;
    spec.fps = 30;
    spec.seed = 321;
    for (const char* action : {"jumping", "waving"}) {
      synth::ActionTrackSpec a;
      a.name = action;
      a.duty = 0.22;
      a.mean_len_frames = 1100;
      spec.actions.push_back(a);
    }
    int i = 0;
    for (const char* object : {"car", "truck", "human"}) {
      synth::ObjectTrackSpec o;
      o.name = object;
      o.background_duty = 0.08;
      o.mean_len_frames = 800;
      o.coupled_action = (i++ % 2 == 0) ? "jumping" : "waving";
      o.cover_action_prob = 0.85;
      spec.objects.push_back(o);
    }
    return new synth::Scenario(
        synth::Scenario::FromSpec(spec, "jumping", {"car"}));
  }();
  return *scenario;
}

TEST(CnfQueryTest, FromConjunctiveLiftsToSingletonClauses) {
  const synth::Scenario& sc = CnfScenario();
  const CnfQuery cnf = CnfQuery::FromConjunctive(sc.query());
  ASSERT_EQ(cnf.num_clauses(), 2);
  EXPECT_EQ(cnf.clauses[0].literals[0],
            Literal::Object(sc.query().objects[0]));
  EXPECT_EQ(cnf.clauses[1].literals[0], Literal::Action(sc.query().action));
}

TEST(CnfQueryTest, FromNamesAndToString) {
  const synth::Scenario& sc = CnfScenario();
  auto cnf = CnfQuery::FromNames(
      sc.vocab(), {{"obj:car", "obj:truck"}, {"act:jumping"}});
  ASSERT_TRUE(cnf.ok()) << cnf.status();
  EXPECT_EQ(cnf->num_clauses(), 2);
  EXPECT_EQ(cnf->ToString(sc.vocab()),
            "(obj=car OR obj=truck) AND act=jumping");
  EXPECT_FALSE(CnfQuery::FromNames(sc.vocab(), {{"obj:ghost"}}).ok());
  EXPECT_FALSE(CnfQuery::FromNames(sc.vocab(), {{"car"}}).ok());
  EXPECT_FALSE(CnfQuery::FromNames(sc.vocab(), {{}}).ok());
  EXPECT_FALSE(CnfQuery::FromNames(sc.vocab(), {}).ok());
}

TEST(CnfQueryTest, DistinctLiteralsDeduplicates) {
  const synth::Scenario& sc = CnfScenario();
  auto cnf = CnfQuery::FromNames(sc.vocab(), {{"obj:car", "obj:truck"},
                                              {"obj:car", "act:jumping"}});
  ASSERT_TRUE(cnf.ok());
  EXPECT_EQ(cnf->DistinctLiterals().size(), 3u);
}

// ---------------------------------------------------------------------------
// Online CNF engine.
// ---------------------------------------------------------------------------

TEST(CnfEngineTest, ConjunctiveCnfMatchesSvaqd) {
  // A conjunctive query lifted to CNF must produce the same sequences as
  // the dedicated conjunctive engine — but note Algorithm 2 evaluates
  // objects before the action while the lift preserves that order, so the
  // estimator observation streams coincide too.
  const synth::Scenario& sc = CnfScenario();
  detect::ModelBundle m1 = detect::ModelBundle::MaskRcnnI3d(sc.truth(), 9);
  online::Svaqd svaqd(sc.query(), sc.layout(), online::SvaqdOptions{});
  const online::OnlineResult expected =
      svaqd.Run(m1.detector.get(), m1.recognizer.get());

  detect::ModelBundle m2 = detect::ModelBundle::MaskRcnnI3d(sc.truth(), 9);
  online::CnfEngine engine(CnfQuery::FromConjunctive(sc.query()),
                           sc.layout(), online::CnfEngineOptions{});
  const online::CnfResult actual =
      engine.Run(m2.detector.get(), m2.recognizer.get());
  EXPECT_EQ(actual.sequences, expected.sequences);
}

TEST(CnfEngineTest, DisjunctionWithIdealModelsMatchesClauseSemantics) {
  const synth::Scenario& sc = CnfScenario();
  detect::ModelBundle models = detect::ModelBundle::Ideal(sc.truth(), 9);
  auto cnf = CnfQuery::FromNames(sc.vocab(),
                                 {{"act:jumping", "act:waving"}});
  ASSERT_TRUE(cnf.ok());
  // Zero prior + noise-free models pin every k_crit at 1 from the first
  // clip, making the clause semantics exactly checkable.
  online::CnfEngineOptions options;
  options.svaqd.base.p0_object = 1e-9;
  options.svaqd.base.p0_action = 1e-9;
  options.svaqd.prior_weight = 0;
  online::CnfEngine engine(*cnf, sc.layout(), options);
  const online::CnfResult result =
      engine.Run(models.detector.get(), models.recognizer.get());
  // With ideal models and k_crit = 1, a clip fires iff either action has
  // at least one (half-covered) truth shot in it.
  const ActionTypeId jumping = sc.vocab().FindActionType("jumping");
  const ActionTypeId waving = sc.vocab().FindActionType("waving");
  const IntervalSet jump_shots = sc.truth().ActionShots(jumping);
  const IntervalSet wave_shots = sc.truth().ActionShots(waving);
  for (ClipIndex c = 0; c < sc.layout().NumClips(); ++c) {
    const Interval shots = sc.layout().ClipShotRange(c);
    bool expected = false;
    for (ShotIndex s = shots.lo; s <= shots.hi && !expected; ++s) {
      expected = jump_shots.Contains(s) || wave_shots.Contains(s);
    }
    EXPECT_EQ(result.clip_indicator[static_cast<size_t>(c)], expected)
        << "clip " << c;
  }
}

TEST(CnfEngineTest, MultipleActionsConjunction) {
  // Footnote 3: both actions must be present.
  const synth::Scenario& sc = CnfScenario();
  detect::ModelBundle models = detect::ModelBundle::Ideal(sc.truth(), 9);
  auto cnf = CnfQuery::FromNames(sc.vocab(),
                                 {{"act:jumping"}, {"act:waving"}});
  ASSERT_TRUE(cnf.ok());
  online::CnfEngine engine(*cnf, sc.layout(), online::CnfEngineOptions{});
  const online::CnfResult both =
      engine.Run(models.detector.get(), models.recognizer.get());

  detect::ModelBundle m2 = detect::ModelBundle::Ideal(sc.truth(), 9);
  auto only_jump = CnfQuery::FromNames(sc.vocab(), {{"act:jumping"}});
  online::CnfEngine jump_engine(*only_jump, sc.layout(),
                                online::CnfEngineOptions{});
  const online::CnfResult jump =
      jump_engine.Run(m2.detector.get(), m2.recognizer.get());
  // Conjunction is a subset of each conjunct.
  EXPECT_EQ(both.sequences.Intersect(jump.sequences), both.sequences);
  EXPECT_LE(both.sequences.TotalLength(), jump.sequences.TotalLength());
}

TEST(CnfEngineTest, DisjunctionIsSupersetOfEachDisjunct) {
  const synth::Scenario& sc = CnfScenario();
  auto disjunction =
      CnfQuery::FromNames(sc.vocab(), {{"obj:car", "obj:truck"}});
  detect::ModelBundle m1 = detect::ModelBundle::MaskRcnnI3d(sc.truth(), 5);
  online::CnfEngine engine(*disjunction, sc.layout(),
                           online::CnfEngineOptions{});
  const online::CnfResult either =
      engine.Run(m1.detector.get(), m1.recognizer.get());

  auto car_only = CnfQuery::FromNames(sc.vocab(), {{"obj:car"}});
  detect::ModelBundle m2 = detect::ModelBundle::MaskRcnnI3d(sc.truth(), 5);
  online::CnfEngine car_engine(*car_only, sc.layout(),
                               online::CnfEngineOptions{});
  const online::CnfResult car =
      car_engine.Run(m2.detector.get(), m2.recognizer.get());
  // Every clip matching "car" also matches "car OR truck" (same models,
  // same seeds, adaptive thresholds estimated from the same counts).
  EXPECT_EQ(car.sequences.Intersect(either.sequences), car.sequences);
}

TEST(CnfEngineTest, StaticModeHonorsInitialCriticalValues) {
  const synth::Scenario& sc = CnfScenario();
  detect::ModelBundle models = detect::ModelBundle::MaskRcnnI3d(sc.truth(), 5);
  online::CnfEngineOptions options;
  options.adaptive = false;
  options.svaqd.base.p0_object = 0.9;  // Hostile: k_crit = never.
  options.svaqd.base.p0_action = 0.9;
  online::CnfEngine engine(CnfQuery::FromConjunctive(sc.query()),
                           sc.layout(), options);
  const online::CnfResult result =
      engine.Run(models.detector.get(), models.recognizer.get());
  EXPECT_TRUE(result.sequences.empty());  // Static mode cannot recover.
}

// ---------------------------------------------------------------------------
// Offline CNF.
// ---------------------------------------------------------------------------

struct OfflineCnfFixture {
  const synth::Scenario& scenario = CnfScenario();
  offline::PaperScoring paper_scoring;
  offline::CnfScoring cnf_scoring;
  storage::VideoIndex index;

  OfflineCnfFixture() {
    detect::ModelBundle models =
        detect::ModelBundle::MaskRcnnI3d(scenario.truth(), 31);
    offline::Ingestor ingestor(&scenario.vocab(), &paper_scoring,
                               offline::IngestOptions{});
    index = std::move(ingestor.Ingest(scenario.truth(), models)).value();
  }
};

OfflineCnfFixture& GetOfflineCnf() {
  static OfflineCnfFixture* fixture = new OfflineCnfFixture();
  return *fixture;
}

TEST(OfflineCnfTest, BindCnfSharesTablesAcrossClauses) {
  OfflineCnfFixture& f = GetOfflineCnf();
  auto cnf = CnfQuery::FromNames(
      f.scenario.vocab(),
      {{"obj:car", "obj:truck"}, {"obj:car", "act:jumping"}});
  ASSERT_TRUE(cnf.ok());
  auto tables =
      offline::QueryTables::BindCnf(f.index, *cnf, f.scenario.vocab());
  ASSERT_TRUE(tables.ok()) << tables.status();
  EXPECT_EQ(tables->num_tables(), 3);  // car, truck, jumping — car shared.
  ASSERT_EQ(tables->schema.clauses.size(), 2u);
  EXPECT_EQ(tables->schema.clauses[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(tables->schema.clauses[1], (std::vector<int>{0, 2}));
}

TEST(OfflineCnfTest, PqIsClausewiseIntersectionOfUnions) {
  OfflineCnfFixture& f = GetOfflineCnf();
  auto cnf = CnfQuery::FromNames(
      f.scenario.vocab(), {{"obj:car", "obj:truck"}, {"act:jumping"}});
  ASSERT_TRUE(cnf.ok());
  auto tables =
      offline::QueryTables::BindCnf(f.index, *cnf, f.scenario.vocab());
  ASSERT_TRUE(tables.ok());
  const IntervalSet expected =
      tables->sequences[0]
          ->Union(*tables->sequences[1])
          .Intersect(*tables->sequences[2]);
  EXPECT_EQ(tables->ComputePq(), expected);
}

TEST(OfflineCnfTest, RvaqMatchesBruteForceOnCnfQuery) {
  OfflineCnfFixture& f = GetOfflineCnf();
  auto cnf = CnfQuery::FromNames(
      f.scenario.vocab(),
      {{"obj:car", "obj:truck"}, {"act:jumping", "act:waving"}});
  ASSERT_TRUE(cnf.ok());
  auto tables =
      offline::QueryTables::BindCnf(f.index, *cnf, f.scenario.vocab());
  ASSERT_TRUE(tables.ok());
  for (int64_t k : {1, 3, 5}) {
    const offline::TopKResult expected =
        offline::PqTraverse(*tables, f.cnf_scoring, k);
    offline::RvaqOptions options;
    options.k = k;
    const offline::TopKResult rvaq =
        offline::Rvaq(&tables.value(), &f.cnf_scoring, options).Run();
    ASSERT_EQ(rvaq.top.size(), expected.top.size()) << "k=" << k;
    for (size_t i = 0; i < rvaq.top.size(); ++i) {
      EXPECT_DOUBLE_EQ(rvaq.top[i].exact_score, expected.top[i].exact_score)
          << "k=" << k << " i=" << i;
    }
  }
}

TEST(OfflineCnfTest, SessionExecutesCnfStatements) {
  OfflineCnfFixture& f = GetOfflineCnf();
  query::Session session;
  session.RegisterStream("stream", f.scenario, 7);
  session.RegisterRepository("repo", f.index);

  auto online_result = session.Execute(
      "SELECT MERGE(clipID) FROM stream "
      "WHERE (obj='car' OR obj='truck') AND act='jumping'");
  ASSERT_TRUE(online_result.ok()) << online_result.status();
  EXPECT_TRUE(online_result->online);
  EXPECT_GT(online_result->sequences.TotalLength(), 0);

  auto offline_result = session.Execute(
      "SELECT MERGE(clipID), RANK(act, obj) FROM repo "
      "WHERE (obj='car' OR obj='truck') AND act='jumping' "
      "ORDER BY RANK(act, obj) LIMIT 3");
  ASSERT_TRUE(offline_result.ok()) << offline_result.status();
  EXPECT_FALSE(offline_result->online);
  EXPECT_GE(offline_result->ranked.size(), 1u);
  EXPECT_LE(offline_result->ranked.size(), 3u);

  // Multiple actions (footnote 3) through SQL.
  auto both_actions = session.Execute(
      "SELECT MERGE(clipID) FROM stream "
      "WHERE act='jumping' AND act='waving'");
  ASSERT_TRUE(both_actions.ok()) << both_actions.status();
}

}  // namespace
}  // namespace vaq
