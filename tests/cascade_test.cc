// The cascade subsystem (src/cascade/): ingest-time proxy index, its
// checkpoint-store persistence, the cost-based planner, and the
// execution wiring through the query session and the standing-query
// serving mode.
//
// The load-bearing guarantees under test:
//
//  * the proxy index is a pure function of (seed, concept, clip) and its
//    persisted form round-trips byte-exactly, with stale/damaged entries
//    detected and rebuilt (counted under vaq_ckpt_proxy_*);
//  * the planner honors the recall math — predicted recall never falls
//    below the target, the cost frontier is monotone, and τ = 1.0 plans
//    exact — and PlanFilters agrees with the plan's accounting;
//  * a WITH RECALL 1 statement is byte-identical to the same statement
//    without the clause on every surface (results, access accounting,
//    the full metric snapshot) — the exact path must not know the
//    cascade exists;
//  * standing cascades prune clips deterministically and survive
//    crash-recovery: a recovered session finishes with the same results
//    as an uninterrupted one, and the proxy index is persisted in the
//    checkpoint store.
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cascade/planner.h"
#include "cascade/proxy_index.h"
#include "cascade/store.h"
#include "ckpt/store.h"
#include "detect/model_profile.h"
#include "detect/models.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "offline/ingest.h"
#include "offline/scoring.h"
#include "query/session.h"
#include "serve/server.h"
#include "tools/pipeline_setup.h"

namespace vaq {
namespace cascade {
namespace {

int64_t CounterValue(const char* name) {
  return obs::MetricRegistry::Global().GetCounter(name)->value();
}

void ExpectProxyEqual(const ProxyVideoIndex& a, const ProxyVideoIndex& b) {
  EXPECT_EQ(a.video, b.video);
  EXPECT_EQ(a.num_clips, b.num_clips);
  EXPECT_EQ(a.frames_per_clip, b.frames_per_clip);
  EXPECT_EQ(a.shots_per_clip, b.shots_per_clip);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  ASSERT_EQ(a.columns.size(), b.columns.size());
  for (size_t i = 0; i < a.columns.size(); ++i) {
    EXPECT_EQ(a.columns[i].concept_name, b.columns[i].concept_name);
    EXPECT_EQ(a.columns[i].scores, b.columns[i].scores);
    EXPECT_EQ(a.columns[i].heldout_positive, b.columns[i].heldout_positive);
  }
}

ProxySet MakeDemoProxies(int num_videos, uint64_t seed) {
  ProxySet set;
  for (int i = 0; i < num_videos; ++i) {
    const std::string name = "v" + std::to_string(i);
    set.emplace(name,
                BuildProxyIndex(name, tools::DemoScenario(i),
                                detect::ModelProfile::ProxyCnn(),
                                seed + static_cast<uint64_t>(i)));
  }
  return set;
}

TEST(CascadeProxyTest, BuildIsDeterministicAndWellFormed) {
  const synth::Scenario scenario = tools::DemoScenario(0);
  const detect::ModelProfile profile = detect::ModelProfile::ProxyCnn();
  const ProxyVideoIndex first = BuildProxyIndex("v0", scenario, profile, 5);
  const ProxyVideoIndex second = BuildProxyIndex("v0", scenario, profile, 5);
  ExpectProxyEqual(first, second);

  EXPECT_GT(first.num_clips, 0);
  EXPECT_GT(first.frames_per_clip, 0.0);
  ASSERT_FALSE(first.columns.empty());
  for (size_t i = 0; i < first.columns.size(); ++i) {
    const ProxyColumn& column = first.columns[i];
    if (i > 0) {
      // Sorted by concept, so Find can binary-search and the persisted
      // layout is canonical.
      EXPECT_LT(first.columns[i - 1].concept_name, column.concept_name);
    }
    EXPECT_EQ(column.scores.size(), static_cast<size_t>(first.num_clips));
    for (const double score : column.scores) {
      EXPECT_GE(score, 0.0);
      EXPECT_LT(score, 1.0);
    }
    ASSERT_FALSE(column.heldout_positive.empty());
    for (size_t j = 1; j < column.heldout_positive.size(); ++j) {
      EXPECT_LE(column.heldout_positive[j - 1], column.heldout_positive[j]);
    }
  }
  EXPECT_NE(first.Find(ActionConcept("running")), nullptr);
  EXPECT_NE(first.Find(ObjectConcept("dog")), nullptr);
  EXPECT_EQ(first.Find(ObjectConcept("unicorn")), nullptr);
}

TEST(CascadeProxyTest, FingerprintTracksProfileAndSeed) {
  const detect::ModelProfile proxy = detect::ModelProfile::ProxyCnn();
  EXPECT_NE(ProxyFingerprint(proxy, 1), ProxyFingerprint(proxy, 2));
  EXPECT_NE(ProxyFingerprint(proxy, 1),
            ProxyFingerprint(detect::ModelProfile::MaskRcnn(), 1));
  const ProxyVideoIndex built =
      BuildProxyIndex("v0", tools::DemoScenario(0), proxy, 9);
  EXPECT_EQ(built.fingerprint, ProxyFingerprint(proxy, 9));
}

TEST(CascadeStoreTest, SaveLoadRoundtrip) {
  obs::MetricRegistry::Global().Reset();
  const synth::Scenario scenario = tools::DemoScenario(0);
  const detect::ModelProfile profile = detect::ModelProfile::ProxyCnn();
  const ProxyVideoIndex built = BuildProxyIndex("v0", scenario, profile, 13);

  ckpt::MemStore store;
  ASSERT_TRUE(SaveProxyIndex(&store, built).ok());
  const StatusOr<std::vector<std::string>> names = store.List();
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names.value().size(), 1u);
  EXPECT_EQ(names.value()[0], ProxyEntryName("v0"));

  const StatusOr<ProxyVideoIndex> loaded =
      LoadProxyIndex(store, "v0", built.fingerprint);
  ASSERT_TRUE(loaded.ok());
  ExpectProxyEqual(built, loaded.value());

  // Absent entry.
  EXPECT_EQ(LoadProxyIndex(store, "nope", built.fingerprint).status().code(),
            StatusCode::kNotFound);
  // Stale fingerprint (proxy model or builder seed changed since ingest).
  EXPECT_EQ(LoadProxyIndex(store, "v0", built.fingerprint + 1)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  // Framing damage must surface as an error, never a silently-wrong
  // index.
  ASSERT_TRUE(
      ckpt::CorruptEntryByte(&store, ProxyEntryName("v0"), 9, 0x40).ok());
  const StatusOr<ProxyVideoIndex> damaged =
      LoadProxyIndex(store, "v0", built.fingerprint);
  EXPECT_FALSE(damaged.ok());
  EXPECT_NE(damaged.status().code(), StatusCode::kNotFound);
}

TEST(CascadeStoreTest, LoadOrBuildPersistsLoadsAndInvalidates) {
  obs::MetricRegistry::Global().Reset();
  const synth::Scenario scenario = tools::DemoScenario(0);
  const detect::ModelProfile profile = detect::ModelProfile::ProxyCnn();
  ckpt::MemStore store;

  // Cold store: builds and persists.
  const StatusOr<ProxyVideoIndex> first =
      LoadOrBuildProxyIndex(&store, "v0", scenario, profile, 17);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(CounterValue("vaq_ckpt_proxy_builds_total"), 1);
  EXPECT_EQ(CounterValue("vaq_ckpt_proxy_stores_total"), 1);
  EXPECT_EQ(CounterValue("vaq_ckpt_proxy_loads_total"), 0);

  // Warm store: loads, no rebuild.
  const StatusOr<ProxyVideoIndex> second =
      LoadOrBuildProxyIndex(&store, "v0", scenario, profile, 17);
  ASSERT_TRUE(second.ok());
  ExpectProxyEqual(first.value(), second.value());
  EXPECT_EQ(CounterValue("vaq_ckpt_proxy_builds_total"), 1);
  EXPECT_EQ(CounterValue("vaq_ckpt_proxy_loads_total"), 1);

  // Seed change: the persisted entry is stale — invalidated, rebuilt and
  // re-persisted under the new fingerprint.
  const StatusOr<ProxyVideoIndex> rebuilt =
      LoadOrBuildProxyIndex(&store, "v0", scenario, profile, 18);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt.value().fingerprint, ProxyFingerprint(profile, 18));
  EXPECT_EQ(CounterValue("vaq_ckpt_proxy_invalidations_total"), 1);
  EXPECT_EQ(CounterValue("vaq_ckpt_proxy_builds_total"), 2);
  EXPECT_EQ(CounterValue("vaq_ckpt_proxy_stores_total"), 2);

  // A null store degrades to a plain build (the in-memory-only path the
  // cluster trials use).
  const StatusOr<ProxyVideoIndex> unstored =
      LoadOrBuildProxyIndex(nullptr, "v0", scenario, profile, 17);
  ASSERT_TRUE(unstored.ok());
  ExpectProxyEqual(first.value(), unstored.value());
}

TEST(CascadePlannerTest, TauOnePlansExact) {
  const ProxySet proxies = MakeDemoProxies(2, 21);
  const Planner planner(&proxies);
  const StatusOr<CascadePlan> plan = planner.Plan("running", {"dog"}, 1.0);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan.value().use_cascade);
  EXPECT_TRUE(plan.value().thresholds.empty());
  EXPECT_EQ(plan.value().clips_surviving, plan.value().clips_total);
  EXPECT_EQ(plan.value().cascade_cost_ms, plan.value().full_cost_ms);
  EXPECT_EQ(plan.value().CostReduction(), 1.0);
  EXPECT_NE(plan.value().ToString().find("exact"), std::string::npos);
}

TEST(CascadePlannerTest, RejectsBadArguments) {
  const ProxySet proxies = MakeDemoProxies(1, 21);
  const Planner planner(&proxies);
  EXPECT_EQ(planner.Plan("running", {"dog"}, 0.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(planner.Plan("running", {"dog"}, -0.5).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(planner.Plan("running", {"dog"}, 1.5).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(planner.Plan("", {}, 0.9).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CascadePlannerTest, FrontierIsMonotoneAndMeetsTarget) {
  const ProxySet proxies = MakeDemoProxies(3, 21);
  const Planner planner(&proxies);
  const std::vector<double> targets = {0.99, 0.95, 0.9, 0.8};
  double previous_cost = 0.0;
  bool any_cascade = false;
  for (size_t i = 0; i < targets.size(); ++i) {
    const StatusOr<CascadePlan> plan =
        planner.Plan("running", {"dog"}, targets[i]);
    ASSERT_TRUE(plan.ok()) << "tau=" << targets[i];
    const CascadePlan& p = plan.value();
    // The quantile-floor calibration guarantees the per-concept survival
    // fractions multiply to at least the target.
    EXPECT_GE(p.predicted_recall + 1e-12, targets[i]);
    EXPECT_LE(p.cascade_cost_ms, p.full_cost_ms);
    EXPECT_LE(p.clips_surviving, p.clips_total);
    if (i > 0) {
      EXPECT_LE(p.cascade_cost_ms, previous_cost + 1e-9);
    }
    previous_cost = p.cascade_cost_ms;
    if (p.use_cascade) {
      any_cascade = true;
      EXPECT_NE(p.ToString().find("cascade"), std::string::npos);
      EXPECT_GT(p.WireBytes(), 32);
      EXPECT_EQ(p.thresholds.size(), 2u);  // act:running, obj:dog.
    }
  }
  EXPECT_TRUE(any_cascade);
}

TEST(CascadePlannerTest, PlanFiltersMatchPlanAccounting) {
  const ProxySet proxies = MakeDemoProxies(3, 21);
  const Planner planner(&proxies);
  const StatusOr<CascadePlan> plan = planner.Plan("running", {"dog"}, 0.9);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan.value().use_cascade);

  const PlanFilters filters(&proxies, plan.value());
  EXPECT_EQ(filters.clips_total(), plan.value().clips_total);
  EXPECT_EQ(filters.clips_surviving(), plan.value().clips_surviving);
  int64_t surviving = 0;
  for (const auto& entry : proxies) {
    const IntervalSet* set = filters.SurvivingClips(entry.first);
    ASSERT_NE(set, nullptr) << entry.first;
    surviving += set->TotalLength();
  }
  EXPECT_EQ(surviving, plan.value().clips_surviving);
  // A video the proxy tier never scored is unconstrained, not dropped.
  EXPECT_EQ(filters.SurvivingClips("uncovered"), nullptr);
}

TEST(CascadeDemoTest, FrontierPointAchievesTargetWithReduction) {
  const StatusOr<tools::CascadeDemo> demo = tools::MakeCascadeDemo(3, 11);
  ASSERT_TRUE(demo.ok());

  const StatusOr<tools::CascadeFrontierPoint> exact =
      tools::RunCascadeFrontierPoint(demo.value(), 1.0, 5);
  ASSERT_TRUE(exact.ok());
  EXPECT_FALSE(exact.value().use_cascade);
  EXPECT_EQ(exact.value().achieved_recall, 1.0);
  EXPECT_EQ(exact.value().cost_reduction, 1.0);

  const StatusOr<tools::CascadeFrontierPoint> approx =
      tools::RunCascadeFrontierPoint(demo.value(), 0.9, 5);
  ASSERT_TRUE(approx.ok());
  const tools::CascadeFrontierPoint& p = approx.value();
  EXPECT_TRUE(p.use_cascade);
  EXPECT_GT(p.cost_reduction, 1.0);
  EXPECT_LT(p.clips_surviving, p.clips_total);
  EXPECT_GE(p.achieved_recall + 1e-9, p.recall_target);
}

// --- Query-session wiring ----------------------------------------------

constexpr char kRankedSql[] =
    "SELECT MERGE(clipID) AS Sequence, RANK(act, obj) "
    "FROM (PROCESS vid0 PRODUCE clipID, obj USING ObjectTracker, "
    "act USING ActionRecognizer) "
    "WHERE act='running' AND obj.include('dog') "
    "ORDER BY RANK(act, obj) LIMIT 5";

std::string DescribeRanked(const query::QueryResult& result) {
  std::string out = result.accesses.ToString();
  for (const offline::RankedSequence& s : result.ranked) {
    out += "\n" + s.clips.ToString() +
           " lb=" + std::to_string(s.lower_bound) +
           " ub=" + std::to_string(s.upper_bound);
  }
  return out;
}

struct SessionRun {
  std::string described;
  std::string metrics;  // The FULL registry snapshot, not a subset.
  std::string cascade_plan;
};

SessionRun RunSessionStatement(const std::string& sql, bool with_proxy) {
  obs::MetricRegistry::Global().Reset();
  obs::Tracer::Global().SetClock([] { return 0.0; });
  synth::Scenario scenario = tools::DemoScenario(0);
  const detect::ModelBundle models =
      detect::ModelBundle::MaskRcnnI3d(scenario.truth(), 21);
  offline::PaperScoring scoring;
  offline::Ingestor ingestor(&scenario.vocab(), &scoring,
                             offline::IngestOptions{});
  StatusOr<storage::VideoIndex> index =
      ingestor.Ingest(scenario.truth(), models);
  EXPECT_TRUE(index.ok());

  query::Session session;
  session.RegisterRepository("vid0", std::move(index).value());
  ProxySet proxies;
  if (with_proxy) {
    proxies.emplace("vid0",
                    BuildProxyIndex("vid0", scenario,
                                    detect::ModelProfile::ProxyCnn(), 21));
    session.RegisterProxySet(&proxies);
  }
  const StatusOr<query::QueryResult> result = session.Execute(sql);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  SessionRun run;
  if (result.ok()) {
    run.described = DescribeRanked(result.value());
    run.cascade_plan = result.value().cascade_plan;
  }
  run.metrics =
      obs::ExportPrometheus(obs::MetricRegistry::Global().TakeSnapshot());
  obs::Tracer::Global().SetClock(nullptr);
  return run;
}

TEST(CascadeSessionTest, RecallOneIsByteIdenticalToPlainStatement) {
  // The exact path must not know the cascade exists: WITH RECALL 1 never
  // consults the planner, mints no counters and adds no plan text, so
  // every observable surface matches the clause-free statement.
  const SessionRun plain = RunSessionStatement(kRankedSql, /*with_proxy=*/true);
  const SessionRun recall_one = RunSessionStatement(
      std::string(kRankedSql) + " WITH RECALL 1", /*with_proxy=*/true);
  EXPECT_FALSE(plain.described.empty());
  EXPECT_EQ(plain.described, recall_one.described);
  EXPECT_EQ(plain.metrics, recall_one.metrics);
  EXPECT_TRUE(plain.cascade_plan.empty());
  EXPECT_TRUE(recall_one.cascade_plan.empty());
}

TEST(CascadeSessionTest, ApproximateStatementPlansCascadeDeterministically) {
  const std::string sql = std::string(kRankedSql) + " WITH RECALL 0.9";
  const SessionRun first = RunSessionStatement(sql, /*with_proxy=*/true);
  EXPECT_NE(first.cascade_plan.find("cascade"), std::string::npos)
      << first.cascade_plan;
  EXPECT_NE(first.metrics.find("vaq_cascade_plans_total"),
            std::string::npos);
  const SessionRun second = RunSessionStatement(sql, /*with_proxy=*/true);
  EXPECT_EQ(first.described, second.described);
  EXPECT_EQ(first.metrics, second.metrics);
  EXPECT_EQ(first.cascade_plan, second.cascade_plan);
}

TEST(CascadeSessionTest, WithoutProxyTierFallsBackToExactResults) {
  const std::string sql = std::string(kRankedSql) + " WITH RECALL 0.9";
  const SessionRun plain =
      RunSessionStatement(kRankedSql, /*with_proxy=*/false);
  const SessionRun fallback = RunSessionStatement(sql, /*with_proxy=*/false);
  // The clause is honored (a rendered exact plan, a counted fallback)
  // but the results are the exact path's, bit for bit.
  EXPECT_EQ(plain.described, fallback.described);
  EXPECT_NE(fallback.cascade_plan.find("exact"), std::string::npos);
  EXPECT_NE(fallback.metrics.find("vaq_cascade_plans_total"),
            std::string::npos);
}

// --- Standing-query (serving) wiring -----------------------------------

constexpr char kStandingSql[] =
    "SELECT MERGE(clipID) AS Sequence "
    "FROM (PROCESS cam0 PRODUCE clipID, obj USING ObjectDetector, "
    "act USING ActionRecognizer) "
    "WHERE act='running' AND obj.include('dog')";

struct StandingRun {
  std::string described;
  std::string logical_metrics;
  std::string cascade_plan;
  int64_t clips_pruned = 0;
};

StandingRun RunStanding(const std::string& suffix, int advances) {
  obs::MetricRegistry::Global().Reset();
  serve::ServeOptions options;
  options.threads = 0;
  serve::Server server(options);
  server.RegisterStream("cam0", tools::DemoScenario(1), /*model_seed=*/3);
  EXPECT_TRUE(server.AddStandingQuery(kStandingSql + suffix).ok());
  for (int i = 0; i < advances; ++i) {
    EXPECT_TRUE(server.AdvanceStream("cam0").ok()) << "advance " << i;
  }
  const std::vector<serve::ServedQuery> results = server.FinishStanding();
  StandingRun run;
  EXPECT_EQ(results.size(), 1u);
  if (!results.empty()) {
    run.described = DescribeServedQuery(results[0]);
    run.cascade_plan = results[0].result.cascade_plan;
    run.clips_pruned = results[0].result.clips_pruned;
  }
  run.logical_metrics = obs::ExportPrometheus(
      obs::FilterSnapshot(obs::MetricRegistry::Global().TakeSnapshot(),
                          serve::LogicalMetricPrefixes()));
  return run;
}

TEST(CascadeServeTest, StandingRecallOneByteIdenticalToPlainQuery) {
  const StandingRun plain = RunStanding("", 24);
  const StandingRun recall_one = RunStanding(" WITH RECALL 1", 24);
  EXPECT_FALSE(plain.described.empty());
  EXPECT_EQ(plain.described, recall_one.described);
  EXPECT_EQ(plain.logical_metrics, recall_one.logical_metrics);
  EXPECT_TRUE(plain.cascade_plan.empty());
  EXPECT_TRUE(recall_one.cascade_plan.empty());
  EXPECT_EQ(recall_one.clips_pruned, 0);
}

TEST(CascadeServeTest, StandingCascadePrunesAndIsDeterministic) {
  const StandingRun first = RunStanding(" WITH RECALL 0.9", 48);
  EXPECT_NE(first.cascade_plan.find("cascade"), std::string::npos)
      << first.cascade_plan;
  // The proxy ruled clips out and the engine skipped their model calls.
  EXPECT_GT(first.clips_pruned, 0);
  // Run-to-run byte determinism is the contract here. (No subset claim
  // against an exact run: skipped clips make no adaptive-estimator
  // updates, so later clip decisions may legitimately differ.)
  const StandingRun second = RunStanding(" WITH RECALL 0.9", 48);
  EXPECT_EQ(first.described, second.described);
  EXPECT_EQ(first.logical_metrics, second.logical_metrics);
  EXPECT_EQ(first.clips_pruned, second.clips_pruned);
}

TEST(CascadeServeTest, StandingCascadeRecoversWithPersistedProxyIndex) {
  const std::string sql = std::string(kStandingSql) + " WITH RECALL 0.9";
  constexpr int kTotalAdvances = 30;
  constexpr int kCrashAfter = 15;

  auto make_options = [](ckpt::Store* store) {
    serve::ServeOptions options;
    options.threads = 0;
    options.checkpoint_store = store;
    options.snapshot_every_clips = 8;
    return options;
  };

  // Uninterrupted reference run (its own store; durability on so the
  // WAL/snapshot cadence matches the crashed run's).
  obs::MetricRegistry::Global().Reset();
  ckpt::MemStore reference_store;
  StandingRun reference;
  {
    serve::Server server(make_options(&reference_store));
    server.RegisterStream("cam0", tools::DemoScenario(1), /*model_seed=*/3);
    ASSERT_TRUE(server.AddStandingQuery(sql).ok());
    for (int i = 0; i < kTotalAdvances; ++i) {
      ASSERT_TRUE(server.AdvanceStream("cam0").ok());
    }
    const std::vector<serve::ServedQuery> results = server.FinishStanding();
    ASSERT_EQ(results.size(), 1u);
    reference.described = DescribeServedQuery(results[0]);
    reference.cascade_plan = results[0].result.cascade_plan;
    reference.clips_pruned = results[0].result.clips_pruned;
  }

  // Crashed run: advance partway, abandon the server mid-session.
  obs::MetricRegistry::Global().Reset();
  ckpt::MemStore store;
  {
    serve::Server server(make_options(&store));
    server.RegisterStream("cam0", tools::DemoScenario(1), /*model_seed=*/3);
    ASSERT_TRUE(server.AddStandingQuery(sql).ok());
    for (int i = 0; i < kCrashAfter; ++i) {
      ASSERT_TRUE(server.AdvanceStream("cam0").ok());
    }
  }
  // The ingest-time proxy index outlives the crash.
  EXPECT_TRUE(store.Get(ProxyEntryName("cam0")).ok());

  // Recover into a fresh server and finish the schedule.
  serve::Server recovered(make_options(&store));
  recovered.RegisterStream("cam0", tools::DemoScenario(1), /*model_seed=*/3);
  ASSERT_TRUE(recovered.Recover().ok());
  EXPECT_EQ(recovered.StreamPosition("cam0"), kCrashAfter);
  for (int64_t i = recovered.StreamPosition("cam0"); i < kTotalAdvances;
       ++i) {
    ASSERT_TRUE(recovered.AdvanceStream("cam0").ok());
  }
  const std::vector<serve::ServedQuery> results = recovered.FinishStanding();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(DescribeServedQuery(results[0]), reference.described);
  EXPECT_EQ(results[0].result.cascade_plan, reference.cascade_plan);
  EXPECT_EQ(results[0].result.clips_pruned, reference.clips_pruned);
}

}  // namespace
}  // namespace cascade
}  // namespace vaq
