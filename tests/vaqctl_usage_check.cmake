# Tier-1 regression check for vaqctl's command-line surface: an unknown
# subcommand must exit 2 with the usage text on stderr, and the usage
# must list every public subcommand — `traffic` included, so the front
# door demo cannot silently fall out of the CLI.
#
# Invoked as:
#   cmake -DVAQCTL=<path-to-vaqctl> -P vaqctl_usage_check.cmake

if(NOT DEFINED VAQCTL)
  message(FATAL_ERROR "pass -DVAQCTL=<path to vaqctl>")
endif()

execute_process(
  COMMAND ${VAQCTL} no-such-subcommand
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR
    "vaqctl with an unknown subcommand exited ${rc}, expected 2")
endif()
string(FIND "${err}" "unknown subcommand" found)
if(found EQUAL -1)
  message(FATAL_ERROR
    "vaqctl stderr does not name the unknown subcommand: ${err}")
endif()

foreach(subcommand ingest ls rm topk sql metrics serve trace recover
    cluster cascade traffic chaos)
  string(FIND "${err}" "${subcommand}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR
      "vaqctl usage output is missing subcommand '${subcommand}'")
  endif()
endforeach()

message(STATUS "vaqctl usage: exit 2 on unknown subcommand, all subcommands listed")
