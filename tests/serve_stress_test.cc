// Stress test of the serving runtime: a small bounded queue fed by
// concurrent submitter threads (retrying on backpressure) while eight
// workers drain it under fault injection. Submission interleaving is
// nondeterministic here, so the assertions target the invariants that
// must survive any schedule: every accepted query completes, a given
// statement always produces the same sequences on the same source, and
// the merged accounting matches the number of served queries. Runs under
// ThreadSanitizer in the VAQ_TSAN configuration.
#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/server.h"
#include "tools/pipeline_setup.h"

namespace vaq {
namespace serve {
namespace {

constexpr int kStreams = 4;
constexpr int kQueries = 64;
constexpr int kSubmitters = 4;

TEST(ServeStressTest, ConcurrentSubmittersUnderBackpressureAndFaults) {
  const fault::FaultPlan plan(tools::DemoFaultSpec(), /*seed=*/21);
  ServeOptions options;
  options.threads = 8;
  options.queue_capacity = 8;  // Small: backpressure is the common case.
  options.share_detection_cache = true;
  options.fault_plan = &plan;
  Server server(options);
  ASSERT_TRUE(tools::RegisterDemoSources(&server, kStreams,
                                         /*with_repository=*/true, /*seed=*/21)
                  .ok());
  const std::vector<std::string> workload =
      tools::DemoWorkload(kStreams, kQueries, /*with_repository=*/true);
  ASSERT_EQ(workload.size(), static_cast<size_t>(kQueries));

  // Each submitter owns a slice of the workload and retries kUnavailable
  // until its statement is admitted.
  std::atomic<int64_t> retries{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int q = s; q < kQueries; q += kSubmitters) {
        while (true) {
          const auto id = server.Submit(workload[q]);
          if (id.ok()) break;
          ASSERT_EQ(id.status().code(), StatusCode::kUnavailable)
              << id.status();
          retries.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  const std::vector<ServedQuery> results = server.Drain();

  ASSERT_EQ(results.size(), static_cast<size_t>(kQueries));
  // Every accepted query ran; same statement on the same shard always
  // yields the same sequences, whatever order the schedule produced.
  std::map<std::string, IntervalSet> by_statement;
  for (const ServedQuery& q : results) {
    EXPECT_TRUE(q.status.ok()) << q.sql << ": " << q.status;
    auto [it, inserted] = by_statement.emplace(q.sql, q.result.sequences);
    if (!inserted) {
      EXPECT_EQ(it->second, q.result.sequences) << q.sql;
    }
  }
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.accepted, kQueries);
  EXPECT_EQ(stats.completed, kQueries);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.rejected_overflow, retries.load());
  // Overlapping queries per stream mean the shared cache saw reuse.
  EXPECT_GT(stats.cache_bundle_reuses, 0);
  // Fault injection was live: the merged model stats carry its traces.
  EXPECT_GT(stats.detector_stats.faults_injected +
                stats.recognizer_stats.faults_injected,
            0);
}

TEST(ServeStressTest, DrainIsRepeatableAcrossBatches) {
  // Two submit/drain cycles on one server: the second batch reuses warm
  // bundles, so it must still complete and report strictly fewer fresh
  // inferences than the first.
  ServeOptions options;
  options.threads = 4;
  options.queue_capacity = 64;
  Server server(options);
  ASSERT_TRUE(tools::RegisterDemoSources(&server, 2, /*with_repository=*/false,
                                         /*seed=*/5)
                  .ok());
  const std::vector<std::string> workload =
      tools::DemoWorkload(2, 8, /*with_repository=*/false);
  for (const std::string& sql : workload) {
    ASSERT_TRUE(server.Submit(sql).ok());
  }
  const std::vector<ServedQuery> first = server.Drain();
  const ServeStats after_first = server.stats();
  for (const std::string& sql : workload) {
    ASSERT_TRUE(server.Submit(sql).ok());
  }
  const std::vector<ServedQuery> second = server.Drain();
  const ServeStats after_second = server.stats();

  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].result.sequences, second[i].result.sequences)
        << first[i].sql;
  }
  const int64_t first_inferences = after_first.detector_stats.inferences +
                                   after_first.recognizer_stats.inferences;
  const int64_t second_inferences = after_second.detector_stats.inferences +
                                    after_second.recognizer_stats.inferences -
                                    first_inferences;
  EXPECT_LT(second_inferences, first_inferences);
}

}  // namespace
}  // namespace serve
}  // namespace vaq
