// Stress test of the serving runtime: a small bounded queue fed by
// concurrent submitter threads (retrying on backpressure) while eight
// workers drain it under fault injection. Submission interleaving is
// nondeterministic here, so the assertions target the invariants that
// must survive any schedule: every accepted query completes, a given
// statement always produces the same sequences on the same source, and
// the merged accounting matches the number of served queries. Runs under
// ThreadSanitizer in the VAQ_TSAN configuration.
#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/server.h"
#include "tools/pipeline_setup.h"

namespace vaq {
namespace serve {
namespace {

constexpr int kStreams = 4;
constexpr int kQueries = 64;
constexpr int kSubmitters = 4;

TEST(ServeStressTest, ConcurrentSubmittersUnderBackpressureAndFaults) {
  const fault::FaultPlan plan(tools::DemoFaultSpec(), /*seed=*/21);
  ServeOptions options;
  options.threads = 8;
  options.queue_capacity = 8;  // Small: backpressure is the common case.
  options.share_detection_cache = true;
  options.fault_plan = &plan;
  Server server(options);
  ASSERT_TRUE(tools::RegisterDemoSources(&server, kStreams,
                                         /*with_repository=*/true, /*seed=*/21)
                  .ok());
  const std::vector<std::string> workload =
      tools::DemoWorkload(kStreams, kQueries, /*with_repository=*/true);
  ASSERT_EQ(workload.size(), static_cast<size_t>(kQueries));

  // Each submitter owns a slice of the workload and retries kUnavailable
  // until its statement is admitted.
  std::atomic<int64_t> retries{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int q = s; q < kQueries; q += kSubmitters) {
        while (true) {
          const auto id = server.Submit(workload[q]);
          if (id.ok()) break;
          ASSERT_EQ(id.status().code(), StatusCode::kUnavailable)
              << id.status();
          retries.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  const std::vector<ServedQuery> results = server.Drain();

  ASSERT_EQ(results.size(), static_cast<size_t>(kQueries));
  // Every accepted query ran; same statement on the same shard always
  // yields the same sequences, whatever order the schedule produced.
  std::map<std::string, IntervalSet> by_statement;
  for (const ServedQuery& q : results) {
    EXPECT_TRUE(q.status.ok()) << q.sql << ": " << q.status;
    auto [it, inserted] = by_statement.emplace(q.sql, q.result.sequences);
    if (!inserted) {
      EXPECT_EQ(it->second, q.result.sequences) << q.sql;
    }
  }
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.accepted, kQueries);
  EXPECT_EQ(stats.completed, kQueries);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.rejected_overflow, retries.load());
  // Overlapping queries per stream mean the shared cache saw reuse.
  EXPECT_GT(stats.cache_bundle_reuses, 0);
  // Fault injection was live: the merged model stats carry its traces.
  EXPECT_GT(stats.detector_stats.faults_injected +
                stats.recognizer_stats.faults_injected,
            0);
}

TEST(ServeStressTest, DrainRacingSubmittersNeverLosesQueries) {
  // Drain is terminal: a submission racing it is either admitted before
  // the door closes — and then counted and completed by that very Drain —
  // or rejected with kFailedPrecondition (drained) / kUnavailable (queue
  // full). Under no schedule is a query silently accepted and lost.
  ServeOptions options;
  options.threads = 4;
  options.queue_capacity = 256;
  Server server(options);
  ASSERT_TRUE(tools::RegisterDemoSources(&server, 2, /*with_repository=*/false,
                                         /*seed=*/5)
                  .ok());
  const std::vector<std::string> workload =
      tools::DemoWorkload(2, 8, /*with_repository=*/false);
  std::atomic<int64_t> admitted{0};
  std::atomic<int64_t> rejected_drained{0};
  std::atomic<int64_t> rejected_full{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < 8; ++i) {
        const auto id = server.Submit(workload[(t + i) % workload.size()]);
        if (id.ok()) {
          admitted.fetch_add(1);
        } else if (id.status().code() == StatusCode::kFailedPrecondition) {
          rejected_drained.fetch_add(1);
        } else {
          EXPECT_EQ(id.status().code(), StatusCode::kUnavailable);
          rejected_full.fetch_add(1);
        }
      }
    });
  }
  go.store(true, std::memory_order_release);
  const std::vector<ServedQuery> results = server.Drain();
  for (std::thread& t : submitters) t.join();

  // Every submission is accounted for exactly once.
  EXPECT_EQ(admitted.load() + rejected_drained.load() + rejected_full.load(),
            static_cast<int64_t>(kSubmitters) * 8);
  // Everything admitted was merged by this Drain — nothing is in flight.
  EXPECT_EQ(static_cast<int64_t>(results.size()), admitted.load());
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.accepted, admitted.load());
  EXPECT_EQ(stats.completed, admitted.load());
  // And late submissions keep failing the same deterministic way.
  const auto late = server.Submit(workload.front());
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace serve
}  // namespace vaq
