#include "online/svaq.h"
#include "online/svaqd.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "synth/scenario.h"

namespace vaq {
namespace online {
namespace {

// A small scenario shared by the tests (2.5k clips would be slow to build
// per test; the YouTube presets are generated once).
const synth::Scenario& SmallScenario() {
  static const synth::Scenario* scenario = [] {
    synth::ScenarioSpec spec;
    spec.name = "small";
    spec.minutes = 6;
    spec.fps = 30;
    spec.seed = 77;
    synth::ActionTrackSpec action;
    action.name = "jumping";
    action.duty = 0.3;
    action.mean_len_frames = 1200;
    spec.actions.push_back(action);
    synth::ObjectTrackSpec car;
    car.name = "car";
    car.background_duty = 0.05;
    car.mean_len_frames = 700;
    car.coupled_action = "jumping";
    car.cover_action_prob = 0.9;
    spec.objects.push_back(car);
    return new synth::Scenario(
        synth::Scenario::FromSpec(spec, "jumping", {"car"}));
  }();
  return *scenario;
}

TEST(ClipEvaluatorTest, CountsMatchDirectModelScan) {
  const synth::Scenario& sc = SmallScenario();
  detect::ModelBundle models = detect::ModelBundle::MaskRcnnI3d(sc.truth(), 5);
  ClipEvaluator evaluator(sc.query(), sc.layout(), models.detector.get(),
                          models.recognizer.get());
  for (ClipIndex c : {0L, 7L, 33L}) {
    const ClipEvaluation eval =
        evaluator.Evaluate(c, {0}, 0, /*short_circuit=*/false);
    int64_t object_count = 0;
    const Interval frames = sc.layout().ClipFrameRange(c);
    for (FrameIndex v = frames.lo; v <= frames.hi; ++v) {
      object_count +=
          models.detector->IsPositive(sc.query().objects[0], v) ? 1 : 0;
    }
    int64_t action_count = 0;
    const Interval shots = sc.layout().ClipShotRange(c);
    for (ShotIndex s = shots.lo; s <= shots.hi; ++s) {
      action_count +=
          models.recognizer->IsPositive(sc.query().action, s) ? 1 : 0;
    }
    EXPECT_EQ(eval.object_counts[0], object_count);
    EXPECT_EQ(eval.action_count, action_count);
    EXPECT_EQ(eval.frames_in_clip, frames.length());
    EXPECT_EQ(eval.shots_in_clip, shots.length());
  }
}

TEST(ClipEvaluatorTest, ShortCircuitSkipsLaterPredicates) {
  const synth::Scenario& sc = SmallScenario();
  detect::ModelBundle models = detect::ModelBundle::MaskRcnnI3d(sc.truth(), 5);
  ClipEvaluator evaluator(sc.query(), sc.layout(), models.detector.get(),
                          models.recognizer.get());
  // Impossible object threshold: the object predicate fails, so the action
  // must not be evaluated.
  const int64_t w = sc.layout().frames_per_clip();
  const ClipEvaluation eval =
      evaluator.Evaluate(0, {w + 1}, 1, /*short_circuit=*/true);
  EXPECT_FALSE(eval.positive);
  EXPECT_TRUE(eval.ObjectEvaluated(0));
  EXPECT_FALSE(eval.ActionEvaluated());
  // Without short-circuiting everything is evaluated.
  const ClipEvaluation full =
      evaluator.Evaluate(0, {w + 1}, 1, /*short_circuit=*/false);
  EXPECT_TRUE(full.ActionEvaluated());
}

TEST(ClipEvaluatorTest, ShortCircuitSavesInferences) {
  const synth::Scenario& sc = SmallScenario();
  detect::ModelBundle with = detect::ModelBundle::MaskRcnnI3d(sc.truth(), 5);
  detect::ModelBundle without =
      detect::ModelBundle::MaskRcnnI3d(sc.truth(), 5);
  SvaqOptions options;
  options.p0_object = 0.015;
  options.p0_action = 0.0015;
  Svaq engine(sc.query(), sc.layout(), options);
  engine.Run(with.detector.get(), with.recognizer.get());
  SvaqOptions no_skip = options;
  no_skip.short_circuit = false;
  Svaq full(sc.query(), sc.layout(), no_skip);
  full.Run(without.detector.get(), without.recognizer.get());
  EXPECT_LT(with.recognizer->stats().inferences,
            without.recognizer->stats().inferences);
  EXPECT_EQ(without.recognizer->stats().inferences,
            sc.layout().NumShots());
}

TEST(SvaqTest, IdealModelsRecoverGroundTruthExactly) {
  const synth::Scenario& sc = SmallScenario();
  detect::ModelBundle models = detect::ModelBundle::Ideal(sc.truth(), 5);
  SvaqOptions options;
  options.p0_object = 1e-4;
  options.p0_action = 1e-4;
  Svaq engine(sc.query(), sc.layout(), options);
  const OnlineResult result =
      engine.Run(models.detector.get(), models.recognizer.get());
  const auto f1 = eval::SequenceF1(result.sequences, sc.TruthClips(), 0.5);
  EXPECT_DOUBLE_EQ(f1.f1, 1.0) << f1.ToString();
}

TEST(SvaqdTest, IdealModelsRecoverGroundTruthExactly) {
  const synth::Scenario& sc = SmallScenario();
  detect::ModelBundle models = detect::ModelBundle::Ideal(sc.truth(), 5);
  Svaqd engine(sc.query(), sc.layout(), SvaqdOptions{});
  const OnlineResult result =
      engine.Run(models.detector.get(), models.recognizer.get());
  const auto f1 = eval::SequenceF1(result.sequences, sc.TruthClips(), 0.5);
  EXPECT_DOUBLE_EQ(f1.f1, 1.0) << f1.ToString();
}

TEST(SvaqTest, ResultSequencesAreWithinClipRange) {
  const synth::Scenario& sc = SmallScenario();
  detect::ModelBundle models = detect::ModelBundle::MaskRcnnI3d(sc.truth(), 9);
  SvaqOptions options;
  options.p0_object = 0.015;
  options.p0_action = 0.0015;
  Svaq engine(sc.query(), sc.layout(), options);
  const OnlineResult result =
      engine.Run(models.detector.get(), models.recognizer.get());
  for (const Interval& iv : result.sequences.intervals()) {
    EXPECT_GE(iv.lo, 0);
    EXPECT_LT(iv.hi, sc.layout().NumClips());
  }
  EXPECT_EQ(result.clips_processed, sc.layout().NumClips());
  // Indicator vector and merged sequences agree.
  EXPECT_EQ(IntervalSet::FromIndicators(result.clip_indicator),
            result.sequences);
}

TEST(SvaqTest, CriticalValuesRespondToP0) {
  const synth::Scenario& sc = SmallScenario();
  SvaqOptions low;
  low.p0_object = 1e-5;
  low.p0_action = 1e-5;
  SvaqOptions high;
  high.p0_object = 0.2;
  high.p0_action = 0.2;
  Svaq a(sc.query(), sc.layout(), low);
  Svaq b(sc.query(), sc.layout(), high);
  EXPECT_LT(a.InitialObjectCriticalValues()[0],
            b.InitialObjectCriticalValues()[0]);
  EXPECT_LT(a.InitialActionCriticalValue(),
            b.InitialActionCriticalValue());
}

TEST(SvaqTest, PerObjectP0Override) {
  const synth::Scenario& sc = SmallScenario();
  SvaqOptions options;
  options.p0_object = 0.3;
  options.p0_per_object = {1e-5};
  Svaq engine(sc.query(), sc.layout(), options);
  // The override (1e-5) wins over p0_object.
  EXPECT_LE(engine.InitialObjectCriticalValues()[0], 4);
}

// SVAQD's headline property (Figure 2): wildly different initial
// probabilities converge to (nearly) the same answer.
class SvaqdP0Insensitivity : public ::testing::TestWithParam<double> {};

TEST_P(SvaqdP0Insensitivity, F1StableAcrossP0) {
  const synth::Scenario& sc = SmallScenario();
  detect::ModelBundle models =
      detect::ModelBundle::MaskRcnnI3d(sc.truth(), 21);
  SvaqdOptions options;
  options.base.p0_object = GetParam();
  options.base.p0_action = GetParam();
  Svaqd engine(sc.query(), sc.layout(), options);
  const OnlineResult result =
      engine.Run(models.detector.get(), models.recognizer.get());
  const auto f1 = eval::FrameLevelF1Frames(
      result.sequences, sc.truth().QueryTruthFrames(sc.query()), sc.layout());
  EXPECT_GT(f1.f1, 0.8) << "p0=" << GetParam() << " " << f1.ToString();
}

INSTANTIATE_TEST_SUITE_P(P0Sweep, SvaqdP0Insensitivity,
                         ::testing::Values(1e-6, 1e-4, 1e-2, 0.1));

TEST(SvaqdTest, UpdatePoliciesAllRun) {
  const synth::Scenario& sc = SmallScenario();
  for (UpdatePolicy policy :
       {UpdatePolicy::kSelfExcluding, UpdatePolicy::kNegativeClipsOnly,
        UpdatePolicy::kAllClips, UpdatePolicy::kPositiveClipsOnly}) {
    detect::ModelBundle models =
        detect::ModelBundle::MaskRcnnI3d(sc.truth(), 3);
    SvaqdOptions options;
    options.update_policy = policy;
    Svaqd engine(sc.query(), sc.layout(), options);
    const OnlineResult result =
        engine.Run(models.detector.get(), models.recognizer.get());
    EXPECT_EQ(result.clips_processed, sc.layout().NumClips());
  }
}

TEST(SvaqdTest, ProbingKeepsActionEstimatorFed) {
  // Without probing and with short-circuiting, a starved action estimator
  // keeps its (bad) initial p0 and the query returns nothing; probing
  // fixes it.
  const synth::Scenario& sc = SmallScenario();
  SvaqdOptions no_probe;
  no_probe.probe_period = 0;
  no_probe.base.p0_action = 0.4;  // Hostile init: k_crit = never.
  no_probe.base.p0_object = 0.015;
  detect::ModelBundle m1 = detect::ModelBundle::MaskRcnnI3d(sc.truth(), 31);
  const OnlineResult starved =
      Svaqd(sc.query(), sc.layout(), no_probe)
          .Run(m1.detector.get(), m1.recognizer.get());

  SvaqdOptions probed = no_probe;
  probed.probe_period = 8;
  detect::ModelBundle m2 = detect::ModelBundle::MaskRcnnI3d(sc.truth(), 31);
  const OnlineResult fed =
      Svaqd(sc.query(), sc.layout(), probed)
          .Run(m2.detector.get(), m2.recognizer.get());
  const auto f1_starved = eval::FrameLevelF1Frames(
      starved.sequences, sc.truth().QueryTruthFrames(sc.query()),
      sc.layout());
  const auto f1_fed = eval::FrameLevelF1Frames(
      fed.sequences, sc.truth().QueryTruthFrames(sc.query()), sc.layout());
  EXPECT_GT(f1_fed.f1, f1_starved.f1);
  // Recovery from the hostile init costs the pre-convergence prefix of the
  // stream, so demand substantial but not near-perfect accuracy.
  EXPECT_GT(f1_fed.f1, 0.55);
  EXPECT_LT(f1_starved.f1, 0.35);
}

TEST(SvaqTest, ObjectOnlyAndActionOnlyQueries) {
  const synth::Scenario& sc = SmallScenario();
  // Object-only query.
  QuerySpec object_only;
  object_only.objects = {sc.query().objects[0]};
  detect::ModelBundle m1 = detect::ModelBundle::Ideal(sc.truth(), 1);
  SvaqOptions options;
  options.p0_object = 1e-4;
  const OnlineResult obj_result =
      Svaq(object_only, sc.layout(), options)
          .Run(m1.detector.get(), /*recognizer=*/nullptr);
  EXPECT_GT(obj_result.sequences.TotalLength(), 0);
  // Action-only query.
  QuerySpec action_only;
  action_only.action = sc.query().action;
  detect::ModelBundle m2 = detect::ModelBundle::Ideal(sc.truth(), 1);
  const OnlineResult act_result =
      Svaq(action_only, sc.layout(), options)
          .Run(/*detector=*/nullptr, m2.recognizer.get());
  EXPECT_GT(act_result.sequences.TotalLength(), 0);
}

}  // namespace
}  // namespace online
}  // namespace vaq
