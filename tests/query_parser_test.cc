#include "query/parser.h"

#include <gtest/gtest.h>

#include "query/lexer.h"

namespace vaq {
namespace query {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("SELECT x, 'str' (42).");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 9u);  // Includes kEnd.
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kComma);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[3].text, "str");
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kLParen);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kNumber);
  EXPECT_EQ((*tokens)[5].number, 42);
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kRParen);
  EXPECT_EQ((*tokens)[7].kind, TokenKind::kDot);
  EXPECT_EQ((*tokens)[8].kind, TokenKind::kEnd);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("a ; b").ok());
}

TEST(LexerTest, KeywordEqualsIsCaseInsensitive) {
  EXPECT_TRUE(KeywordEquals("select", "SELECT"));
  EXPECT_TRUE(KeywordEquals("SeLeCt", "SELECT"));
  EXPECT_FALSE(KeywordEquals("selec", "SELECT"));
  EXPECT_FALSE(KeywordEquals("selects", "SELECT"));
}

TEST(ParserTest, PaperOnlineQuery) {
  // Verbatim (modulo whitespace) from §2 of the paper.
  auto stmt = Parse(
      "SELECT MERGE(clipID) AS Sequence "
      "FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectDetector, "
      "act USING ActionRecognizer) "
      "WHERE act='jumping' AND obj.include('car', 'human')");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->video, "inputVideo");
  EXPECT_EQ(stmt->action, "jumping");
  EXPECT_EQ(stmt->objects,
            (std::vector<std::string>{"car", "human"}));
  EXPECT_FALSE(stmt->ranked);
  EXPECT_EQ(stmt->limit, -1);
  EXPECT_EQ(stmt->models,
            (std::vector<std::string>{"ObjectDetector",
                                      "ActionRecognizer"}));
}

TEST(ParserTest, PaperOfflineQuery) {
  auto stmt = Parse(
      "SELECT MERGE(clipID) AS Sequence, RANK(act, obj) "
      "FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectTracker, "
      "act USING ActionRecognizer) "
      "WHERE act='jumping' AND obj.include('car', 'human') "
      "ORDER BY RANK(act, obj) LIMIT 5");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_TRUE(stmt->ranked);
  EXPECT_EQ(stmt->limit, 5);
  EXPECT_EQ(stmt->action, "jumping");
}

TEST(ParserTest, IncAliasAndCaseInsensitivity) {
  auto stmt = Parse(
      "select merge(clipID) from (process v produce clipID, obj using M) "
      "where obj.inc('car')");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->objects, std::vector<std::string>{"car"});
  EXPECT_TRUE(stmt->action.empty());
}

TEST(ParserTest, BareVideoSource) {
  auto stmt = Parse("SELECT MERGE(clipID) FROM myVideo WHERE act='jumping'");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->video, "myVideo");
}

TEST(ParserTest, ActionOnlyAndObjectOnly) {
  EXPECT_TRUE(Parse("SELECT MERGE(c) FROM v WHERE act='x'").ok());
  EXPECT_TRUE(Parse("SELECT MERGE(c) FROM v WHERE obj.include('x')").ok());
}

TEST(ParserTest, SyntaxErrors) {
  // No predicates at all.
  EXPECT_FALSE(Parse("SELECT MERGE(c) FROM v").ok());
  // Missing LIMIT count.
  EXPECT_FALSE(
      Parse("SELECT MERGE(c) FROM v WHERE act='x' ORDER BY RANK(a) LIMIT")
          .ok());
  // obj.include inside an OR group is a conjunction: rejected.
  EXPECT_FALSE(
      Parse("SELECT MERGE(c) FROM v WHERE (act='x' OR obj.include('a'))")
          .ok());
  // Unterminated OR group.
  EXPECT_FALSE(
      Parse("SELECT MERGE(c) FROM v WHERE (act='x' OR obj='a'").ok());
  // Unsupported predicate head.
  EXPECT_FALSE(Parse("SELECT MERGE(c) FROM v WHERE foo='x'").ok());
  EXPECT_FALSE(Parse("SELECT MERGE(c) FROM v WHERE foo.include('x')").ok());
  // Unterminated parenthesis in source.
  EXPECT_FALSE(
      Parse("SELECT MERGE(c) FROM (PROCESS v PRODUCE c WHERE act='x'").ok());
  // Trailing garbage.
  EXPECT_FALSE(Parse("SELECT MERGE(c) FROM v WHERE act='x' extra").ok());
  // Empty input.
  EXPECT_FALSE(Parse("").ok());
}

TEST(ParserTest, ErrorMessagesCarryPosition) {
  const auto status = Parse("SELECT MERGE(c) FROM v WHERE foo='x'").status();
  EXPECT_NE(status.message().find("offset"), std::string::npos);
}

// Every malformed statement must come back as a clean kInvalidArgument
// whose message names the byte offset of the failure — never a crash,
// never a success, never a positionless error.
TEST(ParserTest, MalformedStatementsReturnPositionedInvalidArgument) {
  const char* const kMalformed[] = {
      "",
      "   ",
      "SELECT",
      "SELECT MERGE(c)",
      "SELECT MERGE(c) FROM",
      "SELECT MERGE(c) FROM v WHERE",
      "SELECT MERGE(c) FROM v WHERE act=",
      "SELECT MERGE(c) FROM v WHERE act='x' AND",
      "SELECT MERGE(c) FROM v WHERE act='x' ORDER",
      "SELECT MERGE(c) FROM v WHERE act='x' ORDER BY",
      "SELECT MERGE(c) FROM v WHERE act='x' ORDER BY RANK(a) LIMIT",
      "SELECT MERGE(c) FROM v WHERE act='x' ORDER BY RANK(a) LIMIT 'k'",
      "SELECT MERGE(c) FROM v WHERE act='x' LIMIT 5",  // LIMIT needs ORDER.
      "SELECT MERGE(c) FROM v WHERE obj.include()",
      "SELECT MERGE(c) FROM v WHERE obj.include('a',)",
      "SELECT MERGE(c) FROM v WHERE obj.include('a'",
      "SELECT MERGE(c) FROM (PROCESS PRODUCE c) WHERE act='x'",
      "SELECT MERGE(c) FROM v WHERE act='x' trailing garbage",
      "MERGE(c) FROM v WHERE act='x'",
      "SELECT MERGE FROM v WHERE act='x'",
  };
  for (const char* sql : kMalformed) {
    const auto status = Parse(sql).status();
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << sql;
    EXPECT_NE(status.message().find("offset"), std::string::npos)
        << sql << " -> " << status.message();
  }
}

TEST(LexerTest, MalformedInputReturnsPositionedInvalidArgument) {
  const char* const kMalformed[] = {
      "SELECT 'unterminated",
      "SELECT 99999999999999999999999",  // Number overflow.
      "a ; b",
      "act = `x`",
      "#",
  };
  for (const char* text : kMalformed) {
    const auto status = Tokenize(text).status();
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << text;
    EXPECT_NE(status.message().find("offset"), std::string::npos)
        << text << " -> " << status.message();
  }
}

TEST(ParserTest, MultipleActionsAreConjoinedClauses) {
  // Footnote 3: multiple actions combine conjunctively.
  auto stmt = Parse("SELECT MERGE(c) FROM v WHERE act='x' AND act='y'");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_FALSE(stmt->IsConjunctive());
  ASSERT_EQ(stmt->cnf_clauses.size(), 2u);
  EXPECT_EQ(stmt->cnf_clauses[0], std::vector<std::string>{"act:x"});
  EXPECT_EQ(stmt->cnf_clauses[1], std::vector<std::string>{"act:y"});
}

TEST(ParserTest, DisjunctiveClauses) {
  // Footnote 4: CNF predicates.
  auto stmt = Parse(
      "SELECT MERGE(c) FROM v "
      "WHERE (obj='car' OR obj='truck') AND act='jumping' AND "
      "(act='waving' OR obj='human')");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_FALSE(stmt->IsConjunctive());
  ASSERT_EQ(stmt->cnf_clauses.size(), 3u);
  EXPECT_EQ(stmt->cnf_clauses[0],
            (std::vector<std::string>{"obj:car", "obj:truck"}));
  EXPECT_EQ(stmt->cnf_clauses[1], std::vector<std::string>{"act:jumping"});
  EXPECT_EQ(stmt->cnf_clauses[2],
            (std::vector<std::string>{"act:waving", "obj:human"}));
  // Convenience fields are not populated for CNF statements.
  EXPECT_TRUE(stmt->action.empty());
  EXPECT_TRUE(stmt->objects.empty());
}

TEST(ParserTest, ConjunctiveStatementsFillBothForms) {
  auto stmt = Parse(
      "SELECT MERGE(c) FROM v WHERE act='x' AND obj.include('a', 'b')");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->IsConjunctive());
  EXPECT_EQ(stmt->action, "x");
  EXPECT_EQ(stmt->objects, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(stmt->cnf_clauses.size(), 3u);
}

TEST(ParserTest, SingleObjectEquality) {
  auto stmt = Parse("SELECT MERGE(c) FROM v WHERE obj='car'");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->IsConjunctive());
  EXPECT_EQ(stmt->objects, std::vector<std::string>{"car"});
}

TEST(AstTest, ToStringSummarizes) {
  QueryStatement stmt;
  stmt.video = "v";
  stmt.action = "jumping";
  stmt.objects = {"car"};
  stmt.ranked = true;
  stmt.limit = 3;
  const std::string s = stmt.ToString();
  EXPECT_NE(s.find("jumping"), std::string::npos);
  EXPECT_NE(s.find("limit=3"), std::string::npos);
}

TEST(ParserTest, WithRecallClause) {
  auto stmt = Parse(
      "SELECT MERGE(clipID) AS Sequence, RANK(act, obj) "
      "FROM (PROCESS v PRODUCE clipID, obj USING ObjectTracker, "
      "act USING ActionRecognizer) "
      "WHERE act='jumping' AND obj.include('car') "
      "ORDER BY RANK(act, obj) LIMIT 5 WITH RECALL 0.95");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_TRUE(stmt->ranked);
  EXPECT_DOUBLE_EQ(stmt->recall_target, 0.95);

  // Online statements take the clause too (standing-query cascades).
  auto online =
      Parse("SELECT MERGE(c) FROM v WHERE act='x' WITH RECALL 0.9");
  ASSERT_TRUE(online.ok()) << online.status();
  EXPECT_FALSE(online->ranked);
  EXPECT_DOUBLE_EQ(online->recall_target, 0.9);

  // Trailing zeros are honored, whole "1" is the exact target, and the
  // clause defaults to 1.0 when absent.
  auto zeros =
      Parse("SELECT MERGE(c) FROM v WHERE act='x' WITH RECALL 0.90");
  ASSERT_TRUE(zeros.ok()) << zeros.status();
  EXPECT_DOUBLE_EQ(zeros->recall_target, 0.9);
  auto one = Parse("SELECT MERGE(c) FROM v WHERE act='x' WITH RECALL 1");
  ASSERT_TRUE(one.ok()) << one.status();
  EXPECT_DOUBLE_EQ(one->recall_target, 1.0);
  auto plain = Parse("SELECT MERGE(c) FROM v WHERE act='x'");
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_DOUBLE_EQ(plain->recall_target, 1.0);
}

TEST(AstTest, ToStringRendersRecallOnlyWhenApproximate) {
  auto approx =
      Parse("SELECT MERGE(c) FROM v WHERE act='x' WITH RECALL 0.9");
  ASSERT_TRUE(approx.ok()) << approx.status();
  EXPECT_NE(approx->ToString().find("recall=0.9"), std::string::npos);
  auto exact = Parse("SELECT MERGE(c) FROM v WHERE act='x' WITH RECALL 1");
  ASSERT_TRUE(exact.ok()) << exact.status();
  EXPECT_EQ(exact->ToString().find("recall"), std::string::npos);
}

// Malformed WITH RECALL clauses must come back as clean, positioned
// kInvalidArgument — the same hygiene contract as every other clause.
TEST(ParserTest, MalformedWithRecallReturnsPositionedInvalidArgument) {
  const char* const kMalformed[] = {
      "SELECT MERGE(c) FROM v WHERE act='x' WITH",
      "SELECT MERGE(c) FROM v WHERE act='x' WITH RECALL",
      "SELECT MERGE(c) FROM v WHERE act='x' WITH RECALL 'x'",
      "SELECT MERGE(c) FROM v WHERE act='x' WITH RECALL 2",
      "SELECT MERGE(c) FROM v WHERE act='x' WITH RECALL 0",
      "SELECT MERGE(c) FROM v WHERE act='x' WITH RECALL 0.",
      "SELECT MERGE(c) FROM v WHERE act='x' WITH RECALL 1.5",
      "SELECT MERGE(c) FROM v WHERE act='x' WITH RECALL 0.0",
      "SELECT MERGE(c) FROM v WHERE act='x' WITH RECALL 0.9 extra",
      "SELECT MERGE(c) FROM v WHERE act='x' WITH RECALL 0.9 WITH RECALL 1",
  };
  for (const char* sql : kMalformed) {
    const auto status = Parse(sql).status();
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << sql;
    EXPECT_NE(status.message().find("offset"), std::string::npos)
        << sql << " -> " << status.message();
  }
}

}  // namespace
}  // namespace query
}  // namespace vaq
