#include "video/layout.h"

#include <gtest/gtest.h>

#include "video/query_spec.h"
#include "video/vocabulary.h"

namespace vaq {
namespace {

TEST(VideoLayoutTest, ExactDivision) {
  const VideoLayout layout(100, 10, 2);  // 10 shots, 5 clips.
  EXPECT_EQ(layout.frames_per_clip(), 20);
  EXPECT_EQ(layout.NumShots(), 10);
  EXPECT_EQ(layout.NumClips(), 5);
  EXPECT_EQ(layout.FrameToShot(0), 0);
  EXPECT_EQ(layout.FrameToShot(99), 9);
  EXPECT_EQ(layout.FrameToClip(19), 0);
  EXPECT_EQ(layout.FrameToClip(20), 1);
  EXPECT_EQ(layout.ShotToClip(1), 0);
  EXPECT_EQ(layout.ShotToClip(2), 1);
  EXPECT_EQ(layout.ShotFrameRange(3), Interval(30, 39));
  EXPECT_EQ(layout.ClipFrameRange(4), Interval(80, 99));
  EXPECT_EQ(layout.ClipShotRange(4), Interval(8, 9));
}

TEST(VideoLayoutTest, PartialTail) {
  const VideoLayout layout(105, 10, 2);  // Trailing 5-frame shot.
  EXPECT_EQ(layout.NumShots(), 11);
  EXPECT_EQ(layout.NumClips(), 6);
  EXPECT_EQ(layout.ShotFrameRange(10), Interval(100, 104));
  EXPECT_EQ(layout.ClipFrameRange(5), Interval(100, 104));
  EXPECT_EQ(layout.ClipShotRange(5), Interval(10, 10));
}

TEST(VideoLayoutTest, MakeValidates) {
  EXPECT_TRUE(VideoLayout::Make(100, 10, 5).ok());
  EXPECT_FALSE(VideoLayout::Make(-1, 10, 5).ok());
  EXPECT_FALSE(VideoLayout::Make(100, 0, 5).ok());
  EXPECT_FALSE(VideoLayout::Make(100, 10, 0).ok());
}

TEST(VideoLayoutTest, FramesToClipsAndBack) {
  const VideoLayout layout(200, 10, 2);  // 20-frame clips, 10 clips.
  const IntervalSet frames =
      IntervalSet::FromIntervals({Interval(5, 25), Interval(100, 119)});
  const IntervalSet clips = layout.FramesToClips(frames);
  ASSERT_EQ(clips.size(), 2u);
  EXPECT_EQ(clips[0], Interval(0, 1));  // Frames 5..25 touch clips 0,1.
  EXPECT_EQ(clips[1], Interval(5, 5));  // Frames 100..119 = clip 5 exactly.
  const IntervalSet expanded = layout.ClipsToFrames(clips);
  ASSERT_EQ(expanded.size(), 2u);
  EXPECT_EQ(expanded[0], Interval(0, 39));
  EXPECT_EQ(expanded[1], Interval(100, 119));
}

TEST(VideoLayoutTest, ClipsToFramesOfSetCoversOriginal) {
  const VideoLayout layout(1000, 10, 5);
  const IntervalSet frames =
      IntervalSet::FromIntervals({Interval(123, 456), Interval(800, 801)});
  const IntervalSet roundtrip =
      layout.ClipsToFrames(layout.FramesToClips(frames));
  EXPECT_EQ(roundtrip.Intersect(frames), frames);  // Superset of original.
}

TEST(VocabularyTest, RegistrationAndLookup) {
  Vocabulary vocab;
  const ObjectTypeId car = vocab.AddObjectType("car");
  const ObjectTypeId person = vocab.AddObjectType("person");
  EXPECT_EQ(vocab.AddObjectType("car"), car);  // Idempotent.
  EXPECT_EQ(vocab.num_object_types(), 2);
  EXPECT_EQ(vocab.FindObjectType("person"), person);
  EXPECT_EQ(vocab.FindObjectType("boat"), kInvalidTypeId);
  EXPECT_EQ(vocab.ObjectTypeName(car), "car");

  const ActionTypeId jump = vocab.AddActionType("jumping");
  EXPECT_EQ(vocab.num_action_types(), 1);
  EXPECT_EQ(vocab.FindActionType("jumping"), jump);
  EXPECT_FALSE(vocab.GetActionType("dancing").ok());
  EXPECT_TRUE(vocab.GetObjectType("car").ok());
}

TEST(QuerySpecTest, FromNamesResolvesInOrder) {
  Vocabulary vocab;
  vocab.AddObjectType("car");
  vocab.AddObjectType("human");
  vocab.AddActionType("jumping");
  auto spec = QuerySpec::FromNames(vocab, "jumping", {"human", "car"});
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec->has_action());
  EXPECT_EQ(spec->num_object_predicates(), 2);
  EXPECT_EQ(spec->num_predicates(), 3);
  EXPECT_EQ(spec->objects[0], vocab.FindObjectType("human"));
  EXPECT_EQ(spec->ToString(vocab), "{a=jumping; o1=human; o2=car}");
}

TEST(QuerySpecTest, ErrorsOnUnknownNamesAndEmptyQuery) {
  Vocabulary vocab;
  vocab.AddActionType("jumping");
  EXPECT_FALSE(QuerySpec::FromNames(vocab, "dancing", {}).ok());
  EXPECT_FALSE(QuerySpec::FromNames(vocab, "jumping", {"ghost"}).ok());
  EXPECT_FALSE(QuerySpec::FromNames(vocab, "", {}).ok());
  EXPECT_TRUE(QuerySpec::FromNames(vocab, "jumping", {}).ok());
}

}  // namespace
}  // namespace vaq
