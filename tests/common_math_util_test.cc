#include "common/math_util.h"

#include <cmath>

#include <gtest/gtest.h>

namespace vaq {
namespace {

TEST(LogSumExpTest, MatchesDirectComputation) {
  EXPECT_NEAR(LogSumExp(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
  EXPECT_NEAR(LogSumExp(0.0, 0.0), std::log(2.0), 1e-12);
  // Extreme magnitudes: no overflow, dominated by the larger term.
  EXPECT_NEAR(LogSumExp(1000.0, 0.0), 1000.0, 1e-9);
  EXPECT_NEAR(LogSumExp(-1000.0, 0.0), 0.0, 1e-9);
}

TEST(LogSumExpTest, NegativeInfinityIsIdentity) {
  EXPECT_DOUBLE_EQ(LogSumExp(kNegInf, 3.5), 3.5);
  EXPECT_DOUBLE_EQ(LogSumExp(3.5, kNegInf), 3.5);
  EXPECT_DOUBLE_EQ(LogSumExp(kNegInf, kNegInf), kNegInf);
}

TEST(Log1mExpTest, AccurateOnBothBranches) {
  // Large negative x: log(1 - e^x) ~ -e^x.
  EXPECT_NEAR(Log1mExp(-40.0), -std::exp(-40.0), 1e-25);
  // Near zero: 1 - e^x is tiny; compare against long-double reference.
  for (double x : {-1e-6, -0.1, -0.5, -0.6931, -0.70, -2.0, -10.0}) {
    const double reference =
        std::log(static_cast<double>(1.0L - std::exp(static_cast<long double>(x))));
    EXPECT_NEAR(Log1mExp(x), reference, 1e-10) << x;
  }
  EXPECT_DOUBLE_EQ(Log1mExp(0.0), kNegInf);
  EXPECT_DOUBLE_EQ(Log1mExp(1.0), kNegInf);
}

TEST(LogChooseTest, MatchesSmallFactorials) {
  EXPECT_NEAR(LogChoose(5, 2), std::log(10.0), 1e-12);
  EXPECT_NEAR(LogChoose(10, 5), std::log(252.0), 1e-12);
  EXPECT_NEAR(LogChoose(52, 5), std::log(2598960.0), 1e-9);
  EXPECT_DOUBLE_EQ(LogChoose(5, 0), 0.0);
  EXPECT_DOUBLE_EQ(LogChoose(5, 5), 0.0);
  EXPECT_DOUBLE_EQ(LogChoose(5, 6), kNegInf);
  EXPECT_DOUBLE_EQ(LogChoose(5, -1), kNegInf);
}

TEST(LogChooseTest, SymmetryAndPascal) {
  for (int64_t n = 1; n <= 40; ++n) {
    for (int64_t k = 0; k <= n; ++k) {
      EXPECT_NEAR(LogChoose(n, k), LogChoose(n, n - k), 1e-9);
      if (k >= 1 && n >= 1) {
        // C(n, k) = C(n-1, k-1) + C(n-1, k) in log space.
        EXPECT_NEAR(LogChoose(n, k),
                    LogSumExp(LogChoose(n - 1, k - 1), LogChoose(n - 1, k)),
                    1e-8)
            << n << "," << k;
      }
    }
  }
}

TEST(ClampProbabilityTest, Clamps) {
  EXPECT_DOUBLE_EQ(ClampProbability(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(ClampProbability(0.5), 0.5);
  EXPECT_DOUBLE_EQ(ClampProbability(1.5), 1.0);
}

TEST(AlmostEqualTest, RelativeAndAbsolute) {
  EXPECT_TRUE(AlmostEqual(1.0, 1.0));
  EXPECT_TRUE(AlmostEqual(1e-15, 0.0));            // Absolute tolerance.
  EXPECT_TRUE(AlmostEqual(1e9, 1e9 * (1 + 1e-10)));  // Relative tolerance.
  EXPECT_FALSE(AlmostEqual(1.0, 1.001));
  EXPECT_FALSE(AlmostEqual(1e9, 1.0000021e9));
}

}  // namespace
}  // namespace vaq
