#include "offline/repository.h"

#include <filesystem>

#include <gtest/gtest.h>

#include "detect/models.h"
#include "offline/baselines.h"
#include "offline/ingest.h"
#include "synth/scenario.h"

namespace vaq {
namespace offline {
namespace {

synth::Scenario MakeVideo(const char* name, uint64_t seed,
                          const char* action) {
  synth::ScenarioSpec spec;
  spec.name = name;
  spec.minutes = 5;
  spec.fps = 30;
  spec.seed = seed;
  synth::ActionTrackSpec a;
  a.name = action;
  a.duty = 0.25;
  a.mean_len_frames = 700;
  spec.actions.push_back(a);
  for (const char* object : {"cup", "person"}) {
    synth::ObjectTrackSpec o;
    o.name = object;
    o.background_duty = 0.08;
    o.mean_len_frames = 600;
    o.coupled_action = action;
    o.cover_action_prob = 0.88;
    spec.objects.push_back(o);
  }
  return synth::Scenario::FromSpec(spec, action, {"cup"});
}

// Three videos: two support "smoking", one only "dancing".
struct Fixture {
  PaperScoring scoring;
  Repository repo;
  std::map<std::string, synth::Scenario> scenarios;

  Fixture() {
    AddVideo("vid_a", MakeVideo("vid_a", 1, "smoking"));
    AddVideo("vid_b", MakeVideo("vid_b", 2, "smoking"));
    AddVideo("vid_c", MakeVideo("vid_c", 3, "dancing"));
  }

  void AddVideo(const std::string& name, synth::Scenario scenario) {
    detect::ModelBundle models =
        detect::ModelBundle::MaskRcnnI3d(scenario.truth(), 7);
    Ingestor ingestor(&scenario.vocab(), &scoring, IngestOptions{});
    repo.Add(name, std::move(ingestor.Ingest(scenario.truth(), models)).value());
    scenarios.emplace(name, std::move(scenario));
  }
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

TEST(RepositoryTest, BasicAccessors) {
  Fixture& f = GetFixture();
  EXPECT_EQ(f.repo.num_videos(), 3u);
  EXPECT_EQ(f.repo.VideoNames(),
            (std::vector<std::string>{"vid_a", "vid_b", "vid_c"}));
  EXPECT_NE(f.repo.Find("vid_a"), nullptr);
  EXPECT_EQ(f.repo.Find("nope"), nullptr);
}

TEST(RepositoryTest, GlobalTopKMatchesPerVideoBruteForce) {
  Fixture& f = GetFixture();
  RvaqOptions options;
  options.k = 5;
  auto global = f.repo.TopK("smoking", {"cup"}, f.scoring, options);
  ASSERT_TRUE(global.ok()) << global.status();
  EXPECT_EQ(global->videos_queried, 2);
  EXPECT_EQ(global->videos_skipped, 1);  // vid_c has no "smoking".
  ASSERT_EQ(global->top.size(), 5u);

  // Reference: brute-force every supporting video and merge.
  std::vector<std::pair<double, std::string>> reference;
  for (const char* name : {"vid_a", "vid_b"}) {
    auto tables = BindByName(*f.repo.Find(name), "smoking", {"cup"});
    ASSERT_TRUE(tables.ok());
    const TopKResult all = PqTraverse(
        *tables, f.scoring, std::numeric_limits<int64_t>::max() / 2);
    for (const RankedSequence& seq : all.top) {
      reference.emplace_back(seq.exact_score, name);
    }
  }
  std::sort(reference.rbegin(), reference.rend());
  for (size_t i = 0; i < global->top.size(); ++i) {
    EXPECT_DOUBLE_EQ(global->top[i].sequence.exact_score,
                     reference[i].first)
        << i;
    EXPECT_EQ(global->top[i].video, reference[i].second) << i;
  }
}

TEST(RepositoryTest, ResultsInterleaveVideos) {
  // With two statistically identical videos, the global top-10 should mix
  // both sources.
  Fixture& f = GetFixture();
  RvaqOptions options;
  options.k = 10;
  auto global = f.repo.TopK("smoking", {"cup"}, f.scoring, options);
  ASSERT_TRUE(global.ok());
  bool saw_a = false;
  bool saw_b = false;
  for (const auto& entry : global->top) {
    saw_a |= entry.video == "vid_a";
    saw_b |= entry.video == "vid_b";
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
  // Scores are non-increasing.
  for (size_t i = 1; i < global->top.size(); ++i) {
    EXPECT_GE(global->top[i - 1].sequence.exact_score,
              global->top[i].sequence.exact_score);
  }
}

TEST(RepositoryTest, QueryNoVideoSupports) {
  Fixture& f = GetFixture();
  RvaqOptions options;
  options.k = 3;
  auto result = f.repo.TopK("flying", {"cup"}, f.scoring, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->videos_queried, 0);
  EXPECT_EQ(result->videos_skipped, 3);
  EXPECT_TRUE(result->top.empty());
}

TEST(RepositoryTest, RemoveExcludesVideoFromQueries) {
  // A fresh repository built from two copies; removing one halves the
  // candidate pool.
  Fixture& f = GetFixture();
  Repository repo;
  repo.Add("x", *f.repo.Find("vid_a"));
  repo.Add("y", *f.repo.Find("vid_b"));
  RvaqOptions options;
  options.k = 50;
  auto both = repo.TopK("smoking", {"cup"}, f.scoring, options);
  ASSERT_TRUE(both.ok());
  EXPECT_TRUE(repo.Remove("y"));
  EXPECT_FALSE(repo.Remove("y"));
  auto one = repo.TopK("smoking", {"cup"}, f.scoring, options);
  ASSERT_TRUE(one.ok());
  EXPECT_LT(one->candidate_sequences, both->candidate_sequences);
  for (const auto& entry : one->top) EXPECT_EQ(entry.video, "x");
}

TEST(RepositoryTest, EmptyRepositoryFails) {
  Repository empty;
  PaperScoring scoring;
  EXPECT_EQ(empty.TopK("smoking", {}, scoring, RvaqOptions{})
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(RepositoryTest, CatalogRoundTrip) {
  Fixture& f = GetFixture();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "vaq_repo_cat").string();
  std::filesystem::remove_all(dir);
  const storage::Catalog catalog(dir);
  for (const std::string& name : f.repo.VideoNames()) {
    ASSERT_TRUE(catalog.Save(name, *f.repo.Find(name)).ok());
  }
  Repository reloaded;
  ASSERT_TRUE(reloaded.AddFromCatalog(catalog).ok());
  EXPECT_EQ(reloaded.num_videos(), 3u);

  RvaqOptions options;
  options.k = 4;
  auto a = f.repo.TopK("smoking", {"cup"}, f.scoring, options);
  auto b = reloaded.TopK("smoking", {"cup"}, f.scoring, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->top.size(), b->top.size());
  for (size_t i = 0; i < a->top.size(); ++i) {
    EXPECT_EQ(a->top[i].video, b->top[i].video);
    EXPECT_DOUBLE_EQ(a->top[i].sequence.exact_score,
                     b->top[i].sequence.exact_score);
  }
}

}  // namespace
}  // namespace offline
}  // namespace vaq
