#include "synth/spec_file.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "synth/scenario.h"

namespace vaq {
namespace synth {
namespace {

constexpr char kSample[] = R"(
# A crossroad camera.
name = crossroad-cam
minutes = 30
fps = 10
seed = 7
frames_per_shot = 10
shots_per_clip = 10

[action]
name = loitering
duty = 0.06
mean_len_frames = 1200
drift = 1, 6, 6, 1

[object]
name = truck
background_duty = 0.05
mean_len_frames = 900
coupled_action = loitering
cover_action_prob = 0.9
mean_instances = 1.4
)";

TEST(SpecFileTest, ParsesEveryField) {
  auto spec = ParseScenarioSpec(kSample);
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->name, "crossroad-cam");
  EXPECT_DOUBLE_EQ(spec->minutes, 30);
  EXPECT_DOUBLE_EQ(spec->fps, 10);
  EXPECT_EQ(spec->seed, 7u);
  EXPECT_EQ(spec->frames_per_shot, 10);
  EXPECT_EQ(spec->shots_per_clip, 10);
  ASSERT_EQ(spec->actions.size(), 1u);
  EXPECT_EQ(spec->actions[0].name, "loitering");
  EXPECT_DOUBLE_EQ(spec->actions[0].duty, 0.06);
  EXPECT_EQ(spec->actions[0].drift.multipliers,
            (std::vector<double>{1, 6, 6, 1}));
  ASSERT_EQ(spec->objects.size(), 1u);
  EXPECT_EQ(spec->objects[0].name, "truck");
  EXPECT_EQ(spec->objects[0].coupled_action, "loitering");
  EXPECT_DOUBLE_EQ(spec->objects[0].cover_action_prob, 0.9);
}

TEST(SpecFileTest, RoundTripsThroughFormat) {
  auto spec = ParseScenarioSpec(kSample);
  ASSERT_TRUE(spec.ok());
  const std::string text = FormatScenarioSpec(*spec);
  auto again = ParseScenarioSpec(text);
  ASSERT_TRUE(again.ok()) << again.status() << "\n" << text;
  EXPECT_EQ(again->name, spec->name);
  EXPECT_EQ(again->seed, spec->seed);
  EXPECT_EQ(again->actions.size(), spec->actions.size());
  EXPECT_EQ(again->objects.size(), spec->objects.size());
  EXPECT_EQ(again->actions[0].drift.multipliers,
            spec->actions[0].drift.multipliers);
  // Identical generated ground truth.
  Vocabulary v1;
  Vocabulary v2;
  EXPECT_EQ(Generate(*spec, v1).ActionFrames(0),
            Generate(*again, v2).ActionFrames(0));
}

TEST(SpecFileTest, ParseErrors) {
  EXPECT_FALSE(ParseScenarioSpec("minutes = abc").ok());
  EXPECT_FALSE(ParseScenarioSpec("mystery = 1").ok());
  EXPECT_FALSE(ParseScenarioSpec("[weird]\n").ok());
  EXPECT_FALSE(ParseScenarioSpec("just a line").ok());
  EXPECT_FALSE(ParseScenarioSpec("[action]\nduty = 0.1").ok());  // No name.
  EXPECT_FALSE(ParseScenarioSpec(
                   "minutes = 1\n[object]\nname = x\ncoupled_action = ghost")
                   .ok());
  EXPECT_FALSE(ParseScenarioSpec("minutes = 0").ok());  // No frames.
  EXPECT_FALSE(ParseScenarioSpec("[action]\nname = a\ndrift = ").ok());
}

TEST(SpecFileTest, LoadFromDisk) {
  const auto dir = std::filesystem::temp_directory_path() / "vaq_specfile";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "cam.spec").string();
  std::ofstream(path) << kSample;
  auto spec = LoadScenarioSpec(path);
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->name, "crossroad-cam");
  EXPECT_FALSE(LoadScenarioSpec("/no/such/file.spec").ok());
}

TEST(SpecFileTest, ScenarioBuildsFromParsedSpec) {
  auto spec = ParseScenarioSpec(kSample);
  ASSERT_TRUE(spec.ok());
  const Scenario scenario =
      Scenario::FromSpec(*spec, "loitering", {"truck"});
  EXPECT_EQ(scenario.layout().num_frames(), spec->NumFrames());
  EXPECT_TRUE(scenario.query().has_action());
  EXPECT_GT(scenario.TruthClips().TotalLength(), 0);
}

}  // namespace
}  // namespace synth
}  // namespace vaq
