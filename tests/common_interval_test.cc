#include "common/interval.h"

#include <bitset>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace vaq {
namespace {

TEST(IntervalTest, BasicProperties) {
  const Interval iv(3, 7);
  EXPECT_FALSE(iv.empty());
  EXPECT_EQ(iv.length(), 5);
  EXPECT_TRUE(iv.Contains(3));
  EXPECT_TRUE(iv.Contains(7));
  EXPECT_FALSE(iv.Contains(8));
  EXPECT_TRUE(Interval(5, 2).empty());
  EXPECT_EQ(Interval(5, 2).length(), 0);
}

TEST(IntervalTest, Overlaps) {
  EXPECT_TRUE(Interval(1, 5).Overlaps(Interval(5, 9)));
  EXPECT_FALSE(Interval(1, 5).Overlaps(Interval(6, 9)));
  EXPECT_FALSE(Interval(1, 5).Overlaps(Interval(9, 6)));
}

TEST(IntervalIoUTest, HandComputedCases) {
  EXPECT_DOUBLE_EQ(IntervalIoU(Interval(0, 9), Interval(0, 9)), 1.0);
  EXPECT_DOUBLE_EQ(IntervalIoU(Interval(0, 4), Interval(5, 9)), 0.0);
  // [0,5] vs [3,9]: intersection 3, union 10.
  EXPECT_DOUBLE_EQ(IntervalIoU(Interval(0, 5), Interval(3, 9)), 0.3);
  EXPECT_DOUBLE_EQ(IntervalIoU(Interval(0, 5), Interval(6, 2)), 0.0);
}

TEST(IntervalSetTest, FromIntervalsNormalizes) {
  const IntervalSet set = IntervalSet::FromIntervals(
      {Interval(5, 7), Interval(1, 2), Interval(3, 4), Interval(9, 8)});
  // [1,2] and [3,4] are adjacent -> merge; [5,7] adjacent to [3,4]? 4+1=5
  // -> all merge into [1,7].
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set[0], Interval(1, 7));
}

TEST(IntervalSetTest, FromIndicators) {
  const IntervalSet set = IntervalSet::FromIndicators(
      {false, true, true, false, true, false, false, true});
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set[0], Interval(1, 2));
  EXPECT_EQ(set[1], Interval(4, 4));
  EXPECT_EQ(set[2], Interval(7, 7));
  EXPECT_EQ(set.TotalLength(), 4);
}

TEST(IntervalSetTest, AddFastAndSlowPaths) {
  IntervalSet set;
  set.Add(Interval(10, 12));
  set.Add(Interval(14, 15));  // Gap: new interval.
  set.Add(Interval(16, 18));  // Adjacent: merge with tail.
  set.Add(Interval(2, 4));    // Before the front: renormalize.
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set[0], Interval(2, 4));
  EXPECT_EQ(set[1], Interval(10, 12));
  EXPECT_EQ(set[2], Interval(14, 18));
  set.Add(Interval(5, 9));  // Bridges front and middle.
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set[0], Interval(2, 12));
}

TEST(IntervalSetTest, ContainsUsesBinarySearch) {
  const IntervalSet set =
      IntervalSet::FromIntervals({Interval(2, 4), Interval(8, 9)});
  EXPECT_FALSE(set.Contains(1));
  EXPECT_TRUE(set.Contains(2));
  EXPECT_TRUE(set.Contains(4));
  EXPECT_FALSE(set.Contains(5));
  EXPECT_TRUE(set.Contains(8));
  EXPECT_FALSE(set.Contains(10));
}

TEST(IntervalSetTest, IntersectHandCases) {
  const IntervalSet a =
      IntervalSet::FromIntervals({Interval(0, 5), Interval(10, 20)});
  const IntervalSet b =
      IntervalSet::FromIntervals({Interval(3, 12), Interval(18, 25)});
  const IntervalSet c = a.Intersect(b);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0], Interval(3, 5));
  EXPECT_EQ(c[1], Interval(10, 12));
  EXPECT_EQ(c[2], Interval(18, 20));
}

TEST(IntervalSetTest, ComplementWithin) {
  const IntervalSet set =
      IntervalSet::FromIntervals({Interval(2, 3), Interval(6, 7)});
  const IntervalSet comp = set.ComplementWithin(Interval(0, 9));
  ASSERT_EQ(comp.size(), 3u);
  EXPECT_EQ(comp[0], Interval(0, 1));
  EXPECT_EQ(comp[1], Interval(4, 5));
  EXPECT_EQ(comp[2], Interval(8, 9));
}

// ---------------------------------------------------------------------------
// Property tests: IntervalSet operations agree with a brute-force bitmask
// model over a small universe, across many random instances.
// ---------------------------------------------------------------------------

constexpr int kUniverse = 64;

IntervalSet RandomSet(Rng& rng) {
  std::vector<Interval> intervals;
  const int pieces = static_cast<int>(rng.UniformInt(0, 6));
  for (int i = 0; i < pieces; ++i) {
    const int64_t lo = rng.UniformInt(0, kUniverse - 1);
    const int64_t hi = lo + rng.UniformInt(-2, 10);
    intervals.push_back(Interval(lo, std::min<int64_t>(hi, kUniverse - 1)));
  }
  return IntervalSet::FromIntervals(std::move(intervals));
}

std::bitset<kUniverse> ToBits(const IntervalSet& set) {
  std::bitset<kUniverse> bits;
  for (const Interval& iv : set.intervals()) {
    for (int64_t x = iv.lo; x <= iv.hi; ++x) bits.set(static_cast<size_t>(x));
  }
  return bits;
}

// Checks the canonical-form invariant: sorted, disjoint, non-adjacent.
void ExpectCanonical(const IntervalSet& set) {
  for (size_t i = 0; i < set.size(); ++i) {
    EXPECT_LE(set[i].lo, set[i].hi);
    if (i > 0) {
      EXPECT_GT(set[i].lo, set[i - 1].hi + 1);
    }
  }
}

class IntervalSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalSetPropertyTest, OperationsMatchBitmaskModel) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    const IntervalSet a = RandomSet(rng);
    const IntervalSet b = RandomSet(rng);
    ExpectCanonical(a);
    ExpectCanonical(b);
    const auto bits_a = ToBits(a);
    const auto bits_b = ToBits(b);

    const IntervalSet inter = a.Intersect(b);
    ExpectCanonical(inter);
    EXPECT_EQ(ToBits(inter), bits_a & bits_b);

    const IntervalSet uni = a.Union(b);
    ExpectCanonical(uni);
    EXPECT_EQ(ToBits(uni), bits_a | bits_b);

    const IntervalSet comp = a.ComplementWithin(Interval(0, kUniverse - 1));
    ExpectCanonical(comp);
    EXPECT_EQ(ToBits(comp), ~bits_a);

    EXPECT_EQ(a.TotalLength(), static_cast<int64_t>(bits_a.count()));
    for (int64_t x = 0; x < kUniverse; ++x) {
      EXPECT_EQ(a.Contains(x), bits_a.test(static_cast<size_t>(x)));
    }
    // Intersection is commutative and idempotent.
    EXPECT_EQ(a.Intersect(b), b.Intersect(a));
    EXPECT_EQ(a.Intersect(a), a);
    // Union with complement covers the universe.
    EXPECT_EQ(uni.Intersect(a), a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace vaq
