#include "online/streaming.h"

#include <gtest/gtest.h>

#include "detect/models.h"
#include "synth/scenario.h"

namespace vaq {
namespace online {
namespace {

const synth::Scenario& StreamScenario() {
  static const synth::Scenario* scenario = [] {
    synth::ScenarioSpec spec;
    spec.name = "streaming_test";
    spec.minutes = 6;
    spec.fps = 30;
    spec.seed = 404;
    synth::ActionTrackSpec action;
    action.name = "running";
    action.duty = 0.3;
    action.mean_len_frames = 1000;
    spec.actions.push_back(action);
    synth::ObjectTrackSpec dog;
    dog.name = "dog";
    dog.background_duty = 0.06;
    dog.mean_len_frames = 700;
    dog.coupled_action = "running";
    dog.cover_action_prob = 0.9;
    spec.objects.push_back(dog);
    return new synth::Scenario(
        synth::Scenario::FromSpec(spec, "running", {"dog"}));
  }();
  return *scenario;
}

TEST(StreamingSvaqdTest, ReproducesBatchSvaqdExactly) {
  const synth::Scenario& sc = StreamScenario();
  detect::ModelBundle m1 = detect::ModelBundle::MaskRcnnI3d(sc.truth(), 3);
  Svaqd batch(sc.query(), sc.layout(), SvaqdOptions{});
  const OnlineResult expected =
      batch.Run(m1.detector.get(), m1.recognizer.get());

  detect::ModelBundle m2 = detect::ModelBundle::MaskRcnnI3d(sc.truth(), 3);
  StreamingSvaqd stream(sc.query(), sc.layout(), SvaqdOptions{}, nullptr);
  std::vector<bool> indicators;
  for (ClipIndex c = 0; c < sc.layout().NumClips(); ++c) {
    indicators.push_back(
        *stream.PushClip(m2.detector.get(), m2.recognizer.get()));
  }
  stream.Finish();
  EXPECT_EQ(stream.sequences(), expected.sequences);
  EXPECT_EQ(indicators, expected.clip_indicator);
}

TEST(StreamingSvaqdTest, PushClipFailsCleanlyAfterFinishAndPastHorizon) {
  const synth::Scenario& sc = StreamScenario();
  detect::ModelBundle models = detect::ModelBundle::MaskRcnnI3d(sc.truth(), 3);
  // Past the design horizon: every in-range push succeeds, the next one
  // reports kOutOfRange and leaves the stream usable (Finish still works).
  StreamingSvaqd stream(sc.query(), sc.layout(), SvaqdOptions{}, nullptr);
  for (ClipIndex c = 0; c < sc.layout().NumClips(); ++c) {
    ASSERT_TRUE(
        stream.PushClip(models.detector.get(), models.recognizer.get()).ok())
        << c;
  }
  const auto past =
      stream.PushClip(models.detector.get(), models.recognizer.get());
  ASSERT_FALSE(past.ok());
  EXPECT_EQ(past.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(stream.next_clip(), sc.layout().NumClips());  // State untouched.
  stream.Finish();
  // After Finish: kFailedPrecondition, again without state damage.
  const auto after =
      stream.PushClip(models.detector.get(), models.recognizer.get());
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(stream.finished());
}

TEST(StreamingSvaqdTest, EventsAreConsistentAndTimely) {
  const synth::Scenario& sc = StreamScenario();
  detect::ModelBundle models = detect::ModelBundle::MaskRcnnI3d(sc.truth(), 3);
  std::vector<SequenceEvent> events;
  StreamingSvaqd stream(sc.query(), sc.layout(), SvaqdOptions{},
                        [&](const SequenceEvent& event) {
                          events.push_back(event);
                        });
  for (ClipIndex c = 0; c < sc.layout().NumClips(); ++c) {
    ASSERT_TRUE(
        stream.PushClip(models.detector.get(), models.recognizer.get()).ok());
  }
  stream.Finish();

  // Event grammar: (opened, extended*, closed)*, with closures arriving
  // exactly one clip after the sequence's last clip (or at Finish).
  bool open = false;
  Interval current;
  IntervalSet from_events;
  for (const SequenceEvent& event : events) {
    switch (event.kind) {
      case SequenceEvent::Kind::kOpened:
        ASSERT_FALSE(open);
        open = true;
        current = event.sequence;
        EXPECT_EQ(event.sequence.lo, event.clip);
        break;
      case SequenceEvent::Kind::kExtended:
        ASSERT_TRUE(open);
        EXPECT_EQ(event.sequence.lo, current.lo);
        EXPECT_EQ(event.sequence.hi, event.clip);
        current = event.sequence;
        break;
      case SequenceEvent::Kind::kClosed:
        ASSERT_TRUE(open);
        open = false;
        EXPECT_EQ(event.sequence.lo, current.lo);
        EXPECT_GE(event.clip, event.sequence.hi);
        EXPECT_LE(event.clip, event.sequence.hi + 1);  // One-clip latency.
        from_events.Add(event.sequence);
        break;
      case SequenceEvent::Kind::kGap:
        ADD_FAILURE() << "gap event without fault injection";
        break;
    }
  }
  EXPECT_FALSE(open);  // Finish closed everything.
  EXPECT_EQ(from_events, stream.sequences());
  EXPECT_GE(stream.sequences().size(), 3u);
}

TEST(StreamingSvaqdTest, FinishClosesOpenSequence) {
  const synth::Scenario& sc = StreamScenario();
  detect::ModelBundle models = detect::ModelBundle::Ideal(sc.truth(), 3);
  StreamingSvaqd stream(sc.query(), sc.layout(), SvaqdOptions{}, nullptr);
  // Push until we are inside a positive run, then stop mid-stream.
  ClipIndex pushed = 0;
  bool in_run = false;
  for (; pushed < sc.layout().NumClips(); ++pushed) {
    in_run = *stream.PushClip(models.detector.get(), models.recognizer.get());
    if (in_run && pushed > 5) break;
  }
  ASSERT_TRUE(in_run);
  const size_t before = stream.sequences().size();
  stream.Finish();
  EXPECT_EQ(stream.sequences().size(), before + 1);
  EXPECT_EQ(stream.sequences().intervals().back().hi, pushed);
  EXPECT_TRUE(stream.finished());
}

TEST(StreamingSvaqdTest, PartialStreamMatchesPrefixSemantics) {
  // Processing only a prefix yields exactly the sequences fully contained
  // in that prefix (plus the open tail closed by Finish).
  const synth::Scenario& sc = StreamScenario();
  const ClipIndex prefix = sc.layout().NumClips() / 2;
  detect::ModelBundle m1 = detect::ModelBundle::MaskRcnnI3d(sc.truth(), 9);
  StreamingSvaqd full(sc.query(), sc.layout(), SvaqdOptions{}, nullptr);
  std::vector<bool> full_indicators;
  for (ClipIndex c = 0; c < prefix; ++c) {
    full_indicators.push_back(
        *full.PushClip(m1.detector.get(), m1.recognizer.get()));
  }
  full.Finish();
  // Same prefix re-fed to a fresh engine gives the same answer
  // (estimators only ever see the past: the engine is causal).
  detect::ModelBundle m2 = detect::ModelBundle::MaskRcnnI3d(sc.truth(), 9);
  StreamingSvaqd again(sc.query(), sc.layout(), SvaqdOptions{}, nullptr);
  for (ClipIndex c = 0; c < prefix; ++c) {
    const bool indicator =
        *again.PushClip(m2.detector.get(), m2.recognizer.get());
    EXPECT_EQ(indicator, full_indicators[static_cast<size_t>(c)]) << c;
  }
}

}  // namespace
}  // namespace online
}  // namespace vaq
