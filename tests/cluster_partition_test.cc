// Direct unit/property coverage for cluster::PartitionNames, the pure
// function every process derives the shard layout from. The invariants
// here are the cluster's placement contract: every input name lands in
// exactly one shard (full coverage, no duplicates), the outer vector
// always has num_shards entries, each inner vector is sorted, and the
// layout is invariant under any permutation of the input — there is no
// placement metadata to ship because there is nothing order-dependent
// to remember.
#include "cluster/partition.h"

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace vaq {
namespace cluster {
namespace {

std::vector<std::string> RandomNames(uint64_t seed, int count) {
  Rng rng(seed);
  std::set<std::string> unique;
  while (static_cast<int>(unique.size()) < count) {
    std::string name = "v";
    const int len = static_cast<int>(rng.UniformInt(int64_t{1}, int64_t{12}));
    for (int i = 0; i < len; ++i) {
      name.push_back(
          static_cast<char>('a' + rng.UniformInt(int64_t{0}, int64_t{25})));
    }
    unique.insert(std::move(name));
  }
  return std::vector<std::string>(unique.begin(), unique.end());
}

void ExpectValidPartition(const std::vector<std::string>& names,
                          int num_shards, PartitionScheme scheme) {
  const std::vector<std::vector<std::string>> shards =
      PartitionNames(names, num_shards, scheme);
  const std::string label = std::string(PartitionSchemeName(scheme)) +
                            " shards=" + std::to_string(num_shards) +
                            " names=" + std::to_string(names.size());
  ASSERT_EQ(shards.size(), static_cast<size_t>(num_shards)) << label;

  // Full coverage, no duplicates: the multiset of assigned names is
  // exactly the input set.
  std::vector<std::string> assigned;
  for (const std::vector<std::string>& shard : shards) {
    EXPECT_TRUE(std::is_sorted(shard.begin(), shard.end())) << label;
    assigned.insert(assigned.end(), shard.begin(), shard.end());
  }
  EXPECT_EQ(assigned.size(), names.size()) << label;
  std::sort(assigned.begin(), assigned.end());
  std::vector<std::string> expected = names;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(assigned, expected) << label;

  if (scheme == PartitionScheme::kHash) {
    // Hash placement agrees with the public single-name function.
    for (int s = 0; s < num_shards; ++s) {
      for (const std::string& name : shards[static_cast<size_t>(s)]) {
        EXPECT_EQ(HashShardOf(name, num_shards), s) << label << " " << name;
      }
    }
  } else {
    // Range shards are contiguous runs of the sorted name list
    // (concatenating them reproduces it) and near-equal in size.
    std::vector<std::string> concatenated;
    size_t smallest = names.size() + 1;
    size_t largest = 0;
    for (const std::vector<std::string>& shard : shards) {
      concatenated.insert(concatenated.end(), shard.begin(), shard.end());
      smallest = std::min(smallest, shard.size());
      largest = std::max(largest, shard.size());
    }
    EXPECT_EQ(concatenated, expected) << label;
    if (names.size() >= static_cast<size_t>(num_shards)) {
      EXPECT_LE(largest - smallest, 1u) << label;
    }
  }

  // Permutation invariance: reversed and rotated inputs give the
  // byte-identical layout.
  std::vector<std::string> reversed(names.rbegin(), names.rend());
  EXPECT_EQ(PartitionNames(reversed, num_shards, scheme), shards) << label;
  if (names.size() > 1) {
    std::vector<std::string> rotated(names.begin() + 1, names.end());
    rotated.push_back(names.front());
    EXPECT_EQ(PartitionNames(rotated, num_shards, scheme), shards) << label;
  }
}

TEST(ClusterPartition, EveryNameLandsInExactlyOneShard) {
  for (const int count : {1, 2, 7, 32, 100}) {
    const std::vector<std::string> names =
        RandomNames(900 + static_cast<uint64_t>(count), count);
    for (const int num_shards : {1, 2, 3, 5, 8}) {
      ExpectValidPartition(names, num_shards, PartitionScheme::kHash);
      ExpectValidPartition(names, num_shards, PartitionScheme::kRange);
    }
  }
}

TEST(ClusterPartition, MoreShardsThanNamesLeavesEmptiesNotDuplicates) {
  const std::vector<std::string> names = RandomNames(17, 3);
  ExpectValidPartition(names, 8, PartitionScheme::kHash);
  ExpectValidPartition(names, 8, PartitionScheme::kRange);
}

TEST(ClusterPartition, HashIsStableUnderRepositoryGrowth) {
  // Adding a video never moves another one: the hash placement of the
  // original names is identical with and without the newcomer.
  const std::vector<std::string> names = RandomNames(23, 24);
  for (const int num_shards : {2, 4, 7}) {
    const std::vector<std::vector<std::string>> before =
        PartitionNames(names, num_shards, PartitionScheme::kHash);
    std::vector<std::string> grown = names;
    grown.push_back("zz-newcomer");
    std::vector<std::vector<std::string>> after =
        PartitionNames(grown, num_shards, PartitionScheme::kHash);
    const int home = HashShardOf("zz-newcomer", num_shards);
    auto& home_shard = after[static_cast<size_t>(home)];
    home_shard.erase(
        std::find(home_shard.begin(), home_shard.end(), "zz-newcomer"));
    EXPECT_EQ(after, before) << "shards=" << num_shards;
  }
}

TEST(ClusterPartition, StableHashIsPartOfTheWireContract) {
  // FNV-1a is pinned: these values may never change without a protocol
  // version bump (every process derives placement from them).
  EXPECT_EQ(StableHash(""), 14695981039346656037ULL);
  EXPECT_EQ(StableHash("a"), 12638187200555641996ULL);
  EXPECT_EQ(StableHash("v0"), StableHash(std::string("v0")));
  EXPECT_NE(StableHash("v0"), StableHash("v1"));
}

}  // namespace
}  // namespace cluster
}  // namespace vaq
