// Property sweeps over the online engines: structural invariants that
// must hold for every scenario, model stack and configuration.
#include <tuple>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "online/svaq.h"
#include "online/svaqd.h"
#include "synth/scenario.h"

namespace vaq {
namespace online {
namespace {

enum class Stack { kMaskRcnn, kYolo, kIdeal };

detect::ModelBundle MakeStack(const synth::Scenario& scenario, Stack stack,
                              uint64_t seed) {
  switch (stack) {
    case Stack::kMaskRcnn:
      return detect::ModelBundle::MaskRcnnI3d(scenario.truth(), seed);
    case Stack::kYolo:
      return detect::ModelBundle::YoloI3d(scenario.truth(), seed);
    case Stack::kIdeal:
      return detect::ModelBundle::Ideal(scenario.truth(), seed);
  }
  VAQ_CHECK(false);
  return detect::ModelBundle::Ideal(scenario.truth(), seed);
}

// Shared scenarios (generation is the expensive part).
const synth::Scenario& CachedScenario(int index) {
  static std::map<int, synth::Scenario>* cache =
      new std::map<int, synth::Scenario>();
  auto it = cache->find(index);
  if (it == cache->end()) {
    it = cache->emplace(index, synth::Scenario::YouTube(index)).first;
  }
  return it->second;
}

class OnlineInvariants
    : public ::testing::TestWithParam<std::tuple<int, Stack>> {};

TEST_P(OnlineInvariants, SvaqdStructureAndQuality) {
  const auto [qi, stack] = GetParam();
  const synth::Scenario& scenario = CachedScenario(qi);
  detect::ModelBundle models = MakeStack(scenario, stack, 17);
  Svaqd engine(scenario.query(), scenario.layout(), SvaqdOptions{});
  const OnlineResult result =
      engine.Run(models.detector.get(), models.recognizer.get());

  // Structural invariants.
  EXPECT_EQ(result.clips_processed, scenario.layout().NumClips());
  EXPECT_EQ(IntervalSet::FromIndicators(result.clip_indicator),
            result.sequences);
  for (const Interval& seq : result.sequences.intervals()) {
    EXPECT_GE(seq.lo, 0);
    EXPECT_LT(seq.hi, scenario.layout().NumClips());
  }
  for (const int64_t kcrit : result.kcrit_objects) {
    EXPECT_GE(kcrit, 1);
    EXPECT_LE(kcrit, scenario.layout().frames_per_clip() + 1);
  }
  EXPECT_GE(result.kcrit_action, 1);
  EXPECT_LE(result.kcrit_action, scenario.layout().shots_per_clip() + 1);

  // Inference accounting: at most one inference per frame/shot.
  EXPECT_LE(result.detector_stats.inferences,
            scenario.layout().num_frames());
  EXPECT_LE(result.recognizer_stats.inferences,
            scenario.layout().NumShots());

  // Quality floor: every stack keeps a solid frame-level F1 against the
  // annotated truth (ideal stacks near-perfect).
  const double f1 =
      eval::FrameLevelF1Frames(
          result.sequences,
          scenario.truth().QueryTruthFrames(scenario.query()),
          scenario.layout())
          .f1;
  EXPECT_GT(f1, stack == Stack::kIdeal ? 0.95 : 0.75)
      << "q" << qi << " stack " << static_cast<int>(stack);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OnlineInvariants,
    ::testing::Combine(::testing::Values(2, 4, 6, 9),
                       ::testing::Values(Stack::kMaskRcnn, Stack::kYolo,
                                         Stack::kIdeal)));

TEST(OnlineInvariantsTest, ShortCircuitNeverChangesTheAnswer) {
  // Algorithm 2's short-circuiting is a pure cost optimization: with
  // probing disabled, the reported sequences must be identical with and
  // without it when the skipped predicates' estimators are also frozen
  // (static SVAQ has no estimators at all).
  const synth::Scenario& scenario = CachedScenario(4);
  SvaqOptions options;
  options.p0_object = 1e-2;
  options.p0_action = 1e-2;
  detect::ModelBundle m1 = detect::ModelBundle::MaskRcnnI3d(scenario.truth(), 5);
  const OnlineResult with_sc =
      Svaq(scenario.query(), scenario.layout(), options)
          .Run(m1.detector.get(), m1.recognizer.get());
  SvaqOptions no_sc = options;
  no_sc.short_circuit = false;
  detect::ModelBundle m2 = detect::ModelBundle::MaskRcnnI3d(scenario.truth(), 5);
  const OnlineResult without_sc =
      Svaq(scenario.query(), scenario.layout(), no_sc)
          .Run(m2.detector.get(), m2.recognizer.get());
  EXPECT_EQ(with_sc.sequences, without_sc.sequences);
  EXPECT_LE(m1.recognizer->stats().type_queries,
            m2.recognizer->stats().type_queries);
}

TEST(OnlineInvariantsTest, StricterAlphaDetectsNoMoreClips) {
  // A smaller significance level demands more evidence, so the set of
  // positive clips shrinks (static critical values isolate the effect).
  const synth::Scenario& scenario = CachedScenario(2);
  int64_t previous = std::numeric_limits<int64_t>::max();
  for (double alpha : {0.2, 0.05, 0.01, 1e-4}) {
    SvaqOptions options;
    options.alpha = alpha;
    options.p0_object = 1e-2;
    options.p0_action = 1e-2;
    detect::ModelBundle models =
        detect::ModelBundle::MaskRcnnI3d(scenario.truth(), 5);
    const OnlineResult result =
        Svaq(scenario.query(), scenario.layout(), options)
            .Run(models.detector.get(), models.recognizer.get());
    EXPECT_LE(result.sequences.TotalLength(), previous) << alpha;
    previous = result.sequences.TotalLength();
  }
}

TEST(OnlineInvariantsTest, HigherP0DetectsNoMoreClips) {
  const synth::Scenario& scenario = CachedScenario(2);
  int64_t previous = std::numeric_limits<int64_t>::max();
  for (double p0 : {1e-4, 1e-2, 0.1, 0.4}) {
    SvaqOptions options;
    options.p0_object = p0;
    options.p0_action = p0;
    detect::ModelBundle models =
        detect::ModelBundle::MaskRcnnI3d(scenario.truth(), 5);
    const OnlineResult result =
        Svaq(scenario.query(), scenario.layout(), options)
            .Run(models.detector.get(), models.recognizer.get());
    EXPECT_LE(result.sequences.TotalLength(), previous) << p0;
    previous = result.sequences.TotalLength();
  }
}

TEST(OnlineInvariantsTest, HorizonActsAsMultipleComparisonControl) {
  // A longer design horizon means more windows are implicitly tested, so
  // the static critical values cannot shrink.
  const synth::Scenario& scenario = CachedScenario(2);
  int64_t previous_obj = 0;
  int64_t previous_act = 0;
  for (int64_t horizon : {10000L, 100000L, 10000000L}) {
    SvaqOptions options;
    options.p0_object = 1e-2;
    options.p0_action = 1e-2;
    options.horizon_frames = horizon;
    Svaq engine(scenario.query(), scenario.layout(), options);
    EXPECT_GE(engine.InitialObjectCriticalValues()[0], previous_obj);
    EXPECT_GE(engine.InitialActionCriticalValue(), previous_act);
    previous_obj = engine.InitialObjectCriticalValues()[0];
    previous_act = engine.InitialActionCriticalValue();
  }
}

}  // namespace
}  // namespace online
}  // namespace vaq
