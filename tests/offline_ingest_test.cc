#include "offline/ingest.h"

#include <filesystem>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "offline/baselines.h"
#include "offline/rvaq.h"
#include "synth/scenario.h"

namespace vaq {
namespace offline {
namespace {

// One shared small scenario + ingestion (building it is the expensive
// part; the assertions are cheap).
struct Fixture {
  synth::Scenario scenario;
  detect::ModelBundle models;
  PaperScoring scoring;
  storage::VideoIndex index;

  Fixture()
      : scenario(MakeScenario()),
        models(detect::ModelBundle::MaskRcnnI3d(scenario.truth(), 17)) {
    Ingestor ingestor(&scenario.vocab(), &scoring, IngestOptions{});
    index = std::move(ingestor.Ingest(scenario.truth(), models)).value();
  }

  static synth::Scenario MakeScenario() {
    synth::ScenarioSpec spec;
    spec.name = "ingest_test";
    spec.minutes = 6;
    spec.fps = 30;
    spec.seed = 99;
    synth::ActionTrackSpec action;
    action.name = "smoking";
    action.duty = 0.18;
    action.mean_len_frames = 500;
    spec.actions.push_back(action);
    for (const char* name : {"cup", "wine glass", "tv"}) {
      synth::ObjectTrackSpec obj;
      obj.name = name;
      obj.background_duty = 0.06;
      obj.mean_len_frames = 500;
      if (std::string(name) != "tv") {
        obj.coupled_action = "smoking";
        obj.cover_action_prob = 0.9;
      }
      spec.objects.push_back(obj);
    }
    return synth::Scenario::FromSpec(spec, "smoking", {"cup", "wine glass"});
  }
};

Fixture& GetFixture() {
  static Fixture* fixture = new Fixture();
  return *fixture;
}

TEST(IngestTest, CoversEveryVocabularyType) {
  const Fixture& f = GetFixture();
  EXPECT_EQ(f.index.objects.size(),
            static_cast<size_t>(f.scenario.vocab().num_object_types()));
  EXPECT_EQ(f.index.actions.size(),
            static_cast<size_t>(f.scenario.vocab().num_action_types()));
  EXPECT_EQ(f.index.num_clips, f.scenario.layout().NumClips());
  for (const storage::TypeIndex& t : f.index.objects) {
    EXPECT_EQ(t.table.num_rows(), f.index.num_clips);
    EXPECT_FALSE(t.type_name.empty());
  }
}

TEST(IngestTest, ScoresAreNonNegativeAndSignalBearing) {
  const Fixture& f = GetFixture();
  const storage::TypeIndex* cup = f.index.FindObjectByName("cup");
  ASSERT_NE(cup, nullptr);
  double max_score = 0;
  for (int64_t c = 0; c < f.index.num_clips; ++c) {
    const double s = cup->table.PeekScore(c);
    EXPECT_GE(s, 0.0);
    max_score = std::max(max_score, s);
  }
  EXPECT_GT(max_score, 1.0);  // Real detections accumulated somewhere.
}

TEST(IngestTest, HighScoringClipsAreWhereTheObjectIs) {
  const Fixture& f = GetFixture();
  const storage::TypeIndex* cup = f.index.FindObjectByName("cup");
  ASSERT_NE(cup, nullptr);
  const IntervalSet truth_clips = f.scenario.layout().FramesToClips(
      f.scenario.truth().ObjectFrames(
          f.scenario.vocab().FindObjectType("cup")));
  // The top-20 scoring clips should overwhelmingly be truth clips.
  int in_truth = 0;
  for (int64_t rank = 0; rank < 20; ++rank) {
    if (truth_clips.Contains(cup->table.SortedRow(rank).clip)) ++in_truth;
  }
  cup->table.ResetCounter();
  EXPECT_GE(in_truth, 18);
}

TEST(IngestTest, IndividualSequencesTrackTypeTruth) {
  const Fixture& f = GetFixture();
  const storage::TypeIndex* action = f.index.FindActionByName("smoking");
  ASSERT_NE(action, nullptr);
  const IntervalSet truth_clips = f.scenario.layout().FramesToClips(
      f.scenario.truth().ActionFrames(
          f.scenario.vocab().FindActionType("smoking")));
  const auto f1 =
      eval::FrameLevelF1(action->sequences, truth_clips, f.scenario.layout());
  EXPECT_GT(f1.f1, 0.85) << f1.ToString();
}

TEST(IngestTest, PqApproximatesQueryTruth) {
  const Fixture& f = GetFixture();
  auto tables =
      QueryTables::Bind(f.index, f.scenario.query(), f.scenario.vocab());
  ASSERT_TRUE(tables.ok());
  const IntervalSet pq = tables->ComputePq();
  const auto f1 = eval::FrameLevelF1(pq, f.scenario.TruthClips(),
                                     f.scenario.layout());
  EXPECT_GT(f1.f1, 0.8) << f1.ToString();
}

TEST(IngestTest, BindFailsForUnknownTypes) {
  const Fixture& f = GetFixture();
  Vocabulary other;
  other.AddObjectType("ghost");
  QuerySpec spec;
  spec.objects = {static_cast<ObjectTypeId>(99)};
  EXPECT_FALSE(QueryTables::Bind(f.index, spec, f.scenario.vocab()).ok());
}

TEST(IngestTest, RvaqOverIngestedIndexMatchesBruteForce) {
  const Fixture& f = GetFixture();
  auto tables =
      QueryTables::Bind(f.index, f.scenario.query(), f.scenario.vocab());
  ASSERT_TRUE(tables.ok());
  const TopKResult expected = PqTraverse(*tables, f.scoring, 3);
  RvaqOptions options;
  options.k = 3;
  const TopKResult rvaq = Rvaq(&tables.value(), &f.scoring, options).Run();
  ASSERT_EQ(rvaq.top.size(), expected.top.size());
  for (size_t i = 0; i < rvaq.top.size(); ++i) {
    EXPECT_EQ(rvaq.top[i].clips, expected.top[i].clips);
    EXPECT_DOUBLE_EQ(rvaq.top[i].exact_score, expected.top[i].exact_score);
  }
}

TEST(IngestTest, InjectedStorageFaultsPropagateStatus) {
  const Fixture& f = GetFixture();
  // A certain page fault makes every materialization attempt fail: the
  // ingest must surface kUnavailable instead of returning a bad index.
  fault::FaultSpec spec;
  spec.page_error_rate = 1.0;
  const fault::FaultPlan plan(spec, /*seed=*/7);
  IngestOptions options;
  options.fault_plan = &plan;
  Ingestor faulty(&f.scenario.vocab(), &f.scoring, options);
  const auto result = faulty.Ingest(f.scenario.truth(), f.models);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);

  // A zero-rate plan is inert: the ingest succeeds and matches the
  // fault-free fixture index.
  fault::FaultSpec none;
  const fault::FaultPlan inert(none, /*seed=*/7);
  IngestOptions clean_options;
  clean_options.fault_plan = &inert;
  Ingestor clean(&f.scenario.vocab(), &f.scoring, clean_options);
  detect::ModelBundle models =
      detect::ModelBundle::MaskRcnnI3d(f.scenario.truth(), 17);
  const auto clean_result = clean.Ingest(f.scenario.truth(), models);
  ASSERT_TRUE(clean_result.ok()) << clean_result.status();
  EXPECT_EQ(clean_result->num_clips, f.index.num_clips);
  for (size_t t = 0; t < f.index.objects.size(); ++t) {
    EXPECT_EQ(clean_result->objects[t].sequences,
              f.index.objects[t].sequences);
  }
}

TEST(IngestTest, CatalogRoundTripPreservesQueryResults) {
  const Fixture& f = GetFixture();
  const std::string dir =
      (std::filesystem::temp_directory_path() / "vaq_ingest_cat").string();
  std::filesystem::remove_all(dir);
  const storage::Catalog catalog(dir);
  ASSERT_TRUE(catalog.Save("test_video", f.index).ok());
  auto loaded = catalog.Load("test_video");
  ASSERT_TRUE(loaded.ok());
  auto original_tables =
      QueryTables::Bind(f.index, f.scenario.query(), f.scenario.vocab());
  auto loaded_tables =
      QueryTables::Bind(*loaded, f.scenario.query(), f.scenario.vocab());
  ASSERT_TRUE(loaded_tables.ok());
  RvaqOptions options;
  options.k = 3;
  const TopKResult a =
      Rvaq(&original_tables.value(), &f.scoring, options).Run();
  const TopKResult b = Rvaq(&loaded_tables.value(), &f.scoring, options).Run();
  ASSERT_EQ(a.top.size(), b.top.size());
  for (size_t i = 0; i < a.top.size(); ++i) {
    EXPECT_EQ(a.top[i].clips, b.top[i].clips);
    EXPECT_DOUBLE_EQ(a.top[i].exact_score, b.top[i].exact_score);
  }
}

}  // namespace
}  // namespace offline
}  // namespace vaq
