#include "scanstat/critical_value.h"

#include <gtest/gtest.h>

#include "scanstat/naus.h"

namespace vaq {
namespace scanstat {
namespace {

ScanConfig Config(int64_t w, int64_t n, double alpha) {
  ScanConfig c;
  c.window = w;
  c.horizon = n;
  c.alpha = alpha;
  return c;
}

TEST(CriticalValueTest, DefinitionHolds) {
  // k_crit is the smallest k with tail <= alpha: verify both sides.
  for (double p : {0.001, 0.01, 0.05, 0.2}) {
    for (int64_t w : {5, 50, 100}) {
      const ScanConfig config = Config(w, 100 * w, 0.01);
      const int64_t k = CriticalValue(p, config);
      ASSERT_GE(k, 1);
      ASSERT_LE(k, w + 1);
      if (k <= w) {
        EXPECT_LE(ScanStatisticTailProbability(k, p, w, config.L()), 0.01)
            << "p=" << p << " w=" << w;
      }
      if (k > 1) {
        EXPECT_GT(ScanStatisticTailProbability(k - 1, p, w, config.L()),
                  0.01)
            << "p=" << p << " w=" << w;
      }
    }
  }
}

TEST(CriticalValueTest, MonotoneInBackgroundProbability) {
  const ScanConfig config = Config(50, 100000, 0.01);
  int64_t prev = 0;
  for (double p : {1e-6, 1e-4, 1e-3, 1e-2, 0.05, 0.2, 0.5, 0.9}) {
    const int64_t k = CriticalValue(p, config);
    EXPECT_GE(k, prev) << "p=" << p;
    prev = k;
  }
}

TEST(CriticalValueTest, MonotoneInAlpha) {
  // Stricter significance demands more evidence.
  int64_t prev = 1000;
  for (double alpha : {1e-6, 1e-4, 0.01, 0.1, 0.5}) {
    const int64_t k = CriticalValue(0.02, Config(50, 100000, alpha));
    EXPECT_LE(k, prev) << "alpha=" << alpha;
    prev = k;
  }
}

TEST(CriticalValueTest, MonotoneInHorizon) {
  // Longer streams mean more windows to test: k_crit cannot shrink.
  int64_t prev = 0;
  for (int64_t horizon : {100L, 1000L, 10000L, 1000000L}) {
    const int64_t k = CriticalValue(0.02, Config(50, horizon, 0.01));
    EXPECT_GE(k, prev) << "horizon=" << horizon;
    prev = k;
  }
}

TEST(CriticalValueTest, ZeroBackgroundNeedsSingleEvent) {
  EXPECT_EQ(CriticalValue(0.0, Config(50, 100000, 0.01)), 1);
}

TEST(CriticalValueTest, SaturatedBackgroundIsNeverSignificant) {
  EXPECT_EQ(CriticalValue(1.0, Config(50, 100000, 0.01)), 51);
  EXPECT_EQ(CriticalValue(0.95, Config(10, 100000, 0.001)), 11);
}

TEST(CriticalValueTest, WindowOfOne) {
  // With w = 1 the only possible counts are 0 and 1.
  const int64_t k = CriticalValue(1e-9, Config(1, 1000, 0.01));
  EXPECT_EQ(k, 1);
  EXPECT_EQ(CriticalValue(0.5, Config(1, 1000, 0.01)), 2);
}

TEST(ScanConfigTest, ToStringMentionsFields) {
  const std::string s = Config(50, 1000, 0.05).ToString();
  EXPECT_NE(s.find("w=50"), std::string::npos);
  EXPECT_NE(s.find("alpha=0.05"), std::string::npos);
}

}  // namespace
}  // namespace scanstat
}  // namespace vaq
