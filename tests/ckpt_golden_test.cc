// Pins the checkpoint blob byte layout (format version 1) to a golden
// file. The serializer promises append-only evolution within a format
// version: if this test fails, either bump kFormatVersion (and add a
// golden for the new version) or revert the encoding change — silently
// re-encoding v1 would make existing checkpoints unreadable.
//
// Regenerating (only alongside a version bump): the failure message
// prints the actual hex; paste it into tests/golden/ckpt_format_v<n>.hex.
#include <cctype>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "ckpt/serializer.h"

#ifndef VAQ_GOLDEN_DIR
#error "VAQ_GOLDEN_DIR must point at tests/golden"
#endif

namespace vaq {
namespace ckpt {
namespace {

// One record per payload field type, one raw record, and one record
// whose tag no current reader knows — the forward-compat case.
std::string CanonicalV1Blob() {
  Payload fields;
  fields.PutU32(7);
  fields.PutU64(0x1122334455667788ull);
  fields.PutI64(-9);
  fields.PutF64(0.5);
  fields.PutBool(true);
  fields.PutString("golden");
  Serializer serializer;
  serializer.Append(/*tag=*/1, fields);
  serializer.Append(/*tag=*/2, "raw");
  serializer.Append(/*tag=*/0xFFFFu, "future record type");
  return serializer.blob();
}

std::string Hex(const std::string& bytes) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xF]);
  }
  return out;
}

std::string Unhex(const std::string& hex) {
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    const auto nibble = [](char c) -> unsigned {
      if (c >= '0' && c <= '9') return static_cast<unsigned>(c - '0');
      return static_cast<unsigned>(c - 'a' + 10);
    };
    out.push_back(static_cast<char>((nibble(hex[i]) << 4) | nibble(hex[i + 1])));
  }
  return out;
}

std::string ReadGolden(const std::string& name) {
  std::ifstream in(std::string(VAQ_GOLDEN_DIR) + "/" + name);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string hex;
  for (const char c : buffer.str()) {  // Tolerate line wraps in the file.
    if (!std::isspace(static_cast<unsigned char>(c))) hex.push_back(c);
  }
  return hex;
}

TEST(CkptGoldenTest, V1BlobBytesAreFrozen) {
  const std::string golden = ReadGolden("ckpt_format_v1.hex");
  ASSERT_FALSE(golden.empty()) << "missing golden file ckpt_format_v1.hex";
  EXPECT_EQ(Hex(CanonicalV1Blob()), golden)
      << "checkpoint v1 encoding changed; bump kFormatVersion instead of "
         "editing the golden file";
}

TEST(CkptGoldenTest, GoldenBytesStillDecode) {
  // Decode from the *file*, not from today's encoder — this is what
  // guarantees yesterday's checkpoints stay readable.
  const std::string blob = Unhex(ReadGolden("ckpt_format_v1.hex"));
  ASSERT_FALSE(blob.empty());
  auto reader = Deserializer::Open(blob);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader.value().version(), 1u);

  Record record;
  ASSERT_TRUE(reader.value().Next(&record).ok());
  EXPECT_EQ(record.tag, 1u);
  PayloadReader in(record.payload);
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double f64 = 0;
  bool b = false;
  std::string s;
  ASSERT_TRUE(in.GetU32(&u32).ok());
  ASSERT_TRUE(in.GetU64(&u64).ok());
  ASSERT_TRUE(in.GetI64(&i64).ok());
  ASSERT_TRUE(in.GetF64(&f64).ok());
  ASSERT_TRUE(in.GetBool(&b).ok());
  ASSERT_TRUE(in.GetString(&s).ok());
  EXPECT_EQ(u32, 7u);
  EXPECT_EQ(u64, 0x1122334455667788ull);
  EXPECT_EQ(i64, -9);
  EXPECT_EQ(f64, 0.5);
  EXPECT_TRUE(b);
  EXPECT_EQ(s, "golden");
  EXPECT_EQ(in.remaining(), 0u);

  ASSERT_TRUE(reader.value().Next(&record).ok());
  EXPECT_EQ(record.tag, 2u);
  EXPECT_EQ(record.payload, "raw");

  // The unknown-tag record still frames and checksums cleanly; skipping
  // it is the reader's policy decision, not a parse failure.
  ASSERT_TRUE(reader.value().Next(&record).ok());
  EXPECT_EQ(record.tag, 0xFFFFu);
  EXPECT_EQ(record.payload, "future record type");
  EXPECT_EQ(reader.value().Next(&record).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace ckpt
}  // namespace vaq
