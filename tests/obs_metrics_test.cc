// MetricRegistry semantics: labeled families, concurrent counter updates,
// histogram bucket boundaries, and the two exporters (Prometheus text and
// JSON, including the built-in JSON linter).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"

namespace vaq {
namespace obs {
namespace {

TEST(MetricRegistryTest, GetOrCreateReturnsStablePointers) {
  MetricRegistry registry;
  Counter* a = registry.GetCounter("hits", {{"model", "yolo"}});
  Counter* b = registry.GetCounter("hits", {{"model", "yolo"}});
  Counter* c = registry.GetCounter("hits", {{"model", "i3d"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(MetricRegistryTest, LabelOrderIsCanonicalized) {
  MetricRegistry registry;
  Counter* a = registry.GetCounter("x", {{"b", "2"}, {"a", "1"}});
  Counter* b = registry.GetCounter("x", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(a, b);
}

TEST(MetricRegistryTest, TwoThreadsBumpingOneFamilyLoseNothing) {
  MetricRegistry registry;
  constexpr int64_t kPerThread = 200000;
  auto bump = [&registry] {
    // Resolve inside the thread: registration itself must also be safe
    // under concurrency, not just the increments.
    Counter* counter =
        registry.GetCounter("vaq_detector_invocations", {{"model", "yolo"}});
    for (int64_t i = 0; i < kPerThread; ++i) counter->Increment();
  };
  std::thread t1(bump);
  std::thread t2(bump);
  t1.join();
  t2.join();
  EXPECT_EQ(registry.GetCounter("vaq_detector_invocations",
                                {{"model", "yolo"}})
                ->value(),
            2 * kPerThread);
}

TEST(MetricRegistryTest, GaugeSetAndAdd) {
  MetricRegistry registry;
  Gauge* g = registry.GetGauge("queue_depth");
  g->Set(4.0);
  EXPECT_DOUBLE_EQ(g->value(), 4.0);
  g->Add(-1.5);
  EXPECT_DOUBLE_EQ(g->value(), 2.5);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 4.0});
  for (const double v : {0.5, 1.0, 1.5, 2.0, 4.0, 5.0}) h.Observe(v);
  EXPECT_EQ(h.bucket_count(0), 2);  // 0.5, 1.0 (boundary is inclusive).
  EXPECT_EQ(h.bucket_count(1), 2);  // 1.5, 2.0.
  EXPECT_EQ(h.bucket_count(2), 1);  // 4.0.
  EXPECT_EQ(h.bucket_count(3), 1);  // 5.0 lands in +inf.
  EXPECT_EQ(h.count(), 6);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 5.0);
}

TEST(HistogramTest, RegistryRejectsNothingButSnapshotsCumulative) {
  MetricRegistry registry;
  Histogram* h = registry.GetHistogram("lat_ms", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(100.0);
  const Snapshot snapshot = registry.TakeSnapshot();
  ASSERT_EQ(snapshot.entries.size(), 1u);
  const std::string text = ExportPrometheus(snapshot);
  // Prometheus buckets are cumulative: le="1" 1, le="10" 2, le="+Inf" 3.
  EXPECT_NE(text.find("lat_ms_bucket{le=\"1\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_ms_bucket{le=\"10\"} 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_ms_bucket{le=\"+Inf\"} 3"), std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_ms_count 3"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE lat_ms histogram"), std::string::npos) << text;
}

TEST(ExportTest, PrometheusEmitsOneTypeLinePerFamily) {
  MetricRegistry registry;
  registry.GetCounter("calls", {{"outcome", "ok"}})->Increment(3);
  registry.GetCounter("calls", {{"outcome", "timeout"}})->Increment();
  registry.GetGauge("depth")->Set(2.0);
  const std::string text = ExportPrometheus(registry.TakeSnapshot());
  // One TYPE header covering both members of the `calls` family.
  size_t first = text.find("# TYPE calls counter");
  ASSERT_NE(first, std::string::npos) << text;
  EXPECT_EQ(text.find("# TYPE calls counter", first + 1), std::string::npos)
      << text;
  EXPECT_NE(text.find("calls{outcome=\"ok\"} 3"), std::string::npos) << text;
  EXPECT_NE(text.find("calls{outcome=\"timeout\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE depth gauge"), std::string::npos) << text;
}

TEST(ExportTest, JsonExportPassesTheLinter) {
  MetricRegistry registry;
  registry.GetCounter("c", {{"k", "v with \"quotes\" and \\slashes\\"}})
      ->Increment();
  registry.GetGauge("g")->Set(1.5);
  registry.GetHistogram("h", {1.0})->Observe(2.0);
  const std::string json = ExportJson(registry.TakeSnapshot());
  EXPECT_EQ(JsonLintError(json), "") << json;
}

TEST(ExportTest, LinterRejectsMalformedDocuments) {
  EXPECT_EQ(JsonLintError("{\"a\":1}"), "");
  EXPECT_EQ(JsonLintError("[1,2,3]"), "");
  EXPECT_NE(JsonLintError("{"), "");
  EXPECT_NE(JsonLintError("{\"a\":}"), "");
  EXPECT_NE(JsonLintError("{\"a\":1,}"), "");
  EXPECT_NE(JsonLintError("[1 2]"), "");
  EXPECT_NE(JsonLintError("{\"a\":1} trailing"), "");
  EXPECT_NE(JsonLintError("\"unterminated"), "");
}

TEST(ExportTest, ResetZeroesValuesButKeepsFamilies) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("n");
  c->Increment(7);
  registry.Reset();
  EXPECT_EQ(c->value(), 0);
  const Snapshot snapshot = registry.TakeSnapshot();
  ASSERT_EQ(snapshot.entries.size(), 1u);
  EXPECT_EQ(snapshot.entries[0].counter_value, 0);
}

TEST(ExportTest, SnapshotOrderIsDeterministic) {
  MetricRegistry registry;
  registry.GetCounter("z_metric");
  registry.GetCounter("a_metric", {{"m", "2"}});
  registry.GetCounter("a_metric", {{"m", "1"}});
  const Snapshot snapshot = registry.TakeSnapshot();
  ASSERT_EQ(snapshot.entries.size(), 3u);
  EXPECT_EQ(snapshot.entries[0].name, "a_metric");
  EXPECT_EQ(snapshot.entries[0].labels[0].second, "1");
  EXPECT_EQ(snapshot.entries[1].labels[0].second, "2");
  EXPECT_EQ(snapshot.entries[2].name, "z_metric");
}

}  // namespace
}  // namespace obs
}  // namespace vaq
