// Cross-module integration: the full paper pipeline, end to end.
#include <filesystem>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "offline/ingest.h"
#include "offline/repository.h"
#include "query/session.h"
#include "storage/paged_table.h"
#include "synth/scenario.h"

namespace vaq {
namespace {

namespace fs = std::filesystem;

const synth::Scenario& SharedScenario() {
  static const synth::Scenario* scenario =
      new synth::Scenario(synth::Scenario::YouTube(4));  // Drinking beer.
  return *scenario;
}

TEST(IntegrationTest, OnlineResultAndOfflinePqAgree) {
  // The online engine evaluates the conjunction directly; the offline
  // ingestion evaluates each type independently and intersects (Eq. 12).
  // Run both over the same video and models: they must report nearly the
  // same frames.
  const synth::Scenario& sc = SharedScenario();
  detect::ModelBundle m1 = detect::ModelBundle::MaskRcnnI3d(sc.truth(), 55);
  online::Svaqd engine(sc.query(), sc.layout(), online::SvaqdOptions{});
  const online::OnlineResult online_result =
      engine.Run(m1.detector.get(), m1.recognizer.get());

  detect::ModelBundle m2 = detect::ModelBundle::MaskRcnnI3d(sc.truth(), 55);
  offline::PaperScoring scoring;
  offline::Ingestor ingestor(&sc.vocab(), &scoring, offline::IngestOptions{});
  const storage::VideoIndex index =
      std::move(ingestor.Ingest(sc.truth(), m2)).value();
  auto tables = offline::QueryTables::Bind(index, sc.query(), sc.vocab());
  ASSERT_TRUE(tables.ok());
  const IntervalSet pq = tables->ComputePq();

  const eval::F1Result agreement =
      eval::FrameLevelF1(online_result.sequences, pq, sc.layout());
  EXPECT_GT(agreement.f1, 0.9) << agreement.ToString();
  // And both track the annotated ground truth.
  EXPECT_GT(eval::FrameLevelF1(pq, sc.TruthClips(), sc.layout()).f1, 0.85);
}

TEST(IntegrationTest, DeterministicAcrossRuns) {
  const synth::Scenario& sc = SharedScenario();
  IntervalSet first;
  IntervalSet second;
  for (IntervalSet* out : {&first, &second}) {
    detect::ModelBundle models =
        detect::ModelBundle::MaskRcnnI3d(sc.truth(), 999);
    online::Svaqd engine(sc.query(), sc.layout(), online::SvaqdOptions{});
    *out = engine.Run(models.detector.get(), models.recognizer.get())
               .sequences;
  }
  EXPECT_EQ(first, second);
  // A different model seed gives a (generally) different answer.
  detect::ModelBundle other = detect::ModelBundle::MaskRcnnI3d(sc.truth(), 1);
  online::Svaqd engine(sc.query(), sc.layout(), online::SvaqdOptions{});
  const IntervalSet third =
      engine.Run(other.detector.get(), other.recognizer.get()).sequences;
  EXPECT_FALSE(third == first);
}

TEST(IntegrationTest, CatalogToPagedTablesToRvaq) {
  // Ingest -> persist -> export the queried tables to the paged on-disk
  // format -> answer the query straight off disk; results must match the
  // in-memory run bit for bit.
  const synth::Scenario& sc = SharedScenario();
  detect::ModelBundle models =
      detect::ModelBundle::MaskRcnnI3d(sc.truth(), 55);
  offline::PaperScoring scoring;
  offline::Ingestor ingestor(&sc.vocab(), &scoring, offline::IngestOptions{});
  const storage::VideoIndex index =
      std::move(ingestor.Ingest(sc.truth(), models)).value();

  auto memory_tables =
      offline::QueryTables::Bind(index, sc.query(), sc.vocab());
  ASSERT_TRUE(memory_tables.ok());

  const std::string dir =
      (fs::temp_directory_path() / "vaq_integration_paged").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  storage::PageCache cache(128, 4096);
  std::vector<std::unique_ptr<storage::PagedScoreTable>> paged;
  offline::QueryTables disk_tables = *memory_tables;
  for (size_t t = 0; t < memory_tables->tables.size(); ++t) {
    const std::string path = dir + "/t" + std::to_string(t) + ".pgd";
    ASSERT_TRUE(storage::WritePagedTable(
                    *static_cast<const storage::ScoreTable*>(
                        memory_tables->tables[t]),
                    path)
                    .ok());
    auto opened = storage::PagedScoreTable::Open(path, &cache);
    ASSERT_TRUE(opened.ok());
    paged.push_back(std::move(opened).value());
    disk_tables.tables[t] = paged.back().get();
  }

  offline::RvaqOptions options;
  options.k = 4;
  const offline::TopKResult expected =
      offline::Rvaq(&memory_tables.value(), &scoring, options).Run();
  const offline::TopKResult actual =
      offline::Rvaq(&disk_tables, &scoring, options).Run();
  ASSERT_EQ(actual.top.size(), expected.top.size());
  for (size_t i = 0; i < actual.top.size(); ++i) {
    EXPECT_EQ(actual.top[i].clips, expected.top[i].clips);
    EXPECT_DOUBLE_EQ(actual.top[i].exact_score, expected.top[i].exact_score);
  }
  EXPECT_GT(cache.fetches(), 0);
}

TEST(IntegrationTest, SqlMatchesDirectEngineCalls) {
  const synth::Scenario& sc = SharedScenario();
  query::Session session;
  session.RegisterStream("video", sc, /*model_seed=*/55);
  auto sql_result = session.Execute(
      "SELECT MERGE(clipID) FROM video "
      "WHERE act='drinking beer' AND obj.include('bottle', 'chair')");
  ASSERT_TRUE(sql_result.ok()) << sql_result.status();

  detect::ModelBundle models =
      detect::ModelBundle::MaskRcnnI3d(sc.truth(), 55);
  online::Svaqd engine(sc.query(), sc.layout(), online::SvaqdOptions{});
  const online::OnlineResult direct =
      engine.Run(models.detector.get(), models.recognizer.get());
  EXPECT_EQ(sql_result->sequences, direct.sequences);
}

TEST(IntegrationTest, RepositorySqlAndTopKAgree) {
  const synth::Scenario& sc = SharedScenario();
  detect::ModelBundle models =
      detect::ModelBundle::MaskRcnnI3d(sc.truth(), 55);
  offline::PaperScoring scoring;
  offline::Ingestor ingestor(&sc.vocab(), &scoring, offline::IngestOptions{});
  storage::VideoIndex index =
      std::move(ingestor.Ingest(sc.truth(), models)).value();

  offline::Repository repo;
  repo.Add("video", index);
  offline::RvaqOptions options;
  options.k = 3;
  auto repo_top =
      repo.TopK("drinking beer", {"bottle", "chair"}, scoring, options);
  ASSERT_TRUE(repo_top.ok());

  query::Session session;
  session.RegisterRepository("video", std::move(index));
  auto sql = session.Execute(
      "SELECT MERGE(clipID), RANK(act, obj) FROM video "
      "WHERE act='drinking beer' AND obj.include('bottle', 'chair') "
      "ORDER BY RANK(act, obj) LIMIT 3");
  ASSERT_TRUE(sql.ok()) << sql.status();
  ASSERT_EQ(sql->ranked.size(), repo_top->top.size());
  for (size_t i = 0; i < sql->ranked.size(); ++i) {
    EXPECT_EQ(sql->ranked[i].clips, repo_top->top[i].sequence.clips);
    EXPECT_DOUBLE_EQ(sql->ranked[i].exact_score,
                     repo_top->top[i].sequence.exact_score);
  }
}

}  // namespace
}  // namespace vaq
