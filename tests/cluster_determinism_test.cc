// Cluster acceptance suite: for ANY shard count, partition scheme and
// replica count, scatter–gather ranked results and every logical vaq_*
// metric are byte-identical to the single-node reference; node kills
// (staged or fault-plan-driven) fail over to replicas with identical
// final results; and the standing-query cluster with WAL shipping
// matches a single server clip for clip, through failover and shipping
// lag.
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cascade/planner.h"
#include "cascade/proxy_index.h"
#include "cluster/coordinator.h"
#include "cluster/standing.h"
#include "detect/models.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "offline/ingest.h"
#include "offline/repository.h"
#include "offline/scoring.h"
#include "serve/server.h"
#include "tools/pipeline_setup.h"

namespace vaq {
namespace cluster {
namespace {

constexpr int kVideos = 6;
constexpr uint64_t kSeed = 4242;
constexpr int64_t kK = 5;
constexpr int kStreams = 4;
constexpr int kStandingQueries = 6;
constexpr int kStandingAdvances = 120;  // 30 clips per stream.

const offline::Repository& DemoRepository() {
  static const offline::Repository* const repo = [] {
    auto* r = new offline::Repository();
    offline::PaperScoring scoring;
    for (int i = 0; i < kVideos; ++i) {
      synth::Scenario scenario = tools::DemoScenario(i);
      detect::ModelBundle models = detect::ModelBundle::MaskRcnnI3d(
          scenario.truth(), kSeed + static_cast<uint64_t>(i));
      offline::Ingestor ingestor(&scenario.vocab(), &scoring,
                                 offline::IngestOptions{});
      auto index = ingestor.Ingest(scenario.truth(), models);
      EXPECT_TRUE(index.ok()) << index.status().message();
      r->Add("vid" + std::to_string(i), std::move(*index));
    }
    return r;
  }();
  return *repo;
}

std::string Fmt(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

// Byte-faithful rendering of a merged top list.
std::string DescribeTop(
    const std::vector<offline::RepositoryRankedSequence>& top) {
  std::ostringstream os;
  for (const offline::RepositoryRankedSequence& entry : top) {
    os << entry.video << " " << entry.sequence.clips.ToString()
       << " lb=" << Fmt(entry.sequence.lower_bound)
       << " ub=" << Fmt(entry.sequence.upper_bound)
       << " exact=" << entry.sequence.has_exact << "/"
       << Fmt(entry.sequence.has_exact ? entry.sequence.exact_score : 0.0)
       << "\n";
  }
  return os.str();
}

struct RankedOutput {
  std::string top;
  std::string accesses;
  int64_t videos_queried = 0;
  int64_t videos_skipped = 0;
  int64_t candidate_sequences = 0;
  std::string logical_metrics;  // Everything but vaq_cluster_*.
};

// The single-node reference for the demo query. A non-null `prefilter`
// applies a planned cascade's surviving-clip sets (the cluster run under
// comparison must use the same one).
RankedOutput SingleNodeReference(
    int64_t k = kK, const offline::ClipFilterProvider* prefilter = nullptr) {
  DemoRepository();  // Ingest before the reset: only query metrics count.
  obs::MetricRegistry::Global().Reset();
  obs::Tracer::Global().SetClock([] { return 0.0; });
  offline::PaperScoring scoring;
  offline::RvaqOptions options;
  options.k = k;
  options.prefilter = prefilter;
  auto result = DemoRepository().TopK("running", {"dog"}, scoring, options);
  EXPECT_TRUE(result.ok()) << result.status().message();
  RankedOutput out;
  out.top = DescribeTop(result->top);
  out.accesses = result->accesses.ToString();
  out.videos_queried = result->videos_queried;
  out.videos_skipped = result->videos_skipped;
  out.candidate_sequences = result->candidate_sequences;
  // vaq_query_latency_ms{path="cluster"} exists only on the clustered
  // path (the single-node reference records none), and vaq_log_* feeds
  // off per-call-site static rate-limit counters that span runs within
  // this process — neither is part of the logical comparison surface.
  out.logical_metrics = obs::ExportPrometheus(obs::ExcludeSnapshot(
      obs::MetricRegistry::Global().TakeSnapshot(),
      {"vaq_cluster_", "vaq_query_latency_ms", "vaq_log_"}));
  obs::Tracer::Global().SetClock(nullptr);
  return out;
}

struct ClusterRun {
  RankedOutput output;
  Status status = Status::OK();
  ClusterTopKResult result;
};

ClusterRun RunCluster(ClusterOptions options, int64_t k = kK,
                      const offline::ClipFilterProvider* prefilter = nullptr,
                      int64_t plan_wire_bytes = 0) {
  obs::MetricRegistry::Global().Reset();
  obs::Tracer::Global().SetClock([] { return 0.0; });
  offline::PaperScoring scoring;
  offline::RvaqOptions rvaq;
  rvaq.k = k;
  rvaq.prefilter = prefilter;
  Coordinator coordinator(&DemoRepository(), options);
  auto result =
      coordinator.TopK("running", {"dog"}, scoring, rvaq, {}, plan_wire_bytes);
  ClusterRun run;
  run.status = result.status();
  if (result.ok()) {
    run.result = *result;
    run.output.top = DescribeTop(result->merged.top);
    run.output.accesses = result->merged.accesses.ToString();
    run.output.videos_queried = result->merged.videos_queried;
    run.output.videos_skipped = result->merged.videos_skipped;
    run.output.candidate_sequences = result->merged.candidate_sequences;
    run.output.logical_metrics = obs::ExportPrometheus(obs::ExcludeSnapshot(
        obs::MetricRegistry::Global().TakeSnapshot(),
        {"vaq_cluster_", "vaq_query_latency_ms", "vaq_log_"}));
  }
  obs::Tracer::Global().SetClock(nullptr);
  return run;
}

void ExpectMatchesReference(const RankedOutput& got, const RankedOutput& ref,
                            const std::string& label,
                            bool compare_metrics = true) {
  EXPECT_EQ(got.top, ref.top) << label;
  EXPECT_EQ(got.accesses, ref.accesses) << label;
  EXPECT_EQ(got.videos_queried, ref.videos_queried) << label;
  EXPECT_EQ(got.videos_skipped, ref.videos_skipped) << label;
  EXPECT_EQ(got.candidate_sequences, ref.candidate_sequences) << label;
  if (compare_metrics) {
    EXPECT_EQ(got.logical_metrics, ref.logical_metrics) << label;
  }
}

TEST(ClusterRanked, ByteIdenticalAcrossLayouts) {
  const RankedOutput ref = SingleNodeReference();
  EXPECT_EQ(ref.videos_queried, kVideos);
  for (const int shards : {1, 2, 3, 4, 8}) {
    for (const PartitionScheme scheme :
         {PartitionScheme::kHash, PartitionScheme::kRange}) {
      for (const int replicas : {0, 1}) {
        ClusterOptions options;
        options.num_shards = shards;
        options.num_replicas = replicas;
        options.scheme = scheme;
        const ClusterRun run = RunCluster(options);
        const std::string label =
            std::string("shards=") + std::to_string(shards) +
            " scheme=" + PartitionSchemeName(scheme) +
            " replicas=" + std::to_string(replicas);
        ASSERT_TRUE(run.status.ok()) << label << ": "
                                     << run.status.message();
        ExpectMatchesReference(run.output, ref, label);
        EXPECT_EQ(run.result.failovers, 0) << label;
        EXPECT_GT(run.result.answer_ms, 0.0) << label;
      }
    }
  }
}

TEST(ClusterRanked, BoundPrunesGatherWithoutChangingResults) {
  const RankedOutput ref = SingleNodeReference();
  ClusterOptions options;
  options.num_shards = 4;
  options.batch_size = 1;  // Fine-grained stream: the bound has teeth.
  const ClusterRun run = RunCluster(options);
  ASSERT_TRUE(run.status.ok()) << run.status.message();
  ExpectMatchesReference(run.output, ref, "pruning");
  EXPECT_GT(run.result.batches_pruned, 0);
  EXPECT_LT(run.result.entries_consumed, run.result.entries_total);
}

TEST(ClusterRanked, StagedKillFailsOverToReplica) {
  // k covers every candidate and batch_size=1, so no batch can be
  // pruned: the coordinator must keep fetching from shard 1 after the
  // kill, which guarantees the outage is observed mid-query.
  constexpr int64_t kAllK = 64;
  const RankedOutput ref = SingleNodeReference(kAllK);
  // 0 kills the primary before the query even arrives; 5ms kills it
  // after the scan started (one modeled seek is 5ms) but before it can
  // serve every batch, so the replica finishes the stream.
  for (const double kill_at : {0.0, 5.0}) {
    ClusterOptions options;
    options.num_shards = 3;
    options.num_replicas = 1;
    options.batch_size = 1;
    options.kill_node = 1;
    options.kill_at_ms = kill_at;
    const ClusterRun run = RunCluster(options, kAllK);
    const std::string label = "kill_at=" + Fmt(kill_at);
    ASSERT_TRUE(run.status.ok()) << label << ": " << run.status.message();
    // Results are identical; logical metrics are not compared — the
    // replica honestly re-executes shard 1's scan, which double-counts
    // engine work (visible, documented, and results-invariant).
    ExpectMatchesReference(run.output, ref, label,
                           /*compare_metrics=*/false);
    EXPECT_GE(run.result.failovers, 1) << label;
  }
}

TEST(ClusterRanked, KillWithoutReplicaIsUnavailable) {
  ClusterOptions options;
  options.num_shards = 3;
  options.num_replicas = 0;
  options.kill_node = 1;
  const ClusterRun run = RunCluster(options);
  EXPECT_EQ(run.status.code(), StatusCode::kUnavailable);
}

TEST(ClusterRanked, AllReplicasDownIsDeterministicUnavailable) {
  // Every host serving shard 1 — the primary and both replicas — is
  // inside a scheduled outage window for the whole query. The gather
  // must end in the documented kUnavailable: deterministically (same
  // status and message on every run), without hanging (the event-count
  // watchdog would trip as kDeadlineExceeded, failing the test), and
  // without leaking a partial result through the StatusOr.
  constexpr int kShards = 3;
  constexpr int kReplicas = 2;
  fault::FaultSpec spec;
  for (const int host : {1, kShards + 1 * kReplicas + 0,
                         kShards + 1 * kReplicas + 1}) {
    fault::ScheduledWindow w;
    w.domain = fault::FaultDomain::kNode;
    w.key = host;
    w.from_ms = 0.0;
    w.to_ms = 1e9;
    spec.windows.push_back(w);
  }
  auto plan = fault::FaultPlan::Create(spec, 11);
  ASSERT_TRUE(plan.ok());
  ClusterOptions options;
  options.num_shards = kShards;
  options.num_replicas = kReplicas;
  options.fault_plan = &plan.value();
  options.max_steps = 100000;  // Hang -> kDeadlineExceeded, not a timeout.
  const ClusterRun first = RunCluster(options);
  const ClusterRun second = RunCluster(options);
  EXPECT_EQ(first.status.code(), StatusCode::kUnavailable)
      << first.status.ToString();
  EXPECT_EQ(first.status.ToString(), second.status.ToString());
  EXPECT_NE(first.status.ToString().find("shard 1"), std::string::npos)
      << first.status.ToString();
  // The failed runs exhausted both replicas before giving up.
  EXPECT_TRUE(first.output.top.empty());  // No partial result leaked.
}

TEST(ClusterRanked, HealthyClusterUnderWatchdogCompletes) {
  // The watchdog budget must be generous enough that a fault-free
  // gather never trips it (the chaos harness runs every cluster trial
  // under this budget).
  const RankedOutput ref = SingleNodeReference();
  ClusterOptions options;
  options.num_shards = 4;
  options.num_replicas = 1;
  options.max_steps = 200000;
  const ClusterRun run = RunCluster(options);
  ASSERT_TRUE(run.status.ok()) << run.status.message();
  ExpectMatchesReference(run.output, ref, "watchdog");
}

TEST(ClusterRanked, FaultPlanOutagesFailOverDeterministically) {
  const RankedOutput ref = SingleNodeReference();
  int64_t total_failovers = 0;
  int ok_runs = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    fault::FaultSpec spec;
    spec.node_outage_rate = 0.35;
    spec.node_outage_len_ms = 25;
    const fault::FaultPlan plan(spec, seed);
    ClusterOptions options;
    options.num_shards = 2;
    options.num_replicas = 2;
    options.fault_plan = &plan;
    const ClusterRun first = RunCluster(options);
    const ClusterRun second = RunCluster(options);
    EXPECT_EQ(first.status.code(), second.status.code()) << seed;
    if (!first.status.ok()) continue;  // Every replica down: acceptable.
    ++ok_runs;
    total_failovers += first.result.failovers;
    const std::string label = "outage seed=" + std::to_string(seed);
    ExpectMatchesReference(first.output, ref, label,
                           /*compare_metrics=*/false);
    // Determinism: the same plan replays the same schedule.
    EXPECT_EQ(first.result.failovers, second.result.failovers) << label;
    EXPECT_EQ(first.output.top, second.output.top) << label;
  }
  EXPECT_GT(ok_runs, 0);
  EXPECT_GT(total_failovers, 0);
}

TEST(ClusterRanked, NetworkFaultsNeverChangeResults) {
  const RankedOutput ref = SingleNodeReference();
  fault::FaultSpec spec;
  spec.net_drop_rate = 0.3;
  spec.net_dup_rate = 0.3;
  const fault::FaultPlan plan(spec, 7);
  ClusterOptions options;
  options.num_shards = 4;
  options.num_replicas = 1;
  options.fault_plan = &plan;
  const ClusterRun run = RunCluster(options);
  ASSERT_TRUE(run.status.ok()) << run.status.message();
  ExpectMatchesReference(run.output, ref, "net faults");
  EXPECT_GT(run.result.net.drops + run.result.net.duplicates_suppressed, 0);
}

TEST(ClusterRanked, RoutesThroughQuerySession) {
  obs::MetricRegistry::Global().Reset();
  ClusterOptions options;
  options.num_shards = 3;
  Coordinator coordinator(&DemoRepository(), options);
  query::Session session;
  session.RegisterRankedBackend("library", &coordinator);
  auto result = session.Execute(
      "SELECT MERGE(clipID) AS Sequence, RANK(act, obj) "
      "FROM (PROCESS library PRODUCE clipID, obj USING ObjectTracker, "
      "act USING ActionRecognizer) "
      "WHERE act='running' AND obj.include('dog') "
      "ORDER BY RANK(act, obj) LIMIT 3");
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_FALSE(result->online);
  EXPECT_EQ(result->ranked.size(), 3u);
}

// --- Cascade (WITH RECALL) over the cluster -----------------------------

// The proxy tier matching DemoRepository: same video names, same
// per-video seeds, so the planner's thresholds correspond to the data
// the shards actually hold.
const cascade::ProxySet& DemoProxies() {
  static const cascade::ProxySet* const set = [] {
    auto* s = new cascade::ProxySet();
    for (int i = 0; i < kVideos; ++i) {
      const std::string name = "vid" + std::to_string(i);
      s->emplace(name, cascade::BuildProxyIndex(
                           name, tools::DemoScenario(i),
                           detect::ModelProfile::ProxyCnn(),
                           kSeed + static_cast<uint64_t>(i)));
    }
    return s;
  }();
  return *set;
}

constexpr char kBackendSql[] =
    "SELECT MERGE(clipID) AS Sequence, RANK(act, obj) "
    "FROM (PROCESS library PRODUCE clipID, obj USING ObjectTracker, "
    "act USING ActionRecognizer) "
    "WHERE act='running' AND obj.include('dog') "
    "ORDER BY RANK(act, obj) LIMIT 5";

struct BackendRun {
  std::string described;
  std::string metrics;
  std::string cascade_plan;
};

// One ranked statement routed through a session-registered coordinator
// (the full WITH RECALL wire: parse -> plan -> scatter with thresholds).
BackendRun RunThroughBackend(const std::string& sql, int shards,
                             const std::vector<std::string>& exclude) {
  DemoRepository();
  DemoProxies();
  obs::MetricRegistry::Global().Reset();
  obs::Tracer::Global().SetClock([] { return 0.0; });
  ClusterOptions options;
  options.num_shards = shards;
  options.proxy = &DemoProxies();
  Coordinator coordinator(&DemoRepository(), options);
  query::Session session;
  session.RegisterRankedBackend("library", &coordinator);
  const auto result = session.Execute(sql);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  BackendRun run;
  if (result.ok()) {
    std::ostringstream os;
    for (const offline::RankedSequence& s : result->ranked) {
      os << s.clips.ToString() << " lb=" << Fmt(s.lower_bound)
         << " ub=" << Fmt(s.upper_bound) << "\n";
    }
    os << result->accesses.ToString();
    run.described = os.str();
    run.cascade_plan = result->cascade_plan;
  }
  run.metrics = obs::ExportPrometheus(obs::ExcludeSnapshot(
      obs::MetricRegistry::Global().TakeSnapshot(), exclude));
  obs::Tracer::Global().SetClock(nullptr);
  return run;
}

TEST(ClusterCascade, PrefilteredGatherIsByteIdenticalAcrossLayouts) {
  const cascade::Planner planner(&DemoProxies());
  const StatusOr<cascade::CascadePlan> plan =
      planner.Plan("running", {"dog"}, 0.9);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan.value().use_cascade) << plan.value().ToString();
  const cascade::PlanFilters filters(&DemoProxies(), plan.value());

  // The pruned single-node run is the reference: a sharded gather under
  // the same plan must match it byte for byte — including the logical
  // metrics, since the thresholds (and so the surviving sets) are a pure
  // function of the proxy index, never of the layout.
  const RankedOutput ref = SingleNodeReference(kK, &filters);
  for (const int shards : {1, 2, 4}) {
    ClusterOptions options;
    options.num_shards = shards;
    const ClusterRun run =
        RunCluster(options, kK, &filters, plan.value().WireBytes());
    const std::string label = "cascade shards=" + std::to_string(shards);
    ASSERT_TRUE(run.status.ok()) << label << ": " << run.status.message();
    ExpectMatchesReference(run.output, ref, label);
  }
}

TEST(ClusterCascade, RecallOneThroughBackendMatchesPlainStatement) {
  // WITH RECALL 1 must never reach the planner: the whole observable
  // surface — results, access accounting, every metric family including
  // vaq_cluster_* — matches the clause-free statement byte for byte.
  // (Only vaq_log_* is excluded: its rate-limit counters are per-call-
  // site statics that span runs within this process.)
  const std::vector<std::string> exclude = {"vaq_log_"};
  const BackendRun plain = RunThroughBackend(kBackendSql, 3, exclude);
  const BackendRun recall_one = RunThroughBackend(
      std::string(kBackendSql) + " WITH RECALL 1", 3, exclude);
  EXPECT_FALSE(plain.described.empty());
  EXPECT_EQ(plain.described, recall_one.described);
  EXPECT_EQ(plain.metrics, recall_one.metrics);
  EXPECT_TRUE(plain.cascade_plan.empty());
  EXPECT_TRUE(recall_one.cascade_plan.empty());
}

TEST(ClusterCascade, ApproximateStatementIsShardCountInvariant) {
  // The coordinator plans once and ships thresholds with the scatter, so
  // an approximate statement's results, plan text and logical metrics
  // cannot depend on the shard count.
  const std::vector<std::string> exclude = {"vaq_cluster_",
                                            "vaq_query_latency_ms",
                                            "vaq_log_"};
  const std::string sql = std::string(kBackendSql) + " WITH RECALL 0.9";
  const BackendRun one = RunThroughBackend(sql, 1, exclude);
  EXPECT_NE(one.cascade_plan.find("cascade"), std::string::npos)
      << one.cascade_plan;
  for (const int shards : {3, 8}) {
    const BackendRun run = RunThroughBackend(sql, shards, exclude);
    EXPECT_EQ(run.described, one.described) << shards;
    EXPECT_EQ(run.cascade_plan, one.cascade_plan) << shards;
    EXPECT_EQ(run.metrics, one.metrics) << shards;
  }
}

// --- Standing-query cluster ---------------------------------------------

Status RegisterStandingStreams(serve::Server* server) {
  return tools::RegisterDemoSources(server, kStreams,
                                    /*with_repository=*/false, kSeed);
}

std::vector<std::string> StandingWorkload() {
  return tools::DemoWorkload(kStreams, kStandingQueries,
                             /*with_repository=*/false);
}

// The single-server reference run: same streams, same admissions, same
// round-robin advance schedule.
std::vector<std::string> SingleServerStandingReference() {
  obs::MetricRegistry::Global().Reset();
  serve::ServeOptions options;
  options.threads = 0;
  serve::Server server(options);
  EXPECT_TRUE(RegisterStandingStreams(&server).ok());
  for (const std::string& sql : StandingWorkload()) {
    EXPECT_TRUE(server.AddStandingQuery(sql).ok()) << sql;
  }
  for (int i = 0; i < kStandingAdvances; ++i) {
    EXPECT_TRUE(
        server.AdvanceStream("cam" + std::to_string(i % kStreams)).ok());
  }
  std::vector<std::string> described;
  for (const serve::ServedQuery& q : server.FinishStanding()) {
    described.push_back(serve::DescribeServedQuery(q));
  }
  return described;
}

struct StandingRun {
  std::vector<std::string> described;
  int64_t failovers = 0;
  int64_t catchup_advances = 0;
  int64_t shipped_bytes = 0;
};

StandingRun RunStandingCluster(StandingClusterOptions options) {
  obs::MetricRegistry::Global().Reset();
  StandingCluster cluster(options, RegisterStandingStreams);
  EXPECT_TRUE(cluster.Init().ok());
  for (const std::string& sql : StandingWorkload()) {
    EXPECT_TRUE(cluster.AddStandingQuery(sql).ok()) << sql;
  }
  for (int i = 0; i < kStandingAdvances; ++i) {
    const Status advanced =
        cluster.AdvanceStream("cam" + std::to_string(i % kStreams));
    EXPECT_TRUE(advanced.ok()) << i << ": " << advanced.message();
  }
  StandingRun run;
  auto finished = cluster.Finish();
  EXPECT_TRUE(finished.ok()) << finished.status().message();
  if (finished.ok()) {
    for (const serve::ServedQuery& q : *finished) {
      run.described.push_back(serve::DescribeServedQuery(q));
    }
  }
  run.failovers = cluster.failovers();
  run.catchup_advances = cluster.catchup_advances();
  run.shipped_bytes = cluster.shipped_bytes();
  return run;
}

TEST(ClusterStanding, MatchesSingleServerAcrossNodeCounts) {
  const std::vector<std::string> ref = SingleServerStandingReference();
  ASSERT_EQ(ref.size(), static_cast<size_t>(kStandingQueries));
  for (const int nodes : {1, 3}) {
    StandingClusterOptions options;
    options.num_nodes = nodes;
    const StandingRun run = RunStandingCluster(options);
    ASSERT_EQ(run.described.size(), ref.size()) << nodes;
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(run.described[i], ref[i])
          << "nodes=" << nodes << " query " << i;
    }
    EXPECT_EQ(run.failovers, 0);
    EXPECT_GT(run.shipped_bytes, 0);
  }
}

TEST(ClusterStanding, KilledOwnerFailsOverIdentically) {
  const std::vector<std::string> ref = SingleServerStandingReference();
  StandingClusterOptions options;
  options.num_nodes = 3;
  options.kill_node = HashShardOf("cam1", options.num_nodes);
  // Mid-drive: some advances land before the outage, the rest after
  // failover on the standby.
  options.kill_at_ms = options.advance_tick_ms * (kStandingAdvances / 2);
  const StandingRun run = RunStandingCluster(options);
  ASSERT_EQ(run.described.size(), ref.size());
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(run.described[i], ref[i]) << "query " << i;
  }
  EXPECT_GE(run.failovers, 1);
}

TEST(ClusterStanding, ShippingLagIsReplayedOnFailover) {
  const std::vector<std::string> ref = SingleServerStandingReference();
  StandingClusterOptions options;
  options.num_nodes = 3;
  // Cadence so long it never fires: after the admission-time ship the
  // replica stays at stream position zero, so failover must replay every
  // advance the killed node had applied.
  options.ship_every_advances = 1 << 20;
  options.kill_node = HashShardOf("cam1", options.num_nodes);
  options.kill_at_ms = options.advance_tick_ms * (kStandingAdvances / 2);
  const StandingRun run = RunStandingCluster(options);
  ASSERT_EQ(run.described.size(), ref.size());
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(run.described[i], ref[i]) << "query " << i;
  }
  EXPECT_GE(run.failovers, 1);
  EXPECT_GT(run.catchup_advances, 0);
}

}  // namespace
}  // namespace cluster
}  // namespace vaq
