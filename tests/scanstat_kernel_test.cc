#include "scanstat/kernel_estimator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "scanstat/critical_value.h"

namespace vaq {
namespace scanstat {
namespace {

TEST(KernelRateEstimatorTest, ReturnsPriorBeforeData) {
  KernelRateEstimator est(100, 0.25);
  EXPECT_DOUBLE_EQ(est.rate(), 0.25);
  EXPECT_EQ(est.num_observed(), 0);
}

TEST(KernelRateEstimatorTest, ConvergesToConstantRate) {
  for (double p : {0.001, 0.05, 0.4}) {
    Rng rng(42);
    KernelRateEstimator est(2000, 0.5, /*prior_weight=*/10);
    for (int t = 0; t < 50000; ++t) est.Observe(rng.Bernoulli(p));
    EXPECT_NEAR(est.rate(), p, std::max(0.25 * p, 0.003)) << "p=" << p;
  }
}

TEST(KernelRateEstimatorTest, PriorWashesOut) {
  // Wildly wrong priors converge to the same estimate on the same data:
  // the prior is decaying pseudo-data, not a permanent offset.
  Rng rng(7);
  KernelRateEstimator low(1000, 1e-6, 50);
  KernelRateEstimator high(1000, 0.9, 50);
  for (int t = 0; t < 20000; ++t) {
    const bool event = rng.Bernoulli(0.02);
    low.Observe(event);
    high.Observe(event);
  }
  EXPECT_NEAR(low.rate(), high.rate(), 1e-4);
  EXPECT_NEAR(low.rate(), 0.02, 0.01);
}

TEST(KernelRateEstimatorTest, AdaptsToSuddenChange) {
  Rng rng(11);
  KernelRateEstimator est(500, 0.01, 10);
  for (int t = 0; t < 5000; ++t) est.Observe(rng.Bernoulli(0.01));
  const double before = est.rate();
  EXPECT_NEAR(before, 0.01, 0.01);
  // Sudden 10x rate jump (the §3.3 traffic-peak example): within a few
  // bandwidths the estimate follows.
  for (int t = 0; t < 3000; ++t) est.Observe(rng.Bernoulli(0.10));
  EXPECT_GT(est.rate(), 0.07);
}

TEST(KernelRateEstimatorTest, SmoothsGradualDriftWithLargeBandwidth) {
  // A large bandwidth keeps the estimate near the time-average of a slow
  // linear drift rather than chasing it.
  Rng rng(13);
  KernelRateEstimator est(50000, 0.05, 10);
  const int n = 50000;
  for (int t = 0; t < n; ++t) {
    const double p = 0.02 + 0.02 * static_cast<double>(t) / n;
    est.Observe(rng.Bernoulli(p));
  }
  EXPECT_NEAR(est.rate(), 0.03, 0.01);  // Close to the average, not 0.04.
}

TEST(KernelRateEstimatorTest, ObserveBatchMatchesPerOuOnAverage) {
  // Feeding a whole clip at once should track the per-OU path closely.
  Rng rng(17);
  KernelRateEstimator per_ou(1000, 0.1, 0);
  KernelRateEstimator batched(1000, 0.1, 0);
  for (int clip = 0; clip < 500; ++clip) {
    int64_t events = 0;
    bool outcomes[50];
    for (int i = 0; i < 50; ++i) {
      outcomes[i] = rng.Bernoulli(0.03);
      events += outcomes[i] ? 1 : 0;
    }
    for (int i = 0; i < 50; ++i) per_ou.Observe(outcomes[i]);
    batched.ObserveBatch(50, events);
  }
  EXPECT_EQ(per_ou.num_observed(), batched.num_observed());
  EXPECT_NEAR(per_ou.rate(), batched.rate(), 0.005);
}

TEST(KernelRateEstimatorTest, BatchOfZeroCountIsNoOp) {
  KernelRateEstimator est(100, 0.2);
  est.ObserveBatch(0, 0);
  EXPECT_DOUBLE_EQ(est.rate(), 0.2);
  EXPECT_EQ(est.num_observed(), 0);
}

// Steady-state mean of the literal Eq. 6 recurrence under a constant
// Bernoulli event rate.
double Eq6SteadyState(double p, double u, uint64_t seed) {
  Rng rng(seed);
  Eq6Reference ref(u);
  int64_t since_last = 0;
  double tail_avg = 0;
  int64_t tail_n = 0;
  for (int t = 1; t <= 300000; ++t) {
    ++since_last;
    if (rng.Bernoulli(p)) {
      ref.OnEventAfter(since_last);
      since_last = 0;
      if (t > 150000) {
        tail_avg += ref.value();
        ++tail_n;
      }
    }
  }
  return tail_n > 0 ? tail_avg / static_cast<double>(tail_n) : 0.0;
}

TEST(Eq6ReferenceTest, SteadyStateMatchesFixedPoint) {
  // The literal Eq. 6 recurrence at event times is (for large t)
  //   p̂' = p̂ · e^(-Δt/u) + c,   c = (1 - e^(-1/u)) / u,
  // with geometric inter-event gaps Δt. Its fixed point in expectation is
  //   p̂* = c / (1 - m),   m = E[e^(-Δt/u)] = p e^(-1/u) / (1-(1-p)e^(-1/u)),
  // which is *not* the background probability p (DESIGN.md §1 rationale
  // for the ratio-form estimator). Verify the simulation sits on the
  // derived fixed point, increasing with p but saturating sublinearly.
  const double u = 50;
  for (double p : {0.02, 0.04}) {
    const double c = (1.0 - std::exp(-1.0 / u)) / u;
    const double e1 = std::exp(-1.0 / u);
    const double m = p * e1 / (1.0 - (1.0 - p) * e1);
    const double fixed_point = c / (1.0 - m);
    const double simulated = Eq6SteadyState(p, u, 23);
    EXPECT_NEAR(simulated, fixed_point, 0.3 * fixed_point) << "p=" << p;
  }
  EXPECT_GT(Eq6SteadyState(0.04, u, 23), Eq6SteadyState(0.02, u, 29));
}

TEST(Eq6ReferenceTest, FirstEventInitializes) {
  Eq6Reference ref(100);
  EXPECT_DOUBLE_EQ(ref.value(), 0.0);
  ref.OnEventAfter(10);
  EXPECT_GT(ref.value(), 0.0);
  EXPECT_EQ(ref.time(), 10);
}

TEST(CriticalValueIntegrationTest, EstimatedRateYieldsSaneCriticalValue) {
  // An estimator fed pure background noise should produce a critical value
  // that the noise itself rarely reaches.
  Rng rng(31);
  KernelRateEstimator est(5000, 0.5, 10);
  for (int t = 0; t < 40000; ++t) est.Observe(rng.Bernoulli(0.02));
  ScanConfig config;
  config.window = 100;
  config.horizon = 100000;
  config.alpha = 0.01;
  const int64_t kcrit = CriticalValue(est.rate(), config);
  EXPECT_GT(kcrit, 4);    // Well above the mean noise count (2).
  EXPECT_LT(kcrit, 40);   // Far below a real detection rate (~80+).
}

}  // namespace
}  // namespace scanstat
}  // namespace vaq
