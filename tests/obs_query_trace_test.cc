// Per-query trace plumbing (obs/query_trace.h): tree shape and phase
// folding, the rendered profile format, Chrome trace export against the
// JSON linter, nearest-rank percentiles, the LatencyRecorder's gauge
// mirror, the promlint-style exporter self-check and the rate-limited
// log suppression counter.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/query_trace.h"

namespace vaq {
namespace obs {
namespace {

TEST(QueryTraceTest, ChildGetOrCreateFoldsRepeatedPhases) {
  QueryTrace trace("q1");
  const int a = trace.Child(0, "advance");
  EXPECT_EQ(trace.Child(0, "advance"), a);
  trace.AddMs(a, 1.5);
  trace.AddMs(a, 2.5);
  trace.AddStat(a, "clips", 1);
  trace.AddStat(a, "clips", 1);
  const std::vector<QueryTrace::Node> nodes = trace.snapshot();
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_DOUBLE_EQ(nodes[a].self_ms, 4.0);
  EXPECT_EQ(nodes[a].stats.at("clips"), 2);
  EXPECT_EQ(nodes[a].parent, 0);
  ASSERT_EQ(nodes[0].children.size(), 1u);
  EXPECT_EQ(nodes[0].children[0], a);
}

TEST(QueryTraceTest, RenderProfileIsDeterministicAndSelfDescribing) {
  QueryTrace trace("q1");
  const int online = trace.Child(0, "online");
  trace.AddMs(online, 12.34);
  trace.AddStat(online, "rows", 120);
  trace.AddStat(online, "seeks", 4);
  const int scan = trace.Child(online, "scan");
  trace.AddMs(scan, 1.0);
  EXPECT_EQ(trace.RenderProfile(),
            "q1  self=0.000ms total=13.340ms\n"
            "  online  self=12.340ms total=13.340ms rows=120 seeks=4\n"
            "    scan  self=1.000ms total=1.000ms\n");
  // Byte-identical on re-render: stats are sorted maps, children keep
  // creation order.
  EXPECT_EQ(trace.RenderProfile(), trace.RenderProfile());
}

TEST(QueryTraceTest, InactiveContextIsANoOp) {
  const QueryContext none;
  EXPECT_FALSE(none.active());
  const QueryContext child = none.Child("phase");
  EXPECT_FALSE(child.active());
  child.AddMs(5.0);           // Must not crash.
  child.AddStat("rows", 10);  // Must not crash.
}

TEST(QueryTraceTest, ScopedContextInstallsAndRestores) {
  QueryTrace trace("q1");
  EXPECT_FALSE(CurrentQueryContext().active());
  {
    ScopedQueryContext scoped(QueryContext{&trace, 0});
    EXPECT_TRUE(CurrentQueryContext().active());
    EXPECT_EQ(CurrentQueryContext().trace, &trace);
    {
      ScopedQueryContext inner(CurrentQueryContext().Child("inner"));
      EXPECT_EQ(CurrentQueryContext().node, trace.Child(0, "inner"));
    }
    EXPECT_EQ(CurrentQueryContext().node, 0);
  }
  EXPECT_FALSE(CurrentQueryContext().active());
}

// The cross-thread contract the serve layer relies on: the submitting
// thread mints one context per shard, workers grow disjoint subtrees
// under them, and the rendered profile is identical however the shards
// are scheduled onto threads.
TEST(QueryTraceTest, DisjointSubtreesRenderIdenticallyAcrossThreadCounts) {
  constexpr int kShards = 4;
  const auto run = [](int workers) {
    QueryTrace trace("q0");
    const QueryContext root{&trace, 0};
    std::vector<QueryContext> shard_ctx;
    for (int s = 0; s < kShards; ++s) {
      shard_ctx.push_back(root.Child("shard" + std::to_string(s)));
    }
    const auto work = [&shard_ctx](int s) {
      ScopedQueryContext scoped(shard_ctx[s]);
      const QueryContext& cur = CurrentQueryContext();
      cur.AddMs(1.5 * (s + 1));
      cur.Child("scan").AddStat("rows", 10 * (s + 1));
      cur.Child("scan").AddMs(0.5);
    };
    if (workers == 0) {
      for (int s = 0; s < kShards; ++s) work(s);
    } else {
      std::vector<std::thread> pool;
      for (int t = 0; t < workers; ++t) {
        pool.emplace_back([&work, t, workers] {
          for (int s = t; s < kShards; s += workers) work(s);
        });
      }
      for (std::thread& t : pool) t.join();
    }
    return trace.RenderProfile();
  };
  const std::string inline_profile = run(0);
  EXPECT_EQ(inline_profile, run(8));
  EXPECT_NE(inline_profile.find("shard3  self=6.000ms"), std::string::npos);
}

TEST(ChromeTraceTest, ExportPassesJsonLintAndLaysOutTheTimeline) {
  QueryTrace trace("q7");
  const int a = trace.Child(0, "execute");
  trace.AddMs(a, 2.0);
  trace.AddStat(a, "seeks", 3);
  const int b = trace.Child(a, "scan");
  trace.AddMs(b, 1.0);
  const std::string json = ExportChromeTrace({&trace});
  EXPECT_EQ(JsonLintError(json), "") << json;
  EXPECT_NE(json.find("\"name\":\"q7\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // "scan" starts after "execute"'s self time: ts = 2ms = 2000us.
  EXPECT_NE(json.find("\"name\":\"scan\",\"ph\":\"X\",\"ts\":2000.000"),
            std::string::npos);
  EXPECT_NE(json.find("\"seeks\":3"), std::string::npos);
  // Byte-identical across exports, and null traces are skipped.
  EXPECT_EQ(json, ExportChromeTrace({&trace}));
  EXPECT_EQ(JsonLintError(ExportChromeTrace({nullptr})), "");
}

TEST(PercentileTest, NearestRankEdgeCases) {
  EXPECT_DOUBLE_EQ(PercentileNearestRank({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank({42.0}, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank({42.0}, 0.999), 42.0);
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(i);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(samples, 0.5), 50.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(samples, 0.99), 99.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(samples, 0.999), 100.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(samples, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(samples, 1.0), 100.0);
}

TEST(LatencyRecorderTest, PublishesExactPercentileGauges) {
  MetricRegistry& registry = MetricRegistry::Global();
  LatencyRecorder recorder("vaq_test_latency_ms", "unit");
  // Insert out of order: the recorder keeps its samples sorted.
  for (int i = 100; i >= 1; --i) recorder.Record(i);
  EXPECT_EQ(recorder.count(), 100);
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("vaq_test_latency_ms",
                        {{"path", "unit"}, {"quantile", "0.5"}})
          ->value(),
      50.0);
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("vaq_test_latency_ms",
                        {{"path", "unit"}, {"quantile", "0.99"}})
          ->value(),
      99.0);
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("vaq_test_latency_ms",
                        {{"path", "unit"}, {"quantile", "0.999"}})
          ->value(),
      100.0);
  const std::vector<double> sorted = recorder.sorted_samples();
  ASSERT_EQ(sorted.size(), 100u);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
}

TEST(PromLintTest, AcceptsTheExportersOwnOutput) {
  MetricRegistry& registry = MetricRegistry::Global();
  registry.GetCounter("vaq_promlint_total", {{"path", "unit"}})->Increment();
  registry.GetGauge("vaq_promlint_gauge", {})->Set(1.5);
  registry
      .GetHistogram("vaq_promlint_ms", DefaultLatencyBucketsMs(), {})
      ->Observe(3.0);
  const std::string text = ExportPrometheus(registry.TakeSnapshot());
  EXPECT_EQ(PromLintError(text), "") << text;
}

TEST(PromLintTest, RejectsMalformedText) {
  // Missing trailing newline.
  EXPECT_NE(PromLintError("# TYPE vaq_x counter\nvaq_x 1"), "");
  // Sample for an undeclared family.
  EXPECT_NE(PromLintError("vaq_x 1\n"), "");
  // Unknown metric kind.
  EXPECT_NE(PromLintError("# TYPE vaq_x sometype\nvaq_x 1\n"), "");
  // Label name starting with a digit.
  EXPECT_NE(
      PromLintError("# TYPE vaq_x counter\nvaq_x{9bad=\"v\"} 1\n"), "");
  // Diagnostics carry a line number.
  EXPECT_EQ(PromLintError("vaq_x 1\n").rfind("line 1:", 0), 0u);
}

TEST(LogSuppressionTest, SuppressedWarningsSurfaceAsACounter) {
  // Touch the registry first so the suppression listener is installed.
  Counter* suppressed =
      MetricRegistry::Global().GetCounter("vaq_log_suppressed_total", {});
  // Swallow the one emitted line; the other 49 occurrences at this call
  // site are suppressed and must each tick the counter.
  internal_logging::SetLogSink([](const std::string&) {});
  const int64_t before = suppressed->value();
  for (int i = 0; i < 50; ++i) {
    VAQ_LOG_RATELIMITED(Warning, 1000) << "unit-test suppression probe";
  }
  internal_logging::SetLogSink(nullptr);
  EXPECT_EQ(suppressed->value(), before + 49);
}

}  // namespace
}  // namespace obs
}  // namespace vaq
