#include "detect/models.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "synth/generator.h"

namespace vaq {
namespace detect {
namespace {

synth::GroundTruth MakeTruth(uint64_t seed = 3) {
  synth::ScenarioSpec spec;
  spec.minutes = 8;
  spec.fps = 30;
  spec.seed = seed;
  synth::ActionTrackSpec action;
  action.name = "jumping";
  action.duty = 0.3;
  action.mean_len_frames = 900;
  spec.actions.push_back(action);
  synth::ObjectTrackSpec obj;
  obj.name = "car";
  obj.background_duty = 0.2;
  obj.mean_len_frames = 700;
  obj.mean_instances = 1.5;
  spec.objects.push_back(obj);
  static Vocabulary vocab;  // Shared across calls; ids stay stable.
  return synth::Generate(spec, vocab);
}

TEST(ObjectDetectorTest, PureFunctionOfCoordinates) {
  const synth::GroundTruth truth = MakeTruth();
  const ObjectDetector det(&truth, ModelProfile::MaskRcnn(), 99);
  for (FrameIndex f : {0L, 100L, 5555L}) {
    const double first = det.MaxScore(0, f);
    const double again = det.MaxScore(0, f);
    EXPECT_DOUBLE_EQ(first, again);
  }
  // Out-of-order access equals in-order access.
  const double at_10 = det.MaxScore(0, 10);
  det.MaxScore(0, 9999);
  EXPECT_DOUBLE_EQ(det.MaxScore(0, 10), at_10);
}

TEST(ObjectDetectorTest, EmpiricalRatesMatchProfile) {
  const synth::GroundTruth truth = MakeTruth();
  const ModelProfile profile = ModelProfile::MaskRcnn();
  const ObjectDetector det(&truth, profile, 7);
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t pos = 0;
  int64_t neg = 0;
  for (FrameIndex f = 0; f < truth.layout().num_frames(); ++f) {
    const bool present = truth.ObjectFrames(0).Contains(f);
    const bool fired = det.IsPositive(0, f);
    if (present) {
      ++pos;
      tp += fired;
    } else {
      ++neg;
      fp += fired;
    }
  }
  ASSERT_GT(pos, 1000);
  ASSERT_GT(neg, 1000);
  EXPECT_NEAR(static_cast<double>(tp) / pos, profile.tpr, 0.05);
  EXPECT_NEAR(static_cast<double>(fp) / neg, profile.fpr, 0.01);
}

TEST(ObjectDetectorTest, ScoreThresholdConsistency) {
  const synth::GroundTruth truth = MakeTruth();
  const ObjectDetector det(&truth, ModelProfile::MaskRcnn(), 7);
  for (FrameIndex f = 0; f < 2000; ++f) {
    const double score = det.MaxScore(0, f);
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
    EXPECT_EQ(det.IsPositive(0, f), score >= det.profile().threshold);
  }
}

TEST(ObjectDetectorTest, IdealMatchesGroundTruthExactly) {
  const synth::GroundTruth truth = MakeTruth();
  const ObjectDetector det(&truth, ModelProfile::IdealObject(), 7);
  for (FrameIndex f = 0; f < truth.layout().num_frames(); ++f) {
    EXPECT_EQ(det.IsPositive(0, f), truth.ObjectFrames(0).Contains(f));
  }
}

TEST(ObjectDetectorTest, CountsInferencesPerFrameNotPerType) {
  const synth::GroundTruth truth = MakeTruth();
  const ObjectDetector det(&truth, ModelProfile::MaskRcnn(), 7);
  det.MaxScore(0, 5);
  det.MaxScore(0, 5);  // Same frame: one inference, two queries.
  det.MaxScore(0, 6);
  EXPECT_EQ(det.stats().inferences, 2);
  EXPECT_EQ(det.stats().type_queries, 3);
  EXPECT_DOUBLE_EQ(det.stats().simulated_ms,
                   2 * det.profile().inference_ms);
}

TEST(ActionRecognizerTest, IdealMatchesShotTruth) {
  const synth::GroundTruth truth = MakeTruth();
  const ActionRecognizer rec(&truth, ModelProfile::IdealAction(), 7);
  const IntervalSet shots = truth.ActionShots(0);
  for (ShotIndex s = 0; s < truth.layout().NumShots(); ++s) {
    EXPECT_EQ(rec.IsPositive(0, s), shots.Contains(s)) << "shot " << s;
  }
}

TEST(ActionRecognizerTest, EmpiricalRatesMatchProfile) {
  const synth::GroundTruth truth = MakeTruth();
  const ModelProfile profile = ModelProfile::I3d();
  const ActionRecognizer rec(&truth, profile, 11);
  const IntervalSet shots = truth.ActionShots(0);
  int64_t tp = 0;
  int64_t pos = 0;
  int64_t fp = 0;
  int64_t neg = 0;
  for (ShotIndex s = 0; s < truth.layout().NumShots(); ++s) {
    const bool present = shots.Contains(s);
    const bool fired = rec.IsPositive(0, s);
    if (present) {
      ++pos;
      tp += fired;
    } else {
      ++neg;
      fp += fired;
    }
  }
  ASSERT_GT(pos, 100);
  EXPECT_NEAR(static_cast<double>(tp) / pos, profile.tpr, 0.08);
  EXPECT_LT(static_cast<double>(fp) / std::max<int64_t>(neg, 1), 0.02);
}

TEST(TrackerTest, DetectionsReferenceRealInstancesMostly) {
  const synth::GroundTruth truth = MakeTruth();
  const ObjectTracker tracker(&truth, ModelProfile::CenterTrack(), 13);
  int64_t real = 0;
  int64_t spurious = 0;
  for (FrameIndex f = 0; f < 5000; ++f) {
    for (const TrackDetection& det : tracker.Detect(0, f)) {
      EXPECT_GE(det.score, tracker.profile().threshold);
      if (det.track_id >= 2000000) {
        ++spurious;
      } else {
        ++real;
        EXPECT_TRUE(truth.ObjectFrames(0).Contains(f));
      }
    }
  }
  EXPECT_GT(real, 100);
  EXPECT_LT(spurious, real);
}

TEST(TrackerTest, DetectRangeMatchesPerFrame) {
  const synth::GroundTruth truth = MakeTruth();
  const ObjectTracker tracker(&truth, ModelProfile::CenterTrack(), 13);
  std::vector<std::pair<FrameIndex, TrackDetection>> range;
  tracker.DetectRange(0, Interval(1000, 1099), &range);
  std::vector<std::pair<FrameIndex, TrackDetection>> single;
  for (FrameIndex f = 1000; f <= 1099; ++f) {
    for (const TrackDetection& det : tracker.Detect(0, f)) {
      single.emplace_back(f, det);
    }
  }
  ASSERT_EQ(range.size(), single.size());
  for (size_t i = 0; i < range.size(); ++i) {
    EXPECT_EQ(range[i].first, single[i].first);
    EXPECT_EQ(range[i].second.track_id, single[i].second.track_id);
    EXPECT_DOUBLE_EQ(range[i].second.score, single[i].second.score);
  }
}

TEST(TrackerTest, IdealTrackerTracksAllInstances) {
  const synth::GroundTruth truth = MakeTruth();
  const ObjectTracker tracker(&truth, ModelProfile::IdealTracker(), 13);
  for (FrameIndex f = 0; f < 3000; ++f) {
    const size_t expected = truth.InstancesAt(0, f).size();
    EXPECT_EQ(tracker.Detect(0, f).size(), expected) << "frame " << f;
  }
}

TEST(ModelBundleTest, FactoriesAndStats) {
  const synth::GroundTruth truth = MakeTruth();
  ModelBundle bundle = ModelBundle::MaskRcnnI3d(truth, 1);
  EXPECT_EQ(bundle.detector->profile().name, "MaskRCNN");
  EXPECT_EQ(bundle.recognizer->profile().name, "I3D");
  EXPECT_EQ(bundle.tracker->profile().name, "CenterTrack");
  bundle.detector->MaxScore(0, 0);
  bundle.recognizer->Score(0, 0);
  EXPECT_GT(bundle.TotalSimulatedMs(), 0.0);
  bundle.ResetStats();
  EXPECT_DOUBLE_EQ(bundle.TotalSimulatedMs(), 0.0);

  ModelBundle yolo = ModelBundle::YoloI3d(truth, 1);
  EXPECT_EQ(yolo.detector->profile().name, "YOLOv3");
  ModelBundle ideal = ModelBundle::Ideal(truth, 1);
  EXPECT_EQ(ideal.detector->profile().tpr, 1.0);
}

TEST(ModelProfileTest, AccuracyOrderingAcrossPresets) {
  // The presets encode the paper's relative accuracies (Table 4).
  EXPECT_GT(ModelProfile::MaskRcnn().tpr, ModelProfile::YoloV3().tpr);
  EXPECT_LT(ModelProfile::MaskRcnn().fpr, ModelProfile::YoloV3().fpr);
  EXPECT_LT(ModelProfile::MaskRcnn().inference_ms,
            ModelProfile::I3d().inference_ms);
  EXPECT_GT(ModelProfile::MaskRcnn().inference_ms,
            ModelProfile::YoloV3().inference_ms);
}

}  // namespace
}  // namespace detect
}  // namespace vaq
