#include "storage/paged_table.h"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "offline/baselines.h"
#include "offline/rvaq.h"

namespace vaq {
namespace storage {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const char* name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

ScoreTable MakeTable(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<ScoreTable::Row> rows;
  for (int64_t c = 0; c < n; ++c) {
    rows.push_back({c, rng.UniformDouble(0, 1000)});
  }
  return std::move(ScoreTable::Build(std::move(rows))).value();
}

TEST(PagedTableTest, AllAccessPathsMatchInMemoryTable) {
  const std::string dir = TempDir("vaq_paged_basic");
  const ScoreTable memory = MakeTable(500, 3);
  const std::string path = dir + "/t.pgd";
  ASSERT_TRUE(WritePagedTable(memory, path).ok());

  PageCache cache(/*capacity_pages=*/64, /*page_size=*/4096);
  auto paged_or = PagedScoreTable::Open(path, &cache);
  ASSERT_TRUE(paged_or.ok()) << paged_or.status();
  const PagedScoreTable& paged = *paged_or.value();
  ASSERT_EQ(paged.num_rows(), memory.num_rows());

  for (int64_t rank = 0; rank < memory.num_rows(); ++rank) {
    const ScoreRow a = memory.SortedRow(rank);
    const ScoreRow b = paged.SortedRow(rank);
    ASSERT_EQ(a.clip, b.clip) << rank;
    ASSERT_DOUBLE_EQ(a.score, b.score) << rank;
    const ScoreRow ra = memory.ReverseRow(rank);
    const ScoreRow rb = paged.ReverseRow(rank);
    ASSERT_EQ(ra.clip, rb.clip) << rank;
  }
  for (ClipIndex cid = 0; cid < memory.num_rows(); ++cid) {
    ASSERT_DOUBLE_EQ(paged.RandomScore(cid), memory.PeekScore(cid)) << cid;
  }
  std::vector<double> a;
  std::vector<double> b;
  memory.RangeScores(100, 220, &a);
  paged.RangeScores(100, 220, &b);
  EXPECT_EQ(a, b);
}

TEST(PagedTableTest, AccessCountingMatchesInterfaceContract) {
  const std::string dir = TempDir("vaq_paged_count");
  const std::string path = dir + "/t.pgd";
  ASSERT_TRUE(WritePagedTable(MakeTable(100, 5), path).ok());
  PageCache cache(8, 4096);
  auto paged = std::move(PagedScoreTable::Open(path, &cache)).value();
  paged->SortedRow(0);
  paged->ReverseRow(0);
  paged->RandomScore(5);
  std::vector<double> out;
  paged->RangeScores(2, 11, &out);
  EXPECT_EQ(paged->counter().sorted_accesses, 1);
  EXPECT_EQ(paged->counter().reverse_accesses, 1);
  EXPECT_EQ(paged->counter().random_accesses, 1);
  EXPECT_EQ(paged->counter().range_scans, 1);
  EXPECT_EQ(paged->counter().range_rows, 10);
}

TEST(PagedTableTest, CacheExploitsSequentialLocality) {
  const std::string dir = TempDir("vaq_paged_locality");
  const std::string path = dir + "/t.pgd";
  const int64_t n = 4096;
  ASSERT_TRUE(WritePagedTable(MakeTable(n, 7), path).ok());
  PageCache cache(/*capacity_pages=*/4, /*page_size=*/4096);

  // Sequential sorted scan: ~16 bytes/row -> ~256 rows per page; fetches
  // stay near n/256 even with a tiny cache.
  {
    auto paged = std::move(PagedScoreTable::Open(path, &cache)).value();
    cache.ResetStats();
    for (int64_t rank = 0; rank < n; ++rank) paged->SortedRow(rank);
    EXPECT_LE(cache.fetches(), n / 200);
    EXPECT_GT(cache.hits(), n / 2);
  }
  // Scattered random access with a tiny cache: mostly misses.
  {
    cache.Clear();
    auto paged = std::move(PagedScoreTable::Open(path, &cache)).value();
    cache.ResetStats();
    Rng rng(11);
    for (int i = 0; i < 512; ++i) {
      paged->RandomScore(
          static_cast<ClipIndex>(rng.UniformInt(static_cast<uint64_t>(n))));
    }
    EXPECT_GT(cache.fetches(), 200);  // ~512 scattered reads over 64 pages, 4-page cache.
  }
}

TEST(PagedTableTest, LargerCacheReducesFetches) {
  const std::string dir = TempDir("vaq_paged_cachesize");
  const std::string path = dir + "/t.pgd";
  const int64_t n = 4096;
  ASSERT_TRUE(WritePagedTable(MakeTable(n, 9), path).ok());

  auto scattered_fetches = [&](int64_t capacity) {
    PageCache cache(capacity, 4096);
    auto paged = std::move(PagedScoreTable::Open(path, &cache)).value();
    Rng rng(13);
    for (int i = 0; i < 4000; ++i) {
      paged->RandomScore(
          static_cast<ClipIndex>(rng.UniformInt(static_cast<uint64_t>(n))));
    }
    return cache.fetches();
  };
  const int64_t small = scattered_fetches(2);
  const int64_t large = scattered_fetches(64);
  EXPECT_GT(small, 4 * large);  // The whole by-clip region fits in 64 pages.
}

TEST(PagedTableTest, OpenErrors) {
  PageCache cache(4, 4096);
  EXPECT_FALSE(PagedScoreTable::Open("/no/such/file.pgd", &cache).ok());
  const std::string dir = TempDir("vaq_paged_bad");
  const std::string path = dir + "/bad.pgd";
  std::ofstream(path, std::ios::binary) << "garbage";
  EXPECT_EQ(PagedScoreTable::Open(path, &cache).status().code(),
            StatusCode::kCorruption);
}

TEST(PagedTableTest, RvaqRunsDirectlyOffDisk) {
  // End to end: bind a query to three paged tables and verify RVAQ gets
  // the same answer it gets from memory.
  const std::string dir = TempDir("vaq_paged_rvaq");
  std::vector<ScoreTable> memory;
  for (uint64_t t = 0; t < 3; ++t) memory.push_back(MakeTable(200, 20 + t));
  PageCache cache(32, 4096);
  std::vector<std::unique_ptr<PagedScoreTable>> paged;
  for (size_t t = 0; t < 3; ++t) {
    const std::string path = dir + "/t" + std::to_string(t) + ".pgd";
    ASSERT_TRUE(WritePagedTable(memory[t], path).ok());
    paged.push_back(std::move(PagedScoreTable::Open(path, &cache)).value());
  }
  IntervalSet pq = IntervalSet::FromIntervals(
      {Interval(10, 25), Interval(60, 80), Interval(120, 127),
       Interval(150, 170)});

  auto make_tables = [&](bool use_paged) {
    offline::QueryTables tables;
    tables.num_clips = 200;
    for (size_t t = 0; t < 3; ++t) {
      tables.tables.push_back(use_paged
                                  ? static_cast<const ScoreTableView*>(
                                        paged[t].get())
                                  : &memory[t]);
      tables.sequences.push_back(&pq);
    }
    tables.schema.num_objects = 2;
    tables.schema.has_action = true;
    tables.schema.clauses = {{0}, {1}, {2}};
    return tables;
  };
  offline::PaperScoring scoring;
  offline::RvaqOptions options;
  options.k = 2;
  const offline::QueryTables mem_tables = make_tables(false);
  const offline::QueryTables disk_tables = make_tables(true);
  const offline::TopKResult expected =
      offline::Rvaq(&mem_tables, &scoring, options).Run();
  const offline::TopKResult actual =
      offline::Rvaq(&disk_tables, &scoring, options).Run();
  ASSERT_EQ(actual.top.size(), expected.top.size());
  for (size_t i = 0; i < actual.top.size(); ++i) {
    EXPECT_EQ(actual.top[i].clips, expected.top[i].clips);
    EXPECT_DOUBLE_EQ(actual.top[i].exact_score, expected.top[i].exact_score);
  }
  EXPECT_GT(cache.fetches() + cache.hits(), 0);
}

TEST(PagedTableTest, ConcurrentReadersShareOneCache) {
  // One PageCache behind eight reader threads, with a capacity small
  // enough that eviction happens constantly under contention. Each thread
  // has a private PagedScoreTable (the view stays single-threaded; only
  // the cache is shared) and checks every value it reads against the
  // in-memory table, so a torn page, a page freed while in use, or a
  // cross-wired cache entry shows up as a value mismatch.
  const std::string dir = TempDir("vaq_paged_concurrent");
  const std::string path = dir + "/t.pgd";
  const ScoreTable memory = MakeTable(2000, 11);
  ASSERT_TRUE(WritePagedTable(memory, path).ok());

  PageCache cache(/*capacity_pages=*/4, /*page_size=*/4096);
  constexpr int kThreads = 8;
  constexpr int kReadsPerThread = 2000;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      auto paged_or = PagedScoreTable::Open(path, &cache);
      if (!paged_or.ok()) {
        mismatches.fetch_add(1000);
        return;
      }
      const PagedScoreTable& paged = *paged_or.value();
      for (int i = 0; i < kReadsPerThread; ++i) {
        const int64_t clip =
            (static_cast<int64_t>(i) * 37 + t * 131) % memory.num_rows();
        if (paged.RandomScore(clip) != memory.PeekScore(clip)) {
          mismatches.fetch_add(1);
        }
        const int64_t rank =
            (static_cast<int64_t>(i) * 17 + t * 59) % memory.num_rows();
        const ScoreRow expect = memory.SortedRow(rank);
        const ScoreRow got = paged.SortedRow(rank);
        if (got.clip != expect.clip || got.score != expect.score) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  // With 4 resident pages and scattered readers, both paths must fire.
  EXPECT_GT(cache.fetches(), 0);
  EXPECT_GT(cache.hits(), 0);
}

}  // namespace
}  // namespace storage
}  // namespace vaq
