#include "scanstat/markov.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "scanstat/naus.h"

namespace vaq {
namespace scanstat {
namespace {

TEST(MarkovParamsTest, StationaryAndRho) {
  const MarkovParams iid = MarkovParams::Iid(0.3);
  EXPECT_DOUBLE_EQ(iid.Stationary(), 0.3);
  EXPECT_DOUBLE_EQ(iid.Rho(), 0.0);

  MarkovParams bursty;
  bursty.p01 = 0.02;
  bursty.p11 = 0.8;
  // pi = 0.02 / (0.02 + 0.2) = 1/11.
  EXPECT_NEAR(bursty.Stationary(), 1.0 / 11.0, 1e-12);
  EXPECT_NEAR(bursty.Rho(), 0.78, 1e-12);
}

TEST(MarkovParamsTest, FromStationaryAndRhoRoundTrips) {
  for (double pi : {0.01, 0.2, 0.6}) {
    for (double rho : {0.0, 0.3, 0.9}) {
      const MarkovParams params = MarkovParams::FromStationaryAndRho(pi, rho);
      EXPECT_NEAR(params.Stationary(), pi, 1e-9) << pi << "," << rho;
      EXPECT_NEAR(params.Rho(), rho, 1e-9) << pi << "," << rho;
      EXPECT_GE(params.p01, 0.0);
      EXPECT_LE(params.p11, 1.0);
    }
  }
}

TEST(MarkovExactDpTest, IidChainMatchesIidDp) {
  // With p01 = p11 the chain is iid and must agree with the iid DP.
  for (double p : {0.05, 0.3}) {
    for (int64_t w : {4, 8}) {
      for (int64_t k = 1; k <= w; ++k) {
        const double markov =
            ExactMarkovScanTailDp(k, MarkovParams::Iid(p), w, 5 * w);
        const double iid = ExactScanTailProbabilityDp(k, p, w, 5 * w);
        EXPECT_NEAR(markov, iid, 1e-10) << "p=" << p << " w=" << w
                                        << " k=" << k;
      }
    }
  }
}

TEST(MarkovExactDpTest, MatchesMonteCarlo) {
  const MarkovParams params = MarkovParams::FromStationaryAndRho(0.08, 0.6);
  for (int64_t k : {2, 3, 5}) {
    const double exact = ExactMarkovScanTailDp(k, params, 10, 200);
    const double mc =
        MonteCarloMarkovScanTail(k, params, 10, 200, 40000, 77);
    const double sigma = std::sqrt(std::max(mc * (1 - mc), 1e-6) / 40000);
    EXPECT_NEAR(exact, mc, 4 * sigma + 0.005) << "k=" << k;
  }
}

TEST(MarkovApproxTest, ProductFormTracksExactDp) {
  const MarkovParams params = MarkovParams::FromStationaryAndRho(0.05, 0.5);
  for (int64_t w : {6, 12}) {
    for (int64_t L : {5, 20}) {
      for (int64_t k = 2; k <= w; k += 2) {
        const double approx = MarkovScanTailProbability(
            k, params, w, static_cast<double>(L));
        const double exact = ExactMarkovScanTailDp(k, params, w, L * w);
        EXPECT_NEAR(approx, exact, 0.03)
            << "w=" << w << " L=" << L << " k=" << k;
      }
    }
  }
}

TEST(MarkovApproxTest, BurstsDemandLargerCriticalValues) {
  // At equal stationary probability, positive autocorrelation concentrates
  // successes and must raise k_crit.
  ScanConfig config;
  config.window = 100;
  config.horizon = 100000;
  config.alpha = 0.01;
  int64_t prev = 0;
  for (double rho : {0.0, 0.3, 0.6, 0.85}) {
    const int64_t k = MarkovCriticalValue(
        MarkovParams::FromStationaryAndRho(0.015, rho), config);
    EXPECT_GE(k, prev) << "rho=" << rho;
    prev = k;
  }
  // And strictly larger somewhere along the sweep.
  EXPECT_GT(prev, MarkovCriticalValue(MarkovParams::Iid(0.015), config));
}

TEST(MarkovApproxTest, IidCaseAgreesWithNausCriticalValue) {
  ScanConfig config;
  config.window = 10;  // Exact-DP branch.
  config.horizon = 20000;
  config.alpha = 0.01;
  for (double p : {0.002, 0.02}) {
    const int64_t markov =
        MarkovCriticalValue(MarkovParams::Iid(p), config);
    const int64_t naus = CriticalValue(p, config);
    EXPECT_NEAR(static_cast<double>(markov), static_cast<double>(naus), 1.0)
        << "p=" << p;
  }
}

TEST(MarkovApproxTest, WideWindowBranchTracksMonteCarlo) {
  // Wide window -> disjoint-window composition of the exact per-window
  // count tail; should land close to the sliding-scan Monte-Carlo truth
  // across a range of burstiness levels.
  const int64_t w = 100;
  const int64_t n = 10000;
  for (double rho : {0.0, 0.4, 0.7}) {
    const MarkovParams params =
        MarkovParams::FromStationaryAndRho(0.02, rho);
    for (int64_t k : {8, 12, 16}) {
      const double approx = MarkovScanTailProbability(
          k, params, w, static_cast<double>(n) / w);
      const double mc = MonteCarloMarkovScanTail(k, params, w, n, 20000, 5);
      EXPECT_NEAR(approx, mc, 0.12) << "rho=" << rho << " k=" << k;
    }
  }
}

TEST(MarkovApproxTest, EdgeCases) {
  const MarkovParams params = MarkovParams::FromStationaryAndRho(0.1, 0.5);
  EXPECT_DOUBLE_EQ(MarkovScanTailProbability(0, params, 10, 5), 1.0);
  EXPECT_DOUBLE_EQ(MarkovScanTailProbability(11, params, 10, 5), 0.0);
  EXPECT_DOUBLE_EQ(
      MarkovScanTailProbability(3, MarkovParams::Iid(0.0), 10, 5), 0.0);
  EXPECT_DOUBLE_EQ(
      MarkovScanTailProbability(3, MarkovParams::Iid(1.0), 10, 5), 1.0);
}

TEST(MarkovCriticalValueTest, DefinitionHolds) {
  const MarkovParams params = MarkovParams::FromStationaryAndRho(0.03, 0.4);
  ScanConfig config;
  config.window = 12;
  config.horizon = 12000;
  config.alpha = 0.01;
  const int64_t k = MarkovCriticalValue(params, config);
  ASSERT_GE(k, 1);
  ASSERT_LE(k, 13);
  if (k <= 12) {
    EXPECT_LE(MarkovScanTailProbability(k, params, 12, config.L()), 0.01);
  }
  if (k > 1) {
    EXPECT_GT(MarkovScanTailProbability(k - 1, params, 12, config.L()),
              0.01);
  }
}

}  // namespace
}  // namespace scanstat
}  // namespace vaq
