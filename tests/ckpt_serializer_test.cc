// Checkpoint framing and store unit tests: payload round-trips (incl.
// F64 bit-exactness), record framing and checksums, blob header checks,
// unknown-tag forward compatibility, torn-WAL-tail truncation semantics,
// sequence-numbered entry names, and MemStore/DirStore contract parity.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/recovery.h"
#include "ckpt/serializer.h"
#include "ckpt/store.h"

namespace vaq {
namespace ckpt {
namespace {

TEST(PayloadTest, RoundTripsEveryFieldType) {
  Payload payload;
  payload.PutU32(0xDEADBEEFu);
  payload.PutU64(0x0123456789ABCDEFull);
  payload.PutI64(-42);
  payload.PutF64(0.1);  // Not exactly representable: bit pattern must survive.
  payload.PutBool(true);
  payload.PutBool(false);
  payload.PutString("durability");
  payload.PutString("");  // Empty strings are legal.

  PayloadReader reader(payload.data());
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double f64 = 0;
  bool b1 = false, b2 = true;
  std::string s1, s2;
  ASSERT_TRUE(reader.GetU32(&u32).ok());
  ASSERT_TRUE(reader.GetU64(&u64).ok());
  ASSERT_TRUE(reader.GetI64(&i64).ok());
  ASSERT_TRUE(reader.GetF64(&f64).ok());
  ASSERT_TRUE(reader.GetBool(&b1).ok());
  ASSERT_TRUE(reader.GetBool(&b2).ok());
  ASSERT_TRUE(reader.GetString(&s1).ok());
  ASSERT_TRUE(reader.GetString(&s2).ok());
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(f64, 0.1);
  EXPECT_TRUE(b1);
  EXPECT_FALSE(b2);
  EXPECT_EQ(s1, "durability");
  EXPECT_EQ(s2, "");
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(PayloadTest, F64RoundTripIsBitExact) {
  // The metric-identity guarantee rests on doubles surviving a snapshot
  // bit for bit, including non-finite and denormal values.
  const double values[] = {0.0,
                           -0.0,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max(),
                           1.0 / 3.0,
                           std::nan("")};
  for (const double v : values) {
    Payload payload;
    payload.PutF64(v);
    PayloadReader reader(payload.data());
    double got = 0;
    ASSERT_TRUE(reader.GetF64(&got).ok());
    uint64_t want_bits = 0, got_bits = 0;
    static_assert(sizeof(want_bits) == sizeof(v));
    std::memcpy(&want_bits, &v, sizeof(v));
    std::memcpy(&got_bits, &got, sizeof(got));
    EXPECT_EQ(got_bits, want_bits);
  }
}

TEST(PayloadTest, UnderrunIsCorruption) {
  Payload payload;
  payload.PutU32(7);
  PayloadReader reader(payload.data());
  uint64_t u64 = 0;  // Wider than what was written.
  EXPECT_EQ(reader.GetU64(&u64).code(), StatusCode::kCorruption);

  // A string length prefix that overruns the payload is also corruption,
  // not a crash.
  Payload lying;
  lying.PutU32(1000);  // Claims 1000 bytes follow; none do.
  PayloadReader sreader(lying.data());
  std::string s;
  EXPECT_EQ(sreader.GetString(&s).code(), StatusCode::kCorruption);
}

TEST(RecordTest, AppendReadRoundTrip) {
  std::string log;
  AppendRecord(&log, /*tag=*/3, "first");
  AppendRecord(&log, /*tag=*/9, "");
  AppendRecord(&log, /*tag=*/3, "third");

  size_t offset = 0;
  Record record;
  ASSERT_TRUE(ReadRecord(log, &offset, &record).ok());
  EXPECT_EQ(record.tag, 3u);
  EXPECT_EQ(record.payload, "first");
  ASSERT_TRUE(ReadRecord(log, &offset, &record).ok());
  EXPECT_EQ(record.tag, 9u);
  EXPECT_EQ(record.payload, "");
  ASSERT_TRUE(ReadRecord(log, &offset, &record).ok());
  EXPECT_EQ(record.payload, "third");
  // Clean end of input.
  EXPECT_EQ(ReadRecord(log, &offset, &record).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(offset, log.size());
}

TEST(RecordTest, BitFlipFailsChecksum) {
  std::string log;
  AppendRecord(&log, /*tag=*/1, "payload bytes");
  for (size_t i = 0; i < log.size(); ++i) {
    std::string damaged = log;
    damaged[i] ^= 0x01;
    size_t offset = 0;
    Record record;
    const Status s = ReadRecord(damaged, &offset, &record);
    // Any single-bit flip is caught: either the checksum fails, or the
    // corrupted length makes the frame torn / oversized.
    EXPECT_FALSE(s.ok()) << "flip at byte " << i;
    EXPECT_NE(s.code(), StatusCode::kOutOfRange) << "flip at byte " << i;
  }
}

TEST(RecordTest, TornTailIsIoErrorNotCorruption) {
  // A crash mid-append leaves a partial final record. That must parse as
  // a truncation (kIoError), distinguishable from checksum corruption —
  // WAL replay treats it as the end of the usable log.
  std::string log;
  AppendRecord(&log, /*tag=*/2, "committed");
  const size_t committed = log.size();
  AppendRecord(&log, /*tag=*/2, "torn write");
  for (size_t cut = committed + 1; cut < log.size(); ++cut) {
    const std::string torn = log.substr(0, cut);
    size_t offset = 0;
    Record record;
    ASSERT_TRUE(ReadRecord(torn, &offset, &record).ok());
    EXPECT_EQ(record.payload, "committed");
    EXPECT_EQ(ReadRecord(torn, &offset, &record).code(), StatusCode::kIoError)
        << "cut at byte " << cut;
  }
}

TEST(BlobTest, SerializerDeserializerRoundTrip) {
  Payload p1;
  p1.PutI64(77);
  Serializer serializer;
  serializer.Append(/*tag=*/1, p1);
  serializer.Append(/*tag=*/2, "raw payload");

  auto reader = Deserializer::Open(serializer.blob());
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader.value().version(), kFormatVersion);
  Record record;
  ASSERT_TRUE(reader.value().Next(&record).ok());
  EXPECT_EQ(record.tag, 1u);
  PayloadReader pr(record.payload);
  int64_t i64 = 0;
  ASSERT_TRUE(pr.GetI64(&i64).ok());
  EXPECT_EQ(i64, 77);
  ASSERT_TRUE(reader.value().Next(&record).ok());
  EXPECT_EQ(record.payload, "raw payload");
  EXPECT_EQ(reader.value().Next(&record).code(), StatusCode::kOutOfRange);

  auto records = ParseBlob(serializer.blob());
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records.value().size(), 2u);
  EXPECT_EQ(records.value()[1].tag, 2u);
}

TEST(BlobTest, RejectsBadMagicAndNewerVersion) {
  Serializer serializer;
  serializer.Append(/*tag=*/1, "x");
  std::string blob = serializer.blob();

  std::string bad_magic = blob;
  bad_magic[0] ^= 0xFF;
  EXPECT_EQ(Deserializer::Open(bad_magic).status().code(),
            StatusCode::kCorruption);
  EXPECT_FALSE(ParseBlob(bad_magic).ok());

  // Bump the version field (bytes 8..11, little-endian) past ours: a
  // newer writer's blob must be refused, not misread.
  std::string newer = blob;
  newer[8] = static_cast<char>(kFormatVersion + 1);
  EXPECT_EQ(Deserializer::Open(newer).status().code(),
            StatusCode::kUnimplemented);

  EXPECT_EQ(Deserializer::Open("short").status().code(),
            StatusCode::kCorruption);
}

TEST(BlobTest, SnapshotsRejectTornRecords) {
  // Unlike a WAL, a snapshot must be intact end to end: a torn final
  // record makes the whole blob unusable.
  Serializer serializer;
  serializer.Append(/*tag=*/1, "only record");
  const std::string torn = serializer.blob().substr(0, serializer.blob().size() - 3);
  EXPECT_FALSE(ParseBlob(torn).ok());
  auto reader = Deserializer::Open(torn);
  ASSERT_TRUE(reader.ok());
  Record record;
  EXPECT_EQ(reader.value().Next(&record).code(), StatusCode::kCorruption);
}

TEST(NamesTest, SequenceNamesSortAndParse) {
  EXPECT_EQ(SnapshotName(0), "snap-00000000");
  EXPECT_EQ(SnapshotName(42), "snap-00000042");
  EXPECT_EQ(WalName(7), "wal-00000007");
  EXPECT_LT(SnapshotName(9), SnapshotName(10));  // Lexical == numeric.
  ASSERT_TRUE(SnapshotSeq("snap-00000042").ok());
  EXPECT_EQ(SnapshotSeq("snap-00000042").value(), 42);
  ASSERT_TRUE(WalSeq("wal-00000007").ok());
  EXPECT_EQ(WalSeq("wal-00000007").value(), 7);
  EXPECT_FALSE(SnapshotSeq("wal-00000007").ok());
  EXPECT_FALSE(WalSeq("snap-00000042").ok());
  EXPECT_FALSE(SnapshotSeq("snap-").ok());
  EXPECT_FALSE(SnapshotSeq("snap-12x4").ok());
  EXPECT_TRUE(ValidEntryName(SnapshotName(3)));
  EXPECT_TRUE(ValidEntryName(WalName(3)));
}

// The Store contract, run against both implementations.
class StoreContractTest : public ::testing::TestWithParam<bool> {
 protected:
  StoreContractTest() {
    if (GetParam()) {
      dir_ = std::filesystem::path(::testing::TempDir()) /
             ("ckpt_store_test_" +
              std::to_string(::testing::UnitTest::GetInstance()
                                 ->random_seed()) +
              "_" + ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name());
      std::filesystem::remove_all(dir_);
      store_ = std::make_unique<DirStore>(dir_.string());
    } else {
      store_ = std::make_unique<MemStore>();
    }
  }
  ~StoreContractTest() override {
    store_.reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  std::unique_ptr<Store> store_;
  std::filesystem::path dir_;
};

TEST_P(StoreContractTest, PutGetReplaceDelete) {
  EXPECT_EQ(store_->Get("absent").status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(store_->Put("snap-00000000", "v1").ok());
  ASSERT_TRUE(store_->Put("snap-00000000", "v2").ok());  // Replace.
  auto got = store_->Get("snap-00000000");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "v2");
  ASSERT_TRUE(store_->Delete("snap-00000000").ok());
  EXPECT_EQ(store_->Get("snap-00000000").status().code(),
            StatusCode::kNotFound);
  // Deleting a missing entry is fine — truncation must be idempotent.
  EXPECT_TRUE(store_->Delete("snap-00000000").ok());
}

TEST_P(StoreContractTest, AppendCreatesAndExtends) {
  ASSERT_TRUE(store_->Append("wal-00000000", "abc").ok());
  ASSERT_TRUE(store_->Append("wal-00000000", "def").ok());
  auto got = store_->Get("wal-00000000");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "abcdef");
}

TEST_P(StoreContractTest, ListIsSortedAndComplete) {
  ASSERT_TRUE(store_->Put("wal-00000001", "w").ok());
  ASSERT_TRUE(store_->Put("snap-00000001", "b").ok());
  ASSERT_TRUE(store_->Put("snap-00000000", "a").ok());
  auto names = store_->List();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(),
            (std::vector<std::string>{"snap-00000000", "snap-00000001",
                                      "wal-00000001"}));
}

TEST_P(StoreContractTest, RejectsInvalidEntryNames) {
  EXPECT_FALSE(ValidEntryName(""));
  EXPECT_FALSE(ValidEntryName("a/b"));
  EXPECT_FALSE(ValidEntryName("../escape"));
  EXPECT_FALSE(ValidEntryName("#temp"));
  EXPECT_FALSE(store_->Put("a/b", "x").ok());
  EXPECT_FALSE(store_->Append("../escape", "x").ok());
  EXPECT_FALSE(store_->Get("#temp").ok());
}

INSTANTIATE_TEST_SUITE_P(MemAndDir, StoreContractTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "DirStore" : "MemStore";
                         });

TEST(DirStoreTest, SurvivesReopenAndIgnoresTempLeftovers) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "ckpt_dirstore_reopen";
  std::filesystem::remove_all(dir);
  {
    DirStore store(dir.string());
    ASSERT_TRUE(store.Put("snap-00000000", "persisted").ok());
  }
  // A crash between temp-write and rename leaves a "#"-prefixed file;
  // a reopened store must not surface it as an entry.
  {
    std::ofstream leftover(dir / "#snap-00000001");
    leftover << "partial";
  }
  DirStore reopened(dir.string());
  auto names = reopened.List();
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(), std::vector<std::string>{"snap-00000000"});
  auto got = reopened.Get("snap-00000000");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "persisted");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ckpt
}  // namespace vaq
