#include "common/status.h"

#include <gtest/gtest.h>

namespace vaq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kAlreadyExists,
        StatusCode::kFailedPrecondition, StatusCode::kIoError,
        StatusCode::kCorruption, StatusCode::kUnimplemented,
        StatusCode::kInternal, StatusCode::kUnavailable,
        StatusCode::kDeadlineExceeded, StatusCode::kResourceExhausted}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(StatusTest, ResourceExhaustedIsTheSheddingCode) {
  const Status s = Status::ResourceExhausted("tenant t3 over quota");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.ToString(), "ResourceExhausted: tenant t3 over quota");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValues) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 7);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("non-positive");
  return x;
}

Status UseMacros(int x, int* out) {
  VAQ_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  VAQ_RETURN_IF_ERROR(Status::OK());
  *out = v * 2;
  return Status::OK();
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseMacros(21, &out).ok());
  EXPECT_EQ(out, 42);
  const Status err = UseMacros(-1, &out);
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(out, 42);  // Untouched on error.
}

}  // namespace
}  // namespace vaq
