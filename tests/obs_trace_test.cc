// Span tracing under a simulated clock: nesting depths, deterministic
// durations driven by fault::SimClock, the registry mirror every closed
// span leaves behind, and cross-thread span parenting through
// obs::QueryContext (the serve worker-pool contract).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fault/sim_clock.h"
#include "obs/metrics.h"
#include "obs/query_trace.h"
#include "obs/trace.h"

namespace vaq {
namespace obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().SetClock([this] { return clock_.now_ms(); });
    Tracer::Global().SetRecording(true);
  }
  void TearDown() override {
    Tracer::Global().SetRecording(false);
    Tracer::Global().SetClock(nullptr);
  }
  fault::SimClock clock_;
};

TEST_F(TraceTest, NestedSpansRecordDepthAndSimulatedDurations) {
  {
    VAQ_TRACE_SPAN("outer");
    clock_.Advance(5.0);
    {
      VAQ_TRACE_SPAN("inner");
      clock_.Advance(2.0);
    }
    clock_.Advance(3.0);
  }
  const std::vector<SpanRecord> records = Tracer::Global().TakeRecords();
  ASSERT_EQ(records.size(), 2u);
  // Innermost closes first.
  EXPECT_EQ(records[0].name, "inner");
  EXPECT_EQ(records[0].depth, 1);
  EXPECT_DOUBLE_EQ(records[0].start_ms, 5.0);
  EXPECT_DOUBLE_EQ(records[0].duration_ms, 2.0);
  EXPECT_EQ(records[1].name, "outer");
  EXPECT_EQ(records[1].depth, 0);
  EXPECT_DOUBLE_EQ(records[1].start_ms, 0.0);
  EXPECT_DOUBLE_EQ(records[1].duration_ms, 10.0);
}

TEST_F(TraceTest, ClosedSpansMirrorIntoTheGlobalRegistry) {
  Counter* total = MetricRegistry::Global().GetCounter(
      "vaq_span_total", {{"span", "trace_test/mirror"}});
  const int64_t before = total->value();
  {
    VAQ_TRACE_SPAN("trace_test/mirror");
    clock_.Advance(1.0);
  }
  EXPECT_EQ(total->value(), before + 1);
  Histogram* ms = MetricRegistry::Global().GetHistogram(
      "vaq_span_ms", DefaultLatencyBucketsMs(),
      {{"span", "trace_test/mirror"}});
  EXPECT_GE(ms->count(), 1);
}

TEST_F(TraceTest, TakeRecordsDrains) {
  { VAQ_TRACE_SPAN("once"); }
  EXPECT_EQ(Tracer::Global().TakeRecords().size(), 1u);
  EXPECT_TRUE(Tracer::Global().TakeRecords().empty());
}

TEST_F(TraceTest, SequentialSpansShareDepthZero) {
  { VAQ_TRACE_SPAN("first"); }
  { VAQ_TRACE_SPAN("second"); }
  const std::vector<SpanRecord> records = Tracer::Global().TakeRecords();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].depth, 0);
  EXPECT_EQ(records[1].depth, 0);
}

// Cross-thread span parenting, the contract the serve worker pool is
// built on: the submitting thread mints the parent span (the query's
// root node), workers install per-shard child contexts with
// ScopedQueryContext and grow grandchildren under them. The resulting
// tree parents every worker-side node under the submitter's root, and
// the rendered profile is byte-identical whether the children run
// inline (threads=0) or on an 8-thread pool.
TEST(QueryContextParentingTest, ParentInSubmitterChildrenInWorkers) {
  constexpr int kChildren = 8;
  const auto run = [](int threads) {
    auto trace = std::make_unique<QueryTrace>("q1");
    const QueryContext root{trace.get(), 0};
    // Minted on the submitting thread, in deterministic order.
    std::vector<QueryContext> children;
    for (int c = 0; c < kChildren; ++c) {
      children.push_back(root.Child("worker" + std::to_string(c)));
    }
    const auto work = [&children](int c) {
      ScopedQueryContext scoped(children[c]);
      CurrentQueryContext().AddMs(0.25 * (c + 1));
      CurrentQueryContext().Child("model").AddStat("calls", c + 1);
    };
    if (threads == 0) {
      for (int c = 0; c < kChildren; ++c) work(c);
    } else {
      std::vector<std::thread> pool;
      for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&work, t, threads] {
          for (int c = t; c < kChildren; c += threads) work(c);
        });
      }
      for (std::thread& t : pool) t.join();
    }
    return trace;
  };

  const std::unique_ptr<QueryTrace> inline_trace = run(0);
  const std::unique_ptr<QueryTrace> pooled_trace = run(8);
  EXPECT_EQ(inline_trace->RenderProfile(), pooled_trace->RenderProfile());

  // Every worker-side node is parented under the submitter's root.
  const std::vector<QueryTrace::Node> nodes = pooled_trace->snapshot();
  ASSERT_EQ(nodes.size(), 1u + 2u * kChildren);
  ASSERT_EQ(nodes[0].children.size(), static_cast<size_t>(kChildren));
  for (int c = 0; c < kChildren; ++c) {
    const QueryTrace::Node& child = nodes[nodes[0].children[c]];
    EXPECT_EQ(child.name, "worker" + std::to_string(c));
    EXPECT_EQ(child.parent, 0);
    ASSERT_EQ(child.children.size(), 1u);
    const QueryTrace::Node& grandchild = nodes[child.children[0]];
    EXPECT_EQ(grandchild.name, "model");
    EXPECT_EQ(grandchild.stats.at("calls"), c + 1);
  }
}

}  // namespace
}  // namespace obs
}  // namespace vaq
