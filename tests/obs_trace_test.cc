// Span tracing under a simulated clock: nesting depths, deterministic
// durations driven by fault::SimClock, and the registry mirror every
// closed span leaves behind.
#include <gtest/gtest.h>

#include <vector>

#include "fault/sim_clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vaq {
namespace obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().SetClock([this] { return clock_.now_ms(); });
    Tracer::Global().SetRecording(true);
  }
  void TearDown() override {
    Tracer::Global().SetRecording(false);
    Tracer::Global().SetClock(nullptr);
  }
  fault::SimClock clock_;
};

TEST_F(TraceTest, NestedSpansRecordDepthAndSimulatedDurations) {
  {
    VAQ_TRACE_SPAN("outer");
    clock_.Advance(5.0);
    {
      VAQ_TRACE_SPAN("inner");
      clock_.Advance(2.0);
    }
    clock_.Advance(3.0);
  }
  const std::vector<SpanRecord> records = Tracer::Global().TakeRecords();
  ASSERT_EQ(records.size(), 2u);
  // Innermost closes first.
  EXPECT_EQ(records[0].name, "inner");
  EXPECT_EQ(records[0].depth, 1);
  EXPECT_DOUBLE_EQ(records[0].start_ms, 5.0);
  EXPECT_DOUBLE_EQ(records[0].duration_ms, 2.0);
  EXPECT_EQ(records[1].name, "outer");
  EXPECT_EQ(records[1].depth, 0);
  EXPECT_DOUBLE_EQ(records[1].start_ms, 0.0);
  EXPECT_DOUBLE_EQ(records[1].duration_ms, 10.0);
}

TEST_F(TraceTest, ClosedSpansMirrorIntoTheGlobalRegistry) {
  Counter* total = MetricRegistry::Global().GetCounter(
      "vaq_span_total", {{"span", "trace_test/mirror"}});
  const int64_t before = total->value();
  {
    VAQ_TRACE_SPAN("trace_test/mirror");
    clock_.Advance(1.0);
  }
  EXPECT_EQ(total->value(), before + 1);
  Histogram* ms = MetricRegistry::Global().GetHistogram(
      "vaq_span_ms", DefaultLatencyBucketsMs(),
      {{"span", "trace_test/mirror"}});
  EXPECT_GE(ms->count(), 1);
}

TEST_F(TraceTest, TakeRecordsDrains) {
  { VAQ_TRACE_SPAN("once"); }
  EXPECT_EQ(Tracer::Global().TakeRecords().size(), 1u);
  EXPECT_TRUE(Tracer::Global().TakeRecords().empty());
}

TEST_F(TraceTest, SequentialSpansShareDepthZero) {
  { VAQ_TRACE_SPAN("first"); }
  { VAQ_TRACE_SPAN("second"); }
  const std::vector<SpanRecord> records = Tracer::Global().TakeRecords();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].depth, 0);
  EXPECT_EQ(records[1].depth, 0);
}

}  // namespace
}  // namespace obs
}  // namespace vaq
