#include "storage/catalog.h"
#include "storage/score_table.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace vaq {
namespace storage {
namespace {

namespace fs = std::filesystem;

ScoreTable MakeTable(std::vector<double> scores) {
  std::vector<ScoreTable::Row> rows;
  for (size_t i = 0; i < scores.size(); ++i) {
    rows.push_back({static_cast<ClipIndex>(i), scores[i]});
  }
  auto table = ScoreTable::Build(std::move(rows));
  EXPECT_TRUE(table.ok());
  return std::move(table).value();
}

std::string TempDir(const char* name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

TEST(ScoreTableTest, BuildValidatesRows) {
  EXPECT_FALSE(ScoreTable::Build({{0, 1.0}, {0, 2.0}}).ok());  // Duplicate.
  EXPECT_FALSE(ScoreTable::Build({{1, 1.0}}).ok());  // Gap (id 0 missing).
  EXPECT_FALSE(ScoreTable::Build({{-1, 1.0}}).ok());
  EXPECT_TRUE(ScoreTable::Build({}).ok());
}

TEST(ScoreTableTest, SortedOrderIsDescendingWithStableTies) {
  const ScoreTable table = MakeTable({3.0, 9.0, 3.0, 7.0});
  EXPECT_EQ(table.SortedRow(0).clip, 1);
  EXPECT_EQ(table.SortedRow(1).clip, 3);
  EXPECT_EQ(table.SortedRow(2).clip, 0);  // Tie: lower clip id first.
  EXPECT_EQ(table.SortedRow(3).clip, 2);
  EXPECT_EQ(table.ReverseRow(0).clip, 2);
  EXPECT_EQ(table.ReverseRow(3).clip, 1);
}

TEST(ScoreTableTest, AccessCounting) {
  const ScoreTable table = MakeTable({1, 2, 3, 4, 5});
  table.SortedRow(0);
  table.SortedRow(1);
  table.ReverseRow(0);
  table.RandomScore(3);
  std::vector<double> out;
  table.RangeScores(1, 3, &out);
  EXPECT_EQ(table.counter().sorted_accesses, 2);
  EXPECT_EQ(table.counter().reverse_accesses, 1);
  EXPECT_EQ(table.counter().random_accesses, 1);
  EXPECT_EQ(table.counter().range_scans, 1);
  EXPECT_EQ(table.counter().range_rows, 3);
  EXPECT_EQ(table.counter().seeks(), 2);
  EXPECT_EQ(table.counter().sequential_rows(), 6);
  table.ResetCounter();
  EXPECT_EQ(table.counter().total(), 0);
  // Peek is never counted.
  table.PeekScore(0);
  EXPECT_EQ(table.counter().total(), 0);
}

TEST(ScoreTableTest, RangeScoresReturnsByClipOrder) {
  const ScoreTable table = MakeTable({5, 1, 4, 2});
  std::vector<double> out;
  table.RangeScores(0, 3, &out);
  EXPECT_EQ(out, (std::vector<double>{5, 1, 4, 2}));
}

TEST(ScoreTableTest, FileRoundTrip) {
  const std::string dir = TempDir("vaq_tbl_test");
  Rng rng(5);
  std::vector<double> scores;
  for (int i = 0; i < 500; ++i) scores.push_back(rng.UniformDouble(0, 100));
  const ScoreTable table = MakeTable(scores);
  const std::string path = dir + "/t.tbl";
  ASSERT_TRUE(table.WriteTo(path).ok());
  auto loaded = ScoreTable::ReadFrom(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_rows(), table.num_rows());
  for (int64_t i = 0; i < table.num_rows(); ++i) {
    EXPECT_EQ(loaded->PeekScore(i), table.PeekScore(i));
  }
  EXPECT_EQ(loaded->SortedRow(0).clip, table.SortedRow(0).clip);
}

TEST(ScoreTableTest, ReadErrors) {
  EXPECT_EQ(ScoreTable::ReadFrom("/nonexistent/file.tbl").status().code(),
            StatusCode::kIoError);
  const std::string dir = TempDir("vaq_tbl_bad");
  const std::string path = dir + "/bad.tbl";
  std::ofstream(path, std::ios::binary) << "garbage";
  EXPECT_EQ(ScoreTable::ReadFrom(path).status().code(),
            StatusCode::kCorruption);
}

VideoIndex MakeIndex() {
  VideoIndex index;
  index.video_id = 42;
  index.num_clips = 6;
  TypeIndex car;
  car.type_id = 0;
  car.type_name = "car";
  car.table = MakeTable({1, 6, 3, 2, 9, 0});
  car.sequences = IntervalSet::FromIntervals({Interval(1, 2), Interval(4, 4)});
  index.objects.push_back(std::move(car));
  TypeIndex jump;
  jump.type_id = 0;
  jump.type_name = "jumping";
  jump.table = MakeTable({0, 5, 5, 1, 8, 2});
  jump.sequences = IntervalSet::FromIntervals({Interval(1, 4)});
  index.actions.push_back(std::move(jump));
  return index;
}

TEST(VideoIndexTest, Lookups) {
  const VideoIndex index = MakeIndex();
  EXPECT_NE(index.FindObject(0), nullptr);
  EXPECT_EQ(index.FindObject(9), nullptr);
  EXPECT_NE(index.FindObjectByName("car"), nullptr);
  EXPECT_EQ(index.FindObjectByName("boat"), nullptr);
  EXPECT_NE(index.FindActionByName("jumping"), nullptr);
}

TEST(VideoIndexTest, AccessAggregation) {
  const VideoIndex index = MakeIndex();
  index.objects[0].table.RandomScore(0);
  index.actions[0].table.SortedRow(0);
  const AccessCounter total = index.TotalAccesses();
  EXPECT_EQ(total.random_accesses, 1);
  EXPECT_EQ(total.sorted_accesses, 1);
  index.ResetAccessCounters();
  EXPECT_EQ(index.TotalAccesses().total(), 0);
}

TEST(CatalogTest, SaveLoadRoundTrip) {
  const Catalog catalog(TempDir("vaq_catalog_test"));
  ASSERT_TRUE(catalog.Save("movie_a", MakeIndex()).ok());
  EXPECT_TRUE(catalog.Contains("movie_a"));
  EXPECT_FALSE(catalog.Contains("movie_b"));
  auto loaded = catalog.Load("movie_a");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->video_id, 42);
  EXPECT_EQ(loaded->num_clips, 6);
  ASSERT_EQ(loaded->objects.size(), 1u);
  EXPECT_EQ(loaded->objects[0].type_name, "car");
  EXPECT_EQ(loaded->objects[0].sequences,
            IntervalSet::FromIntervals({Interval(1, 2), Interval(4, 4)}));
  EXPECT_EQ(loaded->objects[0].table.PeekScore(4), 9);
  EXPECT_EQ(loaded->actions[0].table.PeekScore(1), 5);
  EXPECT_EQ(catalog.ListVideos(), std::vector<std::string>{"movie_a"});
}

TEST(CatalogTest, DeleteRemovesVideoAndFiles) {
  const Catalog catalog(TempDir("vaq_catalog_delete"));
  ASSERT_TRUE(catalog.Save("a", MakeIndex()).ok());
  ASSERT_TRUE(catalog.Save("b", MakeIndex()).ok());
  ASSERT_TRUE(catalog.Delete("a").ok());
  EXPECT_FALSE(catalog.Contains("a"));
  EXPECT_TRUE(catalog.Contains("b"));
  EXPECT_EQ(catalog.ListVideos(), std::vector<std::string>{"b"});
  EXPECT_EQ(catalog.Delete("a").code(), StatusCode::kNotFound);
}

TEST(CatalogTest, LoadMissingVideoFails) {
  const Catalog catalog(TempDir("vaq_catalog_empty"));
  EXPECT_EQ(catalog.Load("nope").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(catalog.ListVideos().empty());
}

}  // namespace
}  // namespace storage
}  // namespace vaq
