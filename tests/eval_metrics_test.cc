#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace vaq {
namespace eval {
namespace {

IntervalSet Set(std::vector<Interval> ivs) {
  return IntervalSet::FromIntervals(std::move(ivs));
}

TEST(F1FromCountsTest, ZeroDenominators) {
  const F1Result empty = F1FromCounts(0, 0, 0);
  EXPECT_DOUBLE_EQ(empty.precision, 1.0);
  EXPECT_DOUBLE_EQ(empty.recall, 1.0);
  const F1Result all_fn = F1FromCounts(0, 0, 3);
  EXPECT_DOUBLE_EQ(all_fn.precision, 0.0);
  EXPECT_DOUBLE_EQ(all_fn.recall, 0.0);
  EXPECT_DOUBLE_EQ(all_fn.f1, 0.0);
  const F1Result all_fp = F1FromCounts(0, 3, 0);
  EXPECT_DOUBLE_EQ(all_fp.precision, 0.0);
}

TEST(F1FromCountsTest, BalancedCase) {
  const F1Result r = F1FromCounts(8, 2, 2);
  EXPECT_DOUBLE_EQ(r.precision, 0.8);
  EXPECT_DOUBLE_EQ(r.recall, 0.8);
  EXPECT_DOUBLE_EQ(r.f1, 0.8);
}

TEST(SequenceF1Test, PerfectMatch) {
  const IntervalSet truth = Set({{0, 9}, {20, 29}});
  const F1Result r = SequenceF1(truth, truth, 0.5);
  EXPECT_EQ(r.true_positives, 2);
  EXPECT_EQ(r.false_positives, 0);
  EXPECT_EQ(r.false_negatives, 0);
  EXPECT_DOUBLE_EQ(r.f1, 1.0);
}

TEST(SequenceF1Test, IoUThresholdGoverns) {
  const IntervalSet truth = Set({{0, 9}});
  // [0,6] vs [0,9]: IoU = 7/10.
  EXPECT_DOUBLE_EQ(SequenceF1(Set({{0, 6}}), truth, 0.5).f1, 1.0);
  EXPECT_DOUBLE_EQ(SequenceF1(Set({{0, 6}}), truth, 0.8).f1, 0.0);
  // [0,4] vs [0,9]: IoU = 0.5 exactly (inclusive threshold).
  EXPECT_DOUBLE_EQ(SequenceF1(Set({{0, 4}}), truth, 0.5).f1, 1.0);
  // [0,3] vs [0,9]: IoU = 0.4 < 0.5.
  const F1Result r = SequenceF1(Set({{0, 3}}), truth, 0.5);
  EXPECT_EQ(r.false_positives, 1);
  EXPECT_EQ(r.false_negatives, 1);
}

TEST(SequenceF1Test, FragmentationPenalizedBothWays) {
  // One truth interval split into three short results: all fragments fail
  // IoU 0.5, so 3 FP + 1 FN — the metric the clip-size experiments rely on.
  const IntervalSet truth = Set({{0, 29}});
  const IntervalSet frags = Set({{0, 8}, {11, 19}, {22, 29}});
  const F1Result r = SequenceF1(frags, truth, 0.5);
  EXPECT_EQ(r.true_positives, 0);
  EXPECT_EQ(r.false_positives, 3);
  EXPECT_EQ(r.false_negatives, 1);
}

TEST(SequenceF1Test, EmptySides) {
  // Empty vs empty is a vacuous perfect match.
  EXPECT_DOUBLE_EQ(SequenceF1(Set({}), Set({}), 0.5).f1, 1.0);
  const F1Result no_results = SequenceF1(Set({}), Set({{0, 5}}), 0.5);
  EXPECT_EQ(no_results.false_negatives, 1);
  const F1Result no_truth = SequenceF1(Set({{0, 5}}), Set({}), 0.5);
  EXPECT_EQ(no_truth.false_positives, 1);
}

TEST(FrameLevelF1Test, CountsFrames) {
  const VideoLayout layout(100, 5, 2);  // 10-frame clips.
  // Result clips [0,1] = frames 0..19; truth frames 10..29.
  const F1Result r =
      FrameLevelF1Frames(Set({{0, 1}}), Set({{10, 29}}), layout);
  EXPECT_EQ(r.true_positives, 10);
  EXPECT_EQ(r.false_positives, 10);
  EXPECT_EQ(r.false_negatives, 10);
  EXPECT_NEAR(r.f1, 0.5, 1e-12);
}

TEST(FrameLevelF1Test, ClipTruthVariant) {
  const VideoLayout layout(100, 5, 2);
  const F1Result r = FrameLevelF1(Set({{2, 3}}), Set({{2, 3}}), layout);
  EXPECT_DOUBLE_EQ(r.f1, 1.0);
}

TEST(ResultFprTest, CountsCoveredNegatives) {
  const VideoLayout layout(100, 5, 2);  // 10 clips of 10 frames.
  const IntervalSet truth_frames = Set({{0, 49}});  // Half the video.
  // Result covers clips 4..6 = frames 40..69: 20 frames outside truth.
  const double fpr = ResultFpr(Set({{4, 6}}), truth_frames, layout);
  EXPECT_NEAR(fpr, 20.0 / 50.0, 1e-12);
  EXPECT_DOUBLE_EQ(ResultFpr(Set({}), truth_frames, layout), 0.0);
}

}  // namespace
}  // namespace eval
}  // namespace vaq
