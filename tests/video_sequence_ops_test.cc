#include "video/sequence_ops.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace vaq {
namespace {

IntervalSet Set(std::vector<Interval> ivs) {
  return IntervalSet::FromIntervals(std::move(ivs));
}

TEST(DropShortSequencesTest, FiltersByLength) {
  const IntervalSet in = Set({{0, 0}, {5, 7}, {10, 20}});
  EXPECT_EQ(DropShortSequences(in, 0), in);
  EXPECT_EQ(DropShortSequences(in, 2), Set({{5, 7}, {10, 20}}));
  EXPECT_EQ(DropShortSequences(in, 4), Set({{10, 20}}));
  EXPECT_TRUE(DropShortSequences(in, 100).empty());
}

TEST(MergeGapsTest, BridgesSmallGapsOnly) {
  const IntervalSet in = Set({{0, 2}, {5, 6}, {8, 9}, {30, 31}});
  // Gaps: 2 (0..2 to 5..6), 1 (5..6 to 8..9), 20.
  EXPECT_EQ(MergeGaps(in, 0), in);
  EXPECT_EQ(MergeGaps(in, 1), Set({{0, 2}, {5, 9}, {30, 31}}));
  EXPECT_EQ(MergeGaps(in, 2), Set({{0, 9}, {30, 31}}));
  EXPECT_EQ(MergeGaps(in, 20), Set({{0, 31}}));
  EXPECT_TRUE(MergeGaps(IntervalSet(), 3).empty());
}

TEST(MergeGapsTest, ChainedBridging) {
  // Bridging is transitive left to right: three pieces with 1-gaps all
  // fuse at tolerance 1.
  const IntervalSet in = Set({{0, 0}, {2, 2}, {4, 4}});
  EXPECT_EQ(MergeGaps(in, 1), Set({{0, 4}}));
}

TEST(PadSequencesTest, PadsAndClamps) {
  const IntervalSet in = Set({{0, 1}, {10, 12}, {18, 19}});
  EXPECT_EQ(PadSequences(in, 0, 20), in);
  // Pad 2: [0,3], [8,14], [16,19] — no merges yet.
  EXPECT_EQ(PadSequences(in, 2, 20), Set({{0, 3}, {8, 14}, {16, 19}}));
  // Pad 3: [0,4], [7,15], [15,19] -> last two merge; ends clamp.
  EXPECT_EQ(PadSequences(in, 3, 20), Set({{0, 4}, {7, 19}}));
}

TEST(ClampToWindowTest, CutsAtBothEnds) {
  const IntervalSet in = Set({{0, 5}, {10, 15}, {20, 25}});
  EXPECT_EQ(ClampToWindow(in, Interval(3, 22)),
            Set({{3, 5}, {10, 15}, {20, 22}}));
  EXPECT_TRUE(ClampToWindow(in, Interval(6, 9)).empty());
}

TEST(ToTimeRangesTest, ConvertsClipSpansToSeconds) {
  const VideoLayout layout(3000, 10, 10);  // 100-frame clips.
  const IntervalSet in = Set({{0, 0}, {5, 9}});
  const std::vector<TimeRange> ranges = ToTimeRanges(in, layout, 25.0);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_DOUBLE_EQ(ranges[0].begin_seconds, 0.0);
  EXPECT_DOUBLE_EQ(ranges[0].end_seconds, 4.0);    // 100 frames @ 25fps.
  EXPECT_DOUBLE_EQ(ranges[1].begin_seconds, 20.0);  // Frame 500.
  EXPECT_DOUBLE_EQ(ranges[1].end_seconds, 40.0);    // Frame 1000.
}

TEST(SequenceOpsPropertyTest, OperatorsPreserveCanonicalForm) {
  Rng rng(5);
  for (int round = 0; round < 40; ++round) {
    std::vector<Interval> ivs;
    int64_t cursor = 0;
    while (cursor < 90) {
      const int64_t lo = cursor + 1 + static_cast<int64_t>(rng.UniformInt(4ul));
      const int64_t hi = lo + static_cast<int64_t>(rng.UniformInt(6ul));
      if (hi >= 100) break;
      ivs.push_back(Interval(lo, hi));
      cursor = hi + 1;
    }
    const IntervalSet in = Set(std::move(ivs));
    for (const IntervalSet& out :
         {DropShortSequences(in, 2), MergeGaps(in, 2),
          PadSequences(in, 2, 100), ClampToWindow(in, Interval(10, 80))}) {
      for (size_t i = 0; i < out.size(); ++i) {
        EXPECT_LE(out[i].lo, out[i].hi);
        if (i > 0) {
          EXPECT_GT(out[i].lo, out[i - 1].hi + 1);
        }
      }
    }
    // Containment relations.
    EXPECT_EQ(DropShortSequences(in, 2).Intersect(in),
              DropShortSequences(in, 2));
    EXPECT_EQ(in.Intersect(MergeGaps(in, 3)), in);       // Superset.
    EXPECT_EQ(in.Intersect(PadSequences(in, 2, 100)), in);
  }
}

}  // namespace
}  // namespace vaq
