#include "offline/rvaq.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "offline/baselines.h"
#include "storage/score_table.h"

namespace vaq {
namespace offline {
namespace {

// A random offline instance: three score tables (two objects + action) and
// a set of candidate sequences standing in for the materialized individual
// sequences (every per-type sequence set equals the common one, so
// ComputePq() returns it directly).
struct Instance {
  std::vector<storage::ScoreTable> tables;
  IntervalSet pq;
  QueryTables query;

  Instance(const Instance&) = delete;
  Instance& operator=(const Instance&) = delete;
  Instance() = default;
};

std::unique_ptr<Instance> RandomInstance(uint64_t seed, int64_t num_clips,
                                         bool integer_scores = true) {
  Rng rng(seed);
  auto inst = std::make_unique<Instance>();
  for (int t = 0; t < 3; ++t) {
    std::vector<storage::ScoreTable::Row> rows;
    for (int64_t c = 0; c < num_clips; ++c) {
      const double s = integer_scores
                           ? std::floor(rng.UniformDouble(0, 12))
                           : rng.UniformDouble(0, 12);
      rows.push_back({c, s});
    }
    inst->tables.push_back(
        std::move(storage::ScoreTable::Build(std::move(rows))).value());
  }
  int64_t cursor = 0;
  while (cursor < num_clips - 3) {
    const int64_t lo = cursor + 1 + static_cast<int64_t>(rng.UniformInt(4ul));
    const int64_t hi = lo + 1 + static_cast<int64_t>(rng.UniformInt(5ul));
    if (hi >= num_clips) break;
    inst->pq.Add(Interval(lo, hi));
    cursor = hi + 1;
  }
  inst->query.num_clips = num_clips;
  inst->query.tables = {&inst->tables[0], &inst->tables[1],
                        &inst->tables[2]};
  inst->query.sequences = {&inst->pq, &inst->pq, &inst->pq};
  inst->query.schema.num_objects = 2;
  inst->query.schema.has_action = true;
  inst->query.schema.clauses = {{0}, {1}, {2}};
  return inst;
}

std::vector<double> SortedScores(const TopKResult& result) {
  std::vector<double> out;
  for (const RankedSequence& s : result.top) out.push_back(s.exact_score);
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Correctness: every algorithm returns the same top-K score multiset as the
// brute-force baseline across many random instances (including tied
// scores, which integer tables make frequent).
// ---------------------------------------------------------------------------

class TopKEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TopKEquivalence, AllAlgorithmsAgreeWithBruteForce) {
  PaperScoring scoring;
  for (int round = 0; round < 20; ++round) {
    const uint64_t seed = GetParam() * 1000 + static_cast<uint64_t>(round);
    auto inst = RandomInstance(seed, 30);
    if (inst->pq.size() < 2) continue;
    const int64_t max_k = static_cast<int64_t>(inst->pq.size());
    for (int64_t k = 1; k <= max_k; ++k) {
      const TopKResult expected = PqTraverse(inst->query, scoring, k);
      const TopKResult fa = FaTopK(inst->query, scoring, k);
      EXPECT_EQ(SortedScores(fa), SortedScores(expected))
          << "FA seed=" << seed << " k=" << k;
      RvaqOptions options;
      options.k = k;
      const TopKResult rvaq = Rvaq(&inst->query, &scoring, options).Run();
      EXPECT_EQ(SortedScores(rvaq), SortedScores(expected))
          << "RVAQ seed=" << seed << " k=" << k;
      RvaqOptions no_skip = options;
      no_skip.use_skip = false;
      const TopKResult rvaq_ns =
          Rvaq(&inst->query, &scoring, no_skip).Run();
      EXPECT_EQ(SortedScores(rvaq_ns), SortedScores(expected))
          << "noSkip seed=" << seed << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopKEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(RvaqTest, ContinuousScoresAgreeToo) {
  PaperScoring scoring;
  for (uint64_t seed = 100; seed < 120; ++seed) {
    auto inst = RandomInstance(seed, 40, /*integer_scores=*/false);
    if (inst->pq.size() < 3) continue;
    RvaqOptions options;
    options.k = 2;
    const TopKResult rvaq = Rvaq(&inst->query, &scoring, options).Run();
    const TopKResult expected = PqTraverse(inst->query, scoring, 2);
    ASSERT_EQ(rvaq.top.size(), expected.top.size());
    for (size_t i = 0; i < rvaq.top.size(); ++i) {
      // With continuous scores ties are measure-zero: exact order match.
      EXPECT_EQ(rvaq.top[i].clips, expected.top[i].clips) << "seed=" << seed;
    }
  }
}

TEST(RvaqTest, BoundsBracketExactScores) {
  PaperScoring scoring;
  auto inst = RandomInstance(7, 40, /*integer_scores=*/false);
  RvaqOptions options;
  options.k = 3;
  const TopKResult result = Rvaq(&inst->query, &scoring, options).Run();
  for (const RankedSequence& seq : result.top) {
    ASSERT_TRUE(seq.has_exact);
    EXPECT_LE(seq.lower_bound, seq.exact_score + 1e-9);
    EXPECT_GE(seq.upper_bound, seq.exact_score - 1e-9);
  }
}

TEST(RvaqTest, SkipReducesRandomAccesses) {
  PaperScoring scoring;
  int64_t with_skip = 0;
  int64_t without_skip = 0;
  for (uint64_t seed = 50; seed < 60; ++seed) {
    auto inst = RandomInstance(seed, 60, /*integer_scores=*/false);
    if (static_cast<int64_t>(inst->pq.size()) <= 2) continue;
    RvaqOptions options;
    options.k = 2;
    with_skip += Rvaq(&inst->query, &scoring, options)
                     .Run()
                     .accesses.random_accesses;
    options.use_skip = false;
    without_skip += Rvaq(&inst->query, &scoring, options)
                        .Run()
                        .accesses.random_accesses;
  }
  EXPECT_LT(with_skip, without_skip);
}

TEST(RvaqTest, KLargerThanCandidatesReturnsAll) {
  PaperScoring scoring;
  auto inst = RandomInstance(9, 30);
  RvaqOptions options;
  options.k = 100;
  const TopKResult result = Rvaq(&inst->query, &scoring, options).Run();
  EXPECT_EQ(result.top.size(), inst->pq.size());
  EXPECT_EQ(result.iterations, 0);  // No bound loop needed.
  // Results are sorted by exact score descending.
  for (size_t i = 1; i < result.top.size(); ++i) {
    EXPECT_GE(result.top[i - 1].exact_score, result.top[i].exact_score);
  }
}

TEST(RvaqTest, EmptyPqYieldsNoResults) {
  PaperScoring scoring;
  auto inst = RandomInstance(11, 20);
  IntervalSet empty;
  inst->query.sequences = {&empty, &empty, &empty};
  RvaqOptions options;
  options.k = 3;
  const TopKResult result = Rvaq(&inst->query, &scoring, options).Run();
  EXPECT_TRUE(result.top.empty());
  EXPECT_TRUE(result.pq.empty());
}

TEST(RvaqTest, WithoutExactScoresReturnsCorrectSet) {
  PaperScoring scoring;
  for (uint64_t seed = 200; seed < 210; ++seed) {
    auto inst = RandomInstance(seed, 40, /*integer_scores=*/false);
    if (static_cast<int64_t>(inst->pq.size()) <= 3) continue;
    RvaqOptions options;
    options.k = 3;
    options.exact_scores = false;
    const TopKResult cheap = Rvaq(&inst->query, &scoring, options).Run();
    const TopKResult expected = PqTraverse(inst->query, scoring, 3);
    // Same set of sequences (order may differ without exact scores).
    std::vector<int64_t> a;
    std::vector<int64_t> b;
    for (const auto& s : cheap.top) a.push_back(s.clips.lo);
    for (const auto& s : expected.top) b.push_back(s.clips.lo);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "seed=" << seed;
  }
}

TEST(RvaqTest, OneSidedBoundsAblationStillFindsCorrectSet) {
  PaperScoring scoring;
  for (uint64_t seed = 300; seed < 310; ++seed) {
    auto inst = RandomInstance(seed, 30, /*integer_scores=*/false);
    if (static_cast<int64_t>(inst->pq.size()) <= 2) continue;
    RvaqOptions options;
    options.k = 2;
    options.two_sided_bounds = false;  // The paper's literal bookkeeping.
    const TopKResult one_sided = Rvaq(&inst->query, &scoring, options).Run();
    const TopKResult expected = PqTraverse(inst->query, scoring, 2);
    // One-sided bounds stay loose for clips drained from the opposite
    // cursor, so exactness of the full set is NOT guaranteed (the reason
    // two_sided_bounds is the default). The ablation still returns k
    // sequences and its best sequence matches brute force on these
    // instances.
    ASSERT_EQ(one_sided.top.size(), expected.top.size());
    EXPECT_DOUBLE_EQ(one_sided.top[0].exact_score,
                     expected.top[0].exact_score)
        << "seed=" << seed;
  }
}

TEST(FaTopKTest, StopsBeforeFullScan) {
  PaperScoring scoring;
  auto inst = RandomInstance(13, 200, /*integer_scores=*/false);
  const TopKResult result = FaTopK(inst->query, scoring, 3);
  // FA needs every P_q clip produced but not the whole table.
  EXPECT_LT(result.accesses.sorted_accesses, 3 * 200);
  EXPECT_GT(result.accesses.sorted_accesses, 0);
}

TEST(PqTraverseTest, CostIndependentOfK) {
  PaperScoring scoring;
  auto inst = RandomInstance(17, 100, /*integer_scores=*/false);
  const TopKResult k1 = PqTraverse(inst->query, scoring, 1);
  const TopKResult k5 = PqTraverse(inst->query, scoring, 5);
  EXPECT_EQ(k1.accesses.range_scans, k5.accesses.range_scans);
  EXPECT_EQ(k1.accesses.range_rows, k5.accesses.range_rows);
  EXPECT_EQ(k1.accesses.random_accesses, 0);
  // One range scan per (sequence, table).
  EXPECT_EQ(k1.accesses.range_scans,
            static_cast<int64_t>(inst->pq.size()) * 3);
  EXPECT_EQ(k1.accesses.range_rows, inst->pq.TotalLength() * 3);
}

TEST(QueryViewTest, ComputePqIntersectsAllPredicates) {
  auto inst = RandomInstance(19, 30);
  // Restrict one object's sequences: Pq must shrink accordingly.
  IntervalSet restricted =
      IntervalSet::FromIntervals({inst->pq.intervals().front()});
  inst->query.sequences[0] = &restricted;
  EXPECT_EQ(inst->query.ComputePq(), restricted.Intersect(inst->pq));
}

TEST(QueryViewTest, ClipScoreSourceCachesAndCounts) {
  auto inst = RandomInstance(23, 10);
  PaperScoring scoring;
  ClipScoreSource source(&inst->query, &scoring);
  for (auto* t : inst->query.AllTables()) t->ResetCounter();
  source.Score(4);
  int64_t after_first = 0;
  for (auto* t : inst->query.AllTables()) {
    after_first += t->counter().random_accesses;
  }
  EXPECT_EQ(after_first, 3);  // One random access per table.
  source.Score(4);  // Cached.
  int64_t after_second = 0;
  for (auto* t : inst->query.AllTables()) {
    after_second += t->counter().random_accesses;
  }
  EXPECT_EQ(after_second, 3);
  // Known entries eliminate their table's random access.
  source.NoteKnownEntry(0, 7, inst->tables[0].PeekScore(7));
  source.Score(7);
  int64_t after_third = 0;
  for (auto* t : inst->query.AllTables()) {
    after_third += t->counter().random_accesses;
  }
  EXPECT_EQ(after_third, 5);
}

TEST(QueryViewTest, BoundWithIsMonotoneEnvelope) {
  auto inst = RandomInstance(29, 10);
  PaperScoring scoring;
  ClipScoreSource source(&inst->query, &scoring);
  const std::vector<double> high_fill = {100, 100, 100};
  const std::vector<double> low_fill = {0, 0, 0};
  for (ClipIndex c = 0; c < 10; ++c) {
    const double upper = source.BoundWith(c, high_fill);
    const double lower = source.BoundWith(c, low_fill);
    const double exact = source.Score(c);
    EXPECT_GE(upper, exact);
    EXPECT_LE(lower, exact);
  }
}

TEST(ScoringTest, PaperScoringBehaviour) {
  PaperScoring scoring;
  TableSchema two_obj_act;
  two_obj_act.num_objects = 2;
  two_obj_act.has_action = true;
  EXPECT_DOUBLE_EQ(scoring.ClipScore({2, 3, 4}, two_obj_act), 20.0);
  TableSchema two_obj;
  two_obj.num_objects = 2;
  EXPECT_DOUBLE_EQ(scoring.ClipScore({2, 3}, two_obj), 5.0);
  TableSchema act_only;
  act_only.has_action = true;
  EXPECT_DOUBLE_EQ(scoring.ClipScore({4}, act_only), 4.0);
  EXPECT_DOUBLE_EQ(scoring.Identity(), 0.0);
  EXPECT_DOUBLE_EQ(scoring.Combine(2, 3), 5.0);
  EXPECT_DOUBLE_EQ(scoring.Repeat(2.5, 4), 10.0);
  EXPECT_DOUBLE_EQ(scoring.AggregateTypeScores({1, 2, 3.5}), 6.5);
}

TEST(ScoringTest, CnfScoringBehaviour) {
  CnfScoring scoring;
  TableSchema schema;
  schema.clauses = {{0, 1}, {2}};
  // (2 + 3) * 4 = 20.
  EXPECT_DOUBLE_EQ(scoring.ClipScore({2, 3, 4}, schema), 20.0);
  // Shared-literal clause.
  schema.clauses = {{0}, {0, 1}};
  EXPECT_DOUBLE_EQ(scoring.ClipScore({2, 3}, schema), 2.0 * 5.0);
}

}  // namespace
}  // namespace offline
}  // namespace vaq
