#include "synth/generator.h"

#include <gtest/gtest.h>

#include "synth/scenario.h"

namespace vaq {
namespace synth {
namespace {

ScenarioSpec BasicSpec(uint64_t seed = 5) {
  ScenarioSpec spec;
  spec.name = "test";
  spec.minutes = 10;
  spec.fps = 30;
  spec.seed = seed;
  ActionTrackSpec action;
  action.name = "jumping";
  action.duty = 0.3;
  action.mean_len_frames = 900;
  spec.actions.push_back(action);
  ObjectTrackSpec obj;
  obj.name = "car";
  obj.background_duty = 0.1;
  obj.mean_len_frames = 600;
  obj.coupled_action = "jumping";
  obj.cover_action_prob = 0.9;
  obj.mean_instances = 1.5;
  spec.objects.push_back(obj);
  return spec;
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  Vocabulary v1;
  Vocabulary v2;
  const GroundTruth a = Generate(BasicSpec(), v1);
  const GroundTruth b = Generate(BasicSpec(), v2);
  ASSERT_EQ(a.objects().size(), b.objects().size());
  EXPECT_EQ(a.ObjectFrames(0), b.ObjectFrames(0));
  EXPECT_EQ(a.ActionFrames(0), b.ActionFrames(0));
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  Vocabulary v1;
  Vocabulary v2;
  const GroundTruth a = Generate(BasicSpec(1), v1);
  const GroundTruth b = Generate(BasicSpec(2), v2);
  EXPECT_FALSE(a.ActionFrames(0) == b.ActionFrames(0));
}

TEST(GeneratorTest, ActionDutyApproximatelyMet) {
  Vocabulary vocab;
  ScenarioSpec spec = BasicSpec();
  spec.minutes = 60;  // Long video for a tight estimate.
  const GroundTruth truth = Generate(spec, vocab);
  const double duty = static_cast<double>(truth.ActionFrames(0).TotalLength()) /
                      static_cast<double>(spec.NumFrames());
  EXPECT_NEAR(duty, 0.3, 0.08);
}

TEST(GeneratorTest, CouplingCoversActionOccurrences) {
  Vocabulary vocab;
  const GroundTruth truth = Generate(BasicSpec(), vocab);
  const IntervalSet& action = truth.ActionFrames(0);
  const IntervalSet& object = truth.ObjectFrames(0);
  // With cover probability 0.9, most action mass is covered by the object.
  const double covered =
      static_cast<double>(action.Intersect(object).TotalLength()) /
      static_cast<double>(action.TotalLength());
  EXPECT_GT(covered, 0.6);
}

TEST(GeneratorTest, InstancesWithinBoundsAndCoverPresence) {
  Vocabulary vocab;
  const GroundTruth truth = Generate(BasicSpec(), vocab);
  const ObjectTruth& obj = truth.objects().front();
  ASSERT_FALSE(obj.instances.empty());
  IntervalSet instance_union;
  std::vector<Interval> all;
  for (const TruthInstance& inst : obj.instances) {
    EXPECT_FALSE(inst.frames.empty());
    all.push_back(inst.frames);
  }
  instance_union = IntervalSet::FromIntervals(all);
  EXPECT_EQ(instance_union, obj.frames);  // Union of instances = presence.
  // Instance ids unique.
  std::vector<int64_t> ids;
  for (const TruthInstance& inst : obj.instances) ids.push_back(inst.instance_id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(GeneratorTest, DriftProfileShiftsMass) {
  Vocabulary vocab;
  ScenarioSpec spec = BasicSpec();
  spec.minutes = 60;
  spec.objects[0].coupled_action.clear();
  spec.objects[0].cover_action_prob = 0;
  spec.objects[0].background_duty = 0.1;
  spec.objects[0].drift.multipliers = {0.2, 4.0};  // Sparse half, dense half.
  const GroundTruth truth = Generate(spec, vocab);
  const int64_t mid = spec.NumFrames() / 2;
  const IntervalSet first_half = truth.ObjectFrames(0).Intersect(
      IntervalSet::FromIntervals({Interval(0, mid - 1)}));
  const IntervalSet second_half = truth.ObjectFrames(0).Intersect(
      IntervalSet::FromIntervals({Interval(mid, spec.NumFrames() - 1)}));
  EXPECT_GT(second_half.TotalLength(), 3 * first_half.TotalLength());
}

TEST(DriftProfileTest, AtSelectsSegments) {
  DriftProfile drift;
  EXPECT_DOUBLE_EQ(drift.At(50, 100), 1.0);  // Flat by default.
  drift.multipliers = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(drift.At(0, 99), 1.0);
  EXPECT_DOUBLE_EQ(drift.At(40, 99), 2.0);
  EXPECT_DOUBLE_EQ(drift.At(98, 99), 3.0);
}

TEST(GroundTruthTest, QueryTruthIsIntersection) {
  Vocabulary vocab;
  ScenarioSpec spec = BasicSpec();
  const GroundTruth truth = Generate(spec, vocab);
  QuerySpec query;
  query.action = 0;
  query.objects = {0};
  const IntervalSet expect =
      truth.ActionFrames(0).Intersect(truth.ObjectFrames(0));
  EXPECT_EQ(truth.QueryTruthFrames(query), expect);
  // Clip truth covers the frame truth.
  const IntervalSet clips = truth.QueryTruthClips(query);
  EXPECT_EQ(truth.layout().ClipsToFrames(clips).Intersect(expect), expect);
}

TEST(GroundTruthTest, ActionShotsRequireMajorityCoverage) {
  GroundTruth truth(1, VideoLayout(100, 10, 2));
  ActionTruth at;
  at.type = 0;
  // Covers 6 frames of shot 0 (>=50%) and 4 frames of shot 1 (<50%).
  at.frames = IntervalSet::FromIntervals({Interval(4, 13)});
  truth.AddActionTruth(at);
  const IntervalSet shots = truth.ActionShots(0);
  ASSERT_EQ(shots.size(), 1u);
  EXPECT_EQ(shots[0], Interval(0, 0));
}

TEST(ScenarioTest, YouTubePresetsMatchTableOne) {
  // Spot-check lengths (Table 1) and query contents for a few presets.
  const Scenario q1 = Scenario::YouTube(1);
  EXPECT_EQ(q1.spec().minutes, 57);
  EXPECT_EQ(q1.query().num_object_predicates(), 2);
  EXPECT_TRUE(q1.query().has_action());
  EXPECT_NE(q1.vocab().FindObjectType("faucet"), kInvalidTypeId);
  EXPECT_NE(q1.vocab().FindObjectType("oven"), kInvalidTypeId);
  EXPECT_NE(q1.vocab().FindActionType("washing dishes"), kInvalidTypeId);

  const Scenario q12 = Scenario::YouTube(12);
  EXPECT_EQ(q12.spec().minutes, 156);
  EXPECT_EQ(q12.query().num_object_predicates(), 1);
  EXPECT_NE(q12.vocab().FindObjectType("sunglasses"), kInvalidTypeId);
}

TEST(ScenarioTest, MoviePresetsMatchTableTwo) {
  const Scenario coffee = Scenario::Movie(MovieId::kCoffeeAndCigarettes);
  EXPECT_EQ(coffee.spec().minutes, 96);
  EXPECT_NE(coffee.vocab().FindActionType("smoking"), kInvalidTypeId);
  EXPECT_NE(coffee.vocab().FindObjectType("wine glass"), kInvalidTypeId);
  const Scenario titanic = Scenario::Movie(MovieId::kTitanic);
  EXPECT_EQ(titanic.spec().minutes, 194);
  EXPECT_NE(titanic.vocab().FindActionType("kissing"), kInvalidTypeId);
}

TEST(ScenarioTest, TruthHasPluralResultSequences) {
  for (int i : {1, 2, 5}) {
    const Scenario sc = Scenario::YouTube(i);
    const IntervalSet truth = sc.TruthClips();
    EXPECT_GE(truth.size(), 3u) << "q" << i;
    EXPECT_GT(truth.TotalLength(), 20) << "q" << i;
  }
}

TEST(ScenarioTest, WithClipFramesKeepsFrameLevelTruth) {
  const Scenario base = Scenario::YouTube(2);
  const Scenario resized = base.WithClipFrames(200);
  // Frame-level ground truth is unchanged; only the segmentation differs.
  EXPECT_EQ(base.truth().QueryTruthFrames(base.query()),
            resized.truth().QueryTruthFrames(resized.query()));
  EXPECT_EQ(resized.layout().frames_per_clip(), 200);
}

TEST(ScenarioTest, WithQuerySwapsPredicates) {
  const Scenario base = Scenario::YouTube(2);
  auto modified = base.WithQuery("blowing leaves", {"person"});
  ASSERT_TRUE(modified.ok());
  EXPECT_EQ(modified->query().num_object_predicates(), 1);
  EXPECT_FALSE(base.WithQuery("no such action", {}).ok());
}

TEST(ScenarioTest, DistractorTypesAreRegistered) {
  const Scenario sc = Scenario::YouTube(3);
  EXPECT_NE(sc.vocab().FindObjectType("person"), kInvalidTypeId);
  EXPECT_GE(sc.vocab().num_object_types(), 5);
}

}  // namespace
}  // namespace synth
}  // namespace vaq
