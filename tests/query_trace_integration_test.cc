// End-to-end acceptance for per-query observability: EXPLAIN ANALYZE
// profiles are byte-identical across repeated seeded runs, the serve
// layer's per-query traces and Chrome export are byte-identical at any
// thread count, the cluster coordinator's scatter–gather trace is
// repeat-identical per shard count, per-query model-call attribution
// reconciles exactly with the process-wide vaq_model_calls_total
// counter, and vaq_query_latency_ms percentiles are exported from both
// the serve and cluster paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/coordinator.h"
#include "detect/models.h"
#include "fault/fault_plan.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/query_trace.h"
#include "obs/trace.h"
#include "offline/ingest.h"
#include "offline/repository.h"
#include "offline/scoring.h"
#include "query/session.h"
#include "serve/server.h"
#include "tools/pipeline_setup.h"

namespace vaq {
namespace {

constexpr uint64_t kSeed = 7;
constexpr int kStreams = 4;
constexpr int kQueries = 24;

storage::VideoIndex IngestDemoVideo(int index) {
  synth::Scenario scenario = tools::DemoScenario(index);
  detect::ModelBundle models = detect::ModelBundle::MaskRcnnI3d(
      scenario.truth(), kSeed + static_cast<uint64_t>(index));
  offline::PaperScoring scoring;
  offline::Ingestor ingestor(&scenario.vocab(), &scoring,
                             offline::IngestOptions{});
  auto result = ingestor.Ingest(scenario.truth(), models);
  VAQ_CHECK_OK(result.status());
  return std::move(*result);
}

// --- EXPLAIN ANALYZE -----------------------------------------------------

TEST(ExplainAnalyze, OnlineProfileIsRepeatIdentical) {
  query::Session session;
  session.RegisterStream("demoStream", tools::DemoScenario(0), kSeed);
  const std::string sql =
      "EXPLAIN ANALYZE SELECT MERGE(clipID) AS Sequence "
      "FROM (PROCESS demoStream PRODUCE clipID, obj USING ObjectDetector, "
      "act USING ActionRecognizer) "
      "WHERE act='running' AND obj.include('dog')";
  auto first = session.Execute(sql);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(first->online);
  ASSERT_FALSE(first->profile_text.empty());
  EXPECT_EQ(first->profile_text.rfind("explain  self=", 0), 0u)
      << first->profile_text;
  EXPECT_NE(first->profile_text.find("online"), std::string::npos);
  EXPECT_NE(first->profile_text.find("detector_inferences="),
            std::string::npos)
      << first->profile_text;
  // Deterministic: a second execution renders the same bytes.
  auto second = session.Execute(sql);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(first->profile_text, second->profile_text);
  // The plain statement executes identically but carries no profile.
  auto plain = session.Execute(sql.substr(std::string("EXPLAIN ANALYZE ").size()));
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_TRUE(plain->profile_text.empty());
  EXPECT_EQ(plain->sequences.ToString(), first->sequences.ToString());
}

TEST(ExplainAnalyze, RankedProfileIsRepeatIdentical) {
  query::Session session;
  session.RegisterRepository("demoRepo", IngestDemoVideo(0));
  const std::string sql =
      "EXPLAIN ANALYZE SELECT MERGE(clipID) AS Sequence, RANK(act, obj) "
      "FROM (PROCESS demoRepo PRODUCE clipID, obj USING ObjectTracker, "
      "act USING ActionRecognizer) "
      "WHERE act='running' AND obj.include('dog') "
      "ORDER BY RANK(act, obj) LIMIT 3";
  auto first = session.Execute(sql);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->online);
  ASSERT_FALSE(first->profile_text.empty());
  EXPECT_NE(first->profile_text.find("ranked"), std::string::npos);
  EXPECT_NE(first->profile_text.find("seeks="), std::string::npos)
      << first->profile_text;
  auto second = session.Execute(sql);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(first->profile_text, second->profile_text);
}

// --- Serve: thread-count invariance and latency export -------------------

struct ServeTraceRun {
  std::string profiles;     // Per-query profile trees, id order.
  std::string chrome_json;  // Session trace + query traces.
  int64_t model_call_registry_delta = 0;
  int64_t model_call_trace_sum = 0;
  double latency_p50 = 0.0;
  double latency_p999 = 0.0;
};

int64_t SumModelCallCounter() {
  int64_t sum = 0;
  for (const obs::Snapshot::Entry& entry :
       obs::MetricRegistry::Global().TakeSnapshot().entries) {
    if (entry.name == "vaq_model_calls_total") sum += entry.counter_value;
  }
  return sum;
}

ServeTraceRun RunServeTraced(int threads) {
  obs::MetricRegistry::Global().Reset();
  obs::Tracer::Global().SetClock([] { return 0.0; });
  const fault::FaultPlan plan(tools::DemoFaultSpec(), kSeed);
  serve::ServeOptions options;
  options.threads = threads;
  options.queue_capacity = kQueries;
  options.share_detection_cache = true;
  options.fault_plan = &plan;
  options.trace_queries = true;
  serve::Server server(options);
  VAQ_CHECK_OK(tools::RegisterDemoSources(&server, kStreams,
                                          /*with_repository=*/true, kSeed));
  const int64_t calls_before = SumModelCallCounter();
  for (const std::string& sql :
       tools::DemoWorkload(kStreams, kQueries, /*with_repository=*/true)) {
    VAQ_CHECK_OK(server.Submit(sql).status());
  }
  const std::vector<serve::ServedQuery> results = server.Drain();
  obs::Tracer::Global().SetClock(nullptr);

  ServeTraceRun run;
  run.model_call_registry_delta = SumModelCallCounter() - calls_before;
  std::vector<const obs::QueryTrace*> traces;
  if (server.session_trace() != nullptr) {
    traces.push_back(server.session_trace());
  }
  for (const serve::ServedQuery& q : results) {  // Drain sorts by id.
    EXPECT_NE(q.trace, nullptr) << "query " << q.id << " lost its trace";
    if (q.trace == nullptr) continue;
    traces.push_back(q.trace.get());
    run.profiles += q.trace->RenderProfile();
    for (const obs::QueryTrace::Node& node : q.trace->snapshot()) {
      for (const auto& [key, value] : node.stats) {
        if (key.rfind("model_calls_", 0) == 0) {
          run.model_call_trace_sum += value;
        }
      }
    }
  }
  run.chrome_json = obs::ExportChromeTrace(traces);
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  run.latency_p50 =
      registry
          .GetGauge("vaq_query_latency_ms",
                    {{"path", "serve"}, {"quantile", "0.5"}})
          ->value();
  run.latency_p999 =
      registry
          .GetGauge("vaq_query_latency_ms",
                    {{"path", "serve"}, {"quantile", "0.999"}})
          ->value();
  return run;
}

TEST(ServeTrace, ProfilesAndChromeExportByteIdenticalAcrossThreadCounts) {
  const ServeTraceRun inline_run = RunServeTraced(/*threads=*/0);
  const ServeTraceRun pooled_run = RunServeTraced(/*threads=*/8);
  ASSERT_FALSE(inline_run.profiles.empty());
  EXPECT_NE(inline_run.profiles.find("execute"), std::string::npos);
  EXPECT_EQ(inline_run.profiles, pooled_run.profiles);
  EXPECT_EQ(obs::JsonLintError(inline_run.chrome_json), "");
  EXPECT_EQ(inline_run.chrome_json, pooled_run.chrome_json);
  // The latency gauges are a pure function of the per-query sample
  // multiset, so they match across thread counts too. With the shared
  // detection cache on, most queries cost 0 simulated ms (cache hits),
  // so p50 is legitimately 0 — the tail percentile carries the signal.
  EXPECT_GT(inline_run.latency_p999, 0.0);
  EXPECT_GE(inline_run.latency_p999, inline_run.latency_p50);
  EXPECT_DOUBLE_EQ(inline_run.latency_p50, pooled_run.latency_p50);
  EXPECT_DOUBLE_EQ(inline_run.latency_p999, pooled_run.latency_p999);
}

TEST(ServeTrace, PerQueryModelCallsReconcileWithTheRegistry) {
  const ServeTraceRun run = RunServeTraced(/*threads=*/0);
  EXPECT_GT(run.model_call_trace_sum, 0);
  EXPECT_EQ(run.model_call_trace_sum, run.model_call_registry_delta);
}

// --- Cluster: repeat identity per shard count and latency export ---------

const offline::Repository& ClusterRepository() {
  static const offline::Repository* const repo = [] {
    auto* r = new offline::Repository();
    for (int i = 0; i < 2; ++i) {
      r->Add("vid" + std::to_string(i), IngestDemoVideo(i));
    }
    return r;
  }();
  return *repo;
}

struct ClusterTraceRun {
  std::string profile;
  std::string chrome_json;
  double latency_p99 = 0.0;
};

ClusterTraceRun RunClusterTraced(int shards) {
  obs::MetricRegistry::Global().Reset();
  obs::Tracer::Global().SetClock([] { return 0.0; });
  offline::PaperScoring scoring;
  offline::RvaqOptions rvaq;
  rvaq.k = 3;
  cluster::ClusterOptions options;
  options.num_shards = shards;
  cluster::Coordinator coordinator(&ClusterRepository(), options);
  obs::QueryTrace trace("cluster_q");
  auto result = coordinator.TopK("running", {"dog"}, scoring, rvaq,
                                 obs::QueryContext{&trace, 0});
  obs::Tracer::Global().SetClock(nullptr);
  VAQ_CHECK_OK(result.status());
  ClusterTraceRun run;
  run.profile = trace.RenderProfile();
  run.chrome_json = obs::ExportChromeTrace({&trace});
  run.latency_p99 = obs::MetricRegistry::Global()
                        .GetGauge("vaq_query_latency_ms",
                                  {{"path", "cluster"}, {"quantile", "0.99"}})
                        ->value();
  return run;
}

TEST(ClusterTrace, ProfileRepeatIdenticalPerShardCount) {
  for (const int shards : {1, 8}) {
    const ClusterTraceRun first = RunClusterTraced(shards);
    const ClusterTraceRun second = RunClusterTraced(shards);
    ASSERT_FALSE(first.profile.empty());
    EXPECT_NE(first.profile.find("scatter_gather"), std::string::npos)
        << first.profile;
    EXPECT_NE(first.profile.find("shard0"), std::string::npos)
        << first.profile;
    EXPECT_EQ(first.profile, second.profile) << "shards=" << shards;
    EXPECT_EQ(obs::JsonLintError(first.chrome_json), "");
    EXPECT_EQ(first.chrome_json, second.chrome_json) << "shards=" << shards;
    EXPECT_GT(first.latency_p99, 0.0) << "shards=" << shards;
  }
}

}  // namespace
}  // namespace vaq
