// Crash-recovery determinism for the durable standing-query runtime.
//
// The central claim (ISSUE: checkpoint/recovery subsystem): killing the
// serving process at an arbitrary clip boundary, restoring the newest
// valid snapshot and replaying the WAL yields results and logical
// metrics *byte-identical* to a run that was never interrupted — with
// faults injected, with the shared detection cache on or off, through
// MemStore or an on-disk DirStore, and even when the newest snapshot is
// itself corrupt (fallback to the previous one plus a longer replay).
// Runs under ThreadSanitizer and the VAQ_SANITIZE configuration.
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/recovery.h"
#include "ckpt/serializer.h"
#include "ckpt/store.h"
#include "fault/fault_plan.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serve/server.h"
#include "tools/pipeline_setup.h"

namespace vaq {
namespace serve {
namespace {

// 40 advances over 2 streams with snapshots every 7 clips: snapshots
// land after advances 7, 14, 21, 28 and 35, so the crash points below
// exercise cold start + WAL only (3), one snapshot + WAL (10), and
// multiple snapshots with an older one retained for fallback (17).
constexpr int64_t kTotalAdvances = 40;
constexpr int64_t kSnapshotEvery = 7;

tools::StandingDemoSpec DemoSpec(ckpt::Store* store,
                                 const fault::FaultPlan* plan,
                                 bool share_cache) {
  tools::StandingDemoSpec spec;
  spec.num_streams = 2;
  spec.num_queries = 6;  // Conjunctive, object-only, CNF and action-only.
  spec.seed = 11;
  spec.share_detection_cache = share_cache;
  spec.fault_plan = plan;
  spec.checkpoint_store = store;
  spec.snapshot_every_clips = kSnapshotEvery;
  return spec;
}

struct RunResult {
  std::vector<std::string> described;
  std::string metrics;  // Prometheus text, every family except vaq_ckpt_*.
};

// Everything except the durability subsystem's own counters must match
// byte for byte; vaq_ckpt_* legitimately differs (the recovered process
// has recoveries/corruption counts the uninterrupted one does not).
std::string NonCkptMetrics() {
  const obs::Snapshot snap = obs::MetricRegistry::Global().TakeSnapshot();
  obs::Snapshot filtered;
  for (const obs::Snapshot::Entry& entry : snap.entries) {
    if (entry.name.rfind("vaq_ckpt_", 0) != 0) {
      filtered.entries.push_back(entry);
    }
  }
  return obs::ExportPrometheus(filtered);
}

RunResult Collect(Server* server) {
  RunResult out;
  for (const ServedQuery& q : server->FinishStanding()) {
    out.described.push_back(DescribeServedQuery(q));
  }
  out.metrics = NonCkptMetrics();
  return out;
}

// The never-interrupted baseline, checkpoints enabled (snapshotting must
// not perturb logical results either).
StatusOr<RunResult> RunUninterrupted(const tools::StandingDemoSpec& spec) {
  obs::MetricRegistry::Global().Reset();
  VAQ_ASSIGN_OR_RETURN(std::unique_ptr<Server> server,
                       tools::MakeStandingDemoServer(spec));
  VAQ_RETURN_IF_ERROR(tools::AdmitStandingDemoWorkload(server.get(), spec));
  VAQ_RETURN_IF_ERROR(
      tools::DriveStandingDemo(server.get(), spec, kTotalAdvances));
  return Collect(server.get());
}

// Runs until `crash_after` advances, then abandons the server — no
// Finish, no final snapshot — exactly what a killed process leaves in
// the store.
Status RunUntilCrash(const tools::StandingDemoSpec& spec,
                     int64_t crash_after) {
  obs::MetricRegistry::Global().Reset();
  VAQ_ASSIGN_OR_RETURN(std::unique_ptr<Server> server,
                       tools::MakeStandingDemoServer(spec));
  VAQ_RETURN_IF_ERROR(tools::AdmitStandingDemoWorkload(server.get(), spec));
  VAQ_RETURN_IF_ERROR(
      tools::DriveStandingDemo(server.get(), spec, crash_after));
  return Status::OK();
}

struct Recovered {
  ckpt::RecoveryReport report;
  RunResult run;
};

// The restarted process: fresh registry (in-memory state died with the
// old process), fresh server, Recover(), resume to the end.
StatusOr<Recovered> RecoverAndFinish(const tools::StandingDemoSpec& spec) {
  obs::MetricRegistry::Global().Reset();
  VAQ_ASSIGN_OR_RETURN(std::unique_ptr<Server> server,
                       tools::MakeStandingDemoServer(spec));
  VAQ_ASSIGN_OR_RETURN(ckpt::RecoveryReport report, server->Recover());
  VAQ_RETURN_IF_ERROR(
      tools::DriveStandingDemo(server.get(), spec, kTotalAdvances));
  Recovered out;
  out.report = report;
  out.run = Collect(server.get());
  return out;
}

int64_t CounterValue(const char* name) {
  return obs::MetricRegistry::Global().GetCounter(name, {})->value();
}

TEST(CkptRecoveryTest, RecoveredRunsAreByteIdenticalAtEveryCrashPoint) {
  const fault::FaultPlan plan(tools::DemoFaultSpec(), /*seed=*/21);
  ckpt::MemStore ref_store;
  const auto reference = RunUninterrupted(DemoSpec(&ref_store, &plan, true));
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_EQ(reference.value().described.size(), 6u);

  struct CrashPoint {
    int64_t advances;
    std::string snapshot;  // Expected restore source; empty = cold start.
  };
  const CrashPoint points[] = {
      {3, ""},                      // Before any snapshot: WAL-only replay.
      {10, ckpt::SnapshotName(0)},  // One snapshot plus a WAL suffix.
      {17, ckpt::SnapshotName(1)},  // Newest of two retained snapshots.
  };
  for (const CrashPoint& point : points) {
    SCOPED_TRACE("crash after " + std::to_string(point.advances) +
                 " advances");
    ckpt::MemStore store;
    const tools::StandingDemoSpec spec = DemoSpec(&store, &plan, true);
    ASSERT_TRUE(RunUntilCrash(spec, point.advances).ok());
    const auto recovered = RecoverAndFinish(spec);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    EXPECT_EQ(recovered.value().report.snapshot, point.snapshot);
    EXPECT_EQ(recovered.value().report.snapshots_rejected, 0);
    EXPECT_GT(recovered.value().report.wal_records, 0);
    EXPECT_EQ(recovered.value().report.wal_bytes_dropped, 0);
    EXPECT_EQ(recovered.value().run.described, reference.value().described);
    EXPECT_EQ(recovered.value().run.metrics, reference.value().metrics);
    EXPECT_EQ(CounterValue("vaq_ckpt_recoveries_total"), 1);
    EXPECT_EQ(CounterValue("vaq_ckpt_corrupt_total"), 0);
  }
}

TEST(CkptRecoveryTest, RecoveredRunsAreByteIdenticalAtAllCrashPoints) {
  // The full sweep: crash after EVERY advance count in (0, kTotal), not
  // just the three representative points above — every WAL offset,
  // every snapshot boundary, every boundary±1. ~40 recoveries of an
  // inference-heavy session is too slow for the sanitizer configs, and
  // the representative points already run there, so the sweep is
  // plain-config only.
#ifdef VAQ_UNDER_SANITIZER
  GTEST_SKIP() << "full crash-point sweep runs in the plain config only";
#else
  const fault::FaultPlan plan(tools::DemoFaultSpec(), /*seed=*/21);
  ckpt::MemStore ref_store;
  const auto reference = RunUninterrupted(DemoSpec(&ref_store, &plan, true));
  ASSERT_TRUE(reference.ok()) << reference.status();

  for (int64_t crash = 1; crash < kTotalAdvances; ++crash) {
    SCOPED_TRACE("crash after " + std::to_string(crash) + " advances");
    ckpt::MemStore store;
    const tools::StandingDemoSpec spec = DemoSpec(&store, &plan, true);
    ASSERT_TRUE(RunUntilCrash(spec, crash).ok());
    const auto recovered = RecoverAndFinish(spec);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    // Retention keeps the newest snapshot and its predecessor; the
    // restore source is always the newest one taken before the crash.
    const int64_t snapshots_taken = crash / kSnapshotEvery;
    EXPECT_EQ(recovered.value().report.snapshot,
              snapshots_taken == 0
                  ? ""
                  : ckpt::SnapshotName(snapshots_taken - 1));
    EXPECT_EQ(recovered.value().report.snapshots_rejected, 0);
    EXPECT_EQ(recovered.value().report.wal_bytes_dropped, 0);
    EXPECT_EQ(recovered.value().run.described, reference.value().described);
    EXPECT_EQ(recovered.value().run.metrics, reference.value().metrics);
    EXPECT_EQ(CounterValue("vaq_ckpt_recoveries_total"), 1);
    EXPECT_EQ(CounterValue("vaq_ckpt_corrupt_total"), 0);
  }
#endif
}

TEST(CkptRecoveryTest, PrivateBundleRecoveryIsByteIdentical) {
  // Same claim with the shared detection cache off: per-query bundles
  // carry their own cumulative model stats through the snapshot.
  const fault::FaultPlan plan(tools::DemoFaultSpec(), /*seed=*/21);
  ckpt::MemStore ref_store;
  const auto reference = RunUninterrupted(DemoSpec(&ref_store, &plan, false));
  ASSERT_TRUE(reference.ok()) << reference.status();

  ckpt::MemStore store;
  const tools::StandingDemoSpec spec = DemoSpec(&store, &plan, false);
  ASSERT_TRUE(RunUntilCrash(spec, 10).ok());
  const auto recovered = RecoverAndFinish(spec);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered.value().run.described, reference.value().described);
  EXPECT_EQ(recovered.value().run.metrics, reference.value().metrics);
}

TEST(CkptRecoveryTest, DirStoreRecoverySurvivesProcessReopen) {
  // End to end through the filesystem: the "process" that crashes and
  // the one that recovers hold distinct DirStore instances on the same
  // directory, the way two vaqctl invocations would.
  const fault::FaultPlan plan(tools::DemoFaultSpec(), /*seed=*/21);
  ckpt::MemStore ref_store;
  const auto reference = RunUninterrupted(DemoSpec(&ref_store, &plan, true));
  ASSERT_TRUE(reference.ok()) << reference.status();

  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "ckpt_recovery_dirstore";
  std::filesystem::remove_all(dir);
  {
    ckpt::DirStore store(dir.string());
    ASSERT_TRUE(RunUntilCrash(DemoSpec(&store, &plan, true), 17).ok());
  }
  ckpt::DirStore reopened(dir.string());
  const auto recovered = RecoverAndFinish(DemoSpec(&reopened, &plan, true));
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered.value().report.snapshot, ckpt::SnapshotName(1));
  EXPECT_EQ(recovered.value().run.described, reference.value().described);
  EXPECT_EQ(recovered.value().run.metrics, reference.value().metrics);
  std::filesystem::remove_all(dir);
}

TEST(CkptRecoveryTest, TornWalTailIsDroppedAndRecoveryStillExact) {
  // A crash mid-append leaves a partial record at the end of the newest
  // WAL segment. Replay must stop there, count the dropped bytes, and
  // the resumed run must still match the reference — the torn tail never
  // held committed work.
  const fault::FaultPlan plan(tools::DemoFaultSpec(), /*seed=*/21);
  ckpt::MemStore ref_store;
  const auto reference = RunUninterrupted(DemoSpec(&ref_store, &plan, true));
  ASSERT_TRUE(reference.ok()) << reference.status();

  ckpt::MemStore store;
  const tools::StandingDemoSpec spec = DemoSpec(&store, &plan, true);
  ASSERT_TRUE(RunUntilCrash(spec, 10).ok());
  // Frame a record, then append only its first five bytes.
  std::string framed;
  ckpt::AppendRecord(&framed, /*tag=*/2, "never committed");
  ASSERT_TRUE(store.Append(ckpt::WalName(1), framed.substr(0, 5)).ok());

  const auto recovered = RecoverAndFinish(spec);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered.value().report.wal_bytes_dropped, 5);
  EXPECT_EQ(recovered.value().run.described, reference.value().described);
  EXPECT_EQ(recovered.value().run.metrics, reference.value().metrics);
}

// --- Snapshot corruption (satellite: fault::FaultPlan checkpoint hooks) --

bool PlanCorrupts(const fault::FaultPlan& plan, const std::string& name) {
  const int64_t entry = static_cast<int64_t>(
      ckpt::Fnv1a64(name.data(), name.size()) >> 1);
  return plan.CheckpointCorrupts(entry);
}

// Corrupt-position far enough into the blob that the flip cannot land in
// the 12-byte header (where it could read as a plausible older version
// instead of failing a record checksum). Snapshots are KBs, so > 5% of
// the blob is comfortably past byte 12.
bool CorruptsBody(const fault::FaultPlan& plan, const std::string& name) {
  if (!PlanCorrupts(plan, name)) return false;
  const int64_t entry = static_cast<int64_t>(
      ckpt::Fnv1a64(name.data(), name.size()) >> 1);
  return plan.CheckpointCorruptPosition(entry) > 0.05;
}

// Deterministically picks a fault seed matching `pred` — how the tests
// aim read corruption at specific store entries.
uint64_t FindCorruptionSeed(
    const std::function<bool(const fault::FaultPlan&)>& pred) {
  fault::FaultSpec spec;
  spec.checkpoint_corrupt_rate = 0.5;
  for (uint64_t seed = 1; seed <= 5000; ++seed) {
    const fault::FaultPlan plan(spec, seed);
    if (pred(plan)) return seed;
  }
  return 0;
}

TEST(CkptRecoveryTest, CorruptNewestSnapshotFallsBackToPrevious) {
  // Crash after 17 advances leaves snap-0, snap-1, wal-1, wal-2. A plan
  // that corrupts exactly snap-1 must fall back to snap-0 and replay
  // both WAL segments — and still reproduce the reference run exactly.
  const uint64_t seed = FindCorruptionSeed([](const fault::FaultPlan& p) {
    return CorruptsBody(p, ckpt::SnapshotName(1)) &&
           !PlanCorrupts(p, ckpt::SnapshotName(0)) &&
           !PlanCorrupts(p, ckpt::WalName(1)) &&
           !PlanCorrupts(p, ckpt::WalName(2));
  });
  ASSERT_NE(seed, 0u);
  fault::FaultSpec fault_spec;
  fault_spec.checkpoint_corrupt_rate = 0.5;
  const fault::FaultPlan plan(fault_spec, seed);

  ckpt::MemStore ref_store;
  const auto reference = RunUninterrupted(DemoSpec(&ref_store, &plan, true));
  ASSERT_TRUE(reference.ok()) << reference.status();

  ckpt::MemStore store;
  const tools::StandingDemoSpec spec = DemoSpec(&store, &plan, true);
  ASSERT_TRUE(RunUntilCrash(spec, 17).ok());
  const auto recovered = RecoverAndFinish(spec);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered.value().report.snapshot, ckpt::SnapshotName(0));
  EXPECT_EQ(recovered.value().report.snapshots_rejected, 1);
  EXPECT_EQ(CounterValue("vaq_ckpt_corrupt_total"), 1);
  EXPECT_EQ(CounterValue("vaq_ckpt_recoveries_total"), 1);
  EXPECT_EQ(recovered.value().run.described, reference.value().described);
  EXPECT_EQ(recovered.value().run.metrics, reference.value().metrics);
}

TEST(CkptRecoveryTest, EverySnapshotCorruptIsAnError) {
  const uint64_t seed = FindCorruptionSeed([](const fault::FaultPlan& p) {
    return CorruptsBody(p, ckpt::SnapshotName(0)) &&
           CorruptsBody(p, ckpt::SnapshotName(1));
  });
  ASSERT_NE(seed, 0u);
  fault::FaultSpec fault_spec;
  fault_spec.checkpoint_corrupt_rate = 0.5;
  const fault::FaultPlan plan(fault_spec, seed);

  ckpt::MemStore store;
  const tools::StandingDemoSpec spec = DemoSpec(&store, &plan, true);
  ASSERT_TRUE(RunUntilCrash(spec, 17).ok());

  obs::MetricRegistry::Global().Reset();
  auto server = tools::MakeStandingDemoServer(spec);
  ASSERT_TRUE(server.ok());
  const auto report = server.value()->Recover();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(CounterValue("vaq_ckpt_corrupt_total"), 2);
}

TEST(CkptRecoveryTest, RecoverGuardsItsPreconditions) {
  // No store configured.
  {
    tools::StandingDemoSpec spec = DemoSpec(nullptr, nullptr, true);
    auto server = tools::MakeStandingDemoServer(spec);
    ASSERT_TRUE(server.ok());
    EXPECT_EQ(server.value()->Recover().status().code(),
              StatusCode::kFailedPrecondition);
  }
  // Not a fresh server: a query was already admitted.
  {
    ckpt::MemStore store;
    tools::StandingDemoSpec spec = DemoSpec(&store, nullptr, true);
    auto server = tools::MakeStandingDemoServer(spec);
    ASSERT_TRUE(server.ok());
    ASSERT_TRUE(tools::AdmitStandingDemoWorkload(server.value().get(), spec)
                    .ok());
    EXPECT_EQ(server.value()->Recover().status().code(),
              StatusCode::kFailedPrecondition);
  }
}

TEST(CkptRecoveryTest, EmptyStoreRecoversToColdStartAndRunsNormally) {
  // `vaqctl recover` on a directory nobody has served into yet: cold
  // start, then the session proceeds as if freshly configured.
  obs::MetricRegistry::Global().Reset();
  ckpt::MemStore store;
  const tools::StandingDemoSpec spec = DemoSpec(&store, nullptr, true);
  auto server = tools::MakeStandingDemoServer(spec);
  ASSERT_TRUE(server.ok());
  const auto report = server.value()->Recover();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report.value().snapshot.empty());
  EXPECT_EQ(report.value().wal_records, 0);
  ASSERT_TRUE(tools::AdmitStandingDemoWorkload(server.value().get(), spec)
                  .ok());
  ASSERT_TRUE(
      tools::DriveStandingDemo(server.value().get(), spec, kTotalAdvances)
          .ok());
  EXPECT_EQ(server.value()->FinishStanding().size(), 6u);
}

}  // namespace
}  // namespace serve
}  // namespace vaq
