// Elastic shard rebalancing determinism: split/merge churn may change
// transport topology, but never what a query returns. The oracle is
// byte-identity — described top lists and the layout-invariant logical
// vaq_* families (cluster::LayoutInvariantMetricPrefixes) must match the
// static layout exactly, before, during and after rebalancing, for the
// same seed.
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/coordinator.h"
#include "detect/models.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "offline/ingest.h"
#include "offline/repository.h"
#include "offline/scoring.h"
#include "tools/pipeline_setup.h"

namespace vaq {
namespace cluster {
namespace {

constexpr int kVideos = 4;
constexpr uint64_t kSeed = 515;
constexpr int64_t kK = 4;

const offline::Repository& DemoRepository() {
  static const offline::Repository* const repo = [] {
    auto* r = new offline::Repository();
    offline::PaperScoring scoring;
    for (int i = 0; i < kVideos; ++i) {
      synth::Scenario scenario = tools::DemoScenario(i);
      detect::ModelBundle models = detect::ModelBundle::MaskRcnnI3d(
          scenario.truth(), kSeed + static_cast<uint64_t>(i));
      offline::Ingestor ingestor(&scenario.vocab(), &scoring,
                                 offline::IngestOptions{});
      auto index = ingestor.Ingest(scenario.truth(), models);
      EXPECT_TRUE(index.ok()) << index.status().message();
      r->Add("vid" + std::to_string(i), std::move(*index));
    }
    return r;
  }();
  return *repo;
}

std::string Fmt(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

std::string DescribeTop(
    const std::vector<offline::RepositoryRankedSequence>& top) {
  std::ostringstream os;
  for (const offline::RepositoryRankedSequence& entry : top) {
    os << entry.video << " " << entry.sequence.clips.ToString()
       << " lb=" << Fmt(entry.sequence.lower_bound)
       << " ub=" << Fmt(entry.sequence.upper_bound)
       << " exact=" << entry.sequence.has_exact << "/"
       << Fmt(entry.sequence.has_exact ? entry.sequence.exact_score : 0.0)
       << "\n";
  }
  return os.str();
}

struct QueryOut {
  std::string top;
  std::string invariant_metrics;
};

// One query against `coordinator` in a fresh registry epoch, rendered
// down to the comparison surface.
QueryOut QueryOnce(const Coordinator& coordinator) {
  DemoRepository();  // Ingest outside the measured epoch.
  obs::MetricRegistry::Global().Reset();
  obs::Tracer::Global().SetClock([] { return 0.0; });
  offline::PaperScoring scoring;
  offline::RvaqOptions rvaq;
  rvaq.k = kK;
  auto result = coordinator.TopK("running", {"dog"}, scoring, rvaq);
  EXPECT_TRUE(result.ok()) << result.status().message();
  QueryOut out;
  if (result.ok()) out.top = DescribeTop(result->merged.top);
  out.invariant_metrics = obs::ExportPrometheus(
      obs::FilterSnapshot(obs::MetricRegistry::Global().TakeSnapshot(),
                          LayoutInvariantMetricPrefixes()));
  obs::Tracer::Global().SetClock(nullptr);
  return out;
}

Coordinator MakeCoordinator(int shards) {
  ClusterOptions options;
  options.num_shards = shards;
  options.scheme = PartitionScheme::kRange;  // Splittable mid-run.
  return Coordinator(&DemoRepository(), options);
}

TEST(ClusterElastic, SplitAndMergeNeverChangeResultBytes) {
  const QueryOut ref = QueryOnce(MakeCoordinator(1));
  ASSERT_FALSE(ref.top.empty());

  Coordinator coordinator = MakeCoordinator(1);
  // Before, during and after: query between every layout change.
  EXPECT_EQ(QueryOnce(coordinator).top, ref.top);
  ASSERT_TRUE(coordinator.SplitShard(0).ok());
  EXPECT_EQ(coordinator.num_shards(), 2);
  QueryOut split_out = QueryOnce(coordinator);
  EXPECT_EQ(split_out.top, ref.top);
  EXPECT_EQ(split_out.invariant_metrics, ref.invariant_metrics);
  ASSERT_TRUE(coordinator.SplitShard(1).ok());
  EXPECT_EQ(coordinator.num_shards(), 3);
  split_out = QueryOnce(coordinator);
  EXPECT_EQ(split_out.top, ref.top);
  EXPECT_EQ(split_out.invariant_metrics, ref.invariant_metrics);
  ASSERT_TRUE(coordinator.MergeShards(0).ok());
  EXPECT_EQ(coordinator.num_shards(), 2);
  const QueryOut merged_out = QueryOnce(coordinator);
  EXPECT_EQ(merged_out.top, ref.top);
  EXPECT_EQ(merged_out.invariant_metrics, ref.invariant_metrics);
}

TEST(ClusterElastic, LoadDrivenRebalanceIsDeterministic) {
  // Two coordinators fed the identical query stream must make the
  // identical split/merge decisions — the load gauges are modeled
  // milliseconds, a pure function of the scan, never wall-clock.
  RebalanceOptions rebalance;
  rebalance.split_threshold_ms = 0.5;  // Everything hot: must split.
  rebalance.max_shards = 8;
  int actions[2] = {0, 0};
  std::string tops[2];
  for (int run = 0; run < 2; ++run) {
    Coordinator coordinator = MakeCoordinator(1);
    (void)QueryOnce(coordinator);
    EXPECT_GT(coordinator.ShardLoadMs(0), 0.0);
    actions[run] = coordinator.Rebalance(rebalance);
    EXPECT_GT(actions[run], 0);
    EXPECT_GT(coordinator.num_shards(), 1);
    // Acting on the load resets the gauges: the next epoch's decisions
    // see only the next epoch's load.
    for (int s = 0; s < coordinator.num_shards(); ++s) {
      EXPECT_EQ(coordinator.ShardLoadMs(s), 0.0);
    }
    tops[run] = QueryOnce(coordinator).top;
  }
  EXPECT_EQ(actions[0], actions[1]);
  EXPECT_EQ(tops[0], tops[1]);
  EXPECT_EQ(tops[0], QueryOnce(MakeCoordinator(1)).top);
}

TEST(ClusterElastic, ColdShardsMergeDownToTheFloor) {
  Coordinator coordinator = MakeCoordinator(4);
  RebalanceOptions rebalance;
  rebalance.split_threshold_ms = 1e12;  // Nothing is ever hot.
  rebalance.merge_threshold_ms = 1e12;  // Everything idle is cold.
  rebalance.min_shards = 2;
  // Each pass merges one adjacent cold pair; the floor stops it.
  EXPECT_EQ(coordinator.Rebalance(rebalance), 1);
  EXPECT_EQ(coordinator.num_shards(), 3);
  EXPECT_EQ(coordinator.Rebalance(rebalance), 1);
  EXPECT_EQ(coordinator.num_shards(), 2);
  EXPECT_EQ(coordinator.Rebalance(rebalance), 0);
  EXPECT_EQ(coordinator.num_shards(), 2);
  EXPECT_EQ(QueryOnce(coordinator).top, QueryOnce(MakeCoordinator(1)).top);
}

TEST(ClusterElastic, SplitGuardsItsPreconditions) {
  Coordinator coordinator = MakeCoordinator(4);  // One video per shard.
  EXPECT_EQ(coordinator.SplitShard(-1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(coordinator.SplitShard(4).code(), StatusCode::kInvalidArgument);
  // A single-video shard cannot split.
  EXPECT_EQ(coordinator.SplitShard(0).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(coordinator.MergeShards(3).code(),
            StatusCode::kInvalidArgument);  // No right neighbour.
}

TEST(ClusterElastic, RebalanceOpsAreCounted) {
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  registry.Reset();
  Coordinator coordinator = MakeCoordinator(1);
  ASSERT_TRUE(coordinator.SplitShard(0).ok());
  ASSERT_TRUE(coordinator.MergeShards(0).ok());
  EXPECT_EQ(
      registry.GetCounter("vaq_cluster_rebalance_total", {{"op", "split"}})
          ->value(),
      1);
  EXPECT_EQ(
      registry.GetCounter("vaq_cluster_rebalance_total", {{"op", "merge"}})
          ->value(),
      1);
}

}  // namespace
}  // namespace cluster
}  // namespace vaq
