#include "query/session.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "fault/fault_plan.h"
#include "offline/ingest.h"

namespace vaq {
namespace query {
namespace {

synth::Scenario MakeScenario() {
  synth::ScenarioSpec spec;
  spec.name = "session_test";
  spec.minutes = 5;
  spec.fps = 30;
  spec.seed = 123;
  synth::ActionTrackSpec action;
  action.name = "jumping";
  action.duty = 0.3;
  action.mean_len_frames = 900;
  spec.actions.push_back(action);
  for (const char* name : {"car", "human"}) {
    synth::ObjectTrackSpec obj;
    obj.name = name;
    obj.background_duty = 0.05;
    obj.mean_len_frames = 600;
    obj.coupled_action = "jumping";
    obj.cover_action_prob = 0.9;
    spec.objects.push_back(obj);
  }
  return synth::Scenario::FromSpec(spec, "jumping", {"car", "human"});
}

class SessionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new synth::Scenario(MakeScenario());
    session_ = new Session();
    session_->RegisterStream("inputVideo", *scenario_, /*model_seed=*/7);
    detect::ModelBundle models =
        detect::ModelBundle::MaskRcnnI3d(scenario_->truth(), 7);
    offline::PaperScoring scoring;
    offline::Ingestor ingestor(&scenario_->vocab(), &scoring,
                               offline::IngestOptions{});
    session_->RegisterRepository(
        "repoVideo",
        std::move(ingestor.Ingest(scenario_->truth(), models)).value());
  }

  static synth::Scenario* scenario_;
  static Session* session_;
};

synth::Scenario* SessionTest::scenario_ = nullptr;
Session* SessionTest::session_ = nullptr;

TEST_F(SessionTest, OnlineStatementRunsSvaqd) {
  auto result = session_->Execute(
      "SELECT MERGE(clipID) AS Sequence "
      "FROM (PROCESS inputVideo PRODUCE clipID, obj USING ObjectDetector, "
      "act USING ActionRecognizer) "
      "WHERE act='jumping' AND obj.include('car', 'human')");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->online);
  EXPECT_GT(result->sequences.TotalLength(), 0);
  EXPECT_GT(result->detector_stats.inferences, 0);
  // The result tracks ground truth.
  const auto f1 = eval::FrameLevelF1Frames(
      result->sequences, scenario_->truth().QueryTruthFrames(scenario_->query()),
      scenario_->layout());
  EXPECT_GT(f1.f1, 0.8) << f1.ToString();
}

TEST_F(SessionTest, OfflineStatementRunsRvaq) {
  auto result = session_->Execute(
      "SELECT MERGE(clipID) AS Sequence, RANK(act, obj) "
      "FROM (PROCESS repoVideo PRODUCE clipID, obj USING ObjectTracker, "
      "act USING ActionRecognizer) "
      "WHERE act='jumping' AND obj.include('car', 'human') "
      "ORDER BY RANK(act, obj) LIMIT 3");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->online);
  ASSERT_LE(result->ranked.size(), 3u);
  ASSERT_GE(result->ranked.size(), 1u);
  // Ranked descending by exact score.
  for (size_t i = 1; i < result->ranked.size(); ++i) {
    EXPECT_GE(result->ranked[i - 1].exact_score,
              result->ranked[i].exact_score);
  }
  EXPECT_GT(result->accesses.total(), 0);
}

TEST_F(SessionTest, UnknownVideoFails) {
  EXPECT_EQ(session_->Execute("SELECT MERGE(c) FROM ghost WHERE act='jumping'")
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(session_
                ->Execute("SELECT MERGE(c) FROM ghost WHERE act='jumping' "
                          "ORDER BY RANK(a) LIMIT 2")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(SessionTest, UnknownTypeFails) {
  EXPECT_FALSE(session_
                   ->Execute("SELECT MERGE(c) FROM inputVideo "
                             "WHERE obj.include('spaceship')")
                   .ok());
  EXPECT_FALSE(session_
                   ->Execute("SELECT MERGE(c) FROM repoVideo "
                             "WHERE act='flying' ORDER BY RANK(a) LIMIT 2")
                   .ok());
}

TEST_F(SessionTest, SyntaxErrorPropagates) {
  EXPECT_EQ(session_->Execute("SELEKT nonsense").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SessionTest, ModelSelectionViaUsingClause) {
  auto ideal = session_->Execute(
      "SELECT MERGE(clipID) FROM (PROCESS inputVideo PRODUCE clipID, "
      "obj USING IdealModel) WHERE act='jumping' AND obj.include('car')");
  ASSERT_TRUE(ideal.ok()) << ideal.status();
  // Ideal models track the exact per-type truth intersection.
  auto spec =
      QuerySpec::FromNames(scenario_->vocab(), "jumping", {"car"});
  ASSERT_TRUE(spec.ok());
  const auto f1 = eval::SequenceF1(
      ideal->sequences, scenario_->truth().QueryTruthClips(*spec), 0.5);
  EXPECT_DOUBLE_EQ(f1.f1, 1.0) << f1.ToString();
}

TEST_F(SessionTest, FaultCountersSurfaceInQueryResult) {
  // A stream registered with a fault plan reports degradation accounting
  // through QueryResult alongside the model stats.
  static const fault::FaultPlan plan(
      [] {
        fault::FaultSpec spec;
        spec.crash_rate = 0.15;
        spec.crash_len_units = 600;
        spec.drop_clip_rate = 0.1;
        return spec;
      }(),
      9);
  online::SvaqdOptions options;
  options.fault_plan = &plan;
  Session session;
  session.RegisterStream("faultyVideo", *scenario_, /*model_seed=*/7,
                         options);
  auto result = session.Execute(
      "SELECT MERGE(clipID) AS Sequence "
      "FROM (PROCESS faultyVideo PRODUCE clipID, act, obj) "
      "WHERE act='jumping' AND obj.include('car', 'human')");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->degraded_clips, 0);
  EXPECT_GT(result->dropped_clips, 0);
  EXPECT_GT(result->detector_stats.faults_injected +
                result->recognizer_stats.faults_injected,
            0);
  EXPECT_GT(result->detector_stats.fallbacks +
                result->recognizer_stats.fallbacks,
            0);
}

}  // namespace
}  // namespace query
}  // namespace vaq
