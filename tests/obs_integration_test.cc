// End-to-end observability: a seeded SVAQD run with fault injection must
// mirror its ModelStats / OnlineResult accounting into the global metric
// registry exactly, and two identical runs must export byte-identical
// Prometheus and JSON snapshots.
#include <gtest/gtest.h>

#include <string>

#include "detect/models.h"
#include "fault/fault_plan.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "online/svaqd.h"
#include "synth/scenario.h"

namespace vaq {
namespace online {
namespace {

const synth::Scenario& FaultScenario() {
  static const synth::Scenario* scenario = [] {
    synth::ScenarioSpec spec;
    spec.name = "obs_integration";
    spec.minutes = 6;
    spec.fps = 30;
    spec.seed = 808;
    synth::ActionTrackSpec action;
    action.name = "running";
    action.duty = 0.3;
    action.mean_len_frames = 1000;
    spec.actions.push_back(action);
    synth::ObjectTrackSpec dog;
    dog.name = "dog";
    dog.background_duty = 0.06;
    dog.mean_len_frames = 700;
    dog.coupled_action = "running";
    dog.cover_action_prob = 0.9;
    spec.objects.push_back(dog);
    return new synth::Scenario(
        synth::Scenario::FromSpec(spec, "running", {"dog"}));
  }();
  return *scenario;
}

fault::FaultSpec FaultySpec() {
  fault::FaultSpec spec;
  spec.crash_rate = 0.1;
  spec.crash_len_units = 600;
  spec.timeout_rate = 0.05;
  spec.nan_score_rate = 0.01;
  spec.drop_clip_rate = 0.02;
  return spec;
}

// Resets the global registry and performs one seeded faulty run.
OnlineResult RunSeeded() {
  obs::MetricRegistry::Global().Reset();
  const synth::Scenario& sc = FaultScenario();
  static const fault::FaultPlan* plan =
      new fault::FaultPlan(FaultySpec(), 21);
  SvaqdOptions options;
  options.fault_plan = plan;
  options.missing_policy = MissingObsPolicy::kBackgroundPrior;
  detect::ModelBundle models = detect::ModelBundle::MaskRcnnI3d(sc.truth(), 5);
  return Svaqd(sc.query(), sc.layout(), options)
      .Run(models.detector.get(), models.recognizer.get());
}

int64_t CounterValue(const std::string& name, const obs::Labels& labels) {
  return obs::MetricRegistry::Global().GetCounter(name, labels)->value();
}

TEST(ObsIntegrationTest, RegistryMirrorsEngineAndModelAccounting) {
  const OnlineResult result = RunSeeded();
  ASSERT_GT(result.clips_processed, 0);
  ASSERT_GT(result.detector_stats.faults_injected, 0);

  EXPECT_EQ(CounterValue("vaq_clips_processed_total", {{"engine", "svaqd"}}),
            result.clips_processed);
  EXPECT_EQ(CounterValue("vaq_clips_degraded_total", {{"engine", "svaqd"}}),
            result.degraded_clips);
  EXPECT_EQ(CounterValue("vaq_clips_dropped_total", {{"engine", "svaqd"}}),
            result.dropped_clips);
  EXPECT_EQ(CounterValue("vaq_gap_policy_activations_total",
                         {{"engine", "svaqd"},
                          {"policy", "background_prior"}}),
            result.degraded_clips);

  // Model invocations, by labeled family.
  EXPECT_EQ(CounterValue("vaq_detector_inferences_total",
                         {{"model", "MaskRCNN"}}),
            result.detector_stats.inferences);
  EXPECT_EQ(CounterValue("vaq_recognizer_inferences_total",
                         {{"model", "I3D"}}),
            result.recognizer_stats.inferences);

  // Resilience wrappers: retries and breaker transitions per domain.
  EXPECT_EQ(CounterValue("vaq_model_retries_total",
                         {{"domain", "detector"}, {"model", "MaskRCNN"}}),
            result.detector_stats.retries);
  EXPECT_EQ(CounterValue("vaq_model_retries_total",
                         {{"domain", "recognizer"}, {"model", "I3D"}}),
            result.recognizer_stats.retries);
  EXPECT_EQ(CounterValue("vaq_breaker_transitions_total",
                         {{"domain", "detector"},
                          {"model", "MaskRCNN"},
                          {"to", "open"}}),
            result.detector_stats.breaker_trips);

  // Outcome-labeled call counters partition faults_injected exactly:
  // every injected fault was a timeout, an outage hit or a garbage score.
  const auto outcome = [](const char* domain, const char* model,
                          const char* kind) {
    return CounterValue("vaq_model_calls_total", {{"domain", domain},
                                                  {"model", model},
                                                  {"outcome", kind}});
  };
  EXPECT_EQ(outcome("detector", "MaskRCNN", "timeout") +
                outcome("detector", "MaskRCNN", "outage") +
                outcome("detector", "MaskRCNN", "invalid_score"),
            result.detector_stats.faults_injected);
  EXPECT_EQ(outcome("detector", "MaskRCNN", "abandoned") +
                outcome("detector", "MaskRCNN", "breaker_open"),
            result.detector_stats.failures);

  // Per-clip latency histogram saw every clip, in simulated time.
  obs::Histogram* clip_ms = obs::MetricRegistry::Global().GetHistogram(
      "vaq_clip_eval_simulated_ms", obs::DefaultLatencyBucketsMs(),
      {{"engine", "svaqd"}});
  EXPECT_EQ(clip_ms->count(), result.clips_processed);
  EXPECT_DOUBLE_EQ(clip_ms->sum(), result.detector_stats.simulated_ms +
                                       result.recognizer_stats.simulated_ms);
}

TEST(ObsIntegrationTest, SeededRunsExportByteIdenticalSnapshots) {
  // Pin the tracer so span histograms observe constants, not wall time.
  obs::Tracer::Global().SetClock([] { return 0.0; });
  RunSeeded();
  const obs::Snapshot s1 = obs::MetricRegistry::Global().TakeSnapshot();
  const std::string prom1 = obs::ExportPrometheus(s1);
  const std::string json1 = obs::ExportJson(s1);

  RunSeeded();
  const obs::Snapshot s2 = obs::MetricRegistry::Global().TakeSnapshot();
  EXPECT_EQ(prom1, obs::ExportPrometheus(s2));
  EXPECT_EQ(json1, obs::ExportJson(s2));
  obs::Tracer::Global().SetClock(nullptr);

  EXPECT_EQ(obs::JsonLintError(json1), "") << json1;
  EXPECT_NE(prom1.find("vaq_detector_inferences_total"), std::string::npos);
  EXPECT_NE(prom1.find("vaq_model_calls_total"), std::string::npos);
  EXPECT_NE(prom1.find("vaq_clip_eval_simulated_ms_bucket"),
            std::string::npos);
}

}  // namespace
}  // namespace online
}  // namespace vaq
