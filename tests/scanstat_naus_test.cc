#include "scanstat/naus.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "scanstat/binomial.h"

namespace vaq {
namespace scanstat {
namespace {

TEST(BinomialTest, PmfMatchesClosedFormSmallCases) {
  EXPECT_NEAR(BinomialPmf(0, 4, 0.5), 1.0 / 16.0, 1e-12);
  EXPECT_NEAR(BinomialPmf(2, 4, 0.5), 6.0 / 16.0, 1e-12);
  EXPECT_NEAR(BinomialPmf(4, 4, 0.5), 1.0 / 16.0, 1e-12);
  EXPECT_NEAR(BinomialPmf(1, 3, 0.2), 3 * 0.2 * 0.64, 1e-12);
}

TEST(BinomialTest, PmfSumsToOne) {
  for (double p : {0.001, 0.1, 0.5, 0.9}) {
    for (int64_t n : {1, 5, 40}) {
      double sum = 0.0;
      for (int64_t k = 0; k <= n; ++k) sum += BinomialPmf(k, n, p);
      EXPECT_NEAR(sum, 1.0, 1e-10) << "n=" << n << " p=" << p;
    }
  }
}

TEST(BinomialTest, CdfPlusSfIsConsistent) {
  for (double p : {0.01, 0.3, 0.7}) {
    for (int64_t n : {6, 25}) {
      for (int64_t k = 0; k <= n; ++k) {
        EXPECT_NEAR(BinomialCdf(k, n, p) + BinomialSf(k + 1, n, p), 1.0,
                    1e-10);
      }
    }
  }
}

TEST(BinomialTest, DegenerateProbabilities) {
  EXPECT_DOUBLE_EQ(BinomialPmf(0, 10, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(3, 10, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(10, 10, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCdf(-1, 10, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(BinomialCdf(10, 10, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(BinomialSf(0, 10, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(BinomialSf(11, 10, 0.5), 0.0);
}

// ---------------------------------------------------------------------------
// The heart of the reproduction: Naus' closed forms for Q2 = P(S_w(2w) < k)
// and Q3 = P(S_w(3w) < k) must agree with the exact DP.
// ---------------------------------------------------------------------------

class NausExactness
    : public ::testing::TestWithParam<std::tuple<int64_t, double>> {};

TEST_P(NausExactness, Q2MatchesExactDp) {
  const auto [w, p] = GetParam();
  for (int64_t k = 1; k <= w; ++k) {
    const double exact = 1.0 - ExactScanTailProbabilityDp(k, p, w, 2 * w);
    const double closed = NausQ2(k, w, p);
    EXPECT_NEAR(closed, exact, 1e-9)
        << "w=" << w << " p=" << p << " k=" << k;
  }
}

TEST_P(NausExactness, Q3MatchesExactDp) {
  const auto [w, p] = GetParam();
  for (int64_t k = 1; k <= w; ++k) {
    const double exact = 1.0 - ExactScanTailProbabilityDp(k, p, w, 3 * w);
    const double closed = NausQ3(k, w, p);
    EXPECT_NEAR(closed, exact, 1e-9)
        << "w=" << w << " p=" << p << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NausExactness,
    ::testing::Combine(::testing::Values<int64_t>(2, 3, 5, 8, 12),
                       ::testing::Values(0.001, 0.05, 0.2, 0.5, 0.8)));

TEST(NausTest, ApproximationTracksExactDpForLongerSequences) {
  // L > 3: the approximation is no longer exact but should be close for
  // moderate tail probabilities.
  for (int64_t w : {5, 10}) {
    for (double p : {0.02, 0.1}) {
      for (int64_t L : {5, 10, 20}) {
        const int64_t n = L * w;
        for (int64_t k = 2; k <= w; ++k) {
          const double exact = ExactScanTailProbabilityDp(k, p, w, n);
          const double approx = ScanStatisticTailProbability(
              k, p, w, static_cast<double>(L));
          // Absolute tolerance scaled for mid-range probabilities; the
          // approximation is known to be sharp in the small-tail regime.
          EXPECT_NEAR(approx, exact, 0.02)
              << "w=" << w << " p=" << p << " L=" << L << " k=" << k;
          if (exact < 0.05 && exact > 1e-9) {
            EXPECT_LT(std::fabs(approx - exact) / exact, 0.15)
                << "w=" << w << " p=" << p << " L=" << L << " k=" << k;
          }
        }
      }
    }
  }
}

TEST(NausTest, ApproximationMatchesMonteCarlo) {
  const int64_t w = 25;
  const int64_t n = 2500;
  const double L = 100.0;
  for (double p : {0.01, 0.05}) {
    for (int64_t k : {4, 6, 8}) {
      const double approx = ScanStatisticTailProbability(k, p, w, L);
      const double mc =
          MonteCarloScanTailProbability(k, p, w, n, 20000, 0xc0ffee);
      const double sigma = std::sqrt(std::max(mc * (1 - mc), 1e-6) / 20000);
      EXPECT_NEAR(approx, mc, 4 * sigma + 0.01)
          << "p=" << p << " k=" << k;
    }
  }
}

TEST(NausTest, TailProbabilityEdgeCases) {
  EXPECT_DOUBLE_EQ(ScanStatisticTailProbability(0, 0.1, 10, 5), 1.0);
  EXPECT_DOUBLE_EQ(ScanStatisticTailProbability(11, 0.1, 10, 5), 0.0);
  EXPECT_DOUBLE_EQ(ScanStatisticTailProbability(3, 0.0, 10, 5), 0.0);
  EXPECT_DOUBLE_EQ(ScanStatisticTailProbability(3, 1.0, 10, 5), 1.0);
  // k = 1 is exact: 1 - (1-p)^N.
  const double p = 0.01;
  const double expected = 1.0 - std::pow(1.0 - p, 50.0);
  EXPECT_NEAR(ScanStatisticTailProbability(1, p, 10, 5.0), expected, 1e-12);
}

TEST(NausTest, TailProbabilityMonotoneInK) {
  for (double p : {0.01, 0.2}) {
    double prev = 2.0;
    for (int64_t k = 0; k <= 21; ++k) {
      const double tail = ScanStatisticTailProbability(k, p, 20, 50.0);
      EXPECT_LE(tail, prev + 1e-12) << "k=" << k << " p=" << p;
      prev = tail;
    }
  }
}

TEST(NausTest, TailProbabilityMonotoneInP) {
  for (int64_t k : {3, 7}) {
    double prev = -1.0;
    for (double p : {0.001, 0.01, 0.05, 0.1, 0.3, 0.6}) {
      const double tail = ScanStatisticTailProbability(k, p, 20, 50.0);
      EXPECT_GE(tail, prev - 1e-9) << "k=" << k << " p=" << p;
      prev = tail;
    }
  }
}

TEST(NausTest, Q2Q3OrderingAndRange) {
  // More trials can only make a k-in-window hit more likely, so Q3 <= Q2.
  for (int64_t w : {4, 9, 15}) {
    for (double p : {0.01, 0.2, 0.5}) {
      for (int64_t k = 1; k <= w; ++k) {
        const double q2 = NausQ2(k, w, p);
        const double q3 = NausQ3(k, w, p);
        EXPECT_GE(q2, 0.0);
        EXPECT_LE(q2, 1.0);
        EXPECT_GE(q3, 0.0);
        EXPECT_LE(q3, 1.0);
        EXPECT_LE(q3, q2 + 1e-9) << "w=" << w << " p=" << p << " k=" << k;
      }
    }
  }
}

TEST(MonteCarloTest, AgreesWithExactDp) {
  const double mc =
      MonteCarloScanTailProbability(3, 0.1, 8, 80, 40000, 1234);
  const double exact = ExactScanTailProbabilityDp(3, 0.1, 8, 80);
  EXPECT_NEAR(mc, exact, 0.02);
}

}  // namespace
}  // namespace scanstat
}  // namespace vaq
