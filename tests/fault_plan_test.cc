#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace vaq {
namespace fault {
namespace {

FaultSpec AllFaultsSpec() {
  FaultSpec spec;
  spec.timeout_rate = 0.05;
  spec.crash_rate = 0.1;
  spec.crash_len_units = 64;
  spec.nan_score_rate = 0.02;
  spec.out_of_range_score_rate = 0.02;
  spec.drop_clip_rate = 0.03;
  spec.page_error_rate = 0.04;
  return spec;
}

TEST(FaultPlanTest, SameSeedYieldsIdenticalSchedule) {
  const FaultSpec spec = AllFaultsSpec();
  const FaultPlan a(spec, 42);
  const FaultPlan b(spec, 42);
  for (int64_t unit = 0; unit < 2000; ++unit) {
    EXPECT_EQ(a.CrashActive(FaultDomain::kDetector, unit),
              b.CrashActive(FaultDomain::kDetector, unit));
    EXPECT_EQ(a.ProbeCall(FaultDomain::kDetector, unit, unit % 3),
              b.ProbeCall(FaultDomain::kDetector, unit, unit % 3));
    EXPECT_EQ(a.DropClip(unit), b.DropClip(unit));
    EXPECT_EQ(a.PageReadFails(unit, unit % 3), b.PageReadFails(unit, unit % 3));
  }
  // Repeated consultation of the same coordinate never disagrees with
  // itself (the plan is a pure function, not a stateful stream).
  EXPECT_EQ(a.ProbeCall(FaultDomain::kRecognizer, 17, 0),
            a.ProbeCall(FaultDomain::kRecognizer, 17, 0));
}

TEST(FaultPlanTest, DifferentSeedsYieldDifferentSchedules) {
  const FaultSpec spec = AllFaultsSpec();
  const FaultPlan a(spec, 1);
  const FaultPlan b(spec, 2);
  int disagreements = 0;
  for (int64_t unit = 0; unit < 5000; ++unit) {
    if (a.ProbeCall(FaultDomain::kDetector, unit, 0) !=
        b.ProbeCall(FaultDomain::kDetector, unit, 0)) {
      ++disagreements;
    }
  }
  EXPECT_GT(disagreements, 100);
}

TEST(FaultPlanTest, DomainsAreIndependentStreams) {
  const FaultSpec spec = AllFaultsSpec();
  const FaultPlan plan(spec, 7);
  int disagreements = 0;
  for (int64_t unit = 0; unit < 5000; ++unit) {
    if (plan.ProbeCall(FaultDomain::kDetector, unit, 0) !=
        plan.ProbeCall(FaultDomain::kRecognizer, unit, 0)) {
      ++disagreements;
    }
  }
  EXPECT_GT(disagreements, 100);
}

TEST(FaultPlanTest, EmptySpecInjectsNothing) {
  const FaultPlan plan(FaultSpec{}, 9);
  EXPECT_FALSE(FaultSpec{}.any());
  for (int64_t unit = 0; unit < 1000; ++unit) {
    EXPECT_FALSE(plan.CrashActive(FaultDomain::kDetector, unit));
    EXPECT_EQ(plan.ProbeCall(FaultDomain::kDetector, unit, 0),
              FaultKind::kNone);
    EXPECT_FALSE(plan.DropClip(unit));
    EXPECT_FALSE(plan.PageReadFails(unit, 0));
  }
}

TEST(FaultPlanTest, RaisingARateOnlyAddsFaults) {
  // Coupled uniforms: with the same seed, the fault set at a lower rate
  // is a subset of the fault set at a higher rate. This is what makes
  // bench_resilience's rate sweep monotone by construction.
  FaultSpec lo;
  lo.crash_rate = 0.05;
  lo.timeout_rate = 0.03;
  lo.drop_clip_rate = 0.02;
  lo.page_error_rate = 0.02;
  FaultSpec hi = lo;
  hi.crash_rate = 0.2;
  hi.timeout_rate = 0.12;
  hi.drop_clip_rate = 0.08;
  hi.page_error_rate = 0.08;
  const FaultPlan plan_lo(lo, 33);
  const FaultPlan plan_hi(hi, 33);
  for (int64_t unit = 0; unit < 4000; ++unit) {
    if (plan_lo.CrashActive(FaultDomain::kDetector, unit)) {
      EXPECT_TRUE(plan_hi.CrashActive(FaultDomain::kDetector, unit)) << unit;
    }
    if (plan_lo.ProbeCall(FaultDomain::kDetector, unit, 0) !=
        FaultKind::kNone) {
      EXPECT_NE(plan_hi.ProbeCall(FaultDomain::kDetector, unit, 0),
                FaultKind::kNone)
          << unit;
    }
    if (plan_lo.DropClip(unit)) {
      EXPECT_TRUE(plan_hi.DropClip(unit)) << unit;
    }
    if (plan_lo.PageReadFails(unit, 0)) {
      EXPECT_TRUE(plan_hi.PageReadFails(unit, 0)) << unit;
    }
  }
}

TEST(FaultPlanTest, CrashesAreBlockStructuredWithExpectedCoverage) {
  FaultSpec spec;
  spec.crash_rate = 0.1;
  spec.crash_len_units = 128;
  const FaultPlan plan(spec, 55);
  const int64_t units = 200 * spec.crash_len_units;
  int64_t down_units = 0;
  for (int64_t window = 0; window < 200; ++window) {
    const int64_t base = window * spec.crash_len_units;
    const bool down = plan.CrashActive(FaultDomain::kDetector, base);
    // Constant within the window: an outage covers whole windows.
    for (int64_t u = 0; u < spec.crash_len_units; u += 17) {
      EXPECT_EQ(plan.CrashActive(FaultDomain::kDetector, base + u), down);
    }
    if (down) down_units += spec.crash_len_units;
  }
  const double fraction =
      static_cast<double>(down_units) / static_cast<double>(units);
  EXPECT_NEAR(fraction, spec.crash_rate, 0.06);  // 200 Bernoulli windows.
}

TEST(FaultSpecValidationTest, AcceptsAllRatesAtBounds) {
  FaultSpec spec = AllFaultsSpec();
  EXPECT_TRUE(ValidateFaultSpec(spec).ok());
  spec.timeout_rate = 0.0;
  spec.crash_rate = 1.0;
  spec.net_drop_rate = 1.0;
  spec.node_outage_rate = 0.0;
  EXPECT_TRUE(ValidateFaultSpec(spec).ok());
  EXPECT_TRUE(FaultPlan::Create(spec, 7).ok());
}

TEST(FaultSpecValidationTest, RejectsRateAboveOne) {
  FaultSpec spec;
  spec.timeout_rate = 1.1;
  const Status status = ValidateFaultSpec(spec);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("timeout_rate"), std::string::npos);
  EXPECT_EQ(FaultPlan::Create(spec, 7).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FaultSpecValidationTest, RejectsNegativeRate) {
  FaultSpec spec;
  spec.net_drop_rate = -0.2;
  const Status status = FaultPlan::Create(spec, 7).status();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("net_drop_rate"), std::string::npos);
}

TEST(FaultSpecValidationTest, RejectsNanRate) {
  FaultSpec spec;
  spec.checkpoint_corrupt_rate = std::nan("");
  EXPECT_EQ(FaultPlan::Create(spec, 7).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FaultSpecValidationTest, RejectsEveryRateField) {
  // Each of the ten rate fields is individually validated; a regression
  // that drops one from the checklist fails here.
  const std::vector<void (*)(FaultSpec&)> poke = {
      [](FaultSpec& s) { s.timeout_rate = 2.0; },
      [](FaultSpec& s) { s.crash_rate = 2.0; },
      [](FaultSpec& s) { s.nan_score_rate = 2.0; },
      [](FaultSpec& s) { s.out_of_range_score_rate = 2.0; },
      [](FaultSpec& s) { s.drop_clip_rate = 2.0; },
      [](FaultSpec& s) { s.page_error_rate = 2.0; },
      [](FaultSpec& s) { s.checkpoint_corrupt_rate = 2.0; },
      [](FaultSpec& s) { s.net_drop_rate = 2.0; },
      [](FaultSpec& s) { s.net_dup_rate = 2.0; },
      [](FaultSpec& s) { s.node_outage_rate = 2.0; },
  };
  for (size_t i = 0; i < poke.size(); ++i) {
    FaultSpec spec;
    poke[i](spec);
    EXPECT_EQ(ValidateFaultSpec(spec).code(), StatusCode::kInvalidArgument)
        << "rate field " << i;
  }
}

TEST(FaultSpecValidationTest, RejectsNonPositiveLengths) {
  FaultSpec spec;
  spec.crash_len_units = 0;
  EXPECT_EQ(ValidateFaultSpec(spec).code(), StatusCode::kInvalidArgument);
  spec = FaultSpec{};
  spec.node_outage_len_ms = -5;
  const Status status = ValidateFaultSpec(spec);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("node_outage_len_ms"), std::string::npos);
}

TEST(FaultSpecValidationTest, RejectsMalformedWindows) {
  FaultSpec spec;
  ScheduledWindow w;
  w.from_ms = 50.0;
  w.to_ms = 10.0;  // Ends before it starts.
  spec.windows.push_back(w);
  EXPECT_EQ(ValidateFaultSpec(spec).code(), StatusCode::kInvalidArgument);
  spec.windows[0].from_ms = -1.0;
  spec.windows[0].to_ms = 10.0;
  EXPECT_EQ(ValidateFaultSpec(spec).code(), StatusCode::kInvalidArgument);
  spec.windows[0].from_ms = 10.0;
  spec.windows[0].to_ms = 10.0;  // Empty window is well-formed.
  EXPECT_TRUE(ValidateFaultSpec(spec).ok());
}

TEST(FaultSpecValidationTest, ScheduledNodeWindowsDriveNodeDown) {
  FaultSpec spec;
  ScheduledWindow w;
  w.domain = FaultDomain::kNode;
  w.key = 2;
  w.from_ms = 10.0;
  w.to_ms = 20.0;
  spec.windows.push_back(w);
  auto plan = FaultPlan::Create(spec, 3);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->NodeDown(2, 10.0));
  EXPECT_TRUE(plan->NodeDown(2, 19.9));
  EXPECT_FALSE(plan->NodeDown(2, 20.0));  // Half-open interval.
  EXPECT_FALSE(plan->NodeDown(1, 15.0));  // Other hosts unaffected.
  EXPECT_FALSE(plan->NodeDown(2, 5.0));
}

TEST(FaultSpecValidationTest, PartitionWindowsAndClearTime) {
  FaultSpec spec;
  ScheduledWindow w;
  w.domain = FaultDomain::kNetwork;
  w.from_ms = 30.0;
  w.to_ms = 60.0;
  spec.windows.push_back(w);
  auto plan = FaultPlan::Create(spec, 3);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->NetPartitioned(29.9));
  EXPECT_TRUE(plan->NetPartitioned(30.0));
  EXPECT_TRUE(plan->NetPartitioned(59.9));
  EXPECT_FALSE(plan->NetPartitioned(60.0));
  EXPECT_DOUBLE_EQ(plan->PartitionClearMs(45.0), 60.0);
}

TEST(FaultPlanTest, FaultKindNamesAreStable) {
  EXPECT_STREQ(FaultKindName(FaultKind::kNone), "None");
  EXPECT_STREQ(FaultKindName(FaultKind::kTimeout), "Timeout");
  EXPECT_STREQ(FaultKindName(FaultKind::kCrash), "Crash");
  EXPECT_STREQ(FaultKindName(FaultKind::kNanScore), "NanScore");
  EXPECT_STREQ(FaultKindName(FaultKind::kOutOfRangeScore), "OutOfRangeScore");
}

}  // namespace
}  // namespace fault
}  // namespace vaq
