// Functional tests of the concurrent serving runtime (src/serve/):
// admission control, shared-detection-cache deduplication, merge-at-drain
// statistics and the modeled scheduling makespan.
#include "serve/server.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "serve/detection_cache.h"
#include "tools/pipeline_setup.h"

namespace vaq {
namespace serve {
namespace {

constexpr int kStreams = 3;
constexpr int kQueries = 12;

ServeOptions InlineOptions() {
  ServeOptions options;
  options.threads = 0;  // Run at Drain on the calling thread.
  options.queue_capacity = 256;
  return options;
}

// Registers the demo fleet and submits the demo workload; returns the
// drained results.
std::vector<ServedQuery> RunDemo(Server* server) {
  EXPECT_TRUE(tools::RegisterDemoSources(server, kStreams,
                                         /*with_repository=*/true, /*seed=*/7)
                  .ok());
  for (const std::string& sql :
       tools::DemoWorkload(kStreams, kQueries, /*with_repository=*/true)) {
    EXPECT_TRUE(server->Submit(sql).ok()) << sql;
  }
  return server->Drain();
}

TEST(SharedDetectionCacheTest, AcquireIsStableAndCountsReuse) {
  synth::Scenario scenario = tools::DemoScenario(0);
  SharedDetectionCache cache;
  bool created = false;
  detect::ModelBundle* first = cache.Acquire(
      "cam0", "maskrcnn_i3d",
      [&] { return detect::ModelBundle::MaskRcnnI3d(scenario.truth(), 7); },
      &created);
  EXPECT_TRUE(created);
  detect::ModelBundle* again = cache.Acquire(
      "cam0", "maskrcnn_i3d",
      [&] { return detect::ModelBundle::MaskRcnnI3d(scenario.truth(), 7); },
      &created);
  EXPECT_FALSE(created);
  EXPECT_EQ(first, again);
  // A different stack on the same source is a distinct bundle.
  detect::ModelBundle* ideal = cache.Acquire(
      "cam0", "ideal",
      [&] { return detect::ModelBundle::Ideal(scenario.truth(), 7); },
      &created);
  EXPECT_TRUE(created);
  EXPECT_NE(first, ideal);
  EXPECT_EQ(cache.bundles_created(), 2);
  EXPECT_EQ(cache.bundle_reuses(), 1);
}

TEST(ServeTest, SharedCacheCutsInvocationsWithoutChangingResults) {
  ServeOptions with_cache = InlineOptions();
  with_cache.share_detection_cache = true;
  Server cached(with_cache);
  const std::vector<ServedQuery> cached_results = RunDemo(&cached);

  ServeOptions without_cache = InlineOptions();
  without_cache.share_detection_cache = false;
  Server uncached(without_cache);
  const std::vector<ServedQuery> uncached_results = RunDemo(&uncached);

  // Identical query outcomes: the memoization only changes *cost*.
  ASSERT_EQ(cached_results.size(), uncached_results.size());
  for (size_t i = 0; i < cached_results.size(); ++i) {
    EXPECT_TRUE(cached_results[i].status.ok())
        << cached_results[i].status << " for " << cached_results[i].sql;
    EXPECT_EQ(cached_results[i].result.sequences,
              uncached_results[i].result.sequences)
        << cached_results[i].sql;
  }
  // ... and the cost drops: several queries per stream share a bundle.
  const ServeStats on = cached.stats();
  const ServeStats off = uncached.stats();
  EXPECT_GT(on.cache_bundle_reuses, 0);
  EXPECT_EQ(off.cache_bundle_reuses, 0);
  EXPECT_LT(on.detector_stats.inferences + on.recognizer_stats.inferences,
            off.detector_stats.inferences + off.recognizer_stats.inferences);
}

TEST(ServeTest, AdmissionControlRejectsOverflowAndRecovers) {
  ServeOptions options = InlineOptions();
  options.queue_capacity = 2;
  Server server(options);
  ASSERT_TRUE(tools::RegisterDemoSources(&server, 1, /*with_repository=*/false,
                                         7)
                  .ok());
  const std::string sql =
      "SELECT MERGE(clipID) AS Sequence FROM (PROCESS cam0 PRODUCE clipID, "
      "obj USING ObjectDetector, act USING ActionRecognizer) "
      "WHERE act='running' AND obj.include('dog')";
  EXPECT_TRUE(server.Submit(sql).ok());
  EXPECT_TRUE(server.Submit(sql).ok());
  const auto rejected = server.Submit(sql);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(server.Drain().size(), 2u);
  // Drain is terminal: a post-Drain retry fails deterministically with
  // kFailedPrecondition instead of landing in a queue no Drain will ever
  // merge (the old lost-query race).
  const auto late = server.Submit(sql);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kFailedPrecondition);
  // Unparsable statements fail the same way once drained — the door is
  // checked before the parser runs.
  const auto late_garbage = server.Submit("SELECT FROM WHERE banana");
  ASSERT_FALSE(late_garbage.ok());
  EXPECT_EQ(late_garbage.status().code(), StatusCode::kFailedPrecondition);
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.accepted, 2);
  EXPECT_EQ(stats.rejected_overflow, 1);
  EXPECT_EQ(stats.completed, 2);
}

TEST(ServeTest, RejectsParseErrorsAndUnknownSources) {
  Server server(InlineOptions());
  ASSERT_TRUE(tools::RegisterDemoSources(&server, 1, /*with_repository=*/false,
                                         7)
                  .ok());
  const auto parse = server.Submit("SELECT FROM WHERE banana");
  ASSERT_FALSE(parse.ok());
  EXPECT_EQ(parse.status().code(), StatusCode::kInvalidArgument);
  const auto ghost_stream = server.Submit(
      "SELECT MERGE(clipID) AS Sequence FROM (PROCESS ghost PRODUCE clipID, "
      "act USING ActionRecognizer) WHERE act='running'");
  ASSERT_FALSE(ghost_stream.ok());
  EXPECT_EQ(ghost_stream.status().code(), StatusCode::kNotFound);
  const auto ghost_repo = server.Submit(
      "SELECT MERGE(clipID) AS Sequence, RANK(act, obj) FROM (PROCESS ghost "
      "PRODUCE clipID, act USING ActionRecognizer) WHERE act='running' "
      "ORDER BY RANK(act, obj) LIMIT 2");
  ASSERT_FALSE(ghost_repo.ok());
  EXPECT_EQ(ghost_repo.status().code(), StatusCode::kNotFound);
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.rejected_parse, 1);
  EXPECT_EQ(stats.rejected_unknown_source, 2);
  EXPECT_EQ(stats.accepted, 0);
}

TEST(ServeTest, MergedWorkerStatsEqualInlineTotals) {
  // Merge-at-drain: the sum of N worker-local accumulators must equal
  // what one thread counts over the same workload.
  ServeOptions pooled = InlineOptions();
  pooled.threads = 4;
  Server parallel_server(pooled);
  RunDemo(&parallel_server);
  Server inline_server(InlineOptions());
  RunDemo(&inline_server);

  const ServeStats a = parallel_server.stats();
  const ServeStats b = inline_server.stats();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.detector_stats.ToString(), b.detector_stats.ToString());
  EXPECT_EQ(a.recognizer_stats.ToString(), b.recognizer_stats.ToString());
  EXPECT_EQ(a.accesses.ToString(), b.accesses.ToString());
  EXPECT_NEAR(a.total_simulated_ms, b.total_simulated_ms, 1e-6);
}

TEST(ServeTest, ResultsAreCompleteAndSortedById) {
  Server server(InlineOptions());
  const std::vector<ServedQuery> results = RunDemo(&server);
  ASSERT_EQ(results.size(), static_cast<size_t>(kQueries));
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].id, static_cast<int64_t>(i));
    EXPECT_TRUE(results[i].status.ok()) << results[i].sql;
  }
}

TEST(ModeledMakespanTest, ListSchedulingOverShards) {
  auto query = [](int64_t id, const std::string& shard, double ms) {
    ServedQuery q;
    q.id = id;
    q.shard = shard;
    q.simulated_ms = ms;
    return q;
  };
  // Two independent shards of 10 ms + 20 ms each.
  const std::vector<ServedQuery> queries = {
      query(0, "stream/a", 10), query(1, "stream/b", 10),
      query(2, "stream/a", 20), query(3, "stream/b", 20)};
  // One worker: everything serial.
  EXPECT_DOUBLE_EQ(ModeledMakespanMs(queries, 1), 60.0);
  // Two workers: each takes one shard chain.
  EXPECT_DOUBLE_EQ(ModeledMakespanMs(queries, 2), 30.0);
  // More workers than shards: bounded by the longest chain.
  EXPECT_DOUBLE_EQ(ModeledMakespanMs(queries, 8), 30.0);
  // A single shard never parallelizes.
  const std::vector<ServedQuery> serial = {query(0, "stream/a", 10),
                                           query(1, "stream/a", 30)};
  EXPECT_DOUBLE_EQ(ModeledMakespanMs(serial, 4), 40.0);
  EXPECT_DOUBLE_EQ(ModeledMakespanMs({}, 4), 0.0);
}

}  // namespace
}  // namespace serve
}  // namespace vaq
