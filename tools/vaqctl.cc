// vaqctl — command-line front end for VAQ video repositories.
//
//   vaqctl ingest --catalog DIR --name NAME --scenario SPEC [options]
//       Generate a scenario, run the ingestion phase and persist it.
//       SPEC: youtube:<1..12> | coffee | ironman | starwars | titanic
//             | file:<scenario-spec-path> (synth/spec_file.h format)
//       options: --models maskrcnn|yolo|ideal   --seed N
//
//   vaqctl ls --catalog DIR
//       List ingested videos with their type inventories.
//
//   vaqctl rm --catalog DIR --name NAME
//       Delete an ingested video and its table files.
//
//   vaqctl topk --catalog DIR --action NAME [--objects a,b,...] [--k N]
//       Repository-wide ranked retrieval (RVAQ per video, merged).
//
//   vaqctl sql --catalog DIR "SELECT ... ORDER BY RANK(...) LIMIT K"
//       Run an offline statement of the paper's dialect against a video
//       registered under its catalog name.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "vaq/vaq.h"

namespace vaq {
namespace {

// Minimal --flag value parser: flags precede or follow positionals.
struct Args {
  std::map<std::string, std::string> flags;
  std::vector<std::string> positional;

  static Args Parse(int argc, char** argv) {
    Args args;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0 && i + 1 < argc) {
        args.flags[arg.substr(2)] = argv[++i];
      } else {
        args.positional.push_back(arg);
      }
    }
    return args;
  }

  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
};

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t comma = s.find(',', start);
    const std::string piece = s.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!piece.empty()) out.push_back(piece);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

StatusOr<synth::Scenario> MakeScenario(const std::string& spec,
                                       uint64_t seed) {
  if (spec.rfind("file:", 0) == 0) {
    // A scenario spec file (synth/spec_file.h format). The query defaults
    // to the first action plus the first object; override at query time.
    VAQ_ASSIGN_OR_RETURN(synth::ScenarioSpec parsed,
                         synth::LoadScenarioSpec(spec.substr(5)));
    if (seed != 0) parsed.seed = seed;
    if (parsed.actions.empty()) {
      return Status::InvalidArgument("spec file declares no actions");
    }
    std::vector<std::string> objects;
    if (!parsed.objects.empty()) objects.push_back(parsed.objects[0].name);
    return synth::Scenario::FromSpec(parsed, parsed.actions[0].name,
                                     objects);
  }
  if (spec.rfind("youtube:", 0) == 0) {
    const int index = std::atoi(spec.c_str() + 8);
    if (index < 1 || index > 12) {
      return Status::InvalidArgument("youtube index must be 1..12");
    }
    return synth::Scenario::YouTube(index, seed);
  }
  if (spec == "coffee") {
    return synth::Scenario::Movie(synth::MovieId::kCoffeeAndCigarettes, seed);
  }
  if (spec == "ironman") {
    return synth::Scenario::Movie(synth::MovieId::kIronMan, seed);
  }
  if (spec == "starwars") {
    return synth::Scenario::Movie(synth::MovieId::kStarWars3, seed);
  }
  if (spec == "titanic") {
    return synth::Scenario::Movie(synth::MovieId::kTitanic, seed);
  }
  return Status::InvalidArgument("unknown scenario spec: " + spec);
}

int CmdIngest(const Args& args) {
  const std::string catalog_dir = args.Get("catalog");
  const std::string name = args.Get("name");
  const std::string spec = args.Get("scenario");
  if (catalog_dir.empty() || name.empty() || spec.empty()) {
    std::fprintf(stderr,
                 "ingest requires --catalog, --name and --scenario\n");
    return 2;
  }
  const uint64_t seed =
      static_cast<uint64_t>(std::atoll(args.Get("seed", "7").c_str()));
  auto scenario = MakeScenario(spec, seed);
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  const std::string models = args.Get("models", "maskrcnn");
  detect::ModelBundle bundle =
      models == "yolo" ? detect::ModelBundle::YoloI3d(scenario->truth(), seed)
      : models == "ideal"
          ? detect::ModelBundle::Ideal(scenario->truth(), seed)
          : detect::ModelBundle::MaskRcnnI3d(scenario->truth(), seed);

  offline::PaperScoring scoring;
  offline::Ingestor ingestor(&scenario->vocab(), &scoring,
                             offline::IngestOptions{});
  std::printf("ingesting '%s' (%lld clips) with %s models...\n",
              scenario->name().c_str(),
              static_cast<long long>(scenario->layout().NumClips()),
              models.c_str());
  auto index_or = ingestor.Ingest(scenario->truth(), bundle);
  if (!index_or.ok()) {
    std::fprintf(stderr, "%s\n", index_or.status().ToString().c_str());
    return 1;
  }
  const storage::VideoIndex index = std::move(index_or).value();
  const storage::Catalog catalog(catalog_dir);
  const Status status = catalog.Save(name, index);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("saved %zu object + %zu action tables as '%s' in %s\n",
              index.objects.size(), index.actions.size(), name.c_str(),
              catalog_dir.c_str());
  return 0;
}

int CmdLs(const Args& args) {
  const std::string catalog_dir = args.Get("catalog");
  if (catalog_dir.empty()) {
    std::fprintf(stderr, "ls requires --catalog\n");
    return 2;
  }
  const storage::Catalog catalog(catalog_dir);
  const std::vector<std::string> names = catalog.ListVideos();
  if (names.empty()) {
    std::printf("(no ingested videos in %s)\n", catalog_dir.c_str());
    return 0;
  }
  for (const std::string& name : names) {
    auto index = catalog.Load(name);
    if (!index.ok()) {
      std::printf("%-20s  <unreadable: %s>\n", name.c_str(),
                  index.status().ToString().c_str());
      continue;
    }
    std::printf("%-20s  %6lld clips  objects:", name.c_str(),
                static_cast<long long>(index->num_clips));
    for (const auto& t : index->objects) std::printf(" %s", t.type_name.c_str());
    std::printf("  actions:");
    for (const auto& t : index->actions) std::printf(" %s", t.type_name.c_str());
    std::printf("\n");
  }
  return 0;
}

int CmdRm(const Args& args) {
  const std::string catalog_dir = args.Get("catalog");
  const std::string name = args.Get("name");
  if (catalog_dir.empty() || name.empty()) {
    std::fprintf(stderr, "rm requires --catalog and --name\n");
    return 2;
  }
  const storage::Catalog catalog(catalog_dir);
  const Status status = catalog.Delete(name);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("deleted '%s'\n", name.c_str());
  return 0;
}

int CmdTopK(const Args& args) {
  const std::string catalog_dir = args.Get("catalog");
  const std::string action = args.Get("action");
  if (catalog_dir.empty() || (action.empty() && args.Get("objects").empty())) {
    std::fprintf(stderr,
                 "topk requires --catalog and --action and/or --objects\n");
    return 2;
  }
  offline::Repository repository;
  const storage::Catalog catalog(catalog_dir);
  const Status load = repository.AddFromCatalog(catalog);
  if (!load.ok()) {
    std::fprintf(stderr, "%s\n", load.ToString().c_str());
    return 1;
  }
  offline::PaperScoring scoring;
  offline::RvaqOptions options;
  options.k = std::atoll(args.Get("k", "5").c_str());
  auto result = repository.TopK(action, SplitCommas(args.Get("objects")),
                                scoring, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("queried %lld videos (%lld without the types), %lld candidate "
              "sequences\n",
              static_cast<long long>(result->videos_queried),
              static_cast<long long>(result->videos_skipped),
              static_cast<long long>(result->candidate_sequences));
  for (size_t i = 0; i < result->top.size(); ++i) {
    const auto& entry = result->top[i];
    std::printf("#%zu  %-16s clips [%lld, %lld]  score %.1f\n", i + 1,
                entry.video.c_str(),
                static_cast<long long>(entry.sequence.clips.lo),
                static_cast<long long>(entry.sequence.clips.hi),
                entry.sequence.exact_score);
  }
  std::printf("accesses: %s\n", result->accesses.ToString().c_str());
  return 0;
}

int CmdSql(const Args& args) {
  const std::string catalog_dir = args.Get("catalog");
  if (catalog_dir.empty() || args.positional.size() < 2) {
    std::fprintf(stderr, "sql requires --catalog and a statement\n");
    return 2;
  }
  query::Session session;
  const storage::Catalog catalog(catalog_dir);
  for (const std::string& name : catalog.ListVideos()) {
    auto index = catalog.Load(name);
    if (index.ok()) session.RegisterRepository(name, std::move(*index));
  }
  auto result = session.Execute(args.positional[1]);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < result->ranked.size(); ++i) {
    std::printf("#%zu  clips [%lld, %lld]  score %.1f\n", i + 1,
                static_cast<long long>(result->ranked[i].clips.lo),
                static_cast<long long>(result->ranked[i].clips.hi),
                result->ranked[i].exact_score);
  }
  std::printf("accesses: %s\n", result->accesses.ToString().c_str());
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: vaqctl <ingest|ls|rm|topk|sql> [--flags]\n"
               "see the header of tools/vaqctl.cc for details\n");
  return 2;
}

}  // namespace
}  // namespace vaq

int main(int argc, char** argv) {
  if (argc < 2) return vaq::Usage();
  const vaq::Args args = vaq::Args::Parse(argc, argv);
  const std::string command = argv[1];
  if (command == "ingest") return vaq::CmdIngest(args);
  if (command == "ls") return vaq::CmdLs(args);
  if (command == "rm") return vaq::CmdRm(args);
  if (command == "topk") return vaq::CmdTopK(args);
  if (command == "sql") return vaq::CmdSql(args);
  return vaq::Usage();
}
