// vaqctl — command-line front end for VAQ video repositories.
//
//   vaqctl ingest --catalog DIR --name NAME --scenario SPEC [options]
//       Generate a scenario, run the ingestion phase and persist it.
//       SPEC: youtube:<1..12> | coffee | ironman | starwars | titanic
//             | file:<scenario-spec-path> (synth/spec_file.h format)
//       options: --models maskrcnn|yolo|ideal   --seed N
//
//   vaqctl ls --catalog DIR
//       List ingested videos with their type inventories.
//
//   vaqctl rm --catalog DIR --name NAME
//       Delete an ingested video and its table files.
//
//   vaqctl topk --catalog DIR --action NAME [--objects a,b,...] [--k N]
//       Repository-wide ranked retrieval (RVAQ per video, merged).
//
//   vaqctl sql --catalog DIR "SELECT ... ORDER BY RANK(...) LIMIT K"
//       Run an offline statement of the paper's dialect against a video
//       registered under its catalog name.
//
//   vaqctl metrics [--scenario SPEC] [--seed N] [--format prom|json|both]
//       Run a seeded end-to-end pipeline (faulty SVAQD stream + ingest +
//       RVAQ top-K) and dump the resulting metric-registry snapshot in
//       Prometheus text and/or JSON form. The output is a pure function
//       of (--scenario, --seed): the tracer clock is pinned and only
//       logical quantities are recorded, so two runs with the same flags
//       emit byte-identical snapshots. Both export formats are always
//       self-checked with the built-in linters (JSON shape + promlint
//       rules); lint failures exit 1. --selfcheck runs the pipeline and
//       the linters but prints only the verdict — the CI entry point.
//
//   vaqctl serve [--threads N] [--queries M] [--streams K] [--seed S]
//                [--cache on|off] [--capacity C] [--format text|prom|both]
//       Run the concurrent serving runtime (src/serve/) over a fleet of
//       demo streams plus an ingested repository: a mixed standing-query
//       workload is admitted through the bounded queue, sharded per
//       source and executed by N workers with a shared detection cache.
//       Per-query results and merged statistics are deterministic for a
//       fixed --seed regardless of --threads.
//
//   vaqctl trace [--threads N] [--queries M] [--streams K] [--seed S]
//                [--out FILE]
//       The same serve demo with per-query tracing armed: every query
//       gets a span tree (root "q<id>", children per execution phase
//       with modeled-ms self times and logical stats), the session gets
//       one for WAL/snapshot/recovery work. Prints each query's profile
//       tree and dumps all spans as Chrome trace-event JSON to --out
//       (stdout if omitted) — open in chrome://tracing or Perfetto.
//       The JSON is linted before it is written and is byte-identical
//       across runs and across --threads for a fixed workload.
//
//   vaqctl serve --checkpoint-dir DIR [--snapshot-every N]
//                [--crash-after K] [--queries M] [--streams K] [--seed S]
//                [--cache on|off] [--format text|prom|both]
//       Durable variant: the same workload runs as standing queries in
//       clip lockstep against a checkpoint store in DIR (src/ckpt/) — a
//       clip-granularity WAL plus a full snapshot every N clips. The
//       session config is persisted alongside the checkpoints, so the
//       session is restartable by `vaqctl recover` alone. --crash-after K
//       stops dead after K clip advances (no final results, no clean
//       shutdown) to stage a crash for the recovery demo:
//
//         vaqctl serve --checkpoint-dir /tmp/ckpt --crash-after 100
//         vaqctl recover --checkpoint-dir /tmp/ckpt
//
//   vaqctl recover --checkpoint-dir DIR [--format text|prom|both]
//       Recover the durable session in DIR: restore the newest valid
//       snapshot (corrupt ones are rejected and counted), replay the
//       WAL, resume the stream schedule to completion and print the
//       results plus resumed metrics. For a fixed config the output is
//       byte-identical to a run that never crashed.
//
//   vaqctl cluster [--nodes N] [--replicas R] [--scheme hash|range]
//                  [--videos V] [--k K] [--batch B] [--seed S]
//                  [--kill-node I] [--kill-at MS]
//                  [--action NAME] [--objects a,b,...]
//       Build a demo repository of V videos, shard it across N nodes
//       (each with R follower replicas) and answer a ranked query by
//       scatter–gather top-k with the threshold-algorithm stopping rule
//       (src/cluster/). Prints the merged top-k, whether it is identical
//       to single-node RVAQ (exit 1 if not), the modeled speedup, and
//       gather/network statistics. --kill-node I stages a node outage at
//       --kill-at virtual ms to demo replica failover.
//
//   vaqctl cascade [--recall R] [--seed S] [--videos V] [--k K]
//       Plan a model cascade over the seeded demo corpus (src/cascade/):
//       V demo videos are ingested with the expensive models and scored
//       once by the cheap proxy tier, then the cost-based planner picks
//       per-concept proxy thresholds for recall target R and the demo
//       top-K query runs both exact and planned. Prints the chosen plan,
//       the modeled cost reduction and the recall actually achieved
//       against the exact results. --recall 1.0 demonstrates the exact
//       fallback (no cascade, identical results by construction).
//
//   vaqctl traffic [--tenants N] [--duration-min M] [--seed S]
//                  [--workers W] [--qps Q] [--quota C] [--slo-ms D]
//                  [--abusive I]
//       Open-loop multi-tenant front door (src/traffic/): a seeded
//       arrival process (diurnal curve, bursts, hotspot tenants) over
//       the demo query mix, admitted through per-tenant quotas and
//       drained by a deficit-round-robin weighted-fair scheduler on
//       virtual time. Prints per-tenant admit/shed/SLO accounting and
//       exact sojourn percentiles — byte-identical per seed. With
//       --abusive I the run repeats with tenant I offering 10x its rate:
//       the abuser is shed at its quota (kResourceExhausted on the serve
//       path) and the command verifies every other tenant's p99 stayed
//       within 10% of the no-abuse baseline with identical result bytes,
//       exiting 1 on a violation.
//
//   vaqctl chaos [--trials N] [--seed S] [--canary on]
//                [--replay FILE] [--out FILE] [--shrink off]
//       Run N seeded whole-stack chaos trials (src/chaos/): each draws a
//       random scenario (standing/cluster/serve shape) plus a random
//       fault schedule (crashes, torn WAL advances, snapshot corruption,
//       node kills, partitions) and checks the invariant oracles —
//       byte-identical results vs. a fault-free reference, exact
//       progress, documented status codes, consistent recovery counters.
//       On failure the schedule is delta-debugged to a 1-minimal
//       reproducer and written to --out (default chaos_repro.json);
//       `vaqctl chaos --replay FILE` re-runs it byte-identically.
//       --canary on arms a deliberate double-apply bug to prove the
//       harness catches, shrinks and replays real failures.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "chaos/engine.h"
#include "ckpt/recovery.h"
#include "cluster/coordinator.h"
#include "cluster/partition.h"
#include "obs/query_trace.h"
#include "ckpt/serializer.h"
#include "ckpt/store.h"
#include "tools/pipeline_setup.h"
#include "vaq/vaq.h"

namespace vaq {
namespace {

// Minimal --flag value parser: flags precede or follow positionals.
struct Args {
  std::map<std::string, std::string> flags;
  std::vector<std::string> positional;

  static Args Parse(int argc, char** argv) {
    Args args;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0 && i + 1 < argc) {
        args.flags[arg.substr(2)] = argv[++i];
      } else {
        args.positional.push_back(arg);
      }
    }
    return args;
  }

  std::string Get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }

  // Presence test for valueless flags (e.g. --selfcheck). The parser
  // above pairs "--flag value"; a trailing bare flag lands in
  // positional, so accept either spelling.
  bool Has(const std::string& name) const {
    if (flags.count(name) != 0) return true;
    for (const std::string& p : positional) {
      if (p == "--" + name) return true;
    }
    return false;
  }
};

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t comma = s.find(',', start);
    const std::string piece = s.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!piece.empty()) out.push_back(piece);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

// Scenario parsing and the seeded demo pipeline live in
// tools/pipeline_setup.h so `vaqctl metrics`, `vaqctl serve` and
// bench_serve cannot drift apart.
StatusOr<synth::Scenario> MakeScenario(const std::string& spec,
                                       uint64_t seed) {
  return tools::ScenarioFromFlag(spec, seed);
}

int CmdIngest(const Args& args) {
  const std::string catalog_dir = args.Get("catalog");
  const std::string name = args.Get("name");
  const std::string spec = args.Get("scenario");
  if (catalog_dir.empty() || name.empty() || spec.empty()) {
    std::fprintf(stderr,
                 "ingest requires --catalog, --name and --scenario\n");
    return 2;
  }
  const uint64_t seed =
      static_cast<uint64_t>(std::atoll(args.Get("seed", "7").c_str()));
  auto scenario = MakeScenario(spec, seed);
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  const std::string models = args.Get("models", "maskrcnn");
  detect::ModelBundle bundle =
      models == "yolo" ? detect::ModelBundle::YoloI3d(scenario->truth(), seed)
      : models == "ideal"
          ? detect::ModelBundle::Ideal(scenario->truth(), seed)
          : detect::ModelBundle::MaskRcnnI3d(scenario->truth(), seed);

  offline::PaperScoring scoring;
  offline::Ingestor ingestor(&scenario->vocab(), &scoring,
                             offline::IngestOptions{});
  std::printf("ingesting '%s' (%lld clips) with %s models...\n",
              scenario->name().c_str(),
              static_cast<long long>(scenario->layout().NumClips()),
              models.c_str());
  auto index_or = ingestor.Ingest(scenario->truth(), bundle);
  if (!index_or.ok()) {
    std::fprintf(stderr, "%s\n", index_or.status().ToString().c_str());
    return 1;
  }
  const storage::VideoIndex index = std::move(index_or).value();
  const storage::Catalog catalog(catalog_dir);
  const Status status = catalog.Save(name, index);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("saved %zu object + %zu action tables as '%s' in %s\n",
              index.objects.size(), index.actions.size(), name.c_str(),
              catalog_dir.c_str());
  return 0;
}

int CmdLs(const Args& args) {
  const std::string catalog_dir = args.Get("catalog");
  if (catalog_dir.empty()) {
    std::fprintf(stderr, "ls requires --catalog\n");
    return 2;
  }
  const storage::Catalog catalog(catalog_dir);
  const std::vector<std::string> names = catalog.ListVideos();
  if (names.empty()) {
    std::printf("(no ingested videos in %s)\n", catalog_dir.c_str());
    return 0;
  }
  for (const std::string& name : names) {
    auto index = catalog.Load(name);
    if (!index.ok()) {
      std::printf("%-20s  <unreadable: %s>\n", name.c_str(),
                  index.status().ToString().c_str());
      continue;
    }
    std::printf("%-20s  %6lld clips  objects:", name.c_str(),
                static_cast<long long>(index->num_clips));
    for (const auto& t : index->objects) std::printf(" %s", t.type_name.c_str());
    std::printf("  actions:");
    for (const auto& t : index->actions) std::printf(" %s", t.type_name.c_str());
    std::printf("\n");
  }
  return 0;
}

int CmdRm(const Args& args) {
  const std::string catalog_dir = args.Get("catalog");
  const std::string name = args.Get("name");
  if (catalog_dir.empty() || name.empty()) {
    std::fprintf(stderr, "rm requires --catalog and --name\n");
    return 2;
  }
  const storage::Catalog catalog(catalog_dir);
  const Status status = catalog.Delete(name);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("deleted '%s'\n", name.c_str());
  return 0;
}

int CmdTopK(const Args& args) {
  const std::string catalog_dir = args.Get("catalog");
  const std::string action = args.Get("action");
  if (catalog_dir.empty() || (action.empty() && args.Get("objects").empty())) {
    std::fprintf(stderr,
                 "topk requires --catalog and --action and/or --objects\n");
    return 2;
  }
  offline::Repository repository;
  const storage::Catalog catalog(catalog_dir);
  const Status load = repository.AddFromCatalog(catalog);
  if (!load.ok()) {
    std::fprintf(stderr, "%s\n", load.ToString().c_str());
    return 1;
  }
  offline::PaperScoring scoring;
  offline::RvaqOptions options;
  options.k = std::atoll(args.Get("k", "5").c_str());
  auto result = repository.TopK(action, SplitCommas(args.Get("objects")),
                                scoring, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("queried %lld videos (%lld without the types), %lld candidate "
              "sequences\n",
              static_cast<long long>(result->videos_queried),
              static_cast<long long>(result->videos_skipped),
              static_cast<long long>(result->candidate_sequences));
  for (size_t i = 0; i < result->top.size(); ++i) {
    const auto& entry = result->top[i];
    std::printf("#%zu  %-16s clips [%lld, %lld]  score %.1f\n", i + 1,
                entry.video.c_str(),
                static_cast<long long>(entry.sequence.clips.lo),
                static_cast<long long>(entry.sequence.clips.hi),
                entry.sequence.exact_score);
  }
  std::printf("accesses: %s\n", result->accesses.ToString().c_str());
  return 0;
}

int CmdSql(const Args& args) {
  const std::string catalog_dir = args.Get("catalog");
  if (catalog_dir.empty() || args.positional.size() < 2) {
    std::fprintf(stderr, "sql requires --catalog and a statement\n");
    return 2;
  }
  query::Session session;
  const storage::Catalog catalog(catalog_dir);
  for (const std::string& name : catalog.ListVideos()) {
    auto index = catalog.Load(name);
    if (index.ok()) session.RegisterRepository(name, std::move(*index));
  }
  auto result = session.Execute(args.positional[1]);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  // EXPLAIN ANALYZE renders the per-phase profile tree before the rows.
  if (!result->profile_text.empty()) {
    std::fputs(result->profile_text.c_str(), stdout);
  }
  for (size_t i = 0; i < result->ranked.size(); ++i) {
    std::printf("#%zu  clips [%lld, %lld]  score %.1f\n", i + 1,
                static_cast<long long>(result->ranked[i].clips.lo),
                static_cast<long long>(result->ranked[i].clips.hi),
                result->ranked[i].exact_score);
  }
  std::printf("accesses: %s\n", result->accesses.ToString().c_str());
  return 0;
}

int CmdMetrics(const Args& args) {
  const uint64_t seed =
      static_cast<uint64_t>(std::atoll(args.Get("seed", "7").c_str()));
  const std::string format = args.Get("format", "both");
  if (format != "prom" && format != "json" && format != "both") {
    std::fprintf(stderr, "--format must be prom, json or both\n");
    return 2;
  }

  // Determinism: scope the snapshot to this run and pin the tracer clock,
  // so span histograms observe zero-duration spans instead of wall time.
  obs::MetricRegistry::Global().Reset();
  obs::Tracer::Global().SetClock([] { return 0.0; });

  synth::Scenario scenario = [&] {
    const std::string spec = args.Get("scenario");
    if (spec.empty()) return tools::DemoScenario(0);
    auto made = MakeScenario(spec, seed);
    VAQ_CHECK_OK(made.status());
    return std::move(*made);
  }();

  // Phase 1: the online engine over a faulty stream. The rates are high
  // enough that timeouts, outages, garbage scores, retries, breaker trips
  // and gap-policy fallbacks all occur within the demo's ~108 clips.
  const fault::FaultPlan plan(tools::DemoFaultSpec(), seed);
  const online::SvaqdOptions svaqd_options = tools::DemoSvaqdOptions(&plan);
  detect::ModelBundle models =
      detect::ModelBundle::MaskRcnnI3d(scenario.truth(), seed);
  const online::OnlineResult online_result =
      online::Svaqd(scenario.query(), scenario.layout(), svaqd_options)
          .Run(models.detector.get(), models.recognizer.get());

  // Phase 2: offline ingest + RVAQ top-K over the same scenario.
  offline::PaperScoring scoring;
  offline::Ingestor ingestor(&scenario.vocab(), &scoring,
                             offline::IngestOptions{});
  auto index_or = ingestor.Ingest(scenario.truth(), models);
  if (!index_or.ok()) {
    std::fprintf(stderr, "%s\n", index_or.status().ToString().c_str());
    return 1;
  }
  const std::string action_name =
      scenario.vocab().ActionTypeName(scenario.query().action);
  std::vector<std::string> object_names;
  for (ObjectTypeId type : scenario.query().objects) {
    object_names.push_back(scenario.vocab().ObjectTypeName(type));
  }
  auto tables_or = offline::BindByName(*index_or, action_name, object_names);
  if (!tables_or.ok()) {
    std::fprintf(stderr, "%s\n", tables_or.status().ToString().c_str());
    return 1;
  }
  offline::RvaqOptions rvaq_options;
  rvaq_options.k = 3;
  const offline::TopKResult topk =
      offline::Rvaq(&*tables_or, &scoring, rvaq_options).Run();

  obs::Tracer::Global().SetClock(nullptr);

  // Export. Both forms are always linted, even when only one is
  // printed: a malformed snapshot must fail loudly.
  const obs::Snapshot snapshot = obs::MetricRegistry::Global().TakeSnapshot();
  const std::string json = obs::ExportJson(snapshot);
  const std::string lint = obs::JsonLintError(json);
  if (!lint.empty()) {
    std::fprintf(stderr, "metrics JSON failed selfcheck: %s\n", lint.c_str());
    return 1;
  }
  const std::string prom = obs::ExportPrometheus(snapshot);
  const std::string prom_lint = obs::PromLintError(prom);
  if (!prom_lint.empty()) {
    std::fprintf(stderr, "metrics Prometheus text failed selfcheck: %s\n",
                 prom_lint.c_str());
    return 1;
  }
  if (args.Has("selfcheck")) {
    // --selfcheck: run the full pipeline and lint both export formats,
    // but print only the verdict. Exit status is the contract for CI.
    std::printf("selfcheck passed: %zu metric families, "
                "%zu Prometheus line(s), %zu JSON byte(s)\n",
                snapshot.entries.size(),
                static_cast<size_t>(
                    std::count(prom.begin(), prom.end(), '\n')),
                json.size());
    return 0;
  }
  if (format == "prom" || format == "both") {
    std::fputs(prom.c_str(), stdout);
  }
  if (format == "json" || format == "both") {
    std::printf("%s\n", json.c_str());
  }
  std::fprintf(stderr,
               "# clips=%lld degraded=%lld dropped=%lld topk=%zu "
               "accesses=%s\n",
               static_cast<long long>(online_result.clips_processed),
               static_cast<long long>(online_result.degraded_clips),
               static_cast<long long>(online_result.dropped_clips),
               topk.top.size(), topk.accesses.ToString().c_str());
  return 0;
}

// --- Durable standing-query serving (vaqctl serve --checkpoint-dir /
// vaqctl recover). The session config lives in the store next to the
// snapshots and WAL segments, so recovery needs nothing but the
// directory. The recovery driver only interprets snap-*/wal-* entries;
// "config" is invisible to it.

constexpr char kConfigEntry[] = "config";
constexpr uint32_t kConfigTag = 1;

Status WriteServeConfig(ckpt::Store* store,
                        const tools::StandingDemoSpec& spec) {
  ckpt::Payload payload;
  payload.PutI64(spec.num_streams);
  payload.PutI64(spec.num_queries);
  payload.PutU64(spec.seed);
  payload.PutBool(spec.share_detection_cache);
  payload.PutI64(spec.snapshot_every_clips);
  payload.PutF64(spec.snapshot_every_ms);
  ckpt::Serializer serializer;
  serializer.Append(kConfigTag, payload);
  return store->Put(kConfigEntry, serializer.blob());
}

StatusOr<tools::StandingDemoSpec> ReadServeConfig(const ckpt::Store& store) {
  VAQ_ASSIGN_OR_RETURN(const std::string blob, store.Get(kConfigEntry));
  VAQ_ASSIGN_OR_RETURN(const std::vector<ckpt::Record> records,
                       ckpt::ParseBlob(blob));
  for (const ckpt::Record& record : records) {
    if (record.tag != kConfigTag) continue;
    ckpt::PayloadReader in(record.payload);
    tools::StandingDemoSpec spec;
    int64_t streams = 0, queries = 0;
    VAQ_RETURN_IF_ERROR(in.GetI64(&streams));
    VAQ_RETURN_IF_ERROR(in.GetI64(&queries));
    VAQ_RETURN_IF_ERROR(in.GetU64(&spec.seed));
    VAQ_RETURN_IF_ERROR(in.GetBool(&spec.share_detection_cache));
    VAQ_RETURN_IF_ERROR(in.GetI64(&spec.snapshot_every_clips));
    VAQ_RETURN_IF_ERROR(in.GetF64(&spec.snapshot_every_ms));
    spec.num_streams = static_cast<int>(streams);
    spec.num_queries = static_cast<int>(queries);
    return spec;
  }
  return Status::Corruption("config entry has no config record");
}

// Finish the standing session and print results / stats / metrics; the
// tail shared by a completed durable serve and a recovery.
int FinishDurableSession(serve::Server* server, const std::string& format) {
  const std::vector<serve::ServedQuery> results = server->FinishStanding();
  obs::Tracer::Global().SetClock(nullptr);
  if (format == "text" || format == "both") {
    for (const serve::ServedQuery& q : results) {
      std::printf("%s\n", serve::DescribeServedQuery(q).c_str());
    }
    std::printf("stats: %s\n", server->stats().ToString().c_str());
  }
  if (format == "prom" || format == "both") {
    std::vector<std::string> prefixes = serve::LogicalMetricPrefixes();
    prefixes.push_back("vaq_ckpt_");
    const obs::Snapshot snapshot = obs::FilterSnapshot(
        obs::MetricRegistry::Global().TakeSnapshot(), prefixes);
    std::fputs(obs::ExportPrometheus(snapshot).c_str(), stdout);
  }
  return 0;
}

int CmdServeDurable(const Args& args) {
  const std::string dir = args.Get("checkpoint-dir");
  const std::string cache = args.Get("cache", "on");
  const std::string format = args.Get("format", "text");
  const int64_t crash_after =
      std::atoll(args.Get("crash-after", "-1").c_str());
  if (format != "text" && format != "prom" && format != "both") {
    std::fprintf(stderr, "--format must be text, prom or both\n");
    return 2;
  }

  obs::MetricRegistry::Global().Reset();
  obs::Tracer::Global().SetClock([] { return 0.0; });

  tools::StandingDemoSpec spec;
  spec.num_streams = std::atoi(args.Get("streams", "2").c_str());
  spec.num_queries = std::atoi(args.Get("queries", "4").c_str());
  spec.seed = static_cast<uint64_t>(std::atoll(args.Get("seed", "7").c_str()));
  spec.share_detection_cache = cache == "on";
  spec.snapshot_every_clips = std::atoll(
      args.Get("snapshot-every",
               std::to_string(serve::kDefaultSnapshotEveryClips))
          .c_str());
  if (spec.num_streams < 1 || spec.num_queries < 1 ||
      spec.snapshot_every_clips < 1) {
    std::fprintf(stderr,
                 "--streams/--queries/--snapshot-every must be >= 1\n");
    return 2;
  }

  const fault::FaultPlan plan(tools::DemoFaultSpec(), spec.seed);
  spec.fault_plan = &plan;
  ckpt::DirStore store(dir);
  spec.checkpoint_store = &store;
  Status status = WriteServeConfig(&store, spec);
  auto server = tools::MakeStandingDemoServer(spec);
  if (status.ok()) status = server.status();
  if (status.ok()) {
    status = tools::AdmitStandingDemoWorkload(server.value().get(), spec);
  }
  const int64_t total = tools::StandingDemoMaxAdvances(spec);
  const int64_t target =
      crash_after >= 0 ? std::min(crash_after, total) : total;
  if (status.ok()) {
    status = tools::DriveStandingDemo(server.value().get(), spec, target);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("durable serve: %d stream(s), %d standing quer%s, "
              "snapshot every %lld clips, checkpoints in %s\n",
              spec.num_streams, spec.num_queries,
              spec.num_queries == 1 ? "y" : "ies",
              static_cast<long long>(spec.snapshot_every_clips),
              store.dir().c_str());
  if (target < total) {
    // Staged crash: abandon the session mid-stream. Everything durable is
    // already in the store; `vaqctl recover` picks it up from here.
    obs::Tracer::Global().SetClock(nullptr);
    std::printf("crashed after %lld of %lld clip advances; resume with:\n"
                "  vaqctl recover --checkpoint-dir %s\n",
                static_cast<long long>(target),
                static_cast<long long>(total), store.dir().c_str());
    return 0;
  }
  return FinishDurableSession(server.value().get(), format);
}

int CmdRecover(const Args& args) {
  const std::string dir = args.Get("checkpoint-dir");
  const std::string format = args.Get("format", "text");
  if (dir.empty()) {
    std::fprintf(stderr, "vaqctl recover requires --checkpoint-dir\n");
    return 2;
  }
  if (format != "text" && format != "prom" && format != "both") {
    std::fprintf(stderr, "--format must be text, prom or both\n");
    return 2;
  }

  obs::MetricRegistry::Global().Reset();
  obs::Tracer::Global().SetClock([] { return 0.0; });

  ckpt::DirStore store(dir);
  auto config = ReadServeConfig(store);
  if (!config.ok()) {
    std::fprintf(stderr, "no recoverable session in %s: %s\n", dir.c_str(),
                 config.status().ToString().c_str());
    return 1;
  }
  tools::StandingDemoSpec spec = config.value();
  const fault::FaultPlan plan(tools::DemoFaultSpec(), spec.seed);
  spec.fault_plan = &plan;
  spec.checkpoint_store = &store;

  auto server = tools::MakeStandingDemoServer(spec);
  Status status = server.status();
  ckpt::RecoveryReport report;
  if (status.ok()) {
    auto recovered = server.value()->Recover();
    status = recovered.status();
    if (status.ok()) report = recovered.value();
  }
  const int64_t total = tools::StandingDemoMaxAdvances(spec);
  int64_t resumed_from = 0;
  if (status.ok()) {
    resumed_from = tools::StandingDemoAdvancesDone(*server.value(), spec);
    status = tools::DriveStandingDemo(server.value().get(), spec, total);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("recovered from %s: %lld WAL record(s) replayed, "
              "%lld snapshot(s) rejected, %lld WAL byte(s) dropped\n",
              report.snapshot.empty() ? "cold start"
                                      : report.snapshot.c_str(),
              static_cast<long long>(report.wal_records),
              static_cast<long long>(report.snapshots_rejected),
              static_cast<long long>(report.wal_bytes_dropped));
  std::printf("resumed at clip advance %lld of %lld\n",
              static_cast<long long>(resumed_from),
              static_cast<long long>(total));
  return FinishDurableSession(server.value().get(), format);
}

int CmdServe(const Args& args) {
  if (!args.Get("checkpoint-dir").empty()) return CmdServeDurable(args);
  const uint64_t seed =
      static_cast<uint64_t>(std::atoll(args.Get("seed", "7").c_str()));
  const int threads = std::atoi(args.Get("threads", "4").c_str());
  const int queries = std::atoi(args.Get("queries", "24").c_str());
  const int streams = std::atoi(args.Get("streams", "4").c_str());
  const std::string cache = args.Get("cache", "on");
  const std::string format = args.Get("format", "text");
  if (cache != "on" && cache != "off") {
    std::fprintf(stderr, "--cache must be on or off\n");
    return 2;
  }
  if (format != "text" && format != "prom" && format != "both") {
    std::fprintf(stderr, "--format must be text, prom or both\n");
    return 2;
  }
  if (queries < 1 || streams < 1 || threads < 0) {
    std::fprintf(stderr, "--queries/--streams must be >= 1, --threads >= 0\n");
    return 2;
  }

  // Same determinism regime as `vaqctl metrics`: scope the registry to
  // this run and pin the tracer clock.
  obs::MetricRegistry::Global().Reset();
  obs::Tracer::Global().SetClock([] { return 0.0; });

  const fault::FaultPlan plan(tools::DemoFaultSpec(), seed);
  serve::ServeOptions options;
  options.threads = threads;
  options.queue_capacity =
      std::atoi(args.Get("capacity", std::to_string(queries)).c_str());
  options.share_detection_cache = cache == "on";
  options.fault_plan = &plan;
  serve::Server server(options);
  const Status registered =
      tools::RegisterDemoSources(&server, streams, /*with_repository=*/true,
                                 seed);
  if (!registered.ok()) {
    std::fprintf(stderr, "%s\n", registered.ToString().c_str());
    return 1;
  }

  int rejected = 0;
  for (const std::string& sql :
       tools::DemoWorkload(streams, queries, /*with_repository=*/true)) {
    if (!server.Submit(sql).ok()) ++rejected;
  }
  const std::vector<serve::ServedQuery> results = server.Drain();
  obs::Tracer::Global().SetClock(nullptr);

  if (format == "text" || format == "both") {
    std::printf("submitted %d queries (%d rejected) over %d streams + "
                "repository '%s', %d worker thread(s), cache %s\n",
                queries, rejected, streams, tools::kDemoRepositoryName,
                threads, cache.c_str());
    for (const serve::ServedQuery& q : results) {
      std::printf("%s\n", serve::DescribeServedQuery(q).c_str());
    }
    std::printf("stats: %s\n", server.stats().ToString().c_str());
    const double ms_1 = serve::ModeledMakespanMs(results, 1);
    const double ms_n =
        serve::ModeledMakespanMs(results, threads > 0 ? threads : 1);
    std::printf("modeled makespan: %.1f ms @1 thread, %.1f ms @%d threads "
                "(speedup %.2fx)\n",
                ms_1, ms_n, threads > 0 ? threads : 1,
                ms_n > 0 ? ms_1 / ms_n : 1.0);
  }
  if (format == "prom" || format == "both") {
    const obs::Snapshot snapshot = obs::FilterSnapshot(
        obs::MetricRegistry::Global().TakeSnapshot(),
        serve::LogicalMetricPrefixes());
    std::fputs(obs::ExportPrometheus(snapshot).c_str(), stdout);
  }
  return 0;
}

// vaqctl trace: the same seeded serve demo as `vaqctl serve`, but with
// per-query tracing armed. Prints every query's profile tree and dumps
// all spans (session trace + per-query traces, admission order) as
// Chrome trace-event JSON — load the file in chrome://tracing or
// Perfetto. The JSON is a pure function of (--seed, --queries,
// --streams): timestamps come from modeled milliseconds, not wall
// time, so --threads only changes real duration, never the bytes.
int CmdTrace(const Args& args) {
  const uint64_t seed =
      static_cast<uint64_t>(std::atoll(args.Get("seed", "7").c_str()));
  const int threads = std::atoi(args.Get("threads", "4").c_str());
  const int queries = std::atoi(args.Get("queries", "24").c_str());
  const int streams = std::atoi(args.Get("streams", "4").c_str());
  const std::string out_path = args.Get("out");
  if (queries < 1 || streams < 1 || threads < 0) {
    std::fprintf(stderr, "--queries/--streams must be >= 1, --threads >= 0\n");
    return 2;
  }

  obs::MetricRegistry::Global().Reset();
  obs::Tracer::Global().SetClock([] { return 0.0; });

  const fault::FaultPlan plan(tools::DemoFaultSpec(), seed);
  serve::ServeOptions options;
  options.threads = threads;
  options.queue_capacity = queries;
  options.share_detection_cache = true;
  options.fault_plan = &plan;
  options.trace_queries = true;
  serve::Server server(options);
  const Status registered =
      tools::RegisterDemoSources(&server, streams, /*with_repository=*/true,
                                 seed);
  if (!registered.ok()) {
    std::fprintf(stderr, "%s\n", registered.ToString().c_str());
    return 1;
  }
  for (const std::string& sql :
       tools::DemoWorkload(streams, queries, /*with_repository=*/true)) {
    (void)server.Submit(sql);
  }
  std::vector<serve::ServedQuery> results = server.Drain();
  obs::Tracer::Global().SetClock(nullptr);

  std::sort(results.begin(), results.end(),
            [](const serve::ServedQuery& a, const serve::ServedQuery& b) {
              return a.id < b.id;
            });
  std::vector<const obs::QueryTrace*> traces;
  if (server.session_trace() != nullptr) {
    traces.push_back(server.session_trace());
  }
  for (const serve::ServedQuery& q : results) {
    if (q.trace != nullptr) traces.push_back(q.trace.get());
  }

  const std::string json = obs::ExportChromeTrace(traces);
  const std::string lint = obs::JsonLintError(json);
  if (!lint.empty()) {
    std::fprintf(stderr, "trace JSON failed selfcheck: %s\n", lint.c_str());
    return 1;
  }

  for (const serve::ServedQuery& q : results) {
    if (q.trace != nullptr) std::fputs(q.trace->RenderProfile().c_str(), stdout);
  }
  if (out_path.empty()) {
    std::printf("%s\n", json.c_str());
  } else {
    std::FILE* out = std::fopen(out_path.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "trace: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), out);
    std::fclose(out);
    std::printf("chrome trace written to %s (%zu byte(s), %zu trace(s))\n",
                out_path.c_str(), json.size(), traces.size());
  }
  return 0;
}

// vaqctl cluster: scatter–gather ranked retrieval over an in-process
// sharded cluster, checked against the single-node reference.
int CmdCluster(const Args& args) {
  const int nodes = std::atoi(args.Get("nodes", "4").c_str());
  const int replicas = std::atoi(args.Get("replicas", "1").c_str());
  const int videos = std::atoi(args.Get("videos", "8").c_str());
  const int batch = std::atoi(args.Get("batch", "4").c_str());
  const int kill_node = std::atoi(args.Get("kill-node", "-1").c_str());
  const double kill_at = std::atof(args.Get("kill-at", "0").c_str());
  const int64_t k =
      static_cast<int64_t>(std::atoll(args.Get("k", "5").c_str()));
  const uint64_t seed =
      static_cast<uint64_t>(std::atoll(args.Get("seed", "7").c_str()));
  const std::string action = args.Get("action", "running");
  const std::vector<std::string> objects =
      SplitCommas(args.Get("objects", "dog"));
  if (nodes <= 0 || videos <= 0 || batch <= 0 || k <= 0 || replicas < 0) {
    std::fprintf(stderr,
                 "cluster requires positive --nodes/--videos/--batch/--k "
                 "and --replicas >= 0\n");
    return 2;
  }
  auto scheme = cluster::ParsePartitionScheme(args.Get("scheme", "hash"));
  if (!scheme.ok()) {
    std::fprintf(stderr, "%s\n", scheme.status().ToString().c_str());
    return 2;
  }

  obs::MetricRegistry::Global().Reset();
  obs::Tracer::Global().SetClock([] { return 0.0; });
  offline::PaperScoring scoring;
  offline::Repository repository;
  for (int i = 0; i < videos; ++i) {
    synth::Scenario scenario = tools::DemoScenario(i);
    detect::ModelBundle models = detect::ModelBundle::MaskRcnnI3d(
        scenario.truth(), seed + static_cast<uint64_t>(i));
    offline::Ingestor ingestor(&scenario.vocab(), &scoring,
                               offline::IngestOptions{});
    auto index = ingestor.Ingest(scenario.truth(), models);
    if (!index.ok()) {
      std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
      return 1;
    }
    repository.Add("vid" + std::to_string(i), std::move(index.value()));
  }

  offline::RvaqOptions rvaq;
  rvaq.k = k;
  auto single = repository.TopK(action, objects, scoring, rvaq);
  if (!single.ok()) {
    std::fprintf(stderr, "%s\n", single.status().ToString().c_str());
    return 1;
  }

  cluster::ClusterOptions options;
  options.num_shards = nodes;
  options.num_replicas = replicas;
  options.scheme = scheme.value();
  options.batch_size = batch;
  options.kill_node = kill_node;
  options.kill_at_ms = kill_at;
  cluster::Coordinator coordinator(&repository, options);
  auto clustered = coordinator.TopK(action, objects, scoring, rvaq);
  obs::Tracer::Global().SetClock(nullptr);
  if (!clustered.ok()) {
    std::fprintf(stderr, "%s\n", clustered.status().ToString().c_str());
    return 1;
  }

  std::printf("cluster: %d shard(s) x %d replica(s), %s partitioning, "
              "%d video(s)\n",
              nodes, replicas, cluster::PartitionSchemeName(scheme.value()),
              videos);
  for (const offline::RepositoryRankedSequence& entry :
       clustered.value().merged.top) {
    std::printf("  %s %s score=%.4f\n", entry.video.c_str(),
                entry.sequence.clips.ToString().c_str(),
                offline::RankedMergeScore(entry.sequence));
  }
  bool identical = single.value().top.size() ==
                   clustered.value().merged.top.size();
  for (size_t i = 0; identical && i < single.value().top.size(); ++i) {
    identical = single.value().top[i].video ==
                    clustered.value().merged.top[i].video &&
                single.value().top[i].sequence.clips ==
                    clustered.value().merged.top[i].sequence.clips;
  }
  const cluster::ClusterTopKResult& r = clustered.value();
  std::printf("identical to single-node RVAQ: %s\n",
              identical ? "yes" : "NO");
  std::printf("modeled: single-node %.1f ms, cluster answer %.1f ms "
              "(speedup %.2fx, slowest shard %.1f ms)\n",
              r.single_node_ms, r.answer_ms,
              r.answer_ms > 0 ? r.single_node_ms / r.answer_ms : 1.0,
              r.max_shard_ms);
  std::printf("gather: %lld batch(es) consumed, %lld pruned by the bound; "
              "%lld/%lld entrie(s) consumed\n",
              static_cast<long long>(r.batches_consumed),
              static_cast<long long>(r.batches_pruned),
              static_cast<long long>(r.entries_consumed),
              static_cast<long long>(r.entries_total));
  std::printf("net: %lld message(s), %lld byte(s), %lld drop(s), "
              "%lld duplicate(s); failovers %lld\n",
              static_cast<long long>(r.net.messages),
              static_cast<long long>(r.net.bytes),
              static_cast<long long>(r.net.drops),
              static_cast<long long>(r.net.duplicates_suppressed),
              static_cast<long long>(r.failovers));
  return identical ? 0 : 1;
}

void ChaosProgress(const chaos::TrialResult& r) {
  if (r.failed()) {
    std::printf("trial %lld [%s]: FAIL (%zu violation(s))\n",
                static_cast<long long>(r.trial), chaos::PhaseName(r.phase),
                r.violations.size());
  } else if (r.trial % 10 == 9) {
    std::printf("trial %lld [%s]: ok\n", static_cast<long long>(r.trial),
                chaos::PhaseName(r.phase));
  }
  std::fflush(stdout);
}

int CmdChaos(const Args& args) {
  chaos::ChaosOptions options;
  options.trials =
      static_cast<int64_t>(std::atoll(args.Get("trials", "20").c_str()));
  options.seed =
      static_cast<uint64_t>(std::atoll(args.Get("seed", "1").c_str()));
  options.canary = args.Get("canary", "off") == "on";
  options.shrink = args.Get("shrink", "on") != "off";
  options.progress = &ChaosProgress;
  const std::string replay_path = args.Get("replay");
  const std::string out_path = args.Get("out", "chaos_repro.json");
  if (options.trials <= 0 && replay_path.empty()) {
    std::fprintf(stderr, "chaos requires positive --trials\n");
    return 2;
  }

  StatusOr<chaos::ChaosReport> report = Status::Internal("unreachable");
  if (!replay_path.empty()) {
    std::FILE* f = std::fopen(replay_path.c_str(), "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "chaos: cannot open %s\n", replay_path.c_str());
      return 2;
    }
    std::string json;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) json.append(buf, n);
    std::fclose(f);
    auto spec = chaos::ReplayFromJson(json);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 2;
    }
    std::printf("replaying trial %lld of seed %llu (%zu event(s))\n",
                static_cast<long long>(spec.value().trial),
                static_cast<unsigned long long>(spec.value().seed),
                spec.value().events.size());
    report = chaos::RunReplay(spec.value(), options);
  } else {
    std::printf("chaos sweep: %lld trial(s), seed %llu%s\n",
                static_cast<long long>(options.trials),
                static_cast<unsigned long long>(options.seed),
                options.canary ? ", canary armed" : "");
    report = chaos::RunChaos(options);
  }
  if (!report.ok()) {
    std::fprintf(stderr, "chaos harness error: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  const chaos::ChaosReport& r = report.value();
  std::printf("ran %lld trial(s):", static_cast<long long>(r.trials_run));
  for (const auto& [phase, count] : r.trials_per_phase) {
    std::printf(" %s=%lld", phase.c_str(), static_cast<long long>(count));
  }
  std::printf("\ncoverage:\n");
  for (const auto& [key, count] : r.coverage) {
    std::printf("  %-32s %lld\n", key.c_str(), static_cast<long long>(count));
  }
  if (!r.failed()) {
    std::printf("all oracles held\n");
    return 0;
  }

  std::printf("FAILURE in trial %lld [%s]:\n",
              static_cast<long long>(r.failed_trial),
              chaos::PhaseName(r.failed_phase));
  for (const std::string& v : r.failure) {
    std::printf("  %s\n", v.c_str());
  }
  std::printf("schedule shrunk %lld -> %zu event(s) in %lld run(s); "
              "replay %s\n",
              static_cast<long long>(r.original_events),
              r.reproducer.events.size(),
              static_cast<long long>(r.shrink_runs),
              r.replay_confirmed ? "confirmed byte-identical"
                                 : "NOT confirmed");
  std::FILE* out = std::fopen(out_path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "chaos: cannot write %s\n", out_path.c_str());
  } else {
    std::fwrite(r.replay_json.data(), 1, r.replay_json.size(), out);
    std::fclose(out);
    std::printf("reproducer written to %s\n", out_path.c_str());
  }
  return 1;
}

// vaqctl cascade: plan and execute a proxy-prefiltered top-k over the
// seeded demo corpus, reporting modeled cost and achieved recall.
int CmdCascade(const Args& args) {
  const double recall = std::atof(args.Get("recall", "0.9").c_str());
  const uint64_t seed =
      static_cast<uint64_t>(std::atoll(args.Get("seed", "7").c_str()));
  const int videos = std::atoi(args.Get("videos", "4").c_str());
  const int64_t k =
      static_cast<int64_t>(std::atoll(args.Get("k", "5").c_str()));
  if (!(recall > 0.0) || recall > 1.0 || videos <= 0 || k <= 0) {
    std::fprintf(
        stderr,
        "cascade requires --recall in (0, 1] and positive --videos/--k\n");
    return 2;
  }

  obs::MetricRegistry::Global().Reset();
  const StatusOr<tools::CascadeDemo> demo =
      tools::MakeCascadeDemo(videos, seed);
  if (!demo.ok()) {
    std::fprintf(stderr, "%s\n", demo.status().ToString().c_str());
    return 1;
  }
  const StatusOr<tools::CascadeFrontierPoint> point =
      tools::RunCascadeFrontierPoint(demo.value(), recall, k);
  if (!point.ok()) {
    std::fprintf(stderr, "%s\n", point.status().ToString().c_str());
    return 1;
  }

  const tools::CascadeFrontierPoint& p = point.value();
  std::printf("corpus: %d demo video(s), %lld clip(s), seed %llu\n", videos,
              static_cast<long long>(p.clips_total),
              static_cast<unsigned long long>(seed));
  std::printf("plan: %s\n", p.plan_text.c_str());
  std::printf("modeled cost: %.6g ms exact -> %.6g ms planned "
              "(%.3gx reduction)\n",
              p.full_cost_ms, p.cascade_cost_ms, p.cost_reduction);
  std::printf("clips surviving: %lld/%lld  videos pruned: %lld  "
              "candidates pruned: %lld\n",
              static_cast<long long>(p.clips_surviving),
              static_cast<long long>(p.clips_total),
              static_cast<long long>(p.videos_pruned),
              static_cast<long long>(p.candidates_pruned));
  std::printf("recall: target %.6g, predicted %.6g, achieved %.6g "
              "(top-%lld)\n",
              p.recall_target, p.predicted_recall, p.achieved_recall,
              static_cast<long long>(k));
  return 0;
}

// vaqctl traffic: open-loop multi-tenant front door over the demo preset
// mix — weighted-fair DRR admission, per-tenant quota shed and SLO
// accounting, service costs probed from the serve demo. With --abusive I
// the demo runs twice (tenant I at 10x its rate, and without) and checks
// isolation: every other tenant's p99 within 10% of the no-abuse
// baseline and its serve-path result bytes identical; violations exit 1.
int CmdTraffic(const Args& args) {
  tools::TrafficDemoSpec spec;
  spec.num_tenants = std::atoi(args.Get("tenants", "4").c_str());
  spec.duration_min = std::atof(args.Get("duration-min", "1").c_str());
  spec.seed =
      static_cast<uint64_t>(std::atoll(args.Get("seed", "21").c_str()));
  spec.num_workers = std::atoi(args.Get("workers", "8").c_str());
  spec.base_qps = std::atof(args.Get("qps", "2").c_str());
  spec.queue_quota = std::atoi(args.Get("quota", "4").c_str());
  spec.slo_ms = std::atof(args.Get("slo-ms", "250").c_str());
  const int abusive = std::atoi(args.Get("abusive", "-1").c_str());
  if (spec.num_tenants <= 0 || spec.duration_min <= 0.0 ||
      spec.num_workers <= 0 || spec.base_qps <= 0.0 ||
      spec.queue_quota <= 0 || abusive >= spec.num_tenants) {
    std::fprintf(stderr,
                 "traffic requires positive --tenants/--duration-min/"
                 "--workers/--qps/--quota and --abusive < --tenants\n");
    return 2;
  }

  obs::MetricRegistry::Global().Reset();
  // Placeholder; replaced below when --abusive is active.
  StatusOr<tools::TrafficDemoResult> baseline_or =
      Status::FailedPrecondition("no baseline run");
  if (abusive >= 0) {
    tools::TrafficDemoSpec base_spec = spec;
    base_spec.abusive_tenant = -1;
    base_spec.record_metrics = false;  // The abusive run owns the registry.
    baseline_or = tools::RunTrafficDemo(base_spec);
    if (!baseline_or.ok()) {
      std::fprintf(stderr, "%s\n", baseline_or.status().ToString().c_str());
      return 1;
    }
  }
  spec.abusive_tenant = abusive;
  const StatusOr<tools::TrafficDemoResult> result_or =
      tools::RunTrafficDemo(spec);
  if (!result_or.ok()) {
    std::fprintf(stderr, "%s\n", result_or.status().ToString().c_str());
    return 1;
  }
  const tools::TrafficDemoResult& r = result_or.value();

  std::printf("preset costs:");
  for (size_t p = 0; p < r.preset_cost_ms.size(); ++p) {
    std::printf(" p%zu=%.3fms", p, r.preset_cost_ms[p]);
  }
  std::printf("\n%s", r.report.ToString().c_str());
  std::printf("serve path: %d tenant(s), quota sheds=%lld%s\n",
              spec.num_tenants, static_cast<long long>(r.tenant_quota_sheds),
              r.truncated ? " (workload truncated at max_arrivals)" : "");

  if (abusive < 0) return 0;
  const tools::TrafficDemoResult& base = baseline_or.value();
  bool ok = true;
  for (int i = 0; i < spec.num_tenants; ++i) {
    if (i == abusive) continue;
    const double base_p99 = base.report.tenants[static_cast<size_t>(i)].p99_ms;
    const double cur_p99 = r.report.tenants[static_cast<size_t>(i)].p99_ms;
    const double tolerance = 0.10 * base_p99 + 1e-9;
    if (std::fabs(cur_p99 - base_p99) > tolerance) {
      std::printf("isolation VIOLATION: tenant t%d p99 %.3fms -> %.3fms "
                  "(>10%% of baseline)\n",
                  i, base_p99, cur_p99);
      ok = false;
    }
    if (r.tenant_results[static_cast<size_t>(i)] !=
        base.tenant_results[static_cast<size_t>(i)]) {
      std::printf("isolation VIOLATION: tenant t%d result bytes changed "
                  "under abuse\n", i);
      ok = false;
    }
  }
  if (!ok) return 1;
  std::printf("isolation: OK (tenant t%d at 10x shed %lld serve-path "
              "submission(s); every other tenant's p99 within 10%% and "
              "result bytes identical)\n",
              abusive, static_cast<long long>(r.tenant_quota_sheds));
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: vaqctl <subcommand> [--flags]\n"
      "\n"
      "subcommands:\n"
      "  ingest   generate a scenario, run the ingestion phase, persist it\n"
      "  ls       list ingested videos with their type inventories\n"
      "  rm       delete an ingested video and its table files\n"
      "  topk     repository-wide ranked retrieval (RVAQ per video)\n"
      "  sql      run an offline statement of the paper's dialect\n"
      "  metrics  seeded end-to-end pipeline, dump the metric snapshot\n"
      "           (--selfcheck lints both export formats, prints verdict)\n"
      "  serve    concurrent serving runtime over demo streams\n"
      "           (--checkpoint-dir for the durable variant)\n"
      "  trace    serve demo with per-query tracing: prints profile\n"
      "           trees, dumps Chrome trace-event JSON (--out FILE)\n"
      "  recover  recover a durable session from its checkpoint dir\n"
      "  cluster  sharded scatter-gather top-k vs the single-node\n"
      "           reference (--nodes N --replicas R [--kill-node I])\n"
      "  cascade  cost-based proxy cascade over the demo corpus\n"
      "           (--recall R --seed S): prints the planned cascade,\n"
      "           modeled cost reduction and achieved recall\n"
      "  traffic  open-loop multi-tenant front door over the demo mix\n"
      "           (--tenants N --duration-min M --seed S [--abusive I]):\n"
      "           weighted-fair admission, quota shed, SLO accounting\n"
      "  chaos    seeded whole-stack chaos sweep with invariant oracles\n"
      "           (--trials N --seed S [--canary on] [--replay FILE]\n"
      "           [--out FILE]); failures shrink to a minimal replay\n"
      "\n"
      "see the header of tools/vaqctl.cc for per-subcommand flags\n");
  return 2;
}

}  // namespace
}  // namespace vaq

int main(int argc, char** argv) {
  if (argc < 2) return vaq::Usage();
  const vaq::Args args = vaq::Args::Parse(argc, argv);
  const std::string command = argv[1];
  if (command == "ingest") return vaq::CmdIngest(args);
  if (command == "ls") return vaq::CmdLs(args);
  if (command == "rm") return vaq::CmdRm(args);
  if (command == "topk") return vaq::CmdTopK(args);
  if (command == "sql") return vaq::CmdSql(args);
  if (command == "metrics") return vaq::CmdMetrics(args);
  if (command == "serve") return vaq::CmdServe(args);
  if (command == "trace") return vaq::CmdTrace(args);
  if (command == "recover") return vaq::CmdRecover(args);
  if (command == "cluster") return vaq::CmdCluster(args);
  if (command == "cascade") return vaq::CmdCascade(args);
  if (command == "traffic") return vaq::CmdTraffic(args);
  if (command == "chaos") return vaq::CmdChaos(args);
  std::fprintf(stderr, "vaqctl: unknown subcommand '%s'\n", command.c_str());
  return vaq::Usage();
}
