#include "tools/pipeline_setup.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <set>
#include <utility>

#include "cascade/store.h"
#include "detect/models.h"
#include "offline/ingest.h"
#include "offline/scoring.h"

namespace vaq {
namespace tools {

StatusOr<synth::Scenario> ScenarioFromFlag(const std::string& spec,
                                           uint64_t seed) {
  if (spec.rfind("file:", 0) == 0) {
    // A scenario spec file (synth/spec_file.h format). The query defaults
    // to the first action plus the first object; override at query time.
    VAQ_ASSIGN_OR_RETURN(synth::ScenarioSpec parsed,
                         synth::LoadScenarioSpec(spec.substr(5)));
    if (seed != 0) parsed.seed = seed;
    if (parsed.actions.empty()) {
      return Status::InvalidArgument("spec file declares no actions");
    }
    std::vector<std::string> objects;
    if (!parsed.objects.empty()) objects.push_back(parsed.objects[0].name);
    return synth::Scenario::FromSpec(parsed, parsed.actions[0].name,
                                     objects);
  }
  if (spec.rfind("youtube:", 0) == 0) {
    const int index = std::atoi(spec.c_str() + 8);
    if (index < 1 || index > 12) {
      return Status::InvalidArgument("youtube index must be 1..12");
    }
    return synth::Scenario::YouTube(index, seed);
  }
  if (spec == "coffee") {
    return synth::Scenario::Movie(synth::MovieId::kCoffeeAndCigarettes, seed);
  }
  if (spec == "ironman") {
    return synth::Scenario::Movie(synth::MovieId::kIronMan, seed);
  }
  if (spec == "starwars") {
    return synth::Scenario::Movie(synth::MovieId::kStarWars3, seed);
  }
  if (spec == "titanic") {
    return synth::Scenario::Movie(synth::MovieId::kTitanic, seed);
  }
  return Status::InvalidArgument("unknown scenario spec: " + spec);
}

synth::ScenarioSpec DemoScenarioSpec(int index) {
  // Index 0 must stay identical to the original `vaqctl metrics` scenario:
  // small enough to run in a tier-1 test, busy enough that every metric
  // family is populated.
  synth::ScenarioSpec spec;
  spec.name = "metrics_demo";
  spec.minutes = 6;
  spec.fps = 30;
  spec.seed = 808;
  synth::ActionTrackSpec action;
  action.name = "running";
  action.duty = 0.3;
  action.mean_len_frames = 1000;
  spec.actions.push_back(action);
  synth::ObjectTrackSpec dog;
  dog.name = "dog";
  dog.background_duty = 0.06;
  dog.mean_len_frames = 700;
  dog.coupled_action = "running";
  dog.cover_action_prob = 0.9;
  spec.objects.push_back(dog);
  if (index > 0) {
    // Stream variant: its own feed name and seed, plus an uncoupled
    // "car" track so disjunctive (CNF) statements have a second type.
    spec.name = "cam" + std::to_string(index);
    spec.seed = 808 + 131 * static_cast<uint64_t>(index);
    synth::ObjectTrackSpec car;
    car.name = "car";
    car.background_duty = 0.08;
    car.mean_len_frames = 500;
    spec.objects.push_back(car);
  }
  return spec;
}

synth::Scenario DemoScenario(int index) {
  return synth::Scenario::FromSpec(DemoScenarioSpec(index), "running",
                                   {"dog"});
}

fault::FaultSpec DemoFaultSpec() {
  // High enough that timeouts, outages, garbage scores, retries, breaker
  // trips and gap-policy fallbacks all occur within a ~108-clip demo.
  fault::FaultSpec spec;
  spec.timeout_rate = 0.05;
  spec.crash_rate = 0.1;
  spec.crash_len_units = 600;
  spec.nan_score_rate = 0.01;
  spec.drop_clip_rate = 0.02;
  return spec;
}

online::SvaqdOptions DemoSvaqdOptions(const fault::FaultPlan* plan) {
  online::SvaqdOptions options;
  options.fault_plan = plan;
  options.missing_policy = online::MissingObsPolicy::kBackgroundPrior;
  return options;
}

Status RegisterDemoSources(serve::Server* server, int num_streams,
                           bool with_repository, uint64_t seed) {
  for (int i = 0; i < num_streams; ++i) {
    // One model seed per stream, so distinct feeds see distinct noise.
    server->RegisterStream("cam" + std::to_string(i), DemoScenario(i),
                           seed + static_cast<uint64_t>(i));
  }
  if (with_repository) {
    synth::Scenario scenario = DemoScenario(0);
    detect::ModelBundle models =
        detect::ModelBundle::MaskRcnnI3d(scenario.truth(), seed);
    offline::PaperScoring scoring;
    offline::Ingestor ingestor(&scenario.vocab(), &scoring,
                               offline::IngestOptions{});
    VAQ_ASSIGN_OR_RETURN(storage::VideoIndex index,
                         ingestor.Ingest(scenario.truth(), models));
    server->RegisterRepository(kDemoRepositoryName, std::move(index));
  }
  return Status::OK();
}

std::vector<std::string> DemoWorkload(int num_streams, int num_queries,
                                      bool with_repository) {
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(num_queries));
  for (int q = 0; q < num_queries; ++q) {
    if (with_repository && q % 8 == 5) {
      out.push_back(
          "SELECT MERGE(clipID) AS Sequence, RANK(act, obj) "
          "FROM (PROCESS " +
          std::string(kDemoRepositoryName) +
          " PRODUCE clipID, obj USING ObjectTracker, "
          "act USING ActionRecognizer) "
          "WHERE act='running' AND obj.include('dog') "
          "ORDER BY RANK(act, obj) LIMIT " +
          std::to_string(2 + q % 3));
      continue;
    }
    const int stream = q % (num_streams > 0 ? num_streams : 1);
    const std::string from =
        "FROM (PROCESS cam" + std::to_string(stream) +
        " PRODUCE clipID, obj USING ObjectDetector, "
        "act USING ActionRecognizer) ";
    switch ((q / (num_streams > 0 ? num_streams : 1)) % 3) {
      case 0:
        out.push_back("SELECT MERGE(clipID) AS Sequence " + from +
                      "WHERE act='running' AND obj.include('dog')");
        break;
      case 1:
        out.push_back("SELECT MERGE(clipID) AS Sequence " + from +
                      "WHERE obj.include('dog')");
        break;
      default:
        if (stream > 0) {
          // Disjunctive form: only the variant streams carry "car".
          out.push_back("SELECT MERGE(clipID) AS Sequence " + from +
                        "WHERE (obj='dog' OR obj='car') AND act='running'");
        } else {
          out.push_back("SELECT MERGE(clipID) AS Sequence " + from +
                        "WHERE act='running'");
        }
        break;
    }
  }
  return out;
}

StatusOr<CascadeDemo> MakeCascadeDemo(int num_videos, uint64_t seed) {
  CascadeDemo demo;
  for (int i = 0; i < num_videos; ++i) {
    const std::string name = "vid" + std::to_string(i);
    synth::Scenario scenario = DemoScenario(i);
    const uint64_t video_seed = seed + static_cast<uint64_t>(i);
    detect::ModelBundle models =
        detect::ModelBundle::MaskRcnnI3d(scenario.truth(), video_seed);
    offline::PaperScoring scoring;
    offline::Ingestor ingestor(&scenario.vocab(), &scoring,
                               offline::IngestOptions{});
    VAQ_ASSIGN_OR_RETURN(storage::VideoIndex index,
                         ingestor.Ingest(scenario.truth(), models));
    demo.repository.Add(name, std::move(index));
    VAQ_ASSIGN_OR_RETURN(
        cascade::ProxyVideoIndex proxy,
        cascade::LoadOrBuildProxyIndex(/*store=*/nullptr, name, scenario,
                                       detect::ModelProfile::ProxyCnn(),
                                       video_seed));
    demo.proxies.emplace(name, std::move(proxy));
    demo.videos.push_back(name);
  }
  return demo;
}

StatusOr<CascadeFrontierPoint> RunCascadeFrontierPoint(
    const CascadeDemo& demo, double recall_target, int64_t k) {
  CascadeFrontierPoint point;
  point.recall_target = recall_target;
  const cascade::Planner planner(&demo.proxies);
  VAQ_ASSIGN_OR_RETURN(const cascade::CascadePlan plan,
                       planner.Plan("running", {"dog"}, recall_target));
  point.use_cascade = plan.use_cascade;
  point.predicted_recall = plan.predicted_recall;
  point.full_cost_ms = plan.full_cost_ms;
  point.cascade_cost_ms = plan.cascade_cost_ms;
  point.cost_reduction = plan.CostReduction();
  point.clips_total = plan.clips_total;
  point.clips_surviving = plan.clips_surviving;
  point.plan_text = plan.ToString();

  const offline::PaperScoring scoring;
  offline::RvaqOptions options;
  options.k = k;
  VAQ_ASSIGN_OR_RETURN(
      const offline::RepositoryTopKResult exact,
      demo.repository.TopK("running", {"dog"}, scoring, options));
  offline::RepositoryTopKResult planned = exact;
  if (plan.use_cascade) {
    const cascade::PlanFilters filters(&demo.proxies, plan);
    options.prefilter = &filters;
    VAQ_ASSIGN_OR_RETURN(
        planned, demo.repository.TopK("running", {"dog"}, scoring, options));
  }
  point.videos_pruned = planned.videos_pruned;
  point.candidates_pruned = planned.candidates_pruned;
  if (!exact.top.empty()) {
    // Achieved recall: exact results matched by video + clip extent.
    std::set<std::string> returned;
    for (const offline::RepositoryRankedSequence& entry : planned.top) {
      returned.insert(entry.video + "|" + entry.sequence.clips.ToString());
    }
    int64_t matched = 0;
    for (const offline::RepositoryRankedSequence& entry : exact.top) {
      matched += returned.count(entry.video + "|" +
                                entry.sequence.clips.ToString());
    }
    point.achieved_recall = static_cast<double>(matched) /
                            static_cast<double>(exact.top.size());
  }
  return point;
}

StatusOr<std::unique_ptr<serve::Server>> MakeStandingDemoServer(
    const StandingDemoSpec& spec) {
  serve::ServeOptions options;
  options.threads = 0;  // Standing mode advances inline, clip-lockstep.
  options.share_detection_cache = spec.share_detection_cache;
  options.fault_plan = spec.fault_plan;
  options.checkpoint_store = spec.checkpoint_store;
  options.snapshot_every_clips = spec.snapshot_every_clips;
  options.snapshot_every_ms = spec.snapshot_every_ms;
  auto server = std::make_unique<serve::Server>(options);
  VAQ_RETURN_IF_ERROR(RegisterDemoSources(server.get(), spec.num_streams,
                                          /*with_repository=*/false,
                                          spec.seed));
  return server;
}

Status AdmitStandingDemoWorkload(serve::Server* server,
                                 const StandingDemoSpec& spec) {
  for (const std::string& sql :
       DemoWorkload(spec.num_streams, spec.num_queries,
                    /*with_repository=*/false)) {
    VAQ_RETURN_IF_ERROR(server->AddStandingQuery(sql).status());
  }
  return Status::OK();
}

int64_t StandingDemoMaxAdvances(const StandingDemoSpec& spec) {
  // Every demo scenario has the same duration, so every stream has the
  // same clip count and the round-robin schedule never hits a short one.
  return static_cast<int64_t>(spec.num_streams) *
         DemoScenario(0).layout().NumClips();
}

int64_t StandingDemoAdvancesDone(const serve::Server& server,
                                 const StandingDemoSpec& spec) {
  int64_t done = 0;
  for (int i = 0; i < spec.num_streams; ++i) {
    done += server.StreamPosition("cam" + std::to_string(i));
  }
  return done;
}

Status DriveStandingDemo(serve::Server* server, const StandingDemoSpec& spec,
                         int64_t max_total_advances) {
  // Advance i (0-based, session-wide) feeds clip i/num_streams of stream
  // cam<i % num_streams>. Resuming from recovered positions is exact:
  // with equal-length streams the sum of positions IS the next index.
  const int streams = spec.num_streams > 0 ? spec.num_streams : 1;
  for (int64_t i = StandingDemoAdvancesDone(*server, spec);
       i < max_total_advances; ++i) {
    VAQ_RETURN_IF_ERROR(server->AdvanceStream(
        "cam" + std::to_string(i % streams)));
  }
  return Status::OK();
}

std::vector<std::string> TrafficPresets(int num_presets) {
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(num_presets));
  for (int p = 0; p < num_presets; ++p) {
    out.push_back(
        "SELECT MERGE(clipID) AS Sequence, RANK(act, obj) "
        "FROM (PROCESS " +
        std::string(kDemoRepositoryName) +
        " PRODUCE clipID, obj USING ObjectTracker, "
        "act USING ActionRecognizer) "
        "WHERE act='running' AND obj.include('dog') "
        "ORDER BY RANK(act, obj) LIMIT " +
        std::to_string(2 + p % 5));
  }
  return out;
}

StatusOr<TrafficDemoResult> RunTrafficDemo(const TrafficDemoSpec& spec) {
  TrafficDemoResult out;

  traffic::WorkloadSpec workload;
  workload.num_tenants = spec.num_tenants;
  workload.duration_ms = spec.duration_min * 60'000.0;
  workload.seed = spec.seed;
  workload.base_qps = spec.base_qps;
  workload.abusive_tenant = spec.abusive_tenant;
  workload.num_presets = spec.num_presets;
  workload.queue_quota = spec.queue_quota;
  workload.slo_ms = spec.slo_ms;
  const std::vector<traffic::TenantSpec> tenants =
      traffic::MakeTenants(workload);
  const std::vector<traffic::Arrival> arrivals =
      traffic::GenerateArrivals(workload, &out.truncated);

  // The query-mix presets and their modeled service costs, probed once on
  // the threads = 0 reference schedule. The front door replays millions
  // of arrivals against this table instead of executing each one — same
  // modeled costs, tractable simulation.
  const std::vector<std::string> presets = TrafficPresets(spec.num_presets);
  out.preset_cost_ms.assign(presets.size(), 0.0);
  {
    serve::ServeOptions options;
    options.threads = 0;
    options.queue_capacity = static_cast<int>(presets.size()) + 1;
    serve::Server probe(options);
    VAQ_RETURN_IF_ERROR(RegisterDemoSources(&probe, /*num_streams=*/0,
                                            /*with_repository=*/true,
                                            spec.seed));
    std::vector<int64_t> ids;
    ids.reserve(presets.size());
    for (const std::string& sql : presets) {
      VAQ_ASSIGN_OR_RETURN(const int64_t id, probe.Submit(sql));
      ids.push_back(id);
    }
    for (const serve::ServedQuery& q : probe.Drain()) {
      for (size_t p = 0; p < ids.size(); ++p) {
        if (ids[p] != q.id) continue;
        VAQ_RETURN_IF_ERROR(q.status);
        out.preset_cost_ms[p] = q.simulated_ms;
      }
    }
  }

  // The tenant-tagged serve path: every tenant executes its preset pool
  // (rotated by tenant index, so neighbors run distinct orders) under
  // ServeOptions::tenant_quotas. The abusive tenant offers its quota plus
  // a full extra pool and is shed with kResourceExhausted for the
  // overflow; at threads = 0 nothing drains between submissions, so the
  // shed count is exact and deterministic.
  {
    const int per_tenant = static_cast<int>(presets.size());
    serve::ServeOptions options;
    options.threads = 0;
    options.queue_capacity =
        spec.num_tenants * std::max(per_tenant, spec.queue_quota) +
        spec.queue_quota + 8;
    for (const traffic::TenantSpec& tenant : tenants) {
      options.tenant_quotas[tenant.name] = tenant.queue_quota;
    }
    serve::Server server(options);
    VAQ_RETURN_IF_ERROR(RegisterDemoSources(&server, /*num_streams=*/0,
                                            /*with_repository=*/true,
                                            spec.seed));
    for (int i = 0; i < spec.num_tenants; ++i) {
      const traffic::TenantSpec& tenant = tenants[static_cast<size_t>(i)];
      const int submissions =
          tenant.abusive ? tenant.queue_quota + per_tenant : per_tenant;
      for (int s = 0; s < submissions; ++s) {
        const StatusOr<int64_t> id =
            server.Submit(presets[static_cast<size_t>((s + i) % per_tenant)],
                          tenant.name);
        if (id.ok()) continue;
        if (id.status().code() == StatusCode::kResourceExhausted) {
          ++out.tenant_quota_sheds;
          continue;
        }
        return id.status();
      }
    }
    std::vector<serve::ServedQuery> drained = server.Drain();
    std::sort(drained.begin(), drained.end(),
              [](const serve::ServedQuery& a, const serve::ServedQuery& b) {
                return a.id < b.id;
              });
    out.tenant_results.assign(static_cast<size_t>(spec.num_tenants), "");
    for (const serve::ServedQuery& q : drained) {
      for (size_t i = 0; i < tenants.size(); ++i) {
        if (tenants[i].name != q.tenant) continue;
        // Drop the "#<id>" prefix: admission ids shift when *another*
        // tenant changes its submission count, and the witness must
        // compare equal across exactly that change.
        const std::string desc = serve::DescribeServedQuery(q);
        out.tenant_results[i] += desc.substr(desc.find(' ') + 1) + "\n";
      }
    }
  }

  traffic::FrontDoorOptions door;
  door.num_workers = spec.num_workers;
  door.record_metrics = spec.record_metrics;
  out.report = traffic::RunFrontDoor(tenants, arrivals, out.preset_cost_ms,
                                     door);
  return out;
}

}  // namespace tools
}  // namespace vaq
