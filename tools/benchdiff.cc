// benchdiff — the CI perf-regression gate over BENCH_*.json artifacts.
//
//   benchdiff BASELINE.json CURRENT.json [--tolerance 0.10]
//
// Compares the top-level scalar fields of a freshly produced bench
// artifact against the committed baseline (bench/baselines/) and exits
// nonzero when the run regressed:
//
//   * numeric keys containing "speedup" or "reduction" must not drop
//     more than --tolerance (default 10%) below the baseline — these
//     are the modeled-performance headlines of each bench;
//   * boolean keys must not change at all — they encode pass/fail
//     assertions (byte-identity vs the single-node reference, cache
//     effectiveness, zero failed queries), and a flipped bit is a
//     correctness regression no tolerance excuses;
//   * keys present in the baseline must still exist — a silently
//     dropped metric would otherwise retire the gate guarding it.
//
// Everything else (latency percentiles, raw counts) is reported as an
// informational delta only: those values legitimately move when the
// cost model or the workload changes, and the committed baseline is
// refreshed in the same commit. The "meta" object (seed, git_rev,
// config summary) is ignored — it differs on every checkout by design.
//
// The parser is deliberately minimal: a depth-tracking scan that
// collects `"key": scalar` pairs at nesting depth 1 and skips nested
// objects/arrays wholesale. The artifacts are machine-written by
// bench/*.cc, so this is a contract, not a guess.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace vaq {
namespace {

struct Scalar {
  enum class Kind { kNumber, kBool, kString } kind = Kind::kNumber;
  double number = 0.0;
  bool boolean = false;
  std::string text;
};

// Reads a whole file; exits loudly on failure — a missing artifact must
// fail the gate, not skip it.
std::string ReadFileOrDie(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "benchdiff: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::string out;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    out.append(buffer, n);
  }
  std::fclose(f);
  return out;
}

// Extracts `"key": scalar` pairs at object depth 1 of a JSON document.
// Nested objects and arrays are skipped (their keys never surface), so
// "meta" and per-config rows are ignored automatically.
std::map<std::string, Scalar> TopLevelScalars(const std::string& json) {
  std::map<std::string, Scalar> out;
  int depth = 0;
  size_t i = 0;
  const size_t n = json.size();
  auto skip_ws = [&] {
    while (i < n && (json[i] == ' ' || json[i] == '\t' || json[i] == '\n' ||
                     json[i] == '\r' || json[i] == ',')) {
      ++i;
    }
  };
  auto parse_string = [&]() -> std::string {
    // Called with json[i] == '"'. The artifacts never escape quotes.
    std::string s;
    for (++i; i < n && json[i] != '"'; ++i) s += json[i];
    if (i < n) ++i;  // Closing quote.
    return s;
  };
  while (i < n) {
    skip_ws();
    if (i >= n) break;
    const char c = json[i];
    if (c == '{' || c == '[') {
      ++depth;
      ++i;
      continue;
    }
    if (c == '}' || c == ']') {
      --depth;
      ++i;
      continue;
    }
    if (c != '"') {
      ++i;
      continue;
    }
    const std::string key = parse_string();
    skip_ws();
    if (i >= n || json[i] != ':') continue;  // A bare string value.
    ++i;
    skip_ws();
    if (i >= n) break;
    if (json[i] == '{' || json[i] == '[') {
      // Nested value: skip it wholesale by depth counting.
      const int start_depth = depth;
      ++depth;
      ++i;
      while (i < n && depth > start_depth) {
        if (json[i] == '"') {
          parse_string();
          continue;
        }
        if (json[i] == '{' || json[i] == '[') ++depth;
        if (json[i] == '}' || json[i] == ']') --depth;
        ++i;
      }
      continue;
    }
    Scalar value;
    if (json[i] == '"') {
      value.kind = Scalar::Kind::kString;
      value.text = parse_string();
    } else if (json.compare(i, 4, "true") == 0) {
      value.kind = Scalar::Kind::kBool;
      value.boolean = true;
      i += 4;
    } else if (json.compare(i, 5, "false") == 0) {
      value.kind = Scalar::Kind::kBool;
      value.boolean = false;
      i += 5;
    } else {
      value.kind = Scalar::Kind::kNumber;
      char* end = nullptr;
      value.number = std::strtod(json.c_str() + i, &end);
      i = static_cast<size_t>(end - json.c_str());
    }
    if (depth == 1) out[key] = value;
  }
  return out;
}

bool IsGatedNumeric(const std::string& key) {
  return key.find("speedup") != std::string::npos ||
         key.find("reduction") != std::string::npos;
}

int Run(const std::string& baseline_path, const std::string& current_path,
        double tolerance) {
  const std::map<std::string, Scalar> baseline =
      TopLevelScalars(ReadFileOrDie(baseline_path));
  const std::map<std::string, Scalar> current =
      TopLevelScalars(ReadFileOrDie(current_path));
  if (baseline.empty()) {
    std::fprintf(stderr, "benchdiff: no top-level scalars in %s\n",
                 baseline_path.c_str());
    return 2;
  }

  int failures = 0;
  for (const auto& [key, base] : baseline) {
    const auto it = current.find(key);
    if (it == current.end()) {
      std::printf("FAIL %-32s present in baseline, missing from current\n",
                  key.c_str());
      ++failures;
      continue;
    }
    const Scalar& cur = it->second;
    if (base.kind != cur.kind) {
      std::printf("FAIL %-32s type changed\n", key.c_str());
      ++failures;
      continue;
    }
    switch (base.kind) {
      case Scalar::Kind::kBool:
        if (base.boolean != cur.boolean) {
          std::printf("FAIL %-32s %s -> %s (assertion flipped)\n", key.c_str(),
                      base.boolean ? "true" : "false",
                      cur.boolean ? "true" : "false");
          ++failures;
        } else {
          std::printf("ok   %-32s %s\n", key.c_str(),
                      base.boolean ? "true" : "false");
        }
        break;
      case Scalar::Kind::kNumber: {
        const double floor = base.number * (1.0 - tolerance);
        if (IsGatedNumeric(key) && cur.number < floor) {
          std::printf("FAIL %-32s %.4f -> %.4f (floor %.4f, -%.1f%%)\n",
                      key.c_str(), base.number, cur.number, floor,
                      100.0 * (1.0 - cur.number / base.number));
          ++failures;
        } else {
          std::printf("%s %-32s %.4f -> %.4f\n",
                      IsGatedNumeric(key) ? "ok  " : "info", key.c_str(),
                      base.number, cur.number);
        }
        break;
      }
      case Scalar::Kind::kString:
        std::printf("info %-32s \"%s\" -> \"%s\"\n", key.c_str(),
                    base.text.c_str(), cur.text.c_str());
        break;
    }
  }
  for (const auto& [key, cur] : current) {
    (void)cur;
    if (baseline.find(key) == baseline.end()) {
      std::printf("info %-32s new key (not in baseline)\n", key.c_str());
    }
  }

  if (failures > 0) {
    std::printf("benchdiff: %d regression(s) vs %s\n", failures,
                baseline_path.c_str());
    return 1;
  }
  std::printf("benchdiff: no regressions vs %s (tolerance %.0f%%)\n",
              baseline_path.c_str(), tolerance * 100.0);
  return 0;
}

}  // namespace
}  // namespace vaq

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  double tolerance = 0.10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() != 2 || tolerance <= 0.0 || tolerance >= 1.0) {
    std::fprintf(stderr,
                 "usage: benchdiff BASELINE.json CURRENT.json "
                 "[--tolerance 0.10]\n");
    return 2;
  }
  return vaq::Run(positional[0], positional[1], tolerance);
}
