// Seeded demo-pipeline setup shared by the vaqctl subcommands and the
// serving benchmark.
//
// `vaqctl metrics` (one seeded end-to-end pipeline) and `vaqctl serve` /
// bench_serve (the same pipeline fanned out across many streams and
// standing queries) must agree on scenarios, fault rates and engine
// options — otherwise the two subcommands drift and their outputs stop
// being comparable. This header is the single definition of that demo
// configuration:
//
//   * DemoScenario(0) is byte-for-byte the original `vaqctl metrics`
//     scenario (6 minutes, "running" + coupled "dog", seed 808);
//   * DemoScenario(i > 0) derives stream variants (own seed, an extra
//     uncoupled "car" track) so a serving fleet has distinct feeds;
//   * DemoFaultSpec / DemoSvaqdOptions are the `vaqctl metrics` fault
//     rates and engine options, reused verbatim by the serving runtime.
#ifndef VAQ_TOOLS_PIPELINE_SETUP_H_
#define VAQ_TOOLS_PIPELINE_SETUP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cascade/planner.h"
#include "common/status.h"
#include "fault/fault_plan.h"
#include "offline/repository.h"
#include "online/svaqd.h"
#include "serve/server.h"
#include "synth/scenario.h"
#include "synth/spec_file.h"
#include "traffic/front_door.h"
#include "traffic/workload.h"

namespace vaq {
namespace tools {

// The repository name RegisterDemoSources ingests the demo video under.
inline constexpr char kDemoRepositoryName[] = "library";

// Scenario from a CLI --scenario spec:
//   youtube:<1..12> | coffee | ironman | starwars | titanic
//   | file:<scenario-spec-path> (synth/spec_file.h format).
StatusOr<synth::Scenario> ScenarioFromFlag(const std::string& spec,
                                           uint64_t seed);

// The demo scenario family. Index 0 is the `vaqctl metrics` pipeline's
// scenario; higher indices are per-stream variants.
synth::ScenarioSpec DemoScenarioSpec(int index);
synth::Scenario DemoScenario(int index);

// The demo fault rates (timeouts, outages, garbage scores, clip drops) —
// high enough that every resilience path fires within a 6-minute video.
fault::FaultSpec DemoFaultSpec();

// Engine options for the faulty demo stream. `plan` may be null (clean
// stream); it must outlive the returned options' user.
online::SvaqdOptions DemoSvaqdOptions(const fault::FaultPlan* plan);

// Registers `num_streams` demo streams ("cam0".."cam<n-1>", model seeds
// derived from `seed`) and, when `with_repository`, ingests DemoScenario(0)
// as repository `kDemoRepositoryName`. The server-level fault plan (if
// any) applies: the streams carry none of their own.
Status RegisterDemoSources(serve::Server* server, int num_streams,
                           bool with_repository, uint64_t seed);

// A mixed standing-query workload over those sources: conjunctive and
// CNF online statements round-robined across the streams (several per
// stream, so a shared detection cache has reuse to find) plus ranked
// top-K statements against the repository when `with_repository`.
std::vector<std::string> DemoWorkload(int num_streams, int num_queries,
                                      bool with_repository);

// --- Cascade demo -------------------------------------------------------
// The seeded multi-video corpus behind `vaqctl cascade`, bench_cascade
// and the cascade consistency tests: DemoScenario(i) ingested with the
// expensive models under "vid<i>" (per-video model seeds derived from
// `seed`), plus the matching ingest-time proxy tier (src/cascade/). Pure
// function of its arguments, so the tools, the bench and the tests all
// see one corpus.

struct CascadeDemo {
  offline::Repository repository;   // Expensive-model indexes.
  cascade::ProxySet proxies;        // Ingest-time proxy tier.
  std::vector<std::string> videos;  // Registered names, index order.
};

StatusOr<CascadeDemo> MakeCascadeDemo(int num_videos, uint64_t seed);

// One point of the demo cost-vs-recall frontier: plan the demo query
// ("running" + "dog") at `recall_target`, execute both the exact and
// the planned top-k over the corpus, and measure the recall actually
// achieved — the fraction of the exact top-k's results the planned run
// returned (matched by video and clip extent).
struct CascadeFrontierPoint {
  double recall_target = 1.0;
  bool use_cascade = false;
  double predicted_recall = 1.0;
  double achieved_recall = 1.0;
  // Modeled inference bills (cascade::CascadePlan); on an exact plan
  // cascade_cost_ms == full_cost_ms and the reduction is 1.0.
  double full_cost_ms = 0.0;
  double cascade_cost_ms = 0.0;
  double cost_reduction = 1.0;
  int64_t clips_total = 0;
  int64_t clips_surviving = 0;
  int64_t videos_pruned = 0;
  int64_t candidates_pruned = 0;
  std::string plan_text;  // CascadePlan::ToString of the chosen plan.
};

StatusOr<CascadeFrontierPoint> RunCascadeFrontierPoint(
    const CascadeDemo& demo, double recall_target, int64_t k);

// --- Durable standing-query demo ---------------------------------------
// The restartable clip-lockstep session behind `vaqctl serve
// --checkpoint-dir`, `vaqctl recover`, the crash-recovery tests and
// bench_ckpt: the demo streams, DemoWorkload's online statements admitted
// as standing queries, and a round-robin clip schedule that can resume
// from recovered stream positions.

struct StandingDemoSpec {
  int num_streams = 2;
  int num_queries = 4;
  uint64_t seed = 11;
  bool share_detection_cache = true;
  // Neither pointer is owned; both must outlive the server.
  const fault::FaultPlan* fault_plan = nullptr;
  ckpt::Store* checkpoint_store = nullptr;
  int64_t snapshot_every_clips = serve::kDefaultSnapshotEveryClips;
  double snapshot_every_ms = 0.0;
};

// A server with the demo streams registered and the spec's durability
// options applied. Standing mode is single-threaded by construction, so
// the server runs inline (threads = 0). Admit queries (or Recover())
// before driving it.
StatusOr<std::unique_ptr<serve::Server>> MakeStandingDemoServer(
    const StandingDemoSpec& spec);

// Admits DemoWorkload(num_streams, num_queries, false) as standing
// queries. Call on a fresh server only — a recovered one already has
// its queries.
Status AdmitStandingDemoWorkload(serve::Server* server,
                                 const StandingDemoSpec& spec);

// Clip advances in a full run of the demo (num_streams × demo clips),
// and the advances a server has already performed (sum of its stream
// positions — exact for the round-robin schedule).
int64_t StandingDemoMaxAdvances(const StandingDemoSpec& spec);
int64_t StandingDemoAdvancesDone(const serve::Server& server,
                                 const StandingDemoSpec& spec);

// Drives the round-robin clip schedule from wherever the server is —
// fresh or recovered — until `max_total_advances` advances have happened
// session-wide. Restartable: stop anywhere ("crash"), Recover() into a
// fresh server, call again with the same target.
Status DriveStandingDemo(serve::Server* server, const StandingDemoSpec& spec,
                         int64_t max_total_advances);

// --- Traffic demo -------------------------------------------------------
// The million-user front door behind `vaqctl traffic` and bench_traffic:
// an open-loop multi-tenant workload (src/traffic/workload.h) whose query
// mix is TrafficPresets — the DemoWorkload ranked statement against the
// demo repository at varied LIMIT, the interactive (tens-of-ms modeled
// disk time) side of the demo; the standing online statements model a
// whole stream scan and are not per-session work. Service costs are
// probed once per preset on a threads = 0 serve::Server and the
// weighted-fair front door (src/traffic/front_door.h) replays the
// arrival timeline against that table. A second, tenant-tagged server
// executes each tenant's presets under its quota — the result-byte
// witness the isolation experiments diff.

// The interactive ranked query mix: DemoWorkload's ranked statement with
// LIMIT 2 + p % 5 for preset p.
std::vector<std::string> TrafficPresets(int num_presets);

struct TrafficDemoSpec {
  int num_tenants = 4;
  double duration_min = 1.0;  // Virtual minutes of offered load.
  uint64_t seed = 21;
  int num_presets = 8;        // TrafficPresets pool size.
  int num_workers = 8;        // Front-door service slots.
  double base_qps = 2.0;      // Per-tenant offered rate, queries/s.
  // Per-tenant admission quota: admitted-but-unfinished queries (queued
  // plus in service), the ServeOptions::tenant_quotas semantics. Keeping
  // it below num_workers caps how many slots one tenant can hold.
  int queue_quota = 4;
  double slo_ms = 250.0;      // Deadline class for every tenant.
  // Tenant index offering 10x its rate (-1 for none): shed at its quota,
  // everyone else's percentiles and result bytes must not move.
  int abusive_tenant = -1;
  bool record_metrics = true;  // Publish vaq_traffic_* families.
};

struct TrafficDemoResult {
  traffic::TrafficReport report;
  // Probed per-preset modeled service cost (threads = 0 reference).
  std::vector<double> preset_cost_ms;
  // Per-tenant described results from the tenant-tagged serve path
  // (sorted by admission id). Byte-identical across runs for a seed; a
  // non-abusive tenant's entry must not change when another tenant
  // turns abusive.
  std::vector<std::string> tenant_results;
  // kResourceExhausted sheds the tenant-tagged server issued (the
  // abusive tenant's submissions beyond its quota).
  int64_t tenant_quota_sheds = 0;
  bool truncated = false;  // WorkloadSpec::max_arrivals was hit.
};

StatusOr<TrafficDemoResult> RunTrafficDemo(const TrafficDemoSpec& spec);

}  // namespace tools
}  // namespace vaq

#endif  // VAQ_TOOLS_PIPELINE_SETUP_H_
