// Seeded demo-pipeline setup shared by the vaqctl subcommands and the
// serving benchmark.
//
// `vaqctl metrics` (one seeded end-to-end pipeline) and `vaqctl serve` /
// bench_serve (the same pipeline fanned out across many streams and
// standing queries) must agree on scenarios, fault rates and engine
// options — otherwise the two subcommands drift and their outputs stop
// being comparable. This header is the single definition of that demo
// configuration:
//
//   * DemoScenario(0) is byte-for-byte the original `vaqctl metrics`
//     scenario (6 minutes, "running" + coupled "dog", seed 808);
//   * DemoScenario(i > 0) derives stream variants (own seed, an extra
//     uncoupled "car" track) so a serving fleet has distinct feeds;
//   * DemoFaultSpec / DemoSvaqdOptions are the `vaqctl metrics` fault
//     rates and engine options, reused verbatim by the serving runtime.
#ifndef VAQ_TOOLS_PIPELINE_SETUP_H_
#define VAQ_TOOLS_PIPELINE_SETUP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "fault/fault_plan.h"
#include "online/svaqd.h"
#include "serve/server.h"
#include "synth/scenario.h"
#include "synth/spec_file.h"

namespace vaq {
namespace tools {

// The repository name RegisterDemoSources ingests the demo video under.
inline constexpr char kDemoRepositoryName[] = "library";

// Scenario from a CLI --scenario spec:
//   youtube:<1..12> | coffee | ironman | starwars | titanic
//   | file:<scenario-spec-path> (synth/spec_file.h format).
StatusOr<synth::Scenario> ScenarioFromFlag(const std::string& spec,
                                           uint64_t seed);

// The demo scenario family. Index 0 is the `vaqctl metrics` pipeline's
// scenario; higher indices are per-stream variants.
synth::ScenarioSpec DemoScenarioSpec(int index);
synth::Scenario DemoScenario(int index);

// The demo fault rates (timeouts, outages, garbage scores, clip drops) —
// high enough that every resilience path fires within a 6-minute video.
fault::FaultSpec DemoFaultSpec();

// Engine options for the faulty demo stream. `plan` may be null (clean
// stream); it must outlive the returned options' user.
online::SvaqdOptions DemoSvaqdOptions(const fault::FaultPlan* plan);

// Registers `num_streams` demo streams ("cam0".."cam<n-1>", model seeds
// derived from `seed`) and, when `with_repository`, ingests DemoScenario(0)
// as repository `kDemoRepositoryName`. The server-level fault plan (if
// any) applies: the streams carry none of their own.
Status RegisterDemoSources(serve::Server* server, int num_streams,
                           bool with_repository, uint64_t seed);

// A mixed standing-query workload over those sources: conjunctive and
// CNF online statements round-robined across the streams (several per
// stream, so a shared detection cache has reuse to find) plus ranked
// top-K statements against the repository when `with_repository`.
std::vector<std::string> DemoWorkload(int num_streams, int num_queries,
                                      bool with_repository);

// --- Durable standing-query demo ---------------------------------------
// The restartable clip-lockstep session behind `vaqctl serve
// --checkpoint-dir`, `vaqctl recover`, the crash-recovery tests and
// bench_ckpt: the demo streams, DemoWorkload's online statements admitted
// as standing queries, and a round-robin clip schedule that can resume
// from recovered stream positions.

struct StandingDemoSpec {
  int num_streams = 2;
  int num_queries = 4;
  uint64_t seed = 11;
  bool share_detection_cache = true;
  // Neither pointer is owned; both must outlive the server.
  const fault::FaultPlan* fault_plan = nullptr;
  ckpt::Store* checkpoint_store = nullptr;
  int64_t snapshot_every_clips = serve::kDefaultSnapshotEveryClips;
  double snapshot_every_ms = 0.0;
};

// A server with the demo streams registered and the spec's durability
// options applied. Standing mode is single-threaded by construction, so
// the server runs inline (threads = 0). Admit queries (or Recover())
// before driving it.
StatusOr<std::unique_ptr<serve::Server>> MakeStandingDemoServer(
    const StandingDemoSpec& spec);

// Admits DemoWorkload(num_streams, num_queries, false) as standing
// queries. Call on a fresh server only — a recovered one already has
// its queries.
Status AdmitStandingDemoWorkload(serve::Server* server,
                                 const StandingDemoSpec& spec);

// Clip advances in a full run of the demo (num_streams × demo clips),
// and the advances a server has already performed (sum of its stream
// positions — exact for the round-robin schedule).
int64_t StandingDemoMaxAdvances(const StandingDemoSpec& spec);
int64_t StandingDemoAdvancesDone(const serve::Server& server,
                                 const StandingDemoSpec& spec);

// Drives the round-robin clip schedule from wherever the server is —
// fresh or recovered — until `max_total_advances` advances have happened
// session-wide. Restartable: stop anywhere ("crash"), Recover() into a
// fresh server, call again with the same target.
Status DriveStandingDemo(serve::Server* server, const StandingDemoSpec& spec,
                         int64_t max_total_advances);

}  // namespace tools
}  // namespace vaq

#endif  // VAQ_TOOLS_PIPELINE_SETUP_H_
