#include "cluster/standing.h"

#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "query/ast.h"
#include "query/parser.h"

namespace vaq {
namespace cluster {
namespace {

constexpr uint32_t kTagShip = 4;  // Primary -> replica: store entry diffs.

}  // namespace

StandingCluster::StandingCluster(StandingClusterOptions options,
                                 RegisterFn register_streams)
    : options_(options), register_streams_(std::move(register_streams)) {
  VAQ_CHECK_GT(options_.num_nodes, 0);
  VAQ_CHECK_GT(options_.ship_every_advances, 0);
  net_ = std::make_unique<Net>(options_.net, options_.cluster_fault_plan);
}

StandingCluster::~StandingCluster() = default;

Status StandingCluster::Init() {
  VAQ_CHECK(!initialized_);
  for (int i = 0; i < options_.num_nodes; ++i) {
    NodeState state;
    state.primary_store = std::make_unique<ckpt::MemStore>();
    state.replica_store = std::make_unique<ckpt::MemStore>();
    VAQ_ASSIGN_OR_RETURN(state.server, MakeServer(state.primary_store.get()));
    nodes_.push_back(std::move(state));
  }
  initialized_ = true;
  return Status::OK();
}

StatusOr<std::unique_ptr<serve::Server>> StandingCluster::MakeServer(
    ckpt::Store* store) {
  serve::ServeOptions options;
  options.threads = 0;  // Standing mode is clip-lockstep, inline.
  options.share_detection_cache = options_.share_detection_cache;
  options.fault_plan = options_.engine_fault_plan;
  options.checkpoint_store = store;
  options.snapshot_every_clips = options_.snapshot_every_clips;
  options.snapshot_metrics = false;  // Registry is shared cluster-wide.
  auto server = std::make_unique<serve::Server>(options);
  VAQ_RETURN_IF_ERROR(register_streams_(server.get()));
  return server;
}

int StandingCluster::OwnerOf(const std::string& source) const {
  return HashShardOf(source, options_.num_nodes);
}

bool StandingCluster::NodeIsDown(int node, double at_ms) const {
  if (options_.kill_node == node && at_ms >= options_.kill_at_ms) return true;
  return options_.cluster_fault_plan != nullptr &&
         options_.cluster_fault_plan->NodeDown(node, at_ms);
}

StatusOr<int64_t> StandingCluster::AddStandingQuery(const std::string& sql) {
  VAQ_CHECK(initialized_);
  VAQ_ASSIGN_OR_RETURN(query::QueryStatement stmt, query::Parse(sql));
  const int owner = OwnerOf(stmt.video);
  NodeState& state = nodes_[static_cast<size_t>(owner)];
  VAQ_ASSIGN_OR_RETURN(const int64_t local_id,
                       state.server->AddStandingQuery(sql));
  // Admissions ship immediately: losing one to a lagging replica would
  // lose the query itself, not just re-executable clip work.
  if (!state.failed) VAQ_RETURN_IF_ERROR(Ship(owner));
  queries_.emplace_back(owner, local_id);
  obs::MetricRegistry::Global()
      .GetCounter("vaq_cluster_standing_queries_total", {})
      ->Increment();
  return static_cast<int64_t>(queries_.size()) - 1;
}

Status StandingCluster::AdvanceStream(const std::string& source) {
  VAQ_CHECK(initialized_);
  clock_.Advance(options_.advance_tick_ms);
  const int owner = OwnerOf(source);
  NodeState& state = nodes_[static_cast<size_t>(owner)];
  if (!state.failed && NodeIsDown(owner, clock_.now_ms())) {
    VAQ_RETURN_IF_ERROR(Failover(owner));
  }
  VAQ_RETURN_IF_ERROR(state.server->AdvanceStream(source));
  ++intended_[source];
  obs::MetricRegistry::Global()
      .GetCounter("vaq_cluster_advances_total", {})
      ->Increment();
  if (!state.failed && ++state.advances_since_ship >=
                           options_.ship_every_advances) {
    VAQ_RETURN_IF_ERROR(Ship(owner));
  }
  DrainNet();
  return Status::OK();
}

int64_t StandingCluster::StreamPosition(const std::string& source) const {
  auto it = intended_.find(source);
  return it == intended_.end() ? 0 : it->second;
}

Status StandingCluster::Ship(int node) {
  NodeState& state = nodes_[static_cast<size_t>(node)];
  int64_t bytes = 0;
  VAQ_RETURN_IF_ERROR(
      ckpt::SyncStores(*state.primary_store, state.replica_store.get(),
                       &bytes));
  state.advances_since_ship = 0;
  if (bytes == 0) return Status::OK();
  shipped_bytes_ += bytes;
  // The follower of node i lives on host num_nodes + i.
  net_->Send(node, options_.num_nodes + node, kTagShip, "ship", "", bytes,
             clock_.now_ms());
  obs::MetricRegistry::Global()
      .GetCounter("vaq_cluster_ship_bytes_total", {})
      ->Increment(bytes);
  return Status::OK();
}

Status StandingCluster::Failover(int node) {
  NodeState& state = nodes_[static_cast<size_t>(node)];
  ++failovers_;
  obs::MetricRegistry::Global()
      .GetCounter("vaq_cluster_failovers_total", {{"mode", "standing"}})
      ->Increment();
  // Promote: a standby server with the same registrations recovers from
  // the replica store (snapshot + WAL shipping got it there), then
  // replays any advances that had not been shipped yet — the cluster
  // knows every stream's intended position, and the engines are
  // deterministic, so the standby converges to the primary's exact
  // logical state.
  VAQ_ASSIGN_OR_RETURN(std::unique_ptr<serve::Server> standby,
                       MakeServer(state.replica_store.get()));
  VAQ_RETURN_IF_ERROR(standby->Recover().status());
  for (const auto& [source, intended] : intended_) {
    if (OwnerOf(source) != node) continue;
    for (int64_t pos = standby->StreamPosition(source); pos < intended;
         ++pos) {
      VAQ_RETURN_IF_ERROR(standby->AdvanceStream(source));
      ++catchup_advances_;
      obs::MetricRegistry::Global()
          .GetCounter("vaq_cluster_catchup_advances_total", {})
          ->Increment();
    }
  }
  state.server = std::move(standby);
  state.failed = true;
  return Status::OK();
}

void StandingCluster::DrainNet() {
  Delivery delivery;
  while (net_->PeekTimeMs() <= clock_.now_ms()) {
    if (!net_->NextDelivery(&delivery)) break;
  }
}

StatusOr<std::vector<serve::ServedQuery>> StandingCluster::Finish() {
  VAQ_CHECK(initialized_);
  // Let in-flight ship messages land before the books close.
  while (!net_->idle()) {
    clock_.Advance(net_->PeekTimeMs() - clock_.now_ms());
    DrainNet();
  }
  std::vector<std::vector<serve::ServedQuery>> finished;
  finished.reserve(nodes_.size());
  for (NodeState& state : nodes_) {
    finished.push_back(state.server->FinishStanding());
  }
  std::vector<serve::ServedQuery> out;
  out.reserve(queries_.size());
  for (size_t global = 0; global < queries_.size(); ++global) {
    const auto& [node, local_id] = queries_[global];
    bool found = false;
    for (serve::ServedQuery& q : finished[static_cast<size_t>(node)]) {
      if (q.id == local_id) {
        serve::ServedQuery copy = q;
        copy.id = static_cast<int64_t>(global);
        out.push_back(std::move(copy));
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::Internal("standing query " + std::to_string(global) +
                              " lost by node " + std::to_string(node));
    }
  }
  return out;
}

}  // namespace cluster
}  // namespace vaq
