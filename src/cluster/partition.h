// Shard assignment: which node owns which video (or stream).
//
// Two schemes, both pure functions of the name set so every process —
// coordinator, nodes, replicas, tests — derives the identical layout
// with no placement metadata to ship:
//
//  * kHash: FNV-1a of the name modulo the shard count. Stateless and
//    stable under repository growth (adding a video never moves another
//    one), the right default for streams where affinity matters.
//  * kRange: sort the names and cut the sorted list into `num_shards`
//    near-equal contiguous runs. Balanced by construction and
//    range-scannable, but adding a video can shift its neighbours.
#ifndef VAQ_CLUSTER_PARTITION_H_
#define VAQ_CLUSTER_PARTITION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace vaq {
namespace cluster {

enum class PartitionScheme {
  kHash,
  kRange,
};

const char* PartitionSchemeName(PartitionScheme scheme);
StatusOr<PartitionScheme> ParsePartitionScheme(const std::string& name);

// 64-bit FNV-1a. Independent of the process, platform and run — part of
// the cluster's on-the-wire contract.
uint64_t StableHash(std::string_view bytes);

// Hash-scheme owner of `name` among `num_shards` shards.
int HashShardOf(std::string_view name, int num_shards);

// Splits `names` into `num_shards` shards under `scheme`. The outer
// vector always has `num_shards` entries (possibly empty); each inner
// vector is sorted. Every input name lands in exactly one shard.
std::vector<std::vector<std::string>> PartitionNames(
    std::vector<std::string> names, int num_shards, PartitionScheme scheme);

}  // namespace cluster
}  // namespace vaq

#endif  // VAQ_CLUSTER_PARTITION_H_
