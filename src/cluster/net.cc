#include "cluster/net.h"

#include <limits>
#include <utility>

#include "common/rng.h"
#include "obs/metrics.h"

namespace vaq {
namespace cluster {
namespace {

constexpr uint64_t kJitterSalt = 0x082efa98ec4e6c89ULL;

// Link coordinate for the fault plan and jitter: endpoint ids are small
// (nodes plus one coordinator), offset so negative ids stay distinct.
int64_t LinkOf(int from, int to) {
  return (static_cast<int64_t>(from) + 16) * 4096 +
         (static_cast<int64_t>(to) + 16);
}

double JitterUniform(uint64_t seed, int64_t link, int64_t seq) {
  uint64_t s = MixSeed(MixSeed(seed, kJitterSalt ^ static_cast<uint64_t>(link)),
                       static_cast<uint64_t>(seq));
  return static_cast<double>(SplitMix64(s) >> 11) * 0x1.0p-53;
}

}  // namespace

Net::Net(NetOptions options, const fault::FaultPlan* plan)
    : options_(options), plan_(plan), seed_(plan ? plan->seed() : 0) {}

void Net::Send(int from, int to, uint32_t tag, const char* tag_name,
               std::string payload, int64_t wire_bytes, double send_ms) {
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  const int64_t link = LinkOf(from, to);
  const int64_t seq = next_seq_++;
  ++stats_.messages;
  stats_.bytes += wire_bytes;
  registry
      .GetCounter("vaq_cluster_net_messages_total", {{"tag", tag_name}})
      ->Increment();
  registry.GetCounter("vaq_cluster_net_bytes_total", {})
      ->Increment(wire_bytes);

  // Drops only delay: each lost copy schedules a retransmission one RTO
  // later, and the final attempt always goes through.
  double depart_ms = send_ms;
  int attempts = 1;
  if (plan_ != nullptr) {
    while (attempts < options_.max_attempts &&
           plan_->NetDrops(link, seq, attempts - 1)) {
      ++stats_.drops;
      registry.GetCounter("vaq_cluster_net_drops_total", {})->Increment();
      depart_ms += options_.rto_ms;
      ++attempts;
    }
    // Scheduled partition windows lose every copy transmitted inside
    // them; the sender retries on its RTO until the window lifts. When
    // the partition outlasts the attempt budget the final copy departs
    // the instant connectivity returns — same contract as drops: a
    // partition delays traffic, it never changes what is delivered.
    while (plan_->NetPartitioned(depart_ms)) {
      ++stats_.partition_drops;
      registry.GetCounter("vaq_cluster_net_partition_drops_total", {})
          ->Increment();
      if (attempts < options_.max_attempts) {
        depart_ms += options_.rto_ms;
        ++attempts;
      } else {
        depart_ms = plan_->PartitionClearMs(depart_ms);
      }
    }
  }
  Delivery delivery;
  delivery.from = from;
  delivery.to = to;
  delivery.tag = tag;
  delivery.seq = seq;
  delivery.sent_ms = send_ms;
  delivery.attempts = attempts;
  delivery.delivered_ms =
      depart_ms + options_.base_latency_ms +
      static_cast<double>(wire_bytes) * options_.per_byte_ms +
      options_.jitter_ms * JitterUniform(seed_, link, seq);
  const bool duplicated = plan_ != nullptr && plan_->NetDuplicates(link, seq);
  if (duplicated) {
    // The spurious copy arrives a little later (a fresh jitter draw past
    // the original) and is suppressed by the (link, seq) dedup on pop.
    Pending copy;
    copy.delivery = delivery;
    copy.delivery.delivered_ms +=
        options_.rto_ms * JitterUniform(seed_, link, ~seq);
    copy.delivered_ms = copy.delivery.delivered_ms;
    copy.duplicate = true;
    copy.order = next_order_++;
    queue_.push(std::move(copy));
  }
  delivery.payload = std::move(payload);
  Pending pending;
  pending.delivered_ms = delivery.delivered_ms;
  pending.delivery = std::move(delivery);
  pending.duplicate = false;
  pending.order = next_order_++;
  queue_.push(std::move(pending));
}

bool Net::NextDelivery(Delivery* out) {
  while (!queue_.empty()) {
    Pending pending = queue_.top();
    queue_.pop();
    if (pending.duplicate) {
      ++stats_.duplicates_suppressed;
      obs::MetricRegistry::Global()
          .GetCounter("vaq_cluster_net_duplicates_total", {})
          ->Increment();
      continue;
    }
    ++stats_.deliveries;
    *out = std::move(pending.delivery);
    return true;
  }
  return false;
}

double Net::PeekTimeMs() const {
  if (queue_.empty()) return std::numeric_limits<double>::infinity();
  return queue_.top().delivered_ms;
}

}  // namespace cluster
}  // namespace vaq
