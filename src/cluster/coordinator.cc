#include "cluster/coordinator.h"

#include <algorithm>
#include <cstdlib>
#include <iterator>
#include <limits>
#include <queue>
#include <utility>

#include "common/logging.h"
#include "fault/sim_clock.h"
#include "obs/metrics.h"

namespace vaq {
namespace cluster {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Wire protocol tags.
constexpr uint32_t kTagQuery = 1;  // coordinator -> node: start, send batch 0.
constexpr uint32_t kTagFetch = 2;  // coordinator -> node: send batch <idx>.
constexpr uint32_t kTagBatch = 3;  // node -> coordinator: one gather batch.

// Serving a follow-up batch out of the cached run costs a little
// serialization time; the first batch is charged the full shard scan.
constexpr double kBatchServeMs = 0.05;

const std::vector<double>& AnswerMsBounds() {
  static const std::vector<double> bounds = {1,   5,    10,   50,  100,
                                             500, 1000, 5000, 20000};
  return bounds;
}

// Per-shard gather state.
struct ShardState {
  int active_host = 0;
  int replicas_used = 0;
  int expected = -1;       // Outstanding batch index; -1 when none.
  double deadline = kInf;  // Failover timer for the outstanding fetch.
  // Remaining upper bound. Starts at +infinity, which doubles as the
  // "shard has not reported yet" marker: the stopping rule cannot fire
  // until every shard has run and bounded itself.
  double bound = kInf;
  bool done = false;        // Stream exhausted.
  bool folded = false;      // Shard accounting merged into the result.
  int64_t consumed_batches = 0;
};

}  // namespace

Coordinator::Coordinator(const offline::Repository* repository,
                         ClusterOptions options)
    : repository_(repository),
      options_(options),
      latency_(std::make_unique<obs::LatencyRecorder>("vaq_query_latency_ms",
                                                      "cluster")) {
  VAQ_CHECK_GT(options_.num_shards, 0);
  VAQ_CHECK_GE(options_.num_replicas, 0);
  VAQ_CHECK_GT(options_.batch_size, 0);
  shard_videos_ = PartitionNames(repository_->VideoNames(),
                                 options_.num_shards, options_.scheme);
  shard_load_ms_.assign(shard_videos_.size(), 0.0);
  RebuildNodes();
}

void Coordinator::RebuildNodes() {
  nodes_.clear();
  const int shards = num_shards();
  for (int s = 0; s < shards; ++s) {
    nodes_.push_back(std::make_unique<Node>(s, repository_, shard_videos_[s]));
  }
  for (int s = 0; s < shards; ++s) {
    for (int r = 0; r < options_.num_replicas; ++r) {
      nodes_.push_back(std::make_unique<Node>(ReplicaHost(s, r), repository_,
                                              shard_videos_[s]));
    }
  }
}

Status Coordinator::SplitShard(int shard) {
  if (shard < 0 || shard >= num_shards()) {
    return Status::InvalidArgument("no such shard " + std::to_string(shard));
  }
  std::vector<std::string>& videos =
      shard_videos_[static_cast<size_t>(shard)];
  if (videos.size() < 2) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(shard) +
        " holds fewer than two videos; nothing to split");
  }
  // Midpoint cut of the sorted run: the left half stays in place, the
  // right half becomes the new adjacent shard. The window load has no
  // per-video attribution, so it is split evenly.
  const auto mid =
      videos.begin() + static_cast<std::ptrdiff_t>(videos.size() / 2);
  std::vector<std::string> right(mid, videos.end());
  videos.erase(mid, videos.end());
  shard_videos_.insert(
      shard_videos_.begin() + static_cast<std::ptrdiff_t>(shard) + 1,
      std::move(right));
  const double half = shard_load_ms_[static_cast<size_t>(shard)] / 2.0;
  shard_load_ms_[static_cast<size_t>(shard)] = half;
  shard_load_ms_.insert(
      shard_load_ms_.begin() + static_cast<std::ptrdiff_t>(shard) + 1, half);
  RebuildNodes();
  obs::MetricRegistry::Global()
      .GetCounter("vaq_cluster_rebalance_total", {{"op", "split"}})
      ->Increment();
  return Status::OK();
}

Status Coordinator::MergeShards(int left) {
  if (left < 0 || left + 1 >= num_shards()) {
    return Status::InvalidArgument(
        "no adjacent shard pair at " + std::to_string(left));
  }
  std::vector<std::string>& lhs = shard_videos_[static_cast<size_t>(left)];
  std::vector<std::string>& rhs =
      shard_videos_[static_cast<size_t>(left) + 1];
  // Every partition's video list is sorted (cluster::PartitionNames), so
  // the merged run is too — a later split cuts it cleanly.
  std::vector<std::string> merged;
  merged.reserve(lhs.size() + rhs.size());
  std::merge(lhs.begin(), lhs.end(), rhs.begin(), rhs.end(),
             std::back_inserter(merged));
  lhs = std::move(merged);
  shard_videos_.erase(shard_videos_.begin() +
                      static_cast<std::ptrdiff_t>(left) + 1);
  shard_load_ms_[static_cast<size_t>(left)] +=
      shard_load_ms_[static_cast<size_t>(left) + 1];
  shard_load_ms_.erase(shard_load_ms_.begin() +
                       static_cast<std::ptrdiff_t>(left) + 1);
  RebuildNodes();
  obs::MetricRegistry::Global()
      .GetCounter("vaq_cluster_rebalance_total", {{"op", "merge"}})
      ->Increment();
  return Status::OK();
}

int Coordinator::Rebalance(const RebalanceOptions& rebalance) {
  int actions = 0;
  // Split first so this round's merge can never immediately undo it (a
  // fresh split halves the window load, and the doc comment on
  // RebalanceOptions asks for merge_threshold_ms well below half the
  // split threshold).
  if (num_shards() < rebalance.max_shards) {
    int hottest = -1;
    double hottest_ms = 0.0;
    for (int s = 0; s < num_shards(); ++s) {
      if (shard_videos_[static_cast<size_t>(s)].size() >= 2 &&
          shard_load_ms_[static_cast<size_t>(s)] > hottest_ms) {
        hottest = s;
        hottest_ms = shard_load_ms_[static_cast<size_t>(s)];
      }
    }
    if (hottest >= 0 && hottest_ms >= rebalance.split_threshold_ms &&
        SplitShard(hottest).ok()) {
      ++actions;
    }
  }
  if (num_shards() > rebalance.min_shards) {
    int coldest = -1;
    double coldest_ms = kInf;
    for (int l = 0; l + 1 < num_shards(); ++l) {
      const double lhs = shard_load_ms_[static_cast<size_t>(l)];
      const double rhs = shard_load_ms_[static_cast<size_t>(l) + 1];
      if (std::max(lhs, rhs) <= rebalance.merge_threshold_ms &&
          lhs + rhs < coldest_ms) {
        coldest = l;
        coldest_ms = lhs + rhs;
      }
    }
    if (coldest >= 0 && MergeShards(coldest).ok()) ++actions;
  }
  // Close the load window: the next window starts from zero under the
  // (possibly new) layout.
  std::fill(shard_load_ms_.begin(), shard_load_ms_.end(), 0.0);
  for (int s = 0; s < num_shards(); ++s) {
    obs::MetricRegistry::Global()
        .GetGauge("vaq_cluster_shard_load_ms",
                  {{"shard", std::to_string(s)}})
        ->Set(0.0);
  }
  return actions;
}

double Coordinator::ShardLoadMs(int shard) const {
  if (shard < 0 || shard >= num_shards()) return 0.0;
  return shard_load_ms_[static_cast<size_t>(shard)];
}

const std::vector<std::string>& Coordinator::ShardVideos(int shard) const {
  return shard_videos_[static_cast<size_t>(shard)];
}

int Coordinator::ReplicaHost(int shard, int replica) const {
  return num_shards() + shard * options_.num_replicas + replica;
}

Node* Coordinator::HostNode(int host) const {
  for (const std::unique_ptr<Node>& node : nodes_) {
    if (node->id() == host) return node.get();
  }
  return nullptr;
}

bool Coordinator::HostDown(int host, double at_ms) const {
  if (options_.kill_node == host && at_ms >= options_.kill_at_ms) return true;
  return options_.fault_plan != nullptr &&
         options_.fault_plan->NodeDown(host, at_ms);
}

StatusOr<ClusterTopKResult> Coordinator::TopK(
    const std::string& action, const std::vector<std::string>& objects,
    const offline::ScoringModel& scoring, offline::RvaqOptions rvaq,
    const obs::QueryContext& ctx, int64_t plan_wire_bytes) const {
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  // The query id that rides every simulated wire message of this query
  // (a no-op "-" when untraced). Appending it to the payload leaves the
  // modeled byte counts — and therefore every delivery time — unchanged.
  const std::string qid =
      ctx.active() ? ctx.trace->root_name() : std::string("-");
  const obs::QueryContext phase = ctx.Child("scatter_gather");
  if (repository_->num_videos() == 0) {
    registry
        .GetCounter("vaq_cluster_queries_total",
                    {{"mode", "ranked"}, {"outcome", "error"}})
        ->Increment();
    return Status::FailedPrecondition("repository holds no videos");
  }
  for (const std::unique_ptr<Node>& node : nodes_) node->ResetRun();

  // The *live* layout, not ClusterOptions::num_shards — elastic
  // split/merge may have changed it since construction.
  const int num_shards = static_cast<int>(shard_videos_.size());
  Net net(options_.net, options_.fault_plan);
  fault::SimClock clock;
  ClusterTopKResult result;
  std::vector<ShardState> shards(static_cast<size_t>(num_shards));
  std::vector<double> host_ready;  // Virtual time a host's run is served.

  const auto host_ready_at = [&](int host) -> double& {
    if (host_ready.size() <= static_cast<size_t>(host)) {
      host_ready.resize(static_cast<size_t>(host) + 1, -1.0);
    }
    return host_ready[static_cast<size_t>(host)];
  };

  // Scatter: the query goes to every shard primary at t = 0. A planned
  // cascade's thresholds ride along (plan_wire_bytes; 0 when exact).
  const int64_t query_wire_bytes =
      64 + static_cast<int64_t>(action.size()) +
      static_cast<int64_t>(objects.size()) * 16 + plan_wire_bytes;
  for (int s = 0; s < num_shards; ++s) {
    shards[static_cast<size_t>(s)].active_host = s;
    shards[static_cast<size_t>(s)].expected = 0;
    shards[static_cast<size_t>(s)].deadline = options_.failover_timeout_ms;
    net.Send(kCoordinatorHost, s, kTagQuery, "query",
             std::to_string(s) + ",0," + qid, query_wire_bytes, 0.0);
  }

  // The consumed candidate pool and the global top-k heap over it.
  std::vector<ShardEntry> consumed;
  std::priority_queue<double, std::vector<double>, std::greater<double>> heap;

  const auto remaining_bound = [&]() {
    double bound = -kInf;
    for (const ShardState& state : shards) {
      if (!state.done) bound = std::max(bound, state.bound);
    }
    return bound;
  };
  const auto all_done = [&]() {
    for (const ShardState& state : shards) {
      if (!state.done) return false;
    }
    return true;
  };

  bool stopped = false;
  Status failure = Status::OK();
  int64_t steps = 0;
  while (!stopped && !all_done() && failure.ok()) {
    if (options_.max_steps > 0 && ++steps > options_.max_steps) {
      failure = Status::DeadlineExceeded(
          "cluster watchdog: gather exceeded " +
          std::to_string(options_.max_steps) + " scheduler events");
      break;
    }
    // Next event: the earliest of the network and the failover timers.
    double timer_ms = kInf;
    int timer_shard = -1;
    for (int s = 0; s < num_shards; ++s) {
      const ShardState& state = shards[static_cast<size_t>(s)];
      if (state.expected >= 0 && state.deadline < timer_ms) {
        timer_ms = state.deadline;
        timer_shard = s;
      }
    }
    const double net_ms = net.PeekTimeMs();
    if (timer_ms == kInf && net_ms == kInf) {
      failure = Status::Internal("cluster gather stalled with no events");
      break;
    }

    if (timer_ms <= net_ms) {
      // The outstanding batch did not arrive in time. Probe the host: a
      // shard that is merely slow (a long shard scan, a drop-delayed
      // message) gets its fetch re-sent — batches are idempotent, the
      // stale check below discards extras — while a host inside an
      // outage window triggers failover to the next replica.
      clock.Advance(timer_ms - clock.now_ms());
      ShardState& state = shards[static_cast<size_t>(timer_shard)];
      if (HostDown(state.active_host, clock.now_ms())) {
        ++result.failovers;
        registry
            .GetCounter("vaq_cluster_failovers_total", {{"mode", "ranked"}})
            ->Increment();
        phase.Child("shard" + std::to_string(timer_shard))
            .AddStat("failovers", 1);
        if (state.replicas_used >= options_.num_replicas) {
          failure = Status::Unavailable(
              "shard " + std::to_string(timer_shard) +
              " lost: primary down and no replica left to fail over to");
          break;
        }
        state.active_host = ReplicaHost(timer_shard, state.replicas_used);
        ++state.replicas_used;
      }
      net.Send(kCoordinatorHost, state.active_host, kTagFetch, "fetch",
               std::to_string(timer_shard) + "," +
                   std::to_string(state.expected) + "," + qid,
               16, clock.now_ms());
      state.deadline = clock.now_ms() + options_.failover_timeout_ms;
      continue;
    }

    Delivery delivery;
    VAQ_CHECK(net.NextDelivery(&delivery));
    clock.Advance(delivery.delivered_ms - clock.now_ms());
    const double now = clock.now_ms();

    if (delivery.tag == kTagQuery || delivery.tag == kTagFetch) {
      // A node receives a batch request.
      if (HostDown(delivery.to, now)) {
        registry.GetCounter("vaq_cluster_net_lost_outage_total", {})
            ->Increment();
        continue;  // Lost; the coordinator's timer recovers.
      }
      const size_t comma = delivery.payload.find(',');
      const int shard = std::atoi(delivery.payload.substr(0, comma).c_str());
      const int index = std::atoi(delivery.payload.substr(comma + 1).c_str());
      Node* node = HostNode(delivery.to);
      VAQ_CHECK(node != nullptr);
      double send_ms;
      if (!node->has_run()) {
        auto run_or = node->RunRanked(action, objects, scoring, rvaq);
        if (!run_or.ok()) {
          failure = run_or.status();
          break;
        }
        host_ready_at(delivery.to) = now + (*run_or)->modeled_ms;
        send_ms = host_ready_at(delivery.to);
      } else {
        send_ms = std::max(now, host_ready_at(delivery.to)) + kBatchServeMs;
      }
      const ShardBatch batch = node->Batch(shard, index, options_.batch_size);
      net.Send(delivery.to, kCoordinatorHost, kTagBatch, "batch",
               delivery.payload, batch.wire_bytes, send_ms);
      continue;
    }

    // A batch arrives at the coordinator.
    VAQ_CHECK_EQ(delivery.tag, kTagBatch);
    const size_t comma = delivery.payload.find(',');
    const int shard = std::atoi(delivery.payload.substr(0, comma).c_str());
    const int index = std::atoi(delivery.payload.substr(comma + 1).c_str());
    ShardState& state = shards[static_cast<size_t>(shard)];
    if (state.expected != index) {
      // Stale: a slow primary's batch landing after failover already
      // served this index, or a batch past an already-satisfied stream.
      registry.GetCounter("vaq_cluster_stale_batches_total", {})->Increment();
      continue;
    }
    Node* sender = HostNode(delivery.from);
    VAQ_CHECK(sender != nullptr && sender->has_run());
    // The node echoed the request payload back, query id included — the
    // batch provably belongs to this query's context.
    VAQ_CHECK(delivery.payload.substr(delivery.payload.rfind(',') + 1) == qid);
    ShardBatch batch = sender->Batch(shard, index, options_.batch_size);
    const obs::QueryContext shard_ctx =
        phase.Child("shard" + std::to_string(shard));
    if (!state.folded) {
      // Shard accounting folds exactly once, replica re-runs included.
      const ShardRun* run = sender->run();
      result.merged.accesses += run->accesses;
      result.merged.videos_queried += run->videos_queried;
      result.merged.videos_skipped += run->videos_skipped;
      result.merged.videos_pruned += run->videos_pruned;
      result.merged.candidates_pruned += run->candidates_pruned;
      result.merged.candidate_sequences += run->candidate_sequences;
      result.single_node_ms += run->modeled_ms;
      result.max_shard_ms = std::max(result.max_shard_ms, run->modeled_ms);
      state.folded = true;
      // Load window for elastic rebalancing (replica re-runs count: a
      // failing-over shard really did cost that much scan time).
      shard_load_ms_[static_cast<size_t>(shard)] += run->modeled_ms;
      registry
          .GetGauge("vaq_cluster_shard_load_ms",
                    {{"shard", std::to_string(shard)}})
          ->Set(shard_load_ms_[static_cast<size_t>(shard)]);
      shard_ctx.AddMs(run->modeled_ms);
      shard_ctx.AddStat("videos_queried", run->videos_queried);
      shard_ctx.AddStat("videos_skipped", run->videos_skipped);
      if (run->videos_pruned > 0) {
        shard_ctx.AddStat("videos_pruned", run->videos_pruned);
      }
      if (run->candidates_pruned > 0) {
        shard_ctx.AddStat("candidates_pruned", run->candidates_pruned);
      }
    }
    ++state.consumed_batches;
    ++result.batches_consumed;
    result.entries_consumed += static_cast<int64_t>(batch.entries.size());
    shard_ctx.AddStat("batches", 1);
    shard_ctx.AddStat("entries", static_cast<int64_t>(batch.entries.size()));
    shard_ctx.AddStat("net_bytes", batch.wire_bytes);
    for (ShardEntry& entry : batch.entries) {
      heap.push(entry.merge_score);
      if (heap.size() > static_cast<size_t>(rvaq.k)) heap.pop();
      consumed.push_back(std::move(entry));
    }
    state.bound = batch.next_bound;
    state.expected = -1;
    state.deadline = kInf;
    if (!batch.more) state.done = true;

    // Threshold-algorithm stop: the k-th best consumed score strictly
    // beats anything any shard could still send. Strict, so an unseen
    // candidate tied with the k-th score (which the single-node stable
    // merge might prefer) is never pruned.
    if (heap.size() == static_cast<size_t>(rvaq.k) &&
        heap.top() > remaining_bound()) {
      stopped = true;
      break;
    }
    if (batch.more) {
      net.Send(kCoordinatorHost, state.active_host, kTagFetch, "fetch",
               std::to_string(shard) + "," + std::to_string(index + 1) + "," +
                   qid,
               16, now);
      state.expected = index + 1;
      state.deadline = now + options_.failover_timeout_ms;
    }
  }

  if (!failure.ok()) {
    registry
        .GetCounter("vaq_cluster_queries_total",
                    {{"mode", "ranked"}, {"outcome", "error"}})
        ->Increment();
    return failure;
  }

  // Unfetched batches were pruned by the bound. The active host may have
  // been promoted moments before the global stop and never executed, so
  // consult any host of the shard that ran — the stopping rule requires
  // every shard to have reported at least once, which requires a run.
  for (int s = 0; s < num_shards; ++s) {
    const ShardState& state = shards[static_cast<size_t>(s)];
    const Node* node = HostNode(s);
    for (int r = 0; (node == nullptr || !node->has_run()) &&
                    r < options_.num_replicas;
         ++r) {
      node = HostNode(ReplicaHost(s, r));
    }
    VAQ_CHECK(node != nullptr && node->has_run());
    const int total = node->NumBatches(options_.batch_size);
    result.batches_pruned += std::max(0, total - static_cast<int>(
                                                     state.consumed_batches));
    result.entries_total +=
        static_cast<int64_t>(node->run()->entries.size());
  }

  // Merge, byte-identical to Repository::TopK: assemble the consumed
  // candidates in (video name, per-video rank) order — the order the
  // single-node loop appends them — then the shared stable merge.
  std::sort(consumed.begin(), consumed.end(),
            [](const ShardEntry& a, const ShardEntry& b) {
              if (a.video != b.video) return a.video < b.video;
              return a.rank_in_video < b.rank_in_video;
            });
  result.merged.top.reserve(consumed.size());
  for (ShardEntry& entry : consumed) {
    result.merged.top.push_back(offline::RepositoryRankedSequence{
        std::move(entry.video), entry.sequence});
  }
  offline::MergeRankedCandidates(&result.merged.top, rvaq.k);
  result.answer_ms = clock.now_ms();
  result.merged.wall_ms = result.answer_ms;  // Virtual, not wall, time.
  result.net = net.stats();

  registry
      .GetCounter("vaq_cluster_queries_total",
                  {{"mode", "ranked"}, {"outcome", "ok"}})
      ->Increment();
  registry.GetCounter("vaq_cluster_batches_total", {{"result", "consumed"}})
      ->Increment(result.batches_consumed);
  registry.GetCounter("vaq_cluster_batches_total", {{"result", "pruned"}})
      ->Increment(result.batches_pruned);
  registry
      .GetCounter("vaq_cluster_entries_total", {{"result", "consumed"}})
      ->Increment(result.entries_consumed);
  registry.GetCounter("vaq_cluster_entries_total", {{"result", "pruned"}})
      ->Increment(result.entries_total - result.entries_consumed);
  registry.GetHistogram("vaq_cluster_answer_ms", AnswerMsBounds())
      ->Observe(result.answer_ms);
  latency_->Record(result.answer_ms);
  // Coordinator-level attribution: self_ms is the end-to-end virtual
  // answer latency (the shards' scan ms sits on their child nodes and
  // overlaps it — the scatter–gather runs them in parallel).
  phase.AddMs(result.answer_ms);
  phase.AddStat("shards", num_shards);
  phase.AddStat("batches_consumed", result.batches_consumed);
  phase.AddStat("batches_pruned", result.batches_pruned);
  phase.AddStat("entries_consumed", result.entries_consumed);
  phase.AddStat("entries_pruned",
                result.entries_total - result.entries_consumed);
  phase.AddStat("failovers", result.failovers);
  phase.AddStat("net_messages", result.net.messages);
  phase.AddStat("net_bytes", result.net.bytes);
  return result;
}

StatusOr<query::QueryResult> Coordinator::ExecuteRanked(
    const query::QueryStatement& stmt, const obs::QueryContext& ctx) {
  if (!stmt.IsConjunctive()) {
    return Status::InvalidArgument(
        "cluster ranked execution supports conjunctive statements only "
        "(general CNF ranking is single-node; see DESIGN.md §11)");
  }
  offline::RvaqOptions options;
  options.k = stmt.limit > 0 ? stmt.limit : 5;
  // Cascade planning (WITH RECALL < 1.0), mirroring the single-node
  // session: the plan is made once here and its thresholds ship with the
  // scatter, so every shard prunes locally before binding tables. A
  // target of exactly 1.0 skips this block — no plan, no counters, no
  // extra wire bytes — keeping the exact path byte-identical.
  cascade::CascadePlan plan;
  std::unique_ptr<cascade::PlanFilters> filters;
  int64_t plan_wire_bytes = 0;
  query::QueryResult result;
  if (stmt.recall_target < 1.0) {
    const obs::QueryContext cascade_phase = ctx.Child("cascade");
    if (options_.proxy != nullptr) {
      cascade::Planner planner(options_.proxy);
      VAQ_ASSIGN_OR_RETURN(
          plan, planner.Plan(stmt.action, stmt.objects, stmt.recall_target));
    } else {
      plan.recall_target = stmt.recall_target;  // Exact fallback.
    }
    obs::MetricRegistry::Global()
        .GetCounter("vaq_cascade_plans_total",
                    {{"mode", plan.use_cascade ? "cascade" : "exact"}})
        ->Increment();
    result.cascade_plan = plan.ToString();
    cascade_phase.AddStat("clips_total", plan.clips_total);
    cascade_phase.AddStat("clips_surviving", plan.clips_surviving);
    if (plan.use_cascade) {
      filters.reset(new cascade::PlanFilters(options_.proxy, plan));
      options.prefilter = filters.get();
      plan_wire_bytes = plan.WireBytes();
    }
  }
  VAQ_ASSIGN_OR_RETURN(ClusterTopKResult cluster,
                       TopK(stmt.action, stmt.objects, scoring_, options, ctx,
                            plan_wire_bytes));
  result.online = false;
  result.accesses = cluster.merged.accesses;
  result.ranked.reserve(cluster.merged.top.size());
  IntervalSet merged;
  for (const offline::RepositoryRankedSequence& entry : cluster.merged.top) {
    result.ranked.push_back(entry.sequence);
    merged.Add(entry.sequence.clips);
  }
  result.sequences = std::move(merged);
  return result;
}

const std::vector<std::string>& LayoutInvariantMetricPrefixes() {
  // Engine-level families: each counts work the per-video scan does
  // exactly once per clean query, wherever the video lives. Plus
  // vaq_cluster_queries_total and vaq_cascade_plans_total, which count
  // per-query outcomes. See the header comment for what is excluded.
  static const std::vector<std::string> prefixes = {
      "vaq_cascade_candidates_pruned_total",
      "vaq_cascade_plans_total",
      "vaq_cascade_videos_pruned_total",
      "vaq_clip_eval_simulated_ms",
      "vaq_clips_degraded_total",
      "vaq_clips_dropped_total",
      "vaq_clips_processed_total",
      "vaq_cluster_queries_total",
      "vaq_model_calls_total",
      "vaq_rvaq_iterations_total",
      "vaq_storage_accesses_total",
  };
  return prefixes;
}

}  // namespace cluster
}  // namespace vaq
