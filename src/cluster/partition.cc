#include "cluster/partition.h"

#include <algorithm>

#include "common/logging.h"

namespace vaq {
namespace cluster {

const char* PartitionSchemeName(PartitionScheme scheme) {
  switch (scheme) {
    case PartitionScheme::kHash:
      return "hash";
    case PartitionScheme::kRange:
      return "range";
  }
  return "unknown";
}

StatusOr<PartitionScheme> ParsePartitionScheme(const std::string& name) {
  if (name == "hash") return PartitionScheme::kHash;
  if (name == "range") return PartitionScheme::kRange;
  return Status::InvalidArgument("unknown partition scheme: '" + name +
                                 "' (want hash|range)");
}

uint64_t StableHash(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

int HashShardOf(std::string_view name, int num_shards) {
  VAQ_CHECK_GT(num_shards, 0);
  return static_cast<int>(StableHash(name) %
                          static_cast<uint64_t>(num_shards));
}

std::vector<std::vector<std::string>> PartitionNames(
    std::vector<std::string> names, int num_shards, PartitionScheme scheme) {
  VAQ_CHECK_GT(num_shards, 0);
  std::vector<std::vector<std::string>> shards(
      static_cast<size_t>(num_shards));
  std::sort(names.begin(), names.end());
  if (scheme == PartitionScheme::kHash) {
    for (std::string& name : names) {
      shards[static_cast<size_t>(HashShardOf(name, num_shards))].push_back(
          std::move(name));
    }
    return shards;  // Inner vectors sorted: inputs were visited in order.
  }
  // Range: cut the sorted list into near-equal contiguous runs, the
  // first `n % num_shards` runs one element longer.
  const size_t n = names.size();
  const size_t base = n / static_cast<size_t>(num_shards);
  const size_t extra = n % static_cast<size_t>(num_shards);
  size_t next = 0;
  for (size_t s = 0; s < static_cast<size_t>(num_shards); ++s) {
    const size_t len = base + (s < extra ? 1 : 0);
    for (size_t i = 0; i < len; ++i) {
      shards[s].push_back(std::move(names[next++]));
    }
  }
  VAQ_CHECK_EQ(next, n);
  return shards;
}

}  // namespace cluster
}  // namespace vaq
