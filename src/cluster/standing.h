// Standing (online) queries over a cluster of serving nodes.
//
// Streams are routed to owner nodes by stable hash of the stream name —
// per-stream affinity: every standing query on a stream, and every one
// of its clip advances, runs on the one node that owns it, so a node's
// shared detection cache sees exactly the sequence of work a single
// server would see for those streams. Each node is a serve::Server in
// clip-lockstep standing mode with WAL-before-apply durability into a
// primary ckpt::MemStore, and a follower replica store kept in sync by
// shipping changed store entries (the appended WAL tail, fresh
// snapshots) over the simulated network after every
// `ship_every_advances` logged advances.
//
// Failover: when the fault plan (FaultSpec::node_outage_rate, or an
// explicit kill) downs an owner node at an advance's virtual time, the
// cluster builds a standby serve::Server with the same registrations
// over the *replica* store, runs ckpt recovery, and replays any
// advances the replica had not yet been shipped (the cluster knows each
// stream's intended position). Engines are deterministic, so the
// re-executed clips produce byte-identical logical results — the
// recovery invariant of DESIGN.md §10 lifted to the cluster.
//
// Node servers run with ServeOptions::snapshot_metrics = false: the
// process-wide metric registry spans every simulated node, and restoring
// one node's snapshot must not clobber the others' live families.
#ifndef VAQ_CLUSTER_STANDING_H_
#define VAQ_CLUSTER_STANDING_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/store.h"
#include "cluster/net.h"
#include "cluster/partition.h"
#include "common/status.h"
#include "fault/sim_clock.h"
#include "serve/server.h"

namespace vaq {
namespace cluster {

struct StandingClusterOptions {
  int num_nodes = 2;
  bool share_detection_cache = true;
  // Faults injected inside the perception engines (every node gets the
  // same plan, preserving per-stream determinism vs. a single server).
  const fault::FaultPlan* engine_fault_plan = nullptr;
  // Drives node outages and network faults at the cluster layer.
  const fault::FaultPlan* cluster_fault_plan = nullptr;
  int64_t snapshot_every_clips = 8;
  // Replica sync cadence in logged advances. 1 = synchronous shipping
  // (failover loses nothing); larger values leave a shipping lag the
  // failover path must re-execute.
  int ship_every_advances = 1;
  NetOptions net;
  // Virtual milliseconds charged per clip advance — the timeline node
  // outage windows are evaluated against.
  double advance_tick_ms = 10.0;
  // Staged outage: node `kill_node` is down from `kill_at_ms` onward
  // (in addition to any fault-plan windows). -1 disables.
  int kill_node = -1;
  double kill_at_ms = 0.0;
};

class StandingCluster {
 public:
  // `register_streams` must register the same stream set (names,
  // scenarios, seeds, engine options) on any server it is given — it is
  // called once per node and once per standby at failover.
  using RegisterFn = std::function<Status(serve::Server*)>;

  StandingCluster(StandingClusterOptions options, RegisterFn register_streams);
  ~StandingCluster();

  // Builds the node servers. Call once before anything else.
  Status Init();

  // Owner node of a stream (stable hash affinity).
  int OwnerOf(const std::string& source) const;

  // Parses the statement, routes it to its stream's owner, returns a
  // cluster-wide id (admission order across all nodes).
  StatusOr<int64_t> AddStandingQuery(const std::string& sql);

  // Advances every standing query on `source` by one clip on its owner
  // (or the owner's standby after a failover).
  Status AdvanceStream(const std::string& source);

  // Advances routed so far for `source` — the cluster's intended
  // position, which failover catch-up restores on the standby.
  int64_t StreamPosition(const std::string& source) const;

  // Ends every standing query on every node and returns the results in
  // cluster-wide id order (each ServedQuery's id rewritten to it).
  StatusOr<std::vector<serve::ServedQuery>> Finish();

  int64_t failovers() const { return failovers_; }
  int64_t catchup_advances() const { return catchup_advances_; }
  int64_t shipped_bytes() const { return shipped_bytes_; }
  double now_ms() const { return clock_.now_ms(); }
  const NetStats& net_stats() const { return net_->stats(); }

 private:
  struct NodeState {
    std::unique_ptr<ckpt::MemStore> primary_store;
    std::unique_ptr<ckpt::MemStore> replica_store;
    std::unique_ptr<serve::Server> server;
    bool failed = false;  // Primary lost; `server` is the standby.
    int64_t advances_since_ship = 0;
  };

  StatusOr<std::unique_ptr<serve::Server>> MakeServer(ckpt::Store* store);
  bool NodeIsDown(int node, double at_ms) const;
  Status Ship(int node);                       // Sync replica over the net.
  Status Failover(int node);                   // Promote the replica.
  void DrainNet();                             // Deliver everything due.

  StandingClusterOptions options_;
  RegisterFn register_streams_;
  std::unique_ptr<Net> net_;
  fault::SimClock clock_;
  std::vector<NodeState> nodes_;
  std::map<std::string, int64_t> intended_;    // Stream -> advances routed.
  // Cluster id -> (node, node-local id), in admission order.
  std::vector<std::pair<int, int64_t>> queries_;
  int64_t failovers_ = 0;
  int64_t catchup_advances_ = 0;
  int64_t shipped_bytes_ = 0;
  bool initialized_ = false;
};

}  // namespace cluster
}  // namespace vaq

#endif  // VAQ_CLUSTER_STANDING_H_
