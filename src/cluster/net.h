// Deterministic simulated network.
//
// Every cluster message travels through one `Net`: a discrete-event
// queue on the fault::SimClock virtual-millisecond axis. Delivery time
// is a pure function of (send time, payload size, link, sequence
// number), so a run replays identically regardless of host machine or
// wall-clock behaviour:
//
//   deliver = send + base_latency + bytes * per_byte + jitter(link, seq)
//
// The bounded jitter term is what "reordering within allowed bounds"
// means: two messages on different links (or back-to-back on one link)
// may swap delivery order, but never by more than `jitter_ms`. Drops and
// duplicates come from the seeded fault plan (FaultSpec::net_drop_rate /
// net_dup_rate): a dropped copy is retransmitted after `rto_ms` (each
// attempt draws a fresh fault decision), and a duplicated message's
// second copy is suppressed at the receiver by (link, seq) dedup. Both
// only delay or inflate traffic — they never change what is delivered,
// which keeps the cluster's logical results byte-identical under any
// fault plan. Scheduled partition windows (FaultSpec::windows with
// domain kNetwork) behave like forced drops: copies transmitted inside
// a window are lost and retried until connectivity returns.
//
// All traffic is accounted in the `vaq_cluster_net_*` metric families.
#ifndef VAQ_CLUSTER_NET_H_
#define VAQ_CLUSTER_NET_H_

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "fault/fault_plan.h"

namespace vaq {
namespace cluster {

struct NetOptions {
  double base_latency_ms = 0.2;  // Per-hop fixed latency.
  double per_byte_ms = 1e-5;     // Transfer cost per payload byte.
  double jitter_ms = 0.05;       // Bounded reordering window.
  double rto_ms = 5.0;           // Retransmission delay after a drop.
  int max_attempts = 16;         // Last attempt always goes through.
};

// One message arrival, handed to the receiver in delivery-time order.
struct Delivery {
  int from = 0;
  int to = 0;
  uint32_t tag = 0;
  std::string payload;
  int64_t seq = 0;       // Net-wide send order.
  double sent_ms = 0.0;
  double delivered_ms = 0.0;
  int attempts = 1;      // Transmissions needed (1 = no drops).
};

struct NetStats {
  int64_t messages = 0;               // Send() calls.
  int64_t deliveries = 0;             // Deliveries handed out.
  int64_t drops = 0;                  // Lost transmissions (retransmitted).
  int64_t partition_drops = 0;        // Copies lost to partition windows.
  int64_t duplicates_suppressed = 0;  // Fault-plan copies deduped.
  int64_t bytes = 0;                  // Payload bytes sent.
};

class Net {
 public:
  // `plan` (optional) drives drops and duplicates and seeds the jitter;
  // a null plan gives a fault-free network with seed-0 jitter.
  Net(NetOptions options, const fault::FaultPlan* plan);

  // Queues a message sent at virtual time `send_ms`. `tag_name` labels
  // the vaq_cluster_net_messages_total counter ("query", "batch", ...).
  // `wire_bytes` is the modeled on-the-wire size (the in-process
  // `payload` is just the logical content, e.g. a batch coordinate, so
  // transfer time is charged for the bytes a real serialization would
  // ship, not the simulation's bookkeeping string).
  void Send(int from, int to, uint32_t tag, const char* tag_name,
            std::string payload, int64_t wire_bytes, double send_ms);

  // Pops the earliest pending delivery (ties broken by send order).
  // Duplicate copies are suppressed here. False when idle.
  bool NextDelivery(Delivery* out);

  // Virtual time of the next delivery; infinity when idle.
  double PeekTimeMs() const;

  bool idle() const { return queue_.empty(); }
  const NetStats& stats() const { return stats_; }

 private:
  struct Pending {
    double delivered_ms;
    int64_t order;  // Tie-break: copies delivered strictly in send order.
    Delivery delivery;
    bool duplicate;
    bool operator>(const Pending& other) const {
      if (delivered_ms != other.delivered_ms) {
        return delivered_ms > other.delivered_ms;
      }
      return order > other.order;
    }
  };

  NetOptions options_;
  const fault::FaultPlan* plan_;
  uint64_t seed_;
  int64_t next_seq_ = 0;
  int64_t next_order_ = 0;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>>
      queue_;
  NetStats stats_;
};

}  // namespace cluster
}  // namespace vaq

#endif  // VAQ_CLUSTER_NET_H_
