#include "cluster/node.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"

namespace vaq {
namespace cluster {

int64_t EntryWireBytes(const ShardEntry& entry) {
  // Name + interval endpoints + three bounds + rank + framing.
  return static_cast<int64_t>(entry.video.size()) + 48;
}

Node::Node(int id, const offline::Repository* repository,
           std::vector<std::string> videos)
    : id_(id), repository_(repository), videos_(std::move(videos)) {}

StatusOr<const ShardRun*> Node::RunRanked(
    const std::string& action, const std::vector<std::string>& objects,
    const offline::ScoringModel& scoring, offline::RvaqOptions options) {
  if (has_run_) return &run_;
  run_ = ShardRun();
  for (const std::string& name : videos_) {
    const storage::VideoIndex* index = repository_->Find(name);
    VAQ_CHECK(index != nullptr);
    if (options.prefilter != nullptr) {
      // Shard-local cascade prefilter: same per-video resolution as
      // Repository::TopK, so shard layout never changes what survives.
      const IntervalSet* surviving = options.prefilter->SurvivingClips(name);
      if (surviving != nullptr && surviving->empty()) {
        ++run_.videos_pruned;
        obs::MetricRegistry::Global()
            .GetCounter("vaq_cascade_videos_pruned_total")
            ->Increment(1);
        continue;
      }
      options.clip_filter = surviving;  // nullptr: unconstrained video.
    }
    auto top_or =
        offline::QueryVideoTopK(*index, action, objects, scoring, options);
    if (!top_or.ok()) {
      if (top_or.status().code() == StatusCode::kNotFound) {
        ++run_.videos_skipped;  // This video cannot match the query.
        continue;
      }
      return top_or.status();
    }
    ++run_.videos_queried;
    const offline::TopKResult& video_top = top_or.value();
    run_.accesses += video_top.accesses;
    run_.candidate_sequences += static_cast<int64_t>(video_top.pq.size());
    run_.candidates_pruned += video_top.candidates_pruned;
    for (size_t rank = 0; rank < video_top.top.size(); ++rank) {
      ShardEntry entry;
      entry.video = name;
      entry.rank_in_video = static_cast<int>(rank);
      entry.sequence = video_top.top[rank];
      entry.merge_score = offline::RankedMergeScore(entry.sequence);
      run_.entries.push_back(std::move(entry));
    }
  }
  run_.modeled_ms = run_.accesses.ModeledMs(kShardSeekMs, kShardRowMs);
  // The gather stream: descending merge score. The tie order does not
  // affect the merged result (the coordinator re-sorts consumed entries
  // into single-node order), but (video, rank) keeps it deterministic.
  std::stable_sort(run_.entries.begin(), run_.entries.end(),
                   [](const ShardEntry& a, const ShardEntry& b) {
                     if (a.merge_score != b.merge_score) {
                       return a.merge_score > b.merge_score;
                     }
                     if (a.video != b.video) return a.video < b.video;
                     return a.rank_in_video < b.rank_in_video;
                   });
  has_run_ = true;
  return &run_;
}

ShardBatch Node::Batch(int shard, int index, int batch_size) const {
  VAQ_CHECK(has_run_);
  VAQ_CHECK_GT(batch_size, 0);
  ShardBatch batch;
  batch.shard = shard;
  batch.index = index;
  const size_t begin = static_cast<size_t>(index) *
                       static_cast<size_t>(batch_size);
  const size_t end =
      std::min(run_.entries.size(), begin + static_cast<size_t>(batch_size));
  for (size_t i = begin; i < end && i < run_.entries.size(); ++i) {
    batch.entries.push_back(run_.entries[i]);
    batch.wire_bytes += EntryWireBytes(run_.entries[i]);
  }
  batch.wire_bytes += 32;  // Header: shard, index, bound, count.
  if (end < run_.entries.size()) {
    batch.more = true;
    batch.next_bound = run_.entries[end].merge_score;
  }
  return batch;
}

int Node::NumBatches(int batch_size) const {
  VAQ_CHECK(has_run_);
  VAQ_CHECK_GT(batch_size, 0);
  return static_cast<int>((run_.entries.size() +
                           static_cast<size_t>(batch_size) - 1) /
                          static_cast<size_t>(batch_size));
}

void Node::ResetRun() {
  has_run_ = false;
  run_ = ShardRun();
}

}  // namespace cluster
}  // namespace vaq
