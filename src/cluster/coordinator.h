// Scatter–gather ranked execution over a sharded repository.
//
// The coordinator partitions an offline::Repository into N shards
// (cluster::PartitionNames), places one primary Node per shard plus R
// follower replicas, and answers a conjunctive ranked query with the
// classic threshold-algorithm merge over per-shard sorted streams:
//
//   1. Scatter: the query is sent to every shard primary over the
//      simulated network. A node runs shard-local RVAQ (once) and
//      serves its candidate stream — per-video winners sorted by
//      descending merge score — in fixed-size batches, each stamped
//      with the shard's remaining upper bound (the best score still
//      unsent).
//   2. Gather: the coordinator pipelines one outstanding fetch per
//      shard, folds arriving entries into a global top-k heap, and
//      tracks each shard's bound.
//   3. Stop: gathering ends when the k-th best consumed score STRICTLY
//      exceeds every remaining bound — strict, so a tied candidate can
//      never be pruned — and every shard has reported at least one
//      batch (bounds start at +infinity, which enforces this). Unsent
//      batches are pruned; the result is provably complete.
//
// The merged result is byte-identical to Repository::TopK by
// construction: consumed candidates are re-assembled in (video name,
// per-video rank) order — exactly the order the single-node loop emits —
// then passed through the same offline::MergeRankedCandidates. And
// because a clean run executes each per-video RVAQ exactly once across
// the whole cluster, every logical vaq_* metric lands on the single-node
// value too; only the vaq_cluster_* transport families differ by layout.
//
// Failover: if an expected batch does not arrive within
// `failover_timeout_ms` of virtual time (the shard's host is inside a
// fault-plan outage window, or was killed explicitly), the coordinator
// re-points the fetch at the next follower replica. Batches are a pure
// function of (shard, batch index), so the replica resumes mid-stream
// with no hand-off state and the final result is unchanged; the replica
// honestly re-executes its shard scan, which is visible in engine
// metrics but never in results.
//
// Times are virtual (fault::SimClock): a node's reply is ready
// `modeled_ms` (its shard's modeled disk time) after the query arrives,
// so `answer_ms` reflects the parallel schedule — max over shards, not
// sum — which is where the scatter–gather speedup shows up.
#ifndef VAQ_CLUSTER_COORDINATOR_H_
#define VAQ_CLUSTER_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cascade/planner.h"
#include "cluster/net.h"
#include "cluster/node.h"
#include "cluster/partition.h"
#include "common/status.h"
#include "obs/query_trace.h"
#include "offline/repository.h"
#include "offline/scoring.h"
#include "query/session.h"

namespace vaq {
namespace cluster {

// The coordinator's host id on the simulated network.
inline constexpr int kCoordinatorHost = -1;

struct ClusterOptions {
  int num_shards = 2;  // Initial layout; elastic split/merge may change it.
  int num_replicas = 0;  // Follower replicas per shard.
  PartitionScheme scheme = PartitionScheme::kHash;
  int batch_size = 4;    // Candidates per gather batch.
  NetOptions net;
  // Drives node outages (FaultSpec::node_outage_rate) and network
  // faults. Not owned; may be null (no faults).
  const fault::FaultPlan* fault_plan = nullptr;
  // Virtual ms without the expected batch before the coordinator fails
  // over to the next replica.
  double failover_timeout_ms = 50.0;
  // Staged outage for tests and `vaqctl cluster --kill-node`: host
  // `kill_node` is down from `kill_at_ms` onward (in addition to any
  // fault-plan windows). -1 disables.
  int kill_node = -1;
  double kill_at_ms = 0.0;
  // Deterministic watchdog: abort the gather with kDeadlineExceeded
  // after this many scheduler events (timer fires + deliveries). 0
  // disables. A bound on *events*, not wall time, so a livelocked
  // gather trips it identically on every machine — this is how the
  // chaos harness turns "hang" into a reproducible failure instead of
  // a test timeout.
  int64_t max_steps = 0;
  // Ingest-time proxy tier (src/cascade/) consulted when a ranked
  // statement carries WITH RECALL < 1.0: the coordinator plans the
  // cascade once and ships the thresholds with the scatter, so every
  // shard prefilters locally. Not owned; null disables (approximate
  // statements then run the exact path). Keys are repository video
  // names; thresholds are layout-independent, so the surviving set
  // never depends on the shard count.
  const cascade::ProxySet* proxy = nullptr;
};

// Elastic rebalancing policy (Coordinator::Rebalance). Loads are the
// per-shard modeled scan milliseconds accumulated since the previous
// Rebalance call (the "load window"); each call acts on the window and
// then closes it. Keep merge_threshold_ms well below half the split
// threshold or a freshly split pair can oscillate.
struct RebalanceOptions {
  // Split the hottest shard when its window load reaches this (and it
  // holds at least two videos).
  double split_threshold_ms = 50.0;
  // Merge the coldest adjacent pair when both sides are at or below
  // this.
  double merge_threshold_ms = 5.0;
  int min_shards = 1;
  int max_shards = 64;
};

struct ClusterTopKResult {
  // Byte-identical to the single-node Repository::TopK outcome (the
  // wall_ms field aside, which is real time there and virtual here).
  offline::RepositoryTopKResult merged;
  double answer_ms = 0.0;       // Virtual time the query completed.
  double single_node_ms = 0.0;  // Modeled sequential (1-node) scan time.
  double max_shard_ms = 0.0;    // Slowest shard's modeled scan time.
  int64_t batches_consumed = 0;
  int64_t batches_pruned = 0;   // Never fetched thanks to the bound.
  int64_t entries_consumed = 0;
  int64_t entries_total = 0;
  int64_t failovers = 0;
  NetStats net;                 // This query's traffic.
};

class Coordinator : public query::RankedBackend {
 public:
  // `repository` is not owned and must outlive the coordinator.
  Coordinator(const offline::Repository* repository, ClusterOptions options);

  const ClusterOptions& options() const { return options_; }
  // The *live* shard count: ClusterOptions::num_shards initially,
  // tracking elastic splits/merges afterwards.
  int num_shards() const { return static_cast<int>(shard_videos_.size()); }
  const std::vector<std::string>& ShardVideos(int shard) const;

  // --- Elastic rebalancing ----------------------------------------------
  // The shard layout only affects transport (vaq_cluster_* batch/net
  // accounting, host ids, answer_ms): merged results are re-assembled in
  // (video, per-video rank) order and every per-video scan runs exactly
  // once per clean query, so results and engine-level metrics are
  // byte-identical before, during and after any rebalance
  // (LayoutInvariantMetricPrefixes below; the elastic determinism test
  // pins this). Call between queries only — none of these methods are
  // synchronized against a running TopK.

  // Splits `shard`'s sorted video run at its midpoint into two adjacent
  // shards (range-style, whatever the original scheme). The shard must
  // hold at least two videos (kFailedPrecondition otherwise). Replica
  // hosts are re-derived from the new layout.
  Status SplitShard(int shard);

  // Merges shard `left` with shard `left + 1` into one sorted run.
  Status MergeShards(int left);

  // Load-reactive layout step: splits the hottest shard at or above
  // split_threshold_ms, then merges the coldest adjacent pair wholly at
  // or below merge_threshold_ms, honoring the min/max shard bounds —
  // at most one split and one merge per call. Returns the number of
  // layout actions taken and closes the load window (accumulators reset
  // to zero).
  int Rebalance(const RebalanceOptions& rebalance = {});

  // Modeled scan ms shard `shard` accumulated in the current load
  // window (also exported as vaq_cluster_shard_load_ms{shard=...}).
  double ShardLoadMs(int shard) const;

  // Global top-K for a conjunctive query, scatter–gathered. `ctx`
  // (optional) attributes the scatter–gather to a per-query trace: the
  // query id rides the simulated wire with every query/fetch message
  // (appended to the payload; the modeled byte counts are unchanged, so
  // timing is too), and each shard's scan, batches, bytes and failovers
  // land on a per-shard child node. When `rvaq.prefilter` is set (a
  // planned cascade), `plan_wire_bytes` models the thresholds riding the
  // scatter message to every shard; 0 on the exact path keeps the wire
  // byte-identical to pre-cascade builds.
  StatusOr<ClusterTopKResult> TopK(const std::string& action,
                                   const std::vector<std::string>& objects,
                                   const offline::ScoringModel& scoring,
                                   offline::RvaqOptions rvaq,
                                   const obs::QueryContext& ctx = {},
                                   int64_t plan_wire_bytes = 0) const;

  // query::RankedBackend: routes a parsed ranked statement (conjunctive
  // form) through TopK with the coordinator's own PaperScoring.
  StatusOr<query::QueryResult> ExecuteRanked(
      const query::QueryStatement& stmt, const obs::QueryContext& ctx) override;

 private:
  // Primary host of shard s is s; replica r of shard s is
  // num_shards + s * num_replicas + r (under the live shard count).
  int ReplicaHost(int shard, int replica) const;
  Node* HostNode(int host) const;
  bool HostDown(int host, double at_ms) const;
  // Recreates every node from the current shard_videos_ layout (host
  // ids are layout-relative, so a rebalance re-derives all of them).
  void RebuildNodes();

  const offline::Repository* repository_;
  ClusterOptions options_;
  offline::PaperScoring scoring_;
  std::vector<std::vector<std::string>> shard_videos_;
  // Per-shard modeled scan ms of the current load window (Rebalance
  // resets it). Mutable: folded during the logically-const TopK.
  mutable std::vector<double> shard_load_ms_;
  // Primaries [0, S), then replicas in ReplicaHost order. Mutable: nodes
  // cache the per-query shard run; TopK is logically const.
  mutable std::vector<std::unique_ptr<Node>> nodes_;
  // Exact-sample answer-latency percentiles
  // (vaq_query_latency_ms{path="cluster"}).
  std::unique_ptr<obs::LatencyRecorder> latency_;
};

// Metric-family prefixes whose values are shard-layout-invariant for a
// clean (fault-free) run: engine-level work happens exactly once per
// video per query no matter which shard owns the video, and per-query
// outcome counts don't depend on the layout at all. The elastic
// determinism test diffs snapshots filtered to these across static vs
// split/merge layouts. Transport families (vaq_cluster_batches/net/
// shard_load/answer_ms) and latency gauges built on answer_ms are
// deliberately absent — they measure the layout itself.
const std::vector<std::string>& LayoutInvariantMetricPrefixes();

}  // namespace cluster
}  // namespace vaq

#endif  // VAQ_CLUSTER_COORDINATOR_H_
