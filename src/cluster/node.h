// One cluster node's shard-local ranked execution.
//
// A `Node` owns a list of video names (its shard of the repository) and
// answers a conjunctive ranked query by running per-video RVAQ — the
// exact single-node code path (offline::QueryVideoTopK) over the exact
// single-node per-video K, in video-name order — and sorting the union
// of per-video winners by descending merge score. The coordinator then
// gathers this stream in fixed-size batches, each annotated with the
// highest score still unsent (the shard's remaining upper bound), which
// is what the threshold-algorithm stopping rule consumes.
//
// Execution is lazy and at-most-once per query: a clean run touches each
// video exactly once across the whole cluster, so every engine-level
// metric (vaq_rvaq_*, vaq_storage_accesses_total, ...) lands on the same
// final value as the single-node reference. A follower replica holds the
// same shard and only executes when the coordinator fails over to it.
//
// Batches are a pure function of (shard run, batch size, batch index):
// any replica serves any batch index identically, which is why failover
// needs no hand-off protocol beyond re-pointing fetches.
#ifndef VAQ_CLUSTER_NODE_H_
#define VAQ_CLUSTER_NODE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"
#include "offline/repository.h"

namespace vaq {
namespace cluster {

// Modeled disk cost of a shard scan, matching the serving layer's model
// (serve::Server) so single-node and per-shard timings are comparable.
inline constexpr double kShardSeekMs = 5.0;
inline constexpr double kShardRowMs = 0.01;

// One candidate on the wire.
struct ShardEntry {
  std::string video;
  int rank_in_video = 0;  // Position in the per-video RVAQ top list.
  offline::RankedSequence sequence;
  double merge_score = 0.0;  // offline::RankedMergeScore(sequence).
};

// Modeled payload size of one entry (name, interval, bounds, score).
int64_t EntryWireBytes(const ShardEntry& entry);

// A completed shard-local scan: the node's full candidate stream plus
// the accounting the coordinator folds into the global result.
struct ShardRun {
  std::vector<ShardEntry> entries;  // merge_score desc, ties (video, rank).
  storage::AccessCounter accesses;
  int64_t videos_queried = 0;
  int64_t videos_skipped = 0;
  // Cascade prefilter accounting (zero on the exact path): videos whose
  // every clip the proxy ruled out, and candidate intervals dropped
  // before table binds on surviving videos.
  int64_t videos_pruned = 0;
  int64_t candidates_pruned = 0;
  int64_t candidate_sequences = 0;
  double modeled_ms = 0.0;  // Modeled sequential disk time of the scan.
};

// One gather batch.
struct ShardBatch {
  int shard = 0;
  int index = 0;                    // Batch number within the stream.
  std::vector<ShardEntry> entries;  // Up to batch_size entries.
  // Highest merge score still unsent after this batch — the shard's
  // remaining upper bound. -infinity when the stream is exhausted.
  double next_bound = -std::numeric_limits<double>::infinity();
  bool more = false;
  int64_t wire_bytes = 0;
};

class Node {
 public:
  // `repository` is not owned and must outlive the node. `videos` is
  // this node's shard (sorted by PartitionNames).
  Node(int id, const offline::Repository* repository,
       std::vector<std::string> videos);

  int id() const { return id_; }
  const std::vector<std::string>& videos() const { return videos_; }

  // Runs the shard-local scan for a conjunctive query (at most once: a
  // repeat call with any arguments returns the cached run). Thread-
  // compatible, not thread-safe — the cluster simulation is single-
  // threaded by construction.
  StatusOr<const ShardRun*> RunRanked(const std::string& action,
                                      const std::vector<std::string>& objects,
                                      const offline::ScoringModel& scoring,
                                      offline::RvaqOptions options);

  // Whether the shard scan has executed for the current query.
  bool has_run() const { return has_run_; }

  // The cached run; valid only when has_run().
  const ShardRun* run() const { return &run_; }

  // Slices batch `index` out of the cached run (RunRanked first).
  ShardBatch Batch(int shard, int index, int batch_size) const;

  // Total batches of the cached run under `batch_size`.
  int NumBatches(int batch_size) const;

  // Drops the cached run (the node is reused for the next query).
  void ResetRun();

 private:
  int id_;
  const offline::Repository* repository_;
  std::vector<std::string> videos_;
  bool has_run_ = false;
  ShardRun run_;
};

}  // namespace cluster
}  // namespace vaq

#endif  // VAQ_CLUSTER_NODE_H_
