#include "detect/models.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace vaq {
namespace detect {
namespace {

// Salts separating the independent randomness streams of a model.
constexpr uint64_t kFalseNegativeSalt = 0x1f4a11;
constexpr uint64_t kFalsePositiveSalt = 0x2f9b22;
constexpr uint64_t kScoreSalt = 0x3c8d33;
constexpr uint64_t kTrackSalt = 0x4e7f44;
constexpr uint64_t kSwitchSalt = 0x5d6a55;

// Deterministic per-coordinate generator.
Rng MakeRng(uint64_t seed, uint64_t salt, int64_t type, int64_t unit) {
  return Rng(MixSeed(MixSeed(seed, salt ^ static_cast<uint64_t>(type)),
                     static_cast<uint64_t>(unit)));
}

// One Bernoulli decision per `block`-sized run of occurrence units: makes
// errors bursty while preserving the per-OU marginal probability `p`.
bool BlockBernoulli(uint64_t seed, uint64_t salt, int64_t type, int64_t unit,
                    int32_t block, double p) {
  const int64_t block_index = unit / std::max(block, 1);
  return MakeRng(seed, salt, type, block_index).Bernoulli(p);
}

// Confidence score for a prediction. Positive predictions land above the
// threshold (true positives high, false positives just above); negative
// predictions land below it.
double DrawScore(Rng& rng, const ModelProfile& profile, bool positive,
                 bool truth_present) {
  const double thr = profile.threshold;
  if (!positive) {
    return thr * rng.Beta(1.5, 3.0);
  }
  if (truth_present) {
    return thr + (1.0 - thr) * rng.Beta(profile.pos_alpha, profile.pos_beta);
  }
  return thr + (1.0 - thr) * rng.Beta(profile.fp_alpha, profile.fp_beta);
}

// One inference counter per (kind, model) family member, resolved once
// per model instance; the per-frame hot path is a single relaxed add.
obs::Counter* InferenceCounter(const char* kind, const ModelProfile& profile) {
  return obs::MetricRegistry::Global().GetCounter(
      std::string("vaq_") + kind + "_inferences_total",
      {{"model", profile.name}});
}

}  // namespace

// ---------------------------------------------------------------------------
// ObjectDetector
// ---------------------------------------------------------------------------

ObjectDetector::ObjectDetector(const synth::GroundTruth* truth,
                               ModelProfile profile, uint64_t seed)
    : truth_(truth), profile_(std::move(profile)), seed_(seed) {
  VAQ_CHECK(truth != nullptr);
  frame_seen_.assign(static_cast<size_t>(truth->layout().num_frames()),
                     false);
  metric_inferences_ = InferenceCounter("detector", profile_);
}

double ObjectDetector::MaxScore(ObjectTypeId type, FrameIndex frame) const {
  ++stats_.type_queries;
  if (!frame_seen_[static_cast<size_t>(frame)]) {
    // A real deployment runs the network once per frame and caches its
    // output for every type; only the first visit costs an inference.
    frame_seen_[static_cast<size_t>(frame)] = true;
    ++stats_.inferences;
    stats_.simulated_ms += profile_.inference_ms;
    metric_inferences_->Increment();
  }
  const bool present = truth_->ObjectFrames(type).Contains(frame);
  bool positive;
  if (present) {
    positive = BlockBernoulli(seed_, kFalseNegativeSalt, type, frame,
                              profile_.fn_block, profile_.tpr);
  } else {
    positive = BlockBernoulli(seed_, kFalsePositiveSalt, type, frame,
                              profile_.fp_block, profile_.fpr);
  }
  Rng rng = MakeRng(seed_, kScoreSalt, type, frame);
  return DrawScore(rng, profile_, positive, present);
}

// ---------------------------------------------------------------------------
// ActionRecognizer
// ---------------------------------------------------------------------------

ActionRecognizer::ActionRecognizer(const synth::GroundTruth* truth,
                                   ModelProfile profile, uint64_t seed)
    : truth_(truth), profile_(std::move(profile)), seed_(MixSeed(seed, 0xa)) {
  VAQ_CHECK(truth != nullptr);
  shot_seen_.assign(static_cast<size_t>(truth->layout().NumShots()), false);
  metric_inferences_ = InferenceCounter("recognizer", profile_);
}

double ActionRecognizer::Score(ActionTypeId type, ShotIndex shot) const {
  ++stats_.type_queries;
  if (!shot_seen_[static_cast<size_t>(shot)]) {
    shot_seen_[static_cast<size_t>(shot)] = true;
    ++stats_.inferences;
    stats_.simulated_ms += profile_.inference_ms;
    metric_inferences_->Increment();
  }
  // A shot "contains" the action when at least half of its frames lie in a
  // truth interval — the recognizer's training-time labelling convention.
  const Interval range = truth_->layout().ShotFrameRange(shot);
  const IntervalSet& frames = truth_->ActionFrames(type);
  int64_t covered = 0;
  for (const Interval& iv : frames.intervals()) {
    const int64_t lo = std::max(iv.lo, range.lo);
    const int64_t hi = std::min(iv.hi, range.hi);
    if (lo <= hi) covered += hi - lo + 1;
  }
  const bool present = covered * 2 >= range.length();
  bool positive;
  if (present) {
    positive = BlockBernoulli(seed_, kFalseNegativeSalt, type, shot,
                              profile_.fn_block, profile_.tpr);
  } else {
    positive = BlockBernoulli(seed_, kFalsePositiveSalt, type, shot,
                              profile_.fp_block, profile_.fpr);
  }
  Rng rng = MakeRng(seed_, kScoreSalt, type, shot);
  return DrawScore(rng, profile_, positive, present);
}

// ---------------------------------------------------------------------------
// ObjectTracker
// ---------------------------------------------------------------------------

ObjectTracker::ObjectTracker(const synth::GroundTruth* truth,
                             ModelProfile profile, uint64_t seed)
    : truth_(truth), profile_(std::move(profile)), seed_(MixSeed(seed, 0xb)) {
  VAQ_CHECK(truth != nullptr);
  frame_seen_.assign(static_cast<size_t>(truth->layout().num_frames()),
                     false);
  metric_inferences_ = InferenceCounter("tracker", profile_);
}

void ObjectTracker::AppendDetectionsAt(
    ObjectTypeId type, FrameIndex frame,
    const std::vector<const synth::TruthInstance*>& active,
    std::vector<std::pair<FrameIndex, TrackDetection>>* out) const {
  ++stats_.type_queries;
  if (!frame_seen_[static_cast<size_t>(frame)]) {
    frame_seen_[static_cast<size_t>(frame)] = true;
    ++stats_.inferences;
    stats_.simulated_ms += profile_.inference_ms;
    metric_inferences_->Increment();
  }
  for (const synth::TruthInstance* inst : active) {
    if (!inst->frames.Contains(frame)) continue;
    // Per-instance detection noise: key the error stream by the instance id
    // so each track flickers independently.
    const int64_t noise_key = type * 100003 + inst->instance_id;
    const bool detected =
        BlockBernoulli(seed_, kFalseNegativeSalt, noise_key, frame,
                       profile_.fn_block, profile_.tpr);
    if (!detected) continue;
    TrackDetection det;
    det.track_id = inst->instance_id;
    if (profile_.id_switch_prob > 0.0 &&
        BlockBernoulli(seed_, kSwitchSalt, noise_key, frame,
                       std::max(profile_.fn_block, 8), profile_.id_switch_prob)) {
      // Identity switch: the tracker re-assigns a fresh id for this block.
      det.track_id = inst->instance_id + 1000000 +
                     frame / std::max<int64_t>(profile_.fn_block, 8);
    }
    Rng rng = MakeRng(seed_, kScoreSalt ^ kTrackSalt, noise_key, frame);
    det.score = DrawScore(rng, profile_, /*positive=*/true,
                          /*truth_present=*/true);
    out->emplace_back(frame, det);
  }
  // Spurious track: a hallucinated object of this type.
  if (BlockBernoulli(seed_, kFalsePositiveSalt ^ kTrackSalt, type, frame,
                     profile_.fp_block, profile_.fpr)) {
    TrackDetection det;
    det.track_id = 2000000 + type * 10000 +
                   frame / std::max<int32_t>(profile_.fp_block, 1);
    Rng rng = MakeRng(seed_, kScoreSalt ^ kFalsePositiveSalt, type, frame);
    det.score = DrawScore(rng, profile_, /*positive=*/true,
                          /*truth_present=*/false);
    out->emplace_back(frame, det);
  }
}

std::vector<TrackDetection> ObjectTracker::Detect(ObjectTypeId type,
                                                  FrameIndex frame) const {
  std::vector<std::pair<FrameIndex, TrackDetection>> buffer;
  DetectRange(type, Interval(frame, frame), &buffer);
  std::vector<TrackDetection> out;
  out.reserve(buffer.size());
  for (auto& [f, det] : buffer) out.push_back(det);
  return out;
}

void ObjectTracker::DetectRange(
    ObjectTypeId type, const Interval& frames,
    std::vector<std::pair<FrameIndex, TrackDetection>>* out) const {
  if (frames.empty()) return;
  // Collect the instances overlapping the range once.
  std::vector<const synth::TruthInstance*> active;
  for (const synth::ObjectTruth& truth : truth_->objects()) {
    if (truth.type != type) continue;
    for (const synth::TruthInstance& inst : truth.instances) {
      if (inst.frames.Overlaps(frames)) active.push_back(&inst);
    }
  }
  for (FrameIndex f = frames.lo; f <= frames.hi; ++f) {
    AppendDetectionsAt(type, f, active, out);
  }
}

// ---------------------------------------------------------------------------
// ModelBundle
// ---------------------------------------------------------------------------

ModelBundle ModelBundle::Make(const synth::GroundTruth& truth,
                              const ModelProfile& object_profile,
                              const ModelProfile& action_profile,
                              const ModelProfile& tracker_profile,
                              uint64_t seed) {
  ModelBundle bundle;
  bundle.detector =
      std::make_unique<ObjectDetector>(&truth, object_profile, seed);
  bundle.recognizer =
      std::make_unique<ActionRecognizer>(&truth, action_profile, seed);
  bundle.tracker =
      std::make_unique<ObjectTracker>(&truth, tracker_profile, seed);
  return bundle;
}

ModelBundle ModelBundle::MaskRcnnI3d(const synth::GroundTruth& truth,
                                     uint64_t seed) {
  return Make(truth, ModelProfile::MaskRcnn(), ModelProfile::I3d(),
              ModelProfile::CenterTrack(), seed);
}

ModelBundle ModelBundle::YoloI3d(const synth::GroundTruth& truth,
                                 uint64_t seed) {
  return Make(truth, ModelProfile::YoloV3(), ModelProfile::I3d(),
              ModelProfile::CenterTrack(), seed);
}

ModelBundle ModelBundle::Ideal(const synth::GroundTruth& truth,
                               uint64_t seed) {
  return Make(truth, ModelProfile::IdealObject(), ModelProfile::IdealAction(),
              ModelProfile::IdealTracker(), seed);
}

double ModelBundle::TotalSimulatedMs() const {
  return detector->stats().simulated_ms + recognizer->stats().simulated_ms +
         tracker->stats().simulated_ms;
}

void ModelBundle::ResetStats() {
  detector->ResetStats();
  recognizer->ResetStats();
  tracker->ResetStats();
}

}  // namespace detect
}  // namespace vaq
