#include "detect/model_profile.h"

namespace vaq {
namespace detect {

ModelProfile ModelProfile::MaskRcnn() {
  ModelProfile p;
  p.name = "MaskRCNN";
  p.tpr = 0.88;
  p.fpr = 0.015;
  p.threshold = 0.5;
  p.fp_block = 2;
  p.fn_block = 2;
  p.pos_alpha = 6.0;
  p.pos_beta = 2.0;
  p.fp_alpha = 1.2;
  p.fp_beta = 5.0;
  p.inference_ms = 90.0;  // Two-stage detector, per frame.
  return p;
}

ModelProfile ModelProfile::YoloV3() {
  ModelProfile p;
  p.name = "YOLOv3";
  p.tpr = 0.76;
  p.fpr = 0.045;
  p.threshold = 0.5;
  p.fp_block = 3;
  p.fn_block = 3;
  p.pos_alpha = 4.0;
  p.pos_beta = 2.2;
  p.fp_alpha = 1.3;
  p.fp_beta = 4.0;
  p.inference_ms = 22.0;  // One-stage detector, per frame.
  return p;
}

ModelProfile ModelProfile::IdealObject() {
  ModelProfile p;
  p.name = "IdealObject";
  p.tpr = 1.0;
  p.fpr = 0.0;
  p.threshold = 0.5;
  p.inference_ms = 0.0;
  return p;
}

ModelProfile ModelProfile::ProxyCnn() {
  ModelProfile p;
  p.name = "ProxyCNN";
  p.tpr = 0.95;  // Tuned for recall: the cascade must rarely miss.
  p.fpr = 0.20;  // ...at the price of a heavy false-positive tail.
  p.threshold = 0.25;
  p.fp_block = 1;
  p.fn_block = 1;
  p.pos_alpha = 2.0;
  p.pos_beta = 2.0;
  p.fp_alpha = 1.1;
  p.fp_beta = 3.0;
  p.inference_ms = 2.0;  // Tiny CNN, per clip (not per frame).
  return p;
}

ModelProfile ModelProfile::I3d() {
  ModelProfile p;
  p.name = "I3D";
  p.tpr = 0.82;
  p.fpr = 0.0015;
  p.threshold = 0.5;
  p.fp_block = 1;  // Shot-level errors are effectively iid.
  p.fn_block = 1;
  p.pos_alpha = 5.0;
  p.pos_beta = 2.0;
  p.fp_alpha = 1.2;
  p.fp_beta = 4.5;
  p.inference_ms = 160.0;  // 3D ConvNet, per shot.
  return p;
}

ModelProfile ModelProfile::IdealAction() {
  ModelProfile p;
  p.name = "IdealAction";
  p.tpr = 1.0;
  p.fpr = 0.0;
  p.threshold = 0.5;
  p.inference_ms = 0.0;
  return p;
}

ModelProfile ModelProfile::CenterTrack() {
  ModelProfile p;
  p.name = "CenterTrack";
  p.tpr = 0.85;
  p.fpr = 0.020;
  p.threshold = 0.5;
  p.fp_block = 2;
  p.fn_block = 2;
  p.pos_alpha = 5.5;
  p.pos_beta = 2.0;
  p.fp_alpha = 1.2;
  p.fp_beta = 5.0;
  p.inference_ms = 45.0;
  p.id_switch_prob = 0.03;
  return p;
}

ModelProfile ModelProfile::IdealTracker() {
  ModelProfile p;
  p.name = "IdealTracker";
  p.tpr = 1.0;
  p.fpr = 0.0;
  p.threshold = 0.5;
  p.inference_ms = 0.0;
  return p;
}

}  // namespace detect
}  // namespace vaq
