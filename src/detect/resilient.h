// Resilient decorators around the perception models.
//
// Systems like Focus and BlazeIt treat the NN layer as an unreliable,
// budgeted resource. `ResilientObjectDetector` / `ResilientActionRecognizer`
// wrap a simulated model with the production-grade failure handling a
// remote GPU service needs:
//
//  * a per-call deadline budget — a timed-out attempt costs `deadline_ms`
//    on the simulated clock and counts as a failure;
//  * bounded retries with exponential backoff (on the same simulated
//    clock), with score *validation* between attempts: NaN or
//    out-of-range scores injected by the fault plan are detected and
//    retried rather than silently corrupting downstream statistics;
//  * a circuit breaker that marks the model unhealthy after
//    `breaker_threshold` consecutive abandoned calls; while open, calls
//    fail fast (no inner invocations) until `breaker_open_ms` has passed,
//    then a half-open probe decides whether to close it again.
//
// Failed observations surface as `Status` (kUnavailable /
// kDeadlineExceeded); the engines translate them into their configured
// missing-observation policy. All counters accumulate into the wrapped
// model's `ModelStats`, so the existing stats plumbing (OnlineResult,
// QueryResult, benches) reports them unchanged.
//
// With a null fault plan every call forwards straight to the inner model:
// the wrapper is a zero-overhead pass-through and engine outputs are
// bit-identical to the unwrapped run.
#ifndef VAQ_DETECT_RESILIENT_H_
#define VAQ_DETECT_RESILIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "detect/models.h"
#include "fault/fault_plan.h"
#include "fault/sim_clock.h"
#include "obs/metrics.h"

namespace vaq {
namespace detect {

struct ResilienceOptions {
  // Per-attempt deadline budget; a timed-out attempt burns this much
  // simulated time.
  double deadline_ms = 40.0;
  // Extra attempts after the first failed one.
  int64_t max_retries = 2;
  // Backoff before retry r (0-based): backoff_base_ms * multiplier^r.
  double backoff_base_ms = 5.0;
  double backoff_multiplier = 2.0;
  // Consecutive abandoned calls before the breaker opens.
  int64_t breaker_threshold = 4;
  // Cool-down before a half-open probe is allowed.
  double breaker_open_ms = 2000.0;
  // Stream time that elapses between clip arrivals: the engines advance
  // the simulated clock by this before each clip, so an open breaker's
  // cool-down expires with the stream (one ~3.3 s clip at the default
  // 100-frame / 30 fps layout outlasts `breaker_open_ms`) instead of
  // extending an outage far past its injected window.
  double clip_interval_ms = 3333.0;
};

namespace internal_detect {

// Shared retry/backoff/breaker state machine; one per wrapped model.
// The inner call is abstracted as a score producer so both wrappers reuse
// the exact same fault-schedule semantics, and so the inner model is only
// invoked on attempts that actually reach it (an outage or an open
// breaker costs no inference).
class ResilientCore {
 public:
  // `model_name` labels this wrapper's registry metrics (families
  // vaq_model_calls_total / vaq_model_retries_total /
  // vaq_breaker_transitions_total). No metrics are registered for a null
  // plan: the pass-through path stays zero-overhead.
  ResilientCore(const fault::FaultPlan* plan, fault::FaultDomain domain,
                ResilienceOptions options, fault::SimClock* clock,
                const std::string& model_name);

  // Runs the attempt loop for the observation at `unit`; `score_fn()`
  // performs one real inner call and `inference_ms` prices it on the
  // simulated clock. Returns the validated score or the last attempt's
  // error.
  template <typename ScoreFn>
  StatusOr<double> Observe(int64_t unit, double inference_ms,
                           ModelStats* stats, ScoreFn&& score_fn) {
    if (plan_ == nullptr) return score_fn();  // Zero-overhead pass-through.
    if (breaker_open_ && clock_->now_ms() < breaker_reopen_ms_) {
      ++stats->failures;
      CountCall(calls_breaker_open_, "breaker_open");
      return Status::Unavailable("circuit breaker open");
      // (Once the cool-down has passed, the call below is the half-open
      // probe: success closes the breaker, failure re-arms it.)
    }
    Status last_error;
    for (int64_t attempt = 0; attempt <= options_.max_retries; ++attempt) {
      if (attempt > 0) {
        ++stats->retries;
        retries_->Increment();
        clock_->Advance(options_.backoff_base_ms *
                        Pow(options_.backoff_multiplier, attempt - 1));
      }
      const fault::FaultKind kind =
          plan_->ProbeCall(domain_, unit, attempt_nonce_++);
      if (kind == fault::FaultKind::kCrash) {
        // The service is down for this whole outage window; retrying
        // within it is futile. Fail fast and let the breaker absorb the
        // outage.
        ++stats->faults_injected;
        CountCall(calls_outage_, "outage");
        last_error = Status::Unavailable("model outage");
        break;
      }
      if (kind == fault::FaultKind::kTimeout) {
        ++stats->faults_injected;
        CountCall(calls_timeout_, "timeout");
        clock_->Advance(options_.deadline_ms);  // The deadline budget burned.
        last_error = Status::DeadlineExceeded("model call timed out");
        continue;
      }
      double score = score_fn();
      clock_->Advance(inference_ms);
      score = Corrupt(score, kind);
      if (!(score >= 0.0 && score <= 1.0)) {  // NaN also fails this test.
        ++stats->faults_injected;
        CountCall(calls_invalid_, "invalid_score");
        last_error = Status::Unavailable("model returned invalid score");
        continue;
      }
      consecutive_failures_ = 0;
      if (breaker_open_) {
        breaker_open_ = false;
        breaker_closed_->Increment();
      }
      CountCall(calls_ok_, "ok");
      return score;
    }
    ++stats->failures;
    CountCall(calls_failed_, "abandoned");
    if (++consecutive_failures_ >= options_.breaker_threshold) {
      if (!breaker_open_) {
        ++stats->breaker_trips;
        breaker_opened_->Increment();
      }
      breaker_open_ = true;
      breaker_reopen_ms_ = clock_->now_ms() + options_.breaker_open_ms;
    }
    return last_error;
  }

  bool healthy() const { return !breaker_open_; }

  // Mutable retry/breaker state, exposed for checkpointing (src/ckpt/).
  // `attempt_nonce` is part of the fault schedule: restoring it replays
  // the exact per-attempt fault draws the uninterrupted run would see.
  struct State {
    int64_t attempt_nonce = 0;
    int64_t consecutive_failures = 0;
    bool breaker_open = false;
    double breaker_reopen_ms = 0.0;
  };
  State state() const {
    return State{attempt_nonce_, consecutive_failures_, breaker_open_,
                 breaker_reopen_ms_};
  }
  void set_state(const State& s) {
    attempt_nonce_ = s.attempt_nonce;
    consecutive_failures_ = s.consecutive_failures;
    breaker_open_ = s.breaker_open;
    breaker_reopen_ms_ = s.breaker_reopen_ms;
  }

 private:
  // Increments the registry counter and mirrors the outcome into the
  // current thread's per-query trace (obs::CurrentQueryContext) as a
  // `model_calls_<outcome>` stat — per-query outcomes cannot be
  // reconstructed from ModelStats deltas, so they are attributed here at
  // the only site that knows them.
  void CountCall(obs::Counter* counter, const char* outcome);
  // Applies an injected score fault to the true score.
  static double Corrupt(double score, fault::FaultKind kind);
  // Small integer power (avoids pulling <cmath> into every include).
  static double Pow(double base, int64_t exp);

  const fault::FaultPlan* plan_;
  fault::FaultDomain domain_;
  ResilienceOptions options_;
  fault::SimClock* clock_;
  int64_t attempt_nonce_ = 0;
  int64_t consecutive_failures_ = 0;
  bool breaker_open_ = false;
  double breaker_reopen_ms_ = 0.0;

  // Registry mirrors, resolved once at construction. All non-null whenever
  // `plan_` is set; the null-plan pass-through returns before touching any
  // of them.
  obs::Counter* calls_ok_ = nullptr;
  obs::Counter* calls_timeout_ = nullptr;
  obs::Counter* calls_outage_ = nullptr;
  obs::Counter* calls_invalid_ = nullptr;
  obs::Counter* calls_breaker_open_ = nullptr;
  obs::Counter* calls_failed_ = nullptr;
  obs::Counter* retries_ = nullptr;
  obs::Counter* breaker_opened_ = nullptr;
  obs::Counter* breaker_closed_ = nullptr;
};

}  // namespace internal_detect

// Object detector with deadline/retry/breaker semantics. `inner`, `plan`
// and `clock` must outlive the wrapper; `plan` may be null (pass-through).
class ResilientObjectDetector {
 public:
  ResilientObjectDetector(ObjectDetector* inner, const fault::FaultPlan* plan,
                          ResilienceOptions options, fault::SimClock* clock);

  // MaxScore with failure handling; kUnavailable / kDeadlineExceeded when
  // the observation was abandoned.
  StatusOr<double> MaxScore(ObjectTypeId type, FrameIndex frame);

  // The indicator 1_o^(v), or the abandonment error.
  StatusOr<bool> IsPositive(ObjectTypeId type, FrameIndex frame) {
    VAQ_ASSIGN_OR_RETURN(const double score, MaxScore(type, frame));
    return score >= inner_->profile().threshold;
  }

  // Charges `n` policy-fallback observations to the model's stats.
  void CountFallbacks(int64_t n) { inner_->mutable_stats().fallbacks += n; }

  bool healthy() const { return core_.healthy(); }
  ObjectDetector* inner() { return inner_; }

  internal_detect::ResilientCore::State core_state() const {
    return core_.state();
  }
  void set_core_state(const internal_detect::ResilientCore::State& s) {
    core_.set_state(s);
  }

 private:
  ObjectDetector* inner_;
  const fault::FaultPlan* plan_;
  internal_detect::ResilientCore core_;
};

// Action recognizer counterpart (shot-granularity units).
class ResilientActionRecognizer {
 public:
  ResilientActionRecognizer(ActionRecognizer* inner,
                            const fault::FaultPlan* plan,
                            ResilienceOptions options, fault::SimClock* clock);

  StatusOr<double> Score(ActionTypeId type, ShotIndex shot);

  StatusOr<bool> IsPositive(ActionTypeId type, ShotIndex shot) {
    VAQ_ASSIGN_OR_RETURN(const double score, Score(type, shot));
    return score >= inner_->profile().threshold;
  }

  void CountFallbacks(int64_t n) { inner_->mutable_stats().fallbacks += n; }

  bool healthy() const { return core_.healthy(); }
  ActionRecognizer* inner() { return inner_; }

  internal_detect::ResilientCore::State core_state() const {
    return core_.state();
  }
  void set_core_state(const internal_detect::ResilientCore::State& s) {
    core_.set_state(s);
  }

 private:
  ActionRecognizer* inner_;
  const fault::FaultPlan* plan_;
  internal_detect::ResilientCore core_;
};

}  // namespace detect
}  // namespace vaq

#endif  // VAQ_DETECT_RESILIENT_H_
