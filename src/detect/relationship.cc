#include "detect/relationship.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace vaq {
namespace detect {
namespace {

constexpr uint64_t kRelFalseNegativeSalt = 0x6e1a77;
constexpr uint64_t kRelFalsePositiveSalt = 0x7f2b88;

// Key mixing the relationship's identity into the noise stream.
int64_t SpecKey(const RelationshipSpec& spec) {
  return (static_cast<int64_t>(spec.kind) * 1000003 + spec.subject) *
             1000003 +
         spec.object;
}

bool PairSatisfies(RelationshipKind kind, double xa, double xb,
                   double margin) {
  switch (kind) {
    case RelationshipKind::kLeftOf:
      return xa + margin <= xb;
    case RelationshipKind::kRightOf:
      return xb + margin <= xa;
    case RelationshipKind::kNear:
      return std::fabs(xa - xb) <= margin;
  }
  return false;
}

}  // namespace

const char* RelationshipKindName(RelationshipKind kind) {
  switch (kind) {
    case RelationshipKind::kLeftOf:
      return "left_of";
    case RelationshipKind::kRightOf:
      return "right_of";
    case RelationshipKind::kNear:
      return "near";
  }
  return "?";
}

std::string RelationshipSpec::ToString(const Vocabulary& vocab) const {
  return vocab.ObjectTypeName(subject) + " " + RelationshipKindName(kind) +
         " " + vocab.ObjectTypeName(object);
}

RelationshipDetector::RelationshipDetector(const synth::GroundTruth* truth,
                                           ModelProfile profile,
                                           uint64_t seed)
    : truth_(truth), profile_(std::move(profile)), seed_(MixSeed(seed, 0xc)) {
  VAQ_CHECK(truth != nullptr);
}

bool RelationshipDetector::TruthHolds(const RelationshipSpec& spec,
                                      FrameIndex frame) const {
  const std::vector<synth::TruthInstance> subjects =
      truth_->InstancesAt(spec.subject, frame);
  if (subjects.empty()) return false;
  const std::vector<synth::TruthInstance> objects =
      truth_->InstancesAt(spec.object, frame);
  if (objects.empty()) return false;
  for (const synth::TruthInstance& a : subjects) {
    for (const synth::TruthInstance& b : objects) {
      if (spec.subject == spec.object &&
          a.instance_id == b.instance_id) {
        continue;  // A thing is not left of itself.
      }
      if (PairSatisfies(spec.kind, a.XAt(frame), b.XAt(frame),
                        spec.margin)) {
        return true;
      }
    }
  }
  return false;
}

bool RelationshipDetector::IsPositive(const RelationshipSpec& spec,
                                      FrameIndex frame) const {
  const bool present = TruthHolds(spec, frame);
  const int64_t key = SpecKey(spec);
  // A relationship decision needs both detections right: compose the
  // profile's TPR twice; a false relationship needs either a hallucinated
  // detection or a large localization error, so the FPR stays the
  // profile's.
  const double tpr = profile_.tpr * profile_.tpr;
  const double probability = present ? tpr : profile_.fpr;
  const int32_t block = present ? profile_.fn_block : profile_.fp_block;
  const int64_t block_index =
      frame / std::max<int32_t>(block, 1);
  Rng rng(MixSeed(
      MixSeed(seed_, (present ? kRelFalseNegativeSalt : kRelFalsePositiveSalt) ^
                         static_cast<uint64_t>(key)),
      static_cast<uint64_t>(block_index)));
  return rng.Bernoulli(probability);
}

std::vector<int64_t> RelationshipDetector::ClipCounts(
    const RelationshipSpec& spec, const VideoLayout& layout) const {
  std::vector<int64_t> counts(static_cast<size_t>(layout.NumClips()), 0);
  for (ClipIndex c = 0; c < layout.NumClips(); ++c) {
    const Interval frames = layout.ClipFrameRange(c);
    for (FrameIndex v = frames.lo; v <= frames.hi; ++v) {
      if (IsPositive(spec, v)) ++counts[static_cast<size_t>(c)];
    }
  }
  return counts;
}

}  // namespace detect
}  // namespace vaq
