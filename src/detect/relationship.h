// Spatial relationship predicates (§2, footnote 2).
//
// The paper supports predicates like "human left of the car" by deriving,
// per frame, a *binary output* for each relationship from the object
// detection outcomes — technology orthogonal to the query machinery,
// which then treats the relationship exactly like an object-presence
// event stream (frame-granularity Bernoulli events fed to the scan
// statistics). This module supplies that derivation over the simulated
// substrate: relationship ground truth from the instances' position
// tracks, and a noisy detector whose error profile mirrors the object
// detector's (a relationship decision composes two detections, so its
// effective TPR is roughly the square of the detector's).
#ifndef VAQ_DETECT_RELATIONSHIP_H_
#define VAQ_DETECT_RELATIONSHIP_H_

#include <string>
#include <vector>

#include "detect/model_profile.h"
#include "synth/ground_truth.h"
#include "video/layout.h"
#include "video/vocabulary.h"

namespace vaq {
namespace detect {

enum class RelationshipKind {
  kLeftOf,   // Some subject instance strictly left of some object instance.
  kRightOf,  // Mirror image.
  kNear,     // Some subject/object pair within `margin` of each other.
};

const char* RelationshipKindName(RelationshipKind kind);

// One relationship predicate between two object types.
struct RelationshipSpec {
  RelationshipKind kind = RelationshipKind::kLeftOf;
  ObjectTypeId subject = kInvalidTypeId;
  ObjectTypeId object = kInvalidTypeId;
  // Minimal horizontal separation (kLeftOf/kRightOf) or maximal distance
  // (kNear), in normalized screen units.
  double margin = 0.05;

  std::string ToString(const Vocabulary& vocab) const;
};

// Derives per-frame relationship indicators.
class RelationshipDetector {
 public:
  // `truth` must outlive the detector; `profile` supplies the composed
  // detection noise (use the object detector's profile).
  RelationshipDetector(const synth::GroundTruth* truth, ModelProfile profile,
                       uint64_t seed);

  // Whether the relationship geometrically holds at `frame` in the ground
  // truth (both types visible and the position constraint satisfied by
  // some instance pair).
  bool TruthHolds(const RelationshipSpec& spec, FrameIndex frame) const;

  // The noisy per-frame binary output the query machinery consumes.
  bool IsPositive(const RelationshipSpec& spec, FrameIndex frame) const;

  // Convenience: per-clip positive-frame counts over the whole video —
  // the occurrence-unit streams Eq. 1 counts for a relationship
  // predicate.
  std::vector<int64_t> ClipCounts(const RelationshipSpec& spec,
                                  const VideoLayout& layout) const;

  const ModelProfile& profile() const { return profile_; }

 private:
  const synth::GroundTruth* truth_;
  ModelProfile profile_;
  uint64_t seed_;
};

}  // namespace detect
}  // namespace vaq

#endif  // VAQ_DETECT_RELATIONSHIP_H_
