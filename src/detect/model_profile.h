// Noise profiles of the simulated perception models.
//
// The paper plugs black-box object detectors (Mask R-CNN, YOLOv3), an
// action recognizer (I3D) and an object tracker (CenterTrack) into its
// algorithms, plus "ideal models" that match ground truth exactly (§5.1).
// This module describes each model as a stochastic confusion process
// against ground truth (see DESIGN.md §1 for why this substitution
// preserves the algorithms' behaviour):
//
//  * `tpr` / `fpr`: per-occurrence-unit probability of a positive
//    prediction when the type is truly present / absent. Noise is
//    *bursty*: errors are drawn per block of `fp_block` / `fn_block`
//    consecutive OUs (real detector errors flicker in runs, which is the
//    Markov-dependence caveat of §3.2); block length 1 gives iid noise.
//  * score distributions: positive predictions carry a confidence score
//    above `threshold` drawn from a rescaled Beta — true positives from
//    (pos_alpha, pos_beta), false positives from the lower-skewed
//    (fp_alpha, fp_beta); negative predictions score below the threshold.
//  * `inference_ms`: simulated GPU inference cost per occurrence unit,
//    used to reproduce the paper's "runtime is >98% model inference"
//    analysis (§5.2).
#ifndef VAQ_DETECT_MODEL_PROFILE_H_
#define VAQ_DETECT_MODEL_PROFILE_H_

#include <cstdint>
#include <string>

namespace vaq {
namespace detect {

struct ModelProfile {
  std::string name;
  // Recognition characteristics per occurrence unit (frame for object
  // models, shot for action models).
  double tpr = 0.85;
  double fpr = 0.04;
  // Score threshold T_obj / T_act (§2).
  double threshold = 0.5;
  // Mean error-burst lengths, in occurrence units.
  int32_t fp_block = 1;
  int32_t fn_block = 1;
  // Above-threshold score shapes (Beta parameters; see file comment).
  double pos_alpha = 5.0;
  double pos_beta = 2.0;
  double fp_alpha = 1.2;
  double fp_beta = 4.0;
  // Simulated inference latency per occurrence unit.
  double inference_ms = 0.0;
  // Tracker-only: probability per error block that a track id switches.
  double id_switch_prob = 0.0;

  // --- Object detector presets -------------------------------------------
  // Two-stage detector: high accuracy, moderate cost.
  static ModelProfile MaskRcnn();
  // One-stage detector: faster, noisier (the paper's lower-accuracy
  // alternative in Table 4).
  static ModelProfile YoloV3();
  // Ground-truth oracle (Table 4's "Ideal Models" row).
  static ModelProfile IdealObject();
  // Cascade proxy tier: a tiny specialized CNN in the Focus/BlazeIt
  // mold — orders of magnitude cheaper than the full detectors, far
  // noisier. Scored once per clip at ingest (src/cascade/), never at
  // query time.
  static ModelProfile ProxyCnn();

  // --- Action recognizer presets ------------------------------------------
  // I3D two-stream 3D ConvNet on shots.
  static ModelProfile I3d();
  static ModelProfile IdealAction();

  // --- Tracker presets ------------------------------------------------------
  // CenterTrack real-time tracker.
  static ModelProfile CenterTrack();
  static ModelProfile IdealTracker();
};

}  // namespace detect
}  // namespace vaq

#endif  // VAQ_DETECT_MODEL_PROFILE_H_
