#include "detect/resilient.h"

#include <limits>

#include "obs/query_trace.h"

namespace vaq {
namespace detect {
namespace internal_detect {
namespace {

const char* DomainName(fault::FaultDomain domain) {
  switch (domain) {
    case fault::FaultDomain::kDetector:
      return "detector";
    case fault::FaultDomain::kRecognizer:
      return "recognizer";
    default:
      return "other";
  }
}

}  // namespace

ResilientCore::ResilientCore(const fault::FaultPlan* plan,
                             fault::FaultDomain domain,
                             ResilienceOptions options, fault::SimClock* clock,
                             const std::string& model_name)
    : plan_(plan), domain_(domain), options_(options), clock_(clock) {
  if (plan_ == nullptr) return;  // Pass-through: no registry families.
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  const std::string domain_name = DomainName(domain_);
  const auto call_counter = [&](const char* outcome) {
    return registry.GetCounter("vaq_model_calls_total",
                               {{"domain", domain_name},
                                {"model", model_name},
                                {"outcome", outcome}});
  };
  calls_ok_ = call_counter("ok");
  calls_timeout_ = call_counter("timeout");
  calls_outage_ = call_counter("outage");
  calls_invalid_ = call_counter("invalid_score");
  calls_breaker_open_ = call_counter("breaker_open");
  calls_failed_ = call_counter("abandoned");
  retries_ = registry.GetCounter(
      "vaq_model_retries_total",
      {{"domain", domain_name}, {"model", model_name}});
  breaker_opened_ = registry.GetCounter(
      "vaq_breaker_transitions_total",
      {{"domain", domain_name}, {"model", model_name}, {"to", "open"}});
  breaker_closed_ = registry.GetCounter(
      "vaq_breaker_transitions_total",
      {{"domain", domain_name}, {"model", model_name}, {"to", "closed"}});
}

void ResilientCore::CountCall(obs::Counter* counter, const char* outcome) {
  counter->Increment();
  const obs::QueryContext& ctx = obs::CurrentQueryContext();
  if (ctx.active()) {
    ctx.AddStat(std::string("model_calls_") + outcome, 1);
  }
}

double ResilientCore::Corrupt(double score, fault::FaultKind kind) {
  switch (kind) {
    case fault::FaultKind::kNanScore:
      return std::numeric_limits<double>::quiet_NaN();
    case fault::FaultKind::kOutOfRangeScore:
      return 1e6 * (score + 1.0);  // Far outside [0, 1].
    default:
      return score;
  }
}

double ResilientCore::Pow(double base, int64_t exp) {
  double out = 1.0;
  for (int64_t i = 0; i < exp; ++i) out *= base;
  return out;
}

}  // namespace internal_detect

ResilientObjectDetector::ResilientObjectDetector(ObjectDetector* inner,
                                                 const fault::FaultPlan* plan,
                                                 ResilienceOptions options,
                                                 fault::SimClock* clock)
    : inner_(inner),
      plan_(plan),
      core_(plan, fault::FaultDomain::kDetector, options, clock,
            inner->profile().name) {}

StatusOr<double> ResilientObjectDetector::MaxScore(ObjectTypeId type,
                                                   FrameIndex frame) {
  return core_.Observe(frame, inner_->profile().inference_ms,
                       &inner_->mutable_stats(),
                       [&] { return inner_->MaxScore(type, frame); });
}

ResilientActionRecognizer::ResilientActionRecognizer(
    ActionRecognizer* inner, const fault::FaultPlan* plan,
    ResilienceOptions options, fault::SimClock* clock)
    : inner_(inner),
      plan_(plan),
      core_(plan, fault::FaultDomain::kRecognizer, options, clock,
            inner->profile().name) {}

StatusOr<double> ResilientActionRecognizer::Score(ActionTypeId type,
                                                  ShotIndex shot) {
  return core_.Observe(shot, inner_->profile().inference_ms,
                       &inner_->mutable_stats(),
                       [&] { return inner_->Score(type, shot); });
}

}  // namespace detect
}  // namespace vaq
