#include "detect/resilient.h"

#include <limits>

namespace vaq {
namespace detect {
namespace internal_detect {

double ResilientCore::Corrupt(double score, fault::FaultKind kind) {
  switch (kind) {
    case fault::FaultKind::kNanScore:
      return std::numeric_limits<double>::quiet_NaN();
    case fault::FaultKind::kOutOfRangeScore:
      return 1e6 * (score + 1.0);  // Far outside [0, 1].
    default:
      return score;
  }
}

double ResilientCore::Pow(double base, int64_t exp) {
  double out = 1.0;
  for (int64_t i = 0; i < exp; ++i) out *= base;
  return out;
}

}  // namespace internal_detect

ResilientObjectDetector::ResilientObjectDetector(ObjectDetector* inner,
                                                 const fault::FaultPlan* plan,
                                                 ResilienceOptions options,
                                                 fault::SimClock* clock)
    : inner_(inner),
      plan_(plan),
      core_(plan, fault::FaultDomain::kDetector, options, clock) {}

StatusOr<double> ResilientObjectDetector::MaxScore(ObjectTypeId type,
                                                   FrameIndex frame) {
  return core_.Observe(frame, inner_->profile().inference_ms,
                       &inner_->mutable_stats(),
                       [&] { return inner_->MaxScore(type, frame); });
}

ResilientActionRecognizer::ResilientActionRecognizer(
    ActionRecognizer* inner, const fault::FaultPlan* plan,
    ResilienceOptions options, fault::SimClock* clock)
    : inner_(inner),
      plan_(plan),
      core_(plan, fault::FaultDomain::kRecognizer, options, clock) {}

StatusOr<double> ResilientActionRecognizer::Score(ActionTypeId type,
                                                  ShotIndex shot) {
  return core_.Observe(shot, inner_->profile().inference_ms,
                       &inner_->mutable_stats(),
                       [&] { return inner_->Score(type, shot); });
}

}  // namespace detect
}  // namespace vaq
