// Simulated perception models: object detector, action recognizer, object
// tracker.
//
// Each model is a *pure deterministic function* of (seed, type, occurrence
// unit): any OU can be queried in any order and always yields the same
// score, which makes online processing, offline ingestion and re-runs
// reproducible. Randomness comes from hashing the coordinates into an RNG
// stream; bursty errors are realised by drawing the error decision once per
// `fp_block`/`fn_block`-sized block of OUs.
//
// All models count their invocations: the number of distinct inference
// calls (frames for the detector/tracker, shots for the recognizer) and the
// simulated inference cost, reproducing the paper's §5.2 runtime analysis.
#ifndef VAQ_DETECT_MODELS_H_
#define VAQ_DETECT_MODELS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "detect/model_profile.h"
#include "obs/metrics.h"
#include "synth/ground_truth.h"
#include "video/layout.h"
#include "video/vocabulary.h"

namespace vaq {
namespace detect {

// Invocation statistics of one model.
//
// Not thread-safe: a ModelStats (and the model that owns it) must only be
// mutated from one thread at a time. Concurrent runtimes (src/serve/)
// therefore keep one accumulator per worker and combine them with
// Merge() once the workers have drained — stats are never shared hot.
struct ModelStats {
  int64_t inferences = 0;    // Distinct OUs run through the network.
  int64_t type_queries = 0;  // (type, OU) score lookups served.
  double simulated_ms = 0;   // inferences × profile.inference_ms.

  // Resilience accounting, populated by the detect::Resilient* wrappers
  // and the engines' degradation policies (all zero when fault injection
  // is off; see src/fault/).
  int64_t faults_injected = 0;  // Attempts that failed or returned garbage.
  int64_t retries = 0;          // Extra attempts after a failed one.
  int64_t failures = 0;         // Observations abandoned after the budget.
  int64_t fallbacks = 0;        // Observations filled by a missing-obs policy.
  int64_t breaker_trips = 0;    // Circuit-breaker open transitions.

  // Aggregation across models of a bundle or runs of a sweep; replaces
  // field-by-field hand summing at the call sites.
  ModelStats& operator+=(const ModelStats& other) {
    inferences += other.inferences;
    type_queries += other.type_queries;
    simulated_ms += other.simulated_ms;
    faults_injected += other.faults_injected;
    retries += other.retries;
    failures += other.failures;
    fallbacks += other.fallbacks;
    breaker_trips += other.breaker_trips;
    return *this;
  }

  // Merge-at-drain spelling of operator+= for worker-local accumulators:
  // N accumulators filled on N threads and merged on one thread afterwards
  // total exactly what a single-thread run would have counted.
  ModelStats& Merge(const ModelStats& other) { return *this += other; }

  // Delta between two cumulative snapshots of the same model: the engines
  // report per-run stats as stats_after - stats_before, which stays
  // correct when a model instance is shared across successive runs (the
  // serving layer's shared detection cache).
  ModelStats& operator-=(const ModelStats& other) {
    inferences -= other.inferences;
    type_queries -= other.type_queries;
    simulated_ms -= other.simulated_ms;
    faults_injected -= other.faults_injected;
    retries -= other.retries;
    failures -= other.failures;
    fallbacks -= other.fallbacks;
    breaker_trips -= other.breaker_trips;
    return *this;
  }
  friend ModelStats operator-(ModelStats a, const ModelStats& b) {
    a -= b;
    return a;
  }

  // Same shape as storage::AccessCounter::ToString().
  std::string ToString() const {
    std::string out = "{inferences=" + std::to_string(inferences) +
                      ", type_queries=" + std::to_string(type_queries) +
                      ", simulated_ms=" + std::to_string(simulated_ms);
    if (faults_injected > 0 || retries > 0 || failures > 0 ||
        fallbacks > 0 || breaker_trips > 0) {
      out += ", faults=" + std::to_string(faults_injected) +
             ", retries=" + std::to_string(retries) +
             ", failures=" + std::to_string(failures) +
             ", fallbacks=" + std::to_string(fallbacks) +
             ", breaker_trips=" + std::to_string(breaker_trips);
    }
    return out + "}";
  }
};

// Simulated object detector. Reports max S_o^(v): the maximum detection
// score of an object type on a frame (§2).
class ObjectDetector {
 public:
  // `truth` must outlive the detector.
  ObjectDetector(const synth::GroundTruth* truth, ModelProfile profile,
                 uint64_t seed);

  // Maximum detection score of `type` on `frame`; compare against
  // profile().threshold for the prediction indicator 1_o^(v).
  double MaxScore(ObjectTypeId type, FrameIndex frame) const;

  // The indicator 1_o^(v) = 1[maxScore >= T_obj].
  bool IsPositive(ObjectTypeId type, FrameIndex frame) const {
    return MaxScore(type, frame) >= profile_.threshold;
  }

  const ModelProfile& profile() const { return profile_; }
  const ModelStats& stats() const { return stats_; }
  // Resilience wrappers account their fault/retry counters here so the
  // existing stats plumbing surfaces them unchanged.
  ModelStats& mutable_stats() { return stats_; }
  void ResetStats() {
    stats_ = ModelStats();
    std::fill(frame_seen_.begin(), frame_seen_.end(), false);
  }

 private:
  const synth::GroundTruth* truth_;
  ModelProfile profile_;
  uint64_t seed_;
  mutable ModelStats stats_;
  mutable std::vector<bool> frame_seen_;  // Per-frame inference cache.
  // Registry mirror of `inferences`, labeled by model (resolved once).
  obs::Counter* metric_inferences_ = nullptr;
};

// Simulated action recognizer operating on shots (§2).
class ActionRecognizer {
 public:
  ActionRecognizer(const synth::GroundTruth* truth, ModelProfile profile,
                   uint64_t seed);

  // Score S_a^(s) of action `type` on shot `shot`.
  double Score(ActionTypeId type, ShotIndex shot) const;

  bool IsPositive(ActionTypeId type, ShotIndex shot) const {
    return Score(type, shot) >= profile_.threshold;
  }

  const ModelProfile& profile() const { return profile_; }
  const ModelStats& stats() const { return stats_; }
  ModelStats& mutable_stats() { return stats_; }
  void ResetStats() {
    stats_ = ModelStats();
    std::fill(shot_seen_.begin(), shot_seen_.end(), false);
  }

 private:
  const synth::GroundTruth* truth_;
  ModelProfile profile_;
  uint64_t seed_;
  mutable ModelStats stats_;
  mutable std::vector<bool> shot_seen_;  // Per-shot inference cache.
  obs::Counter* metric_inferences_ = nullptr;
};

// One tracked detection on a frame: a stable track id plus the tracker's
// confidence score S_o^{t,(v)} (§2).
struct TrackDetection {
  int64_t track_id = 0;
  double score = 0.0;
};

// Simulated multi-object tracker (CenterTrack-style): assigns stable ids
// to ground-truth instances, with occasional id switches and spurious
// tracks according to the profile.
class ObjectTracker {
 public:
  ObjectTracker(const synth::GroundTruth* truth, ModelProfile profile,
                uint64_t seed);

  // Tracked detections of `type` on `frame`.
  std::vector<TrackDetection> Detect(ObjectTypeId type,
                                     FrameIndex frame) const;

  // Batched variant over an inclusive frame range; appends (frame,
  // detection) pairs to `out`. Much faster than per-frame Detect() for
  // clip-major ingestion scans.
  void DetectRange(ObjectTypeId type, const Interval& frames,
                   std::vector<std::pair<FrameIndex, TrackDetection>>* out)
      const;

  const ModelProfile& profile() const { return profile_; }
  const ModelStats& stats() const { return stats_; }
  void ResetStats() {
    stats_ = ModelStats();
    std::fill(frame_seen_.begin(), frame_seen_.end(), false);
  }

 private:
  void AppendDetectionsAt(
      ObjectTypeId type, FrameIndex frame,
      const std::vector<const synth::TruthInstance*>& active,
      std::vector<std::pair<FrameIndex, TrackDetection>>* out) const;

  const synth::GroundTruth* truth_;
  ModelProfile profile_;
  uint64_t seed_;
  mutable ModelStats stats_;
  mutable std::vector<bool> frame_seen_;  // Per-frame inference cache.
  obs::Counter* metric_inferences_ = nullptr;
};

// The set of models one experiment deploys, bound to a single video.
struct ModelBundle {
  std::unique_ptr<ObjectDetector> detector;
  std::unique_ptr<ActionRecognizer> recognizer;
  std::unique_ptr<ObjectTracker> tracker;

  static ModelBundle Make(const synth::GroundTruth& truth,
                          const ModelProfile& object_profile,
                          const ModelProfile& action_profile,
                          const ModelProfile& tracker_profile, uint64_t seed);

  // The paper's default stack: Mask R-CNN + I3D + CenterTrack.
  static ModelBundle MaskRcnnI3d(const synth::GroundTruth& truth,
                                 uint64_t seed);
  // Table 4's alternative stack: YOLOv3 + I3D.
  static ModelBundle YoloI3d(const synth::GroundTruth& truth, uint64_t seed);
  // Ground-truth oracles.
  static ModelBundle Ideal(const synth::GroundTruth& truth, uint64_t seed);

  // Total simulated inference time across all models.
  double TotalSimulatedMs() const;
  void ResetStats();
};

}  // namespace detect
}  // namespace vaq

#endif  // VAQ_DETECT_MODELS_H_
