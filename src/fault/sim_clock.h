// Simulated wall clock for deterministic resilience tests.
//
// Deadlines, retry backoff and circuit-breaker cool-downs all need a
// notion of elapsed time, but tying them to the real clock would make
// fault-injection runs irreproducible. `SimClock` is a monotone virtual
// clock advanced explicitly by whoever incurs simulated latency (model
// inference, timeouts, backoff sleeps); everything downstream reads the
// same deterministic timeline.
#ifndef VAQ_FAULT_SIM_CLOCK_H_
#define VAQ_FAULT_SIM_CLOCK_H_

namespace vaq {
namespace fault {

class SimClock {
 public:
  SimClock() = default;

  double now_ms() const { return now_ms_; }

  // Advances the clock; negative advances are ignored (time is monotone).
  void Advance(double ms) {
    if (ms > 0.0) now_ms_ += ms;
  }

  // Jumps to an absolute virtual time; a target in the past is ignored
  // (time is monotone). Event loops over sorted timelines (the traffic
  // front door, the cluster gather) advance with this.
  void AdvanceTo(double at_ms) { Advance(at_ms - now_ms_); }

 private:
  double now_ms_ = 0.0;
};

}  // namespace fault
}  // namespace vaq

#endif  // VAQ_FAULT_SIM_CLOCK_H_
