// Deterministic, seeded fault injection.
//
// Production deployments of VAQ spend >98% of their runtime inside a
// black-box perception service (§5.2) that times out, crashes and
// occasionally returns garbage, and serve score tables from storage that
// can lose pages. `FaultPlan` is the single source of truth for *when*
// such faults happen: every decision is a pure function of
// (seed, domain, coordinate), so a plan can be consulted from any layer,
// in any order, any number of times, and always yields the identical
// fault schedule — the same property the simulated models rely on.
//
// Two constructions matter:
//
//  * Decisions are threshold tests `uniform(hash) < rate`, so raising a
//    rate strictly *adds* faults to the schedule of a lower rate with the
//    same seed. Fault-rate sweeps (bench_resilience) are therefore
//    monotone by construction, not just in expectation.
//  * Outages ("crashes") are block-structured: the occurrence-unit axis
//    is divided into `crash_len_units`-sized windows and a whole window
//    is down with probability `crash_rate`. The expected fraction of
//    units inside an outage equals `crash_rate`.
//
// Per-attempt faults (timeouts, garbage scores, page-read errors) take an
// attempt nonce supplied by the caller, so a retry of the same logical
// read draws a fresh fault decision while staying deterministic for the
// run as a whole.
#ifndef VAQ_FAULT_FAULT_PLAN_H_
#define VAQ_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace vaq {
namespace fault {

// Independent fault streams of one plan; a detector outage says nothing
// about the recognizer or storage.
enum class FaultDomain : uint64_t {
  kDetector = 1,
  kRecognizer = 2,
  kTracker = 3,
  kStorage = 4,
  kStream = 5,
  kCheckpoint = 6,
  kNetwork = 7,
  kNode = 8,
};

// What happened to one model-call attempt.
enum class FaultKind {
  kNone = 0,
  kTimeout,          // The attempt exceeds its deadline budget.
  kCrash,            // The model is inside an outage window.
  kNanScore,         // The attempt returns NaN.
  kOutOfRangeScore,  // The attempt returns a score outside [0, 1].
};

const char* FaultKindName(FaultKind kind);

// One schedule-driven fault window: key `key` of `domain` is down over
// the half-open virtual-time interval [from_ms, to_ms). Unlike the rate
// parameters below — which describe a *distribution* the seed samples —
// a window is an explicit event: the chaos harness (src/chaos) composes
// node kill/restart and network partitions out of these.
//
//   * kNode: `key` is the host id (-1 = every host).
//   * kNetwork: a partition; `key` is ignored (the whole fabric).
struct ScheduledWindow {
  FaultDomain domain = FaultDomain::kNode;
  int64_t key = -1;
  double from_ms = 0.0;
  double to_ms = 0.0;
};

// Fault rates; all default to zero (an empty plan injects nothing).
struct FaultSpec {
  // Per-attempt probability that a model call times out.
  double timeout_rate = 0.0;
  // Fraction of occurrence units covered by outage windows.
  double crash_rate = 0.0;
  // Outage window length in occurrence units (frames for the detector,
  // shots for the recognizer).
  int64_t crash_len_units = 256;
  // Per-attempt probabilities of garbage scores.
  double nan_score_rate = 0.0;
  double out_of_range_score_rate = 0.0;
  // Per-clip probability that the clip's observations are lost entirely
  // (e.g. the camera feed dropped the segment).
  double drop_clip_rate = 0.0;
  // Per-attempt probability that a storage page read fails.
  double page_error_rate = 0.0;
  // Per-read probability that a checkpoint store entry comes back with a
  // flipped bit (media corruption; see ckpt::RecoveryDriver).
  double checkpoint_corrupt_rate = 0.0;
  // Per-transmission probability that a cluster network message copy is
  // lost (cluster::Net retransmits after an RTO; each attempt draws a
  // fresh decision).
  double net_drop_rate = 0.0;
  // Per-message probability that the network delivers a second, later
  // copy of the message (receivers dedup by (link, seq)).
  double net_dup_rate = 0.0;
  // Fraction of virtual time each cluster node spends inside an outage
  // window (block-structured like crash_rate, but on the millisecond
  // axis of fault::SimClock).
  double node_outage_rate = 0.0;
  // Node outage window length in virtual milliseconds.
  int64_t node_outage_len_ms = 50;
  // Explicit schedule-driven windows, consulted in addition to the rates
  // (NodeDown, NetPartitioned).
  std::vector<ScheduledWindow> windows;

  bool any() const {
    return timeout_rate > 0.0 || crash_rate > 0.0 || nan_score_rate > 0.0 ||
           out_of_range_score_rate > 0.0 || drop_clip_rate > 0.0 ||
           page_error_rate > 0.0 || checkpoint_corrupt_rate > 0.0 ||
           net_drop_rate > 0.0 || net_dup_rate > 0.0 ||
           node_outage_rate > 0.0 || !windows.empty();
  }
};

// Validates a spec: every rate must lie in [0, 1], every length must be
// positive, every window must be a well-formed non-negative interval.
// kInvalidArgument (naming the offending field) otherwise. A rate of 1.1
// or a negative latency silently *changes* the schedule semantics — 1.1
// faults every coordinate, a negative length divides by it — so the
// validated construction path (FaultPlan::Create) refuses them.
Status ValidateFaultSpec(const FaultSpec& spec);

class FaultPlan {
 public:
  FaultPlan(FaultSpec spec, uint64_t seed);

  // The validated construction path: ValidateFaultSpec first,
  // kInvalidArgument instead of a plan that silently misbehaves.
  static StatusOr<FaultPlan> Create(FaultSpec spec, uint64_t seed);

  const FaultSpec& spec() const { return spec_; }
  uint64_t seed() const { return seed_; }

  // True when `unit` lies inside an outage window of `domain`. Pure
  // position-based: retries during an outage keep failing.
  bool CrashActive(FaultDomain domain, int64_t unit) const;

  // Fault decision for one model-call attempt at `unit`. `attempt` is a
  // caller-maintained monotone nonce (fresh per retry). Outages dominate;
  // the per-attempt faults are drawn from one coupled uniform so raising
  // any rate only adds faults.
  FaultKind ProbeCall(FaultDomain domain, int64_t unit,
                      int64_t attempt) const;

  // True when clip `clip`'s observations are dropped wholesale.
  bool DropClip(int64_t clip) const;

  // True when the `attempt`-th read of storage page `page` fails.
  bool PageReadFails(int64_t page, int64_t attempt) const;

  // True when a read of checkpoint entry `entry` (a stable hash of the
  // entry name) returns corrupted bytes. Position-based like outages:
  // re-reading the same entry keeps returning the same corruption, which
  // is what forces recovery to fall back to an older snapshot.
  bool CheckpointCorrupts(int64_t entry) const;

  // Which bit of the corrupted entry flips, as a fraction of its length
  // in [0, 1). Only meaningful when CheckpointCorrupts(entry).
  double CheckpointCorruptPosition(int64_t entry) const;

  // True when the `attempt`-th transmission of message `seq` on `link`
  // is lost in flight (cluster::Net schedules a retransmission).
  bool NetDrops(int64_t link, int64_t seq, int64_t attempt) const;

  // True when the network spontaneously delivers a duplicate copy of
  // message `seq` on `link`. Position-based: the same message always
  // duplicates (or not) for a given plan.
  bool NetDuplicates(int64_t link, int64_t seq) const;

  // True when cluster node `node` is inside an outage window at virtual
  // time `at_ms`. Block-structured on the SimClock axis; pure
  // position-based, so probing any (node, time) in any order yields the
  // same outage schedule. Scheduled kNode windows are honored in
  // addition to the rate-driven blocks, so a node "restarts" the moment
  // its window ends.
  bool NodeDown(int64_t node, double at_ms) const;

  // True when a scheduled kNetwork window (a partition) covers `at_ms`.
  // cluster::Net consults this at transmission time: copies sent inside
  // a partition are lost and retransmitted, so a partition delays
  // traffic but never changes what is ultimately delivered.
  bool NetPartitioned(double at_ms) const;

  // The earliest instant at or after `at_ms` outside every partition
  // window (= `at_ms` itself when not partitioned). Overlapping windows
  // are chained.
  double PartitionClearMs(double at_ms) const;

 private:
  FaultSpec spec_;
  uint64_t seed_;
};

}  // namespace fault
}  // namespace vaq

#endif  // VAQ_FAULT_FAULT_PLAN_H_
