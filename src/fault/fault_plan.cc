#include "fault/fault_plan.h"

#include <string>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"

namespace vaq {
namespace fault {
namespace {

// Salts separating the plan's independent randomness streams.
constexpr uint64_t kCrashSalt = 0x6b7c8d9e1f2a3b4cULL;
constexpr uint64_t kCallSalt = 0x1a2b3c4d5e6f7081ULL;
constexpr uint64_t kDropSalt = 0x9d8c7b6a594837f2ULL;
constexpr uint64_t kPageSalt = 0x31415926535897e1ULL;
constexpr uint64_t kCkptSalt = 0x8f1bbcdc62c1d6a5ULL;
constexpr uint64_t kNetDropSalt = 0x243f6a8885a308d3ULL;
constexpr uint64_t kNetDupSalt = 0x13198a2e03707344ULL;
constexpr uint64_t kNodeSalt = 0xa4093822299f31d0ULL;

// Stateless uniform in [0, 1) from a coordinate tuple.
double UniformAt(uint64_t seed, uint64_t salt, uint64_t a, uint64_t b) {
  uint64_t s = MixSeed(MixSeed(seed, salt ^ a), b);
  return static_cast<double>(SplitMix64(s) >> 11) * 0x1.0p-53;
}

}  // namespace

Status ValidateFaultSpec(const FaultSpec& spec) {
  const struct {
    const char* name;
    double value;
  } rates[] = {
      {"timeout_rate", spec.timeout_rate},
      {"crash_rate", spec.crash_rate},
      {"nan_score_rate", spec.nan_score_rate},
      {"out_of_range_score_rate", spec.out_of_range_score_rate},
      {"drop_clip_rate", spec.drop_clip_rate},
      {"page_error_rate", spec.page_error_rate},
      {"checkpoint_corrupt_rate", spec.checkpoint_corrupt_rate},
      {"net_drop_rate", spec.net_drop_rate},
      {"net_dup_rate", spec.net_dup_rate},
      {"node_outage_rate", spec.node_outage_rate},
  };
  for (const auto& rate : rates) {
    // NaN fails both comparisons' complements, so write the check as
    // "not inside [0, 1]" to reject it too.
    if (!(rate.value >= 0.0 && rate.value <= 1.0)) {
      return Status::InvalidArgument(std::string("fault spec: ") + rate.name +
                                     " must lie in [0, 1]");
    }
  }
  if (spec.crash_len_units <= 0) {
    return Status::InvalidArgument(
        "fault spec: crash_len_units must be positive");
  }
  if (spec.node_outage_len_ms <= 0) {
    return Status::InvalidArgument(
        "fault spec: node_outage_len_ms must be positive");
  }
  for (size_t i = 0; i < spec.windows.size(); ++i) {
    const ScheduledWindow& w = spec.windows[i];
    if (!(w.from_ms >= 0.0) || !(w.to_ms >= w.from_ms)) {
      return Status::InvalidArgument(
          "fault spec: window " + std::to_string(i) +
          " must satisfy 0 <= from_ms <= to_ms");
    }
  }
  return Status::OK();
}

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "None";
    case FaultKind::kTimeout:
      return "Timeout";
    case FaultKind::kCrash:
      return "Crash";
    case FaultKind::kNanScore:
      return "NanScore";
    case FaultKind::kOutOfRangeScore:
      return "OutOfRangeScore";
  }
  return "Unknown";
}

FaultPlan::FaultPlan(FaultSpec spec, uint64_t seed)
    : spec_(std::move(spec)), seed_(seed) {
  VAQ_CHECK_GT(spec_.crash_len_units, 0);
}

StatusOr<FaultPlan> FaultPlan::Create(FaultSpec spec, uint64_t seed) {
  VAQ_RETURN_IF_ERROR(ValidateFaultSpec(spec));
  return FaultPlan(std::move(spec), seed);
}

bool FaultPlan::CrashActive(FaultDomain domain, int64_t unit) const {
  if (spec_.crash_rate <= 0.0) return false;
  const int64_t window = unit / spec_.crash_len_units;
  return UniformAt(seed_, kCrashSalt, static_cast<uint64_t>(domain),
                   static_cast<uint64_t>(window)) < spec_.crash_rate;
}

FaultKind FaultPlan::ProbeCall(FaultDomain domain, int64_t unit,
                               int64_t attempt) const {
  if (CrashActive(domain, unit)) return FaultKind::kCrash;
  const double u = UniformAt(
      seed_, kCallSalt, static_cast<uint64_t>(domain),
      static_cast<uint64_t>(unit) * 0x10001ULL + static_cast<uint64_t>(attempt));
  double bar = spec_.timeout_rate;
  if (u < bar) return FaultKind::kTimeout;
  bar += spec_.nan_score_rate;
  if (u < bar) return FaultKind::kNanScore;
  bar += spec_.out_of_range_score_rate;
  if (u < bar) return FaultKind::kOutOfRangeScore;
  return FaultKind::kNone;
}

bool FaultPlan::DropClip(int64_t clip) const {
  if (spec_.drop_clip_rate <= 0.0) return false;
  return UniformAt(seed_, kDropSalt, static_cast<uint64_t>(FaultDomain::kStream),
                   static_cast<uint64_t>(clip)) < spec_.drop_clip_rate;
}

bool FaultPlan::PageReadFails(int64_t page, int64_t attempt) const {
  if (spec_.page_error_rate <= 0.0) return false;
  return UniformAt(seed_, kPageSalt, static_cast<uint64_t>(page),
                   static_cast<uint64_t>(attempt)) < spec_.page_error_rate;
}

bool FaultPlan::CheckpointCorrupts(int64_t entry) const {
  if (spec_.checkpoint_corrupt_rate <= 0.0) return false;
  return UniformAt(seed_, kCkptSalt,
                   static_cast<uint64_t>(FaultDomain::kCheckpoint),
                   static_cast<uint64_t>(entry)) <
         spec_.checkpoint_corrupt_rate;
}

double FaultPlan::CheckpointCorruptPosition(int64_t entry) const {
  return UniformAt(seed_, kCkptSalt ^ 0x5a5a5a5a5a5a5a5aULL,
                   static_cast<uint64_t>(FaultDomain::kCheckpoint),
                   static_cast<uint64_t>(entry));
}

bool FaultPlan::NetDrops(int64_t link, int64_t seq, int64_t attempt) const {
  if (spec_.net_drop_rate <= 0.0) return false;
  return UniformAt(seed_, kNetDropSalt, static_cast<uint64_t>(link),
                   static_cast<uint64_t>(seq) * 0x10001ULL +
                       static_cast<uint64_t>(attempt)) < spec_.net_drop_rate;
}

bool FaultPlan::NetDuplicates(int64_t link, int64_t seq) const {
  if (spec_.net_dup_rate <= 0.0) return false;
  return UniformAt(seed_, kNetDupSalt, static_cast<uint64_t>(link),
                   static_cast<uint64_t>(seq)) < spec_.net_dup_rate;
}

bool FaultPlan::NodeDown(int64_t node, double at_ms) const {
  for (const ScheduledWindow& w : spec_.windows) {
    if (w.domain == FaultDomain::kNode && (w.key < 0 || w.key == node) &&
        at_ms >= w.from_ms && at_ms < w.to_ms) {
      return true;
    }
  }
  if (spec_.node_outage_rate <= 0.0) return false;
  VAQ_CHECK_GT(spec_.node_outage_len_ms, 0);
  const int64_t window = static_cast<int64_t>(at_ms) / spec_.node_outage_len_ms;
  return UniformAt(seed_, kNodeSalt, static_cast<uint64_t>(FaultDomain::kNode) *
                                         0x9e37ULL +
                                         static_cast<uint64_t>(node),
                   static_cast<uint64_t>(window)) < spec_.node_outage_rate;
}

bool FaultPlan::NetPartitioned(double at_ms) const {
  for (const ScheduledWindow& w : spec_.windows) {
    if (w.domain == FaultDomain::kNetwork && at_ms >= w.from_ms &&
        at_ms < w.to_ms) {
      return true;
    }
  }
  return false;
}

double FaultPlan::PartitionClearMs(double at_ms) const {
  double t = at_ms;
  bool moved = true;
  while (moved) {
    moved = false;
    for (const ScheduledWindow& w : spec_.windows) {
      if (w.domain == FaultDomain::kNetwork && t >= w.from_ms &&
          t < w.to_ms) {
        t = w.to_ms;
        moved = true;
      }
    }
  }
  return t;
}

}  // namespace fault
}  // namespace vaq
