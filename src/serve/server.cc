#include "serve/server.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <utility>

#include "common/logging.h"
#include "query/parser.h"

namespace vaq {
namespace serve {
namespace {

// The repo-wide disk cost model (bench/bench_util.h uses the same scale):
// a seek-like operation costs 5 ms, a sequentially streamed row 0.01 ms.
constexpr double kSeekMs = 5.0;
constexpr double kRowMs = 0.01;

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

}  // namespace

std::string ServeStats::ToString() const {
  std::string out = "{accepted=" + std::to_string(accepted) +
                    ", rejected_overflow=" + std::to_string(rejected_overflow) +
                    ", rejected_parse=" + std::to_string(rejected_parse) +
                    ", rejected_unknown_source=" +
                    std::to_string(rejected_unknown_source) +
                    ", completed=" + std::to_string(completed) +
                    ", failed=" + std::to_string(failed) +
                    ", cache_bundles_created=" +
                    std::to_string(cache_bundles_created) +
                    ", cache_bundle_reuses=" +
                    std::to_string(cache_bundle_reuses) +
                    ", total_simulated_ms=" + FormatMs(total_simulated_ms) +
                    "}";
  return out;
}

Server::Server(ServeOptions options) : options_(options) {
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  submitted_accepted_ = registry.GetCounter("vaq_serve_submitted_total",
                                            {{"outcome", "accepted"}});
  submitted_rejected_overflow_ = registry.GetCounter(
      "vaq_serve_submitted_total", {{"outcome", "rejected_overflow"}});
  submitted_rejected_parse_ = registry.GetCounter(
      "vaq_serve_submitted_total", {{"outcome", "rejected_parse"}});
  submitted_rejected_unknown_ = registry.GetCounter(
      "vaq_serve_submitted_total", {{"outcome", "rejected_unknown_source"}});
  queue_depth_ = registry.GetGauge("vaq_serve_queue_depth");
  cache_hits_bundle_ = registry.GetCounter("vaq_serve_cache_hits_total",
                                           {{"domain", "bundle"}});
  cache_misses_bundle_ = registry.GetCounter("vaq_serve_cache_misses_total",
                                             {{"domain", "bundle"}});
  cache_hits_inference_ = registry.GetCounter("vaq_serve_cache_hits_total",
                                              {{"domain", "inference"}});
  cache_misses_inference_ = registry.GetCounter("vaq_serve_cache_misses_total",
                                                {{"domain", "inference"}});
  query_ms_online_ =
      registry.GetHistogram("vaq_serve_query_simulated_ms",
                            obs::DefaultLatencyBucketsMs(),
                            {{"kind", "online"}});
  query_ms_ranked_ =
      registry.GetHistogram("vaq_serve_query_simulated_ms",
                            obs::DefaultLatencyBucketsMs(),
                            {{"kind", "ranked"}});
  if (options_.threads <= 0) {
    // Inline mode: Drain() runs queries on the calling thread with this
    // dedicated accumulator.
    worker_states_.push_back(std::make_unique<WorkerState>());
  }
}

Server::~Server() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void Server::RegisterStream(const std::string& name, synth::Scenario scenario,
                            uint64_t model_seed,
                            online::SvaqdOptions svaqd_options) {
  // The server-level plan covers streams that do not bring their own.
  if (svaqd_options.fault_plan == nullptr) {
    svaqd_options.fault_plan = options_.fault_plan;
  }
  streams_.insert_or_assign(
      name,
      StreamSource{std::move(scenario), model_seed, std::move(svaqd_options)});
}

void Server::RegisterRepository(const std::string& name,
                                storage::VideoIndex index) {
  repositories_.insert_or_assign(name, std::move(index));
}

StatusOr<int64_t> Server::Submit(const std::string& sql) {
  auto parsed = query::Parse(sql);
  if (!parsed.ok()) {
    submitted_rejected_parse_->Increment();
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected_parse;
    return parsed.status();
  }
  PendingQuery pending;
  pending.sql = sql;
  pending.stmt = std::move(parsed).value();
  pending.ranked = pending.stmt.ranked || pending.stmt.limit >= 0;
  pending.source = pending.stmt.video;
  pending.shard = (pending.ranked ? "repo/" : "stream/") + pending.source;
  const bool known = pending.ranked
                         ? repositories_.count(pending.source) > 0
                         : streams_.count(pending.source) > 0;
  if (!known) {
    submitted_rejected_unknown_->Increment();
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected_unknown_source;
    return Status::NotFound("no " +
                            std::string(pending.ranked ? "repository"
                                                       : "stream") +
                            " named '" + pending.source + "'");
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (pending_ >= options_.queue_capacity) {
    submitted_rejected_overflow_->Increment();
    ++stats_.rejected_overflow;
    return Status::Unavailable("submission queue full (" +
                               std::to_string(options_.queue_capacity) +
                               " pending)");
  }
  pending.id = next_id_++;
  const int64_t id = pending.id;
  shards_[pending.shard].queue.push_back(std::move(pending));
  ++pending_;
  queue_depth_->Set(static_cast<double>(pending_));
  submitted_accepted_->Increment();
  ++stats_.accepted;
  StartWorkersLocked();
  work_cv_.notify_one();
  return id;
}

void Server::StartWorkersLocked() {
  if (options_.threads <= 0 || !workers_.empty() || stopping_) return;
  // First admission starts the pool, so every registration happens-before
  // every worker read of streams_/repositories_.
  workers_.reserve(options_.threads);
  for (int i = 0; i < options_.threads; ++i) {
    worker_states_.push_back(std::make_unique<WorkerState>());
    WorkerState* state = worker_states_.back().get();
    workers_.emplace_back([this, state] { WorkerLoop(state); });
  }
}

bool Server::ClaimNextLocked(PendingQuery* out, Shard** shard) {
  for (auto& [name, s] : shards_) {
    if (s.busy || s.queue.empty()) continue;
    *out = std::move(s.queue.front());
    s.queue.pop_front();
    s.busy = true;
    *shard = &s;
    return true;
  }
  return false;
}

void Server::WorkerLoop(WorkerState* state) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    PendingQuery pending;
    Shard* shard = nullptr;
    if (ClaimNextLocked(&pending, &shard)) {
      lock.unlock();
      ServedQuery done = RunQuery(pending, state);
      lock.lock();
      shard->busy = false;
      --pending_;
      queue_depth_->Set(static_cast<double>(pending_));
      finished_.push_back(std::move(done));
      // The freed shard may have more queued work for an idle peer, and
      // Drain may be waiting for quiescence.
      work_cv_.notify_all();
      drain_cv_.notify_all();
      continue;
    }
    if (stopping_) return;
    work_cv_.wait(lock);
  }
}

ServedQuery Server::RunQuery(const PendingQuery& pending, WorkerState* state) {
  ServedQuery out;
  out.id = pending.id;
  out.sql = pending.sql;
  out.shard = pending.shard;
  out.kind = pending.ranked ? "ranked" : "online";
  if (pending.ranked) {
    const storage::VideoIndex& index = repositories_.at(pending.source);
    auto run =
        query::ExecuteRankedStatement(pending.stmt, index, scoring_,
                                      cnf_scoring_);
    if (!run.ok()) {
      out.status = run.status();
    } else {
      out.result = std::move(run).value();
      out.simulated_ms = out.result.accesses.ModeledMs(kSeekMs, kRowMs);
      state->accesses.Merge(out.result.accesses);
    }
    query_ms_ranked_->Observe(out.simulated_ms);
  } else {
    const StreamSource& source = streams_.at(pending.source);
    const std::string stack = query::StatementModelStack(pending.stmt.models);
    detect::ModelBundle local_models;
    detect::ModelBundle* models = nullptr;
    if (options_.share_detection_cache) {
      bool created = false;
      models = cache_.Acquire(
          pending.source, stack,
          [&] {
            return query::MakeStatementModels(pending.stmt.models,
                                              source.scenario.truth(),
                                              source.model_seed);
          },
          &created);
      (created ? cache_misses_bundle_ : cache_hits_bundle_)->Increment();
    } else {
      local_models = query::MakeStatementModels(
          pending.stmt.models, source.scenario.truth(), source.model_seed);
      models = &local_models;
    }
    auto run = query::ExecuteOnlineStatement(pending.stmt, source.scenario,
                                             source.options, models);
    if (!run.ok()) {
      out.status = run.status();
    } else {
      out.result = std::move(run).value();
      out.simulated_ms = out.result.detector_stats.simulated_ms +
                         out.result.recognizer_stats.simulated_ms;
      state->detector_stats.Merge(out.result.detector_stats);
      state->recognizer_stats.Merge(out.result.recognizer_stats);
      // Score lookups answered without a fresh network invocation —
      // within-query memoization plus, under the shared cache, reuse of
      // other queries' inferences on the same source.
      const int64_t lookups = out.result.detector_stats.type_queries +
                              out.result.recognizer_stats.type_queries;
      const int64_t fresh = out.result.detector_stats.inferences +
                            out.result.recognizer_stats.inferences;
      cache_misses_inference_->Increment(fresh);
      cache_hits_inference_->Increment(lookups - fresh);
    }
    query_ms_online_->Observe(out.simulated_ms);
  }
  obs::MetricRegistry::Global()
      .GetCounter("vaq_serve_queries_total",
                  {{"kind", out.kind},
                   {"outcome", out.status.ok() ? "ok" : "error"}})
      ->Increment();
  state->simulated_ms += out.simulated_ms;
  ++state->completed;
  if (!out.status.ok()) ++state->failed;
  return out;
}

void Server::MergeWorkerStatsLocked() {
  for (const std::unique_ptr<WorkerState>& state : worker_states_) {
    stats_.detector_stats.Merge(state->detector_stats);
    stats_.recognizer_stats.Merge(state->recognizer_stats);
    stats_.accesses.Merge(state->accesses);
    stats_.total_simulated_ms += state->simulated_ms;
    stats_.completed += state->completed;
    stats_.failed += state->failed;
    *state = WorkerState();  // Merged exactly once across Drains.
  }
  stats_.cache_bundles_created = cache_.bundles_created();
  stats_.cache_bundle_reuses = cache_.bundle_reuses();
}

std::vector<ServedQuery> Server::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  if (options_.threads <= 0) {
    WorkerState* state = worker_states_.front().get();
    PendingQuery pending;
    Shard* shard = nullptr;
    while (ClaimNextLocked(&pending, &shard)) {
      lock.unlock();
      ServedQuery done = RunQuery(pending, state);
      lock.lock();
      shard->busy = false;
      --pending_;
      queue_depth_->Set(static_cast<double>(pending_));
      finished_.push_back(std::move(done));
    }
  } else {
    drain_cv_.wait(lock, [this] { return pending_ == 0; });
  }
  MergeWorkerStatsLocked();
  std::vector<ServedQuery> out;
  out.swap(finished_);
  std::sort(out.begin(), out.end(),
            [](const ServedQuery& a, const ServedQuery& b) {
              return a.id < b.id;
            });
  return out;
}

ServeStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

double ModeledMakespanMs(const std::vector<ServedQuery>& queries,
                         int threads) {
  if (queries.empty()) return 0.0;
  // Rebuild the per-shard FIFO chains in admission order.
  std::vector<const ServedQuery*> ordered;
  ordered.reserve(queries.size());
  for (const ServedQuery& q : queries) ordered.push_back(&q);
  std::sort(ordered.begin(), ordered.end(),
            [](const ServedQuery* a, const ServedQuery* b) {
              return a->id < b->id;
            });
  std::map<std::string, std::deque<double>> chains;
  for (const ServedQuery* q : ordered) {
    chains[q->shard].push_back(q->simulated_ms);
  }
  if (threads < 1) threads = 1;
  std::vector<double> worker_free(static_cast<size_t>(threads), 0.0);
  std::map<std::string, double> shard_free;
  for (const auto& [name, chain] : chains) shard_free[name] = 0.0;
  size_t remaining = queries.size();
  double makespan = 0.0;
  while (remaining > 0) {
    // The worker that frees up first claims next (lowest index on ties).
    size_t w = 0;
    for (size_t i = 1; i < worker_free.size(); ++i) {
      if (worker_free[i] < worker_free[w]) w = i;
    }
    const double t = worker_free[w];
    std::deque<double>* chain = nullptr;
    double* free_at = nullptr;
    for (auto& [name, c] : chains) {
      if (c.empty() || shard_free[name] > t) continue;
      chain = &c;
      free_at = &shard_free[name];
      break;
    }
    if (chain == nullptr) {
      // Every runnable shard is still pinned to another worker: idle until
      // the earliest one frees.
      double next = std::numeric_limits<double>::infinity();
      for (const auto& [name, c] : chains) {
        if (!c.empty() && shard_free[name] < next) next = shard_free[name];
      }
      worker_free[w] = next;
      continue;
    }
    const double cost = chain->front();
    chain->pop_front();
    --remaining;
    const double end = t + cost;
    *free_at = end;
    worker_free[w] = end;
    if (end > makespan) makespan = end;
  }
  return makespan;
}

std::string DescribeServedQuery(const ServedQuery& q) {
  std::string out = "#" + std::to_string(q.id) + " [" + q.kind + "] " +
                    q.shard;
  if (!q.status.ok()) {
    return out + " ERROR " + q.status.ToString();
  }
  out += " simulated_ms=" + FormatMs(q.simulated_ms);
  out += " seq=" + q.result.sequences.ToString();
  if (q.result.online) {
    out += " det=" + q.result.detector_stats.ToString() +
           " rec=" + q.result.recognizer_stats.ToString();
    if (q.result.degraded_clips > 0 || q.result.dropped_clips > 0) {
      out += " degraded=" + std::to_string(q.result.degraded_clips) +
             " dropped=" + std::to_string(q.result.dropped_clips);
    }
  } else {
    out += " ranked=[";
    for (size_t i = 0; i < q.result.ranked.size(); ++i) {
      const offline::RankedSequence& seq = q.result.ranked[i];
      if (i > 0) out += ", ";
      char buf[64];
      std::snprintf(buf, sizeof(buf), " lb=%.6f ub=%.6f",
                    seq.lower_bound, seq.upper_bound);
      out += seq.clips.ToString() + buf;
    }
    out += "] accesses=" + q.result.accesses.ToString();
  }
  return out;
}

const std::vector<std::string>& LogicalMetricPrefixes() {
  // Thread-count-invariant families for a fixed seed and workload: event
  // counts and simulated milliseconds. Deliberately absent:
  // vaq_serve_queue_depth (scheduling-dependent gauge) and
  // vaq_serve_submitted_total (overflow rejections depend on how fast
  // workers drain relative to submitters).
  static const std::vector<std::string>* const prefixes =
      new std::vector<std::string>{
          "vaq_serve_queries_total",
          "vaq_serve_cache_",
          "vaq_serve_query_simulated_ms",
          "vaq_model_",
          "vaq_breaker_",
      };
  return *prefixes;
}

}  // namespace serve
}  // namespace vaq
