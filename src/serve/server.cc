#include "serve/server.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <utility>

#include "cascade/store.h"
#include "ckpt/metrics_io.h"
#include "common/logging.h"
#include "detect/model_profile.h"
#include "query/parser.h"
#include "video/cnf_query.h"
#include "video/query_spec.h"

namespace vaq {
namespace serve {
namespace {

// The repo-wide disk cost model (query/session.h; bench/bench_util.h uses
// the same scale): a seek-like operation costs 5 ms, a sequentially
// streamed row 0.01 ms.
constexpr double kSeekMs = query::kModeledSeekMs;
constexpr double kRowMs = query::kModeledRowMs;
// Modeled cost of writing one snapshot byte (sequential, row-rate scaled
// down to bytes); a snapshot charges one seek plus this per byte.
constexpr double kSnapshotByteMs = 1e-5;

// Snapshot blob record tags (ckpt::Serializer framing). Append-only
// within a format version; the record order in the blob is load-bearing
// for recovery — see CheckpointLocked.
enum SnapshotTag : uint32_t {
  kSnapStanding = 1,       // One standing query incl. its engine blob.
  kSnapStreamPos = 2,      // One stream's clip cursor.
  kSnapBundleStats = 3,    // One model bundle's cumulative stats.
  kSnapCacheCounters = 4,  // SharedDetectionCache reuse accounting.
  kSnapMeta = 5,           // next_id, seq, aggregate ServeStats.
  kSnapMetric = 6,         // One obs registry instrument.
};

// WAL record tags (bare ckpt record stream, no blob header).
enum WalTag : uint32_t {
  kWalAddQuery = 1,  // {id, sql} — logged before admission applies.
  kWalClip = 2,      // {source, clip} — logged before the advance.
};

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

// Per-advance stat delta over a (possibly shared) bundle's cumulative
// counters. Field-by-field subtraction keeps simulated_ms exact: the
// cumulative values on both sides are bit-identical across a recovery,
// so the differences are too.
detect::ModelStats StatsDelta(const detect::ModelStats& after,
                              const detect::ModelStats& before) {
  detect::ModelStats d;
  d.inferences = after.inferences - before.inferences;
  d.type_queries = after.type_queries - before.type_queries;
  d.simulated_ms = after.simulated_ms - before.simulated_ms;
  d.faults_injected = after.faults_injected - before.faults_injected;
  d.retries = after.retries - before.retries;
  d.failures = after.failures - before.failures;
  d.fallbacks = after.fallbacks - before.fallbacks;
  d.breaker_trips = after.breaker_trips - before.breaker_trips;
  return d;
}

void EncodeModelStats(const detect::ModelStats& s, ckpt::Payload* out) {
  out->PutI64(s.inferences);
  out->PutI64(s.type_queries);
  out->PutF64(s.simulated_ms);
  out->PutI64(s.faults_injected);
  out->PutI64(s.retries);
  out->PutI64(s.failures);
  out->PutI64(s.fallbacks);
  out->PutI64(s.breaker_trips);
}

Status DecodeModelStats(ckpt::PayloadReader* in, detect::ModelStats* s) {
  VAQ_RETURN_IF_ERROR(in->GetI64(&s->inferences));
  VAQ_RETURN_IF_ERROR(in->GetI64(&s->type_queries));
  VAQ_RETURN_IF_ERROR(in->GetF64(&s->simulated_ms));
  VAQ_RETURN_IF_ERROR(in->GetI64(&s->faults_injected));
  VAQ_RETURN_IF_ERROR(in->GetI64(&s->retries));
  VAQ_RETURN_IF_ERROR(in->GetI64(&s->failures));
  VAQ_RETURN_IF_ERROR(in->GetI64(&s->fallbacks));
  VAQ_RETURN_IF_ERROR(in->GetI64(&s->breaker_trips));
  return Status::OK();
}

void EncodeStatus(const Status& s, ckpt::Payload* out) {
  out->PutBool(s.ok());
  if (!s.ok()) {
    out->PutU32(static_cast<uint32_t>(s.code()));
    out->PutString(s.message());
  }
}

Status DecodeStatus(ckpt::PayloadReader* in, Status* out) {
  bool ok = false;
  VAQ_RETURN_IF_ERROR(in->GetBool(&ok));
  if (ok) {
    *out = Status::OK();
    return Status::OK();
  }
  uint32_t code = 0;
  std::string message;
  VAQ_RETURN_IF_ERROR(in->GetU32(&code));
  VAQ_RETURN_IF_ERROR(in->GetString(&message));
  *out = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

// Cumulative detector/recognizer stats of one bundle (the tracker is
// untouched by the online engines).
void EncodeBundleStats(const detect::ModelBundle& bundle,
                       ckpt::Payload* out) {
  out->PutBool(bundle.detector != nullptr);
  if (bundle.detector != nullptr) {
    EncodeModelStats(bundle.detector->stats(), out);
  }
  out->PutBool(bundle.recognizer != nullptr);
  if (bundle.recognizer != nullptr) {
    EncodeModelStats(bundle.recognizer->stats(), out);
  }
}

Status DecodeBundleStats(ckpt::PayloadReader* in,
                         detect::ModelBundle* bundle) {
  bool has_detector = false;
  VAQ_RETURN_IF_ERROR(in->GetBool(&has_detector));
  if (has_detector) {
    detect::ModelStats s;
    VAQ_RETURN_IF_ERROR(DecodeModelStats(in, &s));
    if (bundle->detector == nullptr) {
      return Status::Corruption("snapshot has detector stats for a bundle "
                                "rebuilt without a detector");
    }
    bundle->detector->mutable_stats() = s;
  }
  bool has_recognizer = false;
  VAQ_RETURN_IF_ERROR(in->GetBool(&has_recognizer));
  if (has_recognizer) {
    detect::ModelStats s;
    VAQ_RETURN_IF_ERROR(DecodeModelStats(in, &s));
    if (bundle->recognizer == nullptr) {
      return Status::Corruption("snapshot has recognizer stats for a bundle "
                                "rebuilt without a recognizer");
    }
    bundle->recognizer->mutable_stats() = s;
  }
  return Status::OK();
}

}  // namespace

std::string ServeStats::ToString() const {
  std::string out = "{accepted=" + std::to_string(accepted) +
                    ", rejected_overflow=" + std::to_string(rejected_overflow) +
                    ", rejected_tenant_quota=" +
                    std::to_string(rejected_tenant_quota) +
                    ", rejected_parse=" + std::to_string(rejected_parse) +
                    ", rejected_unknown_source=" +
                    std::to_string(rejected_unknown_source) +
                    ", completed=" + std::to_string(completed) +
                    ", failed=" + std::to_string(failed) +
                    ", cache_bundles_created=" +
                    std::to_string(cache_bundles_created) +
                    ", cache_bundle_reuses=" +
                    std::to_string(cache_bundle_reuses) +
                    ", total_simulated_ms=" + FormatMs(total_simulated_ms) +
                    "}";
  return out;
}

Server::Server(ServeOptions options) : options_(options) {
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  submitted_accepted_ = registry.GetCounter("vaq_serve_submitted_total",
                                            {{"outcome", "accepted"}});
  submitted_rejected_overflow_ = registry.GetCounter(
      "vaq_serve_submitted_total", {{"outcome", "rejected_overflow"}});
  submitted_rejected_parse_ = registry.GetCounter(
      "vaq_serve_submitted_total", {{"outcome", "rejected_parse"}});
  submitted_rejected_unknown_ = registry.GetCounter(
      "vaq_serve_submitted_total", {{"outcome", "rejected_unknown_source"}});
  queue_depth_ = registry.GetGauge("vaq_serve_queue_depth");
  cache_hits_bundle_ = registry.GetCounter("vaq_serve_cache_hits_total",
                                           {{"domain", "bundle"}});
  cache_misses_bundle_ = registry.GetCounter("vaq_serve_cache_misses_total",
                                             {{"domain", "bundle"}});
  cache_hits_inference_ = registry.GetCounter("vaq_serve_cache_hits_total",
                                              {{"domain", "inference"}});
  cache_misses_inference_ = registry.GetCounter("vaq_serve_cache_misses_total",
                                                {{"domain", "inference"}});
  query_ms_online_ =
      registry.GetHistogram("vaq_serve_query_simulated_ms",
                            obs::DefaultLatencyBucketsMs(),
                            {{"kind", "online"}});
  query_ms_ranked_ =
      registry.GetHistogram("vaq_serve_query_simulated_ms",
                            obs::DefaultLatencyBucketsMs(),
                            {{"kind", "ranked"}});
  ckpt_snapshots_ = registry.GetCounter("vaq_ckpt_snapshots_total");
  ckpt_snapshot_bytes_ = registry.GetCounter("vaq_ckpt_snapshot_bytes_total");
  ckpt_wal_records_ = registry.GetCounter("vaq_ckpt_wal_records_total");
  ckpt_snapshot_ms_ = registry.GetHistogram("vaq_ckpt_snapshot_modeled_ms",
                                            obs::DefaultLatencyBucketsMs());
  latency_ = std::make_unique<obs::LatencyRecorder>("vaq_query_latency_ms",
                                                    "serve");
  if (options_.trace_queries) {
    session_trace_ = std::make_unique<obs::QueryTrace>("session");
  }
  if (options_.threads <= 0) {
    // Inline mode: Drain() runs queries on the calling thread with this
    // dedicated accumulator.
    worker_states_.push_back(std::make_unique<WorkerState>());
  }
}

Server::~Server() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void Server::RegisterStream(const std::string& name, synth::Scenario scenario,
                            uint64_t model_seed,
                            online::SvaqdOptions svaqd_options) {
  // The server-level plan covers streams that do not bring their own.
  if (svaqd_options.fault_plan == nullptr) {
    svaqd_options.fault_plan = options_.fault_plan;
  }
  streams_.insert_or_assign(
      name,
      StreamSource{std::move(scenario), model_seed, std::move(svaqd_options)});
}

void Server::RegisterRepository(const std::string& name,
                                storage::VideoIndex index) {
  repositories_.insert_or_assign(name, std::move(index));
}

namespace {

Status DrainedError() {
  obs::MetricRegistry::Global()
      .GetCounter("vaq_serve_submitted_total",
                  {{"outcome", "rejected_terminated"}})
      ->Increment();
  return Status::FailedPrecondition(
      "server already drained; submissions are closed");
}

}  // namespace

StatusOr<int64_t> Server::Submit(const std::string& sql) {
  return Submit(sql, std::string());
}

StatusOr<int64_t> Server::Submit(const std::string& sql,
                                 const std::string& tenant) {
  {
    // Checked before parsing so that *every* post-Drain submission fails
    // the same way, not just well-formed ones.
    std::lock_guard<std::mutex> lock(mu_);
    if (drained_) return DrainedError();
  }
  auto parsed = query::Parse(sql);
  if (!parsed.ok()) {
    submitted_rejected_parse_->Increment();
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected_parse;
    return parsed.status();
  }
  PendingQuery pending;
  pending.sql = sql;
  pending.stmt = std::move(parsed).value();
  pending.ranked = pending.stmt.ranked || pending.stmt.limit >= 0;
  pending.source = pending.stmt.video;
  pending.shard = (pending.ranked ? "repo/" : "stream/") + pending.source;
  const bool known = pending.ranked
                         ? repositories_.count(pending.source) > 0
                         : streams_.count(pending.source) > 0;
  if (!known) {
    submitted_rejected_unknown_->Increment();
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected_unknown_source;
    return Status::NotFound("no " +
                            std::string(pending.ranked ? "repository"
                                                       : "stream") +
                            " named '" + pending.source + "'");
  }

  std::lock_guard<std::mutex> lock(mu_);
  // Re-checked under the admission lock: a Drain that began while this
  // statement was being parsed closes the door deterministically — the
  // query would otherwise sit in a queue no Drain will ever merge.
  if (drained_) return DrainedError();
  if (!tenant.empty()) {
    // The tenant quota is checked before the global bound so an abusive
    // tenant is shed at *its* limit, never by eating into the shared
    // capacity other tenants are admitted against.
    const auto quota = options_.tenant_quotas.find(tenant);
    if (quota != options_.tenant_quotas.end() &&
        tenant_pending_[tenant] >= quota->second) {
      obs::MetricRegistry::Global()
          .GetCounter("vaq_tenant_submitted_total",
                      {{"outcome", "shed"}, {"tenant", tenant}})
          ->Increment();
      ++stats_.rejected_tenant_quota;
      return Status::ResourceExhausted(
          "tenant '" + tenant + "' over quota (" +
          std::to_string(quota->second) + " pending)");
    }
  }
  if (pending_ >= options_.queue_capacity) {
    submitted_rejected_overflow_->Increment();
    ++stats_.rejected_overflow;
    return Status::Unavailable("submission queue full (" +
                               std::to_string(options_.queue_capacity) +
                               " pending)");
  }
  pending.tenant = tenant;
  if (!tenant.empty()) {
    ++tenant_pending_[tenant];
    std::unique_ptr<obs::LatencyRecorder>& recorder = tenant_latency_[tenant];
    if (recorder == nullptr) {
      recorder = std::make_unique<obs::LatencyRecorder>(
          "vaq_tenant_latency_ms", obs::Labels{{"tenant", tenant}});
    }
    pending.tenant_latency = recorder.get();
    obs::MetricRegistry::Global()
        .GetCounter("vaq_tenant_submitted_total",
                    {{"outcome", "accepted"}, {"tenant", tenant}})
        ->Increment();
  }
  pending.id = next_id_++;
  const int64_t id = pending.id;
  if (options_.trace_queries) {
    // The root span is minted here, on the submitting thread; the worker
    // that later claims the query parents its spans under it.
    pending.trace =
        std::make_shared<obs::QueryTrace>("q" + std::to_string(id));
  }
  shards_[pending.shard].queue.push_back(std::move(pending));
  ++pending_;
  queue_depth_->Set(static_cast<double>(pending_));
  submitted_accepted_->Increment();
  ++stats_.accepted;
  StartWorkersLocked();
  work_cv_.notify_one();
  return id;
}

void Server::StartWorkersLocked() {
  if (options_.threads <= 0 || !workers_.empty() || stopping_) return;
  // First admission starts the pool, so every registration happens-before
  // every worker read of streams_/repositories_.
  workers_.reserve(options_.threads);
  for (int i = 0; i < options_.threads; ++i) {
    worker_states_.push_back(std::make_unique<WorkerState>());
    WorkerState* state = worker_states_.back().get();
    workers_.emplace_back([this, state] { WorkerLoop(state); });
  }
}

bool Server::ClaimNextLocked(PendingQuery* out, Shard** shard) {
  for (auto& [name, s] : shards_) {
    if (s.busy || s.queue.empty()) continue;
    *out = std::move(s.queue.front());
    s.queue.pop_front();
    s.busy = true;
    *shard = &s;
    return true;
  }
  return false;
}

void Server::WorkerLoop(WorkerState* state) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    PendingQuery pending;
    Shard* shard = nullptr;
    if (ClaimNextLocked(&pending, &shard)) {
      lock.unlock();
      ServedQuery done = RunQuery(pending, state);
      lock.lock();
      shard->busy = false;
      --pending_;
      if (!done.tenant.empty()) --tenant_pending_[done.tenant];
      queue_depth_->Set(static_cast<double>(pending_));
      finished_.push_back(std::move(done));
      // The freed shard may have more queued work for an idle peer, and
      // Drain may be waiting for quiescence.
      work_cv_.notify_all();
      drain_cv_.notify_all();
      continue;
    }
    if (stopping_) return;
    work_cv_.wait(lock);
  }
}

ServedQuery Server::RunQuery(const PendingQuery& pending, WorkerState* state) {
  ServedQuery out;
  out.id = pending.id;
  out.sql = pending.sql;
  out.shard = pending.shard;
  out.kind = pending.ranked ? "ranked" : "online";
  out.tenant = pending.tenant;
  out.trace = pending.trace;
  // Cross-thread span parenting: the submitter minted the root; this
  // worker's "execute" span (and everything the engines hang below it)
  // parents under that root. Inactive (one branch) when tracing is off.
  obs::QueryContext root;
  if (pending.trace != nullptr) {
    root = obs::QueryContext{pending.trace.get(), 0};
  }
  const obs::QueryContext exec = root.Child("execute");
  obs::ScopedQueryContext scoped(exec);
  if (pending.ranked) {
    const storage::VideoIndex& index = repositories_.at(pending.source);
    auto run =
        query::ExecuteRankedStatement(pending.stmt, index, scoring_,
                                      cnf_scoring_, exec);
    if (!run.ok()) {
      out.status = run.status();
    } else {
      out.result = std::move(run).value();
      out.simulated_ms = out.result.accesses.ModeledMs(kSeekMs, kRowMs);
      state->accesses.Merge(out.result.accesses);
    }
    query_ms_ranked_->Observe(out.simulated_ms);
  } else {
    const StreamSource& source = streams_.at(pending.source);
    const std::string stack = query::StatementModelStack(pending.stmt.models);
    detect::ModelBundle local_models;
    detect::ModelBundle* models = nullptr;
    if (options_.share_detection_cache) {
      bool created = false;
      models = cache_.Acquire(
          pending.source, stack,
          [&] {
            return query::MakeStatementModels(pending.stmt.models,
                                              source.scenario.truth(),
                                              source.model_seed);
          },
          &created);
      (created ? cache_misses_bundle_ : cache_hits_bundle_)->Increment();
      exec.AddStat(created ? "cache_bundle_misses" : "cache_bundle_hits", 1);
    } else {
      local_models = query::MakeStatementModels(
          pending.stmt.models, source.scenario.truth(), source.model_seed);
      models = &local_models;
    }
    auto run = query::ExecuteOnlineStatement(pending.stmt, source.scenario,
                                             source.options, models, exec);
    if (!run.ok()) {
      out.status = run.status();
    } else {
      out.result = std::move(run).value();
      out.simulated_ms = out.result.detector_stats.simulated_ms +
                         out.result.recognizer_stats.simulated_ms;
      state->detector_stats.Merge(out.result.detector_stats);
      state->recognizer_stats.Merge(out.result.recognizer_stats);
      // Score lookups answered without a fresh network invocation —
      // within-query memoization plus, under the shared cache, reuse of
      // other queries' inferences on the same source.
      const int64_t lookups = out.result.detector_stats.type_queries +
                              out.result.recognizer_stats.type_queries;
      const int64_t fresh = out.result.detector_stats.inferences +
                            out.result.recognizer_stats.inferences;
      cache_misses_inference_->Increment(fresh);
      cache_hits_inference_->Increment(lookups - fresh);
      exec.AddStat("inference_cache_hits", lookups - fresh);
    }
    query_ms_online_->Observe(out.simulated_ms);
  }
  latency_->Record(out.simulated_ms);
  if (pending.tenant_latency != nullptr) {
    pending.tenant_latency->Record(out.simulated_ms);
  }
  if (!pending.tenant.empty()) {
    obs::MetricRegistry::Global()
        .GetCounter("vaq_tenant_queries_total",
                    {{"outcome", out.status.ok() ? "ok" : "error"},
                     {"tenant", pending.tenant}})
        ->Increment();
  }
  obs::MetricRegistry::Global()
      .GetCounter("vaq_serve_queries_total",
                  {{"kind", out.kind},
                   {"outcome", out.status.ok() ? "ok" : "error"}})
      ->Increment();
  state->simulated_ms += out.simulated_ms;
  ++state->completed;
  if (!out.status.ok()) ++state->failed;
  return out;
}

void Server::MergeWorkerStatsLocked() {
  for (const std::unique_ptr<WorkerState>& state : worker_states_) {
    stats_.detector_stats.Merge(state->detector_stats);
    stats_.recognizer_stats.Merge(state->recognizer_stats);
    stats_.accesses.Merge(state->accesses);
    stats_.total_simulated_ms += state->simulated_ms;
    stats_.completed += state->completed;
    stats_.failed += state->failed;
    *state = WorkerState();  // Merged exactly once across Drains.
  }
  stats_.cache_bundles_created = cache_.bundles_created();
  stats_.cache_bundle_reuses = cache_.bundle_reuses();
}

std::vector<ServedQuery> Server::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  // Terminal from this point on: Submit calls that have not been
  // admitted yet fail with kFailedPrecondition, so the admitted set —
  // and therefore the merged statistics — is exact when the wait below
  // finishes.
  drained_ = true;
  if (options_.threads <= 0) {
    WorkerState* state = worker_states_.front().get();
    PendingQuery pending;
    Shard* shard = nullptr;
    while (ClaimNextLocked(&pending, &shard)) {
      lock.unlock();
      ServedQuery done = RunQuery(pending, state);
      lock.lock();
      shard->busy = false;
      --pending_;
      if (!done.tenant.empty()) --tenant_pending_[done.tenant];
      queue_depth_->Set(static_cast<double>(pending_));
      finished_.push_back(std::move(done));
    }
  } else {
    drain_cv_.wait(lock, [this] { return pending_ == 0; });
  }
  MergeWorkerStatsLocked();
  std::vector<ServedQuery> out;
  out.swap(finished_);
  std::sort(out.begin(), out.end(),
            [](const ServedQuery& a, const ServedQuery& b) {
              return a.id < b.id;
            });
  return out;
}

ServeStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

StatusOr<int64_t> Server::AddStandingQuery(const std::string& sql) {
  std::lock_guard<std::mutex> lock(mu_);
  if (drained_ || standing_finished_) {
    return Status::FailedPrecondition("standing admission is closed");
  }
  auto parsed = query::Parse(sql);
  if (!parsed.ok()) {
    submitted_rejected_parse_->Increment();
    ++stats_.rejected_parse;
    return parsed.status();
  }
  query::QueryStatement stmt = std::move(parsed).value();
  if (stmt.ranked || stmt.limit >= 0) {
    submitted_rejected_parse_->Increment();
    ++stats_.rejected_parse;
    return Status::InvalidArgument(
        "standing queries are online; ranked statements go through Submit");
  }
  if (streams_.count(stmt.video) == 0) {
    submitted_rejected_unknown_->Increment();
    ++stats_.rejected_unknown_source;
    return Status::NotFound("no stream named '" + stmt.video + "'");
  }
  auto pos = stream_pos_.find(stmt.video);
  if (pos != stream_pos_.end() && pos->second > 0) {
    return Status::FailedPrecondition("stream '" + stmt.video +
                                      "' has already advanced");
  }
  const int64_t id = next_id_;
  if (options_.checkpoint_store != nullptr) {
    // Log-before-apply: a crash right after this append replays the
    // admission; a crash right before it loses a query that was never
    // acknowledged to the caller.
    ckpt::Payload wal;
    wal.PutI64(id);
    wal.PutString(sql);
    VAQ_RETURN_IF_ERROR(AppendWalLocked(kWalAddQuery, wal));
  }
  ++next_id_;
  VAQ_RETURN_IF_ERROR(AdmitStandingLocked(id, sql, std::move(stmt)));
  return id;
}

Status Server::AdmitStandingLocked(int64_t id, const std::string& sql,
                                   query::QueryStatement stmt) {
  auto owner = std::make_unique<StandingQuery>();
  StandingQuery& q = *owner;
  q.id = id;
  q.sql = sql;
  q.source = stmt.video;
  q.stack = query::StatementModelStack(stmt.models);
  if (options_.trace_queries) {
    q.trace = std::make_shared<obs::QueryTrace>("q" + std::to_string(id));
  }
  q.stmt = std::move(stmt);
  const StreamSource& source = streams_.at(q.source);
  if (options_.share_detection_cache) {
    bool created = false;
    q.models = cache_.Acquire(
        q.source, q.stack,
        [&] {
          return query::MakeStatementModels(q.stmt.models,
                                            source.scenario.truth(),
                                            source.model_seed);
        },
        &created);
    (created ? cache_misses_bundle_ : cache_hits_bundle_)->Increment();
  } else {
    q.owned_models = query::MakeStatementModels(
        q.stmt.models, source.scenario.truth(), source.model_seed);
    q.models = &q.owned_models;
  }
  if (q.stmt.IsConjunctive()) {
    auto spec = QuerySpec::FromNames(source.scenario.vocab(), q.stmt.action,
                                     q.stmt.objects);
    if (!spec.ok()) {
      q.status = spec.status();
      q.finished = true;
    } else {
      q.svaqd = std::make_unique<online::StreamingSvaqd>(
          std::move(spec).value(), source.scenario.layout(), source.options,
          online::StreamingSvaqd::Callback());
    }
  } else {
    auto cnf =
        CnfQuery::FromNames(source.scenario.vocab(), q.stmt.cnf_clauses);
    if (!cnf.ok()) {
      q.status = cnf.status();
      q.finished = true;
    } else {
      online::CnfEngineOptions cnf_options;
      cnf_options.svaqd = source.options;
      q.cnf = std::make_unique<online::CnfStream>(
          std::move(cnf).value(), source.scenario.layout(), cnf_options);
    }
  }
  if (q.stmt.recall_target < 1.0 && q.status.ok()) {
    VAQ_RETURN_IF_ERROR(PlanStandingCascadeLocked(&q, source));
  }
  stream_pos_.emplace(q.source, 0);
  standing_.push_back(std::move(owner));
  submitted_accepted_->Increment();
  ++stats_.accepted;
  return Status::OK();
}

Status Server::PlanStandingCascadeLocked(StandingQuery* q,
                                         const StreamSource& source) {
  cascade::CascadePlan plan;
  if (q->svaqd != nullptr) {
    cascade::ProxySet& set = proxies_[q->source];
    if (set.find(q->source) == set.end()) {
      // First approximate query on this stream: load the persisted proxy
      // index (or build it from the scenario and persist it). A stale or
      // damaged entry rebuilds — scores are a pure function of
      // (seed, concept, clip), so the result is the same either way.
      VAQ_ASSIGN_OR_RETURN(
          cascade::ProxyVideoIndex index,
          cascade::LoadOrBuildProxyIndex(
              options_.checkpoint_store, q->source, source.scenario,
              detect::ModelProfile::ProxyCnn(), source.model_seed));
      set.emplace(q->source, std::move(index));
    }
    cascade::Planner planner(&set);
    VAQ_ASSIGN_OR_RETURN(plan, planner.Plan(q->stmt.action, q->stmt.objects,
                                            q->stmt.recall_target));
  } else {
    // CNF statements are outside the planner's cost model: exact path.
    plan.recall_target = q->stmt.recall_target;
  }
  obs::MetricRegistry::Global()
      .GetCounter("vaq_cascade_plans_total",
                  {{"mode", plan.use_cascade ? "cascade" : "exact"}})
      ->Increment();
  q->cascade_plan = plan.ToString();
  if (plan.use_cascade) {
    cascade::PlanFilters filters(&proxies_[q->source], plan);
    const IntervalSet* surviving = filters.SurvivingClips(q->source);
    if (surviving != nullptr) {
      q->surviving = *surviving;
      q->cascade_active = true;
    }
  }
  return Status::OK();
}

Status Server::AdvanceStream(const std::string& source) {
  std::lock_guard<std::mutex> lock(mu_);
  return AdvanceStreamLocked(source);
}

Status Server::WalTornAdvance(const std::string& source) {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.checkpoint_store == nullptr) {
    return Status::FailedPrecondition(
        "torn advance needs a checkpoint store");
  }
  if (standing_finished_) {
    return Status::FailedPrecondition("standing queries already finished");
  }
  auto it = streams_.find(source);
  if (it == streams_.end()) {
    return Status::NotFound("no stream named '" + source + "'");
  }
  auto pos_it = stream_pos_.find(source);
  const int64_t pos = pos_it == stream_pos_.end() ? 0 : pos_it->second;
  const int64_t num_clips = it->second.scenario.layout().NumClips();
  if (pos >= num_clips) {
    return Status::OutOfRange("stream '" + source + "' is exhausted (" +
                              std::to_string(num_clips) + " clips)");
  }
  ckpt::Payload wal;
  wal.PutString(source);
  wal.PutI64(pos);
  return AppendWalLocked(kWalClip, wal);
}

Status Server::AdvanceStreamLocked(const std::string& source) {
  if (standing_finished_) {
    return Status::FailedPrecondition("standing queries already finished");
  }
  auto it = streams_.find(source);
  if (it == streams_.end()) {
    return Status::NotFound("no stream named '" + source + "'");
  }
  auto pos_it = stream_pos_.find(source);
  const int64_t pos = pos_it == stream_pos_.end() ? 0 : pos_it->second;
  const int64_t num_clips = it->second.scenario.layout().NumClips();
  if (pos >= num_clips) {
    return Status::OutOfRange("stream '" + source + "' is exhausted (" +
                              std::to_string(num_clips) + " clips)");
  }
  if (options_.checkpoint_store != nullptr && !replaying_) {
    // Log-before-apply, clip granularity: after a crash the replay
    // re-runs this advance on engines restored to exactly this position.
    ckpt::Payload wal;
    wal.PutString(source);
    wal.PutI64(pos);
    VAQ_RETURN_IF_ERROR(AppendWalLocked(kWalClip, wal));
  }
  double advance_ms = 0.0;
  for (const std::unique_ptr<StandingQuery>& owner : standing_) {
    StandingQuery& q = *owner;
    if (q.source != source || q.finished || !q.status.ok()) continue;
    const detect::ModelStats det_before =
        q.models->detector != nullptr ? q.models->detector->stats()
                                      : detect::ModelStats();
    const detect::ModelStats rec_before =
        q.models->recognizer != nullptr ? q.models->recognizer->stats()
                                        : detect::ModelStats();
    // Every clip of a standing query folds into its single "advance"
    // node; installing the context here routes the resilient wrappers'
    // per-outcome call counts onto it as well.
    obs::QueryContext adv;
    if (q.trace != nullptr) {
      adv = obs::QueryContext{q.trace.get(), 0}.Child("advance");
    }
    obs::ScopedQueryContext scoped(adv);
    // Cascade prefilter: a clip the proxy ruled out advances the engine
    // without any model call (per-query proxy-vs-expensive attribution
    // lands on the advance node as clips_pruned).
    const bool pruned = q.cascade_active && q.svaqd != nullptr &&
                        !q.surviving.Contains(pos);
    StatusOr<bool> indicator =
        pruned ? q.svaqd->PushPrunedClip()
        : q.svaqd != nullptr
            ? q.svaqd->PushClip(q.models->detector.get(),
                                q.models->recognizer.get())
            : q.cnf->PushClip(q.models->detector.get(),
                              q.models->recognizer.get());
    if (!indicator.ok()) {
      q.status = indicator.status();
      q.finished = true;
      continue;
    }
    const detect::ModelStats det_delta =
        q.models->detector != nullptr
            ? StatsDelta(q.models->detector->stats(), det_before)
            : detect::ModelStats();
    const detect::ModelStats rec_delta =
        q.models->recognizer != nullptr
            ? StatsDelta(q.models->recognizer->stats(), rec_before)
            : detect::ModelStats();
    q.det_acc += det_delta;
    q.rec_acc += rec_delta;
    advance_ms += det_delta.simulated_ms + rec_delta.simulated_ms;
    adv.AddMs(det_delta.simulated_ms + rec_delta.simulated_ms);
    adv.AddStat("clips", 1);
    adv.AddStat("detector_inferences", det_delta.inferences);
    adv.AddStat("recognizer_inferences", rec_delta.inferences);
    if (pruned) {
      ++q.clips_pruned;
      adv.AddStat("clips_pruned", 1);
      obs::MetricRegistry::Global()
          .GetCounter("vaq_cascade_standing_clips_pruned_total")
          ->Increment();
    }
  }
  stream_pos_[source] = pos + 1;
  ++clips_since_snapshot_;
  sim_ms_since_snapshot_ += advance_ms;
  if (options_.checkpoint_store != nullptr && !replaying_) {
    const bool clips_due =
        options_.snapshot_every_clips > 0 &&
        clips_since_snapshot_ >= options_.snapshot_every_clips;
    const bool ms_due = options_.snapshot_every_ms > 0 &&
                        sim_ms_since_snapshot_ >= options_.snapshot_every_ms;
    if (clips_due || ms_due) {
      VAQ_RETURN_IF_ERROR(CheckpointLocked());
    }
  }
  return Status::OK();
}

std::vector<ServedQuery> Server::FinishStanding() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ServedQuery> out;
  out.reserve(standing_.size());
  for (const std::unique_ptr<StandingQuery>& owner : standing_) {
    StandingQuery& q = *owner;
    if (!q.finished) {
      if (q.svaqd != nullptr) q.svaqd->Finish();
      if (q.cnf != nullptr) q.cnf->Finish();
      q.finished = true;
    }
    ServedQuery served;
    served.id = q.id;
    served.sql = q.sql;
    served.shard = "stream/" + q.source;
    served.kind = "online";
    served.status = q.status;
    served.trace = q.trace;
    if (q.status.ok()) {
      served.result.online = true;
      if (q.svaqd != nullptr) {
        served.result.sequences = q.svaqd->sequences();
        served.result.degraded_clips = q.svaqd->degraded_clips();
        served.result.dropped_clips = q.svaqd->dropped_clips();
      } else if (q.cnf != nullptr) {
        served.result.sequences = q.cnf->sequences();
      }
      served.result.detector_stats = q.det_acc;
      served.result.recognizer_stats = q.rec_acc;
      served.result.cascade_plan = q.cascade_plan;
      served.result.clips_pruned = q.clips_pruned;
      served.simulated_ms = q.det_acc.simulated_ms + q.rec_acc.simulated_ms;
      stats_.detector_stats.Merge(q.det_acc);
      stats_.recognizer_stats.Merge(q.rec_acc);
      const int64_t lookups = q.det_acc.type_queries + q.rec_acc.type_queries;
      const int64_t fresh = q.det_acc.inferences + q.rec_acc.inferences;
      cache_misses_inference_->Increment(fresh);
      cache_hits_inference_->Increment(lookups - fresh);
    }
    query_ms_online_->Observe(served.simulated_ms);
    latency_->Record(served.simulated_ms);
    obs::MetricRegistry::Global()
        .GetCounter("vaq_serve_queries_total",
                    {{"kind", "online"},
                     {"outcome", served.status.ok() ? "ok" : "error"}})
        ->Increment();
    stats_.total_simulated_ms += served.simulated_ms;
    ++stats_.completed;
    if (!served.status.ok()) ++stats_.failed;
    out.push_back(std::move(served));
  }
  stats_.cache_bundles_created = cache_.bundles_created();
  stats_.cache_bundle_reuses = cache_.bundle_reuses();
  standing_finished_ = true;
  return out;
}

int64_t Server::StreamPosition(const std::string& source) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stream_pos_.find(source);
  return it == stream_pos_.end() ? 0 : it->second;
}

Status Server::AppendWalLocked(uint32_t tag, const ckpt::Payload& payload) {
  std::string record;
  ckpt::AppendRecord(&record, tag, payload.data());
  // Segment wal-K collects the records logged while the next snapshot
  // will be snap-K; recovery from snap-S replays segments K > S.
  VAQ_RETURN_IF_ERROR(
      options_.checkpoint_store->Append(ckpt::WalName(ckpt_seq_), record));
  ckpt_wal_records_->Increment();
  if (session_trace_ != nullptr) {
    const obs::QueryContext wal =
        obs::QueryContext{session_trace_.get(), 0}.Child("wal_append");
    wal.AddStat("records", 1);
    wal.AddStat("bytes", static_cast<int64_t>(record.size()));
  }
  return Status::OK();
}

Status Server::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  return CheckpointLocked();
}

Status Server::CheckpointLocked() {
  ckpt::Store* store = options_.checkpoint_store;
  if (store == nullptr) {
    return Status::FailedPrecondition("no checkpoint store configured");
  }
  ckpt::Serializer snap;
  // Record order is load-bearing: recovery applies records in blob order,
  // and rebuilding the standing queries (kSnapStanding) bumps admission
  // counters and cache accounting as a side effect — the authoritative
  // values (kSnapCacheCounters, kSnapMeta, kSnapMetric) therefore come
  // *after* and overwrite them.
  for (const std::unique_ptr<StandingQuery>& owner : standing_) {
    const StandingQuery& q = *owner;
    ckpt::Payload p;
    p.PutI64(q.id);
    p.PutString(q.sql);
    EncodeStatus(q.status, &p);
    p.PutBool(q.finished);
    const uint32_t kind = q.svaqd != nullptr ? 1u : (q.cnf != nullptr ? 2u : 0u);
    p.PutU32(kind);
    std::string engine_blob;
    if (q.svaqd != nullptr) {
      engine_blob = q.svaqd->SnapshotState();
    } else if (q.cnf != nullptr) {
      engine_blob = q.cnf->SnapshotState();
    }
    p.PutString(engine_blob);
    EncodeModelStats(q.det_acc, &p);
    EncodeModelStats(q.rec_acc, &p);
    // Cascade pruning is an accumulator, not derivable from the engine
    // blob: the plan (thresholds, surviving set) is replanned
    // deterministically at admission, but clips pruned before this
    // snapshot would otherwise be forgotten by a recovered session.
    p.PutI64(q.clips_pruned);
    snap.Append(kSnapStanding, p);
  }
  for (const auto& [source, pos] : stream_pos_) {
    ckpt::Payload p;
    p.PutString(source);
    p.PutI64(pos);
    snap.Append(kSnapStreamPos, p);
  }
  if (options_.share_detection_cache) {
    cache_.ForEach([&snap](const std::string& source, const std::string& stack,
                           detect::ModelBundle* bundle) {
      ckpt::Payload p;
      p.PutBool(false);  // Shared: addressed by (source, stack).
      p.PutString(source);
      p.PutString(stack);
      EncodeBundleStats(*bundle, &p);
      snap.Append(kSnapBundleStats, p);
    });
  } else {
    for (const std::unique_ptr<StandingQuery>& owner : standing_) {
      const StandingQuery& q = *owner;
      if (q.models != &q.owned_models || q.models == nullptr) continue;
      ckpt::Payload p;
      p.PutBool(true);  // Owned: addressed by the query id.
      p.PutI64(q.id);
      EncodeBundleStats(q.owned_models, &p);
      snap.Append(kSnapBundleStats, p);
    }
  }
  {
    ckpt::Payload p;
    p.PutI64(cache_.bundles_created());
    p.PutI64(cache_.bundle_reuses());
    snap.Append(kSnapCacheCounters, p);
  }
  {
    ckpt::Payload p;
    p.PutI64(next_id_);
    p.PutI64(ckpt_seq_);
    p.PutI64(stats_.accepted);
    p.PutI64(stats_.rejected_overflow);
    p.PutI64(stats_.rejected_parse);
    p.PutI64(stats_.rejected_unknown_source);
    p.PutI64(stats_.completed);
    p.PutI64(stats_.failed);
    p.PutF64(stats_.total_simulated_ms);
    snap.Append(kSnapMeta, p);
  }
  // Every registry instrument except the checkpoint subsystem's own
  // families: restoring those would mask the corruption/recovery counts
  // the *recovering* process accumulates while reading this very blob.
  // Skipped entirely when the registry is shared beyond this server
  // (ServeOptions::snapshot_metrics == false).
  if (options_.snapshot_metrics) {
    const obs::Snapshot metrics = obs::MetricRegistry::Global().TakeSnapshot();
    for (const obs::Snapshot::Entry& entry : metrics.entries) {
      if (entry.name.rfind("vaq_ckpt_", 0) == 0) continue;
      ckpt::Payload p;
      ckpt::EncodeMetricEntry(entry, &p);
      snap.Append(kSnapMetric, p);
    }
  }
  const std::string& blob = snap.blob();
  VAQ_RETURN_IF_ERROR(store->Put(ckpt::SnapshotName(ckpt_seq_), blob));
  // Keep this snapshot, its predecessor (the corruption fallback) and
  // the WAL segment spanning the two — falling back to snap-(S-1) needs
  // wal-S to reach snap-S's state. Everything older goes.
  auto listed = store->List();
  if (listed.ok()) {
    for (const std::string& name : *listed) {
      auto snap_seq = ckpt::SnapshotSeq(name);
      if (snap_seq.ok() && *snap_seq < ckpt_seq_ - 1) {
        VAQ_RETURN_IF_ERROR(store->Delete(name));
        continue;
      }
      auto wal_seq = ckpt::WalSeq(name);
      if (wal_seq.ok() && *wal_seq < ckpt_seq_) {
        VAQ_RETURN_IF_ERROR(store->Delete(name));
      }
    }
  }
  ckpt_snapshots_->Increment();
  ckpt_snapshot_bytes_->Increment(static_cast<int64_t>(blob.size()));
  ckpt_snapshot_ms_->Observe(kSeekMs +
                             static_cast<double>(blob.size()) * kSnapshotByteMs);
  if (session_trace_ != nullptr) {
    const obs::QueryContext snap_ctx =
        obs::QueryContext{session_trace_.get(), 0}.Child("snapshot");
    snap_ctx.AddMs(kSeekMs + static_cast<double>(blob.size()) * kSnapshotByteMs);
    snap_ctx.AddStat("snapshots", 1);
    snap_ctx.AddStat("bytes", static_cast<int64_t>(blob.size()));
  }
  ++ckpt_seq_;
  clips_since_snapshot_ = 0;
  sim_ms_since_snapshot_ = 0.0;
  return Status::OK();
}

StatusOr<ckpt::RecoveryReport> Server::Recover() {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.checkpoint_store == nullptr) {
    return Status::FailedPrecondition("no checkpoint store configured");
  }
  if (next_id_ != 0 || !standing_.empty()) {
    return Status::FailedPrecondition(
        "Recover requires a freshly constructed server");
  }
  replaying_ = true;
  ckpt::RecoveryDriver driver(options_.checkpoint_store, options_.fault_plan);
  ckpt::RecoveryHooks hooks;
  hooks.restore = [this](uint32_t version,
                         const std::vector<ckpt::Record>& records) {
    return RestoreBlobLocked(version, records);
  };
  hooks.replay = [this](const ckpt::Record& record) {
    return ReplayWalLocked(record);
  };
  auto report = driver.Run(hooks);
  replaying_ = false;
  if (report.ok() && session_trace_ != nullptr) {
    const obs::QueryContext rec =
        obs::QueryContext{session_trace_.get(), 0}.Child("recover");
    rec.AddStat("recoveries", 1);
    rec.AddStat("snapshot_restored", report->snapshot.empty() ? 0 : 1);
    rec.AddStat("snapshots_rejected", report->snapshots_rejected);
    rec.AddStat("wal_records_replayed", report->wal_records);
    rec.AddStat("wal_bytes_dropped", report->wal_bytes_dropped);
  }
  return report;
}

Status Server::RestoreBlobLocked(uint32_t /*version*/,
                                 const std::vector<ckpt::Record>& records) {
  for (const ckpt::Record& record : records) {
    ckpt::PayloadReader in(record.payload);
    switch (record.tag) {
      case kSnapStanding: {
        int64_t id = 0;
        std::string sql;
        Status saved_status;
        bool finished = false;
        uint32_t kind = 0;
        std::string engine_blob;
        detect::ModelStats det_acc, rec_acc;
        int64_t clips_pruned = 0;
        VAQ_RETURN_IF_ERROR(in.GetI64(&id));
        VAQ_RETURN_IF_ERROR(in.GetString(&sql));
        VAQ_RETURN_IF_ERROR(DecodeStatus(&in, &saved_status));
        VAQ_RETURN_IF_ERROR(in.GetBool(&finished));
        VAQ_RETURN_IF_ERROR(in.GetU32(&kind));
        VAQ_RETURN_IF_ERROR(in.GetString(&engine_blob));
        VAQ_RETURN_IF_ERROR(DecodeModelStats(&in, &det_acc));
        VAQ_RETURN_IF_ERROR(DecodeModelStats(&in, &rec_acc));
        VAQ_RETURN_IF_ERROR(in.GetI64(&clips_pruned));
        auto parsed = query::Parse(sql);
        if (!parsed.ok()) {
          return Status::Corruption("unparsable standing query in snapshot: " +
                                    parsed.status().ToString());
        }
        VAQ_RETURN_IF_ERROR(
            AdmitStandingLocked(id, sql, std::move(parsed).value()));
        StandingQuery& q = *standing_.back();
        const uint32_t rebuilt =
            q.svaqd != nullptr ? 1u : (q.cnf != nullptr ? 2u : 0u);
        if (rebuilt != kind) {
          return Status::Corruption(
              "engine kind mismatch for standing query #" +
              std::to_string(id) +
              " (were the registrations changed since the snapshot?)");
        }
        if (q.svaqd != nullptr) {
          VAQ_RETURN_IF_ERROR(q.svaqd->RestoreState(engine_blob));
        } else if (q.cnf != nullptr) {
          VAQ_RETURN_IF_ERROR(q.cnf->RestoreState(engine_blob));
        }
        q.status = saved_status;
        q.finished = finished;
        q.det_acc = det_acc;
        q.rec_acc = rec_acc;
        q.clips_pruned = clips_pruned;
        next_id_ = std::max(next_id_, id + 1);
        break;
      }
      case kSnapStreamPos: {
        std::string source;
        int64_t pos = 0;
        VAQ_RETURN_IF_ERROR(in.GetString(&source));
        VAQ_RETURN_IF_ERROR(in.GetI64(&pos));
        stream_pos_[source] = pos;
        break;
      }
      case kSnapBundleStats: {
        bool owned = false;
        VAQ_RETURN_IF_ERROR(in.GetBool(&owned));
        detect::ModelBundle* bundle = nullptr;
        if (owned) {
          int64_t id = 0;
          VAQ_RETURN_IF_ERROR(in.GetI64(&id));
          for (const std::unique_ptr<StandingQuery>& q : standing_) {
            if (q->id == id && q->models == &q->owned_models) {
              bundle = &q->owned_models;
              break;
            }
          }
        } else {
          std::string source, stack;
          VAQ_RETURN_IF_ERROR(in.GetString(&source));
          VAQ_RETURN_IF_ERROR(in.GetString(&stack));
          bundle = cache_.Find(source, stack);
        }
        if (bundle == nullptr) {
          return Status::Corruption(
              "snapshot references a model bundle the rebuilt session "
              "does not have");
        }
        VAQ_RETURN_IF_ERROR(DecodeBundleStats(&in, bundle));
        break;
      }
      case kSnapCacheCounters: {
        int64_t created = 0, reuses = 0;
        VAQ_RETURN_IF_ERROR(in.GetI64(&created));
        VAQ_RETURN_IF_ERROR(in.GetI64(&reuses));
        cache_.RestoreCounters(created, reuses);
        break;
      }
      case kSnapMeta: {
        int64_t next_id = 0, seq = 0;
        VAQ_RETURN_IF_ERROR(in.GetI64(&next_id));
        VAQ_RETURN_IF_ERROR(in.GetI64(&seq));
        VAQ_RETURN_IF_ERROR(in.GetI64(&stats_.accepted));
        VAQ_RETURN_IF_ERROR(in.GetI64(&stats_.rejected_overflow));
        VAQ_RETURN_IF_ERROR(in.GetI64(&stats_.rejected_parse));
        VAQ_RETURN_IF_ERROR(in.GetI64(&stats_.rejected_unknown_source));
        VAQ_RETURN_IF_ERROR(in.GetI64(&stats_.completed));
        VAQ_RETURN_IF_ERROR(in.GetI64(&stats_.failed));
        VAQ_RETURN_IF_ERROR(in.GetF64(&stats_.total_simulated_ms));
        next_id_ = std::max(next_id_, next_id);
        ckpt_seq_ = seq + 1;
        break;
      }
      case kSnapMetric: {
        obs::Snapshot::Entry entry;
        VAQ_RETURN_IF_ERROR(ckpt::DecodeMetricEntry(&in, &entry));
        obs::Snapshot one;
        one.entries.push_back(std::move(entry));
        obs::RestoreSnapshot(one);
        break;
      }
      default:
        break;  // A newer writer's record type: skip (forward compat).
    }
  }
  return Status::OK();
}

Status Server::ReplayWalLocked(const ckpt::Record& record) {
  ckpt::PayloadReader in(record.payload);
  switch (record.tag) {
    case kWalAddQuery: {
      int64_t id = 0;
      std::string sql;
      VAQ_RETURN_IF_ERROR(in.GetI64(&id));
      VAQ_RETURN_IF_ERROR(in.GetString(&sql));
      for (const std::unique_ptr<StandingQuery>& q : standing_) {
        if (q->id == id) return Status::OK();  // Snapshot already has it.
      }
      if (id != next_id_) {
        return Status::Corruption("WAL admission out of order: got #" +
                                  std::to_string(id) + ", expected #" +
                                  std::to_string(next_id_));
      }
      auto parsed = query::Parse(sql);
      if (!parsed.ok()) {
        return Status::Corruption("unparsable standing query in WAL: " +
                                  parsed.status().ToString());
      }
      next_id_ = id + 1;
      return AdmitStandingLocked(id, sql, std::move(parsed).value());
    }
    case kWalClip: {
      std::string source;
      int64_t clip = 0;
      VAQ_RETURN_IF_ERROR(in.GetString(&source));
      VAQ_RETURN_IF_ERROR(in.GetI64(&clip));
      auto it = stream_pos_.find(source);
      const int64_t pos = it == stream_pos_.end() ? 0 : it->second;
      if (clip < pos) return Status::OK();  // Snapshot already covers it.
      if (clip > pos) {
        return Status::Corruption(
            "WAL gap on stream '" + source + "': log resumes at clip " +
            std::to_string(clip) + " but the snapshot ends at " +
            std::to_string(pos));
      }
      return AdvanceStreamLocked(source);
    }
    default:
      return Status::OK();  // A newer writer's record type: skip.
  }
}

double ModeledMakespanMs(const std::vector<ServedQuery>& queries,
                         int threads) {
  if (queries.empty()) return 0.0;
  // Rebuild the per-shard FIFO chains in admission order.
  std::vector<const ServedQuery*> ordered;
  ordered.reserve(queries.size());
  for (const ServedQuery& q : queries) ordered.push_back(&q);
  std::sort(ordered.begin(), ordered.end(),
            [](const ServedQuery* a, const ServedQuery* b) {
              return a->id < b->id;
            });
  std::map<std::string, std::deque<double>> chains;
  for (const ServedQuery* q : ordered) {
    chains[q->shard].push_back(q->simulated_ms);
  }
  if (threads < 1) threads = 1;
  std::vector<double> worker_free(static_cast<size_t>(threads), 0.0);
  std::map<std::string, double> shard_free;
  for (const auto& [name, chain] : chains) shard_free[name] = 0.0;
  size_t remaining = queries.size();
  double makespan = 0.0;
  while (remaining > 0) {
    // The worker that frees up first claims next (lowest index on ties).
    size_t w = 0;
    for (size_t i = 1; i < worker_free.size(); ++i) {
      if (worker_free[i] < worker_free[w]) w = i;
    }
    const double t = worker_free[w];
    std::deque<double>* chain = nullptr;
    double* free_at = nullptr;
    for (auto& [name, c] : chains) {
      if (c.empty() || shard_free[name] > t) continue;
      chain = &c;
      free_at = &shard_free[name];
      break;
    }
    if (chain == nullptr) {
      // Every runnable shard is still pinned to another worker: idle until
      // the earliest one frees.
      double next = std::numeric_limits<double>::infinity();
      for (const auto& [name, c] : chains) {
        if (!c.empty() && shard_free[name] < next) next = shard_free[name];
      }
      worker_free[w] = next;
      continue;
    }
    const double cost = chain->front();
    chain->pop_front();
    --remaining;
    const double end = t + cost;
    *free_at = end;
    worker_free[w] = end;
    if (end > makespan) makespan = end;
  }
  return makespan;
}

std::string DescribeServedQuery(const ServedQuery& q) {
  std::string out = "#" + std::to_string(q.id) + " [" + q.kind + "] " +
                    q.shard;
  // Tenant tag (tenant-tagged submissions only, so untagged output is
  // byte-identical to pre-tenant builds).
  if (!q.tenant.empty()) out += " tenant=" + q.tenant;
  if (!q.status.ok()) {
    return out + " ERROR " + q.status.ToString();
  }
  out += " simulated_ms=" + FormatMs(q.simulated_ms);
  out += " seq=" + q.result.sequences.ToString();
  if (q.result.online) {
    out += " det=" + q.result.detector_stats.ToString() +
           " rec=" + q.result.recognizer_stats.ToString();
    if (q.result.degraded_clips > 0 || q.result.dropped_clips > 0) {
      out += " degraded=" + std::to_string(q.result.degraded_clips) +
             " dropped=" + std::to_string(q.result.dropped_clips);
    }
    // Proxy-vs-expensive attribution; exact queries render unchanged.
    if (!q.result.cascade_plan.empty()) {
      out += " clips_pruned=" + std::to_string(q.result.clips_pruned) +
             " cascade=" + q.result.cascade_plan;
    }
  } else {
    out += " ranked=[";
    for (size_t i = 0; i < q.result.ranked.size(); ++i) {
      const offline::RankedSequence& seq = q.result.ranked[i];
      if (i > 0) out += ", ";
      char buf[64];
      std::snprintf(buf, sizeof(buf), " lb=%.6f ub=%.6f",
                    seq.lower_bound, seq.upper_bound);
      out += seq.clips.ToString() + buf;
    }
    out += "] accesses=" + q.result.accesses.ToString();
  }
  return out;
}

const std::vector<std::string>& LogicalMetricPrefixes() {
  // Thread-count-invariant families for a fixed seed and workload: event
  // counts and simulated milliseconds. Deliberately absent:
  // vaq_serve_queue_depth (scheduling-dependent gauge) and
  // vaq_serve_submitted_total (overflow rejections depend on how fast
  // workers drain relative to submitters).
  static const std::vector<std::string>* const prefixes =
      new std::vector<std::string>{
          "vaq_serve_queries_total",
          "vaq_serve_cache_",
          "vaq_serve_query_simulated_ms",
          "vaq_model_",
          "vaq_breaker_",
          // Pure function of the per-query sample multiset, which the
          // deterministic shard schedule fixes regardless of threads.
          "vaq_query_latency_ms",
          // Per-tenant completion counts and service-latency gauges are
          // logical for the same reasons as the two families above.
          // vaq_tenant_submitted_total is deliberately absent, like
          // vaq_serve_submitted_total: quota sheds depend on how fast
          // workers drain relative to submitters.
          "vaq_tenant_queries_total",
          "vaq_tenant_latency_ms",
      };
  return *prefixes;
}

}  // namespace serve
}  // namespace vaq
