// Concurrent multi-query serving runtime.
//
// The paper evaluates one query at a time; a deployment faces many
// standing queries over many feeds at once. `Server` turns the
// single-session executor (query::ExecuteOnlineStatement /
// ExecuteRankedStatement) into a small serving runtime:
//
//  * **Admission control.** `Submit` parses and resolves a statement and
//    either enqueues it or rejects it — kUnavailable when the bounded
//    submission queue is full (the caller's backpressure signal),
//    kInvalidArgument for unparsable SQL, kNotFound for an unregistered
//    source. Every outcome is counted
//    (vaq_serve_submitted_total{outcome=...}).
//
//  * **Per-stream sharding.** Each registered source owns a shard: a FIFO
//    of its admitted queries. A worker claims an idle shard, runs its
//    head query to completion, releases the shard and picks again, so
//    queries against one source execute serially in submission order
//    while distinct sources proceed in parallel. Because every engine is
//    a pure function of (seed, statement, source) and shard order is
//    fixed by submission, the merged results are *identical for any
//    worker count* — the determinism tests diff a 1-thread run against an
//    8-thread run byte for byte.
//
//  * **Shared detection cache.** With `share_detection_cache`, queries
//    acquire their model bundle from a SharedDetectionCache keyed by
//    (source, stack) instead of building a private one, so overlapping
//    queries on the same feed reuse memoized inferences (see
//    detection_cache.h). Per-query stats stay correct because the engines
//    report per-run deltas.
//
//  * **Merge-at-drain statistics.** Workers accumulate ModelStats /
//    AccessCounter into worker-local state only; `Drain` merges them
//    after the pool is quiescent. Nothing non-atomic is ever written
//    concurrently (the TSan tier-1 config runs these tests).
//
// Costs are modeled on the simulated timeline — online queries charge the
// engines' simulated inference milliseconds, ranked queries the modeled
// disk time of their table accesses — matching the repo-wide convention
// that performance claims are about modeled work, not this machine's
// wall clock. `ModeledMakespanMs` replays the shard schedule on a
// virtual-time list scheduler to price a worker-count deterministically
// (bench_serve's throughput-scaling curve).
#ifndef VAQ_SERVE_SERVER_H_
#define VAQ_SERVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "detect/models.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "offline/scoring.h"
#include "query/session.h"
#include "serve/detection_cache.h"
#include "storage/access_counter.h"
#include "storage/catalog.h"
#include "synth/scenario.h"

namespace vaq {
namespace serve {

struct ServeOptions {
  // Worker pool size. 0 runs every admitted query inline on the thread
  // that calls Drain() — the deterministic reference schedule.
  int threads = 4;
  // Maximum admitted-but-unfinished queries; Submit returns kUnavailable
  // beyond it.
  int queue_capacity = 64;
  // Share one ModelBundle per (source, stack) across queries.
  bool share_detection_cache = true;
  // Applied to every stream whose SvaqdOptions carry no plan of their
  // own. Not owned; must outlive the server.
  const fault::FaultPlan* fault_plan = nullptr;
};

// One admitted query's outcome.
struct ServedQuery {
  int64_t id = 0;       // Admission order, unique per server.
  std::string sql;      // Original statement text.
  std::string shard;    // "stream/<name>" or "repo/<name>".
  std::string kind;     // "online" or "ranked".
  Status status;        // Run-time failure, e.g. a name the vocab lacks.
  query::QueryResult result;  // Valid iff status.ok().
  // Modeled cost: simulated inference ms (online) or modeled disk ms
  // (ranked).
  double simulated_ms = 0;
};

// Aggregate accounting over a server's lifetime, merged at Drain.
struct ServeStats {
  int64_t accepted = 0;
  int64_t rejected_overflow = 0;
  int64_t rejected_parse = 0;
  int64_t rejected_unknown_source = 0;
  int64_t completed = 0;  // Ran to a result (possibly a non-OK status).
  int64_t failed = 0;     // Completed with a non-OK status.
  int64_t cache_bundles_created = 0;
  int64_t cache_bundle_reuses = 0;
  detect::ModelStats detector_stats;
  detect::ModelStats recognizer_stats;
  storage::AccessCounter accesses;
  double total_simulated_ms = 0;

  std::string ToString() const;
};

class Server {
 public:
  explicit Server(ServeOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Register sources before the first Submit; registration is not
  // synchronized against running workers.
  void RegisterStream(const std::string& name, synth::Scenario scenario,
                      uint64_t model_seed = 1,
                      online::SvaqdOptions svaqd_options = {});
  void RegisterRepository(const std::string& name, storage::VideoIndex index);

  // Parses, resolves and enqueues one statement; returns its id.
  // kUnavailable = queue full (retry later), kInvalidArgument = parse
  // error, kNotFound = unregistered source. Thread-safe; workers consume
  // concurrently.
  StatusOr<int64_t> Submit(const std::string& sql);

  // Blocks until every admitted query has finished, merges worker-local
  // statistics, and returns all results finished since the last Drain,
  // sorted by id.
  std::vector<ServedQuery> Drain();

  // Lifetime totals; call after Drain (worker-local stats merge there).
  ServeStats stats() const;

  const ServeOptions& options() const { return options_; }

 private:
  struct StreamSource {
    synth::Scenario scenario;
    uint64_t model_seed = 1;
    online::SvaqdOptions options;
  };
  struct PendingQuery {
    int64_t id = 0;
    std::string sql;
    query::QueryStatement stmt;
    bool ranked = false;
    std::string source;  // Registered name (sans shard prefix).
    std::string shard;
  };
  // FIFO of one source's admitted queries. `busy` pins the shard (and
  // with it the source's shared model bundle) to a single worker; the
  // queue mutex hand-off orders successive owners.
  struct Shard {
    std::deque<PendingQuery> queue;
    bool busy = false;
  };
  // Worker-local accumulators, merged into stats_ at Drain only.
  struct WorkerState {
    detect::ModelStats detector_stats;
    detect::ModelStats recognizer_stats;
    storage::AccessCounter accesses;
    double simulated_ms = 0;
    int64_t completed = 0;
    int64_t failed = 0;
  };

  void StartWorkersLocked();
  void WorkerLoop(WorkerState* state);
  // Claims the head of the first idle non-empty shard in name order.
  bool ClaimNextLocked(PendingQuery* out, Shard** shard);
  ServedQuery RunQuery(const PendingQuery& pending, WorkerState* state);
  void MergeWorkerStatsLocked();

  const ServeOptions options_;

  // Immutable after the first Submit.
  std::map<std::string, StreamSource> streams_;
  std::map<std::string, storage::VideoIndex> repositories_;
  const offline::PaperScoring scoring_;
  const offline::CnfScoring cnf_scoring_;

  SharedDetectionCache cache_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // Signals workers: work or stop.
  std::condition_variable drain_cv_;  // Signals Drain: a query finished.
  std::map<std::string, Shard> shards_;
  std::vector<ServedQuery> finished_;
  std::vector<std::unique_ptr<WorkerState>> worker_states_;
  std::vector<std::thread> workers_;
  ServeStats stats_;
  int64_t next_id_ = 0;
  int64_t pending_ = 0;  // Admitted, not yet finished.
  bool stopping_ = false;

  // Registry mirrors (resolved in the constructor).
  obs::Counter* submitted_accepted_;
  obs::Counter* submitted_rejected_overflow_;
  obs::Counter* submitted_rejected_parse_;
  obs::Counter* submitted_rejected_unknown_;
  obs::Gauge* queue_depth_;
  obs::Counter* cache_hits_bundle_;
  obs::Counter* cache_misses_bundle_;
  obs::Counter* cache_hits_inference_;
  obs::Counter* cache_misses_inference_;
  obs::Histogram* query_ms_online_;
  obs::Histogram* query_ms_ranked_;
};

// Virtual-time list-scheduling makespan (ms) of `queries` on `threads`
// workers under the server's shard discipline: per-shard FIFO in id
// order, a free worker claims the first available shard in name order.
// Deterministic — bench_serve prices thread counts with it instead of
// trusting this machine's scheduler.
double ModeledMakespanMs(const std::vector<ServedQuery>& queries,
                         int threads);

// Canonical text rendering of one result (id, kind, status, sequences,
// ranked scores, per-query stats). The determinism tests compare these
// strings across thread counts; vaqctl serve prints them.
std::string DescribeServedQuery(const ServedQuery& q);

// The metric-family prefixes whose values are logical (event counts,
// simulated ms) and therefore thread-count-invariant for a fixed seed —
// the FilterSnapshot allowlist used by the determinism tests.
const std::vector<std::string>& LogicalMetricPrefixes();

}  // namespace serve
}  // namespace vaq

#endif  // VAQ_SERVE_SERVER_H_
