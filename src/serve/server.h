// Concurrent multi-query serving runtime.
//
// The paper evaluates one query at a time; a deployment faces many
// standing queries over many feeds at once. `Server` turns the
// single-session executor (query::ExecuteOnlineStatement /
// ExecuteRankedStatement) into a small serving runtime:
//
//  * **Admission control.** `Submit` parses and resolves a statement and
//    either enqueues it or rejects it — kUnavailable when the bounded
//    submission queue is full (the caller's backpressure signal),
//    kInvalidArgument for unparsable SQL, kNotFound for an unregistered
//    source. Every outcome is counted
//    (vaq_serve_submitted_total{outcome=...}).
//
//  * **Multi-tenant quotas.** The tenant-tagged `Submit(sql, tenant)`
//    overload admits against a per-tenant pending quota
//    (ServeOptions::tenant_quotas) instead of only the global bound: a
//    tenant at its quota is shed with kResourceExhausted while every
//    other tenant's admissions proceed untouched — the isolation
//    contract the traffic front door (src/traffic/) builds on. Per-
//    tenant outcomes land in vaq_tenant_* metric families and each
//    tenant gets exact p50/p99/p999 service-latency gauges
//    (vaq_tenant_latency_ms{tenant=...}).
//
//  * **Per-stream sharding.** Each registered source owns a shard: a FIFO
//    of its admitted queries. A worker claims an idle shard, runs its
//    head query to completion, releases the shard and picks again, so
//    queries against one source execute serially in submission order
//    while distinct sources proceed in parallel. Because every engine is
//    a pure function of (seed, statement, source) and shard order is
//    fixed by submission, the merged results are *identical for any
//    worker count* — the determinism tests diff a 1-thread run against an
//    8-thread run byte for byte.
//
//  * **Shared detection cache.** With `share_detection_cache`, queries
//    acquire their model bundle from a SharedDetectionCache keyed by
//    (source, stack) instead of building a private one, so overlapping
//    queries on the same feed reuse memoized inferences (see
//    detection_cache.h). Per-query stats stay correct because the engines
//    report per-run deltas.
//
//  * **Merge-at-drain statistics.** Workers accumulate ModelStats /
//    AccessCounter into worker-local state only; `Drain` merges them
//    after the pool is quiescent. Nothing non-atomic is ever written
//    concurrently (the TSan tier-1 config runs these tests).
//
// Costs are modeled on the simulated timeline — online queries charge the
// engines' simulated inference milliseconds, ranked queries the modeled
// disk time of their table accesses — matching the repo-wide convention
// that performance claims are about modeled work, not this machine's
// wall clock. `ModeledMakespanMs` replays the shard schedule on a
// virtual-time list scheduler to price a worker-count deterministically
// (bench_serve's throughput-scaling curve).
//
// Besides the batch Submit/Drain path, the server offers a *standing-
// query* mode for long-lived monitoring: queries are admitted up front
// (AddStandingQuery) and then every registered stream is driven clip by
// clip (AdvanceStream), all standing queries over one source advancing in
// lockstep over its shared model bundle. This mode is durable: with a
// ckpt::Store configured, every admission and clip advance is logged to a
// WAL before it is applied, periodic snapshots capture the complete
// engine/cache/metric state, and Recover() rebuilds a crashed session
// byte-identically (DESIGN.md §10).
#ifndef VAQ_SERVE_SERVER_H_
#define VAQ_SERVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cascade/planner.h"
#include "ckpt/recovery.h"
#include "ckpt/serializer.h"
#include "ckpt/store.h"
#include "common/status.h"
#include "detect/models.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "obs/query_trace.h"
#include "offline/scoring.h"
#include "online/cnf_engine.h"
#include "online/streaming.h"
#include "query/session.h"
#include "serve/detection_cache.h"
#include "storage/access_counter.h"
#include "storage/catalog.h"
#include "synth/scenario.h"

namespace vaq {
namespace serve {

// Default snapshot cadence for durable standing-query sessions (vaqctl
// serve --checkpoint-dir without --snapshot-every; bench_ckpt's reference
// point for the ≤10% overhead budget).
inline constexpr int64_t kDefaultSnapshotEveryClips = 8;

struct ServeOptions {
  // Worker pool size. 0 runs every admitted query inline on the thread
  // that calls Drain() — the deterministic reference schedule.
  int threads = 4;
  // Maximum admitted-but-unfinished queries; Submit returns kUnavailable
  // beyond it.
  int queue_capacity = 64;
  // Per-tenant pending quotas for the tenant-tagged Submit overload: a
  // tenant listed here is shed with kResourceExhausted once it has this
  // many admitted-but-unfinished queries, before the global bound is
  // consulted for it. Tenants absent from the map (and untagged
  // submissions) see only queue_capacity. Empty = single-tenant legacy
  // behavior, bit-for-bit.
  std::map<std::string, int> tenant_quotas;
  // Share one ModelBundle per (source, stack) across queries.
  bool share_detection_cache = true;
  // Applied to every stream whose SvaqdOptions carry no plan of their
  // own. Not owned; must outlive the server.
  const fault::FaultPlan* fault_plan = nullptr;
  // Mint a per-query obs::QueryTrace at admission (root "q<id>", created
  // on the submitting thread) and thread it through execution: batch
  // queries fill ServedQuery::trace, standing queries accumulate across
  // advances, and the server keeps a "session" trace for WAL appends,
  // snapshots and recovery (session_trace()). The trees are a pure
  // function of (seed, workload) — byte-identical at any thread count.
  bool trace_queries = false;

  // --- Durability (standing-query mode; DESIGN.md §10) -------------------
  // Checkpoint store for standing queries. Null disables WAL and
  // snapshots. Not owned; must outlive the server.
  ckpt::Store* checkpoint_store = nullptr;
  // Automatic snapshot policy, evaluated after each AdvanceStream: a
  // snapshot is taken every N clips advanced (0 = off) or every M
  // simulated engine milliseconds (0 = off), whichever trips first.
  int64_t snapshot_every_clips = 0;
  double snapshot_every_ms = 0.0;
  // Embed the process-wide metric registry in snapshots (and restore it
  // on Recover). True for a single-server process, where the registry's
  // whole contents belong to this server. Cluster nodes set it false:
  // the registry is shared by every node in the simulated cluster, and
  // restoring one node's snapshot would clobber the others' live state.
  bool snapshot_metrics = true;
};

// One admitted query's outcome.
struct ServedQuery {
  int64_t id = 0;       // Admission order, unique per server.
  std::string sql;      // Original statement text.
  std::string shard;    // "stream/<name>" or "repo/<name>".
  std::string kind;     // "online" or "ranked".
  std::string tenant;   // Tenant tag; empty for untagged submissions.
  Status status;        // Run-time failure, e.g. a name the vocab lacks.
  query::QueryResult result;  // Valid iff status.ok().
  // Modeled cost: simulated inference ms (online) or modeled disk ms
  // (ranked).
  double simulated_ms = 0;
  // Per-query profile tree (ServeOptions::trace_queries); null otherwise.
  // Shared: the admitting thread mints it, one worker fills it, the
  // caller of Drain/FinishStanding reads it.
  std::shared_ptr<obs::QueryTrace> trace;
};

// Aggregate accounting over a server's lifetime, merged at Drain.
struct ServeStats {
  int64_t accepted = 0;
  int64_t rejected_overflow = 0;
  int64_t rejected_tenant_quota = 0;  // Shed with kResourceExhausted.
  int64_t rejected_parse = 0;
  int64_t rejected_unknown_source = 0;
  int64_t completed = 0;  // Ran to a result (possibly a non-OK status).
  int64_t failed = 0;     // Completed with a non-OK status.
  int64_t cache_bundles_created = 0;
  int64_t cache_bundle_reuses = 0;
  detect::ModelStats detector_stats;
  detect::ModelStats recognizer_stats;
  storage::AccessCounter accesses;
  double total_simulated_ms = 0;

  std::string ToString() const;
};

class Server {
 public:
  explicit Server(ServeOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Register sources before the first Submit; registration is not
  // synchronized against running workers.
  void RegisterStream(const std::string& name, synth::Scenario scenario,
                      uint64_t model_seed = 1,
                      online::SvaqdOptions svaqd_options = {});
  void RegisterRepository(const std::string& name, storage::VideoIndex index);

  // Parses, resolves and enqueues one statement; returns its id.
  // kUnavailable = queue full (retry later), kInvalidArgument = parse
  // error, kNotFound = unregistered source, kFailedPrecondition = the
  // server has already been drained (Drain is terminal). Thread-safe;
  // workers consume concurrently.
  StatusOr<int64_t> Submit(const std::string& sql);

  // Tenant-tagged admission: like Submit(sql), plus the per-tenant
  // quota check (kResourceExhausted when `tenant` is listed in
  // ServeOptions::tenant_quotas and already has that many pending
  // queries) and per-tenant accounting — vaq_tenant_submitted_total /
  // vaq_tenant_queries_total counters and exact p50/p99/p999 service
  // gauges (vaq_tenant_latency_ms{tenant=...}). An empty tenant is the
  // untagged path.
  StatusOr<int64_t> Submit(const std::string& sql, const std::string& tenant);

  // Blocks until every admitted query has finished, merges worker-local
  // statistics, and returns all results sorted by id. Terminal: from the
  // moment Drain begins, further Submit calls deterministically fail
  // with kFailedPrecondition (there is no later merge point that could
  // pick their results up).
  std::vector<ServedQuery> Drain();

  // --- Standing-query (clip-lockstep) mode -------------------------------
  // The admission thread owns this whole mode: none of the methods below
  // are synchronized against Submit workers, and the checkpoint store is
  // only ever touched from here.

  // Parses and admits one online statement as a standing query against a
  // registered stream; returns its id. Must be called before the
  // statement's source has advanced (kFailedPrecondition otherwise);
  // ranked statements are rejected as kInvalidArgument. Engine
  // construction failures (e.g. a name the vocabulary lacks) are still
  // admitted and surface through FinishStanding, mirroring Submit's
  // run-time-failure semantics.
  StatusOr<int64_t> AddStandingQuery(const std::string& sql);

  // Advances every standing query on `source` by one clip, in id order.
  // With a checkpoint store, the clip is WAL-logged *before* any engine
  // state changes, and a snapshot is taken afterwards when the configured
  // interval has elapsed. kOutOfRange past the scenario's clip count.
  Status AdvanceStream(const std::string& source);

  // Ends every standing query (closing open result sequences) and
  // returns their results in id order. Terminal for the standing mode.
  std::vector<ServedQuery> FinishStanding();

  // Takes a snapshot now (kFailedPrecondition without a checkpoint
  // store), truncates the WAL and keeps the predecessor snapshot as the
  // corruption fallback.
  Status Checkpoint();

  // Rebuilds the standing-query session from the newest valid snapshot
  // plus the WAL (ckpt::RecoveryDriver). Must run on a freshly
  // constructed server with the same registrations and options as the
  // crashed one; afterwards the session resumes exactly where it left
  // off — results and logical metrics are byte-identical to an
  // uninterrupted run.
  StatusOr<ckpt::RecoveryReport> Recover();

  // Chaos/test hook: performs ONLY the WAL append of the next advance of
  // `source` — the bytes a crash between log and apply would leave
  // behind — without touching engines, positions or the snapshot policy.
  // The in-memory session no longer matches its log afterwards, so the
  // server must be abandoned; Recover() on a fresh server replays the
  // logged advance, which is exactly the log-before-apply discipline
  // under test. Same preconditions as AdvanceStream, plus
  // kFailedPrecondition without a checkpoint store.
  Status WalTornAdvance(const std::string& source);

  // Clips advanced so far on `source` (0 when never advanced).
  int64_t StreamPosition(const std::string& source) const;

  // The server-lifetime trace (root "session") carrying WAL-append,
  // snapshot and recovery attribution. Null unless
  // ServeOptions::trace_queries. Read it only from the admission thread
  // while no worker is running (e.g. after Drain/FinishStanding).
  const obs::QueryTrace* session_trace() const { return session_trace_.get(); }

  // Lifetime totals; call after Drain (worker-local stats merge there).
  ServeStats stats() const;

  const ServeOptions& options() const { return options_; }

 private:
  struct StreamSource {
    synth::Scenario scenario;
    uint64_t model_seed = 1;
    online::SvaqdOptions options;
  };
  struct PendingQuery {
    int64_t id = 0;
    std::string sql;
    query::QueryStatement stmt;
    bool ranked = false;
    std::string source;  // Registered name (sans shard prefix).
    std::string shard;
    std::string tenant;  // Empty for untagged submissions.
    // The tenant's percentile recorder (stable pointer into
    // tenant_latency_), resolved at admission so RunQuery records
    // without taking mu_.
    obs::LatencyRecorder* tenant_latency = nullptr;
    // Minted under mu_ at admission (trace_queries); the claiming worker
    // parents its spans under the root the submitter created.
    std::shared_ptr<obs::QueryTrace> trace;
  };
  // FIFO of one source's admitted queries. `busy` pins the shard (and
  // with it the source's shared model bundle) to a single worker; the
  // queue mutex hand-off orders successive owners.
  struct Shard {
    std::deque<PendingQuery> queue;
    bool busy = false;
  };
  // Worker-local accumulators, merged into stats_ at Drain only.
  struct WorkerState {
    detect::ModelStats detector_stats;
    detect::ModelStats recognizer_stats;
    storage::AccessCounter accesses;
    double simulated_ms = 0;
    int64_t completed = 0;
    int64_t failed = 0;
  };
  // One admitted standing query and its incremental engine. Exactly one
  // of svaqd/cnf is set (neither when construction failed; see status).
  struct StandingQuery {
    int64_t id = 0;
    std::string sql;
    std::string source;  // Registered stream name.
    std::string stack;   // Model stack (shared-cache key).
    query::QueryStatement stmt;
    std::unique_ptr<online::StreamingSvaqd> svaqd;
    std::unique_ptr<online::CnfStream> cnf;
    detect::ModelBundle owned_models;  // Backing store when cache is off.
    detect::ModelBundle* models = nullptr;
    detect::ModelStats det_acc;  // This query's per-clip stat deltas,
    detect::ModelStats rec_acc;  // accumulated across advances.
    Status status;               // First construction/advance failure.
    bool finished = false;
    // Cascade prefilter (WITH RECALL < 1.0 on a conjunctive statement;
    // DESIGN.md §14): clips outside `surviving` are pushed through
    // StreamingSvaqd::PushPrunedClip — no model call is made for them.
    bool cascade_active = false;
    IntervalSet surviving;
    std::string cascade_plan;  // Rendered plan; exact fallback included.
    int64_t clips_pruned = 0;
    // Per-query trace (trace_queries): every advance folds into one
    // "advance" child node, so the tree stays bounded.
    std::shared_ptr<obs::QueryTrace> trace;
  };

  void StartWorkersLocked();
  void WorkerLoop(WorkerState* state);
  // Claims the head of the first idle non-empty shard in name order.
  bool ClaimNextLocked(PendingQuery* out, Shard** shard);
  ServedQuery RunQuery(const PendingQuery& pending, WorkerState* state);
  void MergeWorkerStatsLocked();

  // Standing-mode internals; callers hold mu_. Admit/Advance are shared
  // between the live path and WAL replay (replay skips WAL appends and
  // the snapshot policy via replaying_).
  Status AdmitStandingLocked(int64_t id, const std::string& sql,
                             query::QueryStatement stmt);
  // Plans the proxy cascade for a freshly admitted standing query whose
  // statement carries WITH RECALL < 1.0: loads (or builds and persists,
  // via the checkpoint store) the stream's proxy index, calibrates
  // thresholds, and fills the query's surviving-clip set. CNF statements
  // fall back to the exact path. Shared by live admission, snapshot
  // restore and WAL replay, so a recovered session prunes the exact same
  // clips the crashed one would have.
  Status PlanStandingCascadeLocked(StandingQuery* q,
                                   const StreamSource& source);
  Status AdvanceStreamLocked(const std::string& source);
  Status CheckpointLocked();
  Status AppendWalLocked(uint32_t tag, const ckpt::Payload& payload);
  Status RestoreBlobLocked(uint32_t version,
                           const std::vector<ckpt::Record>& records);
  Status ReplayWalLocked(const ckpt::Record& record);

  const ServeOptions options_;

  // Immutable after the first Submit.
  std::map<std::string, StreamSource> streams_;
  std::map<std::string, storage::VideoIndex> repositories_;
  const offline::PaperScoring scoring_;
  const offline::CnfScoring cnf_scoring_;

  SharedDetectionCache cache_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // Signals workers: work or stop.
  std::condition_variable drain_cv_;  // Signals Drain: a query finished.
  std::map<std::string, Shard> shards_;
  std::vector<ServedQuery> finished_;
  std::vector<std::unique_ptr<WorkerState>> worker_states_;
  std::vector<std::thread> workers_;
  ServeStats stats_;
  int64_t next_id_ = 0;
  int64_t pending_ = 0;  // Admitted, not yet finished.
  // Per-tenant admitted-but-unfinished counts (quota enforcement) and
  // exact-sample latency recorders (vaq_tenant_latency_ms{tenant=...}).
  // unique_ptr keeps recorder pointers stable across map growth.
  std::map<std::string, int64_t> tenant_pending_;
  std::map<std::string, std::unique_ptr<obs::LatencyRecorder>>
      tenant_latency_;
  bool stopping_ = false;
  bool drained_ = false;  // Drain began; submissions are closed.

  // Standing-query mode. unique_ptr keeps `models = &owned_models`
  // stable across vector growth.
  std::vector<std::unique_ptr<StandingQuery>> standing_;
  // Per-stream proxy indexes, loaded/built on the first approximate
  // standing query against the stream (each set holds that one stream's
  // index, keyed by its name — the planner's expected shape).
  std::map<std::string, cascade::ProxySet> proxies_;
  std::map<std::string, int64_t> stream_pos_;  // Clips advanced per source.
  int64_t ckpt_seq_ = 0;               // Next snapshot sequence number.
  int64_t clips_since_snapshot_ = 0;   // Snapshot-policy accumulators.
  double sim_ms_since_snapshot_ = 0.0;
  bool standing_finished_ = false;
  bool replaying_ = false;  // Inside Recover(): no WAL, no snapshots.

  // Registry mirrors (resolved in the constructor).
  obs::Counter* submitted_accepted_;
  obs::Counter* submitted_rejected_overflow_;
  obs::Counter* submitted_rejected_parse_;
  obs::Counter* submitted_rejected_unknown_;
  obs::Gauge* queue_depth_;
  obs::Counter* cache_hits_bundle_;
  obs::Counter* cache_misses_bundle_;
  obs::Counter* cache_hits_inference_;
  obs::Counter* cache_misses_inference_;
  obs::Histogram* query_ms_online_;
  obs::Histogram* query_ms_ranked_;
  obs::Counter* ckpt_snapshots_;
  obs::Counter* ckpt_snapshot_bytes_;
  obs::Counter* ckpt_wal_records_;
  obs::Histogram* ckpt_snapshot_ms_;

  // Exact-sample per-query modeled-latency percentiles
  // (vaq_query_latency_ms{path="serve"}); thread-safe.
  std::unique_ptr<obs::LatencyRecorder> latency_;
  // Root "session": WAL/snapshot/recovery attribution (trace_queries).
  std::unique_ptr<obs::QueryTrace> session_trace_;
};

// Virtual-time list-scheduling makespan (ms) of `queries` on `threads`
// workers under the server's shard discipline: per-shard FIFO in id
// order, a free worker claims the first available shard in name order.
// Deterministic — bench_serve prices thread counts with it instead of
// trusting this machine's scheduler.
double ModeledMakespanMs(const std::vector<ServedQuery>& queries,
                         int threads);

// Canonical text rendering of one result (id, kind, status, sequences,
// ranked scores, per-query stats). The determinism tests compare these
// strings across thread counts; vaqctl serve prints them.
std::string DescribeServedQuery(const ServedQuery& q);

// The metric-family prefixes whose values are logical (event counts,
// simulated ms) and therefore thread-count-invariant for a fixed seed —
// the FilterSnapshot allowlist used by the determinism tests.
const std::vector<std::string>& LogicalMetricPrefixes();

}  // namespace serve
}  // namespace vaq

#endif  // VAQ_SERVE_SERVER_H_
