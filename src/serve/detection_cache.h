// Shared detection cache for the concurrent serving runtime.
//
// Several standing queries routinely watch the *same* stream: an operator
// dashboard asks for "running AND dog" while an alerting rule asks for
// "running AND car" over the identical camera feed. Running each query
// with a private detect::ModelBundle would re-run the detector over every
// frame once per query. `SharedDetectionCache` instead keeps one bundle
// per (source, model stack): the models' internal per-unit memo tables
// (a detector never re-infers a frame it has already seen, a recognizer
// never re-infers a shot) then deduplicate inference *across queries*, so
// the second query over a stream pays only score lookups, not fresh
// network invocations.
//
// Concurrency contract: the cache's own map is mutex-guarded, so bundles
// may be acquired from any worker thread. The *bundles* themselves are
// not thread-safe — the serving runtime guarantees that at most one
// worker runs queries against a given source at a time (per-stream
// sharding, src/serve/server.h), which also pins every bundle to one
// thread at a time with mutex hand-off in between. Do not use a bundle
// returned by Acquire() outside such a serialization regime.
#ifndef VAQ_SERVE_DETECTION_CACHE_H_
#define VAQ_SERVE_DETECTION_CACHE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "detect/models.h"

namespace vaq {
namespace serve {

class SharedDetectionCache {
 public:
  using Factory = std::function<detect::ModelBundle()>;

  // Returns the bundle for (source, stack), building it with `factory` on
  // first use. The pointer is stable until Clear() or destruction.
  // `created` (optional) reports whether this call built the bundle.
  detect::ModelBundle* Acquire(const std::string& source,
                               const std::string& stack,
                               const Factory& factory,
                               bool* created = nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = bundles_.try_emplace(std::make_pair(source, stack));
    if (inserted) {
      it->second = std::make_unique<detect::ModelBundle>(factory());
      ++bundles_created_;
    } else {
      ++bundle_reuses_;
    }
    if (created != nullptr) *created = inserted;
    return it->second.get();
  }

  int64_t bundles_created() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bundles_created_;
  }
  int64_t bundle_reuses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bundle_reuses_;
  }

  // The bundle for (source, stack) if one is cached, else nullptr. No
  // reuse accounting — checkpointing uses this to address bundles without
  // perturbing the counters it is about to persist or restore.
  detect::ModelBundle* Find(const std::string& source,
                            const std::string& stack) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = bundles_.find(std::make_pair(source, stack));
    return it == bundles_.end() ? nullptr : it->second.get();
  }

  // Visits every cached bundle in key order under the cache lock (the
  // visitor must not call back into the cache). Snapshots iterate this
  // to persist the bundles' cumulative model stats.
  void ForEach(const std::function<void(const std::string& source,
                                        const std::string& stack,
                                        detect::ModelBundle* bundle)>& fn) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [key, bundle] : bundles_) {
      fn(key.first, key.second, bundle.get());
    }
  }

  // Checkpoint recovery: overwrites the reuse accounting with the values
  // persisted at snapshot time (the recovered process re-acquires its
  // bundles, which would otherwise double-count creations).
  void RestoreCounters(int64_t created, int64_t reuses) {
    std::lock_guard<std::mutex> lock(mu_);
    bundles_created_ = created;
    bundle_reuses_ = reuses;
  }

  // Drops every cached bundle (and its memoized inferences).
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    bundles_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::pair<std::string, std::string>,
           std::unique_ptr<detect::ModelBundle>>
      bundles_;
  int64_t bundles_created_ = 0;
  int64_t bundle_reuses_ = 0;
};

}  // namespace serve
}  // namespace vaq

#endif  // VAQ_SERVE_DETECTION_CACHE_H_
