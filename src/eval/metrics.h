// Evaluation metrics (§5.1 of the paper).
//
//  * Sequence-level F1: a result sequence matches a ground-truth sequence
//    when their IoU (at clip granularity) reaches the threshold η (0.5 in
//    the paper). Matched results are true positives; unmatched results are
//    false positives; unmatched truth sequences are false negatives.
//  * Frame-level F1: precision/recall over the individual frames covered
//    by results vs truth (Figure 5's clip-size-independent metric).
//  * False-positive rate: the fraction of occurrence units outside the
//    truth that carry a positive prediction — computed for raw model
//    outputs ("w/o SVAQD") and for the occurrence units inside result
//    sequences ("w/ SVAQD"), reproducing Table 5.
#ifndef VAQ_EVAL_METRICS_H_
#define VAQ_EVAL_METRICS_H_

#include <cstdint>
#include <string>

#include "common/interval.h"
#include "detect/models.h"
#include "synth/ground_truth.h"
#include "video/layout.h"
#include "video/query_spec.h"

namespace vaq {
namespace eval {

// Precision / recall / F1 with the underlying match counts.
struct F1Result {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  int64_t true_positives = 0;
  int64_t false_positives = 0;
  int64_t false_negatives = 0;

  std::string ToString() const;
};

// Builds an F1Result from counts (handles the zero denominators).
F1Result F1FromCounts(int64_t tp, int64_t fp, int64_t fn);

// Sequence-level F1 at IoU threshold `eta` (the paper's η = 0.5): each
// result interval is a TP iff some truth interval has IoU >= eta with it;
// each truth interval missing such a match is a FN.
F1Result SequenceF1(const IntervalSet& results, const IntervalSet& truth,
                    double eta = 0.5);

// Frame-level F1: results and truth are clip-level interval sets; both are
// expanded to frames under `layout` and compared frame by frame.
F1Result FrameLevelF1(const IntervalSet& result_clips,
                      const IntervalSet& truth_clips,
                      const VideoLayout& layout);

// Frame-level F1 where truth is already at frame granularity.
F1Result FrameLevelF1Frames(const IntervalSet& result_clips,
                            const IntervalSet& truth_frames,
                            const VideoLayout& layout);

// Raw per-frame false-positive rate of the object detector for `type`:
// the fraction of frames outside the type's truth where the detector
// fires. Runs the detector over every frame of the video.
double RawObjectFpr(const synth::GroundTruth& truth,
                    const detect::ObjectDetector& detector,
                    ObjectTypeId type);

// Raw per-shot false-positive rate of the action recognizer for `type`.
double RawActionFpr(const synth::GroundTruth& truth,
                    const detect::ActionRecognizer& recognizer,
                    ActionTypeId type);

// Surviving false-positive rate: the fraction of truth-negative frames on
// which the *raw detector fired* AND which the result sequences still
// cover — i.e. how much of the model's noise survived SVAQD's statistical
// filtering (Table 5's "w/ SVAQD" column measures exactly this noise
// elimination).
double SurvivingObjectFpr(const synth::GroundTruth& truth,
                          const detect::ObjectDetector& detector,
                          ObjectTypeId type, const IntervalSet& result_clips);

// Shot-granularity counterpart for the action recognizer.
double SurvivingActionFpr(const synth::GroundTruth& truth,
                          const detect::ActionRecognizer& recognizer,
                          ActionTypeId type, const IntervalSet& result_clips);

// Result-level false-positive rate at frame granularity: the fraction of
// non-truth frames that the result sequences cover. `truth_frames` is the
// frame-level truth of the relevant predicate (or of the whole query).
double ResultFpr(const IntervalSet& result_clips,
                 const IntervalSet& truth_frames, const VideoLayout& layout);

}  // namespace eval
}  // namespace vaq

#endif  // VAQ_EVAL_METRICS_H_
