#include "eval/metrics.h"

#include <sstream>

namespace vaq {
namespace eval {

std::string F1Result::ToString() const {
  std::ostringstream os;
  os << "F1{p=" << precision << ", r=" << recall << ", f1=" << f1
     << ", tp=" << true_positives << ", fp=" << false_positives
     << ", fn=" << false_negatives << "}";
  return os.str();
}

F1Result F1FromCounts(int64_t tp, int64_t fp, int64_t fn) {
  F1Result out;
  out.true_positives = tp;
  out.false_positives = fp;
  out.false_negatives = fn;
  out.precision =
      tp + fp > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fp)
                  : (fn == 0 ? 1.0 : 0.0);
  out.recall =
      tp + fn > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fn)
                  : (fp == 0 ? 1.0 : 0.0);
  out.f1 = out.precision + out.recall > 0
               ? 2.0 * out.precision * out.recall /
                     (out.precision + out.recall)
               : 0.0;
  return out;
}

F1Result SequenceF1(const IntervalSet& results, const IntervalSet& truth,
                    double eta) {
  int64_t tp = 0;
  int64_t fp = 0;
  for (const Interval& result : results.intervals()) {
    bool matched = false;
    for (const Interval& gt : truth.intervals()) {
      if (IntervalIoU(result, gt) >= eta) {
        matched = true;
        break;
      }
    }
    matched ? ++tp : ++fp;
  }
  int64_t fn = 0;
  for (const Interval& gt : truth.intervals()) {
    bool matched = false;
    for (const Interval& result : results.intervals()) {
      if (IntervalIoU(result, gt) >= eta) {
        matched = true;
        break;
      }
    }
    if (!matched) ++fn;
  }
  return F1FromCounts(tp, fp, fn);
}

F1Result FrameLevelF1(const IntervalSet& result_clips,
                      const IntervalSet& truth_clips,
                      const VideoLayout& layout) {
  return FrameLevelF1Frames(result_clips, layout.ClipsToFrames(truth_clips),
                            layout);
}

F1Result FrameLevelF1Frames(const IntervalSet& result_clips,
                            const IntervalSet& truth_frames,
                            const VideoLayout& layout) {
  const IntervalSet result_frames = layout.ClipsToFrames(result_clips);
  const int64_t tp = result_frames.Intersect(truth_frames).TotalLength();
  const int64_t fp = result_frames.TotalLength() - tp;
  const int64_t fn = truth_frames.TotalLength() - tp;
  return F1FromCounts(tp, fp, fn);
}

double RawObjectFpr(const synth::GroundTruth& truth,
                    const detect::ObjectDetector& detector,
                    ObjectTypeId type) {
  const IntervalSet& present = truth.ObjectFrames(type);
  int64_t negatives = 0;
  int64_t false_positives = 0;
  for (FrameIndex v = 0; v < truth.layout().num_frames(); ++v) {
    if (present.Contains(v)) continue;
    ++negatives;
    if (detector.IsPositive(type, v)) ++false_positives;
  }
  return negatives > 0 ? static_cast<double>(false_positives) /
                             static_cast<double>(negatives)
                       : 0.0;
}

double RawActionFpr(const synth::GroundTruth& truth,
                    const detect::ActionRecognizer& recognizer,
                    ActionTypeId type) {
  const IntervalSet shots = truth.ActionShots(type);
  int64_t negatives = 0;
  int64_t false_positives = 0;
  for (ShotIndex s = 0; s < truth.layout().NumShots(); ++s) {
    if (shots.Contains(s)) continue;
    ++negatives;
    if (recognizer.IsPositive(type, s)) ++false_positives;
  }
  return negatives > 0 ? static_cast<double>(false_positives) /
                             static_cast<double>(negatives)
                       : 0.0;
}

double SurvivingObjectFpr(const synth::GroundTruth& truth,
                          const detect::ObjectDetector& detector,
                          ObjectTypeId type,
                          const IntervalSet& result_clips) {
  const IntervalSet& present = truth.ObjectFrames(type);
  const IntervalSet result_frames =
      truth.layout().ClipsToFrames(result_clips);
  int64_t negatives = 0;
  int64_t surviving = 0;
  for (FrameIndex v = 0; v < truth.layout().num_frames(); ++v) {
    if (present.Contains(v)) continue;
    ++negatives;
    if (detector.IsPositive(type, v) && result_frames.Contains(v)) {
      ++surviving;
    }
  }
  return negatives > 0 ? static_cast<double>(surviving) /
                             static_cast<double>(negatives)
                       : 0.0;
}

double SurvivingActionFpr(const synth::GroundTruth& truth,
                          const detect::ActionRecognizer& recognizer,
                          ActionTypeId type,
                          const IntervalSet& result_clips) {
  const IntervalSet shots = truth.ActionShots(type);
  int64_t negatives = 0;
  int64_t surviving = 0;
  for (ShotIndex s = 0; s < truth.layout().NumShots(); ++s) {
    if (shots.Contains(s)) continue;
    ++negatives;
    if (!recognizer.IsPositive(type, s)) continue;
    const ClipIndex clip = truth.layout().ShotToClip(s);
    if (result_clips.Contains(clip)) ++surviving;
  }
  return negatives > 0 ? static_cast<double>(surviving) /
                             static_cast<double>(negatives)
                       : 0.0;
}

double ResultFpr(const IntervalSet& result_clips,
                 const IntervalSet& truth_frames, const VideoLayout& layout) {
  const IntervalSet result_frames = layout.ClipsToFrames(result_clips);
  const int64_t negatives = layout.num_frames() - truth_frames.TotalLength();
  const int64_t covered_negatives =
      result_frames.TotalLength() -
      result_frames.Intersect(truth_frames).TotalLength();
  return negatives > 0 ? static_cast<double>(covered_negatives) /
                             static_cast<double>(negatives)
                       : 0.0;
}

}  // namespace eval
}  // namespace vaq
