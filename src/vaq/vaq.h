// Umbrella header: the full public API of the VAQ library.
//
// VAQ reproduces "Querying For Actions Over Videos" (EDBT 2024): declarative
// conjunctive queries over videos whose predicates combine an action and
// object presence, answered online over streams (SVAQ / SVAQD, §3) or
// offline over an ingested repository with top-K ranking (RVAQ, §4).
//
// Typical entry points:
//   * synth::Scenario        — generate an evaluation video + query.
//   * detect::ModelBundle    — simulated detector / recognizer / tracker.
//   * online::Svaq, Svaqd    — streaming query engines.
//   * offline::Ingestor      — one-time ingestion into a VideoIndex.
//   * offline::Rvaq          — ranked top-K retrieval.
//   * query::Session         — the SQL-like front end.
//   * serve::Server          — concurrent multi-query serving runtime.
//   * eval::SequenceF1       — evaluation against ground truth.
#ifndef VAQ_VAQ_H_
#define VAQ_VAQ_H_

#include "common/interval.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "detect/model_profile.h"
#include "detect/models.h"
#include "detect/relationship.h"
#include "detect/resilient.h"
#include "eval/metrics.h"
#include "fault/fault_plan.h"
#include "fault/sim_clock.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "offline/baselines.h"
#include "offline/ingest.h"
#include "offline/query_view.h"
#include "offline/repository.h"
#include "offline/rvaq.h"
#include "offline/scoring.h"
#include "offline/tbclip.h"
#include "online/clip_evaluator.h"
#include "online/cnf_engine.h"
#include "online/streaming.h"
#include "online/svaq.h"
#include "online/svaqd.h"
#include "query/parser.h"
#include "query/session.h"
#include "scanstat/critical_value.h"
#include "scanstat/kernel_estimator.h"
#include "scanstat/naus.h"
#include "serve/detection_cache.h"
#include "serve/server.h"
#include "storage/catalog.h"
#include "storage/score_table.h"
#include "synth/generator.h"
#include "synth/scenario.h"
#include "synth/spec_file.h"
#include "video/cnf_query.h"
#include "video/layout.h"
#include "video/query_spec.h"
#include "video/sequence_ops.h"
#include "video/vocabulary.h"

#endif  // VAQ_VAQ_H_
