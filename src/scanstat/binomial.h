// Binomial distribution helpers computed in log space for numerical
// robustness at the extreme tail probabilities scan statistics operate on
// (background probabilities down to 1e-6 and windows of hundreds of
// trials).
#ifndef VAQ_SCANSTAT_BINOMIAL_H_
#define VAQ_SCANSTAT_BINOMIAL_H_

#include <cstdint>

namespace vaq {
namespace scanstat {

// log P[Bin(n, p) = k]; -inf outside the support. p in [0, 1].
double LogBinomialPmf(int64_t k, int64_t n, double p);

// P[Bin(n, p) = k].
double BinomialPmf(int64_t k, int64_t n, double p);

// P[Bin(n, p) <= k]. Returns 0 for k < 0 and 1 for k >= n.
// Computed by direct summation from the smaller tail.
double BinomialCdf(int64_t k, int64_t n, double p);

// P[Bin(n, p) >= k] = 1 - Cdf(k - 1), summed from the upper tail so small
// survival probabilities keep full relative precision.
double BinomialSf(int64_t k, int64_t n, double p);

}  // namespace scanstat
}  // namespace vaq

#endif  // VAQ_SCANSTAT_BINOMIAL_H_
