// Naus' approximation for the distribution of the discrete scan statistic.
//
// Setting (§3.2 of the paper): N Bernoulli(p) trials ("occurrence units");
// S_w(N) is the maximum number of successes in any window of w consecutive
// trials. The paper relies on Naus (1982) [35]:
//
//   P(S_w(N) >= k | p, w, L) ≈ 1 - Q2 * (Q3 / Q2)^(L-2),   L = N / w,
//
// where Q2 = P(S_w(2w) < k) and Q3 = P(S_w(3w) < k) are computed *exactly*
// via Naus' closed forms in terms of binomial pmf/cdf values. This module
// implements those closed forms, the approximation, and exact/Monte-Carlo
// reference computations used to validate them in tests.
#ifndef VAQ_SCANSTAT_NAUS_H_
#define VAQ_SCANSTAT_NAUS_H_

#include <cstdint>

namespace vaq {
namespace scanstat {

// Exact P(S_w(2w) < k) for iid Bernoulli(p) trials (Naus 1982).
// Requires w >= 1, 0 <= p <= 1. Defined for k >= 1; returns 0 for k <= 0.
double NausQ2(int64_t k, int64_t w, double p);

// Exact P(S_w(3w) < k) for iid Bernoulli(p) trials (Naus 1982).
double NausQ3(int64_t k, int64_t w, double p);

// Approximate P(S_w(N) >= k) for N = L * w trials (L may be fractional and
// is clamped to >= 2). Exact in the special cases k <= 0 (-> 1), k > w
// (-> 0; a window of w trials cannot hold more than w successes), k == 1
// (-> 1 - (1-p)^N exactly), p == 0 (-> 0) and p == 1 (-> 1 for k <= w).
double ScanStatisticTailProbability(int64_t k, double p, int64_t w, double L);

// Exact P(S_w(N) >= k) by dynamic programming over the window bit-state.
// O(N * 2^w) time; requires 1 <= w <= 20. Reference implementation for
// tests and small problems.
double ExactScanTailProbabilityDp(int64_t k, double p, int64_t w, int64_t n);

// Monte-Carlo estimate of P(S_w(N) >= k) using `trials` simulated
// sequences; deterministic given `seed`.
double MonteCarloScanTailProbability(int64_t k, double p, int64_t w,
                                     int64_t n, int64_t trials,
                                     uint64_t seed);

}  // namespace scanstat
}  // namespace vaq

#endif  // VAQ_SCANSTAT_NAUS_H_
