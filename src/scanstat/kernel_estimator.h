// Dynamic background-probability estimation (§3.3 of the paper).
//
// SVAQD replaces the fixed Bernoulli background probability p0 of SVAQ with
// an online estimate p̂(t) obtained by smoothing the observed event stream
// with an exponential kernel K(x) = exp(-x) of bandwidth u, including the
// Diggle edge correction for the finite observation window [1, t].
//
// `KernelRateEstimator` maintains the edge-corrected estimate in O(1) per
// occurrence unit as the ratio
//
//   p̂(t) = Σ_{events n} exp(-(t - t_n)/u)  /  Σ_{OUs j<=t} exp(-(t - t_j)/u)
//
// whose denominator is exactly the paper's edge-correction factor
// (1 - exp(-t/u)) / (1 - exp(-1/u)). The ratio form is unbiased for a
// constant background probability (E[numerator] = p * denominator), decays
// sudden rate changes with time constant u, and — as the paper requires —
// is insensitive to gradual drift slower than u. The literal incremental
// recurrence printed as Eq. 6 in the paper carries an extra 1/(N* u)
// normalisation that makes it converge to p/u rather than p; it is kept
// here as `Eq6Reference` for documentation and is unit-tested against the
// ratio form (see DESIGN.md §1 for the rationale).
#ifndef VAQ_SCANSTAT_KERNEL_ESTIMATOR_H_
#define VAQ_SCANSTAT_KERNEL_ESTIMATOR_H_

#include <cstdint>

namespace vaq {
namespace scanstat {

// Online edge-corrected exponential-kernel estimate of a Bernoulli event
// rate over a stream of occurrence units.
class KernelRateEstimator {
 public:
  // `bandwidth_u` is the kernel bandwidth in occurrence units (> 0).
  // `prior_p` seeds the estimate as `prior_weight` pseudo-occurrence-units
  // observed before the stream; the pseudo-data decays under the kernel
  // exactly like real data, so the prior's influence vanishes
  // exponentially (prior_weight may be 0 for a pure estimate).
  KernelRateEstimator(double bandwidth_u, double prior_p,
                      double prior_weight = 0.0);

  // Observes one occurrence unit; `event` is the model's positive/negative
  // prediction for it. O(1).
  void Observe(bool event);

  // Observes `count` consecutive occurrence units of which `events` were
  // positive, assuming the positives are spread uniformly; used to ingest a
  // whole clip at once. Equivalent to `count` Observe() calls up to the
  // within-clip ordering of events. O(1).
  void ObserveBatch(int64_t count, int64_t events);

  // Current estimate p̂(t) in [0, 1].
  double rate() const;

  // Number of occurrence units observed.
  int64_t num_observed() const { return num_observed_; }

  double bandwidth() const { return bandwidth_u_; }

  // The estimator's full mutable state, exposed for checkpointing
  // (src/ckpt/): restoring it on a freshly constructed estimator with the
  // same (bandwidth, prior) parameters resumes the identical trajectory.
  struct State {
    double event_weight = 0.0;
    double total_weight = 0.0;
    int64_t num_observed = 0;
  };
  State state() const {
    return State{event_weight_, total_weight_, num_observed_};
  }
  void set_state(const State& s) {
    event_weight_ = s.event_weight;
    total_weight_ = s.total_weight;
    num_observed_ = s.num_observed;
  }

 private:
  double bandwidth_u_;
  double prior_p_;
  double prior_weight_;
  double decay_;            // exp(-1/u), per-OU kernel decay.
  double event_weight_ = 0.0;  // Σ_events exp(-(t - t_n)/u).
  double total_weight_ = 0.0;  // Σ_OUs exp(-(t - t_j)/u).
  int64_t num_observed_ = 0;
};

// Literal implementation of the paper's Eq. 6 update (edge-corrected
// exponential kernel with the 1/(N* u) normalisation). For a constant
// background probability p its steady state is *proportional* to p but
// scaled by a bandwidth-dependent constant of order 1/u rather than equal
// to p; provided as a documented reference of the paper's printed
// recurrence (see DESIGN.md §1).
class Eq6Reference {
 public:
  explicit Eq6Reference(double bandwidth_u);

  // Advances the clock by `delta_t` occurrence units to the time of the
  // next event and applies Eq. 6 (decay of the old estimate plus the new
  // event's edge-corrected kernel mass).
  void OnEventAfter(int64_t delta_t);

  // Current p̂(t); multiply by the bandwidth u to compare against the true
  // Bernoulli probability.
  double value() const { return p_hat_; }
  int64_t time() const { return t_; }

 private:
  double bandwidth_u_;
  double p_hat_ = 0.0;
  int64_t t_ = 0;
};

}  // namespace scanstat
}  // namespace vaq

#endif  // VAQ_SCANSTAT_KERNEL_ESTIMATOR_H_
