// Scan statistics on Markov-dependent Bernoulli trials.
//
// §3.2's analysis assumes iid trials, with a footnote (7) noting that the
// entire machinery extends to trials with known Markov dependencies —
// exactly the regime real detectors live in, where errors flicker in
// bursts. This module supplies that extension for a two-state chain
//
//   P(X_t = 1 | X_{t-1} = 0) = p01,   P(X_t = 1 | X_{t-1} = 1) = p11,
//
// whose stationary success probability is π = p01 / (p01 + 1 - p11) and
// lag-1 autocorrelation ρ = p11 - p01 (ρ > 0: bursty errors; ρ = 0: iid).
//
//  * Exact tail probabilities by dynamic programming over the window
//    bit-state (any n, window ≤ 20).
//  * A product-type approximation in the spirit of the paper's Naus
//    formula: Q2 = P(S_w(2w) < k) and Q3 = P(S_w(3w) < k) computed
//    *exactly* by the DP, extrapolated as 1 - Q2 (Q3/Q2)^(L-2). For
//    windows too wide for the DP, a Gaussian window-count approximation
//    with the Markov variance inflation (1+ρ)/(1-ρ) is used; it omits
//    declumping and therefore errs on the conservative (higher-k) side.
//  * A critical-value solver mirroring Eq. 5.
//
// SVAQD's burst-aware mode estimates ρ online from the overdispersion of
// background clip counts and calibrates its critical values here instead
// of the iid formulas.
#ifndef VAQ_SCANSTAT_MARKOV_H_
#define VAQ_SCANSTAT_MARKOV_H_

#include <cstdint>

#include "scanstat/critical_value.h"

namespace vaq {
namespace scanstat {

// Two-state Markov chain over {0, 1} outcomes.
struct MarkovParams {
  double p01 = 0.0;  // 0 -> 1 transition probability.
  double p11 = 0.0;  // 1 -> 1 transition probability.

  // Long-run fraction of successes.
  double Stationary() const;
  // Lag-1 autocorrelation, p11 - p01 (0 for iid).
  double Rho() const;
  // Chain with the given stationary probability and autocorrelation;
  // rho is clamped so both transition probabilities stay in [0, 1].
  static MarkovParams FromStationaryAndRho(double pi, double rho);
  // The iid chain with success probability p.
  static MarkovParams Iid(double p);
};

// Exact P(S_w(n) >= k) for the chain, O(n * 2^w); requires 1 <= w <= 20.
// The first trial is drawn from the stationary distribution.
double ExactMarkovScanTailDp(int64_t k, const MarkovParams& params,
                             int64_t w, int64_t n);

// Approximate P(S_w(N) >= k) for N = L * w trials. Windows up to 16 use
// the exact-Q2/Q3 product extrapolation; wider windows use the Gaussian
// approximation (conservative).
double MarkovScanTailProbability(int64_t k, const MarkovParams& params,
                                 int64_t w, double L);

// Monte-Carlo reference, deterministic in `seed`.
double MonteCarloMarkovScanTail(int64_t k, const MarkovParams& params,
                                int64_t w, int64_t n, int64_t trials,
                                uint64_t seed);

// Smallest k in [1, window] with MarkovScanTailProbability <= alpha;
// window + 1 when none (the Eq. 5 solver for dependent trials).
int64_t MarkovCriticalValue(const MarkovParams& params,
                            const ScanConfig& config);

}  // namespace scanstat
}  // namespace vaq

#endif  // VAQ_SCANSTAT_MARKOV_H_
