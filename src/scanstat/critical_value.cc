#include "scanstat/critical_value.h"

#include <sstream>

#include "common/logging.h"
#include "scanstat/naus.h"

namespace vaq {
namespace scanstat {

std::string ScanConfig::ToString() const {
  std::ostringstream os;
  os << "ScanConfig{w=" << window << ", N=" << horizon << ", alpha=" << alpha
     << "}";
  return os.str();
}

int64_t CriticalValue(double p, const ScanConfig& config) {
  VAQ_CHECK_GE(config.window, 1);
  VAQ_CHECK_GE(config.horizon, config.window);
  VAQ_CHECK_GT(config.alpha, 0.0);
  VAQ_CHECK_LT(config.alpha, 1.0);
  const int64_t w = config.window;
  const double L = config.L();
  // The tail probability is non-increasing in k, so binary search for the
  // first k meeting the significance level.
  int64_t lo = 1;       // Smallest candidate.
  int64_t hi = w + 1;   // Sentinel: "never significant".
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    const double tail = ScanStatisticTailProbability(mid, p, w, L);
    if (tail <= config.alpha) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace scanstat
}  // namespace vaq
