#include "scanstat/binomial.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace vaq {
namespace scanstat {

double LogBinomialPmf(int64_t k, int64_t n, double p) {
  VAQ_CHECK_GE(n, 0);
  VAQ_CHECK_GE(p, 0.0);
  VAQ_CHECK_LE(p, 1.0);
  if (k < 0 || k > n) return kNegInf;
  if (p == 0.0) return k == 0 ? 0.0 : kNegInf;
  if (p == 1.0) return k == n ? 0.0 : kNegInf;
  return LogChoose(n, k) + static_cast<double>(k) * std::log(p) +
         static_cast<double>(n - k) * std::log1p(-p);
}

double BinomialPmf(int64_t k, int64_t n, double p) {
  return std::exp(LogBinomialPmf(k, n, p));
}

double BinomialCdf(int64_t k, int64_t n, double p) {
  if (k < 0) return 0.0;
  if (k >= n) return 1.0;
  // Sum whichever tail has fewer terms; both stay accurate because each
  // pmf term is evaluated independently in log space.
  if (k <= n / 2) {
    double sum = 0.0;
    for (int64_t i = 0; i <= k; ++i) sum += BinomialPmf(i, n, p);
    return std::min(1.0, sum);
  }
  return std::max(0.0, 1.0 - BinomialSf(k + 1, n, p));
}

double BinomialSf(int64_t k, int64_t n, double p) {
  if (k <= 0) return 1.0;
  if (k > n) return 0.0;
  if (k <= n / 2) {
    return std::max(0.0, 1.0 - BinomialCdf(k - 1, n, p));
  }
  double sum = 0.0;
  for (int64_t i = k; i <= n; ++i) sum += BinomialPmf(i, n, p);
  return std::min(1.0, sum);
}

}  // namespace scanstat
}  // namespace vaq
