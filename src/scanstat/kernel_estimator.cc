#include "scanstat/kernel_estimator.h"

#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace vaq {
namespace scanstat {

KernelRateEstimator::KernelRateEstimator(double bandwidth_u, double prior_p,
                                         double prior_weight)
    : bandwidth_u_(bandwidth_u),
      prior_p_(ClampProbability(prior_p)),
      prior_weight_(prior_weight),
      decay_(std::exp(-1.0 / bandwidth_u)) {
  VAQ_CHECK_GT(bandwidth_u, 0.0);
  VAQ_CHECK_GE(prior_weight, 0.0);
  // The prior enters as pseudo-observations *before* the stream: it decays
  // away under the kernel exactly like real data, so wildly wrong initial
  // probabilities are forgotten (§3.3's requirement that SVAQD eliminate
  // the influence of p0).
  total_weight_ = prior_weight_;
  event_weight_ = prior_weight_ * prior_p_;
}

void KernelRateEstimator::Observe(bool event) {
  event_weight_ = event_weight_ * decay_ + (event ? 1.0 : 0.0);
  total_weight_ = total_weight_ * decay_ + 1.0;
  ++num_observed_;
}

void KernelRateEstimator::ObserveBatch(int64_t count, int64_t events) {
  VAQ_CHECK_GE(count, 0);
  VAQ_CHECK_GE(events, 0);
  VAQ_CHECK_LE(events, count);
  if (count == 0) return;
  // decay^count and the geometric mass of `count` unit weights.
  const double batch_decay =
      std::exp(-static_cast<double>(count) / bandwidth_u_);
  const double batch_mass = (1.0 - batch_decay) / (1.0 - decay_);
  total_weight_ = total_weight_ * batch_decay + batch_mass;
  // Events assumed uniformly spread within the batch: each carries the
  // batch's average per-OU kernel weight.
  event_weight_ = event_weight_ * batch_decay +
                  static_cast<double>(events) * batch_mass /
                      static_cast<double>(count);
  num_observed_ += count;
}

double KernelRateEstimator::rate() const {
  if (total_weight_ <= 0.0) return prior_p_;
  return ClampProbability(event_weight_ / total_weight_);
}

Eq6Reference::Eq6Reference(double bandwidth_u) : bandwidth_u_(bandwidth_u) {
  VAQ_CHECK_GT(bandwidth_u, 0.0);
}

void Eq6Reference::OnEventAfter(int64_t delta_t) {
  VAQ_CHECK_GT(delta_t, 0);
  const double u = bandwidth_u_;
  const double t = static_cast<double>(t_);
  const double dt = static_cast<double>(delta_t);
  // First term of Eq. 6, rearranged to avoid exp(dt/u) overflow:
  //   (1 - e^{-t/u}) / (e^{dt/u} - e^{-t/u})
  // = (1 - e^{-t/u}) e^{-dt/u} / (1 - e^{-(t+dt)/u}).
  const double decay_num = 1.0 - std::exp(-t / u);
  const double decay_den = 1.0 - std::exp(-(t + dt) / u);
  double p = 0.0;
  if (decay_den > 0.0) {
    p = p_hat_ * decay_num * std::exp(-dt / u) / decay_den;
    // Second term: the new event's kernel mass with edge correction.
    p += (1.0 - std::exp(-1.0 / u)) / (u * decay_den);
  }
  p_hat_ = p;
  t_ += delta_t;
}

}  // namespace scanstat
}  // namespace vaq
