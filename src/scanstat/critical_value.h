// Critical value solver for Eq. 5 of the paper:
//
//   k_crit = min { k : P(S_w(N) >= k | p0, w, L) <= alpha }.
//
// If the number of positive predictions within a scanning interval (a clip,
// in SVAQ/SVAQD) reaches k_crit, the event is declared present at
// significance level alpha.
#ifndef VAQ_SCANSTAT_CRITICAL_VALUE_H_
#define VAQ_SCANSTAT_CRITICAL_VALUE_H_

#include <cstdint>
#include <string>

namespace vaq {
namespace scanstat {

// Parameters of a critical-value computation.
struct ScanConfig {
  // Scanning-interval length in occurrence units (frames per clip for
  // object predicates, shots per clip for the action predicate).
  int64_t window = 50;
  // Design horizon: the total number of occurrence units N the stream is
  // sized for; L = horizon / window. Larger horizons demand more evidence
  // (multiple-comparison correction across more windows).
  int64_t horizon = 100000;
  // Significance level alpha of Eq. 5.
  double alpha = 0.01;

  double L() const {
    return static_cast<double>(horizon) / static_cast<double>(window);
  }
  std::string ToString() const;
};

// Smallest k in [1, window] whose scan tail probability is <= alpha under
// background probability `p`. Returns window + 1 when even k = window is
// not significant (the background rate is too high for any count within
// one window to be surprising); callers treat that as "indicator never
// fires".
int64_t CriticalValue(double p, const ScanConfig& config);

}  // namespace scanstat
}  // namespace vaq

#endif  // VAQ_SCANSTAT_CRITICAL_VALUE_H_
