#include "scanstat/markov.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/math_util.h"
#include "common/rng.h"

namespace vaq {
namespace scanstat {
namespace {

double ClampUnit(double x) { return std::min(1.0, std::max(0.0, x)); }

// Exact P(S_w(n) < k) by DP over the last-w-outcomes bitmask. The lowest
// bit of the mask is the most recent outcome (which is also the Markov
// state).
double ExactMarkovNoHitDp(int64_t k, const MarkovParams& params, int64_t w,
                          int64_t n) {
  const uint64_t num_states = uint64_t{1} << w;
  const uint64_t mask_all = num_states - 1;
  std::vector<double> prob(num_states, 0.0);
  std::vector<double> next(num_states, 0.0);
  const double pi = params.Stationary();
  double hit = 0.0;
  // First trial from the stationary distribution.
  if (n >= 1) {
    if (k <= 1) {
      hit += pi;
      prob[0] = 1.0 - pi;
    } else {
      prob[1] = pi;
      prob[0] = 1.0 - pi;
    }
  } else {
    return 1.0;
  }
  for (int64_t t = 1; t < n; ++t) {
    std::fill(next.begin(), next.end(), 0.0);
    for (uint64_t m = 0; m < num_states; ++m) {
      const double pm = prob[m];
      if (pm == 0.0) continue;
      const double p1 = (m & 1u) != 0 ? params.p11 : params.p01;
      const uint64_t m0 = (m << 1) & mask_all;
      next[m0] += pm * (1.0 - p1);
      const uint64_t m1 = m0 | 1u;
      if (std::popcount(m1) >= k) {
        hit += pm * p1;
      } else {
        next[m1] += pm * p1;
      }
    }
    prob.swap(next);
  }
  return ClampUnit(1.0 - hit);
}

// Exact P(count of ones in one fixed window of length w >= k) for the
// chain started from its stationary distribution. DP over (ones so far,
// last outcome), O(w * k).
double SingleWindowCountTail(int64_t k, const MarkovParams& params,
                             int64_t w) {
  if (k <= 0) return 1.0;
  if (k > w) return 0.0;
  const size_t kk = static_cast<size_t>(k);
  // prob[c][s]: after t trials, c ones so far (clamped at k = absorbed
  // success), last outcome s.
  std::vector<std::array<double, 2>> prob(kk + 1, {0.0, 0.0});
  std::vector<std::array<double, 2>> next(kk + 1, {0.0, 0.0});
  const double pi = params.Stationary();
  prob[std::min<size_t>(1, kk)][1] = pi;
  prob[0][0] = 1.0 - pi;
  for (int64_t t = 1; t < w; ++t) {
    for (auto& row : next) row = {0.0, 0.0};
    for (size_t c = 0; c <= kk; ++c) {
      for (int s = 0; s < 2; ++s) {
        const double pm = prob[c][s];
        if (pm == 0.0) continue;
        if (c == kk) {
          next[kk][s] += pm;  // Absorbed: k reached.
          continue;
        }
        const double p1 = s == 1 ? params.p11 : params.p01;
        next[c][0] += pm * (1.0 - p1);
        next[std::min(c + 1, kk)][1] += pm * p1;
      }
    }
    prob.swap(next);
  }
  return ClampUnit(prob[kk][0] + prob[kk][1]);
}

// Exact probability that a *new* exceedance cluster starts at a given
// position: the window ending here reaches k while the window one step
// earlier did not. With the two windows sharing w-1 trials this event is
// exactly {X_j = 0, count(j+1 .. j+w-1) = k-1, X_{j+w} = 1}; computed by
// a DP over the w-1 middle trials tracking the exact count and the last
// state, started from the stationary probability of state 0.
double NewClusterRate(int64_t k, const MarkovParams& params, int64_t w) {
  if (k <= 0 || k > w) return 0.0;
  const size_t kk = static_cast<size_t>(k);
  const double pi = params.Stationary();
  // prob[c][s]: middle count so far == c (c == kk means "overshot": dead),
  // last outcome s. Start: X_j = 0 (weight 1 - pi), then w-1 middle
  // trials.
  std::vector<std::array<double, 2>> prob(kk + 1, {0.0, 0.0});
  std::vector<std::array<double, 2>> next(kk + 1, {0.0, 0.0});
  prob[0][0] = 1.0 - pi;  // The state of X_j itself (no middle trial yet).
  for (int64_t t = 0; t < w - 1; ++t) {
    for (auto& row : next) row = {0.0, 0.0};
    for (size_t c = 0; c < kk; ++c) {  // c == kk is dead.
      for (int s = 0; s < 2; ++s) {
        const double pm = prob[c][s];
        if (pm == 0.0) continue;
        const double p1 = s == 1 ? params.p11 : params.p01;
        next[c][0] += pm * (1.0 - p1);
        next[std::min(c + 1, kk)][1] += pm * p1;
      }
    }
    prob.swap(next);
  }
  if (kk == 0) return 0.0;
  // Final step: X_{j+w} = 1 from the last middle state, with middle count
  // exactly k-1.
  return prob[kk - 1][0] * params.p01 + prob[kk - 1][1] * params.p11;
}

}  // namespace

double MarkovParams::Stationary() const {
  const double denom = p01 + (1.0 - p11);
  if (denom <= 0.0) return 1.0;  // Absorbing in state 1.
  return p01 / denom;
}

double MarkovParams::Rho() const { return p11 - p01; }

MarkovParams MarkovParams::FromStationaryAndRho(double pi, double rho) {
  pi = ClampProbability(pi);
  // p01 = pi (1 - rho), p11 = rho + pi (1 - rho); clamp rho so both stay
  // in [0, 1]. Negative rho (alternating) is clamped at the feasibility
  // boundary too.
  const double max_rho = 1.0;
  const double min_rho =
      pi >= 1.0 || pi <= 0.0 ? 0.0 : -std::min(pi / (1 - pi), (1 - pi) / pi);
  rho = std::clamp(rho, min_rho, max_rho);
  MarkovParams params;
  params.p01 = ClampProbability(pi * (1.0 - rho));
  params.p11 = ClampProbability(rho + pi * (1.0 - rho));
  return params;
}

MarkovParams MarkovParams::Iid(double p) {
  MarkovParams params;
  params.p01 = p;
  params.p11 = p;
  return params;
}

double ExactMarkovScanTailDp(int64_t k, const MarkovParams& params,
                             int64_t w, int64_t n) {
  VAQ_CHECK_GE(w, 1);
  VAQ_CHECK_LE(w, 20);
  if (k <= 0) return 1.0;
  if (k > w || n < k) return 0.0;
  return ClampUnit(1.0 - ExactMarkovNoHitDp(k, params, w, n));
}

double MarkovScanTailProbability(int64_t k, const MarkovParams& params,
                                 int64_t w, double L) {
  VAQ_CHECK_GE(w, 1);
  if (k <= 0) return 1.0;
  if (k > w) return 0.0;
  const double pi = params.Stationary();
  if (pi <= 0.0) return 0.0;
  if (pi >= 1.0) return 1.0;
  const double eff_l = std::max(L, 2.0);

  if (w <= 16) {
    // Product-type extrapolation with exact Markov Q2, Q3 (the paper's
    // Naus structure with dependence-aware ingredients).
    const double q2 = ExactMarkovNoHitDp(k, params, w, 2 * w);
    if (q2 <= 0.0) return 1.0;
    const double q3 = ExactMarkovNoHitDp(k, params, w, 3 * w);
    const double ratio = ClampUnit(q3 / q2);
    const double log_no_hit =
        std::log(q2) + (eff_l - 2.0) * std::log(std::max(ratio, 1e-300));
    return ClampUnit(-std::expm1(log_no_hit));
  }

  // Wide windows: the classical declumped scan approximation
  //   P(S_w(N) >= k) ~= 1 - (1 - t_w) exp(-(N - w) theta),
  // with the first-window tail t_w and the new-cluster rate theta both
  // computed exactly for the chain (O(w k) DPs). This is the asymptotic
  // form underlying Naus' product formula, valid for any window width.
  const double t_w = SingleWindowCountTail(k, params, w);
  if (t_w >= 1.0) return 1.0;
  const double theta = NewClusterRate(k, params, w);
  const double n_trials = eff_l * static_cast<double>(w);
  const double log_no_hit = std::log1p(-t_w) -
                            std::max(0.0, n_trials - static_cast<double>(w)) *
                                theta;
  return ClampUnit(-std::expm1(log_no_hit));
}

double MonteCarloMarkovScanTail(int64_t k, const MarkovParams& params,
                                int64_t w, int64_t n, int64_t trials,
                                uint64_t seed) {
  VAQ_CHECK_GE(w, 1);
  VAQ_CHECK_GT(trials, 0);
  if (k <= 0) return 1.0;
  if (k > w || n < k) return 0.0;
  Rng rng(seed);
  std::vector<uint8_t> window(static_cast<size_t>(w), 0);
  const double pi = params.Stationary();
  int64_t hits = 0;
  for (int64_t trial = 0; trial < trials; ++trial) {
    std::fill(window.begin(), window.end(), 0);
    int64_t count = 0;
    bool hit = false;
    uint8_t prev = rng.Bernoulli(pi) ? 1 : 0;
    for (int64_t t = 0; t < n; ++t) {
      const uint8_t x =
          t == 0 ? prev
                 : (rng.Bernoulli(prev != 0 ? params.p11 : params.p01) ? 1
                                                                       : 0);
      prev = x;
      const size_t slot = static_cast<size_t>(t % w);
      count -= window[slot];
      window[slot] = x;
      count += x;
      if (count >= k) {
        hit = true;
        break;
      }
    }
    if (hit) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(trials);
}

int64_t MarkovCriticalValue(const MarkovParams& params,
                            const ScanConfig& config) {
  VAQ_CHECK_GE(config.window, 1);
  VAQ_CHECK_GT(config.alpha, 0.0);
  VAQ_CHECK_LT(config.alpha, 1.0);
  const int64_t w = config.window;
  const double L = config.L();
  int64_t lo = 1;
  int64_t hi = w + 1;
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (MarkovScanTailProbability(mid, params, w, L) <= config.alpha) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace scanstat
}  // namespace vaq
