#include "scanstat/naus.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "scanstat/binomial.h"

namespace vaq {
namespace scanstat {
namespace {

// Clamps a computed probability into [0, 1]; the closed forms below can
// stray slightly outside through floating-point cancellation.
double ClampUnit(double x) { return std::min(1.0, std::max(0.0, x)); }

}  // namespace

// Naus (1982) exact probability that no window of length w within 2w iid
// Bernoulli(p) trials contains k or more successes. Notation: b(j) and
// F(j) are the Binomial(w, p) pmf and cdf; F(j; n) the Binomial(n, p) cdf.
double NausQ2(int64_t k, int64_t w, double p) {
  VAQ_CHECK_GE(w, 1);
  if (k <= 0) return 0.0;
  if (k > w) return 1.0;  // A window of w trials cannot reach k successes.
  if (p <= 0.0) return 1.0;
  if (p >= 1.0) return 0.0;  // k <= w, so the all-success window hits k.
  if (k == 1) {
    // No success anywhere in the 2w trials.
    return std::exp(2.0 * static_cast<double>(w) * std::log1p(-p));
  }
  const double bk = BinomialPmf(k, w, p);
  const double f_km1 = BinomialCdf(k - 1, w, p);
  const double f_km2 = BinomialCdf(k - 2, w, p);
  const double f_km3_w1 = BinomialCdf(k - 3, w - 1, p);
  const double wd = static_cast<double>(w);
  const double kd = static_cast<double>(k);
  const double q2 = f_km1 * f_km1 - (kd - 1.0) * bk * f_km2 +
                    wd * p * bk * f_km3_w1;
  return ClampUnit(q2);
}

// Naus (1982) exact probability that no window of length w within 3w iid
// Bernoulli(p) trials contains k or more successes.
double NausQ3(int64_t k, int64_t w, double p) {
  VAQ_CHECK_GE(w, 1);
  if (k <= 0) return 0.0;
  if (k > w) return 1.0;
  if (p <= 0.0) return 1.0;
  if (p >= 1.0) return 0.0;
  if (k == 1) {
    return std::exp(3.0 * static_cast<double>(w) * std::log1p(-p));
  }
  const double wd = static_cast<double>(w);
  const double kd = static_cast<double>(k);
  const double bk = BinomialPmf(k, w, p);
  const double f_km1 = BinomialCdf(k - 1, w, p);
  const double f_km2 = BinomialCdf(k - 2, w, p);
  const double f_km3 = BinomialCdf(k - 3, w, p);
  const double f_km3_w1 = BinomialCdf(k - 3, w - 1, p);
  const double f_km4_w1 = BinomialCdf(k - 4, w - 1, p);
  const double f_km5_w2 = w >= 2 ? BinomialCdf(k - 5, w - 2, p) : 0.0;

  const double a1 =
      2.0 * bk * f_km1 * ((kd - 1.0) * f_km2 - wd * p * f_km3_w1);
  const double a2 =
      0.5 * bk * bk *
      ((kd - 1.0) * (kd - 2.0) * f_km3 -
       2.0 * (kd - 2.0) * wd * p * f_km4_w1 +
       wd * (wd - 1.0) * p * p * f_km5_w2);
  double a3 = 0.0;
  for (int64_t r = 1; r <= k - 1; ++r) {
    const double b2kr = BinomialPmf(2 * k - r, w, p);
    if (b2kr == 0.0) continue;
    const double fr1 = BinomialCdf(r - 1, w, p);
    a3 += b2kr * fr1 * fr1;
  }
  double a4 = 0.0;
  for (int64_t r = 2; r <= k - 1; ++r) {
    const double b2kr = BinomialPmf(2 * k - r, w, p);
    if (b2kr == 0.0) continue;
    const double br = BinomialPmf(r, w, p);
    const double rd = static_cast<double>(r);
    a4 += b2kr * br *
          ((rd - 1.0) * BinomialCdf(r - 2, w, p) -
           wd * p * BinomialCdf(r - 3, w - 1, p));
  }
  const double q3 = f_km1 * f_km1 * f_km1 - a1 + a2 + a3 - a4;
  return ClampUnit(q3);
}

double ScanStatisticTailProbability(int64_t k, double p, int64_t w,
                                    double L) {
  VAQ_CHECK_GE(w, 1);
  if (k <= 0) return 1.0;
  if (k > w) return 0.0;
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  const double n_trials = std::max(L, 1.0) * static_cast<double>(w);
  if (k == 1) {
    // Exact: at least one success among N trials.
    return ClampUnit(-std::expm1(n_trials * std::log1p(-p)));
  }
  const double q2 = NausQ2(k, w, p);
  if (q2 <= 0.0) return 1.0;
  const double q3 = NausQ3(k, w, p);
  const double ratio = ClampUnit(q3 / q2);
  const double eff_l = std::max(L, 2.0);
  // P(S_w(N) < k) ≈ Q2 * (Q3/Q2)^(L-2); compute the power in log space.
  const double log_no_hit =
      std::log(q2) + (eff_l - 2.0) * std::log(std::max(ratio, 1e-300));
  return ClampUnit(-std::expm1(log_no_hit));
}

double ExactScanTailProbabilityDp(int64_t k, double p, int64_t w,
                                  int64_t n) {
  VAQ_CHECK_GE(w, 1);
  VAQ_CHECK_LE(w, 20);
  VAQ_CHECK_GE(n, 0);
  if (k <= 0) return 1.0;
  if (k > w || n < k) return 0.0;
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;

  const uint64_t num_states = uint64_t{1} << w;
  const uint64_t mask_all = num_states - 1;
  // prob[m]: probability the last w outcomes equal bitmask m (zero-padded
  // at the start) and no window so far reached k successes.
  std::vector<double> prob(num_states, 0.0);
  std::vector<double> next(num_states, 0.0);
  prob[0] = 1.0;
  double hit = 0.0;
  for (int64_t t = 0; t < n; ++t) {
    std::fill(next.begin(), next.end(), 0.0);
    for (uint64_t m = 0; m < num_states; ++m) {
      const double pm = prob[m];
      if (pm == 0.0) continue;
      // Outcome 0.
      const uint64_t m0 = (m << 1) & mask_all;
      next[m0] += pm * (1.0 - p);
      // Outcome 1.
      const uint64_t m1 = m0 | 1u;
      if (std::popcount(m1) >= k) {
        hit += pm * p;
      } else {
        next[m1] += pm * p;
      }
    }
    prob.swap(next);
  }
  return ClampUnit(hit);
}

double MonteCarloScanTailProbability(int64_t k, double p, int64_t w,
                                     int64_t n, int64_t trials,
                                     uint64_t seed) {
  VAQ_CHECK_GE(w, 1);
  VAQ_CHECK_GT(trials, 0);
  if (k <= 0) return 1.0;
  if (k > w || n < k) return 0.0;
  Rng rng(seed);
  std::vector<uint8_t> window(static_cast<size_t>(w), 0);
  int64_t hits = 0;
  for (int64_t trial = 0; trial < trials; ++trial) {
    std::fill(window.begin(), window.end(), 0);
    int64_t count = 0;
    bool hit = false;
    for (int64_t t = 0; t < n; ++t) {
      const size_t slot = static_cast<size_t>(t % w);
      count -= window[slot];
      window[slot] = rng.Bernoulli(p) ? 1 : 0;
      count += window[slot];
      if (count >= k) {
        hit = true;
        break;
      }
    }
    if (hit) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(trials);
}

}  // namespace scanstat
}  // namespace vaq
