#include "video/vocabulary.h"

#include "common/logging.h"

namespace vaq {

ObjectTypeId Vocabulary::AddObjectType(std::string_view name) {
  auto it = object_ids_.find(std::string(name));
  if (it != object_ids_.end()) return it->second;
  const ObjectTypeId id = static_cast<ObjectTypeId>(object_names_.size());
  object_names_.emplace_back(name);
  object_ids_.emplace(std::string(name), id);
  return id;
}

ActionTypeId Vocabulary::AddActionType(std::string_view name) {
  auto it = action_ids_.find(std::string(name));
  if (it != action_ids_.end()) return it->second;
  const ActionTypeId id = static_cast<ActionTypeId>(action_names_.size());
  action_names_.emplace_back(name);
  action_ids_.emplace(std::string(name), id);
  return id;
}

ObjectTypeId Vocabulary::FindObjectType(std::string_view name) const {
  auto it = object_ids_.find(std::string(name));
  return it == object_ids_.end() ? kInvalidTypeId : it->second;
}

ActionTypeId Vocabulary::FindActionType(std::string_view name) const {
  auto it = action_ids_.find(std::string(name));
  return it == action_ids_.end() ? kInvalidTypeId : it->second;
}

StatusOr<ObjectTypeId> Vocabulary::GetObjectType(std::string_view name) const {
  const ObjectTypeId id = FindObjectType(name);
  if (id == kInvalidTypeId) {
    return Status::NotFound("unknown object type: " + std::string(name));
  }
  return id;
}

StatusOr<ActionTypeId> Vocabulary::GetActionType(std::string_view name) const {
  const ActionTypeId id = FindActionType(name);
  if (id == kInvalidTypeId) {
    return Status::NotFound("unknown action type: " + std::string(name));
  }
  return id;
}

const std::string& Vocabulary::ObjectTypeName(ObjectTypeId id) const {
  VAQ_CHECK_GE(id, 0);
  VAQ_CHECK_LT(id, num_object_types());
  return object_names_[id];
}

const std::string& Vocabulary::ActionTypeName(ActionTypeId id) const {
  VAQ_CHECK_GE(id, 0);
  VAQ_CHECK_LT(id, num_action_types());
  return action_names_[id];
}

}  // namespace vaq
