#include "video/sequence_ops.h"

#include <algorithm>

#include "common/logging.h"

namespace vaq {

IntervalSet DropShortSequences(const IntervalSet& sequences,
                               int64_t min_clips) {
  VAQ_CHECK_GE(min_clips, 0);
  IntervalSet out;
  for (const Interval& seq : sequences.intervals()) {
    if (seq.length() >= min_clips) out.Add(seq);
  }
  return out;
}

IntervalSet MergeGaps(const IntervalSet& sequences, int64_t max_gap_clips) {
  VAQ_CHECK_GE(max_gap_clips, 0);
  IntervalSet out;
  Interval pending;
  bool has_pending = false;
  for (const Interval& seq : sequences.intervals()) {
    if (!has_pending) {
      pending = seq;
      has_pending = true;
      continue;
    }
    if (seq.lo - pending.hi - 1 <= max_gap_clips) {
      pending.hi = seq.hi;  // Bridge the gap.
    } else {
      out.Add(pending);
      pending = seq;
    }
  }
  if (has_pending) out.Add(pending);
  return out;
}

IntervalSet PadSequences(const IntervalSet& sequences, int64_t pad_clips,
                         int64_t num_clips) {
  VAQ_CHECK_GE(pad_clips, 0);
  VAQ_CHECK_GT(num_clips, 0);
  IntervalSet out;
  for (const Interval& seq : sequences.intervals()) {
    out.Add(Interval(std::max<int64_t>(0, seq.lo - pad_clips),
                     std::min(num_clips - 1, seq.hi + pad_clips)));
  }
  return out;
}

IntervalSet ClampToWindow(const IntervalSet& sequences,
                          const Interval& window) {
  return sequences.Intersect(IntervalSet::FromIntervals({window}));
}

std::vector<TimeRange> ToTimeRanges(const IntervalSet& sequences,
                                    const VideoLayout& layout, double fps) {
  VAQ_CHECK_GT(fps, 0.0);
  std::vector<TimeRange> out;
  out.reserve(sequences.size());
  for (const Interval& seq : sequences.intervals()) {
    TimeRange range;
    range.begin_seconds =
        static_cast<double>(layout.ClipFrameRange(seq.lo).lo) / fps;
    range.end_seconds =
        static_cast<double>(layout.ClipFrameRange(seq.hi).hi + 1) / fps;
    out.push_back(range);
  }
  return out;
}

}  // namespace vaq
