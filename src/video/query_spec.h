// The query model of §2: q = { o_1, ..., o_I ∈ O; a ∈ A }.
//
// A query is a conjunction of predicates: the presence of one action and of
// zero or more object types. Object predicates are listed in evaluation
// order (the paper leaves predicate ordering to "user expertise"; Algorithm
// 2 evaluates them in the given order and short-circuits).
#ifndef VAQ_VIDEO_QUERY_SPEC_H_
#define VAQ_VIDEO_QUERY_SPEC_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "video/vocabulary.h"

namespace vaq {

// A resolved query against a concrete vocabulary.
struct QuerySpec {
  // Object-type predicates o_1 .. o_I, in evaluation order. May be empty.
  std::vector<ObjectTypeId> objects;
  // The action predicate a. kInvalidTypeId means "no action predicate"
  // (the paper's Table 3 includes object-free and, symmetrically, we allow
  // action-free conjunctions for ablations).
  ActionTypeId action = kInvalidTypeId;

  bool has_action() const { return action != kInvalidTypeId; }
  int num_object_predicates() const {
    return static_cast<int>(objects.size());
  }
  int num_predicates() const {
    return num_object_predicates() + (has_action() ? 1 : 0);
  }

  // Builds a spec from names, resolving them in `vocab`. `action_name` may
  // be empty for an action-free query.
  static StatusOr<QuerySpec> FromNames(
      const Vocabulary& vocab, const std::string& action_name,
      const std::vector<std::string>& object_names);

  // Human-readable form, e.g. "{a=jumping; o1=car; o2=human}".
  std::string ToString(const Vocabulary& vocab) const;
};

}  // namespace vaq

#endif  // VAQ_VIDEO_QUERY_SPEC_H_
