// Post-processing operators over result sequences.
//
// The engines return P_q as maximal runs of positive clips (Eq. 4); real
// applications routinely shape that set before acting on it — drop blips,
// bridge momentary dropouts, window the results to a time range, pad
// context around hits. These operators are pure functions over
// IntervalSet at clip granularity, each preserving canonical form.
#ifndef VAQ_VIDEO_SEQUENCE_OPS_H_
#define VAQ_VIDEO_SEQUENCE_OPS_H_

#include <cstdint>

#include "common/interval.h"
#include "video/layout.h"

namespace vaq {

// Drops sequences shorter than `min_clips`.
IntervalSet DropShortSequences(const IntervalSet& sequences,
                               int64_t min_clips);

// Bridges gaps of at most `max_gap_clips` between consecutive sequences
// (morphological closing at clip granularity); a dropout of a clip or two
// inside one real event no longer splits it.
IntervalSet MergeGaps(const IntervalSet& sequences, int64_t max_gap_clips);

// Extends every sequence by `pad_clips` on each side (clamped to
// [0, num_clips)), merging any sequences that come to touch. Useful to
// hand a viewer some context around each hit.
IntervalSet PadSequences(const IntervalSet& sequences, int64_t pad_clips,
                         int64_t num_clips);

// Keeps only the parts of sequences that lie within the clip window
// [window.lo, window.hi].
IntervalSet ClampToWindow(const IntervalSet& sequences,
                          const Interval& window);

// Converts a clip-granularity sequence set to inclusive second ranges
// under `layout` at `fps` frames per second.
struct TimeRange {
  double begin_seconds = 0;
  double end_seconds = 0;
};
std::vector<TimeRange> ToTimeRanges(const IntervalSet& sequences,
                                    const VideoLayout& layout, double fps);

}  // namespace vaq

#endif  // VAQ_VIDEO_SEQUENCE_OPS_H_
