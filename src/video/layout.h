// The frame / shot / clip hierarchy of §2.
//
// A video is a sequence of frames. A *shot* is a fixed-length run of
// consecutive frames (the input unit of action recognition; typical length
// 10-30 frames). A *clip* is a fixed-length run of consecutive shots (the
// paper's tunable granularity; object events are counted per frame within a
// clip, action events per shot). A *sequence* — the query result unit — is a
// run of consecutive clips, represented with `Interval`/`IntervalSet`.
//
// `VideoLayout` fixes the shot and clip lengths and provides all index
// arithmetic between the three granularities. A trailing partial clip/shot
// is retained (its frame range is simply shorter).
#ifndef VAQ_VIDEO_LAYOUT_H_
#define VAQ_VIDEO_LAYOUT_H_

#include <cstdint>
#include <string>

#include "common/interval.h"
#include "common/logging.h"
#include "common/status.h"

namespace vaq {

// Index aliases; all zero-based.
using FrameIndex = int64_t;
using ShotIndex = int64_t;
using ClipIndex = int64_t;

// Fixed segmentation parameters of one video.
class VideoLayout {
 public:
  // `frames_per_shot` and `shots_per_clip` must be positive;
  // `num_frames` must be non-negative.
  VideoLayout(int64_t num_frames, int32_t frames_per_shot,
              int32_t shots_per_clip)
      : num_frames_(num_frames),
        frames_per_shot_(frames_per_shot),
        shots_per_clip_(shots_per_clip) {
    VAQ_CHECK_GE(num_frames, 0);
    VAQ_CHECK_GT(frames_per_shot, 0);
    VAQ_CHECK_GT(shots_per_clip, 0);
  }

  // Validating factory for untrusted inputs.
  static StatusOr<VideoLayout> Make(int64_t num_frames,
                                    int32_t frames_per_shot,
                                    int32_t shots_per_clip);

  int64_t num_frames() const { return num_frames_; }
  int32_t frames_per_shot() const { return frames_per_shot_; }
  int32_t shots_per_clip() const { return shots_per_clip_; }
  int64_t frames_per_clip() const {
    return static_cast<int64_t>(frames_per_shot_) * shots_per_clip_;
  }

  // Counts include a trailing partial shot/clip, if any.
  int64_t NumShots() const {
    return CeilDiv(num_frames_, frames_per_shot_);
  }
  int64_t NumClips() const {
    return CeilDiv(num_frames_, frames_per_clip());
  }

  ShotIndex FrameToShot(FrameIndex frame) const {
    CheckFrame(frame);
    return frame / frames_per_shot_;
  }
  ClipIndex FrameToClip(FrameIndex frame) const {
    CheckFrame(frame);
    return frame / frames_per_clip();
  }
  ClipIndex ShotToClip(ShotIndex shot) const {
    CheckShot(shot);
    return shot / shots_per_clip_;
  }

  // Inclusive frame range covered by a shot (trailing shot may be short).
  Interval ShotFrameRange(ShotIndex shot) const {
    CheckShot(shot);
    const int64_t lo = shot * frames_per_shot_;
    const int64_t hi =
        std::min<int64_t>(lo + frames_per_shot_ - 1, num_frames_ - 1);
    return Interval(lo, hi);
  }

  // Inclusive frame range covered by a clip.
  Interval ClipFrameRange(ClipIndex clip) const {
    CheckClip(clip);
    const int64_t lo = clip * frames_per_clip();
    const int64_t hi =
        std::min<int64_t>(lo + frames_per_clip() - 1, num_frames_ - 1);
    return Interval(lo, hi);
  }

  // Inclusive shot range covered by a clip.
  Interval ClipShotRange(ClipIndex clip) const {
    CheckClip(clip);
    const int64_t lo = clip * shots_per_clip_;
    const int64_t hi =
        std::min<int64_t>(lo + shots_per_clip_ - 1, NumShots() - 1);
    return Interval(lo, hi);
  }

  // Converts a frame-level interval set to the clip-level set of clips with
  // at least one covered frame (used to project ground truth to clips).
  IntervalSet FramesToClips(const IntervalSet& frames) const;

  // Converts a clip-level interval set to the frame-level set it covers.
  IntervalSet ClipsToFrames(const IntervalSet& clips) const;

  friend bool operator==(const VideoLayout& a, const VideoLayout& b) {
    return a.num_frames_ == b.num_frames_ &&
           a.frames_per_shot_ == b.frames_per_shot_ &&
           a.shots_per_clip_ == b.shots_per_clip_;
  }

  std::string ToString() const;

 private:
  static int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

  void CheckFrame(FrameIndex frame) const {
    VAQ_CHECK_GE(frame, 0);
    VAQ_CHECK_LT(frame, num_frames_);
  }
  void CheckShot(ShotIndex shot) const {
    VAQ_CHECK_GE(shot, 0);
    VAQ_CHECK_LT(shot, NumShots());
  }
  void CheckClip(ClipIndex clip) const {
    VAQ_CHECK_GE(clip, 0);
    VAQ_CHECK_LT(clip, NumClips());
  }

  int64_t num_frames_;
  int32_t frames_per_shot_;
  int32_t shots_per_clip_;
};

}  // namespace vaq

#endif  // VAQ_VIDEO_LAYOUT_H_
