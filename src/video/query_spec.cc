#include "video/query_spec.h"

#include <sstream>

namespace vaq {

StatusOr<QuerySpec> QuerySpec::FromNames(
    const Vocabulary& vocab, const std::string& action_name,
    const std::vector<std::string>& object_names) {
  QuerySpec spec;
  if (!action_name.empty()) {
    VAQ_ASSIGN_OR_RETURN(spec.action, vocab.GetActionType(action_name));
  }
  for (const std::string& name : object_names) {
    VAQ_ASSIGN_OR_RETURN(ObjectTypeId id, vocab.GetObjectType(name));
    spec.objects.push_back(id);
  }
  if (!spec.has_action() && spec.objects.empty()) {
    return Status::InvalidArgument("query has no predicates");
  }
  return spec;
}

std::string QuerySpec::ToString(const Vocabulary& vocab) const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  if (has_action()) {
    os << "a=" << vocab.ActionTypeName(action);
    first = false;
  }
  for (size_t i = 0; i < objects.size(); ++i) {
    if (!first) os << "; ";
    os << "o" << (i + 1) << "=" << vocab.ObjectTypeName(objects[i]);
    first = false;
  }
  os << "}";
  return os.str();
}

}  // namespace vaq
