// Queries in conjunctive normal form (CNF).
//
// The paper's core query model is a conjunction of an action and object
// predicates (QuerySpec), but footnotes 3-4 of §2 sketch the general
// case: multiple actions combined conjunctively, and arbitrary
// disjunctions handled by transforming the predicate into CNF and
// evaluating each clause's indicator per clip. `CnfQuery` implements that
// general form: a conjunction of clauses, each clause a disjunction of
// literals, each literal the presence of one object type or one action
// type.
//
// A plain conjunctive QuerySpec corresponds to the CNF in which every
// clause is a single literal.
#ifndef VAQ_VIDEO_CNF_QUERY_H_
#define VAQ_VIDEO_CNF_QUERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "video/query_spec.h"
#include "video/vocabulary.h"

namespace vaq {

// One predicate: the presence of an object type (frame granularity) or an
// action type (shot granularity).
struct Literal {
  enum class Kind { kObject, kAction };
  Kind kind = Kind::kObject;
  int32_t type = kInvalidTypeId;  // ObjectTypeId or ActionTypeId.

  static Literal Object(ObjectTypeId id) {
    return Literal{Kind::kObject, id};
  }
  static Literal Action(ActionTypeId id) {
    return Literal{Kind::kAction, id};
  }

  friend bool operator==(const Literal& a, const Literal& b) {
    return a.kind == b.kind && a.type == b.type;
  }
};

// A disjunction of literals; satisfied on a clip when any literal's
// indicator fires.
struct Clause {
  std::vector<Literal> literals;
};

// A conjunction of clauses.
struct CnfQuery {
  std::vector<Clause> clauses;

  // Lifts a conjunctive query: each predicate becomes a one-literal
  // clause, in the QuerySpec's evaluation order (objects first, then the
  // action, matching Algorithm 2).
  static CnfQuery FromConjunctive(const QuerySpec& spec);

  // Builds from names: each inner vector is one clause; entries are
  // "obj:<name>" or "act:<name>".
  static StatusOr<CnfQuery> FromNames(
      const Vocabulary& vocab,
      const std::vector<std::vector<std::string>>& clauses);

  // Distinct literals across all clauses, in first-appearance order.
  std::vector<Literal> DistinctLiterals() const;

  bool empty() const { return clauses.empty(); }
  int num_clauses() const { return static_cast<int>(clauses.size()); }

  std::string ToString(const Vocabulary& vocab) const;
};

}  // namespace vaq

#endif  // VAQ_VIDEO_CNF_QUERY_H_
