#include "video/cnf_query.h"

#include <algorithm>
#include <sstream>

namespace vaq {

CnfQuery CnfQuery::FromConjunctive(const QuerySpec& spec) {
  CnfQuery query;
  for (ObjectTypeId type : spec.objects) {
    query.clauses.push_back(Clause{{Literal::Object(type)}});
  }
  if (spec.has_action()) {
    query.clauses.push_back(Clause{{Literal::Action(spec.action)}});
  }
  return query;
}

StatusOr<CnfQuery> CnfQuery::FromNames(
    const Vocabulary& vocab,
    const std::vector<std::vector<std::string>>& clauses) {
  CnfQuery query;
  for (const std::vector<std::string>& clause_names : clauses) {
    Clause clause;
    for (const std::string& name : clause_names) {
      if (name.rfind("obj:", 0) == 0) {
        VAQ_ASSIGN_OR_RETURN(ObjectTypeId id,
                             vocab.GetObjectType(name.substr(4)));
        clause.literals.push_back(Literal::Object(id));
      } else if (name.rfind("act:", 0) == 0) {
        VAQ_ASSIGN_OR_RETURN(ActionTypeId id,
                             vocab.GetActionType(name.substr(4)));
        clause.literals.push_back(Literal::Action(id));
      } else {
        return Status::InvalidArgument(
            "literal must start with obj: or act:, got " + name);
      }
    }
    if (clause.literals.empty()) {
      return Status::InvalidArgument("empty clause");
    }
    query.clauses.push_back(std::move(clause));
  }
  if (query.clauses.empty()) {
    return Status::InvalidArgument("query has no clauses");
  }
  return query;
}

std::vector<Literal> CnfQuery::DistinctLiterals() const {
  std::vector<Literal> out;
  for (const Clause& clause : clauses) {
    for (const Literal& literal : clause.literals) {
      if (std::find(out.begin(), out.end(), literal) == out.end()) {
        out.push_back(literal);
      }
    }
  }
  return out;
}

std::string CnfQuery::ToString(const Vocabulary& vocab) const {
  std::ostringstream os;
  for (size_t c = 0; c < clauses.size(); ++c) {
    if (c > 0) os << " AND ";
    const bool parens = clauses[c].literals.size() > 1;
    if (parens) os << "(";
    for (size_t l = 0; l < clauses[c].literals.size(); ++l) {
      if (l > 0) os << " OR ";
      const Literal& literal = clauses[c].literals[l];
      if (literal.kind == Literal::Kind::kObject) {
        os << "obj=" << vocab.ObjectTypeName(literal.type);
      } else {
        os << "act=" << vocab.ActionTypeName(literal.type);
      }
    }
    if (parens) os << ")";
  }
  return os.str();
}

}  // namespace vaq
