// Label vocabulary: the universes O (object types) and A (action types).
//
// Object types are what the deployed object detector can recognize (§2,
// e.g. COCO classes for Mask R-CNN); action types are what the action
// recognizer is trained on (e.g. Kinetics categories for I3D). The
// vocabulary maps names to dense integer ids used everywhere else.
#ifndef VAQ_VIDEO_VOCABULARY_H_
#define VAQ_VIDEO_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace vaq {

// Dense id of an object type within a Vocabulary.
using ObjectTypeId = int32_t;
// Dense id of an action type within a Vocabulary.
using ActionTypeId = int32_t;

inline constexpr int32_t kInvalidTypeId = -1;

// Registry of object and action type names. Ids are assigned densely in
// registration order and are stable for the lifetime of the vocabulary.
class Vocabulary {
 public:
  Vocabulary() = default;

  // Registers (or finds) an object type by name; returns its id.
  ObjectTypeId AddObjectType(std::string_view name);
  // Registers (or finds) an action type by name; returns its id.
  ActionTypeId AddActionType(std::string_view name);

  // Lookup by name; kInvalidTypeId when absent.
  ObjectTypeId FindObjectType(std::string_view name) const;
  ActionTypeId FindActionType(std::string_view name) const;

  // Lookup by name with a Status error when absent.
  StatusOr<ObjectTypeId> GetObjectType(std::string_view name) const;
  StatusOr<ActionTypeId> GetActionType(std::string_view name) const;

  const std::string& ObjectTypeName(ObjectTypeId id) const;
  const std::string& ActionTypeName(ActionTypeId id) const;

  int32_t num_object_types() const {
    return static_cast<int32_t>(object_names_.size());
  }
  int32_t num_action_types() const {
    return static_cast<int32_t>(action_names_.size());
  }

 private:
  std::vector<std::string> object_names_;
  std::vector<std::string> action_names_;
  std::unordered_map<std::string, ObjectTypeId> object_ids_;
  std::unordered_map<std::string, ActionTypeId> action_ids_;
};

}  // namespace vaq

#endif  // VAQ_VIDEO_VOCABULARY_H_
