#include "video/layout.h"

#include <algorithm>
#include <sstream>

namespace vaq {

StatusOr<VideoLayout> VideoLayout::Make(int64_t num_frames,
                                        int32_t frames_per_shot,
                                        int32_t shots_per_clip) {
  if (num_frames < 0) {
    return Status::InvalidArgument("num_frames must be non-negative");
  }
  if (frames_per_shot <= 0) {
    return Status::InvalidArgument("frames_per_shot must be positive");
  }
  if (shots_per_clip <= 0) {
    return Status::InvalidArgument("shots_per_clip must be positive");
  }
  return VideoLayout(num_frames, frames_per_shot, shots_per_clip);
}

IntervalSet VideoLayout::FramesToClips(const IntervalSet& frames) const {
  IntervalSet clips;
  const int64_t fpc = frames_per_clip();
  for (const Interval& iv : frames.intervals()) {
    if (iv.empty()) continue;
    const int64_t lo = std::clamp<int64_t>(iv.lo, 0, num_frames_ - 1);
    const int64_t hi = std::clamp<int64_t>(iv.hi, 0, num_frames_ - 1);
    clips.Add(Interval(lo / fpc, hi / fpc));
  }
  return clips;
}

IntervalSet VideoLayout::ClipsToFrames(const IntervalSet& clips) const {
  IntervalSet frames;
  for (const Interval& iv : clips.intervals()) {
    if (iv.empty()) continue;
    frames.Add(Interval(ClipFrameRange(iv.lo).lo, ClipFrameRange(iv.hi).hi));
  }
  return frames;
}

std::string VideoLayout::ToString() const {
  std::ostringstream os;
  os << "VideoLayout{frames=" << num_frames_
     << ", frames_per_shot=" << frames_per_shot_
     << ", shots_per_clip=" << shots_per_clip_ << "}";
  return os.str();
}

}  // namespace vaq
