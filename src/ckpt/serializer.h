// Checkpoint framing layer (DESIGN.md §10).
//
// A checkpoint *blob* is a fixed header (magic + format version) followed
// by a sequence of tagged, length-prefixed, individually checksummed
// records:
//
//   blob   := magic:u64 version:u32 record*
//   record := tag:u32 length:u32 payload:length crc:u64
//
// where crc is the FNV-1a 64-bit hash of tag||length||payload — the same
// checksum scheme storage::PagedTable uses for its integrity pages. All
// integers are little-endian regardless of host, so blobs are portable
// and the golden-file test (tests/ckpt_golden_test.cc) pins the byte
// layout.
//
// Forward compatibility: readers skip records whose tag they do not
// recognise (the checksum is still verified), so a newer writer may add
// record types without breaking an older reader of the same format
// version. Removing or re-encoding an existing record type requires a
// kFormatVersion bump.
//
// A write-ahead log reuses the *record* framing without the blob header:
// records are appended to a bare byte stream, and a torn tail (partial
// final record after a crash) parses as a clean truncation, not an
// error. See AppendRecord / ReadRecord.
#ifndef VAQ_CKPT_SERIALIZER_H_
#define VAQ_CKPT_SERIALIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace vaq {
namespace ckpt {

// Bump when an existing record encoding changes incompatibly.
inline constexpr uint32_t kFormatVersion = 1;

// "VAQCKPT\x01" little-endian.
inline constexpr uint64_t kBlobMagic = 0x0154504b43514156ULL;

// FNV-1a 64-bit, identical to the storage::PagedTable page checksum.
uint64_t Fnv1a64(const char* data, size_t size);

// Field-level payload writer: fixed-width little-endian scalars plus
// length-prefixed strings. Payloads carry no per-field tags; each record
// tag implies its payload schema (append-only within a format version).
class Payload {
 public:
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v);
  void PutF64(double v);  // IEEE-754 bit pattern; round-trips exactly.
  void PutBool(bool v);
  void PutString(std::string_view v);  // u32 length + bytes

  const std::string& data() const { return data_; }

 private:
  std::string data_;
};

// Mirror of Payload. Every getter fails with kCorruption when the
// payload is exhausted or a length prefix overruns it.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  Status GetU32(uint32_t* out);
  Status GetU64(uint64_t* out);
  Status GetI64(int64_t* out);
  Status GetF64(double* out);
  Status GetBool(bool* out);
  Status GetString(std::string* out);

  size_t remaining() const { return data_.size() - offset_; }

 private:
  std::string_view data_;
  size_t offset_ = 0;
};

struct Record {
  uint32_t tag = 0;
  std::string payload;
};

// Appends one framed record (tag, length, payload, checksum) to *out.
void AppendRecord(std::string* out, uint32_t tag, std::string_view payload);

// Parses one record at *offset, advancing it past the record. Returns
// kOutOfRange at a clean end of input (*offset == bytes.size()),
// kCorruption on a bad checksum, and kIoError on a torn frame (fewer
// bytes remain than the frame claims — the WAL tail after a crash).
Status ReadRecord(std::string_view bytes, size_t* offset, Record* out);

// Blob writer: header first, then AppendRecord per record.
class Serializer {
 public:
  Serializer();

  void Append(uint32_t tag, const Payload& payload) {
    AppendRecord(&blob_, tag, payload.data());
  }
  void Append(uint32_t tag, std::string_view payload) {
    AppendRecord(&blob_, tag, payload);
  }

  const std::string& blob() const { return blob_; }

 private:
  std::string blob_;
};

// Blob reader. Open() validates the header and rejects blobs written by
// a *newer* format version (kUnimplemented); older versions are read
// under this version's record schemas (append-only evolution).
class Deserializer {
 public:
  static StatusOr<Deserializer> Open(std::string_view blob);

  uint32_t version() const { return version_; }

  // Next record, in blob order. kOutOfRange at the clean end; any
  // damage (bad frame, bad checksum) is an error — snapshots, unlike
  // WAL tails, must be intact end to end.
  Status Next(Record* out);

 private:
  Deserializer(std::string_view blob, size_t offset, uint32_t version)
      : blob_(blob), offset_(offset), version_(version) {}

  std::string_view blob_;
  size_t offset_ = 0;
  uint32_t version_ = 0;
};

// Parses a full snapshot blob: header check plus every record checksum.
// The cheap way for recovery to decide whether a snapshot is usable
// before mutating any engine state.
StatusOr<std::vector<Record>> ParseBlob(std::string_view blob);

}  // namespace ckpt
}  // namespace vaq

#endif  // VAQ_CKPT_SERIALIZER_H_
