#include "ckpt/serializer.h"

#include <cstring>

namespace vaq {
namespace ckpt {

namespace {

// Explicit little-endian encoding keeps blobs byte-stable across hosts
// (and keeps the golden file honest even if the build moves).
void PutLe32(std::string* out, uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>((v >> 8) & 0xff);
  b[2] = static_cast<char>((v >> 16) & 0xff);
  b[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(b, 4);
}

void PutLe64(std::string* out, uint64_t v) {
  PutLe32(out, static_cast<uint32_t>(v & 0xffffffffULL));
  PutLe32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetLe32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

uint64_t GetLe64(const char* p) {
  return static_cast<uint64_t>(GetLe32(p)) |
         static_cast<uint64_t>(GetLe32(p + 4)) << 32;
}

}  // namespace

uint64_t Fnv1a64(const char* data, size_t size) {
  uint64_t hash = 14695981039346656037ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 1099511628211ULL;
  }
  return hash;
}

void Payload::PutU32(uint32_t v) { PutLe32(&data_, v); }
void Payload::PutU64(uint64_t v) { PutLe64(&data_, v); }
void Payload::PutI64(int64_t v) { PutLe64(&data_, static_cast<uint64_t>(v)); }

void Payload::PutF64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutLe64(&data_, bits);
}

void Payload::PutBool(bool v) { data_.push_back(v ? '\1' : '\0'); }

void Payload::PutString(std::string_view v) {
  PutLe32(&data_, static_cast<uint32_t>(v.size()));
  data_.append(v.data(), v.size());
}

Status PayloadReader::GetU32(uint32_t* out) {
  if (remaining() < 4) return Status::Corruption("payload underrun (u32)");
  *out = GetLe32(data_.data() + offset_);
  offset_ += 4;
  return Status::OK();
}

Status PayloadReader::GetU64(uint64_t* out) {
  if (remaining() < 8) return Status::Corruption("payload underrun (u64)");
  *out = GetLe64(data_.data() + offset_);
  offset_ += 8;
  return Status::OK();
}

Status PayloadReader::GetI64(int64_t* out) {
  uint64_t v = 0;
  Status s = GetU64(&v);
  if (!s.ok()) return s;
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status PayloadReader::GetF64(double* out) {
  uint64_t bits = 0;
  Status s = GetU64(&bits);
  if (!s.ok()) return s;
  std::memcpy(out, &bits, sizeof(*out));
  return Status::OK();
}

Status PayloadReader::GetBool(bool* out) {
  if (remaining() < 1) return Status::Corruption("payload underrun (bool)");
  *out = data_[offset_++] != '\0';
  return Status::OK();
}

Status PayloadReader::GetString(std::string* out) {
  uint32_t size = 0;
  Status s = GetU32(&size);
  if (!s.ok()) return s;
  if (remaining() < size) {
    return Status::Corruption("payload underrun (string)");
  }
  out->assign(data_.data() + offset_, size);
  offset_ += size;
  return Status::OK();
}

void AppendRecord(std::string* out, uint32_t tag, std::string_view payload) {
  const size_t frame_start = out->size();
  PutLe32(out, tag);
  PutLe32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload.data(), payload.size());
  const uint64_t crc = Fnv1a64(out->data() + frame_start,
                               out->size() - frame_start);
  PutLe64(out, crc);
}

Status ReadRecord(std::string_view bytes, size_t* offset, Record* out) {
  const size_t start = *offset;
  if (start == bytes.size()) return Status::OutOfRange("end of records");
  if (bytes.size() - start < 8) return Status::IoError("torn record header");
  const uint32_t tag = GetLe32(bytes.data() + start);
  const uint32_t length = GetLe32(bytes.data() + start + 4);
  if (bytes.size() - start - 8 < static_cast<size_t>(length) + 8) {
    return Status::IoError("torn record body");
  }
  const uint64_t want = GetLe64(bytes.data() + start + 8 + length);
  const uint64_t got = Fnv1a64(bytes.data() + start, 8 + length);
  if (want != got) return Status::Corruption("record checksum mismatch");
  out->tag = tag;
  out->payload.assign(bytes.data() + start + 8, length);
  *offset = start + 8 + length + 8;
  return Status::OK();
}

Serializer::Serializer() {
  PutLe64(&blob_, kBlobMagic);
  PutLe32(&blob_, kFormatVersion);
}

StatusOr<Deserializer> Deserializer::Open(std::string_view blob) {
  if (blob.size() < 12) return Status::Corruption("checkpoint header torn");
  if (GetLe64(blob.data()) != kBlobMagic) {
    return Status::Corruption("bad checkpoint magic");
  }
  const uint32_t version = GetLe32(blob.data() + 8);
  if (version > kFormatVersion) {
    return Status::Unimplemented("checkpoint format version " +
                                 std::to_string(version) +
                                 " is newer than this build");
  }
  return Deserializer(blob, /*offset=*/12, version);
}

Status Deserializer::Next(Record* out) {
  Status s = ReadRecord(blob_, &offset_, out);
  // A torn frame inside a snapshot blob is corruption, not a WAL-style
  // clean truncation.
  if (s.code() == StatusCode::kIoError) {
    return Status::Corruption(s.message());
  }
  return s;
}

StatusOr<std::vector<Record>> ParseBlob(std::string_view blob) {
  auto reader = Deserializer::Open(blob);
  if (!reader.ok()) return reader.status();
  std::vector<Record> records;
  Record record;
  for (;;) {
    Status s = reader.value().Next(&record);
    if (s.code() == StatusCode::kOutOfRange) break;
    if (!s.ok()) return s;
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace ckpt
}  // namespace vaq
