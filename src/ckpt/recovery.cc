#include "ckpt/recovery.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "fault/fault_plan.h"
#include "obs/metrics.h"

namespace vaq {
namespace ckpt {

namespace {

obs::Counter* CorruptCounter() {
  return obs::MetricRegistry::Global().GetCounter("vaq_ckpt_corrupt_total",
                                                  {});
}

}  // namespace

namespace {

std::string SeqName(const char* prefix, int64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%08lld", prefix,
                static_cast<long long>(seq));
  return buf;
}

StatusOr<int64_t> SeqOf(const char* prefix, const std::string& name) {
  const std::string p = prefix;
  if (name.rfind(p, 0) != 0 || name.size() <= p.size()) {
    return Status::InvalidArgument("not a '" + p + "' entry: '" + name +
                                   "'");
  }
  int64_t seq = 0;
  for (size_t i = p.size(); i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return Status::InvalidArgument("not a '" + p + "' entry: '" + name +
                                     "'");
    }
    seq = seq * 10 + (name[i] - '0');
  }
  return seq;
}

}  // namespace

std::string SnapshotName(int64_t seq) { return SeqName(kSnapshotPrefix, seq); }

StatusOr<int64_t> SnapshotSeq(const std::string& name) {
  return SeqOf(kSnapshotPrefix, name);
}

std::string WalName(int64_t seq) { return SeqName(kWalPrefix, seq); }

StatusOr<int64_t> WalSeq(const std::string& name) {
  return SeqOf(kWalPrefix, name);
}

RecoveryDriver::RecoveryDriver(const Store* store,
                               const fault::FaultPlan* plan)
    : store_(store), plan_(plan) {}

StatusOr<std::string> RecoveryDriver::ReadEntry(
    const std::string& name) const {
  auto bytes = store_->Get(name);
  if (!bytes.ok()) return bytes;
  std::string blob = std::move(bytes).value();
  if (plan_ != nullptr && !blob.empty()) {
    const int64_t entry = static_cast<int64_t>(
        Fnv1a64(name.data(), name.size()) >> 1);
    if (plan_->CheckpointCorrupts(entry)) {
      const double pos = plan_->CheckpointCorruptPosition(entry);
      const size_t bit =
          static_cast<size_t>(pos * static_cast<double>(blob.size() * 8));
      blob[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    }
  }
  return blob;
}

StatusOr<RecoveryReport> RecoveryDriver::Run(
    const RecoveryHooks& hooks) const {
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  RecoveryReport report;

  auto names = store_->List();
  if (!names.ok()) return names.status();
  std::vector<std::string> snapshots;
  for (const std::string& name : names.value()) {
    if (SnapshotSeq(name).ok()) snapshots.push_back(name);
  }
  std::sort(snapshots.rbegin(), snapshots.rend());  // Newest first.

  // Newest snapshot that parses clean wins; corrupt ones are counted and
  // skipped. No snapshot at all is a cold start, not an error.
  for (const std::string& name : snapshots) {
    auto blob = ReadEntry(name);
    if (!blob.ok()) return blob.status();
    auto records = ParseBlob(blob.value());
    if (!records.ok()) {
      CorruptCounter()->Increment();
      ++report.snapshots_rejected;
      continue;
    }
    auto reader = Deserializer::Open(blob.value());
    VAQ_RETURN_IF_ERROR(hooks.restore(reader.value().version(),
                                      records.value()));
    report.snapshot = name;
    break;
  }
  if (report.snapshot.empty() && !snapshots.empty() &&
      report.snapshots_rejected ==
          static_cast<int64_t>(snapshots.size())) {
    return Status::Corruption("every checkpoint snapshot is corrupt");
  }

  // WAL replay: segments newer than the restored snapshot, in sequence
  // order (segment wal-K holds the records logged after snapshot K-1, so
  // snap-S needs K > S; a cold start replays everything). Replay stops at
  // the first torn or corrupt record — the tail a crash may leave behind
  // — and everything after it, including later segments, is dropped: once
  // the log is damaged, later records have no trustworthy predecessor.
  int64_t restored_seq = -1;
  if (!report.snapshot.empty()) {
    restored_seq = SnapshotSeq(report.snapshot).value();
  }
  std::vector<std::pair<int64_t, std::string>> segments;
  for (const std::string& name : names.value()) {
    auto seq = WalSeq(name);
    if (seq.ok() && seq.value() > restored_seq) {
      segments.emplace_back(seq.value(), name);
    }
  }
  std::sort(segments.begin(), segments.end());
  bool damaged = false;
  for (const auto& [seq, name] : segments) {
    auto wal = ReadEntry(name);
    if (!wal.ok()) {
      if (wal.status().code() == StatusCode::kNotFound) continue;
      return wal.status();
    }
    const std::string& bytes = wal.value();
    if (damaged) {
      report.wal_bytes_dropped += static_cast<int64_t>(bytes.size());
      continue;
    }
    size_t offset = 0;
    Record record;
    for (;;) {
      const Status s = ReadRecord(bytes, &offset, &record);
      if (s.code() == StatusCode::kOutOfRange) break;
      if (!s.ok()) {
        report.wal_bytes_dropped += static_cast<int64_t>(bytes.size() - offset);
        damaged = true;
        break;
      }
      VAQ_RETURN_IF_ERROR(hooks.replay(record));
      ++report.wal_records;
    }
  }

  registry.GetCounter("vaq_ckpt_wal_records_replayed_total", {})
      ->Increment(report.wal_records);
  registry.GetCounter("vaq_ckpt_recoveries_total", {})->Increment();
  return report;
}

}  // namespace ckpt
}  // namespace vaq
