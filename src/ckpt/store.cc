#include "ckpt/store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

namespace vaq {
namespace ckpt {

namespace fs = std::filesystem;

bool ValidEntryName(const std::string& name) {
  if (name.empty() || name.size() > 255) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return name != "." && name != "..";
}

namespace {

Status BadName(const std::string& name) {
  return Status::InvalidArgument("bad checkpoint entry name: '" + name + "'");
}

}  // namespace

Status MemStore::Put(const std::string& name, const std::string& bytes) {
  if (!ValidEntryName(name)) return BadName(name);
  entries_[name] = bytes;
  return Status::OK();
}

StatusOr<std::string> MemStore::Get(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no checkpoint entry '" + name + "'");
  }
  return it->second;
}

Status MemStore::Append(const std::string& name, const std::string& bytes) {
  if (!ValidEntryName(name)) return BadName(name);
  entries_[name] += bytes;
  return Status::OK();
}

Status MemStore::Delete(const std::string& name) {
  entries_.erase(name);
  return Status::OK();
}

StatusOr<std::vector<std::string>> MemStore::List() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, bytes] : entries_) names.push_back(name);
  return names;  // std::map iterates sorted.
}

Status DirStore::EnsureDir() const {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return Status::IoError("cannot create checkpoint dir '" + dir_ +
                           "': " + ec.message());
  }
  return Status::OK();
}

std::string DirStore::PathFor(const std::string& name) const {
  return (fs::path(dir_) / name).string();
}

Status DirStore::Put(const std::string& name, const std::string& bytes) {
  if (!ValidEntryName(name)) return BadName(name);
  VAQ_RETURN_IF_ERROR(EnsureDir());
  // Write-then-rename so a crash mid-Put never leaves a half-written
  // snapshot under its final name (recovery would otherwise have to
  // reject it by checksum; this keeps the common case clean).
  // '#' is not a ValidEntryName character, so leftover temporaries from
  // a crash mid-Put never show up in List().
  const std::string tmp = PathFor("#" + name);
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + tmp + "' for write");
  }
  const size_t written = bytes.empty()
                             ? 0
                             : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool ok = written == bytes.size() && std::fclose(f) == 0;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IoError("short write to '" + tmp + "'");
  }
  std::error_code ec;
  fs::rename(tmp, PathFor(name), ec);
  if (ec) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename '" + tmp + "': " + ec.message());
  }
  return Status::OK();
}

StatusOr<std::string> DirStore::Get(const std::string& name) const {
  if (!ValidEntryName(name)) return BadName(name);
  std::FILE* f = std::fopen(PathFor(name).c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("no checkpoint entry '" + name + "'");
  }
  std::string bytes;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return Status::IoError("read error on checkpoint entry '" + name + "'");
  }
  return bytes;
}

Status DirStore::Append(const std::string& name, const std::string& bytes) {
  if (!ValidEntryName(name)) return BadName(name);
  VAQ_RETURN_IF_ERROR(EnsureDir());
  std::FILE* f = std::fopen(PathFor(name).c_str(), "ab");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + PathFor(name) +
                           "' for append");
  }
  const size_t written = bytes.empty()
                             ? 0
                             : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool ok = written == bytes.size() && std::fclose(f) == 0;
  if (!ok) {
    return Status::IoError("short append to '" + PathFor(name) + "'");
  }
  return Status::OK();
}

Status DirStore::Delete(const std::string& name) {
  if (!ValidEntryName(name)) return BadName(name);
  std::error_code ec;
  fs::remove(PathFor(name), ec);  // Missing file: ec stays clear.
  if (ec) {
    return Status::IoError("cannot delete checkpoint entry '" + name +
                           "': " + ec.message());
  }
  return Status::OK();
}

StatusOr<std::vector<std::string>> DirStore::List() const {
  std::vector<std::string> names;
  std::error_code ec;
  fs::directory_iterator it(dir_, ec);
  if (ec) return names;  // No directory yet: an empty store.
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (ValidEntryName(name)) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

Status SyncStores(const Store& from, Store* to, int64_t* bytes_shipped) {
  int64_t shipped = 0;
  VAQ_ASSIGN_OR_RETURN(std::vector<std::string> src_names, from.List());
  VAQ_ASSIGN_OR_RETURN(std::vector<std::string> dst_names, to->List());
  for (const std::string& name : src_names) {
    VAQ_ASSIGN_OR_RETURN(std::string bytes, from.Get(name));
    StatusOr<std::string> existing = to->Get(name);
    if (existing.ok() && existing.value() == bytes) continue;
    VAQ_RETURN_IF_ERROR(to->Put(name, bytes));
    shipped += static_cast<int64_t>(bytes.size());
  }
  for (const std::string& name : dst_names) {
    if (!std::binary_search(src_names.begin(), src_names.end(), name)) {
      VAQ_RETURN_IF_ERROR(to->Delete(name));
    }
  }
  if (bytes_shipped != nullptr) *bytes_shipped = shipped;
  return Status::OK();
}

Status CorruptEntryByte(Store* store, const std::string& name,
                        int64_t byte_index, uint8_t mask) {
  if (mask == 0) {
    return Status::InvalidArgument("corrupt: mask must flip at least one bit");
  }
  VAQ_ASSIGN_OR_RETURN(std::string bytes, store->Get(name));
  if (bytes.empty()) {
    return Status::InvalidArgument("corrupt: entry '" + name + "' is empty");
  }
  const size_t size = bytes.size();
  size_t index = static_cast<size_t>(byte_index) % size;
  bytes[index] = static_cast<char>(static_cast<uint8_t>(bytes[index]) ^ mask);
  return store->Put(name, bytes);
}

}  // namespace ckpt
}  // namespace vaq
