// Checkpoint stores: named byte blobs with append support.
//
// The durability subsystem needs exactly five operations — Put / Get /
// Append / Delete / List — so `Store` is that, nothing more. `MemStore`
// backs tests and benches; `DirStore` maps entries to files in one flat
// directory for `vaqctl serve --checkpoint-dir`. Entry names are
// restricted to [A-Za-z0-9._-] so a DirStore entry is always a single
// well-formed file name.
//
// Stores are not thread-safe; the serving runtime only touches its store
// from the admission thread (standing-query mode is single-threaded by
// construction, see serve::Server::AdvanceStream).
#ifndef VAQ_CKPT_STORE_H_
#define VAQ_CKPT_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace vaq {
namespace ckpt {

class Store {
 public:
  virtual ~Store() = default;

  // Creates or replaces an entry.
  virtual Status Put(const std::string& name, const std::string& bytes) = 0;
  // kNotFound when the entry does not exist.
  virtual StatusOr<std::string> Get(const std::string& name) const = 0;
  // Appends to an entry, creating it if absent (WAL path).
  virtual Status Append(const std::string& name, const std::string& bytes) = 0;
  // Removing a missing entry is OK (WAL truncation is idempotent).
  virtual Status Delete(const std::string& name) = 0;
  // All entry names, sorted.
  virtual StatusOr<std::vector<std::string>> List() const = 0;
};

// Returns whether `name` is a legal store entry name.
bool ValidEntryName(const std::string& name);

// Makes `to` byte-identical to `from`: copies every entry whose bytes
// differ (or is missing) and deletes entries `from` does not have. This
// is the primitive behind cluster WAL shipping — a follower replica's
// store is synced after each logged operation, and only the changed
// entries (the appended WAL tail, a new snapshot) cost transfer bytes.
// On success `*bytes_shipped` (optional) is the total size of the
// entries that had to be copied.
Status SyncStores(const Store& from, Store* to, int64_t* bytes_shipped);

// XORs `mask` into one byte of an existing entry:
// bytes[byte_index mod size] ^= mask. This is the chaos harness's
// media-corruption event — a deterministic, schedule-placed bit flip
// that RecoveryDriver must detect (checksum mismatch) and survive by
// falling back to the retained predecessor snapshot. kInvalidArgument
// when `mask` is zero (a no-op flip would silently weaken the test) or
// the entry is empty; kNotFound when it does not exist.
Status CorruptEntryByte(Store* store, const std::string& name,
                        int64_t byte_index, uint8_t mask);

class MemStore : public Store {
 public:
  Status Put(const std::string& name, const std::string& bytes) override;
  StatusOr<std::string> Get(const std::string& name) const override;
  Status Append(const std::string& name, const std::string& bytes) override;
  Status Delete(const std::string& name) override;
  StatusOr<std::vector<std::string>> List() const override;

 private:
  std::map<std::string, std::string> entries_;
};

// One file per entry under `dir` (created on first use).
class DirStore : public Store {
 public:
  explicit DirStore(std::string dir) : dir_(std::move(dir)) {}

  Status Put(const std::string& name, const std::string& bytes) override;
  StatusOr<std::string> Get(const std::string& name) const override;
  Status Append(const std::string& name, const std::string& bytes) override;
  Status Delete(const std::string& name) override;
  StatusOr<std::vector<std::string>> List() const override;

  const std::string& dir() const { return dir_; }

 private:
  Status EnsureDir() const;
  std::string PathFor(const std::string& name) const;

  std::string dir_;
};

}  // namespace ckpt
}  // namespace vaq

#endif  // VAQ_CKPT_STORE_H_
