// Checkpoint encoding of obs metric snapshots.
//
// A snapshot blob stores one record per registered instrument so that
// recovery can rebuild the registry to the exact values it held at
// snapshot time (byte-identical exports are the recovery invariant, and
// counters incremented by the live run between snapshot and crash are
// re-derived by WAL replay on top of these restored bases).
#ifndef VAQ_CKPT_METRICS_IO_H_
#define VAQ_CKPT_METRICS_IO_H_

#include "ckpt/serializer.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace vaq {
namespace ckpt {

// One instrument -> one payload (name, labels, kind, values).
void EncodeMetricEntry(const obs::Snapshot::Entry& entry, Payload* out);
Status DecodeMetricEntry(PayloadReader* in, obs::Snapshot::Entry* out);

}  // namespace ckpt
}  // namespace vaq

#endif  // VAQ_CKPT_METRICS_IO_H_
