#include "ckpt/metrics_io.h"

namespace vaq {
namespace ckpt {

void EncodeMetricEntry(const obs::Snapshot::Entry& entry, Payload* out) {
  out->PutString(entry.name);
  out->PutU32(static_cast<uint32_t>(entry.kind));
  out->PutU32(static_cast<uint32_t>(entry.labels.size()));
  for (const auto& [key, value] : entry.labels) {
    out->PutString(key);
    out->PutString(value);
  }
  switch (entry.kind) {
    case obs::Snapshot::Kind::kCounter:
      out->PutI64(entry.counter_value);
      break;
    case obs::Snapshot::Kind::kGauge:
      out->PutF64(entry.gauge_value);
      break;
    case obs::Snapshot::Kind::kHistogram:
      out->PutU32(static_cast<uint32_t>(entry.bounds.size()));
      for (const double b : entry.bounds) out->PutF64(b);
      for (const int64_t c : entry.bucket_counts) out->PutI64(c);
      out->PutI64(entry.hist_count);
      out->PutF64(entry.hist_sum);
      break;
  }
}

Status DecodeMetricEntry(PayloadReader* in, obs::Snapshot::Entry* out) {
  *out = obs::Snapshot::Entry();
  VAQ_RETURN_IF_ERROR(in->GetString(&out->name));
  uint32_t kind = 0;
  VAQ_RETURN_IF_ERROR(in->GetU32(&kind));
  if (kind > static_cast<uint32_t>(obs::Snapshot::Kind::kHistogram)) {
    return Status::Corruption("bad metric kind in checkpoint");
  }
  out->kind = static_cast<obs::Snapshot::Kind>(kind);
  uint32_t n_labels = 0;
  VAQ_RETURN_IF_ERROR(in->GetU32(&n_labels));
  out->labels.reserve(n_labels);
  for (uint32_t i = 0; i < n_labels; ++i) {
    std::string key, value;
    VAQ_RETURN_IF_ERROR(in->GetString(&key));
    VAQ_RETURN_IF_ERROR(in->GetString(&value));
    out->labels.emplace_back(std::move(key), std::move(value));
  }
  switch (out->kind) {
    case obs::Snapshot::Kind::kCounter:
      VAQ_RETURN_IF_ERROR(in->GetI64(&out->counter_value));
      break;
    case obs::Snapshot::Kind::kGauge:
      VAQ_RETURN_IF_ERROR(in->GetF64(&out->gauge_value));
      break;
    case obs::Snapshot::Kind::kHistogram: {
      uint32_t n_bounds = 0;
      VAQ_RETURN_IF_ERROR(in->GetU32(&n_bounds));
      out->bounds.resize(n_bounds);
      for (uint32_t i = 0; i < n_bounds; ++i) {
        VAQ_RETURN_IF_ERROR(in->GetF64(&out->bounds[i]));
      }
      out->bucket_counts.resize(n_bounds + 1);
      for (uint32_t i = 0; i <= n_bounds; ++i) {
        VAQ_RETURN_IF_ERROR(in->GetI64(&out->bucket_counts[i]));
      }
      VAQ_RETURN_IF_ERROR(in->GetI64(&out->hist_count));
      VAQ_RETURN_IF_ERROR(in->GetF64(&out->hist_sum));
      break;
    }
  }
  return Status::OK();
}

}  // namespace ckpt
}  // namespace vaq
