// Crash recovery over a checkpoint store (DESIGN.md §10).
//
// A durable session leaves two kinds of entries in its Store:
//
//   snap-<seq>   full snapshot blobs (Serializer framing), monotone seq
//   wal-<seq>    bare record stream logged *after* snapshot <seq>-1 and
//                up to (and including the trigger of) snapshot <seq>
//
// Segmenting the WAL by snapshot sequence is what makes the corruption
// fallback sound: restoring snap-S replays segments wal-K with K > S, so
// a session that keeps snap-(S-1), snap-S and wal-S can fall back from a
// corrupt snap-S to snap-(S-1) and still reach the same state (stale
// records — positions the snapshot already covers — are the hooks' job
// to skip idempotently).
//
// `RecoveryDriver::Run` restores the newest snapshot that parses clean
// (magic, version, every record checksum), falling back to older ones —
// counting each rejection in `vaq_ckpt_corrupt_total` — and then replays
// the WAL segments after it through the caller's hooks, stopping at the
// first torn or corrupt record (the tail a crash may leave behind). The
// *semantics* of records live entirely in the hooks; the driver only
// owns framing, snapshot selection and fault-plan-injected read
// corruption.
//
// Recovery invariants (asserted by tests/ckpt_recovery_test.cc):
//  1. restore(snapshot) + replay(wal suffix) is byte-identical — results
//     and logical metrics — to the uninterrupted run, at any crash point;
//  2. a corrupt newest snapshot degrades to the previous one, never to
//     an error, as long as one valid snapshot (or cold start) remains;
//  3. replaying a WAL that predates the snapshot is harmless (hooks see
//     the records; stale ones must be idempotent to skip by position).
#ifndef VAQ_CKPT_RECOVERY_H_
#define VAQ_CKPT_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ckpt/serializer.h"
#include "ckpt/store.h"
#include "common/status.h"

namespace vaq {
namespace fault {
class FaultPlan;
}  // namespace fault

namespace ckpt {

inline constexpr char kSnapshotPrefix[] = "snap-";
inline constexpr char kWalPrefix[] = "wal-";

// "snap-00000042" — zero-padded so List() order is seq order.
std::string SnapshotName(int64_t seq);
// kInvalidArgument when `name` is not a snapshot entry name.
StatusOr<int64_t> SnapshotSeq(const std::string& name);
// "wal-00000042" and its inverse, same conventions.
std::string WalName(int64_t seq);
StatusOr<int64_t> WalSeq(const std::string& name);

struct RecoveryHooks {
  // Applies a fully validated snapshot (records in blob order).
  // `version` is the blob's format version.
  std::function<Status(uint32_t version, const std::vector<Record>& records)>
      restore;
  // Applies one WAL record. Called after restore, in log order.
  std::function<Status(const Record& record)> replay;
};

struct RecoveryReport {
  std::string snapshot;            // Entry restored; empty = cold start.
  int64_t snapshots_rejected = 0;  // Corrupt snapshots skipped over.
  int64_t wal_records = 0;         // Records replayed.
  int64_t wal_bytes_dropped = 0;   // Torn/corrupt WAL tail discarded.
};

class RecoveryDriver {
 public:
  // `plan` (optional) injects deterministic read corruption via
  // FaultSpec::checkpoint_corrupt_rate; neither pointer is owned.
  explicit RecoveryDriver(const Store* store,
                          const fault::FaultPlan* plan = nullptr);

  // Restore-then-replay. Fails only when every snapshot is corrupt and
  // there is no cold-start path left, or a hook fails; an empty store
  // recovers to a cold start with an empty report.
  StatusOr<RecoveryReport> Run(const RecoveryHooks& hooks) const;

  // Reads entry `name`, applying any fault-plan corruption — the view
  // recovery itself sees. Exposed for the corruption tests.
  StatusOr<std::string> ReadEntry(const std::string& name) const;

 private:
  const Store* store_;
  const fault::FaultPlan* plan_;
};

}  // namespace ckpt
}  // namespace vaq

#endif  // VAQ_CKPT_RECOVERY_H_
