// Deterministic pseudo-random number generation.
//
// Every stochastic component in VAQ (synthetic videos, simulated detectors)
// takes an explicit 64-bit seed and derives its randomness from `Rng`, a
// xoshiro256** engine seeded via SplitMix64. Results are reproducible
// bit-for-bit across platforms; the C++ standard library distributions are
// deliberately avoided because their outputs are implementation-defined.
#ifndef VAQ_COMMON_RNG_H_
#define VAQ_COMMON_RNG_H_

#include <cstdint>
#include <cmath>

#include "common/logging.h"

namespace vaq {

// SplitMix64 step: advances `state` and returns the next 64-bit output.
// Used for seeding and for cheap stateless hashing of stream offsets.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Mixes two 64-bit values into one; used to derive independent sub-seeds
// (e.g. one per object type) from a master seed.
inline uint64_t MixSeed(uint64_t a, uint64_t b) {
  uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return SplitMix64(s);
}

// xoshiro256** generator with distribution helpers.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Reseed(seed); }

  // Re-initializes the state from `seed` via SplitMix64.
  void Reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  // Next raw 64-bit output.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  // Uniform integer in [0, bound). `bound` must be positive. Uses rejection
  // to avoid modulo bias.
  uint64_t UniformInt(uint64_t bound) {
    VAQ_CHECK_GT(bound, 0u);
    const uint64_t threshold = -bound % bound;  // 2^64 mod bound
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    VAQ_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return UniformDouble() < p;
  }

  // Standard normal via Box-Muller (no cached spare: keeps state minimal and
  // reproducible regardless of call interleaving).
  double Normal() {
    double u1 = UniformDouble();
    while (u1 <= 0.0) u1 = UniformDouble();
    const double u2 = UniformDouble();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(6.283185307179586476925286766559 * u2);
  }

  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  // Exponential with rate `lambda` (> 0).
  double Exponential(double lambda) {
    VAQ_CHECK_GT(lambda, 0.0);
    double u = UniformDouble();
    while (u <= 0.0) u = UniformDouble();
    return -std::log(u) / lambda;
  }

  // Gamma(shape, scale) via Marsaglia-Tsang; shape > 0, scale > 0.
  double Gamma(double shape, double scale);

  // Beta(alpha, beta) via two Gamma draws; alpha, beta > 0.
  double Beta(double alpha, double beta);

  // Geometric: number of failures before the first success, p in (0, 1].
  int64_t Geometric(double p);

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace vaq

#endif  // VAQ_COMMON_RNG_H_
