// Error handling primitives for the VAQ library.
//
// The library does not use exceptions (RocksDB/Arrow idiom). Fallible
// operations return `Status`, or `StatusOr<T>` when they also produce a
// value. Both are cheap to move and cheap to test for success.
#ifndef VAQ_COMMON_STATUS_H_
#define VAQ_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace vaq {

// Machine-readable error category carried by a `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kFailedPrecondition,
  kIoError,
  kCorruption,
  kUnimplemented,
  kInternal,
  kUnavailable,        // Transient outage; retrying later may succeed.
  kDeadlineExceeded,   // The operation ran past its time budget.
  kResourceExhausted,  // A quota or capacity limit was hit; shed load.
};

// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

// The result of an operation that can fail.
//
// A default-constructed `Status` is OK. Non-OK statuses carry a code and a
// message. Statuses are value types: copyable, movable, comparable for
// success.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// The result of an operation that either fails or yields a `T`.
//
// Access the value only after checking `ok()`; accessing the value of a
// non-OK result aborts in debug builds and is undefined otherwise.
template <typename T>
class StatusOr {
 public:
  // Implicit conversions mirror absl::StatusOr ergonomics: returning either
  // a `T` or a `Status` from a `StatusOr<T>` function "just works".
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace vaq

// Propagates a non-OK status from the evaluated expression.
#define VAQ_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::vaq::Status _vaq_status = (expr);          \
    if (!_vaq_status.ok()) return _vaq_status;   \
  } while (false)

// Evaluates a StatusOr expression, propagating errors and otherwise binding
// the value to `lhs`. `lhs` may include a declaration, e.g.
//   VAQ_ASSIGN_OR_RETURN(auto table, OpenTable(path));
#define VAQ_ASSIGN_OR_RETURN(lhs, expr)                        \
  VAQ_ASSIGN_OR_RETURN_IMPL_(                                  \
      VAQ_STATUS_CONCAT_(_vaq_statusor, __LINE__), lhs, expr)

#define VAQ_ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                               \
  if (!var.ok()) return var.status();              \
  lhs = std::move(var).value()

#define VAQ_STATUS_CONCAT_(a, b) VAQ_STATUS_CONCAT_IMPL_(a, b)
#define VAQ_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // VAQ_COMMON_STATUS_H_
