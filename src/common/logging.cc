#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace vaq {
namespace internal_logging {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

LogLevel ParseLevel(const char* value, LogLevel fallback) {
  if (value == nullptr) return fallback;
  if (std::strcmp(value, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(value, "warning") == 0 || std::strcmp(value, "warn") == 0) {
    return LogLevel::kWarning;
  }
  if (std::strcmp(value, "error") == 0) return LogLevel::kError;
  if (std::strcmp(value, "fatal") == 0) return LogLevel::kFatal;
  return fallback;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Process-wide sink configuration. Env vars are read once, lazily, so
// tools can still override programmatically before the first log line.
struct SinkConfig {
  SinkConfig() {
    min_level = ParseLevel(std::getenv("VAQ_LOG_LEVEL"), LogLevel::kInfo);
    const char* format = std::getenv("VAQ_LOG_FORMAT");
    json = format != nullptr && std::strcmp(format, "json") == 0;
  }

  std::mutex mu;
  LogLevel min_level;
  bool json;
  std::function<void(const std::string&)> sink;
  std::function<void(int64_t)> suppression_listener;
  int64_t sequence = 0;
};

SinkConfig& Config() {
  static SinkConfig* const config = new SinkConfig();
  return *config;
}

}  // namespace

void SetMinLogLevel(LogLevel level) {
  std::lock_guard<std::mutex> lock(Config().mu);
  Config().min_level = level;
}

LogLevel MinLogLevel() {
  std::lock_guard<std::mutex> lock(Config().mu);
  return Config().min_level;
}

void SetJsonLogging(bool on) {
  std::lock_guard<std::mutex> lock(Config().mu);
  Config().json = on;
}

void SetLogSink(std::function<void(const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(Config().mu);
  Config().sink = std::move(sink);
}

void SetLogSuppressionListener(std::function<void(int64_t)> listener) {
  std::lock_guard<std::mutex> lock(Config().mu);
  Config().suppression_listener = std::move(listener);
}

int64_t RateLimitTick(std::atomic<int64_t>* counter, int64_t every_n) {
  if (every_n <= 1) return 0;
  const int64_t count = counter->fetch_add(1, std::memory_order_relaxed);
  if (count % every_n != 0) {
    SinkConfig& config = Config();
    std::lock_guard<std::mutex> lock(config.mu);
    if (config.suppression_listener) config.suppression_listener(1);
    return -1;
  }
  return count == 0 ? 0 : every_n - 1;
}

void EmitLogLine(LogLevel level, const char* file, int line,
                 const std::string& message) {
  SinkConfig& config = Config();
  {
    std::lock_guard<std::mutex> lock(config.mu);
    // Fatal always emits: the abort diagnostic must not be filterable.
    if (level >= config.min_level || level == LogLevel::kFatal) {
      std::string formatted;
      if (config.json) {
        formatted = "{\"seq\":" + std::to_string(config.sequence++) +
                    ",\"level\":\"" + LevelName(level) + "\",\"file\":\"" +
                    JsonEscape(Basename(file)) +
                    "\",\"line\":" + std::to_string(line) + ",\"msg\":\"" +
                    JsonEscape(message) + "\"}";
      } else {
        ++config.sequence;
        formatted = std::string("[") + LevelName(level) + " " +
                    Basename(file) + ":" + std::to_string(line) + "] " +
                    message;
      }
      if (config.sink) {
        config.sink(formatted);
      } else {
        std::fprintf(stderr, "%s\n", formatted.c_str());
      }
    }
  }
  if (level == LogLevel::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace vaq
