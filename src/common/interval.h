// Closed integer intervals and canonical interval sets.
//
// The paper represents query results ("sequences", §2) as sets of pairs of
// start/end clip identifiers, P = {(c_l, c_r)}. `Interval` models one such
// inclusive pair and `IntervalSet` a canonical (sorted, disjoint,
// non-adjacent) collection. The set operations implement the paper's
// sequence algebra: merging consecutive positive clips (Eq. 4), the ⊗
// intersection of individual sequences (§4.2, Eq. 12) via an interval
// sweep, and IoU used by the evaluation metrics (§5.1).
#ifndef VAQ_COMMON_INTERVAL_H_
#define VAQ_COMMON_INTERVAL_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace vaq {

// A closed interval [lo, hi] of integer identifiers (frames, shots or
// clips). Empty iff lo > hi.
struct Interval {
  int64_t lo = 0;
  int64_t hi = -1;

  Interval() = default;
  Interval(int64_t lo_in, int64_t hi_in) : lo(lo_in), hi(hi_in) {}

  bool empty() const { return lo > hi; }
  // Number of identifiers covered; 0 when empty.
  int64_t length() const { return empty() ? 0 : hi - lo + 1; }
  bool Contains(int64_t x) const { return lo <= x && x <= hi; }
  bool Overlaps(const Interval& other) const {
    return !empty() && !other.empty() && lo <= other.hi && other.lo <= hi;
  }

  friend bool operator==(const Interval& a, const Interval& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }

  std::string ToString() const;
};

std::ostream& operator<<(std::ostream& os, const Interval& iv);

// Intersection over union of two closed intervals; 0 when either is empty
// or they are disjoint. This is the sequence-match criterion of §5.1.
double IntervalIoU(const Interval& a, const Interval& b);

// A canonical set of identifiers stored as sorted, pairwise-disjoint,
// non-adjacent closed intervals. Adjacent intervals ([1,3] and [4,6]) are
// merged, matching the paper's "merge continuous clips" semantics.
class IntervalSet {
 public:
  IntervalSet() = default;

  // Builds a canonical set from arbitrary (possibly overlapping, unsorted,
  // empty) intervals.
  static IntervalSet FromIntervals(std::vector<Interval> intervals);

  // Builds the set of positions where `indicator[i]` is true, with position
  // ids starting at `base`. This is Eq. 4 / the individual-sequence
  // extraction of §4.2.
  static IntervalSet FromIndicators(const std::vector<bool>& indicator,
                                    int64_t base = 0);

  // Adds one interval, re-normalizing. O(n) worst case; intended for
  // streaming appends at the tail where it is O(1) amortized.
  void Add(const Interval& iv);

  bool empty() const { return intervals_.empty(); }
  size_t size() const { return intervals_.size(); }
  const std::vector<Interval>& intervals() const { return intervals_; }
  const Interval& operator[](size_t i) const { return intervals_[i]; }

  // Total number of identifiers covered.
  int64_t TotalLength() const;

  bool Contains(int64_t x) const;

  // The paper's ⊗ operator (Eq. 12): identifiers present in both sets,
  // re-merged into maximal runs. Implemented as a linear two-pointer sweep.
  IntervalSet Intersect(const IntervalSet& other) const;

  // Set union, re-merged into maximal runs.
  IntervalSet Union(const IntervalSet& other) const;

  // Identifiers in [universe.lo, universe.hi] not covered by this set.
  IntervalSet ComplementWithin(const Interval& universe) const;

  friend bool operator==(const IntervalSet& a, const IntervalSet& b) {
    return a.intervals_ == b.intervals_;
  }

  std::string ToString() const;

 private:
  // Invariant: sorted by lo; for consecutive a, b: a.hi + 1 < b.lo.
  std::vector<Interval> intervals_;
};

std::ostream& operator<<(std::ostream& os, const IntervalSet& set);

}  // namespace vaq

#endif  // VAQ_COMMON_INTERVAL_H_
