// Logging and invariant-checking macros with a structured sink.
//
// `VAQ_LOG(level) << ...` builds a message and hands it to the process
// sink (common/logging.cc), which applies:
//
//   * level filtering — minimum level from the `VAQ_LOG_LEVEL` env var
//     (`info` | `warning` | `error` | `fatal`; default `info`) or
//     `SetMinLogLevel()`; `Fatal` always emits and aborts;
//   * output format — classic text, or JSON lines when `VAQ_LOG_FORMAT`
//     is `json` (or via `SetJsonLogging(true)`): one
//     `{"seq":N,"level":...,"file":...,"line":...,"msg":...}` object per
//     line. The sequence number is a deterministic monotone counter, not
//     a wall timestamp, so seeded runs log identically;
//   * an optional redirect (`SetLogSink`) used by tests to capture lines.
//
// `VAQ_LOG_RATELIMITED(level, n)` emits the first occurrence per call
// site and then every n-th, annotating how many were suppressed — for
// warnings that fire per occurrence unit (breaker trips, checksum
// mismatches) and would otherwise flood stderr.
//
// `VAQ_CHECK*` macros abort the process with a diagnostic when an
// invariant is violated; they are enabled in all build types (defensive
// checks in library internals use them only for programmer errors, never
// for data-dependent failures, which go through `Status`). They expand to
// a single ternary expression, so they are safe inside unbraced
// `if`/`else` branches.
#ifndef VAQ_COMMON_LOGGING_H_
#define VAQ_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace vaq {
namespace internal_logging {

enum class LogLevel { kInfo, kWarning, kError, kFatal };

// Minimum emitted level; initialized from VAQ_LOG_LEVEL on first use.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

// JSON-lines output; initialized from VAQ_LOG_FORMAT on first use.
void SetJsonLogging(bool on);

// Redirects fully formatted lines (no trailing newline) away from
// stderr; nullptr restores stderr. Fatal still aborts after the call.
void SetLogSink(std::function<void(const std::string&)> sink);

// Sink entry point used by LogMessage's destructor.
void EmitLogLine(LogLevel level, const char* file, int line,
                 const std::string& message);

// Per-call-site rate limiting: bumps the counter and returns the number
// of messages suppressed since the last emitted one (0 for the first),
// or -1 when this occurrence should be suppressed.
int64_t RateLimitTick(std::atomic<int64_t>* counter, int64_t every_n);

// Observes every suppressed rate-limited occurrence (called with 1 per
// suppressed tick). The obs layer installs a listener that mirrors the
// count into `vaq_log_suppressed_total`; common/ cannot depend on obs/,
// so the hook is inverted. nullptr uninstalls.
void SetLogSuppressionListener(std::function<void(int64_t)> listener);

// Stream-style message builder; hands the line to the sink on
// destruction and aborts for kFatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line,
             int64_t suppressed = 0)
      : level_(level), file_(file), line_(line), suppressed_(suppressed) {}

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() {
    if (suppressed_ > 0) {
      stream_ << " (" << suppressed_ << " similar suppressed)";
    }
    EmitLogLine(level_, file_, line_, stream_.str());
  }

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  int64_t suppressed_;
  std::ostringstream stream_;
};

// Swallows the stream expression in the ternary-check idiom below:
// `operator&` binds looser than `<<` but tighter than `?:`.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace vaq

#define VAQ_LOG(level)                                            \
  ::vaq::internal_logging::LogMessage(                            \
      ::vaq::internal_logging::LogLevel::k##level, __FILE__, __LINE__) \
      .stream()

// Emits the first occurrence per call site, then every (every_n)-th,
// annotating the suppressed count. The loop body runs at most once; a
// `for` keeps this a single statement (dangling-else safe) while giving
// the call site its own static counter.
#define VAQ_LOG_RATELIMITED(level, every_n)                                \
  for (int64_t vaq_rl_suppressed =                                         \
           ::vaq::internal_logging::RateLimitTick(                         \
               [] {                                                        \
                 static ::std::atomic<int64_t> vaq_rl_counter{0};          \
                 return &vaq_rl_counter;                                   \
               }(),                                                        \
               (every_n));                                                 \
       vaq_rl_suppressed >= 0; vaq_rl_suppressed = -1)                     \
  ::vaq::internal_logging::LogMessage(                                     \
      ::vaq::internal_logging::LogLevel::k##level, __FILE__, __LINE__,     \
      vaq_rl_suppressed)                                                   \
      .stream()

// Aborts with a message when `cond` is false. Use for programmer errors.
// Expands to one expression, so `if (x) VAQ_CHECK(y); else ...` binds as
// written (the old `if/else` expansion captured the dangling `else`).
#define VAQ_CHECK(cond)                                       \
  (cond) ? (void)0                                            \
         : ::vaq::internal_logging::LogMessageVoidify() &     \
               VAQ_LOG(Fatal) << "Check failed: " #cond " "

#define VAQ_CHECK_OP_(a, b, op) \
  VAQ_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "

#define VAQ_CHECK_EQ(a, b) VAQ_CHECK_OP_(a, b, ==)
#define VAQ_CHECK_NE(a, b) VAQ_CHECK_OP_(a, b, !=)
#define VAQ_CHECK_LT(a, b) VAQ_CHECK_OP_(a, b, <)
#define VAQ_CHECK_LE(a, b) VAQ_CHECK_OP_(a, b, <=)
#define VAQ_CHECK_GT(a, b) VAQ_CHECK_OP_(a, b, >)
#define VAQ_CHECK_GE(a, b) VAQ_CHECK_OP_(a, b, >=)

// Aborts if a Status-returning expression fails. For examples/tools/tests.
#define VAQ_CHECK_OK(expr)                              \
  do {                                                  \
    ::vaq::Status _vaq_check_status = (expr);           \
    VAQ_CHECK(_vaq_check_status.ok())                   \
        << _vaq_check_status.ToString();                \
  } while (false)

#endif  // VAQ_COMMON_LOGGING_H_
