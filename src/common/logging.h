// Minimal logging and invariant-checking macros.
//
// `VAQ_CHECK*` macros abort the process with a diagnostic when an invariant
// is violated; they are enabled in all build types (defensive checks in
// library internals use them only for programmer errors, never for
// data-dependent failures, which go through `Status`).
#ifndef VAQ_COMMON_LOGGING_H_
#define VAQ_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace vaq {
namespace internal_logging {

enum class LogLevel { kInfo, kWarning, kError, kFatal };

// Stream-style log sink; writes a single line to stderr on destruction and
// aborts for kFatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() {
    std::cerr << stream_.str() << std::endl;
    if (level_ == LogLevel::kFatal) std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  static const char* LevelName(LogLevel level) {
    switch (level) {
      case LogLevel::kInfo:
        return "INFO";
      case LogLevel::kWarning:
        return "WARN";
      case LogLevel::kError:
        return "ERROR";
      case LogLevel::kFatal:
        return "FATAL";
    }
    return "?";
  }

  static const char* Basename(const char* path) {
    const char* base = path;
    for (const char* p = path; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    return base;
  }

  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace vaq

#define VAQ_LOG(level)                                            \
  ::vaq::internal_logging::LogMessage(                            \
      ::vaq::internal_logging::LogLevel::k##level, __FILE__, __LINE__) \
      .stream()

// Aborts with a message when `cond` is false. Use for programmer errors.
#define VAQ_CHECK(cond)                                      \
  if (cond) {                                                \
  } else                                                     \
    VAQ_LOG(Fatal) << "Check failed: " #cond " "

#define VAQ_CHECK_OP_(a, b, op) \
  VAQ_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "

#define VAQ_CHECK_EQ(a, b) VAQ_CHECK_OP_(a, b, ==)
#define VAQ_CHECK_NE(a, b) VAQ_CHECK_OP_(a, b, !=)
#define VAQ_CHECK_LT(a, b) VAQ_CHECK_OP_(a, b, <)
#define VAQ_CHECK_LE(a, b) VAQ_CHECK_OP_(a, b, <=)
#define VAQ_CHECK_GT(a, b) VAQ_CHECK_OP_(a, b, >)
#define VAQ_CHECK_GE(a, b) VAQ_CHECK_OP_(a, b, >=)

// Aborts if a Status-returning expression fails. For examples/tools/tests.
#define VAQ_CHECK_OK(expr)                              \
  do {                                                  \
    ::vaq::Status _vaq_check_status = (expr);           \
    VAQ_CHECK(_vaq_check_status.ok())                   \
        << _vaq_check_status.ToString();                \
  } while (false)

#endif  // VAQ_COMMON_LOGGING_H_
