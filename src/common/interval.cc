#include "common/interval.h"

#include <algorithm>
#include <sstream>

namespace vaq {

std::string Interval::ToString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  if (iv.empty()) return os << "[]";
  return os << "[" << iv.lo << "," << iv.hi << "]";
}

double IntervalIoU(const Interval& a, const Interval& b) {
  if (a.empty() || b.empty()) return 0.0;
  const int64_t inter_lo = std::max(a.lo, b.lo);
  const int64_t inter_hi = std::min(a.hi, b.hi);
  if (inter_lo > inter_hi) return 0.0;
  const int64_t inter = inter_hi - inter_lo + 1;
  const int64_t uni = a.length() + b.length() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

IntervalSet IntervalSet::FromIntervals(std::vector<Interval> intervals) {
  IntervalSet set;
  std::erase_if(intervals, [](const Interval& iv) { return iv.empty(); });
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  for (const Interval& iv : intervals) {
    if (!set.intervals_.empty() && iv.lo <= set.intervals_.back().hi + 1) {
      set.intervals_.back().hi = std::max(set.intervals_.back().hi, iv.hi);
    } else {
      set.intervals_.push_back(iv);
    }
  }
  return set;
}

IntervalSet IntervalSet::FromIndicators(const std::vector<bool>& indicator,
                                        int64_t base) {
  IntervalSet set;
  int64_t run_start = -1;
  for (size_t i = 0; i <= indicator.size(); ++i) {
    const bool on = i < indicator.size() && indicator[i];
    if (on && run_start < 0) {
      run_start = static_cast<int64_t>(i);
    } else if (!on && run_start >= 0) {
      set.intervals_.push_back(
          Interval(base + run_start, base + static_cast<int64_t>(i) - 1));
      run_start = -1;
    }
  }
  return set;
}

void IntervalSet::Add(const Interval& iv) {
  if (iv.empty()) return;
  // Fast path: strictly after the current tail with a gap.
  if (intervals_.empty() || iv.lo > intervals_.back().hi + 1) {
    intervals_.push_back(iv);
    return;
  }
  // Fast path: extends or is absorbed by the tail.
  if (iv.lo >= intervals_.back().lo) {
    intervals_.back().hi = std::max(intervals_.back().hi, iv.hi);
    return;
  }
  // General case: renormalize.
  std::vector<Interval> all = intervals_;
  all.push_back(iv);
  *this = FromIntervals(std::move(all));
}

int64_t IntervalSet::TotalLength() const {
  int64_t total = 0;
  for (const Interval& iv : intervals_) total += iv.length();
  return total;
}

bool IntervalSet::Contains(int64_t x) const {
  // Binary search on interval starts.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), x,
      [](int64_t value, const Interval& iv) { return value < iv.lo; });
  if (it == intervals_.begin()) return false;
  --it;
  return it->Contains(x);
}

IntervalSet IntervalSet::Intersect(const IntervalSet& other) const {
  IntervalSet out;
  size_t i = 0;
  size_t j = 0;
  while (i < intervals_.size() && j < other.intervals_.size()) {
    const Interval& a = intervals_[i];
    const Interval& b = other.intervals_[j];
    const int64_t lo = std::max(a.lo, b.lo);
    const int64_t hi = std::min(a.hi, b.hi);
    if (lo <= hi) out.Add(Interval(lo, hi));
    // Advance whichever interval ends first.
    if (a.hi < b.hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

IntervalSet IntervalSet::Union(const IntervalSet& other) const {
  std::vector<Interval> all = intervals_;
  all.insert(all.end(), other.intervals_.begin(), other.intervals_.end());
  return FromIntervals(std::move(all));
}

IntervalSet IntervalSet::ComplementWithin(const Interval& universe) const {
  IntervalSet out;
  if (universe.empty()) return out;
  int64_t cursor = universe.lo;
  for (const Interval& iv : intervals_) {
    if (iv.hi < universe.lo) continue;
    if (iv.lo > universe.hi) break;
    if (iv.lo > cursor) out.Add(Interval(cursor, iv.lo - 1));
    cursor = std::max(cursor, iv.hi + 1);
  }
  if (cursor <= universe.hi) out.Add(Interval(cursor, universe.hi));
  return out;
}

std::string IntervalSet::ToString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const IntervalSet& set) {
  os << "{";
  for (size_t i = 0; i < set.size(); ++i) {
    if (i > 0) os << ", ";
    os << set[i];
  }
  return os << "}";
}

}  // namespace vaq
