// Small numerical helpers shared across VAQ modules.
#ifndef VAQ_COMMON_MATH_UTIL_H_
#define VAQ_COMMON_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <limits>

namespace vaq {

inline constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// log(exp(a) + exp(b)) without overflow.
inline double LogSumExp(double a, double b) {
  if (a == kNegInf) return b;
  if (b == kNegInf) return a;
  const double m = std::max(a, b);
  return m + std::log(std::exp(a - m) + std::exp(b - m));
}

// log(1 - exp(x)) for x <= 0, numerically stable near both ends
// (Maechler 2012). Returns -inf for x == 0.
inline double Log1mExp(double x) {
  if (x >= 0.0) return kNegInf;
  if (x > -0.6931471805599453) return std::log(-std::expm1(x));
  return std::log1p(-std::exp(x));
}

// Thread-safe log-gamma. std::lgamma writes the process-global signgam,
// a data race when scan-stat thresholds are recomputed on concurrent
// serve workers; all arguments here are positive, so the sign is 1 and
// lgamma_r (POSIX) / plain lgamma (elsewhere) are interchangeable.
inline double LogGammaPositive(double x) {
#if defined(__unix__) || defined(__APPLE__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

// log C(n, k) via lgamma; requires 0 <= k <= n.
inline double LogChoose(int64_t n, int64_t k) {
  if (k < 0 || k > n) return kNegInf;
  return LogGammaPositive(static_cast<double>(n) + 1.0) -
         LogGammaPositive(static_cast<double>(k) + 1.0) -
         LogGammaPositive(static_cast<double>(n - k) + 1.0);
}

// Clamps a probability to [0, 1].
inline double ClampProbability(double p) {
  return std::min(1.0, std::max(0.0, p));
}

// Relative/absolute near-equality for doubles.
inline bool AlmostEqual(double a, double b, double rel_tol = 1e-9,
                        double abs_tol = 1e-12) {
  const double diff = std::fabs(a - b);
  if (diff <= abs_tol) return true;
  return diff <= rel_tol * std::max(std::fabs(a), std::fabs(b));
}

}  // namespace vaq

#endif  // VAQ_COMMON_MATH_UTIL_H_
