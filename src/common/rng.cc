#include "common/rng.h"

#include <cmath>

namespace vaq {

double Rng::Gamma(double shape, double scale) {
  VAQ_CHECK_GT(shape, 0.0);
  VAQ_CHECK_GT(scale, 0.0);
  if (shape < 1.0) {
    // Boost shape by 1 and apply the Johnk-style correction.
    double u = UniformDouble();
    while (u <= 0.0) u = UniformDouble();
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia & Tsang (2000) squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = UniformDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

double Rng::Beta(double alpha, double beta) {
  VAQ_CHECK_GT(alpha, 0.0);
  VAQ_CHECK_GT(beta, 0.0);
  const double x = Gamma(alpha, 1.0);
  const double y = Gamma(beta, 1.0);
  const double sum = x + y;
  if (sum <= 0.0) return 0.5;  // Degenerate underflow; split the difference.
  return x / sum;
}

int64_t Rng::Geometric(double p) {
  VAQ_CHECK_GT(p, 0.0);
  VAQ_CHECK_LE(p, 1.0);
  if (p >= 1.0) return 0;
  double u = UniformDouble();
  while (u <= 0.0) u = UniformDouble();
  return static_cast<int64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

}  // namespace vaq
