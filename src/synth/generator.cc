#include "synth/generator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace vaq {
namespace synth {
namespace {

// Draws one interval length (>= 1 frame) with the given mean.
int64_t DrawLength(Rng& rng, double mean_frames) {
  return std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(rng.Exponential(1.0 / std::max(
             mean_frames, 1.0)))));
}

// Generates an alternating renewal on/off process over [0, num_frames)
// with target on-fraction `duty` (scaled locally by `drift`) and mean
// on-interval length `mean_len`.
IntervalSet GenerateRenewalProcess(Rng& rng, int64_t num_frames, double duty,
                                   double mean_len,
                                   const DriftProfile& drift) {
  IntervalSet out;
  if (duty <= 0.0 || num_frames <= 0) return out;
  // First frame of the drift segment after `frame` (num_frames if none):
  // off-waits are exponential, so by memorylessness a draw that crosses a
  // segment boundary is correctly resumed there with the new local rate.
  auto next_boundary = [&](int64_t frame) {
    if (drift.flat()) return num_frames;
    const int64_t segments =
        static_cast<int64_t>(drift.multipliers.size());
    const int64_t segment =
        std::min(frame * segments / num_frames, segments - 1);
    return std::min(num_frames, (segment + 1) * num_frames / segments);
  };
  int64_t cursor = 0;
  // Start in the off state with a random phase so intervals do not pile up
  // at frame 0 across tracks.
  bool on = rng.Bernoulli(std::min(duty, 0.95));
  while (cursor < num_frames) {
    const double mult = drift.At(cursor, num_frames);
    const double local_duty = std::clamp(duty * mult, 0.0, 0.98);
    if (on) {
      const int64_t len = DrawLength(rng, mean_len);
      const int64_t hi = std::min(cursor + len - 1, num_frames - 1);
      out.Add(Interval(cursor, hi));
      cursor = hi + 1;
      on = false;
    } else {
      const int64_t boundary = next_boundary(cursor);
      if (local_duty <= 0.0) {
        cursor = boundary;  // Locally suppressed until the rate changes.
        continue;
      }
      const double mean_off = mean_len * (1.0 - local_duty) / local_duty;
      const int64_t wait = DrawLength(rng, mean_off);
      if (cursor + wait >= boundary && boundary < num_frames) {
        cursor = boundary;  // Re-draw under the next segment's rate.
      } else {
        cursor += wait;
        on = true;
      }
    }
  }
  return out;
}

}  // namespace

double DriftProfile::At(int64_t frame, int64_t num_frames) const {
  if (flat() || num_frames <= 0) return 1.0;
  const size_t segments = multipliers.size();
  size_t idx = static_cast<size_t>(
      (static_cast<double>(frame) / static_cast<double>(num_frames)) *
      static_cast<double>(segments));
  idx = std::min(idx, segments - 1);
  return multipliers[idx];
}

VideoLayout ScenarioSpec::MakeLayoutWithClipFrames(
    int64_t frames_per_clip) const {
  VAQ_CHECK_GT(frames_per_clip, 0);
  const int32_t shots = std::max<int32_t>(
      1, static_cast<int32_t>(
             std::llround(static_cast<double>(frames_per_clip) /
                          static_cast<double>(frames_per_shot))));
  return VideoLayout(NumFrames(), frames_per_shot, shots);
}

GroundTruth Generate(const ScenarioSpec& spec, Vocabulary& vocab) {
  GroundTruth truth(spec.video_id, spec.MakeLayout());
  const int64_t num_frames = spec.NumFrames();

  // Actions first: objects may couple to them.
  for (size_t i = 0; i < spec.actions.size(); ++i) {
    const ActionTrackSpec& aspec = spec.actions[i];
    Rng rng(MixSeed(spec.seed, MixSeed(0xac710a, i)));
    ActionTruth at;
    at.type = vocab.AddActionType(aspec.name);
    at.frames = GenerateRenewalProcess(rng, num_frames, aspec.duty,
                                       aspec.mean_len_frames, aspec.drift);
    truth.AddActionTruth(std::move(at));
  }

  for (size_t i = 0; i < spec.objects.size(); ++i) {
    const ObjectTrackSpec& ospec = spec.objects[i];
    Rng rng(MixSeed(spec.seed, MixSeed(0x0b7ec7, i)));
    ObjectTruth ot;
    ot.type = vocab.AddObjectType(ospec.name);
    IntervalSet presence =
        GenerateRenewalProcess(rng, num_frames, ospec.background_duty,
                               ospec.mean_len_frames, ospec.drift);
    // Action-coupled presence: cover (a jittered version of) each
    // occurrence of the coupled action with probability cover_action_prob.
    if (!ospec.coupled_action.empty() && ospec.cover_action_prob > 0.0) {
      const ActionTypeId act = vocab.FindActionType(ospec.coupled_action);
      VAQ_CHECK_NE(act, kInvalidTypeId)
          << "object '" << ospec.name << "' couples to unknown action '"
          << ospec.coupled_action << "'";
      for (const Interval& occ : truth.ActionFrames(act).intervals()) {
        if (!rng.Bernoulli(ospec.cover_action_prob)) continue;
        const double len = static_cast<double>(occ.length());
        const int64_t lo = std::max<int64_t>(
            0, occ.lo - static_cast<int64_t>(rng.UniformDouble(0, 0.03) * len));
        const int64_t hi = std::min<int64_t>(
            num_frames - 1,
            occ.hi + static_cast<int64_t>(rng.UniformDouble(-0.08, 0.04) * len));
        if (lo <= hi) presence.Add(Interval(lo, hi));
      }
      presence = IntervalSet::FromIntervals(
          {presence.intervals().begin(), presence.intervals().end()});
    }
    // Instances: the first instance spans each presence interval; extra
    // instances (for the tracker) cover random sub-intervals.
    int64_t next_instance = 0;
    for (const Interval& iv : presence.intervals()) {
      TruthInstance primary;
      primary.instance_id = next_instance++;
      primary.frames = iv;
      primary.x0 = rng.UniformDouble(0.1, 0.9);
      primary.vx = rng.UniformDouble(-3e-4, 3e-4);
      ot.instances.push_back(primary);
      const int64_t extra =
          ospec.mean_instances > 1.0
              ? rng.Geometric(1.0 / ospec.mean_instances)
              : 0;
      for (int64_t e = 0; e < extra; ++e) {
        const int64_t len = iv.length();
        const int64_t sub_lo =
            iv.lo + static_cast<int64_t>(rng.UniformDouble(0, 0.5) *
                                         static_cast<double>(len));
        const int64_t sub_len = std::max<int64_t>(
            1, static_cast<int64_t>(rng.UniformDouble(0.3, 1.0) *
                                    static_cast<double>(iv.hi - sub_lo + 1)));
        TruthInstance extra;
        extra.instance_id = next_instance++;
        extra.frames = Interval(sub_lo, std::min(iv.hi, sub_lo + sub_len - 1));
        extra.x0 = rng.UniformDouble(0.1, 0.9);
        extra.vx = rng.UniformDouble(-3e-4, 3e-4);
        ot.instances.push_back(extra);
      }
    }
    ot.frames = std::move(presence);
    truth.AddObjectTruth(std::move(ot));
  }
  return truth;
}

}  // namespace synth
}  // namespace vaq
