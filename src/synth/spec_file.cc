#include "synth/spec_file.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace vaq {
namespace synth {
namespace {

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

Status ParseDouble(const std::string& value, int line, double* out) {
  // strtod keeps the library exception-free.
  const char* begin = value.c_str();
  char* end = nullptr;
  *out = std::strtod(begin, &end);
  if (value.empty() || end != begin + value.size()) {
    return Status::InvalidArgument("line " + std::to_string(line) +
                                   ": expected a number, got '" + value +
                                   "'");
  }
  return Status::OK();
}

Status ParseDrift(const std::string& value, int line, DriftProfile* out) {
  out->multipliers.clear();
  std::stringstream ss(value);
  std::string piece;
  while (std::getline(ss, piece, ',')) {
    double multiplier = 0;
    VAQ_RETURN_IF_ERROR(ParseDouble(Trim(piece), line, &multiplier));
    out->multipliers.push_back(multiplier);
  }
  if (out->multipliers.empty()) {
    return Status::InvalidArgument("line " + std::to_string(line) +
                                   ": empty drift profile");
  }
  return Status::OK();
}

}  // namespace

StatusOr<ScenarioSpec> ParseScenarioSpec(const std::string& text) {
  ScenarioSpec spec;
  enum class Section { kGlobal, kAction, kObject };
  Section section = Section::kGlobal;

  std::stringstream stream(text);
  std::string raw;
  int line_number = 0;
  while (std::getline(stream, raw)) {
    ++line_number;
    const size_t comment = raw.find('#');
    const std::string line =
        Trim(comment == std::string::npos ? raw : raw.substr(0, comment));
    if (line.empty()) continue;

    if (line == "[action]") {
      spec.actions.emplace_back();
      section = Section::kAction;
      continue;
    }
    if (line == "[object]") {
      spec.objects.emplace_back();
      section = Section::kObject;
      continue;
    }
    if (line.front() == '[') {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": unknown section " + line);
    }
    const size_t equals = line.find('=');
    if (equals == std::string::npos) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": expected key = value");
    }
    const std::string key = Trim(line.substr(0, equals));
    const std::string value = Trim(line.substr(equals + 1));
    double number = 0;

    switch (section) {
      case Section::kGlobal:
        if (key == "name") {
          spec.name = value;
        } else if (key == "minutes") {
          VAQ_RETURN_IF_ERROR(ParseDouble(value, line_number, &number));
          spec.minutes = number;
        } else if (key == "fps") {
          VAQ_RETURN_IF_ERROR(ParseDouble(value, line_number, &number));
          spec.fps = number;
        } else if (key == "seed") {
          VAQ_RETURN_IF_ERROR(ParseDouble(value, line_number, &number));
          spec.seed = static_cast<uint64_t>(number);
        } else if (key == "video_id") {
          VAQ_RETURN_IF_ERROR(ParseDouble(value, line_number, &number));
          spec.video_id = static_cast<int64_t>(number);
        } else if (key == "frames_per_shot") {
          VAQ_RETURN_IF_ERROR(ParseDouble(value, line_number, &number));
          spec.frames_per_shot = static_cast<int32_t>(number);
        } else if (key == "shots_per_clip") {
          VAQ_RETURN_IF_ERROR(ParseDouble(value, line_number, &number));
          spec.shots_per_clip = static_cast<int32_t>(number);
        } else {
          return Status::InvalidArgument(
              "line " + std::to_string(line_number) + ": unknown global key " +
              key);
        }
        break;
      case Section::kAction: {
        ActionTrackSpec& action = spec.actions.back();
        if (key == "name") {
          action.name = value;
        } else if (key == "duty") {
          VAQ_RETURN_IF_ERROR(ParseDouble(value, line_number, &number));
          action.duty = number;
        } else if (key == "mean_len_frames") {
          VAQ_RETURN_IF_ERROR(ParseDouble(value, line_number, &number));
          action.mean_len_frames = number;
        } else if (key == "drift") {
          VAQ_RETURN_IF_ERROR(ParseDrift(value, line_number, &action.drift));
        } else {
          return Status::InvalidArgument(
              "line " + std::to_string(line_number) + ": unknown action key " +
              key);
        }
        break;
      }
      case Section::kObject: {
        ObjectTrackSpec& object = spec.objects.back();
        if (key == "name") {
          object.name = value;
        } else if (key == "background_duty") {
          VAQ_RETURN_IF_ERROR(ParseDouble(value, line_number, &number));
          object.background_duty = number;
        } else if (key == "mean_len_frames") {
          VAQ_RETURN_IF_ERROR(ParseDouble(value, line_number, &number));
          object.mean_len_frames = number;
        } else if (key == "coupled_action") {
          object.coupled_action = value;
        } else if (key == "cover_action_prob") {
          VAQ_RETURN_IF_ERROR(ParseDouble(value, line_number, &number));
          object.cover_action_prob = number;
        } else if (key == "mean_instances") {
          VAQ_RETURN_IF_ERROR(ParseDouble(value, line_number, &number));
          object.mean_instances = number;
        } else if (key == "drift") {
          VAQ_RETURN_IF_ERROR(ParseDrift(value, line_number, &object.drift));
        } else {
          return Status::InvalidArgument(
              "line " + std::to_string(line_number) + ": unknown object key " +
              key);
        }
        break;
      }
    }
  }
  // Validation.
  if (spec.NumFrames() <= 0) {
    return Status::InvalidArgument("scenario has no frames");
  }
  for (const ActionTrackSpec& action : spec.actions) {
    if (action.name.empty()) {
      return Status::InvalidArgument("action track without a name");
    }
  }
  for (const ObjectTrackSpec& object : spec.objects) {
    if (object.name.empty()) {
      return Status::InvalidArgument("object track without a name");
    }
    if (!object.coupled_action.empty()) {
      bool found = false;
      for (const ActionTrackSpec& action : spec.actions) {
        found |= action.name == object.coupled_action;
      }
      if (!found) {
        return Status::InvalidArgument("object '" + object.name +
                                       "' couples to unknown action '" +
                                       object.coupled_action + "'");
      }
    }
  }
  return spec;
}

StatusOr<ScenarioSpec> LoadScenarioSpec(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open spec file: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseScenarioSpec(buffer.str());
}

std::string FormatScenarioSpec(const ScenarioSpec& spec) {
  std::ostringstream os;
  os << "name = " << spec.name << "\n";
  os << "minutes = " << spec.minutes << "\n";
  os << "fps = " << spec.fps << "\n";
  os << "seed = " << spec.seed << "\n";
  os << "video_id = " << spec.video_id << "\n";
  os << "frames_per_shot = " << spec.frames_per_shot << "\n";
  os << "shots_per_clip = " << spec.shots_per_clip << "\n";
  auto drift = [&os](const DriftProfile& profile) {
    if (profile.flat()) return;
    os << "drift = ";
    for (size_t i = 0; i < profile.multipliers.size(); ++i) {
      if (i > 0) os << ", ";
      os << profile.multipliers[i];
    }
    os << "\n";
  };
  for (const ActionTrackSpec& action : spec.actions) {
    os << "\n[action]\n";
    os << "name = " << action.name << "\n";
    os << "duty = " << action.duty << "\n";
    os << "mean_len_frames = " << action.mean_len_frames << "\n";
    drift(action.drift);
  }
  for (const ObjectTrackSpec& object : spec.objects) {
    os << "\n[object]\n";
    os << "name = " << object.name << "\n";
    os << "background_duty = " << object.background_duty << "\n";
    os << "mean_len_frames = " << object.mean_len_frames << "\n";
    if (!object.coupled_action.empty()) {
      os << "coupled_action = " << object.coupled_action << "\n";
      os << "cover_action_prob = " << object.cover_action_prob << "\n";
    }
    os << "mean_instances = " << object.mean_instances << "\n";
    drift(object.drift);
  }
  return os.str();
}

}  // namespace synth
}  // namespace vaq
