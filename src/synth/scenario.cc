#include "synth/scenario.h"

#include <array>

#include "common/logging.h"
#include "common/rng.h"

namespace vaq {
namespace synth {
namespace {

// One row of Table 1.
struct YouTubePreset {
  const char* action;
  std::array<const char*, 3> objects;  // nullptr-padded.
  int minutes;
};

// The twelve YouTube queries (Table 1 of the paper), with the total video
// length in minutes per action set.
constexpr YouTubePreset kYouTubePresets[12] = {
    {"washing dishes", {"faucet", "oven", nullptr}, 57},        // q1
    {"blowing leaves", {"car", "plant", nullptr}, 52},          // q2
    {"walking the dog", {"tree", "chair", nullptr}, 127},       // q3
    {"drinking beer", {"bottle", "chair", nullptr}, 63},        // q4
    {"volleyball", {"tree", nullptr, nullptr}, 110},            // q5
    {"playing rubik cube", {"clock", nullptr, nullptr}, 89},    // q6
    {"cleaning sink", {"faucet", "knife", nullptr}, 84},        // q7
    {"kneeling", {"tree", nullptr, nullptr}, 104},              // q8
    {"doing crunches", {"chair", nullptr, nullptr}, 85},        // q9
    {"blow-drying hair", {"kid", nullptr, nullptr}, 138},       // q10
    {"washing hands", {"faucet", "dish", nullptr}, 113},        // q11
    {"archery", {"sunglasses", nullptr, nullptr}, 156},         // q12
};

// Distractor object types present in most videos; ingestion (§4.2) builds
// tables for every type the detector supports, so scenarios carry more
// types than their query mentions.
constexpr const char* kDistractorObjects[] = {"person", "tv", "phone",
                                              "dog", "table"};

// Adds the query objects plus distractors to `spec`. Query objects are
// coupled to the action (they co-occur with it most of the time — the
// annotation methodology of §5.1 intersects object and action intervals,
// so an entirely uncoupled object would make the ground truth vanish).
void PopulateObjects(ScenarioSpec& spec,
                     const std::vector<std::string>& query_objects,
                     Rng& rng) {
  const std::string action = spec.actions.front().name;
  for (const std::string& name : query_objects) {
    ObjectTrackSpec obj;
    obj.name = name;
    obj.background_duty = rng.UniformDouble(0.03, 0.08);
    obj.mean_len_frames = rng.UniformDouble(700, 1400);
    obj.coupled_action = action;
    obj.cover_action_prob = rng.UniformDouble(0.80, 0.93);
    obj.mean_instances = rng.UniformDouble(1.0, 1.8);
    spec.objects.push_back(std::move(obj));
  }
  // "person" is special: near-perfectly correlated with human activities
  // and detected with high accuracy (used by Table 3).
  {
    ObjectTrackSpec person;
    person.name = "person";
    person.background_duty = 0.30;
    person.mean_len_frames = 1200;
    person.coupled_action = action;
    person.cover_action_prob = 0.97;
    person.mean_instances = 1.6;
    spec.objects.push_back(std::move(person));
  }
  for (const char* name : kDistractorObjects) {
    if (std::string(name) == "person") continue;
    bool duplicate = false;
    for (const ObjectTrackSpec& existing : spec.objects) {
      if (existing.name == name) duplicate = true;
    }
    if (duplicate) continue;
    ObjectTrackSpec obj;
    obj.name = name;
    obj.background_duty = rng.UniformDouble(0.02, 0.10);
    obj.mean_len_frames = rng.UniformDouble(200, 600);
    obj.mean_instances = 1.1;
    spec.objects.push_back(std::move(obj));
  }
}

}  // namespace

Scenario Scenario::Build(ScenarioSpec spec, const std::string& query_action,
                         const std::vector<std::string>& query_objects) {
  auto vocab = std::make_shared<Vocabulary>();
  auto truth =
      std::make_shared<const GroundTruth>(Generate(spec, *vocab));
  auto query_or = QuerySpec::FromNames(*vocab, query_action, query_objects);
  VAQ_CHECK(query_or.ok()) << query_or.status().ToString();
  return Scenario(std::move(spec), std::move(vocab), std::move(truth),
                  std::move(query_or).value());
}

const char* MovieName(MovieId id) {
  switch (id) {
    case MovieId::kCoffeeAndCigarettes:
      return "Coffee and Cigarettes";
    case MovieId::kIronMan:
      return "Iron Man";
    case MovieId::kStarWars3:
      return "Star Wars 3";
    case MovieId::kTitanic:
      return "Titanic";
  }
  return "?";
}

Scenario Scenario::YouTube(int index, uint64_t seed) {
  VAQ_CHECK_GE(index, 1);
  VAQ_CHECK_LE(index, 12);
  const YouTubePreset& preset = kYouTubePresets[index - 1];

  ScenarioSpec spec;
  spec.name = "youtube_q" + std::to_string(index);
  spec.video_id = index;
  spec.minutes = preset.minutes;
  spec.fps = 30.0;
  spec.seed = MixSeed(seed + 0x9a7e, static_cast<uint64_t>(index));
  Rng rng(MixSeed(spec.seed, 0x5ce9a210));

  ActionTrackSpec action;
  action.name = preset.action;
  action.duty = rng.UniformDouble(0.25, 0.40);
  action.mean_len_frames = rng.UniformDouble(1500, 3600);
  spec.actions.push_back(std::move(action));

  std::vector<std::string> query_objects;
  for (const char* obj : preset.objects) {
    if (obj != nullptr) query_objects.emplace_back(obj);
  }
  PopulateObjects(spec, query_objects, rng);
  return Build(std::move(spec), preset.action, query_objects);
}

Scenario Scenario::Movie(MovieId id, uint64_t seed) {
  ScenarioSpec spec;
  spec.name = MovieName(id);
  spec.fps = 24.0;
  Rng rng(MixSeed(seed + 0x30f1e, static_cast<uint64_t>(id)));

  ActionTrackSpec action;
  std::vector<std::string> query_objects;
  switch (id) {
    case MovieId::kCoffeeAndCigarettes:
      spec.video_id = 101;
      spec.minutes = 96;
      action.name = "smoking";
      action.duty = 0.16;
      action.mean_len_frames = 420;  // ~17s scenes; dozens of them.
      query_objects = {"wine glass", "cup"};
      break;
    case MovieId::kIronMan:
      spec.video_id = 102;
      spec.minutes = 126;
      action.name = "robot dancing";
      action.duty = 0.12;
      action.mean_len_frames = 380;
      query_objects = {"car", "airplane"};
      break;
    case MovieId::kStarWars3:
      spec.video_id = 103;
      spec.minutes = 134;
      action.name = "archery";
      action.duty = 0.11;
      action.mean_len_frames = 400;
      query_objects = {"bird", "cat"};
      break;
    case MovieId::kTitanic:
      spec.video_id = 104;
      spec.minutes = 194;
      action.name = "kissing";
      action.duty = 0.09;
      action.mean_len_frames = 420;
      query_objects = {"surfboard", "boat"};
      break;
  }
  spec.seed = MixSeed(seed + 0xfacade, static_cast<uint64_t>(spec.video_id));
  spec.actions.push_back(std::move(action));
  for (const std::string& name : query_objects) {
    ObjectTrackSpec obj;
    obj.name = name;
    obj.background_duty = rng.UniformDouble(0.04, 0.10);
    obj.mean_len_frames = rng.UniformDouble(700, 1400);
    obj.coupled_action = spec.actions.front().name;
    obj.cover_action_prob = rng.UniformDouble(0.82, 0.95);
    obj.mean_instances = rng.UniformDouble(1.0, 2.0);
    spec.objects.push_back(std::move(obj));
  }
  {
    // A person is on screen most of a movie.
    ObjectTrackSpec person;
    person.name = "person";
    person.background_duty = 0.55;
    person.mean_len_frames = 2000;
    person.coupled_action = spec.actions.front().name;
    person.cover_action_prob = 0.97;
    person.mean_instances = 2.0;
    spec.objects.push_back(std::move(person));
  }
  for (const char* name : kDistractorObjects) {
    if (std::string(name) == "person") continue;
    ObjectTrackSpec obj;
    obj.name = name;
    obj.background_duty = rng.UniformDouble(0.03, 0.10);
    obj.mean_len_frames = rng.UniformDouble(250, 700);
    obj.mean_instances = 1.2;
    spec.objects.push_back(std::move(obj));
  }
  return Build(std::move(spec), spec.actions.front().name, query_objects);
}

Scenario Scenario::FromSpec(const ScenarioSpec& spec,
                            const std::string& query_action,
                            const std::vector<std::string>& query_objects) {
  return Build(spec, query_action, query_objects);
}

Scenario Scenario::WithClipFrames(int64_t frames_per_clip) const {
  ScenarioSpec spec = spec_;
  const VideoLayout layout = spec.MakeLayoutWithClipFrames(frames_per_clip);
  spec.shots_per_clip = layout.shots_per_clip();
  // Rebuild with the same query expressed as names; the regenerated truth
  // is identical (same seed) apart from the segmentation.
  const std::string action =
      query_.has_action() ? vocab_->ActionTypeName(query_.action) : "";
  std::vector<std::string> objects;
  objects.reserve(query_.objects.size());
  for (ObjectTypeId id : query_.objects) {
    objects.push_back(vocab_->ObjectTypeName(id));
  }
  return Build(std::move(spec), action, objects);
}

StatusOr<Scenario> Scenario::WithQuery(
    const std::string& action,
    const std::vector<std::string>& objects) const {
  VAQ_ASSIGN_OR_RETURN(QuerySpec query,
                       QuerySpec::FromNames(*vocab_, action, objects));
  Scenario out = *this;
  out.query_ = std::move(query);
  return out;
}

}  // namespace synth
}  // namespace vaq
