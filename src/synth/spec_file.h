// Text format for scenario specifications.
//
// Lets tools (vaqctl) and experiments define custom evaluation videos
// without recompiling. The format is line-oriented `key = value` with
// `[action]` / `[object]` section headers starting a new track:
//
//   name = crossroad-cam
//   minutes = 120
//   fps = 10
//   seed = 7
//   frames_per_shot = 10
//   shots_per_clip = 10
//
//   [action]
//   name = loitering
//   duty = 0.06
//   mean_len_frames = 1200
//   drift = 1, 6, 6, 1
//
//   [object]
//   name = truck
//   background_duty = 0.05
//   mean_len_frames = 900
//   coupled_action = loitering
//   cover_action_prob = 0.9
//   mean_instances = 1.4
//
// `#` starts a comment; blank lines are ignored; unknown keys are
// errors (typos should not pass silently).
#ifndef VAQ_SYNTH_SPEC_FILE_H_
#define VAQ_SYNTH_SPEC_FILE_H_

#include <string>

#include "common/status.h"
#include "synth/generator.h"

namespace vaq {
namespace synth {

// Parses the text form of a scenario specification.
StatusOr<ScenarioSpec> ParseScenarioSpec(const std::string& text);

// Reads and parses a spec file from disk.
StatusOr<ScenarioSpec> LoadScenarioSpec(const std::string& path);

// Serializes a spec back to the text form (round-trips through
// ParseScenarioSpec).
std::string FormatScenarioSpec(const ScenarioSpec& spec);

}  // namespace synth
}  // namespace vaq

#endif  // VAQ_SYNTH_SPEC_FILE_H_
