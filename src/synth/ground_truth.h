// Ground-truth model for synthetic videos.
//
// The paper evaluates on real videos whose object/action presence was
// manually annotated with temporal boundaries (§5.1). This module is the
// offline-reproduction substitute (see DESIGN.md §1): a video is described
// by *truth tracks* — for every object type the set of frames where at
// least one instance is visible (plus per-instance intervals for the
// tracker), and for every action type the set of frames where the action
// is happening. Simulated detectors draw noisy observations from this
// truth; evaluation compares query results against it.
#ifndef VAQ_SYNTH_GROUND_TRUTH_H_
#define VAQ_SYNTH_GROUND_TRUTH_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/interval.h"
#include "video/layout.h"
#include "video/query_spec.h"
#include "video/vocabulary.h"

namespace vaq {
namespace synth {

// One visible instance of an object type: the tracker's unit of identity.
// Instances carry a horizontal screen position (normalized to [0, 1]) as a
// linear motion track, which grounds the spatial relationship predicates
// of §2 footnote 2.
struct TruthInstance {
  int64_t instance_id = 0;   // Unique within the video and object type.
  Interval frames;           // Frames where this instance is visible.
  double x0 = 0.5;           // Horizontal position at frames.lo.
  double vx = 0.0;           // Horizontal velocity per frame.

  // Position at `frame`, clamped to the screen.
  double XAt(FrameIndex frame) const {
    const double x = x0 + vx * static_cast<double>(frame - frames.lo);
    return x < 0.0 ? 0.0 : (x > 1.0 ? 1.0 : x);
  }
};

// Presence of one object type across a video.
struct ObjectTruth {
  ObjectTypeId type = kInvalidTypeId;
  IntervalSet frames;                    // Union of instance intervals.
  std::vector<TruthInstance> instances;  // Sorted by frames.lo.
};

// Presence of one action type across a video.
struct ActionTruth {
  ActionTypeId type = kInvalidTypeId;
  IntervalSet frames;
};

// Complete annotation of one synthetic video.
class GroundTruth {
 public:
  GroundTruth(int64_t video_id, VideoLayout layout)
      : video_id_(video_id), layout_(layout) {}

  int64_t video_id() const { return video_id_; }
  const VideoLayout& layout() const { return layout_; }

  void AddObjectTruth(ObjectTruth truth);
  void AddActionTruth(ActionTruth truth);

  // Frame-level presence of a type; the empty set when never present.
  const IntervalSet& ObjectFrames(ObjectTypeId type) const;
  const IntervalSet& ActionFrames(ActionTypeId type) const;

  // Instances of `type` visible at `frame` (empty when none). Linear in
  // the number of instances overlapping the frame's neighbourhood.
  std::vector<TruthInstance> InstancesAt(ObjectTypeId type,
                                         FrameIndex frame) const;

  const std::vector<ObjectTruth>& objects() const { return objects_; }
  const std::vector<ActionTruth>& actions() const { return actions_; }

  // Shot-level presence of an action: shots with at least
  // `min_overlap_fraction` of their frames inside a truth interval.
  IntervalSet ActionShots(ActionTypeId type,
                          double min_overlap_fraction = 0.5) const;

  // Frame-level truth for a conjunctive query: the intersection of the
  // temporal intervals of all query-specified objects and the action
  // (§5.1, annotation methodology).
  IntervalSet QueryTruthFrames(const QuerySpec& query) const;

  // Clip-level truth: clips containing at least `min_frames` truth frames
  // of the query (default 1 — any overlap makes the clip a truth clip).
  IntervalSet QueryTruthClips(const QuerySpec& query,
                              int64_t min_frames = 1) const;

 private:
  int64_t video_id_;
  VideoLayout layout_;
  std::vector<ObjectTruth> objects_;
  std::vector<ActionTruth> actions_;
};

}  // namespace synth
}  // namespace vaq

#endif  // VAQ_SYNTH_GROUND_TRUTH_H_
