#include "synth/ground_truth.h"

#include <algorithm>

#include "common/logging.h"

namespace vaq {
namespace synth {
namespace {

const IntervalSet& EmptySet() {
  static const IntervalSet* empty = new IntervalSet();
  return *empty;
}

}  // namespace

void GroundTruth::AddObjectTruth(ObjectTruth truth) {
  VAQ_CHECK_NE(truth.type, kInvalidTypeId);
  std::sort(truth.instances.begin(), truth.instances.end(),
            [](const TruthInstance& a, const TruthInstance& b) {
              return a.frames.lo < b.frames.lo;
            });
  objects_.push_back(std::move(truth));
}

void GroundTruth::AddActionTruth(ActionTruth truth) {
  VAQ_CHECK_NE(truth.type, kInvalidTypeId);
  actions_.push_back(std::move(truth));
}

const IntervalSet& GroundTruth::ObjectFrames(ObjectTypeId type) const {
  for (const ObjectTruth& truth : objects_) {
    if (truth.type == type) return truth.frames;
  }
  return EmptySet();
}

const IntervalSet& GroundTruth::ActionFrames(ActionTypeId type) const {
  for (const ActionTruth& truth : actions_) {
    if (truth.type == type) return truth.frames;
  }
  return EmptySet();
}

std::vector<TruthInstance> GroundTruth::InstancesAt(ObjectTypeId type,
                                                    FrameIndex frame) const {
  std::vector<TruthInstance> out;
  for (const ObjectTruth& truth : objects_) {
    if (truth.type != type) continue;
    for (const TruthInstance& inst : truth.instances) {
      if (inst.frames.lo > frame) break;  // Sorted by lo.
      if (inst.frames.Contains(frame)) out.push_back(inst);
    }
  }
  return out;
}

IntervalSet GroundTruth::ActionShots(ActionTypeId type,
                                     double min_overlap_fraction) const {
  const IntervalSet& frames = ActionFrames(type);
  std::vector<bool> shot_on(static_cast<size_t>(layout_.NumShots()), false);
  for (ShotIndex s = 0; s < layout_.NumShots(); ++s) {
    const Interval range = layout_.ShotFrameRange(s);
    int64_t covered = 0;
    for (const Interval& iv : frames.intervals()) {
      const int64_t lo = std::max(iv.lo, range.lo);
      const int64_t hi = std::min(iv.hi, range.hi);
      if (lo <= hi) covered += hi - lo + 1;
    }
    shot_on[static_cast<size_t>(s)] =
        covered >= static_cast<int64_t>(min_overlap_fraction *
                                        static_cast<double>(range.length()));
  }
  return IntervalSet::FromIndicators(shot_on);
}

IntervalSet GroundTruth::QueryTruthFrames(const QuerySpec& query) const {
  IntervalSet result(
      IntervalSet::FromIntervals({Interval(0, layout_.num_frames() - 1)}));
  if (query.has_action()) {
    result = result.Intersect(ActionFrames(query.action));
  }
  for (ObjectTypeId type : query.objects) {
    result = result.Intersect(ObjectFrames(type));
  }
  return result;
}

IntervalSet GroundTruth::QueryTruthClips(const QuerySpec& query,
                                         int64_t min_frames) const {
  const IntervalSet frames = QueryTruthFrames(query);
  if (min_frames <= 1) return layout_.FramesToClips(frames);
  std::vector<bool> clip_on(static_cast<size_t>(layout_.NumClips()), false);
  for (ClipIndex c = 0; c < layout_.NumClips(); ++c) {
    const Interval range = layout_.ClipFrameRange(c);
    int64_t covered = 0;
    for (const Interval& iv : frames.intervals()) {
      const int64_t lo = std::max(iv.lo, range.lo);
      const int64_t hi = std::min(iv.hi, range.hi);
      if (lo <= hi) covered += hi - lo + 1;
    }
    clip_on[static_cast<size_t>(c)] = covered >= min_frames;
  }
  return IntervalSet::FromIndicators(clip_on);
}

}  // namespace synth
}  // namespace vaq
