// Synthetic video scenario generator.
//
// A `ScenarioSpec` describes the statistical structure of one evaluation
// video: its length and segmentation, one or more action tracks (alternating
// renewal processes of on/off intervals), and object tracks that combine a
// background presence process with action-coupled presence (an object can be
// configured to be visible whenever the action happens with a given
// probability — this models the paper's "correlated predicates", Table 3).
// Optional drift profiles scale the background presence rate across the
// video (sudden traffic peaks of §3.3).
//
// Generation is deterministic given the spec's seed.
#ifndef VAQ_SYNTH_GENERATOR_H_
#define VAQ_SYNTH_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "synth/ground_truth.h"
#include "video/layout.h"
#include "video/vocabulary.h"

namespace vaq {
namespace synth {

// Piecewise-constant multiplier over the video: `multipliers[i]` scales the
// background presence rate within the i-th equal-length segment. An empty
// profile means a flat rate. A profile like {1, 4, 1} models a sudden rate
// change in the middle third (concept drift).
struct DriftProfile {
  std::vector<double> multipliers;

  bool flat() const { return multipliers.empty(); }
  // Multiplier applying at `frame` of a video with `num_frames` frames.
  double At(int64_t frame, int64_t num_frames) const;
};

// Statistical description of one action track.
struct ActionTrackSpec {
  std::string name;
  // Fraction of the video during which the action is happening.
  double duty = 0.2;
  // Mean length of one occurrence, in frames.
  double mean_len_frames = 900;
  DriftProfile drift;
};

// Statistical description of one object track.
struct ObjectTrackSpec {
  std::string name;
  // Background presence: fraction of the video covered by presence
  // intervals that are independent of any action.
  double background_duty = 0.1;
  // Mean length of one background presence interval, in frames.
  double mean_len_frames = 600;
  // For each occurrence of `coupled_action`, probability that this object
  // is visible throughout (a jittered cover of) that occurrence. Empty
  // action name = uncoupled.
  std::string coupled_action;
  double cover_action_prob = 0.0;
  // Mean number of simultaneous instances while present (>= 1); extra
  // instances give the tracker several track ids to report.
  double mean_instances = 1.2;
  DriftProfile drift;
};

// Complete description of one synthetic evaluation video.
struct ScenarioSpec {
  std::string name;
  int64_t video_id = 0;
  double minutes = 10.0;
  double fps = 30.0;
  int32_t frames_per_shot = 10;  // Action-recognizer input length (§2).
  int32_t shots_per_clip = 10;   // Default clip = 100 frames (~3s).
  std::vector<ActionTrackSpec> actions;
  std::vector<ObjectTrackSpec> objects;
  uint64_t seed = 1;

  int64_t NumFrames() const {
    return static_cast<int64_t>(minutes * 60.0 * fps);
  }
  VideoLayout MakeLayout() const {
    return VideoLayout(NumFrames(), frames_per_shot, shots_per_clip);
  }
  // Layout with an overridden clip length (Figures 4-5 sweep clip size).
  VideoLayout MakeLayoutWithClipFrames(int64_t frames_per_clip) const;
};

// Generates the ground truth for `spec`, registering any missing type
// names in `vocab`. Deterministic in `spec.seed`.
GroundTruth Generate(const ScenarioSpec& spec, Vocabulary& vocab);

}  // namespace synth
}  // namespace vaq

#endif  // VAQ_SYNTH_GENERATOR_H_
