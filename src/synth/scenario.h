// Evaluation scenarios: a generated video plus the query issued against it.
//
// `Scenario` bundles everything one experiment needs — the vocabulary, the
// generated ground truth, the video layout, and the resolved `QuerySpec` —
// and provides the presets of the paper's evaluation: the twelve YouTube
// queries of Table 1 and the four movies of Table 2.
#ifndef VAQ_SYNTH_SCENARIO_H_
#define VAQ_SYNTH_SCENARIO_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "synth/generator.h"
#include "synth/ground_truth.h"
#include "video/query_spec.h"

namespace vaq {
namespace synth {

// Identifies one of the four movies of Table 2.
enum class MovieId {
  kCoffeeAndCigarettes,  // Smoking; {wine glass, cup}; 1h36m.
  kIronMan,              // Robot dancing; {car, airplane}; 2h06m.
  kStarWars3,            // Archery; {bird, cat}; 2h14m.
  kTitanic,              // Kissing; {surfboard, boat}; 3h14m.
};

const char* MovieName(MovieId id);

// One generated video with a default query. Copies share the vocabulary and
// ground truth (immutable after construction).
class Scenario {
 public:
  // The q1..q12 presets of Table 1 (`index` in [1, 12]). Video lengths
  // match the table; queried object types match the table's Object column.
  static Scenario YouTube(int index, uint64_t seed = 0);

  // The movie presets of Table 2.
  static Scenario Movie(MovieId id, uint64_t seed = 0);

  // Generates a scenario from an explicit spec and query names.
  static Scenario FromSpec(const ScenarioSpec& spec,
                           const std::string& query_action,
                           const std::vector<std::string>& query_objects);

  const std::string& name() const { return spec_.name; }
  const ScenarioSpec& spec() const { return spec_; }
  const Vocabulary& vocab() const { return *vocab_; }
  const GroundTruth& truth() const { return *truth_; }
  const VideoLayout& layout() const { return truth_->layout(); }
  const QuerySpec& query() const { return query_; }

  // Ground-truth result sequences for the scenario's query, at clip
  // level. A clip counts as truth when it holds at least one shot's worth
  // of joint truth frames: sub-shot slivers cannot be expressed by a
  // shot-granularity action recognizer and annotators do not label
  // sub-second blips (§5.1 annotation methodology).
  IntervalSet TruthClips() const {
    return truth_->QueryTruthClips(query_, layout().frames_per_shot());
  }

  // Same scenario (same seed, same truth process) re-segmented with a
  // different clip length in frames; used by the Figure 4/5 sweeps.
  Scenario WithClipFrames(int64_t frames_per_clip) const;

  // Same video, different query (Table 3's predicate variations). The
  // action may be empty (object-only query) and objects may be empty.
  StatusOr<Scenario> WithQuery(
      const std::string& action,
      const std::vector<std::string>& objects) const;

 private:
  static Scenario Build(ScenarioSpec spec, const std::string& query_action,
                        const std::vector<std::string>& query_objects);

  Scenario(ScenarioSpec spec, std::shared_ptr<Vocabulary> vocab,
           std::shared_ptr<const GroundTruth> truth, QuerySpec query)
      : spec_(std::move(spec)),
        vocab_(std::move(vocab)),
        truth_(std::move(truth)),
        query_(std::move(query)) {}

  ScenarioSpec spec_;
  std::shared_ptr<Vocabulary> vocab_;
  std::shared_ptr<const GroundTruth> truth_;
  QuerySpec query_;
};

}  // namespace synth
}  // namespace vaq

#endif  // VAQ_SYNTH_SCENARIO_H_
