// Tokenizer for the VAQ query language.
#ifndef VAQ_QUERY_LEXER_H_
#define VAQ_QUERY_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace vaq {
namespace query {

enum class TokenKind {
  kIdentifier,  // Bare word (keywords are identifiers; parser matches them
                // case-insensitively).
  kString,      // 'single-quoted literal'
  kNumber,      // Integer literal.
  kLParen,
  kRParen,
  kComma,
  kDot,
  kEquals,
  kStar,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // Identifier name / string contents / number digits.
  int64_t number = 0; // Valid for kNumber.
  size_t offset = 0;  // Byte offset in the input, for error messages.
};

// Splits `input` into tokens. Fails on unterminated strings or unexpected
// characters, reporting the byte offset.
StatusOr<std::vector<Token>> Tokenize(const std::string& input);

// Case-insensitive keyword comparison helper.
bool KeywordEquals(const std::string& text, const char* keyword);

}  // namespace query
}  // namespace vaq

#endif  // VAQ_QUERY_LEXER_H_
